// Package harness is the public interface to the reproduction experiments:
// one runner per figure and table of the paper's evaluation (§2 workload
// characterization, §6.1 microbenchmark, §6.2–§6.3 training experiments).
// Each runner returns a Report containing the tables and curve series the
// corresponding figure plots, plus notes comparing the measured shape against
// the paper's claims.
//
// Experiments run at two scales — QuickConfig (seconds, used by tests and
// CI) and DefaultConfig (tens of seconds per experiment, used by the
// benchmark harness and the cmd/ tools). Both use the same code paths; only
// process counts, step counts, model sizes, and the delay clock scale differ.
//
// The types are aliases of the internal implementation, so Reports returned
// here interoperate with everything else in the module.
package harness

import iharness "eagersgd/internal/harness"

// Config controls experiment scale; see the field docs on the aliased type.
type Config = iharness.Config

// Report is the output of one experiment runner: tables, curves, notes, and
// named headline values.
type Report = iharness.Report

// Experiment names one runner so tools can iterate over them.
type Experiment = iharness.Experiment

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config { return iharness.DefaultConfig() }

// QuickConfig returns the test-scale configuration.
func QuickConfig() Config { return iharness.QuickConfig() }

// Experiments returns every experiment in paper order.
func Experiments() []Experiment { return iharness.Experiments() }

// RunByID runs the experiment with the given ID ("fig2" ... "fig13",
// "table1", "fig9", "scaling", "quorum").
func RunByID(id string, cfg Config) (*Report, error) { return iharness.RunByID(id, cfg) }

// Fig9Microbenchmark runs the §6.1 partial-allreduce microbenchmark (Figs. 8
// and 9): latency and number of active processes under linear skew.
func Fig9Microbenchmark(cfg Config) (*Report, error) { return iharness.Fig9Microbenchmark(cfg) }
