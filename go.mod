module eagersgd

go 1.22
