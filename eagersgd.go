package eagersgd

import (
	"eagersgd/collective"
	"eagersgd/tensor"
)

// The root package aliases the collective and tensor essentials so a minimal
// program needs a single import; the full surfaces (algorithm selection,
// sync styles, matrices) live in the respective packages.

// Core collective types; see package eagersgd/collective.
type (
	// World is a fixed-size collective job over one transport.
	World = collective.World
	// Node is one rank's view of a World.
	Node = collective.Node
	// Reducer reduces per-rank gradient vectors across the world.
	Reducer = collective.Reducer
	// Result describes one completed reduction.
	Result = collective.Result
	// Mode selects the reduction behaviour of a Reducer.
	Mode = collective.Mode
	// Option configures a World or a Reducer.
	Option = collective.Option
	// Transport selects the wire layer a World runs on.
	Transport = collective.Transport
	// Vector is a dense one-dimensional array of float64 values.
	Vector = tensor.Vector
)

// Reduction modes and transports; see package eagersgd/collective.
var (
	// Sync is the synchronous allreduce baseline.
	Sync = collective.Sync
	// Solo is the wait-free partial allreduce (§4.1).
	Solo = collective.Solo
	// Majority designates one random initiator per round (§4.2).
	Majority = collective.Majority
)

// Transports.
const (
	// Inproc connects ranks as goroutines within this process.
	Inproc = collective.Inproc
	// TCP runs the collectives over loopback TCP sockets.
	TCP = collective.TCP
	// Shm connects same-host ranks through syscall-free SPSC shared rings.
	Shm = collective.Shm
	// Sim runs the ranks over the deterministic simulation transport —
	// virtual clock, seeded latency and compute-skew models, no sockets.
	Sim = collective.Sim
)

// NewWorld builds a world of size ranks; see collective.NewWorld.
func NewWorld(size int, opts ...Option) (*World, error) {
	return collective.NewWorld(size, opts...)
}

// Quorum returns the quorum mode with k candidate initiators (§8).
func Quorum(k int) Mode { return collective.Quorum(k) }

// NewVector returns a zero-initialized vector of length n.
func NewVector(n int) Vector { return tensor.NewVector(n) }

// WithTransport selects the wire layer (Inproc, TCP, Shm, or Sim). Default
// Inproc.
func WithTransport(t Transport) Option { return collective.WithTransport(t) }

// WithSimConfig parameterizes the Sim transport's virtual network (seed,
// latency model, compute-skew model); see collective.WithSimConfig.
func WithSimConfig(sc collective.SimConfig) Option { return collective.WithSimConfig(sc) }

// WithHosts declares rank placement for a mixed world: ranks sharing a host
// id exchange over shared rings, cross-host pairs keep TCP. See
// collective.WithHosts.
func WithHosts(hosts ...int) Option { return collective.WithHosts(hosts...) }

// WithMode selects the reduction behaviour. Default Sync.
func WithMode(m Mode) Option { return collective.WithMode(m) }

// WithBasePort sets the first loopback port of a TCP world.
func WithBasePort(port int) Option { return collective.WithBasePort(port) }

// WithSyncEvery makes every n-th eager Reduce a full synchronous allreduce.
func WithSyncEvery(n int) Option { return collective.WithSyncEvery(n) }

// WithSeed sets the shared initiator-selection seed for Majority and Quorum.
func WithSeed(seed int64) Option { return collective.WithSeed(seed) }

// WithOverlap enables the bucketed gradient exchange that overlaps backprop
// with communication; see collective.BucketReducer.
func WithOverlap() Option { return collective.WithOverlap() }

// WithBucketElems sets the bucket coalescing target of the overlapped
// exchange (0 = one bucket per layer segment).
func WithBucketElems(n int) Option { return collective.WithBucketElems(n) }

// WithBucketLayout fixes the bucket layout at construction — required for
// overlapped steps on the eager modes (Solo/Majority/Quorum), whose engine
// builds its per-round schedules per bucket.
func WithBucketLayout(lens ...int) Option { return collective.WithBucketLayout(lens...) }
