// Command eagervet runs the repository's static-analysis suite
// (internal/analysis) over package patterns and reports invariant
// violations: pool-lease leaks (leasecheck), raw tag literals (tagcheck),
// unjoinable goroutines (lifecyclecheck), and cancellation-hygiene breaks
// (ctxcheck).
//
// Usage:
//
//	go run ./cmd/eagervet [-json] [-list] [patterns...]
//
// Patterns default to ./... and accept ./dir, ./dir/..., and module import
// paths. Exit status: 0 no findings, 1 findings reported, 2 operational
// error (bad pattern, unparseable package, ...).
//
// Findings can be suppressed case by case with
//
//	//eagervet:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// on or above the flagged line (in the package doc: the whole file). The
// reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"eagersgd/internal/analysis"
)

type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: eagervet [-json] [-list] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, az := range analysis.All() {
			fmt.Printf("%-16s %s\n", az.Name, az.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := analysis.FindModule(wd)
	if err != nil {
		fatal(err)
	}
	loader := analysis.NewLoader(root, modPath)

	paths, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}

	var diags []jsonDiagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		found, err := analysis.Run(pkg, analysis.All(), loader.Fset, loader.Facts)
		if err != nil {
			fatal(err)
		}
		for _, d := range found {
			pos := loader.Fset.Position(d.Pos)
			diags = append(diags, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []jsonDiagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eagervet:", err)
	os.Exit(2)
}
