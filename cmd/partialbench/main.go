// Command partialbench runs the partial-collective microbenchmark of §6.1
// (Figs. 8 and 9): all ranks are linearly skewed before calling the
// collective and the average latency of the synchronous allreduce, solo
// allreduce, and majority allreduce is reported per message size, together
// with the number of active processes of the partial collectives.
//
// Usage:
//
//	partialbench             # 32 ranks, 64 B – 4 MB, full scale
//	partialbench -quick      # 8 ranks, reduced sizes, seconds
package main

import (
	"flag"
	"fmt"
	"os"

	"eagersgd/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced test scale")
	clockScale := flag.Float64("clock-scale", 0, "override the delay clock scale (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	report, err := harness.Fig9Microbenchmark(harness.Config{Quick: *quick, ClockScale: *clockScale, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "partialbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(report.Render())
}
