// Command trainsim runs the end-to-end training experiments of the paper's
// evaluation (§6.2–§6.3): Fig. 10 (hyperplane), Fig. 11 (ImageNet-like, light
// imbalance), Fig. 12 (CIFAR-like, severe imbalance), Fig. 13 (video LSTM,
// inherent imbalance), Table 1, plus the scaling summary and the quorum
// spectrum ablation.
//
// Usage:
//
//	trainsim -experiment fig10          # one experiment at full scale
//	trainsim -experiment all -quick     # every experiment at test scale
//	trainsim -list                      # list available experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"eagersgd/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (fig10, fig11, fig12, fig13, table1, scaling, quorum) or \"all\"")
	quick := flag.Bool("quick", false, "run at reduced test scale")
	clockScale := flag.Float64("clock-scale", 0, "override the delay clock scale (0 = per-experiment default)")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := harness.Config{Quick: *quick, ClockScale: *clockScale, Seed: *seed}
	ids := []string{"table1", "fig10", "fig11", "fig12", "fig13", "scaling", "quorum"}
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	for _, id := range ids {
		report, err := harness.RunByID(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trainsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(report.Render())
	}
}
