// Command benchjson runs the message-substrate microbenchmarks and writes the
// parsed results to BENCH_<date>.json, seeding the repository's performance
// trajectory: each PR that touches a hot path can re-run it and diff the
// snapshot against the previous one.
//
// Usage:
//
//	go run ./cmd/benchjson                      # full run, writes ./BENCH_<date>.json
//	go run ./cmd/benchjson -benchtime 1x -short # CI smoke variant
//	go run ./cmd/benchjson -bench Allreduce -out /tmp
//	go run ./cmd/benchjson -tag pipelined       # writes BENCH_<date>-pipelined.json
//	go run ./cmd/benchjson -compare old.json new.json
//	go run ./cmd/benchjson -compare -maxdrop 30 -minratio shm/tcp=2 old.json new.json
//
// The -compare mode runs nothing: it loads two snapshots and prints the
// per-benchmark deltas (ns/op, B/op, MB/s), so a perf PR can show its wins
// and regressions mechanically. Two optional gates turn the comparison into a
// blocking CI check:
//
//   - -maxdrop P fails the run when any benchmark present in both snapshots
//     lost more than P percent of its MB/s throughput — a throughput floor
//     with tolerance, anchored to the committed snapshot. Because that floor
//     is absolute, it only means something when both snapshots came from the
//     same machine at the same parallelism: an environment mismatch
//     (goos/goarch/cpu/gomaxprocs/numcpu) downgrades -maxdrop failures to
//     warnings unless -strict-env is set.
//   - -minratio NUM/DEN=R fails the run when, within the new snapshot, a
//     benchmark whose name contains "/NUM/" does not reach R times the MB/s
//     of its "/DEN/" sibling (the same name with the axis swapped). This
//     pins relative claims ("shm beats tcp by ≥2x") without depending on
//     the absolute speed of the CI machine.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// B/op and allocs/op are recorded even when zero — a zero here is the
	// alloc-free steady state the substrate exists for, not a missing value.
	BPerOp    float64            `json:"b_per_op"`
	AllocsPer float64            `json:"allocs_per_op"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the top-level JSON document. GOOS/GOARCH/CPU come from the
// benchmark output's headers; GoMaxProcs and NumCPU are recorded from the
// machine running the snapshot, because throughput numbers (and especially
// shm/tcp ratios) taken at different parallelism are not comparable —
// -compare warns when any of these differ between the two snapshots.
type Snapshot struct {
	Date       string   `json:"date"`
	Command    string   `json:"command"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"numcpu,omitempty"`
	Package    string   `json:"package,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		pkg       = flag.String("pkg", "./internal/bench", "package holding the microbenchmarks")
		benchPat  = flag.String("bench", ".", "benchmark name pattern (-bench)")
		benchtime = flag.String("benchtime", "50x", "benchmark time or iteration count (-benchtime)")
		short     = flag.Bool("short", false, "pass -short to go test")
		outDir    = flag.String("out", ".", "directory to write BENCH_<date>.json into")
		tag       = flag.String("tag", "", "optional suffix for the snapshot name: BENCH_<date>-<tag>.json")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file (passed through to go test)")
		compare   = flag.Bool("compare", false, "compare two snapshots: benchjson -compare old.json new.json")
		maxDrop   = flag.Float64("maxdrop", 0, "with -compare: fail when any shared benchmark's MB/s drops by more than this percentage (0 disables the gate)")
		minRatio  = flag.String("minratio", "", `with -compare: throughput ratio gate on the new snapshot, "NUM/DEN=R" (e.g. shm/tcp=2): each "/NUM/" benchmark must reach R times the MB/s of its "/DEN/" sibling`)
		strictEnv = flag.Bool("strict-env", false, "with -compare: enforce -maxdrop even when the snapshots were taken in different environments (by default a mismatch downgrades -maxdrop failures to warnings)")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare requires exactly two snapshot paths (old.json new.json)")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *maxDrop, *minRatio, *strictEnv); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	args := []string{"test", "-run", "^$", "-bench", *benchPat, "-benchmem", "-benchtime", *benchtime}
	if *short {
		args = append(args, "-short")
	}
	if *cpuprof != "" {
		// go test resolves a relative -cpuprofile path against the package
		// directory; make it absolute so the profile lands where asked.
		abs, err := filepath.Abs(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: resolve -cpuprofile path: %v\n", err)
			os.Exit(1)
		}
		args = append(args, "-cpuprofile", abs)
	}
	args = append(args, *pkg)

	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var out bytes.Buffer
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	snap := parseBenchOutput(out.String())
	snap.Date = time.Now().Format("2006-01-02")
	snap.Command = "go " + strings.Join(args, " ")
	snap.GoMaxProcs = runtime.GOMAXPROCS(0)
	snap.NumCPU = runtime.NumCPU()

	name := "BENCH_" + snap.Date
	if *tag != "" {
		name += "-" + *tag
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: create output directory: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(*outDir, name+".json")
	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmark results to %s\n", len(snap.Benchmarks), path)
}

// runCompare loads two snapshots and prints per-benchmark deltas for the
// benchmarks present in both, followed by the names only one side has.
// Positive ns/op deltas are regressions, positive MB/s deltas are wins.
// When maxDrop > 0 or minRatio is set, the corresponding gate failures make
// the comparison return an error after the full report has printed — except
// that an environment mismatch between the snapshots downgrades -maxdrop
// failures to warnings unless strictEnv is set: the absolute MB/s floor is
// anchored to the committed snapshot's machine, so enforcing it against a run
// at different parallelism or on a different CPU fails spuriously. The
// within-snapshot -minratio gate is unaffected — it never crosses snapshots.
func runCompare(oldPath, newPath string, maxDrop float64, minRatio string, strictEnv bool) error {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	envMismatch := warnEnvMismatch(oldSnap, newSnap, oldPath, newPath)
	oldBy := make(map[string]Result, len(oldSnap.Benchmarks))
	for _, r := range oldSnap.Benchmarks {
		oldBy[r.Name] = r
	}
	seen := make(map[string]bool, len(newSnap.Benchmarks))

	fmt.Printf("%-55s %15s %15s %9s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "MB/s old→new", "delta")
	for _, nr := range newSnap.Benchmarks {
		or, ok := oldBy[nr.Name]
		if !ok {
			continue
		}
		seen[nr.Name] = true
		line := fmt.Sprintf("%-55s %15.0f %15.0f %8.1f%%", nr.Name, or.NsPerOp, nr.NsPerOp, pctDelta(or.NsPerOp, nr.NsPerOp))
		oldMBs, okOld := or.Metrics["MB/s"]
		newMBs, okNew := nr.Metrics["MB/s"]
		if okOld && okNew {
			line += fmt.Sprintf(" %5.0f→%-5.0f %8.1f%%", oldMBs, newMBs, pctDelta(oldMBs, newMBs))
		}
		if or.BPerOp != nr.BPerOp {
			line += fmt.Sprintf("  B/op %.0f→%.0f", or.BPerOp, nr.BPerOp)
		}
		fmt.Println(line)
	}
	for _, nr := range newSnap.Benchmarks {
		if _, ok := oldBy[nr.Name]; !ok {
			fmt.Printf("%-55s (only in %s)\n", nr.Name, newPath)
		}
	}
	for _, or := range oldSnap.Benchmarks {
		if !seen[or.Name] {
			fmt.Printf("%-55s (only in %s)\n", or.Name, oldPath)
		}
	}

	var failures []string
	if maxDrop > 0 {
		drops := checkMaxDrop(oldBy, newSnap.Benchmarks, maxDrop)
		if envMismatch && !strictEnv {
			for _, d := range drops {
				fmt.Fprintf(os.Stderr, "benchjson: WARNING (env mismatch, -maxdrop not enforced): %s\n", d)
			}
			if len(drops) > 0 {
				fmt.Fprintln(os.Stderr, "benchjson: WARNING: pass -strict-env to enforce -maxdrop across environments")
			}
		} else {
			failures = append(failures, drops...)
		}
	}
	if minRatio != "" {
		f, err := checkMinRatio(newSnap.Benchmarks, minRatio)
		if err != nil {
			return err
		}
		failures = append(failures, f...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL: %s\n", f)
		}
		return fmt.Errorf("%d benchmark gate failure(s)", len(failures))
	}
	return nil
}

// warnEnvMismatch prints a loud banner when the two snapshots were taken on
// different machines or at different parallelism, and reports whether a
// mismatch was found (runCompare uses that to downgrade -maxdrop to a
// warning). The deltas still print — a cross-environment diff can be exactly
// what the reader wants — but the absolute MB/s columns (and the -maxdrop
// gate anchored to them) are not apples-to-apples, and the warning makes that
// impossible to miss. Fields a snapshot simply does not record (older
// snapshots predate gomaxprocs and numcpu) are not mismatches.
func warnEnvMismatch(oldSnap, newSnap Snapshot, oldPath, newPath string) bool {
	var diffs []string
	add := func(field, ov, nv string) {
		if ov != "" && nv != "" && ov != nv {
			diffs = append(diffs, fmt.Sprintf("%s: %s vs %s", field, ov, nv))
		}
	}
	add("goos", oldSnap.GOOS, newSnap.GOOS)
	add("goarch", oldSnap.GOARCH, newSnap.GOARCH)
	add("cpu", oldSnap.CPU, newSnap.CPU)
	addInt := func(field string, ov, nv int) {
		if ov != 0 && nv != 0 && ov != nv {
			diffs = append(diffs, fmt.Sprintf("%s: %d vs %d", field, ov, nv))
		}
	}
	addInt("gomaxprocs", oldSnap.GoMaxProcs, newSnap.GoMaxProcs)
	addInt("numcpu", oldSnap.NumCPU, newSnap.NumCPU)
	if len(diffs) == 0 {
		return false
	}
	fmt.Fprintf(os.Stderr, "benchjson: WARNING: the snapshots were taken in different environments (%s vs %s):\n", oldPath, newPath)
	for _, d := range diffs {
		fmt.Fprintf(os.Stderr, "benchjson: WARNING:   %s\n", d)
	}
	fmt.Fprintln(os.Stderr, "benchjson: WARNING: absolute MB/s deltas below are not comparable; trust only within-snapshot ratios")
	return true
}

// checkMaxDrop flags every benchmark whose MB/s fell by more than maxDrop
// percent between the snapshots. Benchmarks without an MB/s metric on both
// sides are outside the gate (the throughput floor is a throughput gate).
func checkMaxDrop(oldBy map[string]Result, newBenchmarks []Result, maxDrop float64) []string {
	var failures []string
	for _, nr := range newBenchmarks {
		or, ok := oldBy[nr.Name]
		if !ok {
			continue
		}
		oldMBs, okOld := or.Metrics["MB/s"]
		newMBs, okNew := nr.Metrics["MB/s"]
		if !okOld || !okNew || oldMBs <= 0 {
			continue
		}
		if drop := -pctDelta(oldMBs, newMBs); drop > maxDrop {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f MB/s fell to %.0f MB/s (-%.1f%%, tolerance %.1f%%)",
					nr.Name, oldMBs, newMBs, drop, maxDrop))
		}
	}
	return failures
}

// checkMinRatio enforces a "NUM/DEN=R" spec on one snapshot: every benchmark
// whose name contains the "/NUM/" axis value must reach at least R times the
// MB/s of the sibling benchmark named with "/DEN/" instead. Siblings missing
// from the snapshot are failures too — a gate that silently stops matching
// anything protects nothing.
func checkMinRatio(benchmarks []Result, spec string) ([]string, error) {
	axes, ratioStr, ok := strings.Cut(spec, "=")
	num, den, ok2 := strings.Cut(axes, "/")
	if !ok || !ok2 || num == "" || den == "" {
		return nil, fmt.Errorf("bad -minratio %q: want NUM/DEN=R (e.g. shm/tcp=2)", spec)
	}
	ratio, err := strconv.ParseFloat(ratioStr, 64)
	if err != nil || ratio <= 0 {
		return nil, fmt.Errorf("bad -minratio ratio %q: want a positive number", ratioStr)
	}
	byName := make(map[string]Result, len(benchmarks))
	for _, r := range benchmarks {
		byName[r.Name] = r
	}
	var failures []string
	matched := false
	for _, nr := range benchmarks {
		if !strings.Contains(nr.Name, "/"+num+"/") {
			continue
		}
		sibName := strings.Replace(nr.Name, "/"+num+"/", "/"+den+"/", 1)
		sib, ok := byName[sibName]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: no %s sibling %s in the snapshot", nr.Name, den, sibName))
			continue
		}
		numMBs, okNum := nr.Metrics["MB/s"]
		denMBs, okDen := sib.Metrics["MB/s"]
		if !okNum || !okDen || denMBs <= 0 {
			continue
		}
		matched = true
		if numMBs < ratio*denMBs {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f MB/s is %.2fx its %s sibling's %.0f MB/s, want >= %.2fx",
					nr.Name, numMBs, numMBs/denMBs, den, denMBs, ratio))
		}
	}
	if !matched && len(failures) == 0 {
		failures = append(failures, fmt.Sprintf("-minratio %s matched no benchmark pair with MB/s metrics", spec))
	}
	return failures, nil
}

func pctDelta(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before * 100
}

func loadSnapshot(path string) (Snapshot, error) {
	var snap Snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return snap, fmt.Errorf("parse %s: %w", path, err)
	}
	return snap, nil
}

// parseBenchOutput extracts benchmark lines and environment headers from
// `go test -bench` output. Standard columns (ns/op, B/op, allocs/op, MB/s)
// get dedicated fields; any custom b.ReportMetric units land in Metrics.
func parseBenchOutput(text string) Snapshot {
	var snap Snapshot
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			snap.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters}
		// Remaining fields come in "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BPerOp = v
			case "allocs/op":
				r.AllocsPer = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, r)
	}
	return snap
}
