// Command benchjson runs the message-substrate microbenchmarks and writes the
// parsed results to BENCH_<date>.json, seeding the repository's performance
// trajectory: each PR that touches a hot path can re-run it and diff the
// snapshot against the previous one.
//
// Usage:
//
//	go run ./cmd/benchjson                      # full run, writes ./BENCH_<date>.json
//	go run ./cmd/benchjson -benchtime 1x -short # CI smoke variant
//	go run ./cmd/benchjson -bench Allreduce -out /tmp
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// B/op and allocs/op are recorded even when zero — a zero here is the
	// alloc-free steady state the substrate exists for, not a missing value.
	BPerOp    float64            `json:"b_per_op"`
	AllocsPer float64            `json:"allocs_per_op"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the top-level JSON document.
type Snapshot struct {
	Date       string   `json:"date"`
	Command    string   `json:"command"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Package    string   `json:"package,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		pkg       = flag.String("pkg", "./internal/bench", "package holding the microbenchmarks")
		benchPat  = flag.String("bench", ".", "benchmark name pattern (-bench)")
		benchtime = flag.String("benchtime", "50x", "benchmark time or iteration count (-benchtime)")
		short     = flag.Bool("short", false, "pass -short to go test")
		outDir    = flag.String("out", ".", "directory to write BENCH_<date>.json into")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *benchPat, "-benchmem", "-benchtime", *benchtime}
	if *short {
		args = append(args, "-short")
	}
	args = append(args, *pkg)

	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var out bytes.Buffer
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	snap := parseBenchOutput(out.String())
	snap.Date = time.Now().Format("2006-01-02")
	snap.Command = "go " + strings.Join(args, " ")

	path := filepath.Join(*outDir, "BENCH_"+snap.Date+".json")
	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmark results to %s\n", len(snap.Benchmarks), path)
}

// parseBenchOutput extracts benchmark lines and environment headers from
// `go test -bench` output. Standard columns (ns/op, B/op, allocs/op, MB/s)
// get dedicated fields; any custom b.ReportMetric units land in Metrics.
func parseBenchOutput(text string) Snapshot {
	var snap Snapshot
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			snap.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters}
		// Remaining fields come in "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BPerOp = v
			case "allocs/op":
				r.AllocsPer = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, r)
	}
	return snap
}
