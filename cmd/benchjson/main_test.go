package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeSnapshot marshals a snapshot into dir and returns its path.
func writeSnapshot(t *testing.T, dir, name string, snap Snapshot) string {
	t.Helper()
	doc, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal %s: %v", name, err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	return path
}

func mbps(v float64) map[string]float64 { return map[string]float64{"MB/s": v} }

// snapshotPair builds an old/new snapshot pair where the one shared benchmark
// lost half its throughput — far past any reasonable -maxdrop tolerance —
// with the environment fields given.
func snapshotPair(t *testing.T, dir string, oldProcs, newProcs int) (string, string) {
	t.Helper()
	oldSnap := Snapshot{
		Date: "2026-01-01", GOOS: "linux", GOARCH: "amd64", GoMaxProcs: oldProcs, NumCPU: oldProcs,
		Benchmarks: []Result{{Name: "BenchmarkRing/shm/64Ki", Iterations: 50, NsPerOp: 1000, Metrics: mbps(1000)}},
	}
	newSnap := Snapshot{
		Date: "2026-01-02", GOOS: "linux", GOARCH: "amd64", GoMaxProcs: newProcs, NumCPU: newProcs,
		Benchmarks: []Result{{Name: "BenchmarkRing/shm/64Ki", Iterations: 50, NsPerOp: 2000, Metrics: mbps(500)}},
	}
	return writeSnapshot(t, dir, "old.json", oldSnap), writeSnapshot(t, dir, "new.json", newSnap)
}

func TestCompareMaxDropFailsSameEnv(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := snapshotPair(t, dir, 8, 8)
	if err := runCompare(oldPath, newPath, 30, "", false); err == nil {
		t.Fatal("50% drop in identical environments passed a 30% -maxdrop gate")
	}
}

func TestCompareMaxDropDowngradedOnEnvMismatch(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := snapshotPair(t, dir, 16, 8) // stale snapshot from a wider machine
	if err := runCompare(oldPath, newPath, 30, "", false); err != nil {
		t.Fatalf("env mismatch must downgrade -maxdrop to a warning, got: %v", err)
	}
}

func TestCompareMaxDropStrictEnvEnforces(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := snapshotPair(t, dir, 16, 8)
	if err := runCompare(oldPath, newPath, 30, "", true); err == nil {
		t.Fatal("-strict-env must enforce -maxdrop despite the env mismatch")
	}
}

func TestCompareMinRatioUnaffectedByEnvMismatch(t *testing.T) {
	dir := t.TempDir()
	// The ratio gate reads only the new snapshot, so a cross-env comparison
	// must still enforce it: shm at 1.5x tcp fails a 2x floor.
	oldSnap := Snapshot{Date: "2026-01-01", GoMaxProcs: 16, NumCPU: 16, Benchmarks: []Result{
		{Name: "BenchmarkRing/shm/64Ki", Iterations: 50, NsPerOp: 1000, Metrics: mbps(1000)},
	}}
	newSnap := Snapshot{Date: "2026-01-02", GoMaxProcs: 8, NumCPU: 8, Benchmarks: []Result{
		{Name: "BenchmarkRing/shm/64Ki", Iterations: 50, NsPerOp: 1000, Metrics: mbps(900)},
		{Name: "BenchmarkRing/tcp/64Ki", Iterations: 50, NsPerOp: 1500, Metrics: mbps(600)},
	}}
	oldPath := writeSnapshot(t, dir, "old.json", oldSnap)
	newPath := writeSnapshot(t, dir, "new.json", newSnap)
	if err := runCompare(oldPath, newPath, 0, "shm/tcp=2", false); err == nil {
		t.Fatal("-minratio is within-snapshot and must stay enforced under env mismatch")
	}
	if err := runCompare(oldPath, newPath, 0, "shm/tcp=1.4", false); err != nil {
		t.Fatalf("satisfied -minratio failed: %v", err)
	}
}
