// Command workload regenerates the workload-characterization figures of §2:
// Fig. 2 (UCF101 video lengths and LSTM batch runtimes), Fig. 3 (Transformer
// batch runtimes), and Fig. 4 (cloud ResNet-50 batch runtimes).
//
// Usage:
//
//	workload            # all three figures
//	workload -fig 2     # only Fig. 2
package main

import (
	"flag"
	"fmt"
	"os"

	"eagersgd/harness"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (2, 3, or 4); 0 runs all")
	quick := flag.Bool("quick", false, "run at reduced sample counts")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := harness.Config{Quick: *quick, Seed: *seed}
	ids := []string{"fig2", "fig3", "fig4"}
	if *fig != 0 {
		ids = []string{fmt.Sprintf("fig%d", *fig)}
	}
	for _, id := range ids {
		report, err := harness.RunByID(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workload: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(report.Render())
	}
}
