// Command simsweep runs the deterministic 1000-rank policy sweep and writes
// NAP-vs-step-time curves as a benchjson-compatible JSON snapshot.
//
// It is the command-line face of internal/simnet/sweep: every {policy ×
// skew-distribution × world-size} cell is simulated in lockstep over
// identical seed-derived draws, so two invocations with the same flags
// produce byte-identical output — CI runs it twice and diffs the files as
// the determinism gate.
//
// Usage:
//
//	go run ./cmd/simsweep -seed 42 -ranks 1000 -out curves.json
//	go run ./cmd/simsweep -ranks 8,64,1000 -policies solo,majority,quorum -quorum 3
//	go run ./cmd/simsweep -skew 'constant:0;uniform:0,4ms;pareto:200us,1.2,500ms'
//	go run ./cmd/simsweep -crash 500@120,501@121,502@122   # cascading death at rank 500
//
// Skew specs are ';'-separated (each spec may itself contain commas); see
// simnet.ParseModel for the spec syntax. The output drops straight into
// cmd/benchjson: `benchjson -compare old.json new.json` diffs two sweeps.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"eagersgd/internal/faults"
	"eagersgd/internal/simnet"
	"eagersgd/internal/simnet/sweep"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 42, "root seed; every stream derives from it")
		ranksArg = flag.String("ranks", "1000", "comma-separated world sizes to sweep")
		steps    = flag.Int("steps", 200, "training steps simulated per cell")
		base     = flag.Duration("base", 2*time.Millisecond, "skew-free per-step compute time")
		skewArg  = flag.String("skew", "constant:0;uniform:0,4ms;pareto:200us,1.2,500ms", "';'-separated compute-skew model specs (see simnet.ParseModel)")
		linkArg  = flag.String("link", "uniform:50us,200us", "per-hop wire latency model spec")
		policies = flag.String("policies", "solo,majority,quorum", "comma-separated activation policies (solo, majority, quorum, sync)")
		quorumK  = flag.Int("quorum", 3, "candidate count for the quorum policy")
		crashArg = flag.String("crash", "", "scripted rank crashes, 'rank@step,rank@step,...'")
		deadline = flag.Duration("deadline", 50*time.Millisecond, "dead-initiator failover delay (mirrors partial.Options.PeerDeadline)")
		out      = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	ranks, err := parseInts(*ranksArg)
	if err != nil {
		fatalf("bad -ranks: %v", err)
	}
	link, err := simnet.ParseModel(*linkArg)
	if err != nil {
		fatalf("bad -link: %v", err)
	}
	var skews []simnet.Model
	for _, spec := range strings.Split(*skewArg, ";") {
		m, err := simnet.ParseModel(spec)
		if err != nil {
			fatalf("bad -skew: %v", err)
		}
		skews = append(skews, m)
	}
	var pols []sweep.Policy
	for _, name := range strings.Split(*policies, ",") {
		switch name = strings.TrimSpace(name); name {
		case "solo", "majority", "sync":
			pols = append(pols, sweep.Policy{Name: name, Mode: name})
		case "quorum":
			pols = append(pols, sweep.Policy{Name: fmt.Sprintf("quorum%d", *quorumK), Mode: "quorum", K: *quorumK})
		default:
			fatalf("bad -policies: unknown policy %q", name)
		}
	}
	var scenario *faults.Scenario
	if *crashArg != "" {
		crash := map[int]int{}
		for _, spec := range strings.Split(*crashArg, ",") {
			rankStr, stepStr, ok := strings.Cut(strings.TrimSpace(spec), "@")
			if !ok {
				fatalf("bad -crash entry %q: want rank@step", spec)
			}
			r, err1 := strconv.Atoi(rankStr)
			s, err2 := strconv.Atoi(stepStr)
			if err1 != nil || err2 != nil || r < 0 || s < 0 {
				fatalf("bad -crash entry %q: want rank@step with non-negative integers", spec)
			}
			crash[r] = s
		}
		scenario = &faults.Scenario{Name: "simsweep-crash", CrashAtStep: crash}
	}

	// The command line is reconstructed from the parsed values (not os.Args)
	// so the snapshot's command field is canonical and deterministic.
	command := fmt.Sprintf("simsweep -seed %d -ranks %s -steps %d -base %s -skew %q -link %q -policies %s -quorum %d -crash %q -deadline %s",
		*seed, *ranksArg, *steps, *base, *skewArg, *linkArg, *policies, *quorumK, *crashArg, *deadline)
	snap := sweep.NewSnapshot(*seed, command)

	for _, n := range ranks {
		for _, skew := range skews {
			curves, err := sweep.Run(sweep.Config{
				Seed:         *seed,
				Ranks:        n,
				Steps:        *steps,
				BaseCompute:  *base,
				Skew:         skew,
				Link:         link,
				Policies:     pols,
				Faults:       scenario,
				PeerDeadline: *deadline,
			})
			if err != nil {
				fatalf("sweep n=%d skew=%s: %v", n, skew, err)
			}
			for _, c := range curves {
				snap.Add(skew.String(), n, c)
			}
		}
	}

	doc, err := snap.Marshal()
	if err != nil {
		fatalf("marshal: %v", err)
	}
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("simsweep: wrote %d curves to %s\n", len(snap.Benchmarks), *out)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad world size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simsweep: "+format+"\n", args...)
	os.Exit(1)
}
