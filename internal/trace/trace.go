// Package trace collects and formats the measurements the experiments
// report: per-step timings and throughput, loss/accuracy curves over
// training time, and simple text tables matching the rows of the paper's
// figures and tables.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// StepRecord is one training step's measurement on one rank.
type StepRecord struct {
	Step     int
	Duration time.Duration
	Loss     float64
	// ActiveProcesses is the NAP observed for the step's gradient exchange
	// (equal to the world size for synchronous SGD).
	ActiveProcesses int
	// Included reports whether this rank's fresh gradient made it into the
	// step's global gradient (always true for synchronous SGD).
	Included bool
}

// ThroughputRecorder accumulates step records and derives throughput
// statistics.
type ThroughputRecorder struct {
	records []StepRecord
	total   time.Duration
}

// NewThroughputRecorder returns an empty recorder.
func NewThroughputRecorder() *ThroughputRecorder { return &ThroughputRecorder{} }

// Add appends one step record.
func (r *ThroughputRecorder) Add(rec StepRecord) {
	r.records = append(r.records, rec)
	r.total += rec.Duration
}

// Steps returns the number of recorded steps.
func (r *ThroughputRecorder) Steps() int { return len(r.records) }

// TotalTime returns the cumulative step time.
func (r *ThroughputRecorder) TotalTime() time.Duration { return r.total }

// StepsPerSecond returns the average throughput over all recorded steps.
func (r *ThroughputRecorder) StepsPerSecond() float64 {
	if r.total <= 0 || len(r.records) == 0 {
		return 0
	}
	return float64(len(r.records)) / r.total.Seconds()
}

// MeanLoss returns the mean recorded loss.
func (r *ThroughputRecorder) MeanLoss() float64 {
	if len(r.records) == 0 {
		return 0
	}
	var s float64
	for _, rec := range r.records {
		s += rec.Loss
	}
	return s / float64(len(r.records))
}

// MeanActiveProcesses returns the mean NAP across recorded steps.
func (r *ThroughputRecorder) MeanActiveProcesses() float64 {
	if len(r.records) == 0 {
		return 0
	}
	var s float64
	for _, rec := range r.records {
		s += float64(rec.ActiveProcesses)
	}
	return s / float64(len(r.records))
}

// InclusionRate returns the fraction of steps whose fresh gradient was
// included.
func (r *ThroughputRecorder) InclusionRate() float64 {
	if len(r.records) == 0 {
		return 0
	}
	n := 0
	for _, rec := range r.records {
		if rec.Included {
			n++
		}
	}
	return float64(n) / float64(len(r.records))
}

// DurationPercentile returns the p-th percentile (0-100) of step durations.
func (r *ThroughputRecorder) DurationPercentile(p float64) time.Duration {
	if len(r.records) == 0 {
		return 0
	}
	ds := make([]time.Duration, len(r.records))
	for i, rec := range r.records {
		ds[i] = rec.Duration
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(math.Ceil(p/100*float64(len(ds)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx]
}

// Records returns a copy of the recorded steps.
func (r *ThroughputRecorder) Records() []StepRecord {
	return append([]StepRecord(nil), r.records...)
}

// CurvePoint is one (x, y) sample of a training curve: x is typically
// cumulative training time in seconds, y a loss or accuracy.
type CurvePoint struct {
	X float64
	Y float64
}

// Curve is a named series of curve points, e.g. "eager-SGD (solo) top-1 test
// accuracy" as a function of training time — the data behind Figs. 10–13.
type Curve struct {
	Name   string
	Points []CurvePoint
}

// Add appends a point.
func (c *Curve) Add(x, y float64) { c.Points = append(c.Points, CurvePoint{X: x, Y: y}) }

// Last returns the final point, or a zero point if empty.
func (c *Curve) Last() CurvePoint {
	if len(c.Points) == 0 {
		return CurvePoint{}
	}
	return c.Points[len(c.Points)-1]
}

// MaxY returns the maximum y value seen, or 0 for an empty curve.
func (c *Curve) MaxY() float64 {
	best := math.Inf(-1)
	for _, p := range c.Points {
		if p.Y > best {
			best = p.Y
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// FinalY returns the y value of the last point (0 if empty).
func (c *Curve) FinalY() float64 { return c.Last().Y }

// XAtY returns the first x at which the curve reaches at least y, and whether
// it ever does — used for "time to reach accuracy X" comparisons.
func (c *Curve) XAtY(y float64) (float64, bool) {
	for _, p := range c.Points {
		if p.Y >= y {
			return p.X, true
		}
	}
	return 0, false
}

// Table is a simple text table with a caption, used to print the rows of the
// paper's tables and figure summaries.
type Table struct {
	Caption string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given caption and column headers.
func NewTable(caption string, headers ...string) *Table {
	return &Table{Caption: caption, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case time.Duration:
			row[i] = x.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == math.Trunc(x) && math.Abs(x) < 1e9:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 100:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (caption omitted).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCurves formats a set of curves as a long-form table
// (series, x, y) — a plottable text representation of a figure.
func RenderCurves(caption string, xLabel, yLabel string, curves ...*Curve) string {
	t := NewTable(caption, "series", xLabel, yLabel)
	for _, c := range curves {
		for _, p := range c.Points {
			t.AddRow(c.Name, p.X, p.Y)
		}
	}
	return t.Render()
}
