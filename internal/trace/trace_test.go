package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestThroughputRecorder(t *testing.T) {
	r := NewThroughputRecorder()
	if r.StepsPerSecond() != 0 || r.MeanLoss() != 0 || r.MeanActiveProcesses() != 0 || r.InclusionRate() != 0 {
		t.Fatal("empty recorder must report zeros")
	}
	r.Add(StepRecord{Step: 0, Duration: 100 * time.Millisecond, Loss: 2, ActiveProcesses: 4, Included: true})
	r.Add(StepRecord{Step: 1, Duration: 300 * time.Millisecond, Loss: 4, ActiveProcesses: 2, Included: false})
	if r.Steps() != 2 {
		t.Fatalf("Steps = %d", r.Steps())
	}
	if r.TotalTime() != 400*time.Millisecond {
		t.Fatalf("TotalTime = %v", r.TotalTime())
	}
	if math.Abs(r.StepsPerSecond()-5) > 1e-9 {
		t.Fatalf("StepsPerSecond = %v", r.StepsPerSecond())
	}
	if r.MeanLoss() != 3 || r.MeanActiveProcesses() != 3 || r.InclusionRate() != 0.5 {
		t.Fatalf("aggregates wrong: %v %v %v", r.MeanLoss(), r.MeanActiveProcesses(), r.InclusionRate())
	}
	if got := r.DurationPercentile(50); got != 100*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.DurationPercentile(100); got != 300*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if len(r.Records()) != 2 {
		t.Fatal("Records copy wrong")
	}
	// Records must return a copy, not the internal slice header.
	recs := r.Records()
	recs[0].Loss = 999
	if r.Records()[0].Loss == 999 {
		t.Fatal("Records leaked internal storage")
	}
}

func TestDurationPercentileEmpty(t *testing.T) {
	if NewThroughputRecorder().DurationPercentile(50) != 0 {
		t.Fatal("empty percentile must be zero")
	}
}

func TestCurve(t *testing.T) {
	c := &Curve{Name: "acc"}
	if c.Last() != (CurvePoint{}) || c.MaxY() != 0 || c.FinalY() != 0 {
		t.Fatal("empty curve accessors wrong")
	}
	c.Add(1, 0.5)
	c.Add(2, 0.8)
	c.Add(3, 0.7)
	if c.Last().Y != 0.7 || c.FinalY() != 0.7 {
		t.Fatal("Last/FinalY wrong")
	}
	if c.MaxY() != 0.8 {
		t.Fatalf("MaxY = %v", c.MaxY())
	}
	if x, ok := c.XAtY(0.75); !ok || x != 2 {
		t.Fatalf("XAtY = %v %v", x, ok)
	}
	if _, ok := c.XAtY(0.95); ok {
		t.Fatal("XAtY should report not reached")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := NewTable("Table 1. Networks", "model", "params", "speedup", "time")
	tab.AddRow("resnet-50", 25559081, 1.25, 1500*time.Millisecond)
	tab.AddRow("lstm", 34663525.0, 1.27, time.Second)
	out := tab.Render()
	for _, want := range []string{"Table 1. Networks", "model", "resnet-50", "25559081", "1.250", "1.5s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "model,params,speedup,time\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatalf("csv row count wrong: %q", csv)
	}
}

func TestFormatFloatBranches(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(3.0)
	tab.AddRow(123.456)
	tab.AddRow(0.123456)
	if tab.Rows[0][0] != "3" || tab.Rows[1][0] != "123.5" || tab.Rows[2][0] != "0.123" {
		t.Fatalf("float formatting: %v", tab.Rows)
	}
}

func TestRenderCurves(t *testing.T) {
	a := &Curve{Name: "eager"}
	a.Add(1, 0.5)
	b := &Curve{Name: "synch"}
	b.Add(2, 0.6)
	out := RenderCurves("Figure 10", "time", "loss", a, b)
	for _, want := range []string{"Figure 10", "eager", "synch", "series", "time", "loss"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered curves missing %q:\n%s", want, out)
		}
	}
}
