// Package imbalance models the load imbalance the paper studies and injects
// it into distributed training runs: per-(step, rank) delay injectors
// mirroring the experiments of §6 (random-subset delays for the cloud-like
// Figs. 10/11, linear skew for the Fig. 9 microbenchmark, shifted severe skew
// for Fig. 12), empirical runtime models reproducing the workload
// distributions of Figs. 2–4, and a scalable clock that replays paper-scale
// millisecond delays at a configurable fraction of real time so experiments
// finish in seconds while preserving every ratio the paper reports.
package imbalance

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Clock converts "paper milliseconds" into real sleeps. Scale 1.0 sleeps the
// full duration; the experiments default to a much smaller scale (e.g. 0.02)
// so that a 400 ms injected delay costs 8 ms of wall clock. All latency and
// throughput ratios are preserved because every delay in a run uses the same
// clock.
type Clock struct {
	// Scale multiplies paper milliseconds before sleeping. Zero disables
	// sleeping entirely (useful for logic-only tests).
	Scale float64
}

// RealTimeClock returns a clock that sleeps paper durations unscaled.
func RealTimeClock() Clock { return Clock{Scale: 1} }

// ScaledClock returns a clock that sleeps scale × the paper duration.
func ScaledClock(scale float64) Clock {
	if scale < 0 {
		panic(fmt.Sprintf("imbalance: negative clock scale %v", scale))
	}
	return Clock{Scale: scale}
}

// Duration converts paper milliseconds to a wall-clock duration.
func (c Clock) Duration(paperMs float64) time.Duration {
	if paperMs <= 0 || c.Scale == 0 {
		return 0
	}
	return time.Duration(paperMs * c.Scale * float64(time.Millisecond))
}

// Sleep blocks for the scaled equivalent of paperMs milliseconds.
func (c Clock) Sleep(paperMs float64) {
	if d := c.Duration(paperMs); d > 0 {
		time.Sleep(d)
	}
}

// PaperMs converts a measured wall-clock duration back into paper
// milliseconds (the inverse of Duration), so reports can quote
// paper-equivalent times.
func (c Clock) PaperMs(d time.Duration) float64 {
	if c.Scale == 0 {
		return 0
	}
	return float64(d) / float64(time.Millisecond) / c.Scale
}

// Injector produces the artificial delay (in paper milliseconds) a rank
// suffers at a training step, matching the delay-injection methodology of
// §6.2.
type Injector interface {
	// Delay returns the injected delay in paper milliseconds for the rank at
	// the step. Implementations must be deterministic in (step, rank) so
	// every rank can evaluate the schedule without coordination.
	Delay(step, rank int) float64
	// Name identifies the injector in experiment reports.
	Name() string
}

// None injects no delay.
type None struct{}

// Delay returns zero.
func (None) Delay(int, int) float64 { return 0 }

// Name returns "none".
func (None) Name() string { return "none" }

// RandomSubset delays K randomly chosen ranks (out of Size) by Amount paper
// milliseconds at every step — the light, system-caused imbalance used for
// the hyperplane (Fig. 10, K=1 of 8) and ImageNet (Fig. 11, K=4 of 64)
// experiments.
type RandomSubset struct {
	Size   int
	K      int
	Amount float64
	Seed   int64
}

// Name describes the injector.
func (r RandomSubset) Name() string {
	return fmt.Sprintf("random-%d-of-%d-%gms", r.K, r.Size, r.Amount)
}

// Delay returns Amount for the K ranks selected at this step, zero otherwise.
func (r RandomSubset) Delay(step, rank int) float64 {
	if r.K <= 0 || r.Amount <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(r.Seed ^ int64(step)*0x9e3779b9))
	perm := rng.Perm(r.Size)
	for i := 0; i < r.K && i < r.Size; i++ {
		if perm[i] == rank {
			return r.Amount
		}
	}
	return 0
}

// LinearSkew delays rank r by (r+1)*StepMs paper milliseconds, the fully
// skewed pattern of the Fig. 9 microbenchmark (1 ms to 32 ms across 32
// ranks).
type LinearSkew struct {
	StepMs float64
}

// Name describes the injector.
func (l LinearSkew) Name() string { return fmt.Sprintf("linear-%gms", l.StepMs) }

// Delay returns (rank+1)*StepMs.
func (l LinearSkew) Delay(_, rank int) float64 { return float64(rank+1) * l.StepMs }

// ShiftedSevere skews every rank between MinMs and MaxMs, rotating the
// assignment by one rank every step — the severe imbalance of the ResNet-32
// experiment (Fig. 12: 50–400 ms over 8 ranks, shifted after each step).
type ShiftedSevere struct {
	Size  int
	MinMs float64
	MaxMs float64
}

// Name describes the injector.
func (s ShiftedSevere) Name() string {
	return fmt.Sprintf("shifted-%g-%gms", s.MinMs, s.MaxMs)
}

// Delay returns the rank's position in the rotated schedule scaled into
// [MinMs, MaxMs].
func (s ShiftedSevere) Delay(step, rank int) float64 {
	if s.Size <= 1 {
		return s.MinMs
	}
	pos := (rank + step) % s.Size
	frac := float64(pos) / float64(s.Size-1)
	return s.MinMs + frac*(s.MaxMs-s.MinMs)
}

// Distribution samples per-step runtimes (in paper milliseconds). It models
// the empirical runtime distributions of Figs. 2b, 3, and 4.
type Distribution struct {
	// Name of the workload the distribution reproduces.
	Label string
	// MinMs and MaxMs clip the samples to the observed range.
	MinMs, MaxMs float64
	// Mu and Sigma parameterize the underlying log-normal.
	Mu, Sigma float64
	// ShiftMs is added after sampling (for distributions with a hard floor).
	ShiftMs float64
}

// Sample draws one runtime in paper milliseconds.
func (d Distribution) Sample(rng *rand.Rand) float64 {
	v := math.Exp(d.Mu+d.Sigma*rng.NormFloat64()) + d.ShiftMs
	if v < d.MinMs {
		v = d.MinMs
	}
	if v > d.MaxMs {
		v = d.MaxMs
	}
	return v
}

// Name returns the workload label.
func (d Distribution) Name() string { return d.Label }

// Mean estimates the distribution mean by quadrature over the clipped
// log-normal (used by reports; exactness is unnecessary).
func (d Distribution) Mean(samples int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var total float64
	for i := 0; i < samples; i++ {
		total += d.Sample(rng)
	}
	return total / float64(samples)
}

// VideoBatchRuntime reproduces the LSTM-on-UCF101 batch runtime distribution
// of Fig. 2b: 201–3,410 ms, mean ≈ 1,235 ms, std ≈ 706 ms on a P100 with
// batch size 16.
func VideoBatchRuntime() Distribution {
	return Distribution{Label: "ucf101-lstm-batch16", MinMs: 201, MaxMs: 3410, Mu: math.Log(1060), Sigma: 0.55}
}

// TransformerBatchRuntime reproduces the Transformer-on-WMT16 batch runtime
// distribution of Fig. 3: 179–3,482 ms, mean ≈ 475 ms, std ≈ 144 ms.
func TransformerBatchRuntime() Distribution {
	return Distribution{Label: "wmt16-transformer-batch64", MinMs: 179, MaxMs: 3482, Mu: math.Log(455), Sigma: 0.28}
}

// CloudBatchRuntime reproduces the ResNet-50-on-cloud batch runtime
// distribution of Fig. 4: 399–1,892 ms, mean ≈ 454 ms, std ≈ 116 ms. Fixed
// compute plus a noisy tail.
func CloudBatchRuntime() Distribution {
	return Distribution{Label: "cloud-resnet50-batch256", MinMs: 399, MaxMs: 1892, Mu: math.Log(40), Sigma: 1.0, ShiftMs: 405}
}

// SequenceCostModel converts a workload size (frames for video, tokens for
// text) into paper milliseconds of compute: runtime = BaseMs + PerUnitMs*n.
// Together with the sequence length distribution it reproduces the runtime
// histograms of Figs. 2b and 3 from first principles (cost proportional to
// recurrence length).
type SequenceCostModel struct {
	BaseMs    float64
	PerUnitMs float64
}

// Runtime returns the modelled runtime in paper milliseconds for a workload
// of n units.
func (m SequenceCostModel) Runtime(n int) float64 { return m.BaseMs + m.PerUnitMs*float64(n) }

// UCF101CostModel returns per-batch cost coefficients calibrated so that the
// median UCF101 batch (16 videos × ~167 frames ≈ 2,672 frames) lands near the
// observed 1,235 ms mean of Fig. 2b.
func UCF101CostModel() SequenceCostModel { return SequenceCostModel{BaseMs: 80, PerUnitMs: 0.4} }

// Stats summarizes a set of runtime samples.
type Stats struct {
	Min, Max, Mean, Std float64
}

// Summarize computes min/max/mean/std of the samples.
func Summarize(samples []float64) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	s := Stats{Min: samples[0], Max: samples[0]}
	var sum float64
	for _, v := range samples {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(samples))
	var varsum float64
	for _, v := range samples {
		d := v - s.Mean
		varsum += d * d
	}
	s.Std = math.Sqrt(varsum / float64(len(samples)))
	return s
}

// Histogram bins samples into equal-width buckets and returns upper edges and
// counts, the representation behind Figs. 2b, 3, and 4.
func Histogram(samples []float64, buckets int) (edges []float64, counts []int) {
	if buckets <= 0 || len(samples) == 0 {
		return nil, nil
	}
	st := Summarize(samples)
	width := (st.Max - st.Min) / float64(buckets)
	if width == 0 {
		width = 1
	}
	edges = make([]float64, buckets)
	counts = make([]int, buckets)
	for i := range edges {
		edges[i] = st.Min + width*float64(i+1)
	}
	for _, v := range samples {
		idx := int((v - st.Min) / width)
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	return edges, counts
}
