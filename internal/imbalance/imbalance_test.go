package imbalance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestClockDuration(t *testing.T) {
	c := ScaledClock(0.5)
	if got := c.Duration(10); got != 5*time.Millisecond {
		t.Fatalf("Duration = %v", got)
	}
	if got := c.Duration(0); got != 0 {
		t.Fatalf("zero-ms duration = %v", got)
	}
	if got := (Clock{}).Duration(100); got != 0 {
		t.Fatalf("zero-scale duration = %v", got)
	}
	if rt := RealTimeClock(); rt.Duration(3) != 3*time.Millisecond {
		t.Fatalf("real-time clock wrong: %v", rt.Duration(3))
	}
}

func TestClockPaperMsRoundTrip(t *testing.T) {
	c := ScaledClock(0.25)
	d := c.Duration(80)
	if got := c.PaperMs(d); math.Abs(got-80) > 1e-9 {
		t.Fatalf("PaperMs round trip = %v", got)
	}
	if got := (Clock{}).PaperMs(time.Second); got != 0 {
		t.Fatalf("zero-scale PaperMs = %v", got)
	}
}

func TestClockNegativeScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScaledClock(-1)
}

func TestClockSleepApproximatelyScaled(t *testing.T) {
	c := ScaledClock(0.1)
	start := time.Now()
	c.Sleep(100) // 10 ms real
	elapsed := time.Since(start)
	if elapsed < 8*time.Millisecond || elapsed > 200*time.Millisecond {
		t.Fatalf("scaled sleep took %v, want ~10ms", elapsed)
	}
}

func TestNoneInjector(t *testing.T) {
	var n None
	if n.Delay(3, 5) != 0 || n.Name() != "none" {
		t.Fatal("None injector misbehaves")
	}
}

func TestRandomSubsetInjector(t *testing.T) {
	inj := RandomSubset{Size: 8, K: 1, Amount: 300, Seed: 42}
	if inj.Name() == "" {
		t.Fatal("empty name")
	}
	for step := 0; step < 200; step++ {
		delayed := 0
		for r := 0; r < 8; r++ {
			d := inj.Delay(step, r)
			if d != 0 && d != 300 {
				t.Fatalf("unexpected delay %v", d)
			}
			if d == 300 {
				delayed++
			}
			// Determinism: same (step, rank) must give the same answer.
			if inj.Delay(step, r) != d {
				t.Fatal("injector not deterministic")
			}
		}
		if delayed != 1 {
			t.Fatalf("step %d delayed %d ranks, want exactly 1", step, delayed)
		}
	}
	// Over many steps the delayed rank must vary.
	seen := make(map[int]bool)
	for step := 0; step < 200; step++ {
		for r := 0; r < 8; r++ {
			if inj.Delay(step, r) > 0 {
				seen[r] = true
			}
		}
	}
	if len(seen) < 6 {
		t.Fatalf("delayed rank covered only %d of 8 ranks", len(seen))
	}
}

func TestRandomSubsetKofP(t *testing.T) {
	inj := RandomSubset{Size: 64, K: 4, Amount: 460, Seed: 7}
	for step := 0; step < 50; step++ {
		delayed := 0
		for r := 0; r < 64; r++ {
			if inj.Delay(step, r) > 0 {
				delayed++
			}
		}
		if delayed != 4 {
			t.Fatalf("step %d delayed %d ranks, want 4", step, delayed)
		}
	}
}

func TestRandomSubsetZeroKorAmount(t *testing.T) {
	if (RandomSubset{Size: 4, K: 0, Amount: 10}).Delay(0, 0) != 0 {
		t.Fatal("K=0 must inject nothing")
	}
	if (RandomSubset{Size: 4, K: 2, Amount: 0}).Delay(0, 1) != 0 {
		t.Fatal("Amount=0 must inject nothing")
	}
}

func TestLinearSkew(t *testing.T) {
	inj := LinearSkew{StepMs: 1}
	if inj.Name() == "" {
		t.Fatal("empty name")
	}
	for r := 0; r < 32; r++ {
		if got := inj.Delay(9, r); got != float64(r+1) {
			t.Fatalf("rank %d delay %v, want %v", r, got, r+1)
		}
	}
}

func TestShiftedSevere(t *testing.T) {
	inj := ShiftedSevere{Size: 8, MinMs: 50, MaxMs: 400}
	if inj.Name() == "" {
		t.Fatal("empty name")
	}
	for step := 0; step < 20; step++ {
		seen := make(map[float64]bool)
		for r := 0; r < 8; r++ {
			d := inj.Delay(step, r)
			if d < 50 || d > 400 {
				t.Fatalf("delay %v outside [50,400]", d)
			}
			seen[d] = true
		}
		if len(seen) != 8 {
			t.Fatalf("step %d produced %d distinct delays, want 8 (all ranks skewed)", step, len(seen))
		}
	}
	// The schedule must rotate: the rank receiving the maximum delay changes
	// across steps.
	maxRank := func(step int) int {
		best, bestD := -1, -1.0
		for r := 0; r < 8; r++ {
			if d := inj.Delay(step, r); d > bestD {
				best, bestD = r, d
			}
		}
		return best
	}
	if maxRank(0) == maxRank(1) {
		t.Fatal("severe skew schedule does not shift across steps")
	}
	// Degenerate size.
	if (ShiftedSevere{Size: 1, MinMs: 5, MaxMs: 10}).Delay(0, 0) != 5 {
		t.Fatal("size-1 severe skew should return MinMs")
	}
}

func checkDistribution(t *testing.T, d Distribution, wantMeanLo, wantMeanHi float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	const n = 30000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.Sample(rng)
		if samples[i] < d.MinMs || samples[i] > d.MaxMs {
			t.Fatalf("%s sample %v outside [%v,%v]", d.Label, samples[i], d.MinMs, d.MaxMs)
		}
	}
	st := Summarize(samples)
	if st.Mean < wantMeanLo || st.Mean > wantMeanHi {
		t.Fatalf("%s mean %v outside expected [%v, %v]", d.Label, st.Mean, wantMeanLo, wantMeanHi)
	}
	if st.Std == 0 {
		t.Fatalf("%s has zero variance", d.Label)
	}
}

func TestVideoBatchRuntimeMatchesPaperShape(t *testing.T) {
	// Paper: 201–3410 ms, mean 1235 ms. Allow a generous band around the
	// reported mean.
	checkDistribution(t, VideoBatchRuntime(), 1000, 1500)
}

func TestTransformerBatchRuntimeMatchesPaperShape(t *testing.T) {
	// Paper: 179–3482 ms, mean 475 ms.
	checkDistribution(t, TransformerBatchRuntime(), 400, 560)
}

func TestCloudBatchRuntimeMatchesPaperShape(t *testing.T) {
	// Paper: 399–1892 ms, mean 454 ms.
	checkDistribution(t, CloudBatchRuntime(), 410, 520)
}

func TestDistributionMeanHelper(t *testing.T) {
	d := CloudBatchRuntime()
	m := d.Mean(5000, 3)
	if m < d.MinMs || m > d.MaxMs {
		t.Fatalf("Mean() = %v outside the support", m)
	}
	if d.Name() != d.Label {
		t.Fatal("Name must return the label")
	}
}

func TestSequenceCostModel(t *testing.T) {
	m := UCF101CostModel()
	if m.Runtime(0) != m.BaseMs {
		t.Fatal("zero-length runtime should be the base cost")
	}
	if m.Runtime(100) <= m.Runtime(10) {
		t.Fatal("runtime must grow with workload size")
	}
	// A median batch (16 videos x ~167 frames) should land in the same order
	// of magnitude as the paper's 1235 ms mean.
	medianBatch := m.Runtime(16 * 167)
	if medianBatch < 600 || medianBatch > 2200 {
		t.Fatalf("median batch runtime %v ms implausible vs paper's 1235 ms", medianBatch)
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{1, 2, 3, 4})
	if st.Min != 1 || st.Max != 4 || math.Abs(st.Mean-2.5) > 1e-12 {
		t.Fatalf("Summarize = %+v", st)
	}
	if math.Abs(st.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("Std = %v", st.Std)
	}
	if Summarize(nil) != (Stats{}) {
		t.Fatal("empty summarize should be zero")
	}
}

func TestHistogramCoversAllSamples(t *testing.T) {
	f := func(raw []float64, bucketsRaw uint8) bool {
		buckets := int(bucketsRaw%20) + 1
		samples := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			samples = append(samples, math.Mod(x, 1e4))
		}
		if len(samples) == 0 {
			return true
		}
		_, counts := Histogram(samples, buckets)
		total := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == len(samples)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	if e, c := Histogram(nil, 5); e != nil || c != nil {
		t.Fatal("empty histogram must be nil")
	}
	if e, c := Histogram([]float64{1}, 0); e != nil || c != nil {
		t.Fatal("zero buckets must be nil")
	}
}
