package harness

import (
	"fmt"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/core"
	"eagersgd/internal/data"
	"eagersgd/internal/faults"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/nn"
	"eagersgd/internal/optimizer"
	"eagersgd/internal/trace"
)

// Synchronous baseline styles (§3), mapped onto collective reducer options.
const (
	styleDeep500 = "deep500" // ordered chunked reductions (DAG control deps)
	styleHorovod = "horovod" // negotiation round, then one fused allreduce
)

// variant describes one SGD implementation under comparison. Reducers for a
// variant are constructed through the public collective seam, so the harness
// exercises exactly the configuration surface users see.
type variant struct {
	name      string              // display name, e.g. "synch-SGD (deep500)"
	key       string              // report-value key, e.g. "synch-deep500"
	eager     bool                // eager variants diverge and need model sync
	opts      []collective.Option // reducer construction options
	syncEvery int                 // model synchronization period for eager variants
}

func synchVariant(style string) variant {
	opts := []collective.Option{collective.WithMode(collective.Sync)}
	if style == styleHorovod {
		opts = append(opts, collective.WithNegotiation())
	} else {
		opts = append(opts, collective.WithChunks(4))
	}
	return variant{name: "synch-SGD (" + style + ")", key: "synch-" + style, opts: opts}
}

func eagerVariant(mode collective.Mode, syncEvery int) variant {
	return variant{
		name:      fmt.Sprintf("eager-SGD (%s)", mode),
		key:       "eager-" + mode.String(),
		eager:     true,
		opts:      []collective.Option{collective.WithMode(mode)},
		syncEvery: syncEvery,
	}
}

// trainingSpec bundles everything needed to run one distributed training
// configuration.
type trainingSpec struct {
	name         string
	size         int
	steps        int
	evalEvery    int
	lr           float64
	baseMs       float64
	costModel    *imbalance.SequenceCostModel
	injector     imbalance.Injector
	clock        imbalance.Clock
	seed         int64
	overlap      bool // bucketed overlapped exchange (Config.Overlap)
	bucketElems  int
	faults       *faults.Scenario // fault-injection scenario (Config.Faults)
	peerDeadline time.Duration    // failure-detector deadline (Config.PeerDeadline)
	buildTask    func(rank, size int) core.Task
}

// runVariant executes the spec with the given SGD variant and returns the
// run result.
func runVariant(spec trainingSpec, v variant) (*core.RunResult, error) {
	var worldOpts []collective.Option
	if spec.faults != nil {
		worldOpts = append(worldOpts, collective.WithFaults(*spec.faults))
	}
	return core.Run(core.RunConfig{
		Name:           fmt.Sprintf("%s %s", spec.name, v.name),
		Size:           spec.size,
		Steps:          spec.steps,
		EvalEverySteps: spec.evalEvery,
		FinalSync:      true,
		WorldOptions:   worldOpts,
		Build: func(rank int, n *collective.Node) (*core.Trainer, error) {
			task := spec.buildTask(rank, spec.size)
			opts := append([]collective.Option{collective.WithSeed(spec.seed)}, v.opts...)
			if spec.peerDeadline > 0 {
				opts = append(opts, collective.WithPeerDeadline(spec.peerDeadline))
			}
			if spec.overlap {
				bt, ok := task.(core.BucketedTask)
				if !ok {
					return nil, fmt.Errorf("harness: task %T does not support the overlapped exchange", task)
				}
				opts = append(opts,
					collective.WithOverlap(),
					collective.WithBucketElems(spec.bucketElems),
					collective.WithBucketLayout(core.BucketLayout(bt, spec.bucketElems)...))
			}
			ex, err := n.Reducer(task.NumParams(), opts...)
			if err != nil {
				return nil, err
			}
			syncEvery := 0
			if v.eager {
				syncEvery = v.syncEvery
			}
			return core.NewTrainer(core.Config{
				Node:            n,
				Task:            task,
				Exchanger:       ex,
				Optimizer:       optimizer.NewSGD(spec.lr),
				Injector:        spec.injector,
				Clock:           spec.clock,
				BaseStepPaperMs: spec.baseMs,
				CostModel:       spec.costModel,
				SyncEverySteps:  syncEvery,
				PeerDeadline:    spec.peerDeadline,
			})
		},
	})
}

// splitRegression splits a generated dataset into train and eval portions
// sharing the same ground truth.
func splitRegression(full *data.RegressionDataset, evalFraction float64) (*data.RegressionDataset, *data.RegressionDataset) {
	n := full.Len()
	cut := n - int(float64(n)*evalFraction)
	train := &data.RegressionDataset{Inputs: full.Inputs[:cut], Targets: full.Targets[:cut], Coefficients: full.Coefficients}
	eval := &data.RegressionDataset{Inputs: full.Inputs[cut:], Targets: full.Targets[cut:], Coefficients: full.Coefficients}
	return train, eval
}

// splitClassification splits a generated dataset into train and eval
// portions.
func splitClassification(full *data.ClassificationDataset, evalFraction float64) (*data.ClassificationDataset, *data.ClassificationDataset) {
	n := full.Len()
	cut := n - int(float64(n)*evalFraction)
	train := &data.ClassificationDataset{Inputs: full.Inputs[:cut], Labels: full.Labels[:cut], Classes: full.Classes}
	eval := &data.ClassificationDataset{Inputs: full.Inputs[cut:], Labels: full.Labels[cut:], Classes: full.Classes}
	return train, eval
}

// splitSequences splits a generated sequence dataset into train and eval
// portions.
func splitSequences(full *data.SequenceDataset, evalFraction float64) (*data.SequenceDataset, *data.SequenceDataset) {
	n := full.Len()
	cut := n - int(float64(n)*evalFraction)
	train := &data.SequenceDataset{Sequences: full.Sequences[:cut], Labels: full.Labels[:cut], Classes: full.Classes, FeatDim: full.FeatDim}
	eval := &data.SequenceDataset{Sequences: full.Sequences[cut:], Labels: full.Labels[cut:], Classes: full.Classes, FeatDim: full.FeatDim}
	return train, eval
}

// Fig10Hyperplane reproduces Fig. 10: hyperplane regression on 8 processes
// with 200/300/400 ms delays injected on one random rank per step, comparing
// synch-SGD (Deep500-style) against eager-SGD with solo allreduce, plus a
// majority data point (the text of §6.2.1 compares solo and majority
// throughput).
func Fig10Hyperplane(cfg Config) (*Report, error) {
	p := experimentParams(cfg)
	r := newReport("fig10", "Hyperplane regression: throughput and validation loss under light imbalance")
	clock := imbalance.ScaledClock(p.fig10Clock)

	full := data.Hyperplane(p.fig10Dim, p.fig10Samples, 0.05, cfg.Seed+10)
	train, eval := splitRegression(full, 0.125)
	buildTask := func(rank, size int) core.Task {
		net := nn.NewNetwork(nn.MSE{}, nn.NewDense(p.fig10Dim, 1))
		return core.NewRegressionTask("hyperplane", net, train, eval, p.fig10Batch, rank, size, cfg.Seed+11)
	}

	table := trace.NewTable(
		fmt.Sprintf("Fig. 10 — hyperplane regression, %d processes, batch %d/rank, %d steps (clock scale %g)",
			p.fig10Procs, p.fig10Batch, p.fig10Steps, p.fig10Clock),
		"injection ms", "variant", "throughput steps/s", "training time s", "final val loss", "speedup vs synch")

	for _, inj := range p.fig10Injections {
		spec := trainingSpec{
			name: fmt.Sprintf("fig10-%.0fms", inj), size: p.fig10Procs, steps: p.fig10Steps,
			evalEvery: p.evalEvery, lr: p.fig10LR, baseMs: p.fig10BaseMs,
			injector: imbalance.RandomSubset{Size: p.fig10Procs, K: 1, Amount: inj, Seed: cfg.Seed + int64(inj)},
			clock:    clock, seed: cfg.Seed, overlap: cfg.Overlap, bucketElems: cfg.BucketElems, faults: cfg.Faults, peerDeadline: cfg.PeerDeadline, buildTask: buildTask,
		}

		variants := []variant{
			synchVariant(styleDeep500),
			eagerVariant(collective.Solo, p.syncEvery),
		}
		if inj == p.fig10Injections[0] {
			// The paper reports one majority data point for the lightest
			// injection (solo 1.64 vs majority 1.37 steps/s at 200 ms).
			variants = append(variants, eagerVariant(collective.Majority, p.syncEvery))
		}

		var synchThroughput float64
		for _, v := range variants {
			res, err := runVariant(spec, v)
			if err != nil {
				return nil, err
			}
			speedup := 0.0
			if !v.eager {
				synchThroughput = res.Throughput
				speedup = 1
			} else if synchThroughput > 0 {
				speedup = res.Throughput / synchThroughput
			}
			key := fmt.Sprintf("%s/%.0f", shortName(v), inj)
			r.Values["throughput/"+key] = res.Throughput
			r.Values["loss/"+key] = res.Final.Loss
			r.Values["speedup/"+key] = speedup
			table.AddRow(inj, v.name, res.Throughput, res.TrainingTime.Seconds(), res.Final.Loss, speedup)
			res.EvalLoss.Name = fmt.Sprintf("%s-%.0fms val-loss", v.name, inj)
			r.Curves = append(r.Curves, res.EvalLoss)
		}
	}
	r.Tables = append(r.Tables, table)
	r.addNote("eager-SGD (solo) sustains its throughput as the injection grows while synch-SGD degrades (paper: 1.50x/1.75x/2.01x at 200/300/400 ms)")
	r.addNote("validation losses converge to equivalent values for synch and eager (paper: both reach ~4.7)")
	return r, nil
}

func shortName(v variant) string { return v.key }

// Fig11ImageNetLight reproduces Fig. 11: an ImageNet-scale classification
// stand-in on 64 processes with 4 random ranks delayed by 300/460 ms per
// step, comparing Deep500- and Horovod-style synch-SGD against eager-SGD
// (solo): throughput (11a) and top-1 accuracy over training time (11b/11c).
func Fig11ImageNetLight(cfg Config) (*Report, error) {
	p := experimentParams(cfg)
	r := newReport("fig11", "ImageNet-like classification under light imbalance")
	clock := imbalance.ScaledClock(p.fig11Clock)

	full := data.Blobs(p.fig11Classes, p.fig11Dim, p.fig11Samples/p.fig11Classes, 1.5, cfg.Seed+20)
	train, eval := splitClassification(full, 0.15)
	buildTask := func(rank, size int) core.Task {
		net := nn.NewNetwork(nn.SoftmaxCrossEntropy{},
			nn.NewDense(p.fig11Dim, p.fig11Hidden), nn.NewTanh(p.fig11Hidden), nn.NewDense(p.fig11Hidden, p.fig11Classes))
		return core.NewClassificationTask("imagenet-like", net, train, eval, p.fig11Batch, rank, size, cfg.Seed+21)
	}

	table := trace.NewTable(
		fmt.Sprintf("Fig. 11 — ImageNet-like classification, %d processes, %d of them delayed per step (clock scale %g)",
			p.fig11Procs, p.fig11InjectedK, p.fig11Clock),
		"injection ms", "variant", "throughput steps/s", "training time s", "final top-1", "final top-5", "speedup vs deep500")

	for _, inj := range p.fig11Injections {
		spec := trainingSpec{
			name: fmt.Sprintf("fig11-%.0fms", inj), size: p.fig11Procs, steps: p.fig11Steps,
			evalEvery: p.evalEvery, lr: p.fig11LR, baseMs: p.fig11BaseMs,
			injector: imbalance.RandomSubset{Size: p.fig11Procs, K: p.fig11InjectedK, Amount: inj, Seed: cfg.Seed + int64(inj)},
			clock:    clock, seed: cfg.Seed, overlap: cfg.Overlap, bucketElems: cfg.BucketElems, faults: cfg.Faults, peerDeadline: cfg.PeerDeadline, buildTask: buildTask,
		}
		variants := []variant{
			synchVariant(styleDeep500),
			synchVariant(styleHorovod),
			eagerVariant(collective.Solo, p.syncEvery),
		}
		var deep500Throughput float64
		for _, v := range variants {
			res, err := runVariant(spec, v)
			if err != nil {
				return nil, err
			}
			speedup := 0.0
			if v.key == "synch-"+styleDeep500 {
				deep500Throughput = res.Throughput
				speedup = 1
			} else if deep500Throughput > 0 {
				speedup = res.Throughput / deep500Throughput
			}
			key := fmt.Sprintf("%s/%.0f", shortName(v), inj)
			r.Values["throughput/"+key] = res.Throughput
			r.Values["top1/"+key] = res.Final.Top1
			r.Values["speedup/"+key] = speedup
			table.AddRow(inj, v.name, res.Throughput, res.TrainingTime.Seconds(), res.Final.Top1, res.Final.Top5, speedup)
			res.EvalTop1.Name = fmt.Sprintf("%s-%.0fms top-1", v.name, inj)
			r.Curves = append(r.Curves, res.EvalTop1)
		}
	}
	r.Tables = append(r.Tables, table)
	r.addNote("eager-SGD (solo) improves throughput over both synch-SGD baselines while final top-1 accuracy stays equivalent (paper: 1.14-1.25x speedup, 75.2%% vs 75.7/75.8%% top-1)")
	return r, nil
}

// Fig12CifarSevere reproduces Fig. 12: a CIFAR-scale classification stand-in
// on 8 processes under severe, shifting skew (all ranks delayed 50–400 ms),
// comparing synch-SGD (Horovod-style) against eager-SGD with solo and
// majority allreduce. Solo trains fastest but loses accuracy; majority keeps
// synch-level accuracy with a speedup.
func Fig12CifarSevere(cfg Config) (*Report, error) {
	p := experimentParams(cfg)
	r := newReport("fig12", "CIFAR-like classification under severe imbalance")
	clock := imbalance.ScaledClock(p.fig12Clock)

	full := data.Blobs(p.fig12Classes, p.fig12Dim, p.fig12Samples/p.fig12Classes, 1.6, cfg.Seed+30)
	train, eval := splitClassification(full, 0.15)
	buildTask := func(rank, size int) core.Task {
		net := nn.NewNetwork(nn.SoftmaxCrossEntropy{},
			nn.NewDense(p.fig12Dim, p.fig12Hidden), nn.NewTanh(p.fig12Hidden), nn.NewDense(p.fig12Hidden, p.fig12Classes))
		return core.NewClassificationTask("cifar-like", net, train, eval, p.fig12Batch, rank, size, cfg.Seed+31)
	}
	spec := trainingSpec{
		name: "fig12", size: p.fig12Procs, steps: p.fig12Steps,
		evalEvery: p.evalEvery, lr: p.fig12LR, baseMs: p.fig12BaseMs,
		injector: imbalance.ShiftedSevere{Size: p.fig12Procs, MinMs: p.fig12MinMs, MaxMs: p.fig12MaxMs},
		clock:    clock, seed: cfg.Seed, overlap: cfg.Overlap, bucketElems: cfg.BucketElems, faults: cfg.Faults, peerDeadline: cfg.PeerDeadline, buildTask: buildTask,
	}

	table := trace.NewTable(
		fmt.Sprintf("Fig. 12 — CIFAR-like classification, %d processes, all ranks skewed %g–%g ms shifted per step (clock scale %g)",
			p.fig12Procs, p.fig12MinMs, p.fig12MaxMs, p.fig12Clock),
		"variant", "throughput steps/s", "training time s", "final top-1", "final top-5", "speedup vs synch")

	variants := []variant{
		synchVariant(styleHorovod),
		eagerVariant(collective.Solo, p.syncEvery),
		eagerVariant(collective.Majority, p.syncEvery),
	}
	var synchThroughput float64
	for _, v := range variants {
		res, err := runVariant(spec, v)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if !v.eager {
			synchThroughput = res.Throughput
			speedup = 1
		} else if synchThroughput > 0 {
			speedup = res.Throughput / synchThroughput
		}
		key := shortName(v)
		r.Values["throughput/"+key] = res.Throughput
		r.Values["top1/"+key] = res.Final.Top1
		r.Values["speedup/"+key] = speedup
		table.AddRow(v.name, res.Throughput, res.TrainingTime.Seconds(), res.Final.Top1, res.Final.Top5, speedup)
		res.EvalTop1.Name = v.name + " top-1"
		r.Curves = append(r.Curves, res.EvalTop1)
	}
	r.Tables = append(r.Tables, table)
	r.addNote("under severe skew solo allreduce trains fastest but loses accuracy; majority allreduce keeps synch-level accuracy with a speedup (paper: 1.29x at equal accuracy, solo noticeably lower)")
	return r, nil
}

// Fig13VideoLSTM reproduces Fig. 13: LSTM video classification with inherent
// load imbalance from variable-length sequences (no injected delays),
// comparing synch-SGD (Horovod-style) against eager-SGD with solo and
// majority allreduce.
func Fig13VideoLSTM(cfg Config) (*Report, error) {
	p := experimentParams(cfg)
	r := newReport("fig13", "Video LSTM classification under inherent imbalance")
	clock := imbalance.ScaledClock(p.fig13Clock)

	full := data.Sequences(data.SequenceConfig{
		Classes: p.fig13Classes, FeatDim: p.fig13FeatDim, Samples: p.fig13Samples, Noise: 1.0,
		Lengths: data.UCF101LengthDistribution{MinFrames: p.fig13MinLen, MaxFrames: p.fig13MaxLen, Median: p.fig13MedianLen, Sigma: 0.5},
		Seed:    cfg.Seed + 40,
	})
	train, eval := splitSequences(full, 0.15)
	costModel := &imbalance.SequenceCostModel{BaseMs: 20, PerUnitMs: p.fig13PerUnitMs}
	buildTask := func(rank, size int) core.Task {
		model := nn.NewLSTMClassifier(p.fig13FeatDim, p.fig13Hidden, p.fig13Classes)
		return core.NewSequenceTask("video-lstm", model, train, eval, p.fig13Batch, rank, size, cfg.Seed+41)
	}
	spec := trainingSpec{
		name: "fig13", size: p.fig13Procs, steps: p.fig13Steps,
		evalEvery: p.evalEvery, lr: p.fig13LR, baseMs: 0, costModel: costModel,
		injector: imbalance.None{}, clock: clock, seed: cfg.Seed, overlap: cfg.Overlap, bucketElems: cfg.BucketElems, faults: cfg.Faults, peerDeadline: cfg.PeerDeadline, buildTask: buildTask,
	}

	table := trace.NewTable(
		fmt.Sprintf("Fig. 13 — video LSTM, %d processes, inherent imbalance from sequence lengths %d–%d frames (clock scale %g)",
			p.fig13Procs, p.fig13MinLen, p.fig13MaxLen, p.fig13Clock),
		"variant", "throughput steps/s", "training time s", "final top-1", "final top-5", "speedup vs synch")

	variants := []variant{
		synchVariant(styleHorovod),
		eagerVariant(collective.Solo, p.syncEvery),
		eagerVariant(collective.Majority, p.syncEvery),
	}
	var synchThroughput float64
	for _, v := range variants {
		res, err := runVariant(spec, v)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if !v.eager {
			synchThroughput = res.Throughput
			speedup = 1
		} else if synchThroughput > 0 {
			speedup = res.Throughput / synchThroughput
		}
		key := shortName(v)
		r.Values["throughput/"+key] = res.Throughput
		r.Values["top1/"+key] = res.Final.Top1
		r.Values["top5/"+key] = res.Final.Top5
		r.Values["speedup/"+key] = speedup
		table.AddRow(v.name, res.Throughput, res.TrainingTime.Seconds(), res.Final.Top1, res.Final.Top5, speedup)
		res.EvalTop1.Name = v.name + " top-1"
		res.TrainLoss.Name = v.name + " train-loss"
		r.Curves = append(r.Curves, res.EvalTop1, res.TrainLoss)
	}
	r.Tables = append(r.Tables, table)
	r.addNote("majority allreduce matches synch-SGD accuracy with a speedup; solo allreduce is fastest but loses accuracy under the severe inherent imbalance (paper: 1.27x for majority at equal accuracy, 1.64x for solo with lower accuracy)")
	return r, nil
}

// ScalingSummary derives the strong/weak-scaling observations of §6.2–§6.3:
// throughput of a single process versus the distributed variants on the
// hyperplane task.
func ScalingSummary(cfg Config) (*Report, error) {
	p := experimentParams(cfg)
	r := newReport("scaling", "Strong/weak scaling summary on the hyperplane task")
	clock := imbalance.ScaledClock(p.fig10Clock)

	full := data.Hyperplane(p.fig10Dim, p.fig10Samples, 0.05, cfg.Seed+50)
	train, eval := splitRegression(full, 0.125)
	buildTask := func(rank, size int) core.Task {
		net := nn.NewNetwork(nn.MSE{}, nn.NewDense(p.fig10Dim, 1))
		return core.NewRegressionTask("hyperplane", net, train, eval, p.fig10Batch, rank, size, cfg.Seed+51)
	}
	steps := p.fig10Steps / 2
	if steps < 10 {
		steps = 10
	}
	inj := p.fig10Injections[0]

	single := trainingSpec{
		name: "scaling-1", size: 1, steps: steps, evalEvery: 0, lr: p.fig10LR,
		baseMs:   p.fig10BaseMs * float64(p.fig10Procs), // one process does the whole global batch
		injector: imbalance.None{}, clock: clock, seed: cfg.Seed, overlap: cfg.Overlap, bucketElems: cfg.BucketElems, faults: cfg.Faults, peerDeadline: cfg.PeerDeadline, buildTask: buildTask,
	}
	singleRes, err := runVariant(single, synchVariant(styleDeep500))
	if err != nil {
		return nil, err
	}

	multi := trainingSpec{
		name: fmt.Sprintf("scaling-%d", p.fig10Procs), size: p.fig10Procs, steps: steps,
		evalEvery: 0, lr: p.fig10LR, baseMs: p.fig10BaseMs,
		injector: imbalance.RandomSubset{Size: p.fig10Procs, K: 1, Amount: inj, Seed: cfg.Seed},
		clock:    clock, seed: cfg.Seed, overlap: cfg.Overlap, bucketElems: cfg.BucketElems, faults: cfg.Faults, peerDeadline: cfg.PeerDeadline, buildTask: buildTask,
	}

	table := trace.NewTable(
		fmt.Sprintf("Strong scaling on %d processes vs 1 process (injection %.0f ms)", p.fig10Procs, inj),
		"configuration", "throughput steps/s", "speedup vs 1 process")
	table.AddRow("1 process (whole batch)", singleRes.Throughput, 1.0)
	r.Values["throughput/single"] = singleRes.Throughput

	for _, v := range []variant{synchVariant(styleDeep500), eagerVariant(collective.Solo, p.syncEvery)} {
		res, err := runVariant(multi, v)
		if err != nil {
			return nil, err
		}
		speedup := res.Throughput / singleRes.Throughput
		table.AddRow(fmt.Sprintf("%d processes, %s", p.fig10Procs, v.name), res.Throughput, speedup)
		r.Values["speedup/"+shortName(v)] = speedup
	}
	r.Tables = append(r.Tables, table)
	r.addNote("eager-SGD retains more of the ideal strong-scaling speedup than synch-SGD under injected imbalance (paper: 3.8x vs lower for synch on 8 GPUs at 400 ms injection)")
	return r, nil
}

// QuorumSpectrum is the §8 extension experiment: the quorum allreduce
// interpolates between majority (1 candidate initiator) and solo (P
// candidates); more candidates mean lower latency but fewer fresh gradients
// per round.
func QuorumSpectrum(cfg Config) (*Report, error) {
	p := experimentParams(cfg)
	r := newReport("quorum", "Quorum spectrum between solo, majority, and full collectives")
	clock := imbalance.ScaledClock(p.fig10Clock)
	size := p.fig10Procs
	steps := p.fig10Steps / 2
	if steps < 10 {
		steps = 10
	}

	full := data.Hyperplane(p.fig10Dim, p.fig10Samples, 0.05, cfg.Seed+60)
	train, eval := splitRegression(full, 0.125)
	buildTask := func(rank, sz int) core.Task {
		net := nn.NewNetwork(nn.MSE{}, nn.NewDense(p.fig10Dim, 1))
		return core.NewRegressionTask("hyperplane", net, train, eval, p.fig10Batch, rank, sz, cfg.Seed+61)
	}
	injector := imbalance.LinearSkew{StepMs: 100}

	table := trace.NewTable(
		fmt.Sprintf("Quorum spectrum on %d processes under linear skew (clock scale %g)", size, p.fig10Clock),
		"candidates", "mean active processes", "throughput steps/s", "final val loss")

	candidateCounts := []int{1, 2, size / 2, size}
	for _, cand := range candidateCounts {
		cand := cand
		//eagervet:ignore ctxcheck -- figure harness sweep: each run is bounded by Steps on an in-process world; the harness owns the process lifetime.
		res, err := core.Run(core.RunConfig{
			Name:      fmt.Sprintf("quorum-%d", cand),
			Size:      size,
			Steps:     steps,
			FinalSync: true,
			Build: func(rank int, n *collective.Node) (*core.Trainer, error) {
				task := buildTask(rank, size)
				ex, err := n.Reducer(task.NumParams(),
					collective.WithMode(collective.Quorum(cand)), collective.WithSeed(cfg.Seed))
				if err != nil {
					return nil, err
				}
				return core.NewTrainer(core.Config{
					Node:            n,
					Task:            task,
					Exchanger:       ex,
					Optimizer:       optimizer.NewSGD(p.fig10LR),
					Injector:        injector,
					Clock:           clock,
					BaseStepPaperMs: p.fig10BaseMs / 2,
					SyncEverySteps:  p.syncEvery,
				})
			},
		})
		if err != nil {
			return nil, err
		}
		table.AddRow(cand, res.MeanActiveProcesses, res.Throughput, res.Final.Loss)
		r.Values[fmt.Sprintf("nap/candidates-%d", cand)] = res.MeanActiveProcesses
		r.Values[fmt.Sprintf("throughput/candidates-%d", cand)] = res.Throughput
	}
	r.Tables = append(r.Tables, table)
	r.addNote("expected participation decreases and throughput increases as the candidate count grows from 1 (majority) to P (solo)")
	return r, nil
}
