package harness

// params collects every scale-dependent constant of the training experiments
// in one place, so Table 1 (reproduction column), the per-figure runners, and
// the tests all agree on the configuration actually used.
type params struct {
	// Fig. 9 microbenchmark.
	fig9Procs      int
	fig9Iterations int
	fig9Sizes      []int // message sizes in float64 elements
	fig9SkewStepMs float64
	fig9Clock      float64

	// Fig. 10 hyperplane regression.
	fig10Procs      int
	fig10Dim        int
	fig10Samples    int
	fig10Batch      int
	fig10Steps      int
	fig10Injections []float64
	fig10BaseMs     float64
	fig10Clock      float64
	fig10LR         float64

	// Fig. 11 ImageNet-like classification, light imbalance.
	fig11Procs      int
	fig11Classes    int
	fig11Dim        int
	fig11Hidden     int
	fig11Samples    int
	fig11Batch      int
	fig11Steps      int
	fig11Injections []float64
	fig11InjectedK  int
	fig11BaseMs     float64
	fig11Clock      float64
	fig11LR         float64

	// Fig. 12 CIFAR-like classification, severe imbalance.
	fig12Procs   int
	fig12Classes int
	fig12Dim     int
	fig12Hidden  int
	fig12Samples int
	fig12Batch   int
	fig12Steps   int
	fig12MinMs   float64
	fig12MaxMs   float64
	fig12BaseMs  float64
	fig12Clock   float64
	fig12LR      float64

	// Fig. 13 video LSTM, inherent imbalance.
	fig13Procs     int
	fig13Classes   int
	fig13FeatDim   int
	fig13Hidden    int
	fig13Samples   int
	fig13Batch     int
	fig13Steps     int
	fig13MinLen    int
	fig13MaxLen    int
	fig13MedianLen float64
	fig13PerUnitMs float64
	fig13Clock     float64
	fig13LR        float64

	evalEvery int
	syncEvery int
}

func (p params) fig11Params() int {
	return p.fig11Dim*p.fig11Hidden + p.fig11Hidden + p.fig11Hidden*p.fig11Classes + p.fig11Classes
}

func (p params) fig12Params() int {
	return p.fig12Dim*p.fig12Hidden + p.fig12Hidden + p.fig12Hidden*p.fig12Classes + p.fig12Classes
}

func (p params) fig13Params() int {
	h, i, c := p.fig13Hidden, p.fig13FeatDim, p.fig13Classes
	return 4*h*i + 4*h*h + 4*h + c*h + c
}

// experimentParams returns the parameter set for the configured scale.
//
// Full scale keeps the paper's process counts (8 / 64 / 8 / 8) and its
// injected-delay magnitudes in paper milliseconds, replayed through a scaled
// clock; model and dataset sizes are CPU-scale stand-ins. Quick scale shrinks
// everything so the entire suite runs in a few seconds for tests.
func experimentParams(cfg Config) params {
	if cfg.Quick {
		return params{
			// The quick microbenchmark replays the skew at 4x so the injected
			// delays (8–32 ms real) dominate engine overhead and scheduler
			// noise by an order of magnitude even under the race detector —
			// that is what makes the latency-ratio assertions in
			// TestFig9MicrobenchmarkQuick deterministic rather than gated on
			// race.Enabled. Fewer iterations keep the wall time in check.
			fig9Procs: 8, fig9Iterations: 6,
			fig9Sizes:      []int{8, 512, 4096},
			fig9SkewStepMs: 1, fig9Clock: cfg.clockScale(4.0),

			fig10Procs: 4, fig10Dim: 64, fig10Samples: 512, fig10Batch: 16,
			fig10Steps: 40, fig10Injections: []float64{200},
			fig10BaseMs: 180, fig10Clock: cfg.clockScale(0.01), fig10LR: 0.05,

			fig11Procs: 8, fig11Classes: 8, fig11Dim: 24, fig11Hidden: 24,
			fig11Samples: 640, fig11Batch: 8, fig11Steps: 40,
			fig11Injections: []float64{300}, fig11InjectedK: 1,
			fig11BaseMs: 640, fig11Clock: cfg.clockScale(0.01), fig11LR: 0.1,

			fig12Procs: 4, fig12Classes: 6, fig12Dim: 16, fig12Hidden: 24,
			fig12Samples: 480, fig12Batch: 16, fig12Steps: 50,
			fig12MinMs: 50, fig12MaxMs: 400, fig12BaseMs: 150,
			fig12Clock: cfg.clockScale(0.03), fig12LR: 0.1,

			fig13Procs: 4, fig13Classes: 5, fig13FeatDim: 8, fig13Hidden: 12,
			fig13Samples: 160, fig13Batch: 4, fig13Steps: 30,
			fig13MinLen: 4, fig13MaxLen: 32, fig13MedianLen: 10,
			fig13PerUnitMs: 3, fig13Clock: cfg.clockScale(0.04), fig13LR: 0.08,

			evalEvery: 10, syncEvery: 10,
		}
	}
	return params{
		// Fig. 9: 32 processes, 64 B – 4 MB messages, linear skew 1–32 ms
		// (paper §6.1), replayed in real time so the skew dominates the
		// schedule-engine overhead as it does on the paper's system.
		fig9Procs: 32, fig9Iterations: 24,
		fig9Sizes:      []int{8, 64, 512, 4096, 32768, 524288},
		fig9SkewStepMs: 1, fig9Clock: cfg.clockScale(1.0),

		// Fig. 10: 8 processes, 1 of 8 delayed by 200/300/400 ms per step,
		// per-step compute modelled at ~195 ms (the paper's single-GPU
		// throughput of 0.64 steps/s split over 8 ranks).
		fig10Procs: 8, fig10Dim: 256, fig10Samples: 4096, fig10Batch: 32,
		fig10Steps: 160, fig10Injections: []float64{200, 300, 400},
		fig10BaseMs: 195, fig10Clock: cfg.clockScale(0.004), fig10LR: 0.05,

		// Fig. 11: 64 processes, 4 of 64 delayed by 300/460 ms, base step
		// ~640 ms (single-GPU 1.56 steps/s at batch 128).
		fig11Procs: 64, fig11Classes: 10, fig11Dim: 32, fig11Hidden: 32,
		fig11Samples: 4096, fig11Batch: 8, fig11Steps: 60,
		fig11Injections: []float64{300, 460}, fig11InjectedK: 4,
		fig11BaseMs: 640, fig11Clock: cfg.clockScale(0.04), fig11LR: 0.1,

		// Fig. 12: 8 processes, all skewed 50–400 ms, shifted every step.
		fig12Procs: 8, fig12Classes: 10, fig12Dim: 24, fig12Hidden: 32,
		fig12Samples: 2048, fig12Batch: 16, fig12Steps: 120,
		fig12MinMs: 50, fig12MaxMs: 400, fig12BaseMs: 150,
		fig12Clock: cfg.clockScale(0.01), fig12LR: 0.1,

		// Fig. 13: 8 processes, no injection — imbalance comes from the
		// variable sequence lengths themselves, amplified to paper scale by
		// the per-frame cost model.
		fig13Procs: 8, fig13Classes: 8, fig13FeatDim: 12, fig13Hidden: 20,
		fig13Samples: 512, fig13Batch: 8, fig13Steps: 80,
		fig13MinLen: 6, fig13MaxLen: 80, fig13MedianLen: 18,
		fig13PerUnitMs: 1.2, fig13Clock: cfg.clockScale(0.03), fig13LR: 0.08,

		evalEvery: 20, syncEvery: 60,
	}
}
