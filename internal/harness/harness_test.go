package harness

import (
	"strings"
	"testing"
)

func TestExperimentsListAndRunByID(t *testing.T) {
	exps := Experiments()
	if len(exps) < 10 {
		t.Fatalf("expected at least 10 experiments, got %d", len(exps))
	}
	ids := make(map[string]bool)
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig2", "fig3", "fig4", "table1", "fig9", "fig10", "fig11", "fig12", "fig13"} {
		if !ids[want] {
			t.Fatalf("experiment %q missing", want)
		}
	}
	if _, err := RunByID("nonexistent", QuickConfig()); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestReportRender(t *testing.T) {
	r := newReport("figX", "A title")
	r.addNote("a note with value %.1f", 1.5)
	r.Values["x"] = 3
	out := r.Render()
	for _, want := range []string{"FIGX", "A title", "a note with value 1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if r.Value("x") != 3 || r.Value("missing") != 0 {
		t.Fatal("Value accessor wrong")
	}
}

func TestConfigClockScale(t *testing.T) {
	if (Config{}).clockScale(0.5) != 0.5 {
		t.Fatal("default clock scale not applied")
	}
	if (Config{ClockScale: 0.1}).clockScale(0.5) != 0.1 {
		t.Fatal("explicit clock scale ignored")
	}
}

func TestFig2VideoWorkloadQuick(t *testing.T) {
	r, err := Fig2VideoWorkload(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 || len(r.Curves) != 2 {
		t.Fatalf("fig2 should produce two tables and two curves, got %d/%d", len(r.Tables), len(r.Curves))
	}
	if r.Value("video/max-frames") <= r.Value("video/min-frames") {
		t.Fatal("video length range collapsed")
	}
	// The runtime distribution must have a heavy spread (inherent imbalance).
	if r.Value("video/std-runtime-ms") <= 0 {
		t.Fatal("zero runtime spread")
	}
	if r.Value("video/mean-runtime-ms") < 500 || r.Value("video/mean-runtime-ms") > 2500 {
		t.Fatalf("mean batch runtime %.0f ms implausible vs paper's 1,235 ms", r.Value("video/mean-runtime-ms"))
	}
}

func TestFig3TransformerWorkloadQuick(t *testing.T) {
	r, err := Fig3TransformerWorkload(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := r.Value("transformer/mean-runtime-ms")
	if mean < 350 || mean > 650 {
		t.Fatalf("transformer mean runtime %.0f ms implausible vs paper's 475 ms", mean)
	}
}

func TestFig4CloudWorkloadQuick(t *testing.T) {
	r, err := Fig4CloudWorkload(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	mean := r.Value("cloud/mean-runtime-ms")
	if mean < 400 || mean > 600 {
		t.Fatalf("cloud mean runtime %.0f ms implausible vs paper's 454 ms", mean)
	}
	// Cloud imbalance (relative spread) must be lighter than the video
	// workload's, matching §2.3.
	video, err := Fig2VideoWorkload(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	cloudCV := r.Value("cloud/std-runtime-ms") / r.Value("cloud/mean-runtime-ms")
	videoCV := video.Value("video/std-runtime-ms") / video.Value("video/mean-runtime-ms")
	if cloudCV >= videoCV {
		t.Fatalf("cloud coefficient of variation %.2f should be below video's %.2f", cloudCV, videoCV)
	}
}

func TestTable1Networks(t *testing.T) {
	r, err := Table1Networks(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("table1 should have paper and reproduction tables, got %d", len(r.Tables))
	}
	out := r.Render()
	for _, want := range []string{"ResNet-50", "25559081", "Inception+LSTM", "hyperplane"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q", want)
		}
	}
}

func TestFig9MicrobenchmarkQuick(t *testing.T) {
	r, err := Fig9Microbenchmark(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 || len(r.Curves) != 5 {
		t.Fatalf("fig9 shape wrong: %d tables %d curves", len(r.Tables), len(r.Curves))
	}
	// The assertions below are latency RATIOS under a skew deliberately
	// replayed large (quick fig9Clock = 4.0): the synchronous allreduce is
	// structurally forced to wait out the slowest rank's ~32 ms delay while
	// solo returns after engine overhead only and majority waits for one
	// random initiator (~half the skew in expectation). The injected delays
	// dominate scheduler and race-detector noise by an order of magnitude, so
	// the thresholds — widened well below the structural ratios (solo
	// measures >5x, majority >1.5x here; the paper reports 53.3x and 2.5x) —
	// hold deterministically with and without -race.
	soloSpeedup := r.Value("speedup/solo-mean")
	majSpeedup := r.Value("speedup/majority-mean")
	if soloSpeedup <= 2 {
		t.Fatalf("solo allreduce speedup %.2f should comfortably exceed 2 under 4x-replayed skew", soloSpeedup)
	}
	if majSpeedup <= 1.1 {
		t.Fatalf("majority allreduce speedup %.2f should exceed 1.1 under 4x-replayed skew", majSpeedup)
	}
	if soloSpeedup <= majSpeedup {
		t.Fatalf("solo speedup %.2f should exceed majority speedup %.2f", soloSpeedup, majSpeedup)
	}
	// NAP: solo near 1, majority well above solo and at least ~P/3.
	p := experimentParams(QuickConfig())
	bytes := p.fig9Sizes[0] * 8
	soloNAP := r.Value(keyNAP("solo", bytes))
	majNAP := r.Value(keyNAP("majority", bytes))
	if soloNAP < 1 || soloNAP > float64(p.fig9Procs)/2 {
		t.Fatalf("solo NAP %.2f should be small (near 1)", soloNAP)
	}
	if majNAP <= soloNAP {
		t.Fatalf("majority NAP %.2f should exceed solo NAP %.2f", majNAP, soloNAP)
	}
}

func keyNAP(mode string, bytes int) string {
	return "nap/" + mode + "/" + itoa(bytes)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestFig10HyperplaneQuick(t *testing.T) {
	r, err := Fig10Hyperplane(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := experimentParams(QuickConfig())
	inj := p.fig10Injections[0]
	synchKey := "synch-deep500"
	soloKey := "eager-solo"
	synchTP := r.Value(valueKey("throughput", synchKey, inj))
	soloTP := r.Value(valueKey("throughput", soloKey, inj))
	if synchTP <= 0 || soloTP <= 0 {
		t.Fatalf("missing throughput values: %v %v", synchTP, soloTP)
	}
	if soloTP <= synchTP {
		t.Fatalf("eager-SGD throughput %.2f should exceed synch-SGD %.2f under injected imbalance", soloTP, synchTP)
	}
	// Loss equivalence: eager's final validation loss must be within 3x of
	// synch's (the paper reports equivalence; quick runs are short, so allow
	// slack while still catching divergence).
	synchLoss := r.Value(valueKey("loss", synchKey, inj))
	soloLoss := r.Value(valueKey("loss", soloKey, inj))
	if soloLoss > synchLoss*3+0.5 {
		t.Fatalf("eager-SGD validation loss %.3f diverged from synch-SGD %.3f", soloLoss, synchLoss)
	}
}

func valueKey(metric, variant string, inj float64) string {
	return metric + "/" + variant + "/" + itoa(int(inj))
}

func TestFig12CifarSevereQuick(t *testing.T) {
	r, err := Fig12CifarSevere(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	synchTP := r.Value("throughput/synch-horovod")
	soloTP := r.Value("throughput/eager-solo")
	majTP := r.Value("throughput/eager-majority")
	if !(soloTP > majTP && majTP > synchTP) {
		t.Fatalf("throughput ordering violated: solo %.2f, majority %.2f, synch %.2f (want solo > majority > synch)", soloTP, majTP, synchTP)
	}
	// Accuracy sanity: every variant must do better than chance.
	p := experimentParams(QuickConfig())
	chance := 1.0 / float64(p.fig12Classes)
	for _, k := range []string{"top1/synch-horovod", "top1/eager-majority"} {
		if r.Value(k) < chance {
			t.Fatalf("%s accuracy %.2f below chance %.2f", k, r.Value(k), chance)
		}
	}
}

func TestFig13VideoLSTMQuick(t *testing.T) {
	r, err := Fig13VideoLSTM(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	synchTP := r.Value("throughput/synch-horovod")
	soloTP := r.Value("throughput/eager-solo")
	majTP := r.Value("throughput/eager-majority")
	if !(soloTP > synchTP && majTP > synchTP) {
		t.Fatalf("eager variants should beat synch under inherent imbalance: solo %.2f, majority %.2f, synch %.2f", soloTP, majTP, synchTP)
	}
	if soloTP <= majTP {
		t.Fatalf("solo throughput %.2f should exceed majority %.2f", soloTP, majTP)
	}
	for _, k := range []string{"top5/synch-horovod", "top5/eager-majority", "top5/eager-solo"} {
		if r.Value(k) <= 0 {
			t.Fatalf("%s missing", k)
		}
	}
}

func TestQuorumSpectrumQuick(t *testing.T) {
	r, err := QuorumSpectrum(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := experimentParams(QuickConfig())
	napMajority := r.Value("nap/candidates-1")
	napSolo := r.Value(("nap/candidates-" + itoa(p.fig10Procs)))
	if napMajority <= napSolo {
		t.Fatalf("majority-like quorum NAP %.2f should exceed solo-like NAP %.2f", napMajority, napSolo)
	}
}

func TestScalingSummaryQuick(t *testing.T) {
	r, err := ScalingSummary(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Value("throughput/single") <= 0 {
		t.Fatal("single-process throughput missing")
	}
	if r.Value("speedup/eager-solo") <= r.Value("speedup/synch-deep500")*0.8 {
		t.Fatalf("eager scaling speedup %.2f should not fall far below synch %.2f",
			r.Value("speedup/eager-solo"), r.Value("speedup/synch-deep500"))
	}
}

func TestFig11ImageNetLightQuick(t *testing.T) {
	r, err := Fig11ImageNetLight(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := experimentParams(QuickConfig())
	inj := p.fig11Injections[0]
	deepTP := r.Value(valueKey("throughput", "synch-deep500", inj))
	horoTP := r.Value(valueKey("throughput", "synch-horovod", inj))
	soloTP := r.Value(valueKey("throughput", "eager-solo", inj))
	if deepTP <= 0 || horoTP <= 0 || soloTP <= 0 {
		t.Fatalf("missing throughput values: %v %v %v", deepTP, horoTP, soloTP)
	}
	if soloTP <= deepTP || soloTP <= horoTP {
		t.Fatalf("eager-SGD %.2f should beat both synch baselines (%.2f deep500, %.2f horovod)", soloTP, deepTP, horoTP)
	}
	chance := 1.0 / float64(p.fig11Classes)
	if r.Value(valueKey("top1", "eager-solo", inj)) < chance {
		t.Fatalf("eager top-1 below chance")
	}
}
