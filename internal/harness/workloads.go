package harness

import (
	"fmt"
	"math/rand"

	"eagersgd/internal/data"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/trace"
)

// Fig2VideoWorkload reproduces Fig. 2: (a) the distribution of video lengths
// in a UCF101-shaped dataset and (b) the distribution of per-batch training
// runtimes for an LSTM with batch size 16, where batch cost is proportional
// to the batch's total frame count.
func Fig2VideoWorkload(cfg Config) (*Report, error) {
	r := newReport("fig2", "UCF101 video length and LSTM batch runtime distributions")
	videos := 9537
	batches := 1192
	buckets := 18
	if cfg.Quick {
		videos, batches, buckets = 1200, 200, 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dist := data.DefaultUCF101Lengths()

	// (a) Video length distribution.
	lengths := make([]int, videos)
	for i := range lengths {
		lengths[i] = dist.Sample(rng)
	}
	edges, counts := data.LengthHistogram(lengths, buckets)
	lengthTable := trace.NewTable("Fig. 2a — video length distribution", "frames<=", "videos")
	lengthCurve := &trace.Curve{Name: "video-length-histogram"}
	for i := range edges {
		lengthTable.AddRow(edges[i], counts[i])
		lengthCurve.Add(edges[i], float64(counts[i]))
	}
	r.Tables = append(r.Tables, lengthTable)
	r.Curves = append(r.Curves, lengthCurve)

	minLen, maxLen := lengths[0], lengths[0]
	for _, l := range lengths {
		if l < minLen {
			minLen = l
		}
		if l > maxLen {
			maxLen = l
		}
	}
	r.Values["video/min-frames"] = float64(minLen)
	r.Values["video/max-frames"] = float64(maxLen)
	r.addNote("video lengths span %d–%d frames (paper: 29–1,776)", minLen, maxLen)

	// (b) Batch runtime distribution for batch size 16 under the sequence
	// cost model (runtime proportional to total frames in the batch). As in
	// the paper, videos of similar length are grouped into buckets, so a
	// batch's videos share roughly one length and the batch runtime spread
	// follows the length distribution rather than averaging it away.
	const batchSize = 16
	cost := imbalance.UCF101CostModel()
	runtimes := make([]float64, batches)
	for b := range runtimes {
		bucketLength := dist.Sample(rng)
		runtimes[b] = cost.Runtime(batchSize * bucketLength)
	}
	st := imbalance.Summarize(runtimes)
	rtEdges, rtCounts := imbalance.Histogram(runtimes, buckets)
	rtTable := trace.NewTable("Fig. 2b — LSTM batch runtime distribution (batch=16, modelled P100 ms)", "runtime<=ms", "batches")
	rtCurve := &trace.Curve{Name: "lstm-batch-runtime-histogram"}
	for i := range rtEdges {
		rtTable.AddRow(rtEdges[i], rtCounts[i])
		rtCurve.Add(rtEdges[i], float64(rtCounts[i]))
	}
	r.Tables = append(r.Tables, rtTable)
	r.Curves = append(r.Curves, rtCurve)
	r.Values["video/mean-runtime-ms"] = st.Mean
	r.Values["video/std-runtime-ms"] = st.Std
	r.addNote("batch runtime mean %.0f ms, std %.0f ms (paper: mean 1,235 ms, std 706 ms)", st.Mean, st.Std)
	return r, nil
}

// Fig3TransformerWorkload reproduces Fig. 3: the batch runtime distribution
// of Transformer training on WMT16 (batch 64), sampled from the calibrated
// empirical distribution.
func Fig3TransformerWorkload(cfg Config) (*Report, error) {
	r := newReport("fig3", "Transformer/WMT16 batch runtime distribution")
	samples := 20653
	buckets := 18
	if cfg.Quick {
		samples, buckets = 2000, 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	dist := imbalance.TransformerBatchRuntime()
	runtimes := make([]float64, samples)
	for i := range runtimes {
		runtimes[i] = dist.Sample(rng)
	}
	st := imbalance.Summarize(runtimes)
	edges, counts := imbalance.Histogram(runtimes, buckets)
	table := trace.NewTable("Fig. 3 — Transformer batch runtime distribution (batch=64, modelled ms)", "runtime<=ms", "batches")
	curve := &trace.Curve{Name: "transformer-batch-runtime-histogram"}
	for i := range edges {
		table.AddRow(edges[i], counts[i])
		curve.Add(edges[i], float64(counts[i]))
	}
	r.Tables = append(r.Tables, table)
	r.Curves = append(r.Curves, curve)
	r.Values["transformer/mean-runtime-ms"] = st.Mean
	r.Values["transformer/std-runtime-ms"] = st.Std
	r.addNote("runtime mean %.0f ms, std %.0f ms, range %.0f–%.0f ms (paper: mean 475 ms, std 144 ms, 179–3,482 ms)", st.Mean, st.Std, st.Min, st.Max)
	return r, nil
}

// Fig4CloudWorkload reproduces Fig. 4: the batch runtime distribution of
// ResNet-50/ImageNet on a cloud instance, where imbalance comes from the
// system rather than the data.
func Fig4CloudWorkload(cfg Config) (*Report, error) {
	r := newReport("fig4", "ResNet-50 on cloud: batch runtime distribution")
	samples := 30000
	buckets := 18
	if cfg.Quick {
		samples, buckets = 3000, 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	dist := imbalance.CloudBatchRuntime()
	runtimes := make([]float64, samples)
	for i := range runtimes {
		runtimes[i] = dist.Sample(rng)
	}
	st := imbalance.Summarize(runtimes)
	edges, counts := imbalance.Histogram(runtimes, buckets)
	table := trace.NewTable("Fig. 4 — cloud ResNet-50 batch runtime distribution (batch=256, modelled ms)", "runtime<=ms", "batches")
	curve := &trace.Curve{Name: "cloud-batch-runtime-histogram"}
	for i := range edges {
		table.AddRow(edges[i], counts[i])
		curve.Add(edges[i], float64(counts[i]))
	}
	r.Tables = append(r.Tables, table)
	r.Curves = append(r.Curves, curve)
	r.Values["cloud/mean-runtime-ms"] = st.Mean
	r.Values["cloud/std-runtime-ms"] = st.Std
	r.addNote("runtime mean %.0f ms, std %.0f ms, range %.0f–%.0f ms (paper: mean 454 ms, std 116 ms, 399–1,892 ms)", st.Mean, st.Std, st.Min, st.Max)
	r.addNote("cloud imbalance is lighter than the inherent imbalance of Figs. 2–3, matching §2.3")
	return r, nil
}

// Table1Networks reproduces Table 1: the evaluation workloads, their original
// configurations in the paper, and the scaled-down stand-ins this repository
// trains in their place.
func Table1Networks(cfg Config) (*Report, error) {
	r := newReport("table1", "Neural networks used for evaluation")
	paper := trace.NewTable("Table 1 — paper configuration",
		"task", "model", "parameters", "train data", "batch", "epochs", "processes")
	paper.AddRow("Hyperplane regression", "One-layer MLP", 8193, "32,768 points", 2048, 48, 8)
	paper.AddRow("Cifar-10", "ResNet-32", 467194, "50,000 images", 512, 190, 8)
	paper.AddRow("ImageNet", "ResNet-50", 25559081, "1,281,167 images", 8192, 90, 64)
	paper.AddRow("UCF101", "Inception+LSTM", 34663525, "9,537 videos", 128, 50, 8)
	r.Tables = append(r.Tables, paper)

	p := experimentParams(cfg)
	repro := trace.NewTable("Table 1 (reproduction) — stand-in configuration used by this repository",
		"experiment", "model", "parameters", "train data", "batch/rank", "steps", "processes")
	repro.AddRow("fig10 hyperplane", "one-layer MLP (MSE)", p.fig10Dim+1, fmtSamples(p.fig10Samples), p.fig10Batch, p.fig10Steps, p.fig10Procs)
	repro.AddRow("fig12 cifar-like", "MLP softmax classifier", p.fig12Params(), fmtSamples(p.fig12Samples), p.fig12Batch, p.fig12Steps, p.fig12Procs)
	repro.AddRow("fig11 imagenet-like", "MLP softmax classifier", p.fig11Params(), fmtSamples(p.fig11Samples), p.fig11Batch, p.fig11Steps, p.fig11Procs)
	repro.AddRow("fig13 video LSTM", "LSTM classifier", p.fig13Params(), fmtSamples(p.fig13Samples), p.fig13Batch, p.fig13Steps, p.fig13Procs)
	r.Tables = append(r.Tables, repro)
	r.addNote("stand-in models are scaled to CPU scale; process counts match the paper at full scale (8/8/64/8)")
	return r, nil
}

func fmtSamples(n int) string { return fmt.Sprintf("%d samples", n) }
