// Package harness assembles the reproduction experiments: one runner per
// figure and table of the paper's evaluation (§2 workload characterization,
// §6.1 microbenchmark, §6.2–§6.3 training experiments). Each runner returns a
// Report containing the tables and curve series the corresponding figure
// plots, plus notes comparing the measured shape against the paper's claims.
//
// Experiments run at two scales: Quick (seconds, used by unit tests and CI)
// and the default full scale (tens of seconds per experiment, used by the
// benchmark harness and cmd/ tools). Both use the same code paths; only
// process counts, step counts, model sizes, and the delay clock scale differ.
// Absolute times therefore differ from the paper (the substrate is a
// simulator, not a Piz Daint node); the reproduced quantities are the
// relative ones: speedup factors, latency ratios, NAP, and accuracy
// orderings.
package harness

import (
	"fmt"
	"strings"
	"time"

	"eagersgd/internal/faults"
	"eagersgd/internal/trace"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks every experiment to a few seconds for tests.
	Quick bool
	// ClockScale converts paper milliseconds of injected/modelled delay into
	// real time (see imbalance.Clock). Zero picks a per-experiment default.
	ClockScale float64
	// Seed drives all pseudo-randomness (datasets, initiator selection,
	// injection schedules).
	Seed int64
	// Overlap runs every training variant with the bucketed gradient exchange
	// (train.Spec.Overlap / collective.WithOverlap): buckets are submitted as
	// the backward pass produces them instead of one fused exchange at the
	// end.
	Overlap bool
	// BucketElems is the bucket coalescing target when Overlap is on; 0 keeps
	// one bucket per layer segment.
	BucketElems int
	// Faults runs every training experiment's transport through a
	// deterministic fault injector executing the scenario (per-link drops,
	// delays, reordering, partitions, scripted rank crashes); see
	// collective.WithFaults. Scripted crashes do not fail a run — the
	// surviving ranks' results stand.
	Faults *faults.Scenario
	// PeerDeadline enables rank-failure tolerance with the given
	// failure-detector deadline (collective.WithPeerDeadline). Set it when
	// running a fault scenario so the stack detects the injected failures
	// instead of blocking on them.
	PeerDeadline time.Duration
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config { return Config{Seed: 1} }

// QuickConfig returns the test-scale configuration.
func QuickConfig() Config { return Config{Quick: true, Seed: 1} }

func (c Config) clockScale(def float64) float64 {
	if c.ClockScale > 0 {
		return c.ClockScale
	}
	return def
}

// Report is the output of one experiment runner.
type Report struct {
	// ID is the experiment identifier, e.g. "fig9" or "table1".
	ID string
	// Title describes the experiment.
	Title string
	// Tables holds the tabular results.
	Tables []*trace.Table
	// Curves holds the figure's series (x = training time or message size,
	// y = latency, loss, or accuracy).
	Curves []*trace.Curve
	// Notes records the qualitative checks against the paper's claims
	// (who wins, by roughly what factor).
	Notes []string
	// Values exposes headline scalar results by name, for benchmarks and
	// tests (e.g. "speedup/eager-300").
	Values map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: make(map[string]float64)}
}

func (r *Report) addNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Value returns a named headline value (0 if absent).
func (r *Report) Value(name string) float64 { return r.Values[name] }

// Render formats the full report as text.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", strings.ToUpper(r.ID), r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	if len(r.Curves) > 0 {
		b.WriteString(trace.RenderCurves("Curve data", "x", "y", r.Curves...))
		b.WriteByte('\n')
	}
	if len(r.Notes) > 0 {
		b.WriteString("Notes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	return b.String()
}

// Experiment names all runners so tools can iterate over them.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2", "UCF101 video length and LSTM batch runtime distributions (§2.1)", Fig2VideoWorkload},
		{"fig3", "Transformer/WMT16 batch runtime distribution (§2.2)", Fig3TransformerWorkload},
		{"fig4", "ResNet-50 on cloud: batch runtime distribution (§2.3)", Fig4CloudWorkload},
		{"table1", "Neural networks used for evaluation (Table 1)", Table1Networks},
		{"fig9", "Partial allreduce latency and active processes under linear skew (§6.1)", Fig9Microbenchmark},
		{"fig10", "Hyperplane regression: throughput and validation loss (§6.2.1)", Fig10Hyperplane},
		{"fig11", "ImageNet-like classification, light imbalance: throughput and accuracy (§6.2.2)", Fig11ImageNetLight},
		{"fig12", "CIFAR-like classification, severe imbalance: accuracy vs time (§6.2.3)", Fig12CifarSevere},
		{"fig13", "Video LSTM, inherent imbalance: train/test accuracy vs time (§6.3)", Fig13VideoLSTM},
		{"scaling", "Strong/weak scaling summary derived from §6.2–§6.3 runs", ScalingSummary},
		{"quorum", "Quorum spectrum ablation between solo, majority, and full collectives (§8)", QuorumSpectrum},
	}
}

// RunByID runs the experiment with the given ID.
func RunByID(id string, cfg Config) (*Report, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q", id)
}
