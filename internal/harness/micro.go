package harness

import (
	"fmt"
	"sync"
	"time"

	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
	"eagersgd/internal/trace"
	"eagersgd/internal/transport"
)

// Fig9Microbenchmark reproduces the microbenchmark of §6.1 (Figs. 8 and 9):
// all ranks are linearly skewed (rank r delayed by (r+1)·1 ms) before calling
// the collective, and the latency averaged over ranks is reported for the
// synchronous allreduce baseline, solo allreduce, and majority allreduce,
// together with the number of active processes (NAP) of the partial
// collectives.
func Fig9Microbenchmark(cfg Config) (*Report, error) {
	p := experimentParams(cfg)
	r := newReport("fig9", "Partial allreduce latency and active processes under linear skew")
	clock := imbalance.ScaledClock(p.fig9Clock)
	skew := imbalance.LinearSkew{StepMs: p.fig9SkewStepMs}

	table := trace.NewTable(
		fmt.Sprintf("Fig. 9 — average latency over %d ranks, linear skew %g–%g ms (clock scale %g)",
			p.fig9Procs, p.fig9SkewStepMs, float64(p.fig9Procs)*p.fig9SkewStepMs, p.fig9Clock),
		"msg bytes", "allreduce ms", "majority ms", "solo ms", "solo speedup", "majority speedup", "NAP solo", "NAP majority")

	latencyCurves := map[string]*trace.Curve{
		"allreduce": {Name: "MPI-style allreduce latency"},
		"majority":  {Name: "majority allreduce latency"},
		"solo":      {Name: "solo allreduce latency"},
	}
	napCurves := map[string]*trace.Curve{
		"solo":     {Name: "NAP solo"},
		"majority": {Name: "NAP majority"},
	}

	var soloSpeedups, majoritySpeedups []float64
	for _, elems := range p.fig9Sizes {
		iterations := p.fig9Iterations
		if elems > 32768 {
			// Large messages are bandwidth-bound; fewer iterations keep the
			// benchmark short without changing the averages materially.
			iterations = max(4, p.fig9Iterations/4)
		}
		bytes := elems * 8

		synch, err := microSynchLatency(p.fig9Procs, elems, iterations, skew, clock)
		if err != nil {
			return nil, err
		}
		solo, soloNAP, err := microPartialLatency(p.fig9Procs, elems, iterations, skew, clock, partial.Options{Mode: partial.Solo, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		majority, majNAP, err := microPartialLatency(p.fig9Procs, elems, iterations, skew, clock, partial.Options{Mode: partial.Majority, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}

		soloSpeedup := ratio(synch, solo)
		majSpeedup := ratio(synch, majority)
		soloSpeedups = append(soloSpeedups, soloSpeedup)
		majoritySpeedups = append(majoritySpeedups, majSpeedup)

		table.AddRow(bytes, msFloat(synch), msFloat(majority), msFloat(solo), soloSpeedup, majSpeedup, soloNAP, majNAP)
		latencyCurves["allreduce"].Add(float64(bytes), msFloat(synch))
		latencyCurves["majority"].Add(float64(bytes), msFloat(majority))
		latencyCurves["solo"].Add(float64(bytes), msFloat(solo))
		napCurves["solo"].Add(float64(bytes), soloNAP)
		napCurves["majority"].Add(float64(bytes), majNAP)

		r.Values[fmt.Sprintf("latency-ms/allreduce/%d", bytes)] = msFloat(synch)
		r.Values[fmt.Sprintf("latency-ms/solo/%d", bytes)] = msFloat(solo)
		r.Values[fmt.Sprintf("latency-ms/majority/%d", bytes)] = msFloat(majority)
		r.Values[fmt.Sprintf("nap/solo/%d", bytes)] = soloNAP
		r.Values[fmt.Sprintf("nap/majority/%d", bytes)] = majNAP
	}
	r.Tables = append(r.Tables, table)
	r.Curves = append(r.Curves,
		latencyCurves["allreduce"], latencyCurves["majority"], latencyCurves["solo"],
		napCurves["solo"], napCurves["majority"])

	r.Values["speedup/solo-mean"] = mean(soloSpeedups)
	r.Values["speedup/majority-mean"] = mean(majoritySpeedups)
	r.addNote("solo allreduce is on average %.1fx faster than the synchronous allreduce, majority %.1fx (paper: 53.3x and 2.5x on Cray MPICH)",
		mean(soloSpeedups), mean(majoritySpeedups))
	r.addNote("NAP of solo stays near 1 and NAP of majority near P/2 under full skew, matching §6.1")
	return r, nil
}

// microSynchLatency measures the average per-rank latency of the synchronous
// allreduce with linearly skewed entry times.
func microSynchLatency(procs, elems, iterations int, skew imbalance.Injector, clock imbalance.Clock) (time.Duration, error) {
	world := transport.NewInprocWorld(procs)
	defer world[0].Close()
	var mu sync.Mutex
	var total time.Duration
	var count int
	err := runRanks(procs, func(rank int, c *comm.Communicator) error {
		buf := tensor.NewVector(elems)
		for iter := 0; iter < iterations; iter++ {
			clock.Sleep(skew.Delay(iter, rank))
			buf.Fill(1)
			start := time.Now()
			//eagervet:ignore ctxcheck -- microbenchmark measures the uncancellable hot path; iterations bound the loop.
			if err := collectives.Allreduce(c, buf, collectives.OpSum, collectives.AlgoAuto); err != nil {
				return err
			}
			elapsed := time.Since(start)
			mu.Lock()
			total += elapsed
			count++
			mu.Unlock()
			//eagervet:ignore ctxcheck -- microbenchmark barrier on the measured path; iterations bound the loop.
			if err := collectives.Barrier(c); err != nil {
				return err
			}
		}
		return nil
	}, world)
	if err != nil {
		return 0, err
	}
	return total / time.Duration(count), nil
}

// microPartialLatency measures the average per-rank latency and mean NAP of a
// partial allreduce with linearly skewed entry times.
func microPartialLatency(procs, elems, iterations int, skew imbalance.Injector, clock imbalance.Clock, opts partial.Options) (time.Duration, float64, error) {
	world := transport.NewInprocWorld(procs)
	defer world[0].Close()
	reducers := make([]*partial.Allreducer, procs)
	for r := 0; r < procs; r++ {
		reducers[r] = partial.New(world[r], elems, opts)
	}
	defer func() {
		for _, a := range reducers {
			a.Close()
		}
	}()

	var mu sync.Mutex
	var total time.Duration
	var count int
	napByIter := make([]int, iterations)
	err := runRanks(procs, func(rank int, c *comm.Communicator) error {
		buf := tensor.NewVector(elems)
		for iter := 0; iter < iterations; iter++ {
			clock.Sleep(skew.Delay(iter, rank))
			buf.Fill(1)
			start := time.Now()
			//eagervet:ignore ctxcheck -- microbenchmark measures the uncancellable hot path; iterations bound the loop.
			sum, info, err := reducers[rank].Exchange(buf)
			if err != nil {
				return err
			}
			tensor.PutVector(sum) // lease consumed; recycle it
			elapsed := time.Since(start)
			mu.Lock()
			total += elapsed
			count++
			if info.ActiveProcesses > napByIter[iter] {
				napByIter[iter] = info.ActiveProcesses
			}
			mu.Unlock()
			//eagervet:ignore ctxcheck -- microbenchmark barrier on the measured path; iterations bound the loop.
			if err := collectives.Barrier(c); err != nil {
				return err
			}
		}
		return nil
	}, world)
	if err != nil {
		return 0, 0, err
	}
	napSum := 0
	for _, n := range napByIter {
		napSum += n
	}
	return total / time.Duration(count), float64(napSum) / float64(iterations), nil
}

// runRanks runs body on every rank concurrently and returns the first error.
func runRanks(procs int, body func(rank int, c *comm.Communicator) error, world []*comm.Communicator) error {
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for r := 0; r < procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(r, world[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

func msFloat(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
