package core_test

import (
	"sync"
	"testing"
	"time"

	"eagersgd/internal/core"
	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// TestADSLemma51Properties exercises the shared-object guarantees the
// convergence proof relies on (Lemma 5.1): liveness, per-round agreement,
// correct averaging of the included subset, quorum >= 1, and the
// staleness-bound property that rejected proposals are folded into later
// rounds.
func TestADSLemma51Properties(t *testing.T) {
	const p = 4
	const dim = 3
	const rounds = 8
	world := transport.NewInprocWorld(p)
	defer world[0].Close()
	objs := make([]*core.ADS, p)
	for r := 0; r < p; r++ {
		objs[r] = core.NewADS(world[r], dim, partial.Options{Mode: partial.Solo})
		defer objs[r].Close()
	}

	totalProposed := tensor.NewVector(dim)
	totalObserved := tensor.NewVector(dim) // rank 0's per-round updates, scaled back by P

	for round := 0; round < rounds; round++ {
		responses := make([]core.ADSResponse, p)
		proposals := make([]tensor.Vector, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			proposals[r] = tensor.Vector{float64(round + 1), float64(r), 1}
			totalProposed.Add(proposals[r])
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				// Stagger arrivals so some proposals are rejected.
				time.Sleep(time.Duration(r*(round%3)) * time.Millisecond)
				resp, err := objs[r].Invoke(proposals[r])
				if err != nil {
					t.Errorf("rank %d round %d: %v", r, round, err)
					return
				}
				responses[r] = resp
			}(r)
		}
		wg.Wait()

		// Liveness held (all invocations returned). Agreement: every rank
		// observed the same update for the same observed round (with
		// lockstep rounds there is exactly one observed round).
		for r := 1; r < p; r++ {
			if !responses[r].Update.Equal(responses[0].Update) {
				t.Fatalf("round %d: rank %d observed a different update", round, r)
			}
		}
		// Quorum >= 1 and the update equals the average of the included
		// proposals.
		included := tensor.NewVector(dim)
		q := 0
		for r := 0; r < p; r++ {
			if responses[r].Included {
				included.Add(proposals[r])
				q++
			}
		}
		if q < 1 {
			t.Fatalf("round %d: quorum of zero", round)
		}
		if responses[0].QuorumSize != q {
			t.Fatalf("round %d: reported quorum %d, counted %d", round, responses[0].QuorumSize, q)
		}
		// The update may also carry stale proposals from earlier rounds, so
		// compare the cumulative sums at the end instead of per round; here
		// we only check the update is consistent in scale.
		scaled := responses[0].Update.Clone()
		scaled.Scale(float64(p))
		totalObserved.Add(scaled)
	}

	// Staleness bound / conservation: after a final drain round everything
	// proposed has been delivered exactly once.
	var wg sync.WaitGroup
	drain := make([]core.ADSResponse, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			resp, err := objs[r].Invoke(tensor.NewVector(dim))
			if err != nil {
				t.Errorf("drain rank %d: %v", r, err)
				return
			}
			drain[r] = resp
		}(r)
	}
	wg.Wait()
	scaled := drain[0].Update.Clone()
	scaled.Scale(float64(p))
	totalObserved.Add(scaled)
	if !totalObserved.AllClose(totalProposed, 1e-9) {
		t.Fatalf("conservation violated: observed %v, proposed %v", totalObserved, totalProposed)
	}
	for r := 0; r < p; r++ {
		if objs[r].PendingStaleNorm() != 0 {
			t.Fatalf("rank %d still holds undelivered proposals after drain", r)
		}
	}
}
