package core

import (
	"eagersgd/internal/comm"
	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
)

// ADS (asynchronous distributed sum) is the round-indexed shared object the
// convergence proof of §5.1 reasons about. Each round t, every process
// invokes the object with its proposed update R_t^i and receives the tuple
// (U_t, s_t^i): the update decided for the round and a bit saying whether its
// own proposal was included. The object guarantees (Lemma 5.1):
//
//  1. Liveness — every invocation eventually returns.
//  2. Safety — the returned update is the average of a subset of the round's
//     proposals, the bit reflects membership in that subset, and every
//     process observes the same update for a given round.
//  3. Quorum — at least Q >= 1 proposals are included per round.
//  4. Bounded staleness — a rejected proposal is folded into a later round's
//     update rather than dropped (solo gives no a-priori bound; majority's
//     randomized initiator bounds the expected staleness).
//
// ADS is a thin veneer over partial.Allreducer that divides by the world size
// (so the update is the average of Algorithm 2, line 6) and exposes the
// response in the proof's vocabulary. EagerExchanger uses the raw allreducer
// directly; ADS exists for code that wants the paper's object semantics, and
// for tests that check Lemma 5.1 explicitly.
type ADS struct {
	reducer *partial.Allreducer
	size    int
}

// ADSResponse is the response tuple of one invocation.
type ADSResponse struct {
	// Update is U_t: the averaged update decided for the observed round.
	Update tensor.Vector
	// Included is s_t^i: whether this process's proposal is part of Update.
	Included bool
	// Round is the round whose update was observed (a later round than the
	// invocation's if the caller fell behind and its rounds were overwritten).
	Round int
	// QuorumSize is the number of fresh proposals included in Update.
	QuorumSize int
}

// NewADS creates the shared-object view for this rank over the communicator.
// Every rank must create it with the same dimension and options.
func NewADS(c *comm.Communicator, dim int, opts partial.Options) *ADS {
	return &ADS{reducer: partial.New(c, dim, opts), size: c.Size()}
}

// Invoke proposes the update for this process's next round and returns the
// decided tuple.
func (a *ADS) Invoke(proposal tensor.Vector) (ADSResponse, error) {
	sum, info, err := a.reducer.Exchange(proposal)
	if err != nil {
		return ADSResponse{}, err
	}
	sum.Scale(1 / float64(a.size))
	return ADSResponse{
		Update:     sum,
		Included:   info.Included,
		Round:      info.Round,
		QuorumSize: info.ActiveProcesses,
	}, nil
}

// PendingStaleNorm reports the norm of proposals not yet delivered to any
// round (zero once all proposals have been accepted, per the staleness-bound
// property).
func (a *ADS) PendingStaleNorm() float64 { return a.reducer.PendingStale() }

// Close marks the object closed (see partial.Allreducer.Close for the
// collective shutdown contract).
func (a *ADS) Close() { a.reducer.Close() }
