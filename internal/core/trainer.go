package core

import (
	"fmt"
	"time"

	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/optimizer"
	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
	"eagersgd/internal/trace"
)

// ExchangeStats describes one gradient exchange.
type ExchangeStats struct {
	// ActiveProcesses is the number of ranks whose fresh gradient was part of
	// the exchanged sum (the world size for synchronous exchangers).
	ActiveProcesses int
	// Included reports whether this rank's fresh gradient was part of it.
	Included bool
}

// GradientExchanger turns a local gradient into a global one. Implementations
// are per-rank objects over a shared communicator.
type GradientExchanger interface {
	// Exchange contributes grad for the given step and returns the global
	// gradient SUM (callers divide by the world size).
	Exchange(step int, grad tensor.Vector) (tensor.Vector, ExchangeStats, error)
	// Name identifies the exchanger in reports.
	Name() string
	// Close releases resources. For eager exchangers this is a local
	// operation; the communicator owns the actual shutdown.
	Close()
}

// SynchStyle selects which synchronous baseline a SynchExchanger models.
type SynchStyle int

const (
	// StyleDeep500 models the Deep500 DSGD optimizer (§3): the gradient is
	// reduced in a fixed number of ordered chunks, mirroring the control
	// dependencies added to the computation DAG.
	StyleDeep500 SynchStyle = iota
	// StyleHorovod models Horovod (§3): a negotiation round (achieving
	// consensus on readiness) followed by one fused allreduce over the whole
	// gradient.
	StyleHorovod
)

// String returns the style name.
func (s SynchStyle) String() string {
	switch s {
	case StyleDeep500:
		return "deep500"
	case StyleHorovod:
		return "horovod"
	default:
		return fmt.Sprintf("style(%d)", int(s))
	}
}

// SynchExchanger implements synchronous allreduce-based gradient exchange —
// the synch-SGD baseline. Every rank blocks until all ranks contribute.
type SynchExchanger struct {
	comm   *comm.Communicator
	style  SynchStyle
	chunks int
	algo   collectives.Algorithm
}

// NewSynchExchanger builds a synchronous exchanger. chunks controls the
// number of ordered reductions for the Deep500 style (values below 1 mean a
// single fused reduction).
func NewSynchExchanger(c *comm.Communicator, style SynchStyle, chunks int) *SynchExchanger {
	if chunks < 1 {
		chunks = 1
	}
	return &SynchExchanger{comm: c, style: style, chunks: chunks, algo: collectives.AlgoAuto}
}

// Name returns "synch-sgd (deep500)" or "synch-sgd (horovod)".
func (s *SynchExchanger) Name() string { return fmt.Sprintf("synch-sgd (%s)", s.style) }

// Close is a no-op; the communicator owns shutdown.
func (s *SynchExchanger) Close() {}

// Exchange performs the synchronous allreduce and returns the gradient sum.
func (s *SynchExchanger) Exchange(_ int, grad tensor.Vector) (tensor.Vector, ExchangeStats, error) {
	global := grad.Clone()
	switch s.style {
	case StyleHorovod:
		// Negotiation: all ranks agree everyone is ready (Horovod's
		// coordinator round), then one fused allreduce.
		ready := tensor.Vector{1}
		if err := collectives.Allreduce(s.comm, ready, collectives.OpSum, collectives.AlgoRecursiveDoubling); err != nil {
			return nil, ExchangeStats{}, err
		}
		if err := collectives.Allreduce(s.comm, global, collectives.OpSum, s.algo); err != nil {
			return nil, ExchangeStats{}, err
		}
	default: // StyleDeep500: ordered chunked reductions.
		for _, chunk := range global.Chunk(s.chunks) {
			if len(chunk) == 0 {
				continue
			}
			if err := collectives.Allreduce(s.comm, chunk, collectives.OpSum, s.algo); err != nil {
				return nil, ExchangeStats{}, err
			}
		}
	}
	return global, ExchangeStats{ActiveProcesses: s.comm.Size(), Included: true}, nil
}

// EagerExchanger implements the partial-collective gradient exchange of
// eager-SGD (Algorithm 2): solo or majority allreduce with stale-gradient
// accumulation handled by the underlying partial.Allreducer.
type EagerExchanger struct {
	reducer *partial.Allreducer
	mode    partial.Mode
}

// NewEagerExchanger builds the eager exchanger for a gradient of length n.
func NewEagerExchanger(c *comm.Communicator, n int, mode partial.Mode, seed int64) *EagerExchanger {
	return &EagerExchanger{
		reducer: partial.New(c, n, partial.Options{Mode: mode, Seed: seed}),
		mode:    mode,
	}
}

// NewQuorumExchanger builds an eager exchanger with an explicit candidate
// count (the solo–majority–full spectrum of §8).
func NewQuorumExchanger(c *comm.Communicator, n int, candidates int, seed int64) *EagerExchanger {
	return &EagerExchanger{
		reducer: partial.New(c, n, partial.Options{Mode: partial.Quorum, Candidates: candidates, Seed: seed}),
		mode:    partial.Quorum,
	}
}

// Name returns "eager-sgd (solo)" or "eager-sgd (majority)".
func (e *EagerExchanger) Name() string { return fmt.Sprintf("eager-sgd (%s)", e.mode) }

// Close marks the underlying allreducer closed.
func (e *EagerExchanger) Close() { e.reducer.Close() }

// Reducer exposes the underlying partial allreducer (used by diagnostics).
func (e *EagerExchanger) Reducer() *partial.Allreducer { return e.reducer }

// Exchange contributes the gradient to the current partial-allreduce round.
func (e *EagerExchanger) Exchange(_ int, grad tensor.Vector) (tensor.Vector, ExchangeStats, error) {
	global, info, err := e.reducer.Exchange(grad)
	if err != nil {
		return nil, ExchangeStats{}, err
	}
	return global, ExchangeStats{ActiveProcesses: info.ActiveProcesses, Included: info.Included}, nil
}

// Config assembles one rank's trainer.
type Config struct {
	Comm      *comm.Communicator
	Task      Task
	Exchanger GradientExchanger
	Optimizer optimizer.Optimizer
	// Injector and Clock simulate system-caused load imbalance (§6.2); leave
	// Injector nil for none.
	Injector imbalance.Injector
	Clock    imbalance.Clock
	// BaseStepPaperMs models the per-step compute cost (in paper
	// milliseconds, slept through Clock) of the system the local model stands
	// in for. The stand-in models are orders of magnitude cheaper than a
	// P100 running ResNet-50, so without this the injected delays would
	// dominate the step time and exaggerate the imbalance relative to the
	// paper's setup. Zero disables it.
	BaseStepPaperMs float64
	// CostModel, when non-nil, adds modelled compute time proportional to the
	// step's WorkloadUnits (used when the stand-in model is much cheaper than
	// the system it represents).
	CostModel *imbalance.SequenceCostModel
	// SyncEverySteps, when positive, synchronizes (averages) model replicas
	// across ranks every that many steps — the periodic model synchronization
	// eager-SGD uses to bound replica divergence (§5). Ignored by synchronous
	// exchangers, whose replicas never diverge.
	SyncEverySteps int
}

// Trainer runs data-parallel SGD for one rank.
type Trainer struct {
	cfg      Config
	recorder *trace.ThroughputRecorder
	step     int
}

// NewTrainer validates the configuration and builds a trainer.
func NewTrainer(cfg Config) (*Trainer, error) {
	if cfg.Comm == nil || cfg.Task == nil || cfg.Exchanger == nil || cfg.Optimizer == nil {
		return nil, fmt.Errorf("core: config requires Comm, Task, Exchanger, and Optimizer")
	}
	if cfg.Injector == nil {
		cfg.Injector = imbalance.None{}
	}
	return &Trainer{cfg: cfg, recorder: trace.NewThroughputRecorder()}, nil
}

// Rank returns the trainer's rank.
func (t *Trainer) Rank() int { return t.cfg.Comm.Rank() }

// Size returns the world size.
func (t *Trainer) Size() int { return t.cfg.Comm.Size() }

// Recorder returns the per-step measurements collected so far.
func (t *Trainer) Recorder() *trace.ThroughputRecorder { return t.recorder }

// Step executes one training step: local gradient computation (plus any
// injected or modelled imbalance), gradient exchange, averaging, and the
// optimizer update, followed by the periodic model synchronization if due.
func (t *Trainer) Step() (trace.StepRecord, error) {
	start := time.Now()
	step := t.step
	t.step++

	loss := t.cfg.Task.ComputeGradient(step)

	// Modelled base compute cost of the system the local model stands in for.
	if t.cfg.BaseStepPaperMs > 0 {
		t.cfg.Clock.Sleep(t.cfg.BaseStepPaperMs)
	}
	// Inherent-imbalance cost model: charge time proportional to the batch
	// workload (e.g. total frames).
	if t.cfg.CostModel != nil {
		if units := t.cfg.Task.WorkloadUnits(step); units > 0 {
			t.cfg.Clock.Sleep(t.cfg.CostModel.Runtime(units))
		}
	}
	// System-caused imbalance injection.
	if d := t.cfg.Injector.Delay(step, t.Rank()); d > 0 {
		t.cfg.Clock.Sleep(d)
	}

	global, stats, err := t.cfg.Exchanger.Exchange(step, t.cfg.Task.Grads())
	if err != nil {
		return trace.StepRecord{}, fmt.Errorf("core: step %d exchange: %w", step, err)
	}
	global.Scale(1 / float64(t.Size()))
	t.cfg.Optimizer.Step(t.cfg.Task.Params(), global, step)

	if t.cfg.SyncEverySteps > 0 && (step+1)%t.cfg.SyncEverySteps == 0 {
		if err := t.SyncModel(); err != nil {
			return trace.StepRecord{}, fmt.Errorf("core: step %d model sync: %w", step, err)
		}
	}

	rec := trace.StepRecord{
		Step:            step,
		Duration:        time.Since(start),
		Loss:            loss,
		ActiveProcesses: stats.ActiveProcesses,
		Included:        stats.Included,
	}
	t.recorder.Add(rec)
	return rec, nil
}

// SyncModel averages the model replicas across all ranks (a synchronous
// collective; every rank must call it at the same step).
func (t *Trainer) SyncModel() error {
	params := t.cfg.Task.Params()
	if err := collectives.Allreduce(t.cfg.Comm, params, collectives.OpSum, collectives.AlgoAuto); err != nil {
		return err
	}
	params.Scale(1 / float64(t.Size()))
	return nil
}

// Steps returns how many steps the trainer has executed.
func (t *Trainer) Steps() int { return t.step }

// Name describes the trainer variant.
func (t *Trainer) Name() string { return t.cfg.Exchanger.Name() }

// Close releases the exchanger.
func (t *Trainer) Close() { t.cfg.Exchanger.Close() }
