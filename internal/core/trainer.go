package core

import (
	"context"
	"fmt"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/nn"
	"eagersgd/internal/optimizer"
	"eagersgd/internal/tensor"
	"eagersgd/internal/trace"
)

// Config assembles one rank's trainer. The gradient exchange goes through the
// public collective.Reducer seam, so every variant the paper compares —
// synch-SGD (fused, chunked, or negotiated) and eager-SGD (solo, majority,
// quorum) — is one constructor option away, and new variants plug in without
// touching the trainer.
type Config struct {
	// Comm is the rank's point-to-point communicator. On an elastic world set
	// Node instead (Comm is then derived) so the trainer follows membership
	// changes; Comm alone pins the trainer to one epoch's communicator.
	Comm *comm.Communicator
	// Node is the rank's world membership handle. When set, the trainer's
	// rank, world size, and model synchronization follow the current epoch
	// across Join/Leave/Replace transitions.
	Node      *collective.Node
	Task      Task
	Exchanger collective.Reducer
	Optimizer optimizer.Optimizer
	// Injector and Clock simulate system-caused load imbalance (§6.2); leave
	// Injector nil for none.
	Injector imbalance.Injector
	Clock    imbalance.Clock
	// BaseStepPaperMs models the per-step compute cost (in paper
	// milliseconds, slept through Clock) of the system the local model stands
	// in for. The stand-in models are orders of magnitude cheaper than a
	// P100 running ResNet-50, so without this the injected delays would
	// dominate the step time and exaggerate the imbalance relative to the
	// paper's setup. Zero disables it.
	BaseStepPaperMs float64
	// CostModel, when non-nil, adds modelled compute time proportional to the
	// step's WorkloadUnits (used when the stand-in model is much cheaper than
	// the system it represents).
	CostModel *imbalance.SequenceCostModel
	// SyncEverySteps, when positive, synchronizes (averages) model replicas
	// across ranks every that many steps — the periodic model synchronization
	// eager-SGD uses to bound replica divergence (§5). Ignored by synchronous
	// exchangers, whose replicas never diverge.
	SyncEverySteps int
	// PeerDeadline is the failure-detector deadline applied to the trainer's
	// own synchronous collectives (SyncModel): a rank silent past it is
	// marked down and the collective returns an error wrapping
	// collective.ErrRankUnreachable instead of blocking forever. Use the same
	// value the exchanger was built with (collective.WithPeerDeadline). Zero
	// disables it.
	PeerDeadline time.Duration
	// StartStep offsets the trainer's step counter: a joiner admitted to an
	// elastic world mid-run starts at the survivors' step so its periodic
	// synchronization points (SyncEverySteps) line up with theirs.
	StartStep int
}

// Trainer runs data-parallel SGD for one rank.
type Trainer struct {
	cfg      Config
	recorder *trace.ThroughputRecorder
	step     int
	// bucket is non-nil when the overlapped (bucketed) exchange path is
	// active: the exchanger was built with collective.WithOverlap and the
	// task can announce layer segments during its backward pass.
	bucket *trainerBuckets
}

// trainerBuckets holds the overlapped path's wiring: the bucket-capable
// reducer and task plus the bucket plan mapping layer segments onto exchange
// buckets.
type trainerBuckets struct {
	reducer collective.BucketReducer
	task    BucketedTask
	plan    bucketPlan
}

// NewTrainer validates the configuration and builds a trainer. When the
// exchanger was built with collective.WithOverlap and the task supports
// bucketed gradients, steps run the overlapped path: buckets are submitted
// during the backward pass and each bucket's reduced result is applied as it
// lands.
func NewTrainer(cfg Config) (*Trainer, error) {
	if cfg.Comm == nil && cfg.Node != nil {
		cfg.Comm = cfg.Node.Communicator()
	}
	if cfg.Comm == nil || cfg.Task == nil || cfg.Exchanger == nil || cfg.Optimizer == nil {
		return nil, fmt.Errorf("core: config requires Comm (or Node), Task, Exchanger, and Optimizer")
	}
	if cfg.Injector == nil {
		cfg.Injector = imbalance.None{}
	}
	t := &Trainer{cfg: cfg, recorder: trace.NewThroughputRecorder(), step: cfg.StartStep}
	if enabled, bucketElems := collective.OverlapSettings(cfg.Exchanger); enabled {
		br, brOK := cfg.Exchanger.(collective.BucketReducer)
		bt, btOK := cfg.Task.(BucketedTask)
		if !brOK || !btOK {
			return nil, fmt.Errorf("core: overlap requires a bucket-capable exchanger and task (have %T, %T)", cfg.Exchanger, cfg.Task)
		}
		t.bucket = &trainerBuckets{reducer: br, task: bt, plan: planBuckets(bt.Segments(), bucketElems)}
	}
	return t, nil
}

// Rank returns the trainer's rank: the dense rank in the current epoch on an
// elastic world (it can change at an epoch boundary), the communicator's rank
// otherwise.
func (t *Trainer) Rank() int {
	if t.cfg.Node != nil {
		return t.cfg.Node.Rank()
	}
	return t.cfg.Comm.Rank()
}

// Size returns the world size of the current epoch.
func (t *Trainer) Size() int {
	if t.cfg.Node != nil {
		return t.cfg.Node.Size()
	}
	return t.cfg.Comm.Size()
}

// Recorder returns the per-step measurements collected so far.
func (t *Trainer) Recorder() *trace.ThroughputRecorder { return t.recorder }

// Step executes one training step with a background context. It is the
// compatibility entry point for callers without a cancellation chain; code
// with a context should call StepContext.
func (t *Trainer) Step() (trace.StepRecord, error) {
	//eagervet:ignore ctxcheck -- Step is the documented no-context shim over StepContext; the root lives here by design.
	return t.StepContext(context.Background())
}

// StepContext executes one training step: local gradient computation (plus
// any injected or modelled imbalance), gradient exchange through the Reducer,
// averaging, and the optimizer update, followed by the periodic model
// synchronization if due. Canceling ctx aborts a blocked gradient exchange.
//
// On the overlapped path the exchange is bucketed: layer-aligned buckets are
// submitted as the backward pass produces them (communication overlaps the
// remaining backprop) and each bucket's averaged result is applied as it
// lands; the end-of-step WaitStep supplies the same loss/participation
// accounting as the one-shot exchange.
func (t *Trainer) StepContext(ctx context.Context) (trace.StepRecord, error) {
	// On an elastic world the whole step — gradient compute, exchange,
	// optimizer update, periodic sync — is one operation at the drain
	// barrier, so an epoch transition only ever lands between steps and a
	// state-transfer snapshot never reads a replica mid-update.
	if ts, ok := t.cfg.Exchanger.(collective.TrainStepper); ok {
		if err := ts.BeginTrainStep(); err != nil {
			return trace.StepRecord{}, err
		}
		defer ts.EndTrainStep()
	}
	start := time.Now()
	step := t.step

	var loss float64
	var res collective.Result
	var err error
	if t.bucket != nil {
		loss, res, err = t.stepOverlapped(ctx, step)
	} else {
		loss, res, err = t.stepSerial(ctx, step)
	}
	if err != nil {
		return trace.StepRecord{}, err
	}

	if t.cfg.SyncEverySteps > 0 && (step+1)%t.cfg.SyncEverySteps == 0 {
		if err := t.SyncModel(); err != nil {
			return trace.StepRecord{}, fmt.Errorf("core: step %d model sync: %w", step, err)
		}
	}
	// The counter only advances once the whole step succeeded, so a step that
	// failed on a dying epoch (peer crash before a Replace) is retried as one
	// unit after the membership transition commits — keeping the rank's
	// collective sequence matched with a replacement that starts at this step.
	t.step++

	rec := trace.StepRecord{
		Step:            step,
		Duration:        time.Since(start),
		Loss:            loss,
		ActiveProcesses: res.ActiveRanks,
		Included:        res.Included,
	}
	t.recorder.Add(rec)
	return rec, nil
}

// sleepImbalance replays the step's modelled compute cost and injected
// delays through the scaled clock.
func (t *Trainer) sleepImbalance(step int) {
	// Modelled base compute cost of the system the local model stands in for.
	if t.cfg.BaseStepPaperMs > 0 {
		t.cfg.Clock.Sleep(t.cfg.BaseStepPaperMs)
	}
	// Inherent-imbalance cost model: charge time proportional to the batch
	// workload (e.g. total frames).
	if t.cfg.CostModel != nil {
		if units := t.cfg.Task.WorkloadUnits(step); units > 0 {
			t.cfg.Clock.Sleep(t.cfg.CostModel.Runtime(units))
		}
	}
	// System-caused imbalance injection.
	if d := t.cfg.Injector.Delay(step, t.Rank()); d > 0 {
		t.cfg.Clock.Sleep(d)
	}
}

// stepSerial is the classic path: full backward pass, then one blocking
// exchange over the whole flat gradient.
func (t *Trainer) stepSerial(ctx context.Context, step int) (float64, collective.Result, error) {
	loss := t.cfg.Task.ComputeGradient(step)
	t.sleepImbalance(step)

	res, err := t.cfg.Exchanger.Reduce(ctx, t.cfg.Task.Grads())
	if err != nil {
		return 0, collective.Result{}, fmt.Errorf("core: step %d exchange: %w", step, err)
	}
	global := res.Sum
	// Average over the schedule the result actually ran on (Result.Ranks):
	// on an elastic world an epoch boundary can change the world size between
	// steps, and the exchange already completed under the new schedule.
	ranks := res.Ranks
	if ranks <= 0 {
		ranks = t.Size()
	}
	global.Scale(1 / float64(ranks))
	t.cfg.Optimizer.Step(t.cfg.Task.Params(), global, step)
	// The reduced sum is a pool lease and has been fully applied: recycle it
	// so every training step reuses the same result buffer.
	tensor.PutVector(global)
	res.Sum = nil
	return loss, res, nil
}

// stepOverlapped is the bucketed path: the backward pass announces each
// bucket as its gradients settle, the bucket is submitted immediately (its
// reduction rides under the rest of backprop and the modelled compute
// sleeps), and results are averaged and applied per bucket in submission
// order. The modelled imbalance sleeps run after the local compute as on the
// serial path — by then the buckets are already in flight, which is exactly
// the overlap being modelled.
func (t *Trainer) stepOverlapped(ctx context.Context, step int) (float64, collective.Result, error) {
	bk := t.bucket
	grads := bk.task.Grads()
	if err := bk.reducer.BeginStep(ctx, bk.plan.lens); err != nil {
		return 0, collective.Result{}, fmt.Errorf("core: step %d begin: %w", step, err)
	}
	handles := make([]*collective.BucketHandle, 0, len(bk.plan.lens))
	remaining := append([]int(nil), bk.plan.segsPerBucket...)
	var submitErr error
	loss := bk.task.ComputeGradientBuckets(step, func(seg nn.Segment) {
		if submitErr != nil {
			return
		}
		b := bk.plan.bucketOf[seg.Offset]
		remaining[b]--
		if remaining[b] > 0 {
			return // bucket coalesces several segments; wait for the rest
		}
		lo := bk.plan.offs[b]
		h, err := bk.reducer.SubmitBucket(ctx, lo, grads[lo:lo+bk.plan.lens[b]])
		if err != nil {
			submitErr = err
			return
		}
		handles = append(handles, h)
	})
	t.sleepImbalance(step)

	var applyErr error
	if submitErr == nil {
		inv := 1 / float64(t.Size())
		for _, h := range handles {
			sum, err := h.Wait(ctx)
			if err != nil {
				applyErr = err
				break
			}
			sum.Scale(inv)
			t.cfg.Optimizer.StepSegment(t.cfg.Task.Params(), sum, h.Offset(), step)
			tensor.PutVector(sum)
		}
	}
	// WaitStep always runs: it is the step's cleanup point (unclaimed bucket
	// results are released there) and its accounting source.
	res, waitErr := bk.reducer.WaitStep(ctx)
	switch {
	case submitErr != nil:
		return 0, collective.Result{}, fmt.Errorf("core: step %d submit: %w", step, submitErr)
	case applyErr != nil:
		return 0, collective.Result{}, fmt.Errorf("core: step %d exchange: %w", step, applyErr)
	case waitErr != nil:
		return 0, collective.Result{}, fmt.Errorf("core: step %d exchange: %w", step, waitErr)
	}
	return loss, res, nil
}

// SyncModel averages the model replicas across all ranks (a synchronous
// collective; every rank must call it at the same step). With a
// Config.PeerDeadline it aborts with a typed error instead of blocking on a
// dead rank. When the exchanger is epoch-aware (minted by Node.Reducer), the
// sync runs through it so it covers the current epoch's members, passes the
// drain barrier like any reduction, and uses the epoch's tag namespace.
func (t *Trainer) SyncModel() error {
	params := t.cfg.Task.Params()
	if ps, ok := t.cfg.Exchanger.(collective.ParamSyncer); ok {
		_, err := ps.SyncParams(params, t.cfg.PeerDeadline)
		return err
	}
	if err := collectives.AllreduceWith(t.cfg.Comm, params, collectives.OpSum, collectives.AlgoAuto,
		collectives.Config{PeerDeadline: t.cfg.PeerDeadline}, nil); err != nil {
		return err
	}
	params.Scale(1 / float64(t.Size()))
	return nil
}

// SetParams overwrites the model replica with vals — how a joiner admitted to
// an elastic world mid-run adopts the parameters state-transferred to it at
// the epoch boundary (collective.Node.InitialState).
func (t *Trainer) SetParams(vals []float64) error {
	params := t.cfg.Task.Params()
	if len(vals) != len(params) {
		return fmt.Errorf("core: SetParams got %d values for a %d-parameter model", len(vals), len(params))
	}
	copy(params, vals)
	return nil
}

// Steps returns how many steps the trainer has executed.
func (t *Trainer) Steps() int { return t.step }

// Name describes the trainer variant.
func (t *Trainer) Name() string { return collective.ReducerName(t.cfg.Exchanger) }

// Close releases the exchanger.
func (t *Trainer) Close() { t.cfg.Exchanger.Close() }
