package core

import (
	"context"
	"fmt"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/optimizer"
	"eagersgd/internal/tensor"
	"eagersgd/internal/trace"
)

// Config assembles one rank's trainer. The gradient exchange goes through the
// public collective.Reducer seam, so every variant the paper compares —
// synch-SGD (fused, chunked, or negotiated) and eager-SGD (solo, majority,
// quorum) — is one constructor option away, and new variants plug in without
// touching the trainer.
type Config struct {
	Comm      *comm.Communicator
	Task      Task
	Exchanger collective.Reducer
	Optimizer optimizer.Optimizer
	// Injector and Clock simulate system-caused load imbalance (§6.2); leave
	// Injector nil for none.
	Injector imbalance.Injector
	Clock    imbalance.Clock
	// BaseStepPaperMs models the per-step compute cost (in paper
	// milliseconds, slept through Clock) of the system the local model stands
	// in for. The stand-in models are orders of magnitude cheaper than a
	// P100 running ResNet-50, so without this the injected delays would
	// dominate the step time and exaggerate the imbalance relative to the
	// paper's setup. Zero disables it.
	BaseStepPaperMs float64
	// CostModel, when non-nil, adds modelled compute time proportional to the
	// step's WorkloadUnits (used when the stand-in model is much cheaper than
	// the system it represents).
	CostModel *imbalance.SequenceCostModel
	// SyncEverySteps, when positive, synchronizes (averages) model replicas
	// across ranks every that many steps — the periodic model synchronization
	// eager-SGD uses to bound replica divergence (§5). Ignored by synchronous
	// exchangers, whose replicas never diverge.
	SyncEverySteps int
}

// Trainer runs data-parallel SGD for one rank.
type Trainer struct {
	cfg      Config
	recorder *trace.ThroughputRecorder
	step     int
}

// NewTrainer validates the configuration and builds a trainer.
func NewTrainer(cfg Config) (*Trainer, error) {
	if cfg.Comm == nil || cfg.Task == nil || cfg.Exchanger == nil || cfg.Optimizer == nil {
		return nil, fmt.Errorf("core: config requires Comm, Task, Exchanger, and Optimizer")
	}
	if cfg.Injector == nil {
		cfg.Injector = imbalance.None{}
	}
	return &Trainer{cfg: cfg, recorder: trace.NewThroughputRecorder()}, nil
}

// Rank returns the trainer's rank.
func (t *Trainer) Rank() int { return t.cfg.Comm.Rank() }

// Size returns the world size.
func (t *Trainer) Size() int { return t.cfg.Comm.Size() }

// Recorder returns the per-step measurements collected so far.
func (t *Trainer) Recorder() *trace.ThroughputRecorder { return t.recorder }

// Step executes one training step with a background context.
func (t *Trainer) Step() (trace.StepRecord, error) {
	return t.StepContext(context.Background())
}

// StepContext executes one training step: local gradient computation (plus
// any injected or modelled imbalance), gradient exchange through the Reducer,
// averaging, and the optimizer update, followed by the periodic model
// synchronization if due. Canceling ctx aborts a blocked gradient exchange.
func (t *Trainer) StepContext(ctx context.Context) (trace.StepRecord, error) {
	start := time.Now()
	step := t.step
	t.step++

	loss := t.cfg.Task.ComputeGradient(step)

	// Modelled base compute cost of the system the local model stands in for.
	if t.cfg.BaseStepPaperMs > 0 {
		t.cfg.Clock.Sleep(t.cfg.BaseStepPaperMs)
	}
	// Inherent-imbalance cost model: charge time proportional to the batch
	// workload (e.g. total frames).
	if t.cfg.CostModel != nil {
		if units := t.cfg.Task.WorkloadUnits(step); units > 0 {
			t.cfg.Clock.Sleep(t.cfg.CostModel.Runtime(units))
		}
	}
	// System-caused imbalance injection.
	if d := t.cfg.Injector.Delay(step, t.Rank()); d > 0 {
		t.cfg.Clock.Sleep(d)
	}

	res, err := t.cfg.Exchanger.Reduce(ctx, t.cfg.Task.Grads())
	if err != nil {
		return trace.StepRecord{}, fmt.Errorf("core: step %d exchange: %w", step, err)
	}
	global := res.Sum
	global.Scale(1 / float64(t.Size()))
	t.cfg.Optimizer.Step(t.cfg.Task.Params(), global, step)
	// The reduced sum is a pool lease and has been fully applied: recycle it
	// so every training step reuses the same result buffer.
	tensor.PutVector(global)

	if t.cfg.SyncEverySteps > 0 && (step+1)%t.cfg.SyncEverySteps == 0 {
		if err := t.SyncModel(); err != nil {
			return trace.StepRecord{}, fmt.Errorf("core: step %d model sync: %w", step, err)
		}
	}

	rec := trace.StepRecord{
		Step:            step,
		Duration:        time.Since(start),
		Loss:            loss,
		ActiveProcesses: res.ActiveRanks,
		Included:        res.Included,
	}
	t.recorder.Add(rec)
	return rec, nil
}

// SyncModel averages the model replicas across all ranks (a synchronous
// collective; every rank must call it at the same step).
func (t *Trainer) SyncModel() error {
	params := t.cfg.Task.Params()
	if err := collectives.Allreduce(t.cfg.Comm, params, collectives.OpSum, collectives.AlgoAuto); err != nil {
		return err
	}
	params.Scale(1 / float64(t.Size()))
	return nil
}

// Steps returns how many steps the trainer has executed.
func (t *Trainer) Steps() int { return t.step }

// Name describes the trainer variant.
func (t *Trainer) Name() string { return collective.ReducerName(t.cfg.Exchanger) }

// Close releases the exchanger.
func (t *Trainer) Close() { t.cfg.Exchanger.Close() }
