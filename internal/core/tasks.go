// Package core implements the paper's primary contribution at the training
// level: eager-SGD (Algorithm 2) with the Fig. 7 send/receive-buffer
// protocol, next to the synchronous SGD baselines it is compared against
// (a Deep500-style ordered allreduce and a Horovod-style negotiated fused
// allreduce). Trainers exchange gradients through pluggable exchangers and
// update a local model replica; tasks (this file) bind a model from
// internal/nn to a dataset shard from internal/data.
package core

import (
	"math/rand"

	"eagersgd/internal/data"
	"eagersgd/internal/nn"
	"eagersgd/internal/tensor"
)

// Metrics is an evaluation snapshot on held-out data.
type Metrics struct {
	Loss float64
	// Top1 and Top5 are classification accuracies in [0, 1]; zero for
	// regression tasks.
	Top1 float64
	Top5 float64
}

// Task is the per-rank training workload: it owns a local model replica and a
// shard of the dataset, computes local minibatch gradients, and evaluates the
// replica on held-out data.
type Task interface {
	// Name identifies the task in reports.
	Name() string
	// NumParams returns the model's parameter count.
	NumParams() int
	// Params returns the flat parameter vector of the local replica.
	Params() tensor.Vector
	// Grads returns the flat gradient vector filled by ComputeGradient.
	Grads() tensor.Vector
	// ComputeGradient computes the local mean minibatch gradient for the
	// given step and returns the minibatch loss.
	ComputeGradient(step int) float64
	// Evaluate scores the local replica on the task's held-out set.
	Evaluate() Metrics
	// WorkloadUnits returns the size of the step's minibatch workload in
	// task-specific units (frames for video, 0 when every batch costs the
	// same); it drives inherent-imbalance cost modelling.
	WorkloadUnits(step int) int
}

// BucketedTask is a Task whose gradient computation can announce
// layer-aligned segments as they become final during the backward pass, in
// reverse layer order — the hook the overlapped (bucketed) gradient exchange
// is built on. All built-in tasks implement it.
type BucketedTask interface {
	Task
	// Segments returns the layer-aligned bucket boundaries of Grads(), in
	// offset order, tiling [0, NumParams()).
	Segments() []nn.Segment
	// ComputeGradientBuckets behaves exactly like ComputeGradient (same
	// gradients, bit for bit) but invokes ready for each segment the moment
	// its gradient is final — during the backward pass, so the caller can
	// start exchanging early segments while later layers still
	// backpropagate.
	ComputeGradientBuckets(step int, ready func(nn.Segment)) float64
}

// RegressionTask trains an nn.Network on a data.RegressionDataset shard —
// the hyperplane workload of §6.2.1.
type RegressionTask struct {
	name    string
	net     *nn.Network
	train   *data.RegressionDataset
	eval    *data.RegressionDataset
	sampler *data.BatchSampler
}

// NewRegressionTask builds the per-rank task. Every rank must pass the same
// datasets and seed (the sampler shards them deterministically); model
// initialization uses the shared seed so replicas start identical.
func NewRegressionTask(name string, net *nn.Network, train, eval *data.RegressionDataset, batchSize, rank, size int, seed int64) *RegressionTask {
	net.Init(rand.New(rand.NewSource(seed)))
	return &RegressionTask{
		name:    name,
		net:     net,
		train:   train,
		eval:    eval,
		sampler: data.NewBatchSampler(train.Len(), batchSize, rank, size, seed),
	}
}

// Name returns the task name.
func (t *RegressionTask) Name() string { return t.name }

// NumParams returns the model size.
func (t *RegressionTask) NumParams() int { return t.net.NumParams() }

// Params returns the flat parameters.
func (t *RegressionTask) Params() tensor.Vector { return t.net.Params() }

// Grads returns the flat gradients.
func (t *RegressionTask) Grads() tensor.Vector { return t.net.Grads() }

// ComputeGradient computes the mean gradient of the step's minibatch. The
// batch is step-indexed (BatchSampler.At), so a retried step — an elastic
// run replaying a step that failed on a dying epoch — recomputes the exact
// gradient the step would have produced.
func (t *RegressionTask) ComputeGradient(step int) float64 {
	idx := t.sampler.At(step)
	xs := make([]tensor.Vector, len(idx))
	ys := make([]tensor.Vector, len(idx))
	for i, j := range idx {
		xs[i] = t.train.Inputs[j]
		ys[i] = t.train.Targets[j]
	}
	return t.net.BatchGradient(xs, ys)
}

// Segments returns the network's layer-aligned bucket boundaries.
func (t *RegressionTask) Segments() []nn.Segment { return t.net.Segments() }

// ComputeGradientBuckets is ComputeGradient with per-segment ready
// notifications during the backward pass (see BucketedTask).
func (t *RegressionTask) ComputeGradientBuckets(step int, ready func(nn.Segment)) float64 {
	idx := t.sampler.At(step)
	xs := make([]tensor.Vector, len(idx))
	ys := make([]tensor.Vector, len(idx))
	for i, j := range idx {
		xs[i] = t.train.Inputs[j]
		ys[i] = t.train.Targets[j]
	}
	return t.net.BatchGradientBuckets(xs, ys, ready)
}

// Evaluate returns the mean validation loss.
func (t *RegressionTask) Evaluate() Metrics {
	var total float64
	for i := range t.eval.Inputs {
		total += t.net.LossValue(t.eval.Inputs[i], t.eval.Targets[i])
	}
	return Metrics{Loss: total / float64(t.eval.Len())}
}

// WorkloadUnits returns 0: every regression batch costs the same.
func (t *RegressionTask) WorkloadUnits(int) int { return 0 }

// StepsPerEpoch returns the number of optimizer steps per pass over the
// rank's shard.
func (t *RegressionTask) StepsPerEpoch() int { return t.sampler.StepsPerEpoch() }

// ClassificationTask trains an nn.Network softmax classifier on a
// data.ClassificationDataset shard — the stand-in for ResNet-32/CIFAR-10 and
// ResNet-50/ImageNet (§6.2.2, §6.2.3).
type ClassificationTask struct {
	name    string
	net     *nn.Network
	train   *data.ClassificationDataset
	eval    *data.ClassificationDataset
	sampler *data.BatchSampler
}

// NewClassificationTask builds the per-rank task (same sharing rules as
// NewRegressionTask).
func NewClassificationTask(name string, net *nn.Network, train, eval *data.ClassificationDataset, batchSize, rank, size int, seed int64) *ClassificationTask {
	net.Init(rand.New(rand.NewSource(seed)))
	return &ClassificationTask{
		name:    name,
		net:     net,
		train:   train,
		eval:    eval,
		sampler: data.NewBatchSampler(train.Len(), batchSize, rank, size, seed),
	}
}

// Name returns the task name.
func (t *ClassificationTask) Name() string { return t.name }

// NumParams returns the model size.
func (t *ClassificationTask) NumParams() int { return t.net.NumParams() }

// Params returns the flat parameters.
func (t *ClassificationTask) Params() tensor.Vector { return t.net.Params() }

// Grads returns the flat gradients.
func (t *ClassificationTask) Grads() tensor.Vector { return t.net.Grads() }

// ComputeGradient computes the mean gradient of the step's minibatch,
// step-indexed like RegressionTask's so elastic retries resample it exactly.
func (t *ClassificationTask) ComputeGradient(step int) float64 {
	idx := t.sampler.At(step)
	xs := make([]tensor.Vector, len(idx))
	ys := make([]tensor.Vector, len(idx))
	for i, j := range idx {
		xs[i] = t.train.Inputs[j]
		ys[i] = nn.OneHot(t.train.Labels[j], t.train.Classes)
	}
	return t.net.BatchGradient(xs, ys)
}

// Segments returns the network's layer-aligned bucket boundaries.
func (t *ClassificationTask) Segments() []nn.Segment { return t.net.Segments() }

// ComputeGradientBuckets is ComputeGradient with per-segment ready
// notifications during the backward pass (see BucketedTask).
func (t *ClassificationTask) ComputeGradientBuckets(step int, ready func(nn.Segment)) float64 {
	idx := t.sampler.At(step)
	xs := make([]tensor.Vector, len(idx))
	ys := make([]tensor.Vector, len(idx))
	for i, j := range idx {
		xs[i] = t.train.Inputs[j]
		ys[i] = nn.OneHot(t.train.Labels[j], t.train.Classes)
	}
	return t.net.BatchGradientBuckets(xs, ys, ready)
}

// Evaluate returns held-out loss and top-1/top-5 accuracy.
func (t *ClassificationTask) Evaluate() Metrics {
	return evaluateClassifier(t.eval, t.net.Forward)
}

// WorkloadUnits returns 0: every classification batch costs the same.
func (t *ClassificationTask) WorkloadUnits(int) int { return 0 }

// StepsPerEpoch returns the number of optimizer steps per pass over the
// rank's shard.
func (t *ClassificationTask) StepsPerEpoch() int { return t.sampler.StepsPerEpoch() }

func evaluateClassifier(eval *data.ClassificationDataset, forward func(tensor.Vector) tensor.Vector) Metrics {
	var xent nn.SoftmaxCrossEntropy
	var loss float64
	top1, top5 := 0, 0
	for i := range eval.Inputs {
		logits := forward(eval.Inputs[i])
		label := eval.Labels[i]
		loss += xent.Loss(logits, nn.OneHot(label, eval.Classes))
		if logits.ArgMax() == label {
			top1++
		}
		if inTopK(logits, label, 5) {
			top5++
		}
	}
	n := float64(eval.Len())
	return Metrics{Loss: loss / n, Top1: float64(top1) / n, Top5: float64(top5) / n}
}

func inTopK(logits tensor.Vector, label, k int) bool {
	if k >= len(logits) {
		return true
	}
	target := logits[label]
	higher := 0
	for i, v := range logits {
		if i != label && v > target {
			higher++
		}
	}
	return higher < k
}

// SequenceTask trains an nn.LSTMClassifier on a variable-length
// data.SequenceDataset shard — the video classification workload of §6.3
// whose per-batch cost is proportional to the total number of frames.
type SequenceTask struct {
	name    string
	model   *nn.LSTMClassifier
	train   *data.SequenceDataset
	eval    *data.SequenceDataset
	sampler *data.BatchSampler

	lastWorkload int
}

// NewSequenceTask builds the per-rank task (same sharing rules as the other
// constructors).
func NewSequenceTask(name string, model *nn.LSTMClassifier, train, eval *data.SequenceDataset, batchSize, rank, size int, seed int64) *SequenceTask {
	model.Init(rand.New(rand.NewSource(seed)))
	return &SequenceTask{
		name:    name,
		model:   model,
		train:   train,
		eval:    eval,
		sampler: data.NewBatchSampler(train.Len(), batchSize, rank, size, seed),
	}
}

// Name returns the task name.
func (t *SequenceTask) Name() string { return t.name }

// NumParams returns the model size.
func (t *SequenceTask) NumParams() int { return t.model.NumParams() }

// Params returns the flat parameters.
func (t *SequenceTask) Params() tensor.Vector { return t.model.Params() }

// Grads returns the flat gradients.
func (t *SequenceTask) Grads() tensor.Vector { return t.model.Grads() }

// ComputeGradient runs BPTT over the step's minibatch of sequences. Its cost
// is genuinely proportional to the batch's total frame count, reproducing the
// inherent load imbalance of the video workload.
func (t *SequenceTask) ComputeGradient(step int) float64 {
	idx := t.sampler.At(step)
	seqs := make([][]tensor.Vector, len(idx))
	labels := make([]int, len(idx))
	workload := 0
	for i, j := range idx {
		seqs[i] = t.train.Sequences[j]
		labels[i] = t.train.Labels[j]
		workload += len(seqs[i])
	}
	t.lastWorkload = workload
	return t.model.BatchGradient(seqs, labels)
}

// Segments returns the model's layer-aligned bucket boundaries (recurrent
// block and dense read-out).
func (t *SequenceTask) Segments() []nn.Segment { return t.model.Segments() }

// ComputeGradientBuckets is ComputeGradient with per-segment ready
// notifications during backpropagation through time (see BucketedTask).
func (t *SequenceTask) ComputeGradientBuckets(step int, ready func(nn.Segment)) float64 {
	idx := t.sampler.At(step)
	seqs := make([][]tensor.Vector, len(idx))
	labels := make([]int, len(idx))
	workload := 0
	for i, j := range idx {
		seqs[i] = t.train.Sequences[j]
		labels[i] = t.train.Labels[j]
		workload += len(seqs[i])
	}
	t.lastWorkload = workload
	return t.model.BatchGradientBuckets(seqs, labels, ready)
}

// Evaluate returns held-out loss and top-1/top-5 accuracy.
func (t *SequenceTask) Evaluate() Metrics {
	var xent nn.SoftmaxCrossEntropy
	var loss float64
	top1, top5 := 0, 0
	for i := range t.eval.Sequences {
		logits := t.model.Forward(t.eval.Sequences[i])
		label := t.eval.Labels[i]
		loss += xent.Loss(logits, nn.OneHot(label, t.eval.Classes))
		if logits.ArgMax() == label {
			top1++
		}
		if inTopK(logits, label, 5) {
			top5++
		}
	}
	n := float64(t.eval.Len())
	return Metrics{Loss: loss / n, Top1: float64(top1) / n, Top5: float64(top5) / n}
}

// WorkloadUnits returns the total frame count of the most recent minibatch.
func (t *SequenceTask) WorkloadUnits(int) int { return t.lastWorkload }

// StepsPerEpoch returns the number of optimizer steps per pass over the
// rank's shard.
func (t *SequenceTask) StepsPerEpoch() int { return t.sampler.StepsPerEpoch() }
