package core_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/comm"
	"eagersgd/internal/core"
	"eagersgd/internal/data"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/nn"
	"eagersgd/internal/optimizer"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// mustReducer builds a collective reducer for tests, panicking on
// construction errors (which only arise from programming mistakes here).
func mustReducer(c *comm.Communicator, dim int, opts ...collective.Option) collective.Reducer {
	r, err := collective.NewReducer(c, dim, opts...)
	if err != nil {
		panic(err)
	}
	return r
}

func TestNewTrainerValidation(t *testing.T) {
	if _, err := core.NewTrainer(core.Config{}); err == nil {
		t.Fatal("expected error for empty config")
	}
}

// buildRegressionTask builds a small shared hyperplane task for the given
// rank. Train and eval splits come from the same generated dataset so they
// share the ground-truth coefficients.
func buildRegressionTask(rank, size, dim, batch int) *core.RegressionTask {
	full := data.Hyperplane(dim, 320, 0, 21)
	train := &data.RegressionDataset{Inputs: full.Inputs[:256], Targets: full.Targets[:256], Coefficients: full.Coefficients}
	eval := &data.RegressionDataset{Inputs: full.Inputs[256:], Targets: full.Targets[256:], Coefficients: full.Coefficients}
	net := nn.NewNetwork(nn.MSE{}, nn.NewDense(dim, 1))
	return core.NewRegressionTask("hyperplane", net, train, eval, batch, rank, size, 99)
}

func TestRegressionTaskBasics(t *testing.T) {
	task := buildRegressionTask(0, 1, 6, 8)
	if task.Name() != "hyperplane" {
		t.Fatal("name")
	}
	if task.NumParams() != 7 {
		t.Fatalf("NumParams = %d", task.NumParams())
	}
	loss := task.ComputeGradient(0)
	if loss <= 0 {
		t.Fatalf("initial loss %v should be positive", loss)
	}
	if task.Grads().Norm2() == 0 {
		t.Fatal("gradient is zero")
	}
	if task.WorkloadUnits(0) != 0 {
		t.Fatal("regression workload units should be 0")
	}
	m := task.Evaluate()
	if m.Loss <= 0 || m.Top1 != 0 {
		t.Fatalf("evaluate = %+v", m)
	}
	if task.StepsPerEpoch() <= 0 {
		t.Fatal("StepsPerEpoch")
	}
}

func TestClassificationTaskBasics(t *testing.T) {
	train := data.Blobs(4, 6, 30, 0.3, 5)
	eval := data.Blobs(4, 6, 10, 0.3, 6)
	net := nn.NewNetwork(nn.SoftmaxCrossEntropy{}, nn.NewDense(6, 16), nn.NewTanh(16), nn.NewDense(16, 4))
	task := core.NewClassificationTask("blobs", net, train, eval, 8, 0, 1, 3)
	if task.NumParams() != net.NumParams() {
		t.Fatal("NumParams mismatch")
	}
	loss := task.ComputeGradient(0)
	if loss <= 0 || task.Grads().Norm2() == 0 {
		t.Fatalf("gradient computation broken: loss=%v", loss)
	}
	m := task.Evaluate()
	if m.Top1 < 0 || m.Top1 > 1 || m.Top5 < m.Top1 {
		t.Fatalf("metrics %+v", m)
	}
	if task.WorkloadUnits(0) != 0 {
		t.Fatal("classification workload units should be 0")
	}
}

func makeSequenceData(seed int64, samples int) *data.SequenceDataset {
	return data.Sequences(data.SequenceConfig{
		Classes: 3, FeatDim: 4, Samples: samples, Noise: 0.2,
		Lengths: data.UCF101LengthDistribution{MinFrames: 4, MaxFrames: 24, Median: 8, Sigma: 0.5},
		Seed:    seed,
	})
}

func TestSequenceTaskBasics(t *testing.T) {
	train := makeSequenceData(1, 40)
	eval := makeSequenceData(2, 12)
	model := nn.NewLSTMClassifier(4, 6, 3)
	task := core.NewSequenceTask("video", model, train, eval, 4, 0, 1, 7)
	loss := task.ComputeGradient(0)
	if loss <= 0 || task.Grads().Norm2() == 0 {
		t.Fatalf("sequence gradient broken: %v", loss)
	}
	if task.WorkloadUnits(0) <= 0 {
		t.Fatal("sequence workload units must reflect batch frame count")
	}
	m := task.Evaluate()
	if m.Top5 < m.Top1 {
		t.Fatalf("metrics %+v", m)
	}
}

// runWorld runs fn on every rank of a fresh world concurrently.
func runWorld(t *testing.T, size int, fn func(rank int, c *comm.Communicator) error) {
	t.Helper()
	world := transport.NewInprocWorld(size)
	defer world[0].Close()
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(r, world[r])
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("distributed run did not finish (deadlock)")
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestSynchSGDMatchesSequentialSGD verifies the core data-parallel identity:
// P ranks doing synch-SGD with per-rank batch B behave exactly like one rank
// doing SGD with batch P*B when the per-rank batches partition the global
// batch. We approximate by checking that all replicas stay bit-identical
// across ranks and that the loss decreases.
func TestSynchSGDReplicasStayIdentical(t *testing.T) {
	const size = 4
	const dim = 6
	const steps = 15
	finalParams := make([]tensor.Vector, size)
	losses := make([][]float64, size)
	runWorld(t, size, func(rank int, c *comm.Communicator) error {
		task := buildRegressionTask(rank, size, dim, 4)
		tr, err := core.NewTrainer(core.Config{
			Comm:      c,
			Task:      task,
			Exchanger: mustReducer(c, task.NumParams(), collective.WithChunks(3)),
			Optimizer: optimizer.NewSGD(0.05),
		})
		if err != nil {
			return err
		}
		defer tr.Close()
		for s := 0; s < steps; s++ {
			rec, err := tr.Step()
			if err != nil {
				return err
			}
			losses[rank] = append(losses[rank], rec.Loss)
			if rec.ActiveProcesses != size || !rec.Included {
				t.Errorf("synch step stats wrong: %+v", rec)
			}
		}
		finalParams[rank] = task.Params().Clone()
		return nil
	})
	for r := 1; r < size; r++ {
		if !finalParams[r].AllClose(finalParams[0], 1e-9) {
			t.Fatalf("rank %d replica diverged from rank 0 under synchronous SGD", r)
		}
	}
	// Loss must drop substantially over training.
	first, last := losses[0][0], losses[0][len(losses[0])-1]
	if last > first*0.9 {
		t.Fatalf("synch-SGD made no progress: first %v last %v", first, last)
	}
}

func TestHorovodStyleAlsoKeepsReplicasIdentical(t *testing.T) {
	const size = 3
	finalParams := make([]tensor.Vector, size)
	runWorld(t, size, func(rank int, c *comm.Communicator) error {
		task := buildRegressionTask(rank, size, 5, 4)
		tr, err := core.NewTrainer(core.Config{
			Comm:      c,
			Task:      task,
			Exchanger: mustReducer(c, task.NumParams(), collective.WithNegotiation()),
			Optimizer: optimizer.NewSGD(0.05),
		})
		if err != nil {
			return err
		}
		defer tr.Close()
		for s := 0; s < 8; s++ {
			if _, err := tr.Step(); err != nil {
				return err
			}
		}
		finalParams[rank] = task.Params().Clone()
		return nil
	})
	for r := 1; r < size; r++ {
		if !finalParams[r].AllClose(finalParams[0], 1e-9) {
			t.Fatalf("rank %d replica diverged under Horovod-style synch-SGD", r)
		}
	}
}

func TestEagerSGDConvergesOnHyperplane(t *testing.T) {
	// Light imbalance (injected delay is a fraction of the modelled per-step
	// compute, as in Fig. 10), solo allreduce: the validation loss must drop
	// by a large factor, mirroring Fig. 10's "equivalent loss" claim.
	const size = 4
	const steps = 200
	evalLosses := make([]float64, size)
	runWorld(t, size, func(rank int, c *comm.Communicator) error {
		task := buildRegressionTask(rank, size, 8, 8)
		tr, err := core.NewTrainer(core.Config{
			Comm:            c,
			Task:            task,
			Exchanger:       mustReducer(c, task.NumParams(), collective.WithMode(collective.Solo), collective.WithSeed(17)),
			Optimizer:       optimizer.NewSGD(0.02),
			Injector:        imbalance.RandomSubset{Size: size, K: 1, Amount: 6, Seed: 2},
			Clock:           imbalance.ScaledClock(0.05),
			BaseStepPaperMs: 20,
			SyncEverySteps:  20,
		})
		if err != nil {
			return err
		}
		defer tr.Close()
		for s := 0; s < steps; s++ {
			if _, err := tr.Step(); err != nil {
				return err
			}
		}
		if err := tr.SyncModel(); err != nil {
			return err
		}
		evalLosses[rank] = task.Evaluate().Loss
		return nil
	})
	initial := buildRegressionTask(0, 1, 8, 8).Evaluate().Loss
	for r, l := range evalLosses {
		if l > initial*0.2 {
			t.Fatalf("rank %d eager-SGD did not converge: eval loss %v (initial %v)", r, l, initial)
		}
	}
}

func TestEagerSGDMajorityWaitsForQuorum(t *testing.T) {
	// Under a linear skew, majority mode must report a mean NAP well above
	// solo mode's (statistical guarantee of §4.2).
	const size = 4
	const steps = 20
	meanNAP := func(mode collective.Mode) float64 {
		naps := make([]float64, size)
		runWorld(t, size, func(rank int, c *comm.Communicator) error {
			task := buildRegressionTask(rank, size, 5, 4)
			tr, err := core.NewTrainer(core.Config{
				Comm:      c,
				Task:      task,
				Exchanger: mustReducer(c, task.NumParams(), collective.WithMode(mode), collective.WithSeed(5)),
				Optimizer: optimizer.NewSGD(0.01),
				Injector:  imbalance.LinearSkew{StepMs: 30},
				Clock:     imbalance.ScaledClock(0.2),
			})
			if err != nil {
				return err
			}
			defer tr.Close()
			for s := 0; s < steps; s++ {
				if _, err := tr.Step(); err != nil {
					return err
				}
			}
			naps[rank] = tr.Recorder().MeanActiveProcesses()
			return nil
		})
		best := 0.0
		for _, n := range naps {
			if n > best {
				best = n
			}
		}
		return best
	}
	solo := meanNAP(collective.Solo)
	majority := meanNAP(collective.Majority)
	if majority <= solo {
		t.Fatalf("majority NAP %.2f should exceed solo NAP %.2f under linear skew", majority, solo)
	}
}

func TestEagerSoloFasterThanSynchUnderSkew(t *testing.T) {
	// The headline claim: under injected imbalance, eager-SGD (solo) steps
	// complete faster than synch-SGD steps because nobody waits for the
	// delayed rank.
	const size = 4
	const steps = 12
	delay := 80.0 // paper ms
	clock := imbalance.ScaledClock(0.25)

	runVariant := func(eager bool) time.Duration {
		times := make([]time.Duration, size)
		runWorld(t, size, func(rank int, c *comm.Communicator) error {
			task := buildRegressionTask(rank, size, 5, 4)
			var ex collective.Reducer
			if eager {
				ex = mustReducer(c, task.NumParams(), collective.WithMode(collective.Solo), collective.WithSeed(3))
			} else {
				ex = mustReducer(c, task.NumParams())
			}
			tr, err := core.NewTrainer(core.Config{
				Comm:      c,
				Task:      task,
				Exchanger: ex,
				Optimizer: optimizer.NewSGD(0.01),
				Injector:  imbalance.RandomSubset{Size: size, K: 1, Amount: delay, Seed: 9},
				Clock:     clock,
			})
			if err != nil {
				return err
			}
			defer tr.Close()
			for s := 0; s < steps; s++ {
				if _, err := tr.Step(); err != nil {
					return err
				}
			}
			times[rank] = tr.Recorder().TotalTime()
			return nil
		})
		// Use the fastest rank's training time: in synch-SGD even the fastest
		// rank is dragged down to the straggler's pace, which is exactly the
		// effect eager-SGD removes.
		best := times[0]
		for _, d := range times {
			if d < best {
				best = d
			}
		}
		return best
	}

	synchTime := runVariant(false)
	eagerTime := runVariant(true)
	if eagerTime >= synchTime {
		t.Fatalf("eager-SGD (%v) not faster than synch-SGD (%v) under injected skew", eagerTime, synchTime)
	}
}

func TestRunnerEndToEnd(t *testing.T) {
	res, err := core.Run(core.RunConfig{
		Name:           "synch-test",
		Size:           2,
		Steps:          10,
		EvalEverySteps: 5,
		FinalSync:      true,
		Build: func(rank int, n *collective.Node) (*core.Trainer, error) {
			task := buildRegressionTask(rank, 2, 5, 4)
			c := n.Communicator()
			return core.NewTrainer(core.Config{
				Node:      n,
				Task:      task,
				Exchanger: mustReducer(c, task.NumParams(), collective.WithChunks(2)),
				Optimizer: optimizer.NewSGD(0.05),
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.TrainingTime <= 0 {
		t.Fatalf("throughput %v training time %v", res.Throughput, res.TrainingTime)
	}
	if len(res.EvalLoss.Points) < 2 {
		t.Fatalf("expected at least 2 evaluation points, got %d", len(res.EvalLoss.Points))
	}
	if res.MeanActiveProcesses != 2 {
		t.Fatalf("MeanActiveProcesses = %v, want 2 for synch", res.MeanActiveProcesses)
	}
	if math.IsNaN(res.Final.Loss) || res.Final.Loss < 0 {
		t.Fatalf("final metrics %+v", res.Final)
	}
	if len(res.PerRank) != 2 || res.PerRank[1].Steps() != 10 {
		t.Fatal("per-rank recorders missing")
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := core.Run(core.RunConfig{}); err == nil {
		t.Fatal("expected error for empty run config")
	}
	if _, err := core.Run(core.RunConfig{Size: 1, Steps: 1, Build: func(int, *collective.Node) (*core.Trainer, error) {
		return nil, comm.ErrClosed
	}}); err == nil {
		t.Fatal("expected build error to propagate")
	}
}

func TestExchangerNames(t *testing.T) {
	world := transport.NewInprocWorld(1)
	defer world[0].Close()
	se := mustReducer(world[0], 3, collective.WithNegotiation())
	if collective.ReducerName(se) != "synch-sgd (horovod)" {
		t.Fatalf("name %q", collective.ReducerName(se))
	}
	ee := mustReducer(world[0], 3, collective.WithMode(collective.Majority), collective.WithSeed(1))
	defer ee.Close()
	if collective.ReducerName(ee) != "eager-sgd (majority)" {
		t.Fatalf("name %q", collective.ReducerName(ee))
	}
	qe := mustReducer(world[0], 3, collective.WithMode(collective.Quorum(1)), collective.WithSeed(1))
	defer qe.Close()
	if collective.ReducerName(qe) != "eager-sgd (quorum)" {
		t.Fatalf("name %q", collective.ReducerName(qe))
	}
}

func TestSyncModelAveragesReplicas(t *testing.T) {
	const size = 3
	results := make([]tensor.Vector, size)
	runWorld(t, size, func(rank int, c *comm.Communicator) error {
		task := buildRegressionTask(rank, size, 4, 4)
		// Force divergent replicas.
		task.Params().Fill(float64(rank + 1))
		tr, err := core.NewTrainer(core.Config{
			Comm:      c,
			Task:      task,
			Exchanger: mustReducer(c, task.NumParams()),
			Optimizer: optimizer.NewSGD(0.1),
		})
		if err != nil {
			return err
		}
		defer tr.Close()
		if err := tr.SyncModel(); err != nil {
			return err
		}
		results[rank] = task.Params().Clone()
		return nil
	})
	want := tensor.NewVector(len(results[0]))
	want.Fill(2) // mean of 1, 2, 3
	for r := 0; r < size; r++ {
		if !results[r].AllClose(want, 1e-9) {
			t.Fatalf("rank %d synced params %v, want all 2", r, results[r][:2])
		}
	}
}

// buildDeepClassificationTask builds a multi-layer MLP classification task so
// the overlapped path exercises several layer-aligned buckets.
func buildDeepClassificationTask(rank, size int) *core.ClassificationTask {
	train := data.Blobs(4, 6, 64, 0.3, 41)
	eval := data.Blobs(4, 6, 16, 0.3, 42)
	net := nn.NewNetwork(nn.SoftmaxCrossEntropy{},
		nn.NewDense(6, 24), nn.NewTanh(24), nn.NewDense(24, 16), nn.NewReLU(16), nn.NewDense(16, 4))
	return core.NewClassificationTask("blobs-deep", net, train, eval, 8, rank, size, 3)
}

// TestOverlappedSyncTrainingBitForBit is the trainer-level half of the
// numerical-equivalence acceptance gate: on the in-process transport with
// recursive doubling (whose per-element reduction tree is independent of the
// vector length), overlapped bucketed training must produce bit-for-bit the
// parameters of the serial single-shot path.
func TestOverlappedSyncTrainingBitForBit(t *testing.T) {
	const size = 4
	const steps = 6
	run := func(overlap bool, bucketElems int) []tensor.Vector {
		finalParams := make([]tensor.Vector, size)
		runWorld(t, size, func(rank int, c *comm.Communicator) error {
			task := buildDeepClassificationTask(rank, size)
			opts := []collective.Option{collective.WithAlgorithm(collective.RecursiveDoubling)}
			if overlap {
				opts = append(opts, collective.WithOverlap(), collective.WithBucketElems(bucketElems))
			}
			tr, err := core.NewTrainer(core.Config{
				Comm:      c,
				Task:      task,
				Exchanger: mustReducer(c, task.NumParams(), opts...),
				Optimizer: optimizer.NewSGD(0.05),
			})
			if err != nil {
				return err
			}
			defer tr.Close()
			for s := 0; s < steps; s++ {
				rec, err := tr.Step()
				if err != nil {
					return err
				}
				if rec.ActiveProcesses != size || !rec.Included {
					t.Errorf("overlapped sync step stats wrong: %+v", rec)
				}
			}
			finalParams[rank] = task.Params().Clone()
			return nil
		})
		return finalParams
	}
	serial := run(false, 0)
	for _, bucketElems := range []int{0, 200} { // per-layer buckets and coalesced buckets
		overlapped := run(true, bucketElems)
		for r := 0; r < size; r++ {
			for i := range serial[r] {
				if serial[r][i] != overlapped[r][i] {
					t.Fatalf("bucketElems=%d rank %d param %d: overlapped %v != serial %v (must be bit-for-bit)",
						bucketElems, r, i, overlapped[r][i], serial[r][i])
				}
			}
		}
	}
}

// TestOverlappedEagerTraining smoke-tests the overlapped path through the
// eager (solo) engine end to end, including the periodic WithSyncEvery
// synchronization happening per bucket: replicas must converge after a final
// model sync and per-step stats must stay sane.
func TestOverlappedEagerTraining(t *testing.T) {
	const size = 4
	const steps = 160
	evalLosses := make([]float64, size)
	runWorld(t, size, func(rank int, c *comm.Communicator) error {
		task := buildRegressionTask(rank, size, 8, 8)
		layout := core.BucketLayout(task, 0)
		tr, err := core.NewTrainer(core.Config{
			Comm: c,
			Task: task,
			Exchanger: mustReducer(c, task.NumParams(),
				collective.WithMode(collective.Solo), collective.WithSeed(17),
				collective.WithOverlap(), collective.WithBucketLayout(layout...),
				collective.WithSyncEvery(10)),
			Optimizer:      optimizer.NewSGD(0.02),
			SyncEverySteps: 20,
		})
		if err != nil {
			return err
		}
		defer tr.Close()
		for s := 0; s < steps; s++ {
			rec, err := tr.Step()
			if err != nil {
				return err
			}
			if rec.ActiveProcesses < 0 || rec.ActiveProcesses > size {
				t.Errorf("rank %d step %d: active processes %d out of range", rank, s, rec.ActiveProcesses)
			}
		}
		if err := tr.SyncModel(); err != nil {
			return err
		}
		evalLosses[rank] = task.Evaluate().Loss
		return nil
	})
	initial := buildRegressionTask(0, 1, 8, 8).Evaluate().Loss
	for r, l := range evalLosses {
		if l > initial*0.5 {
			t.Fatalf("rank %d overlapped eager training did not make progress: eval loss %v (initial %v)", r, l, initial)
		}
	}
}
