package core_test

import (
	"sync"
	"testing"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/core"
	"eagersgd/internal/imbalance"
	"eagersgd/internal/optimizer"
	"eagersgd/internal/tensor"
)

// elasticTasks captures the task each Build call constructs, keyed by the
// member's stable RankID, so tests can inspect final parameters after a run.
type elasticTasks struct {
	mu    sync.Mutex
	tasks map[collective.RankID]*core.RegressionTask
}

func newElasticTasks() *elasticTasks {
	return &elasticTasks{tasks: make(map[collective.RankID]*core.RegressionTask)}
}

func (e *elasticTasks) put(id collective.RankID, task *core.RegressionTask) {
	e.mu.Lock()
	e.tasks[id] = task
	e.mu.Unlock()
}

func (e *elasticTasks) params(t *testing.T, id collective.RankID) []float64 {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()
	task, ok := e.tasks[id]
	if !ok {
		t.Fatalf("no task captured for member %d", id)
	}
	out := make([]float64, task.NumParams())
	copy(out, task.Params())
	return out
}

// syncTrainer builds a synchronous-SGD trainer over the node's epoch-stable
// reducer. shard picks the data partition (out of shards) independently of
// the node's dense rank, so a replacement can adopt its dense slot's shard.
func syncTrainer(shard, shards int, n *collective.Node) (*core.Trainer, *core.RegressionTask, error) {
	task := buildRegressionTask(shard, shards, 5, 4)
	ex, err := n.Reducer(task.NumParams(), collective.WithMode(collective.Sync))
	if err != nil {
		return nil, nil, err
	}
	tr, err := core.NewTrainer(core.Config{
		Node:      n,
		Task:      task,
		Exchanger: ex,
		Optimizer: optimizer.NewSGD(0.05),
	})
	return tr, task, err
}

// TestChurnReplaceBitIdentical is the headline elastic acceptance test: a
// scripted crash kills rank 1 after crashAt steps, a ChurnReplace event
// admits a fresh member in its place, and the run's final parameters are
// bit-identical to an uninterrupted run of the surviving configuration
// (shards {0, 2, 2}) started from the handoff parameters at the handoff step.
// Synchronous SGD makes every value deterministic in the step sequence, so
// equality is exact, not approximate.
func TestChurnReplaceBitIdentical(t *testing.T) {
	const (
		size    = 3
		crashAt = 5 // victim completes crashAt steps, then its crash wedges step crashAt
		steps   = 9 // post-transition per-rank step count (4) stays below crashAt
	)

	// Phase A: the handoff parameters — a clean run of the founding
	// configuration stopped at the crash boundary. Synchronous SGD keeps all
	// replicas identical, so rank 0's parameters are the handoff state.
	handoffTasks := newElasticTasks()
	if _, err := core.Run(core.RunConfig{
		Name:  "handoff",
		Size:  size,
		Steps: crashAt,
		Build: func(rank int, n *collective.Node) (*core.Trainer, error) {
			tr, task, err := syncTrainer(rank, size, n)
			if err == nil {
				handoffTasks.put(n.ID(), task)
			}
			return tr, err
		},
	}); err != nil {
		t.Fatalf("handoff run: %v", err)
	}
	handoff := handoffTasks.params(t, 0)

	// Phase B: the reference — the surviving configuration (shards 0, 2 and
	// the replacement's duplicate of shard 2) trained uninterrupted from the
	// handoff parameters, steps crashAt..steps-1.
	refShards := []int{0, 2, 2}
	refTasks := newElasticTasks()
	if _, err := core.Run(core.RunConfig{
		Name:  "reference",
		Size:  size,
		Steps: steps,
		Build: func(rank int, n *collective.Node) (*core.Trainer, error) {
			task := buildRegressionTask(refShards[rank], size, 5, 4)
			ex, err := n.Reducer(task.NumParams(), collective.WithMode(collective.Sync))
			if err != nil {
				return nil, err
			}
			tr, err := core.NewTrainer(core.Config{
				Node:      n,
				Task:      task,
				Exchanger: ex,
				Optimizer: optimizer.NewSGD(0.05),
				StartStep: crashAt,
			})
			if err != nil {
				return nil, err
			}
			if err := tr.SetParams(handoff); err != nil {
				return nil, err
			}
			refTasks.put(n.ID(), task)
			return tr, nil
		},
	}); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	reference := refTasks.params(t, 0)

	// Phase C: the elastic run — crash by script, repair by churn. The
	// replacement is built at dense rank 2 (shard 2), adopts the transferred
	// parameters, and trains from the handoff step.
	before := tensor.ReadPoolStats()
	elTasks := newElasticTasks()
	res, err := core.Run(core.RunConfig{
		Name:  "elastic",
		Size:  size,
		Steps: steps,
		WorldOptions: []collective.Option{
			// Deadline detection (SignalCrashes false) keeps the crash cut at
			// an exact step boundary: the victim's final-step frames are
			// already delivered, so every survivor completes step crashAt-1
			// and fails uniformly at step crashAt. An immediate crash signal
			// would tear the boundary — a survivor mid-step fails fast while
			// another, further along, completes the step.
			collective.WithFaults(collective.FaultScenario{
				Name:        "crash-then-replace",
				Seed:        11,
				CrashAtStep: map[int]int{1: crashAt},
			}),
			collective.WithPeerDeadline(300 * time.Millisecond),
		},
		Churn: []core.ChurnEvent{
			{AfterStep: crashAt, Kind: core.ChurnReplace, Victim: 1, Addr: "replacement"},
		},
		Build: func(rank int, n *collective.Node) (*core.Trainer, error) {
			tr, task, err := syncTrainer(rank, size, n)
			if err == nil {
				elTasks.put(n.ID(), task)
			}
			return tr, err
		},
	})
	if err != nil {
		t.Fatalf("elastic run: %v", err)
	}
	if len(res.PerRank) != size+1 {
		t.Fatalf("PerRank = %d recorders, want %d (founders + replacement)", len(res.PerRank), size+1)
	}

	// The replacement carries stable ID 3 (IDs are never reused) and must
	// have trained exactly the post-handoff steps.
	if got := res.PerRank[size].Steps(); got != steps-crashAt {
		t.Fatalf("replacement trained %d steps, want %d", got, steps-crashAt)
	}
	for id, want := range map[collective.RankID][]float64{0: reference, 2: reference, 3: reference} {
		got := elTasks.params(t, id)
		if len(got) != len(want) {
			t.Fatalf("member %d: %d params, want %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("member %d param %d = %v, reference %v — elastic run diverged from the uninterrupted surviving-configuration run", id, i, got[i], want[i])
			}
		}
	}
	if leaked := tensor.ReadPoolStats().OutstandingSince(before); leaked != 0 {
		t.Fatalf("%d pool leases leaked across the crash-and-replace run", leaked)
	}
}

// TestChurnJoinGrowsUnderLoad scripts two ChurnJoin events that grow a
// 4-rank run to 6 while it trains. Joiners adopt the transferred parameters
// and handoff step, post-transition reductions span the grown schedule, and
// the run leaks no pool leases.
func TestChurnJoinGrowsUnderLoad(t *testing.T) {
	const (
		size   = 4
		grown  = 6
		steps  = 10
		shards = 6 // fixed data-partition universe so joiners get fresh shards
	)
	before := tensor.ReadPoolStats()
	elTasks := newElasticTasks()
	res, err := core.Run(core.RunConfig{
		Name:  "grow",
		Size:  size,
		Steps: steps,
		Churn: []core.ChurnEvent{
			{AfterStep: 3, Kind: core.ChurnJoin, Addr: "joiner-a"},
			{AfterStep: 5, Kind: core.ChurnJoin, Addr: "joiner-b"},
		},
		Build: func(rank int, n *collective.Node) (*core.Trainer, error) {
			// Paced steps (~5ms of modelled compute) keep the run in flight
			// long enough for the millisecond-polling churn clock to land the
			// joins mid-training; the instant regression steps would finish
			// all of them before the controller's first look.
			task := buildRegressionTask(rank, shards, 5, 4)
			ex, err := n.Reducer(task.NumParams(), collective.WithMode(collective.Sync))
			if err != nil {
				return nil, err
			}
			tr, err := core.NewTrainer(core.Config{
				Node:            n,
				Task:            task,
				Exchanger:       ex,
				Optimizer:       optimizer.NewSGD(0.05),
				BaseStepPaperMs: 100,
				Clock:           imbalance.ScaledClock(0.05),
			})
			if err != nil {
				return nil, err
			}
			elTasks.put(n.ID(), task)
			return tr, nil
		},
	})
	if err != nil {
		t.Fatalf("grow run: %v", err)
	}
	if len(res.PerRank) != grown {
		t.Fatalf("PerRank = %d recorders, want %d", len(res.PerRank), grown)
	}
	for i := size; i < grown; i++ {
		if got := res.PerRank[i].Steps(); got <= 0 || got >= steps {
			t.Fatalf("joiner %d trained %d steps, want between 1 and %d", i, got, steps-1)
		}
	}
	// Synchronous SGD over a shared schedule keeps every replica identical:
	// all six members (founders 0..3, joiners 4 and 5) must agree bitwise.
	want := elTasks.params(t, 0)
	for id := collective.RankID(1); id < grown; id++ {
		got := elTasks.params(t, id)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("member %d param %d = %v, member 0 has %v — replicas diverged after growth", id, i, got[i], want[i])
			}
		}
	}
	if leaked := tensor.ReadPoolStats().OutstandingSince(before); leaked != 0 {
		t.Fatalf("%d pool leases leaked across the join-under-load run", leaked)
	}
}
