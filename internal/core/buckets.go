package core

import "eagersgd/internal/nn"

// bucketPlan maps a model's layer segments onto exchange buckets: lens/offs
// describe the buckets in offset order, segsPerBucket how many layer segments
// each bucket coalesces, and bucketOf locates a segment's bucket by the
// segment's offset. The plan is a pure function of the segments and the
// coalescing target, so every SPMD rank computes the same layout.
type bucketPlan struct {
	lens          []int
	offs          []int
	segsPerBucket []int
	bucketOf      map[int]int
}

// planBuckets coalesces adjacent layer segments (in offset order) into
// buckets of at least bucketElems elements — the Horovod/DDP-style fusion
// bucket, trading per-bucket exchange overhead against overlap granularity.
// bucketElems <= 0 keeps one bucket per segment. A coalesced bucket becomes
// ready only when its lowest-offset segment does, which under reverse-layer
// emission is the last of its segments to settle.
func planBuckets(segs []nn.Segment, bucketElems int) bucketPlan {
	p := bucketPlan{bucketOf: make(map[int]int, len(segs))}
	curLen, curSegs, curOff := 0, 0, 0
	flush := func() {
		if curSegs == 0 {
			return
		}
		p.lens = append(p.lens, curLen)
		p.offs = append(p.offs, curOff)
		p.segsPerBucket = append(p.segsPerBucket, curSegs)
		curLen, curSegs = 0, 0
	}
	for _, s := range segs {
		if curSegs == 0 {
			curOff = s.Offset
		}
		p.bucketOf[s.Offset] = len(p.lens)
		curLen += s.Len
		curSegs++
		if bucketElems <= 0 || curLen >= bucketElems {
			flush()
		}
	}
	flush()
	return p
}

// BucketLayout returns the bucket lengths (in offset order) an overlapped
// trainer will use for the task with the given coalescing target — the
// layout to pass to collective.WithBucketLayout when constructing eager
// reducers, whose engines fix the layout at construction.
func BucketLayout(task BucketedTask, bucketElems int) []int {
	return planBuckets(task.Segments(), bucketElems).lens
}
