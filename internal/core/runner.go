package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/comm"
	"eagersgd/internal/trace"
)

// RunConfig describes one end-to-end distributed training run executed with
// every rank as a goroutine over a collective.World (in-process by default).
type RunConfig struct {
	// Name labels the run in curves and tables (e.g. "eager-SGD-300 (solo)").
	Name string
	// Size is the number of ranks.
	Size int
	// WorldOptions configure the collective.World the run executes on
	// (transport, base port). Empty means in-process. Reducer settings are
	// chosen by Build, which constructs reducers explicitly; world-level
	// reducer defaults do not apply here.
	WorldOptions []collective.Option
	// Steps is the number of optimizer steps every rank executes.
	Steps int
	// EvalEverySteps inserts an evaluation every that many steps (0 = only a
	// final evaluation). Evaluation happens on every rank (so the load stays
	// balanced) but only rank 0's metrics are recorded.
	EvalEverySteps int
	// FinalSync averages replicas across ranks before the final evaluation
	// (recommended for eager-SGD, harmless for synch-SGD).
	FinalSync bool
	// Build constructs the rank's trainer over the provided communicator.
	Build func(rank int, c *comm.Communicator) (*Trainer, error)
}

// RunResult aggregates the measurements of one run.
type RunResult struct {
	Name string
	// PerRank holds each rank's step recorder.
	PerRank []*trace.ThroughputRecorder
	// TrainLoss is rank 0's minibatch loss averaged between evaluations,
	// plotted against cumulative training time (seconds).
	TrainLoss *trace.Curve
	// EvalLoss, EvalTop1, and EvalTop5 are rank 0's held-out metrics against
	// cumulative training time (seconds).
	EvalLoss *trace.Curve
	EvalTop1 *trace.Curve
	EvalTop5 *trace.Curve
	// Final is the last evaluation on rank 0.
	Final Metrics
	// TrainingTime is rank 0's cumulative step time (evaluation excluded).
	TrainingTime time.Duration
	// Throughput is rank 0's average steps per second of training time.
	Throughput float64
	// MeanActiveProcesses is the mean NAP over rank 0's steps.
	MeanActiveProcesses float64
}

// Run executes the configured training with no cancellation chain. It is the
// compatibility entry point; code holding a context should call RunContext so
// a blocked gradient exchange can be interrupted.
func Run(cfg RunConfig) (*RunResult, error) {
	//eagervet:ignore ctxcheck -- Run is the documented no-context shim over RunContext; the root lives here by design.
	return RunContext(context.Background(), cfg)
}

// RunContext executes the configured training on a collective.World
// (in-process unless WorldOptions say otherwise) and collects the curves the
// paper's figures plot. Every rank's transport resources are released through
// World.Close when the run finishes. Canceling ctx aborts each rank's next
// blocked gradient exchange; the run then returns the cancellation error.
func RunContext(ctx context.Context, cfg RunConfig) (*RunResult, error) {
	if cfg.Size <= 0 || cfg.Steps <= 0 || cfg.Build == nil {
		return nil, fmt.Errorf("core: run config requires positive Size and Steps and a Build function")
	}
	world, err := collective.NewWorld(cfg.Size, cfg.WorldOptions...)
	if err != nil {
		return nil, fmt.Errorf("core: build world: %w", err)
	}
	defer world.Close()

	trainers := make([]*Trainer, cfg.Size)
	for r := 0; r < cfg.Size; r++ {
		tr, err := cfg.Build(r, world.Node(r).Communicator())
		if err != nil {
			return nil, fmt.Errorf("core: build trainer for rank %d: %w", r, err)
		}
		trainers[r] = tr
	}

	result := &RunResult{
		Name:      cfg.Name,
		PerRank:   make([]*trace.ThroughputRecorder, cfg.Size),
		TrainLoss: &trace.Curve{Name: cfg.Name + " train-loss"},
		EvalLoss:  &trace.Curve{Name: cfg.Name + " eval-loss"},
		EvalTop1:  &trace.Curve{Name: cfg.Name + " top1"},
		EvalTop5:  &trace.Curve{Name: cfg.Name + " top5"},
	}

	inj := world.FaultInjector()
	errs := make([]error, cfg.Size)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = runRank(ctx, cfg, trainers[r], r == 0, result, inj, r)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			if inj != nil && inj.Crashed(r) {
				// The rank died by script (collective.WithFaults): its error
				// is the crash taking effect, not a failure of the run. The
				// survivors' results stand.
				continue
			}
			return nil, fmt.Errorf("core: rank %d: %w", r, err)
		}
	}

	for r := 0; r < cfg.Size; r++ {
		result.PerRank[r] = trainers[r].Recorder()
	}
	rec := result.PerRank[0]
	result.TrainingTime = rec.TotalTime()
	result.Throughput = rec.StepsPerSecond()
	result.MeanActiveProcesses = rec.MeanActiveProcesses()
	return result, nil
}

// runRank executes the training loop for one rank. Only rank 0 (record=true)
// appends to the shared result curves; ranks never write concurrently to the
// same fields because exactly one rank records. Under an injected fault
// scenario (inj non-nil) the rank advances its crash-at-step counter once per
// optimizer step, so scripted crashes fire deterministically in the rank's
// own step sequence.
func runRank(ctx context.Context, cfg RunConfig, tr *Trainer, record bool, result *RunResult, inj *collective.FaultInjector, rank int) error {
	defer tr.Close()
	lossAccum := 0.0
	lossCount := 0
	evaluate := func() {
		m := tr.cfg.Task.Evaluate()
		if record {
			x := tr.Recorder().TotalTime().Seconds()
			if lossCount > 0 {
				result.TrainLoss.Add(x, lossAccum/float64(lossCount))
			}
			result.EvalLoss.Add(x, m.Loss)
			result.EvalTop1.Add(x, m.Top1)
			result.EvalTop5.Add(x, m.Top5)
			result.Final = m
			lossAccum, lossCount = 0, 0
		}
	}
	for step := 0; step < cfg.Steps; step++ {
		rec, err := tr.StepContext(ctx)
		if err != nil {
			return err
		}
		if inj != nil {
			inj.AdvanceStep(rank)
		}
		lossAccum += rec.Loss
		lossCount++
		if cfg.EvalEverySteps > 0 && (step+1)%cfg.EvalEverySteps == 0 && step+1 < cfg.Steps {
			evaluate()
		}
	}
	if cfg.FinalSync {
		if err := tr.SyncModel(); err != nil {
			// Model averaging needs every rank; when a scripted crash removed
			// one, the survivors keep their replicas instead of failing. A
			// sync failure with every rank alive is a real error even under
			// an injected (lossy/delaying) scenario.
			if inj == nil || !inj.AnyCrashed() {
				return err
			}
		}
	}
	evaluate()
	return nil
}
