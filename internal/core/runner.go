package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/trace"
)

// ChurnKind selects the membership verb a ChurnEvent executes.
type ChurnKind int

const (
	// ChurnJoin admits a fresh rank (collective.World.Join).
	ChurnJoin ChurnKind = iota
	// ChurnLeave removes the member with stable ID Victim (World.Leave).
	ChurnLeave
	// ChurnReplace excises the (typically crashed) member Victim and admits a
	// replacement in the same epoch transition (World.Replace). The controller
	// waits for the world's health view to confirm the victim down first, so
	// the event composes with a scripted crash (collective.WithFaults).
	ChurnReplace
)

// ChurnEvent scripts one membership change executed while the run trains.
// Events fire in order, each once rank 0 has completed AfterStep steps.
// Joiners admitted by ChurnJoin and ChurnReplace are built with the run's
// Build function at their dense rank, adopt the state-transferred parameters,
// and train the remaining steps starting from the survivors' handoff step, so
// their collective sequence stays matched with the survivors'.
type ChurnEvent struct {
	// AfterStep fires the event once rank 0 has completed that many steps.
	AfterStep int
	// Kind is the membership verb.
	Kind ChurnKind
	// Victim is the stable RankID to remove (ChurnLeave and ChurnReplace).
	Victim collective.RankID
	// Addr is the joiner's announced address (ChurnJoin and ChurnReplace);
	// opaque on in-process transports.
	Addr string
}

// churnWaitTimeout bounds how long a rank whose step failed on a dying epoch
// waits for the membership transition that repairs it, and how long the churn
// controller waits for the health view to confirm a victim down.
const churnWaitTimeout = 30 * time.Second

// RunConfig describes one end-to-end distributed training run executed with
// every rank as a goroutine over a collective.World (in-process by default).
type RunConfig struct {
	// Name labels the run in curves and tables (e.g. "eager-SGD-300 (solo)").
	Name string
	// Size is the number of ranks.
	Size int
	// WorldOptions configure the collective.World the run executes on
	// (transport, base port). Empty means in-process. Reducer settings are
	// chosen by Build, which constructs reducers explicitly; world-level
	// reducer defaults do not apply here.
	WorldOptions []collective.Option
	// Steps is the number of optimizer steps every rank executes.
	Steps int
	// EvalEverySteps inserts an evaluation every that many steps (0 = only a
	// final evaluation). Evaluation happens on every rank (so the load stays
	// balanced) but only rank 0's metrics are recorded.
	EvalEverySteps int
	// FinalSync averages replicas across ranks before the final evaluation
	// (recommended for eager-SGD, harmless for synch-SGD).
	FinalSync bool
	// Build constructs the rank's trainer over the given membership handle
	// (reducers minted via n.Reducer stay valid across epochs). It runs once
	// per founding rank before training starts, and once per joiner a
	// ChurnEvent admits mid-run, with the joiner's dense rank at admission.
	Build func(rank int, n *collective.Node) (*Trainer, error)
	// Churn scripts membership changes executed while the run trains — the
	// elastic path. With churn configured, a rank whose step fails on a dying
	// epoch (its peer crashed before the scripted Replace) waits for the
	// transition to commit and retries the step instead of failing the run.
	Churn []ChurnEvent
}

// RunResult aggregates the measurements of one run.
type RunResult struct {
	Name string
	// PerRank holds each rank's step recorder: the founding ranks in rank
	// order, then any joiners admitted by churn in admission order.
	PerRank []*trace.ThroughputRecorder
	// TrainLoss is rank 0's minibatch loss averaged between evaluations,
	// plotted against cumulative training time (seconds).
	TrainLoss *trace.Curve
	// EvalLoss, EvalTop1, and EvalTop5 are rank 0's held-out metrics against
	// cumulative training time (seconds).
	EvalLoss *trace.Curve
	EvalTop1 *trace.Curve
	EvalTop5 *trace.Curve
	// Final is the last evaluation on rank 0.
	Final Metrics
	// TrainingTime is rank 0's cumulative step time (evaluation excluded).
	TrainingTime time.Duration
	// Throughput is rank 0's average steps per second of training time.
	Throughput float64
	// MeanActiveProcesses is the mean NAP over rank 0's steps.
	MeanActiveProcesses float64
}

// rankRun is one training-loop goroutine's wiring and outcome.
type rankRun struct {
	node *collective.Node
	tr   *Trainer
	err  error
}

// Run executes the configured training with no cancellation chain. It is the
// compatibility entry point; code holding a context should call RunContext so
// a blocked gradient exchange can be interrupted.
func Run(cfg RunConfig) (*RunResult, error) {
	//eagervet:ignore ctxcheck -- Run is the documented no-context shim over RunContext; the root lives here by design.
	return RunContext(context.Background(), cfg)
}

// RunContext executes the configured training on a collective.World
// (in-process unless WorldOptions say otherwise) and collects the curves the
// paper's figures plot. Every rank's transport resources are released through
// World.Close when the run finishes. Canceling ctx aborts each rank's next
// blocked gradient exchange; the run then returns the cancellation error.
func RunContext(ctx context.Context, cfg RunConfig) (*RunResult, error) {
	if cfg.Size <= 0 || cfg.Steps <= 0 || cfg.Build == nil {
		return nil, fmt.Errorf("core: run config requires positive Size and Steps and a Build function")
	}
	world, err := collective.NewWorld(cfg.Size, cfg.WorldOptions...)
	if err != nil {
		return nil, fmt.Errorf("core: build world: %w", err)
	}
	defer world.Close()

	runs := make([]*rankRun, cfg.Size)
	for r := 0; r < cfg.Size; r++ {
		node := world.Node(r)
		tr, err := cfg.Build(r, node)
		if err != nil {
			return nil, fmt.Errorf("core: build trainer for rank %d: %w", r, err)
		}
		runs[r] = &rankRun{node: node, tr: tr}
		if len(cfg.Churn) > 0 {
			registerStateProvider(node, tr)
		}
	}

	result := &RunResult{
		Name:      cfg.Name,
		PerRank:   nil,
		TrainLoss: &trace.Curve{Name: cfg.Name + " train-loss"},
		EvalLoss:  &trace.Curve{Name: cfg.Name + " eval-loss"},
		EvalTop1:  &trace.Curve{Name: cfg.Name + " top1"},
		EvalTop5:  &trace.Curve{Name: cfg.Name + " top5"},
	}

	inj := world.FaultInjector()
	var progress atomic.Int64 // rank 0's completed steps, the churn clock
	var loopWG sync.WaitGroup
	for r := 0; r < cfg.Size; r++ {
		rr := runs[r]
		record := r == 0
		loopWG.Add(1)
		go func() {
			defer loopWG.Done()
			var p *atomic.Int64
			if record {
				p = &progress
			}
			rr.err = runRank(ctx, cfg, rr.tr, record, result, world, rr.node, p)
		}()
	}

	// The churn controller executes the scripted membership changes against
	// rank 0's step clock and spawns joiner training loops. It shares runsMu
	// with nobody until a joiner is admitted; joiner runs are appended there.
	runDone := make(chan struct{})
	var joinerRuns []*rankRun
	var joinersWG sync.WaitGroup
	var churnErr error
	var ctrlWG sync.WaitGroup
	if len(cfg.Churn) > 0 {
		ctrlWG.Add(1)
		go func() {
			defer ctrlWG.Done()
			joinerRuns, churnErr = runChurn(ctx, cfg, world, &progress, runDone, result, &joinersWG)
		}()
	}

	loopWG.Wait()
	close(runDone)
	ctrlWG.Wait()
	joinersWG.Wait()

	all := append(append([]*rankRun(nil), runs...), joinerRuns...)
	if churnErr != nil {
		// A failed membership change is the root cause: the rank loops'
		// errors (steps wedged on the epoch the change was meant to repair)
		// are downstream of it.
		return nil, fmt.Errorf("core: churn: %w", churnErr)
	}
	view := world.Membership()
	member := make(map[collective.RankID]bool, len(view.Members))
	for _, m := range view.Members {
		member[m.ID] = true
	}
	for i, rr := range all {
		if rr.err == nil {
			continue
		}
		if inj != nil && i < cfg.Size && inj.Crashed(i) {
			// The rank died by script (collective.WithFaults): its error is
			// the crash taking effect, not a failure of the run. The
			// survivors' results stand.
			continue
		}
		if len(cfg.Churn) > 0 && !member[rr.node.ID()] {
			// The rank was removed by a scripted Leave or Replace: its loop
			// ending in an error is the excision taking effect.
			continue
		}
		return nil, fmt.Errorf("core: rank %d: %w", i, rr.err)
	}

	for _, rr := range all {
		result.PerRank = append(result.PerRank, rr.tr.Recorder())
	}
	rec := result.PerRank[0]
	result.TrainingTime = rec.TotalTime()
	result.Throughput = rec.StepsPerSecond()
	result.MeanActiveProcesses = rec.MeanActiveProcesses()
	return result, nil
}

// registerStateProvider wires the trainer's model parameters (plus its step
// counter, appended as one trailing element) as the node's state-transfer
// source. The provider runs at the quiesced epoch boundary — the trainer
// brackets each whole step as one drain-barrier operation — so the snapshot
// is never mid-update and the handoff step is exact.
func registerStateProvider(node *collective.Node, tr *Trainer) {
	node.SetStateProvider(func() []float64 {
		params := tr.cfg.Task.Params()
		out := make([]float64, len(params)+1)
		copy(out, params)
		out[len(params)] = float64(tr.Steps())
		return out
	})
}

// runChurn executes the scripted membership changes in order, each gated on
// rank 0's completed-step clock, and spawns a training loop for every joiner.
// It stops early when the run finishes (runDone) or the context is canceled.
func runChurn(ctx context.Context, cfg RunConfig, world *collective.World, progress *atomic.Int64, runDone <-chan struct{}, result *RunResult, joinersWG *sync.WaitGroup) ([]*rankRun, error) {
	var joiners []*rankRun
	for _, ev := range cfg.Churn {
		if !awaitProgress(ctx, progress, int64(ev.AfterStep), runDone) {
			return joiners, nil
		}
		switch ev.Kind {
		case ChurnLeave:
			if err := world.Leave(ev.Victim); err != nil {
				return joiners, fmt.Errorf("leave %d after step %d: %w", ev.Victim, ev.AfterStep, err)
			}
		case ChurnJoin, ChurnReplace:
			var node *collective.Node
			var err error
			if ev.Kind == ChurnReplace {
				if !awaitPeerDown(ctx, world, ev.Victim, runDone) {
					return joiners, fmt.Errorf("replace %d after step %d: victim never confirmed down", ev.Victim, ev.AfterStep)
				}
				node, err = world.Replace(ev.Victim, ev.Addr)
			} else {
				node, err = world.Join(ev.Addr)
			}
			if err != nil {
				return joiners, fmt.Errorf("admit %q after step %d: %w", ev.Addr, ev.AfterStep, err)
			}
			rr, err := spawnJoiner(ctx, cfg, world, node, ev, result, joinersWG)
			if err != nil {
				return joiners, err
			}
			joiners = append(joiners, rr)
		default:
			return joiners, fmt.Errorf("unknown churn kind %d", ev.Kind)
		}
	}
	return joiners, nil
}

// spawnJoiner builds a trainer for a freshly admitted member — adopting the
// state-transferred parameters and handoff step — and starts its training
// loop for the remaining steps.
func spawnJoiner(ctx context.Context, cfg RunConfig, world *collective.World, node *collective.Node, ev ChurnEvent, result *RunResult, joinersWG *sync.WaitGroup) (*rankRun, error) {
	startStep := ev.AfterStep
	init := node.InitialState()
	if len(init) > 0 {
		// The last element is the handoff step the survivors' providers
		// appended (registerStateProvider); the rest is the model state.
		startStep = int(init[len(init)-1])
		init = init[:len(init)-1]
	}
	tr, err := cfg.Build(node.Rank(), node)
	if err != nil {
		return nil, fmt.Errorf("build joiner %q: %w", ev.Addr, err)
	}
	if len(init) > 0 {
		if err := tr.SetParams(init); err != nil {
			return nil, fmt.Errorf("joiner %q adopt state: %w", ev.Addr, err)
		}
	}
	tr.step = startStep
	registerStateProvider(node, tr)
	rr := &rankRun{node: node, tr: tr}
	joinersWG.Add(1)
	go func() {
		defer joinersWG.Done()
		rr.err = runRank(ctx, cfg, tr, false, result, world, node, nil)
	}()
	return rr, nil
}

// awaitProgress blocks until rank 0 has completed at least target steps.
// It reports false when the run ended or the context was canceled first.
func awaitProgress(ctx context.Context, progress *atomic.Int64, target int64, runDone <-chan struct{}) bool {
	for progress.Load() < target {
		select {
		case <-ctx.Done():
			return false
		case <-runDone:
			return false
		case <-time.After(time.Millisecond):
		}
	}
	return true
}

// awaitPeerDown blocks until the world's health view reports the victim down,
// so a Replace composes deterministically with the scripted crash it repairs.
func awaitPeerDown(ctx context.Context, world *collective.World, victim collective.RankID, runDone <-chan struct{}) bool {
	deadline := time.Now().Add(churnWaitTimeout)
	for time.Now().Before(deadline) {
		for _, p := range world.Peers() {
			if p.ID == victim && !p.Up {
				return true
			}
		}
		select {
		case <-ctx.Done():
			return false
		case <-runDone:
			return false
		case <-time.After(time.Millisecond):
		}
	}
	return false
}

// awaitNextEpoch parks a rank whose step failed on a dying epoch until the
// membership transition that repairs the world commits, then lets the caller
// retry the step. epochBefore is the epoch read before the step attempt: the
// transition's drain completes exactly when the wedged step fails, so the
// commit races the failure return — when the epoch already moved past
// epochBefore the wait is over before it starts. It returns the original
// error when no transition arrives in time, the rank itself is the scripted
// crash victim, the rank was removed from the membership (Leave/Replace took
// effect, or the world closed), or ctx is canceled.
func awaitNextEpoch(ctx context.Context, world *collective.World, node *collective.Node, stepErr error, epochBefore uint64) error {
	if errors.Is(stepErr, collective.ErrReducerClosed) {
		return stepErr // the member departed or the world is closing
	}
	// A survivor's error also wraps the crash sentinel (the peer-down cause),
	// so "am I the victim" must ask the injector about THIS rank, not match
	// the error chain. A victim that races the commit (its dense slot reads
	// clean on the fresh injector) still exits below via the membership test.
	if inj := world.FaultInjector(); inj != nil && inj.Crashed(node.Rank()) {
		return stepErr // this rank IS the scripted victim; its loop ends here
	}
	deadline := time.Now().Add(churnWaitTimeout)
	for node.Epoch() == epochBefore {
		if !stillMember(world, node) || time.Now().After(deadline) {
			return stepErr
		}
		select {
		case <-ctx.Done():
			return stepErr
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// stillMember reports whether the node belongs to the world's current epoch.
func stillMember(world *collective.World, node *collective.Node) bool {
	for _, m := range world.Membership().Members {
		if m.ID == node.ID() {
			return true
		}
	}
	return false
}

// runRank executes the training loop for one rank. Only rank 0 (record=true)
// appends to the shared result curves; ranks never write concurrently to the
// same fields because exactly one rank records. Under an injected fault
// scenario the rank advances its crash-at-step counter once per optimizer
// step, so scripted crashes fire deterministically in the rank's own step
// sequence; the injector handle is re-fetched per step because each epoch
// runs its own.
func runRank(ctx context.Context, cfg RunConfig, tr *Trainer, record bool, result *RunResult, world *collective.World, node *collective.Node, progress *atomic.Int64) error {
	defer tr.Close()
	lossAccum := 0.0
	lossCount := 0
	evaluate := func() {
		m := tr.cfg.Task.Evaluate()
		if record {
			x := tr.Recorder().TotalTime().Seconds()
			if lossCount > 0 {
				result.TrainLoss.Add(x, lossAccum/float64(lossCount))
			}
			result.EvalLoss.Add(x, m.Loss)
			result.EvalTop1.Add(x, m.Top1)
			result.EvalTop5.Add(x, m.Top5)
			result.Final = m
			lossAccum, lossCount = 0, 0
		}
	}
	for tr.Steps() < cfg.Steps {
		epochBefore := node.Epoch()
		rec, err := tr.StepContext(ctx)
		if err != nil {
			if len(cfg.Churn) == 0 {
				return err
			}
			// Elastic run: the step failed on a dying epoch. Wait for the
			// scripted transition to commit, then retry the step — the
			// trainer's counter only advances on success, so the retry
			// recomputes the same step over the repaired world.
			if waitErr := awaitNextEpoch(ctx, world, node, err, epochBefore); waitErr != nil {
				return waitErr
			}
			continue
		}
		step := rec.Step
		if inj := world.FaultInjector(); inj != nil {
			inj.AdvanceStep(node.Rank())
		}
		if progress != nil {
			progress.Store(int64(tr.Steps()))
		}
		lossAccum += rec.Loss
		lossCount++
		if cfg.EvalEverySteps > 0 && (step+1)%cfg.EvalEverySteps == 0 && step+1 < cfg.Steps {
			evaluate()
		}
	}
	if cfg.FinalSync {
		if err := tr.SyncModel(); err != nil {
			// Model averaging needs every rank; when a scripted crash removed
			// one (without a replacing churn event), the survivors keep their
			// replicas instead of failing. On elastic runs churn repairs the
			// membership, so a sync failure there — like one with every rank
			// alive — is a real error even under an injected scenario.
			inj := world.FaultInjector()
			tolerate := len(cfg.Churn) == 0 && inj != nil && inj.AnyCrashed()
			if !tolerate {
				return err
			}
		}
	}
	evaluate()
	return nil
}
