package nn

import (
	"math"
	"math/rand"
	"testing"

	"eagersgd/internal/tensor"
)

func randomSequence(rng *rand.Rand, length, dim int) []tensor.Vector {
	seq := make([]tensor.Vector, length)
	for i := range seq {
		seq[i] = tensor.NewVector(dim)
		seq[i].Randomize(rng, 1)
	}
	return seq
}

func TestLSTMNumParams(t *testing.T) {
	m := NewLSTMClassifier(3, 5, 2)
	want := 4*5*3 + 4*5*5 + 4*5 + 2*5 + 2
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
	if len(m.Params()) != want || len(m.Grads()) != want {
		t.Fatal("flat buffers sized incorrectly")
	}
}

func TestLSTMInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLSTMClassifier(0, 1, 1)
}

func TestLSTMInitForgetBias(t *testing.T) {
	m := NewLSTMClassifier(2, 3, 2)
	m.Init(rand.New(rand.NewSource(1)))
	// The forget-gate bias block (indices [H, 2H)) must be 1.
	h := m.HiddenSize
	for j := 0; j < h; j++ {
		if m.bias[j] != 0 {
			t.Fatalf("input-gate bias %d = %v, want 0", j, m.bias[j])
		}
		if m.bias[h+j] != 1 {
			t.Fatalf("forget-gate bias %d = %v, want 1", j, m.bias[h+j])
		}
	}
}

func TestLSTMForwardDeterministicAndFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewLSTMClassifier(4, 6, 3)
	m.Init(rng)
	seq := randomSequence(rng, 12, 4)
	a := m.Forward(seq)
	b := m.Forward(seq)
	if !a.Equal(b) {
		t.Fatal("Forward is not deterministic")
	}
	if !a.IsFinite() {
		t.Fatalf("non-finite logits %v", a)
	}
	if len(a) != 3 {
		t.Fatalf("logit length %d", len(a))
	}
}

func TestLSTMEmptySequencePanics(t *testing.T) {
	m := NewLSTMClassifier(2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.AccumulateGradient(nil, 0)
}

func TestLSTMGradientMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewLSTMClassifier(3, 4, 3)
	m.Init(rng)
	seq := randomSequence(rng, 5, 3)
	label := 2

	m.ZeroGrads()
	m.AccumulateGradient(seq, label)
	analytic := m.Grads().Clone()

	var xent SoftmaxCrossEntropy
	target := OneHot(label, 3)
	numeric := numericalGradient(m.Params(), func() float64 {
		return xent.Loss(m.Forward(seq), target)
	})

	for i := range analytic {
		diff := math.Abs(analytic[i] - numeric[i])
		scale := math.Max(1e-6, math.Abs(analytic[i])+math.Abs(numeric[i]))
		if diff/scale > 1e-3 {
			t.Fatalf("gradient mismatch at %d: analytic %v numeric %v", i, analytic[i], numeric[i])
		}
	}
}

func TestLSTMBatchGradientAverages(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewLSTMClassifier(2, 3, 2)
	m.Init(rng)
	seqA := randomSequence(rng, 3, 2)
	seqB := randomSequence(rng, 6, 2)

	m.ZeroGrads()
	lossA := m.AccumulateGradient(seqA, 0)
	gradA := m.Grads().Clone()
	m.ZeroGrads()
	lossB := m.AccumulateGradient(seqB, 1)
	gradB := m.Grads().Clone()

	batchLoss := m.BatchGradient([][]tensor.Vector{seqA, seqB}, []int{0, 1})
	if math.Abs(batchLoss-(lossA+lossB)/2) > 1e-9 {
		t.Fatalf("batch loss %v, want %v", batchLoss, (lossA+lossB)/2)
	}
	want := gradA.Clone()
	want.Add(gradB)
	want.Scale(0.5)
	if !m.Grads().AllClose(want, 1e-9) {
		t.Fatal("batch gradient is not the average of per-sample gradients")
	}
}

func TestLSTMBatchValidation(t *testing.T) {
	m := NewLSTMClassifier(2, 2, 2)
	for _, fn := range []func(){
		func() { m.BatchGradient(nil, nil) },
		func() { m.BatchGradient([][]tensor.Vector{randomSequence(rand.New(rand.NewSource(1)), 2, 2)}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLSTMLearnsSequenceSumSign(t *testing.T) {
	// Classify whether the running sum of a 1-d sequence is positive — a task
	// that genuinely needs the recurrent state.
	rng := rand.New(rand.NewSource(13))
	m := NewLSTMClassifier(1, 8, 2)
	m.Init(rng)

	makeSample := func() ([]tensor.Vector, int) {
		length := 3 + rng.Intn(6)
		seq := make([]tensor.Vector, length)
		sum := 0.0
		for i := range seq {
			v := rng.NormFloat64()
			seq[i] = tensor.Vector{v}
			sum += v
		}
		label := 0
		if sum > 0 {
			label = 1
		}
		return seq, label
	}

	const lr = 0.05
	for step := 0; step < 600; step++ {
		seqs := make([][]tensor.Vector, 16)
		labels := make([]int, 16)
		for i := range seqs {
			seqs[i], labels[i] = makeSample()
		}
		m.BatchGradient(seqs, labels)
		m.Params().Axpy(-lr, m.Grads())
	}

	correct := 0
	const eval = 200
	for i := 0; i < eval; i++ {
		seq, label := makeSample()
		if m.Predict(seq) == label {
			correct++
		}
	}
	acc := float64(correct) / eval
	if acc < 0.8 {
		t.Fatalf("LSTM failed to learn sum-sign task: accuracy %.2f", acc)
	}
}

func TestLSTMSegmentsTileFlatVector(t *testing.T) {
	m := NewLSTMClassifier(6, 9, 4)
	segs := m.Segments()
	if len(segs) != 2 {
		t.Fatalf("want recurrent + read-out segments, got %d", len(segs))
	}
	if segs[0].Offset != 0 || segs[0].Len+segs[1].Len != m.NumParams() || segs[1].Offset != segs[0].Len {
		t.Fatalf("segments %+v do not tile [0,%d)", segs, m.NumParams())
	}
}

func TestLSTMBatchGradientBucketsBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	build := func() *LSTMClassifier {
		m := NewLSTMClassifier(4, 6, 3)
		m.Init(rand.New(rand.NewSource(23)))
		return m
	}
	plain, bucketed := build(), build()
	for _, batch := range []int{1, 3} {
		seqs := make([][]tensor.Vector, batch)
		labels := make([]int, batch)
		for i := range seqs {
			length := 2 + rng.Intn(5)
			seqs[i] = make([]tensor.Vector, length)
			for tstep := range seqs[i] {
				seqs[i][tstep] = tensor.NewVector(4)
				seqs[i][tstep].Randomize(rng, 1)
			}
			labels[i] = rng.Intn(3)
		}
		lossPlain := plain.BatchGradient(seqs, labels)
		var order []int
		lossBucketed := bucketed.BatchGradientBuckets(seqs, labels, func(s Segment) {
			order = append(order, s.Offset)
		})
		if lossPlain != lossBucketed {
			t.Fatalf("batch %d: loss %v != %v", batch, lossPlain, lossBucketed)
		}
		for i := range plain.Grads() {
			if plain.Grads()[i] != bucketed.Grads()[i] {
				t.Fatalf("batch %d: gradient element %d differs: %v != %v (must be bit-for-bit)",
					batch, i, plain.Grads()[i], bucketed.Grads()[i])
			}
		}
		if len(order) != 2 || order[0] <= order[1] {
			t.Fatalf("batch %d: ready offsets %v, want read-out (tail) before recurrent (head)", batch, order)
		}
	}
}
