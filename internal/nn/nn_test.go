package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eagersgd/internal/tensor"
)

func TestDenseShapeAndParams(t *testing.T) {
	d := NewDense(3, 2)
	if d.NumParams() != 8 {
		t.Fatalf("NumParams = %d, want 8", d.NumParams())
	}
	if d.OutputSize() != 2 {
		t.Fatalf("OutputSize = %d", d.OutputSize())
	}
}

func TestDenseInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(0, 3)
}

func TestDenseForwardKnownValues(t *testing.T) {
	d := NewDense(2, 2)
	params := tensor.Vector{1, 2, 3, 4, 10, 20} // W=[[1,2],[3,4]], b=[10,20]
	grads := tensor.NewVector(6)
	d.Bind(params, grads)
	out := d.Forward(tensor.Vector{1, 1})
	if !out.Equal(tensor.Vector{13, 27}) {
		t.Fatalf("Forward = %v", out)
	}
}

func TestDenseBackwardAccumulates(t *testing.T) {
	d := NewDense(2, 1)
	params := tensor.Vector{2, 3, 0}
	grads := tensor.NewVector(3)
	d.Bind(params, grads)
	d.Forward(tensor.Vector{5, 7})
	dIn := d.Backward(tensor.Vector{1})
	// dW = dOut * x^T = [5, 7]; db = 1; dx = W^T*dOut = [2, 3].
	if !grads.Equal(tensor.Vector{5, 7, 1}) {
		t.Fatalf("grads = %v", grads)
	}
	if !dIn.Equal(tensor.Vector{2, 3}) {
		t.Fatalf("dIn = %v", dIn)
	}
	// A second backward must accumulate, not overwrite.
	d.Forward(tensor.Vector{5, 7})
	d.Backward(tensor.Vector{1})
	if !grads.Equal(tensor.Vector{10, 14, 2}) {
		t.Fatalf("grads after second backward = %v", grads)
	}
}

func TestActivations(t *testing.T) {
	relu := NewReLU(3)
	out := relu.Forward(tensor.Vector{-1, 0, 2})
	if !out.Equal(tensor.Vector{0, 0, 2}) {
		t.Fatalf("relu forward = %v", out)
	}
	dIn := relu.Backward(tensor.Vector{1, 1, 1})
	if !dIn.Equal(tensor.Vector{0, 0, 1}) {
		t.Fatalf("relu backward = %v", dIn)
	}

	tanhL := NewTanh(1)
	y := tanhL.Forward(tensor.Vector{0.5})
	if math.Abs(y[0]-math.Tanh(0.5)) > 1e-12 {
		t.Fatalf("tanh forward = %v", y)
	}
	g := tanhL.Backward(tensor.Vector{1})
	if math.Abs(g[0]-(1-y[0]*y[0])) > 1e-12 {
		t.Fatalf("tanh backward = %v", g)
	}

	sig := NewSigmoid(1)
	y = sig.Forward(tensor.Vector{0})
	if math.Abs(y[0]-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", y)
	}
	if sig.NumParams() != 0 || tanhL.NumParams() != 0 || relu.NumParams() != 0 {
		t.Fatal("activations must have no parameters")
	}
}

func TestMSELoss(t *testing.T) {
	var mse MSE
	if mse.Name() == "" {
		t.Fatal("empty loss name")
	}
	l := mse.Loss(tensor.Vector{1, 2}, tensor.Vector{0, 0})
	if math.Abs(l-2.5) > 1e-12 {
		t.Fatalf("MSE loss = %v, want 2.5", l)
	}
	g := mse.Grad(tensor.Vector{1, 2}, tensor.Vector{0, 1})
	if !g.Equal(tensor.Vector{1, 1}) {
		t.Fatalf("MSE grad = %v", g)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make(tensor.Vector, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			logits = append(logits, math.Mod(x, 50))
		}
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	var xent SoftmaxCrossEntropy
	if xent.Name() == "" {
		t.Fatal("empty loss name")
	}
	// Uniform logits over 4 classes: loss = ln(4).
	l := xent.Loss(tensor.Vector{1, 1, 1, 1}, OneHot(2, 4))
	if math.Abs(l-math.Log(4)) > 1e-9 {
		t.Fatalf("xent loss = %v, want ln4", l)
	}
	g := xent.Grad(tensor.Vector{1, 1, 1, 1}, OneHot(2, 4))
	if math.Abs(g[2]-(0.25-1)) > 1e-9 || math.Abs(g[0]-0.25) > 1e-9 {
		t.Fatalf("xent grad = %v", g)
	}
}

func TestOneHotPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneHot(5, 3)
}

func TestNetworkConstruction(t *testing.T) {
	net := NewNetwork(MSE{}, NewDense(4, 8), NewReLU(8), NewDense(8, 2))
	want := 4*8 + 8 + 8*2 + 2
	if net.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", net.NumParams(), want)
	}
	if len(net.Params()) != want || len(net.Grads()) != want {
		t.Fatal("flat buffers have wrong length")
	}
	net.Init(rand.New(rand.NewSource(1)))
	if net.Params().Norm2() == 0 {
		t.Fatal("Init left all parameters zero")
	}
	if net.Loss().Name() != "mse" {
		t.Fatalf("Loss() = %v", net.Loss().Name())
	}
}

func TestNetworkParamsAliasLayers(t *testing.T) {
	net := NewNetwork(MSE{}, NewDense(1, 1))
	net.Params()[0] = 3 // weight
	net.Params()[1] = 1 // bias
	out := net.Forward(tensor.Vector{2})
	if out[0] != 7 {
		t.Fatalf("Forward = %v, want 7 (params not aliased)", out)
	}
}

func TestBatchGradientAveragesAndZeroes(t *testing.T) {
	net := NewNetwork(MSE{}, NewDense(1, 1))
	net.Params()[0] = 1
	net.Params()[1] = 0
	// Pollute the gradient buffer; BatchGradient must reset it.
	net.Grads().Fill(42)
	xs := []tensor.Vector{{1}, {3}}
	ys := []tensor.Vector{{0}, {0}}
	loss := net.BatchGradient(xs, ys)
	// Per-sample losses: 0.5*1, 0.5*9 => mean 2.5.
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("batch loss = %v", loss)
	}
	// dW per sample: (pred-target)*x = 1*1=1 and 3*3=9 => mean 5; db mean 2.
	if math.Abs(net.Grads()[0]-5) > 1e-12 || math.Abs(net.Grads()[1]-2) > 1e-12 {
		t.Fatalf("batch grads = %v", net.Grads())
	}
}

func TestBatchGradientValidation(t *testing.T) {
	net := NewNetwork(MSE{}, NewDense(1, 1))
	for _, fn := range []func(){
		func() { net.BatchGradient(nil, nil) },
		func() { net.BatchGradient([]tensor.Vector{{1}}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// numericalGradient estimates dLoss/dParams with central differences.
func numericalGradient(params tensor.Vector, lossFn func() float64) tensor.Vector {
	const eps = 1e-5
	grad := tensor.NewVector(len(params))
	for i := range params {
		orig := params[i]
		params[i] = orig + eps
		up := lossFn()
		params[i] = orig - eps
		down := lossFn()
		params[i] = orig
		grad[i] = (up - down) / (2 * eps)
	}
	return grad
}

func TestNetworkGradientMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(SoftmaxCrossEntropy{}, NewDense(5, 7), NewTanh(7), NewDense(7, 3))
	net.Init(rng)
	x := tensor.NewVector(5)
	x.Randomize(rng, 1)
	target := OneHot(1, 3)

	net.ZeroGrads()
	net.AccumulateGradient(x, target)
	analytic := net.Grads().Clone()
	numeric := numericalGradient(net.Params(), func() float64 { return net.LossValue(x, target) })

	for i := range analytic {
		diff := math.Abs(analytic[i] - numeric[i])
		scale := math.Max(1e-6, math.Abs(analytic[i])+math.Abs(numeric[i]))
		if diff/scale > 1e-4 {
			t.Fatalf("gradient mismatch at %d: analytic %v numeric %v", i, analytic[i], numeric[i])
		}
	}
}

func TestNetworkGradientMatchesNumericalMSEReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork(MSE{}, NewDense(4, 6), NewReLU(6), NewDense(6, 2), NewSigmoid(2))
	net.Init(rng)
	x := tensor.NewVector(4)
	x.Randomize(rng, 1)
	target := tensor.Vector{0.3, 0.9}

	net.ZeroGrads()
	net.AccumulateGradient(x, target)
	analytic := net.Grads().Clone()
	numeric := numericalGradient(net.Params(), func() float64 { return net.LossValue(x, target) })

	for i := range analytic {
		diff := math.Abs(analytic[i] - numeric[i])
		scale := math.Max(1e-6, math.Abs(analytic[i])+math.Abs(numeric[i]))
		if diff/scale > 1e-3 {
			t.Fatalf("gradient mismatch at %d: analytic %v numeric %v", i, analytic[i], numeric[i])
		}
	}
}

func TestNetworkLearnsLinearRegression(t *testing.T) {
	// One dense layer must recover a linear relationship with plain SGD.
	rng := rand.New(rand.NewSource(11))
	const dim = 8
	truth := tensor.NewVector(dim)
	truth.Randomize(rng, 1)
	net := NewNetwork(MSE{}, NewDense(dim, 1))
	net.Init(rng)

	const lr = 0.1
	for step := 0; step < 400; step++ {
		xs := make([]tensor.Vector, 16)
		ys := make([]tensor.Vector, 16)
		for i := range xs {
			x := tensor.NewVector(dim)
			x.Randomize(rng, 1)
			xs[i] = x
			ys[i] = tensor.Vector{truth.Dot(x)}
		}
		net.BatchGradient(xs, ys)
		net.Params().Axpy(-lr, net.Grads())
	}
	// Evaluate on fresh data.
	var worst float64
	for i := 0; i < 50; i++ {
		x := tensor.NewVector(dim)
		x.Randomize(rng, 1)
		pred := net.Forward(x)[0]
		if err := math.Abs(pred - truth.Dot(x)); err > worst {
			worst = err
		}
	}
	if worst > 0.05 {
		t.Fatalf("regression did not converge: worst error %v", worst)
	}
}

func TestNetworkLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(SoftmaxCrossEntropy{}, NewDense(2, 8), NewTanh(8), NewDense(8, 2))
	net.Init(rng)
	xs := []tensor.Vector{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []int{0, 1, 1, 0}
	targets := make([]tensor.Vector, 4)
	for i, l := range labels {
		targets[i] = OneHot(l, 2)
	}
	for step := 0; step < 2000; step++ {
		net.BatchGradient(xs, targets)
		net.Params().Axpy(-0.5, net.Grads())
	}
	for i, x := range xs {
		if net.Predict(x) != labels[i] {
			t.Fatalf("XOR not learned: input %v predicted %d, want %d", x, net.Predict(x), labels[i])
		}
	}
}

func TestNetworkSegmentsTileFlatVector(t *testing.T) {
	net := NewNetwork(SoftmaxCrossEntropy{}, NewDense(6, 16), NewReLU(16), NewDense(16, 8), NewTanh(8), NewDense(8, 3))
	segs := net.Segments()
	if len(segs) != 3 {
		t.Fatalf("want one segment per parameterized layer (3), got %d", len(segs))
	}
	off := 0
	for _, s := range segs {
		if s.Offset != off {
			t.Fatalf("segment %q offset %d, want %d (segments must tile the flat vector)", s.Name, s.Offset, off)
		}
		if s.Len <= 0 {
			t.Fatalf("segment %q has non-positive length %d", s.Name, s.Len)
		}
		off += s.Len
	}
	if off != net.NumParams() {
		t.Fatalf("segments cover %d elements, want %d", off, net.NumParams())
	}
}

func TestNetworkBatchGradientBucketsBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	build := func() *Network {
		net := NewNetwork(MSE{}, NewDense(5, 12), NewTanh(12), NewDense(12, 7), NewReLU(7), NewDense(7, 2))
		net.Init(rand.New(rand.NewSource(99)))
		return net
	}
	plain, bucketed := build(), build()
	for _, batch := range []int{1, 4} {
		xs := make([]tensor.Vector, batch)
		ys := make([]tensor.Vector, batch)
		for i := range xs {
			xs[i] = tensor.NewVector(5)
			xs[i].Randomize(rng, 1)
			ys[i] = tensor.NewVector(2)
			ys[i].Randomize(rng, 1)
		}
		lossPlain := plain.BatchGradient(xs, ys)
		var order []int
		lossBucketed := bucketed.BatchGradientBuckets(xs, ys, func(s Segment) {
			order = append(order, s.Offset)
		})
		if lossPlain != lossBucketed {
			t.Fatalf("batch %d: loss %v != %v", batch, lossPlain, lossBucketed)
		}
		for i := range plain.Grads() {
			if plain.Grads()[i] != bucketed.Grads()[i] {
				t.Fatalf("batch %d: gradient element %d differs: %v != %v (must be bit-for-bit)",
					batch, i, plain.Grads()[i], bucketed.Grads()[i])
			}
		}
		if len(order) != 3 {
			t.Fatalf("batch %d: %d ready notifications, want 3", batch, len(order))
		}
		for i := 1; i < len(order); i++ {
			if order[i] >= order[i-1] {
				t.Fatalf("batch %d: ready offsets %v not in reverse layer order", batch, order)
			}
		}
	}
}
