package nn

import (
	"fmt"
	"math"
	"math/rand"

	"eagersgd/internal/tensor"
)

// LSTMClassifier is a single-layer LSTM followed by a dense softmax read-out,
// matching the video-classification model of §2.1/§6.3: a sequence of
// per-frame feature vectors is consumed one step at a time and the final
// hidden state is classified. The computational cost of one sample is
// proportional to its sequence length, which is exactly the source of the
// inherent load imbalance the paper studies.
//
// Gate layout within the stacked weight matrices is [input, forget, cell,
// output], each block of HiddenSize rows.
type LSTMClassifier struct {
	InputSize  int
	HiddenSize int
	NumClasses int

	params tensor.Vector
	grads  tensor.Vector

	// Parameter views.
	wx   *tensor.Matrix // (4H x I) input-to-hidden
	wh   *tensor.Matrix // (4H x H) hidden-to-hidden
	bias tensor.Vector  // (4H)
	wout *tensor.Matrix // (C x H) read-out
	bout tensor.Vector  // (C)

	// Gradient views.
	gwx   *tensor.Matrix
	gwh   *tensor.Matrix
	gbias tensor.Vector
	gwout *tensor.Matrix
	gbout tensor.Vector
}

// NewLSTMClassifier allocates an LSTM classifier with the given feature size,
// hidden width, and class count.
func NewLSTMClassifier(inputSize, hiddenSize, numClasses int) *LSTMClassifier {
	if inputSize <= 0 || hiddenSize <= 0 || numClasses <= 0 {
		panic(fmt.Sprintf("nn: invalid LSTM shape in=%d hidden=%d classes=%d", inputSize, hiddenSize, numClasses))
	}
	m := &LSTMClassifier{InputSize: inputSize, HiddenSize: hiddenSize, NumClasses: numClasses}
	total := m.NumParams()
	m.params = tensor.NewVector(total)
	m.grads = tensor.NewVector(total)
	m.bind()
	return m
}

// NumParams returns the total number of parameters.
func (m *LSTMClassifier) NumParams() int {
	h, i, c := m.HiddenSize, m.InputSize, m.NumClasses
	return 4*h*i + 4*h*h + 4*h + c*h + c
}

func (m *LSTMClassifier) bind() {
	h, i, c := m.HiddenSize, m.InputSize, m.NumClasses
	off := 0
	next := func(n int) tensor.Vector {
		v := m.params[off : off+n]
		off += n
		return v
	}
	m.wx, _ = tensor.MatrixFromData(4*h, i, next(4*h*i))
	m.wh, _ = tensor.MatrixFromData(4*h, h, next(4*h*h))
	m.bias = next(4 * h)
	m.wout, _ = tensor.MatrixFromData(c, h, next(c*h))
	m.bout = next(c)

	off = 0
	nextG := func(n int) tensor.Vector {
		v := m.grads[off : off+n]
		off += n
		return v
	}
	m.gwx, _ = tensor.MatrixFromData(4*h, i, nextG(4*h*i))
	m.gwh, _ = tensor.MatrixFromData(4*h, h, nextG(4*h*h))
	m.gbias = nextG(4 * h)
	m.gwout, _ = tensor.MatrixFromData(c, h, nextG(c*h))
	m.gbout = nextG(c)
}

// Init applies Xavier initialization to the weight matrices, zeroes the
// biases, and sets the forget-gate bias to one (the standard trick that keeps
// memory flowing early in training).
func (m *LSTMClassifier) Init(rng *rand.Rand) {
	m.wx.XavierInit(rng)
	m.wh.XavierInit(rng)
	m.bias.Zero()
	h := m.HiddenSize
	for j := h; j < 2*h; j++ { // forget gate block
		m.bias[j] = 1
	}
	m.wout.XavierInit(rng)
	m.bout.Zero()
}

// Params returns the flat parameter vector.
func (m *LSTMClassifier) Params() tensor.Vector { return m.params }

// Grads returns the flat gradient vector.
func (m *LSTMClassifier) Grads() tensor.Vector { return m.grads }

// ZeroGrads clears the accumulated gradients.
func (m *LSTMClassifier) ZeroGrads() { m.grads.Zero() }

// stepCache holds the per-time-step values needed by backpropagation through
// time.
type stepCache struct {
	x          tensor.Vector
	hPrev      tensor.Vector
	cPrev      tensor.Vector
	i, f, g, o tensor.Vector // gate activations
	c, h       tensor.Vector
}

// forwardSequence runs the LSTM over the sequence and returns the logits plus
// the per-step caches (nil caches if withCache is false).
func (m *LSTMClassifier) forwardSequence(seq []tensor.Vector, withCache bool) (tensor.Vector, []stepCache) {
	h := m.HiddenSize
	hState := tensor.NewVector(h)
	cState := tensor.NewVector(h)
	var caches []stepCache
	if withCache {
		caches = make([]stepCache, 0, len(seq))
	}
	pre := tensor.NewVector(4 * h)
	preH := tensor.NewVector(4 * h)
	for _, x := range seq {
		if len(x) != m.InputSize {
			panic(fmt.Sprintf("nn: LSTM input size %d, want %d", len(x), m.InputSize))
		}
		m.wx.MulVec(x, pre)
		m.wh.MulVec(hState, preH)
		pre.Add(preH)
		pre.Add(m.bias)

		ig := tensor.NewVector(h)
		fg := tensor.NewVector(h)
		gg := tensor.NewVector(h)
		og := tensor.NewVector(h)
		for j := 0; j < h; j++ {
			ig[j] = sigmoid(pre[j])
			fg[j] = sigmoid(pre[h+j])
			gg[j] = tanh(pre[2*h+j])
			og[j] = sigmoid(pre[3*h+j])
		}
		newC := tensor.NewVector(h)
		newH := tensor.NewVector(h)
		for j := 0; j < h; j++ {
			newC[j] = fg[j]*cState[j] + ig[j]*gg[j]
			newH[j] = og[j] * tanh(newC[j])
		}
		if withCache {
			caches = append(caches, stepCache{
				x: x, hPrev: hState.Clone(), cPrev: cState.Clone(),
				i: ig, f: fg, g: gg, o: og, c: newC.Clone(), h: newH.Clone(),
			})
		}
		hState = newH
		cState = newC
	}
	logits := tensor.NewVector(m.NumClasses)
	m.wout.MulVec(hState, logits)
	logits.Add(m.bout)
	return logits, caches
}

// Forward returns the class logits for the sequence.
func (m *LSTMClassifier) Forward(seq []tensor.Vector) tensor.Vector {
	logits, _ := m.forwardSequence(seq, false)
	return logits
}

// Predict returns the most likely class for the sequence.
func (m *LSTMClassifier) Predict(seq []tensor.Vector) int {
	return m.Forward(seq).ArgMax()
}

// recurrentParams returns the element count of the recurrent block (wx, wh,
// bias) at the head of the flat vectors; the dense read-out (wout, bout)
// occupies the tail.
func (m *LSTMClassifier) recurrentParams() int {
	h, i := m.HiddenSize, m.InputSize
	return 4*h*i + 4*h*h + 4*h
}

// Segments returns the two layer-aligned segments of the flat vectors: the
// recurrent block (wx, wh, bias) and the dense read-out (wout, bout). During
// backpropagation through time the read-out's gradient settles first and the
// recurrent block's last, so a bucketed exchange sees the segments become
// ready in reverse layer order.
func (m *LSTMClassifier) Segments() []Segment {
	r := m.recurrentParams()
	return []Segment{
		{Name: "0:lstm", Offset: 0, Len: r},
		{Name: "1:readout", Offset: r, Len: m.NumParams() - r},
	}
}

// AccumulateGradient runs forward and full backpropagation through time for
// one labelled sequence, accumulating gradients, and returns the sample's
// cross-entropy loss.
func (m *LSTMClassifier) AccumulateGradient(seq []tensor.Vector, label int) float64 {
	return m.accumulateGradient(seq, label, nil)
}

// accumulateGradient is AccumulateGradient with an optional hook invoked
// right after the read-out gradients (gwout, gbout) have been accumulated —
// the point at which the read-out segment is final for the sample while the
// BPTT loop over the recurrent block is still to come.
func (m *LSTMClassifier) accumulateGradient(seq []tensor.Vector, label int, afterReadout func()) float64 {
	if len(seq) == 0 {
		panic("nn: empty sequence")
	}
	h := m.HiddenSize
	logits, caches := m.forwardSequence(seq, true)
	target := OneHot(label, m.NumClasses)
	var xent SoftmaxCrossEntropy
	loss := xent.Loss(logits, target)
	dLogits := xent.Grad(logits, target)

	last := caches[len(caches)-1]
	m.gwout.AddOuter(1, dLogits, last.h)
	m.gbout.Add(dLogits)
	if afterReadout != nil {
		afterReadout()
	}

	dh := tensor.NewVector(h)
	m.wout.MulVecT(dLogits, dh)
	dc := tensor.NewVector(h)

	dPre := tensor.NewVector(4 * h)
	scratch := tensor.NewVector(h)
	for t := len(caches) - 1; t >= 0; t-- {
		cc := caches[t]
		for j := 0; j < h; j++ {
			tc := tanh(cc.c[j])
			dcj := dc[j] + dh[j]*cc.o[j]*(1-tc*tc)
			di := dcj * cc.g[j] * cc.i[j] * (1 - cc.i[j])
			df := dcj * cc.cPrev[j] * cc.f[j] * (1 - cc.f[j])
			dg := dcj * cc.i[j] * (1 - cc.g[j]*cc.g[j])
			do := dh[j] * tc * cc.o[j] * (1 - cc.o[j])
			dPre[j] = di
			dPre[h+j] = df
			dPre[2*h+j] = dg
			dPre[3*h+j] = do
			dc[j] = dcj * cc.f[j]
		}
		m.gwx.AddOuter(1, dPre, cc.x)
		m.gwh.AddOuter(1, dPre, cc.hPrev)
		m.gbias.Add(dPre)
		m.wh.MulVecT(dPre, scratch)
		dh.CopyFrom(scratch)
	}
	return loss
}

// BatchGradient zeroes the gradients, accumulates over the labelled
// sequences, scales by the batch size, and returns the mean loss.
func (m *LSTMClassifier) BatchGradient(seqs [][]tensor.Vector, labels []int) float64 {
	if len(seqs) != len(labels) {
		panic(fmt.Sprintf("nn: batch size mismatch %d sequences vs %d labels", len(seqs), len(labels)))
	}
	if len(seqs) == 0 {
		panic("nn: empty batch")
	}
	m.ZeroGrads()
	var total float64
	for i, seq := range seqs {
		total += m.AccumulateGradient(seq, labels[i])
	}
	inv := 1 / float64(len(seqs))
	m.grads.Scale(inv)
	return total * inv
}

// BatchGradientBuckets computes exactly the gradients of BatchGradient (same
// accumulation order, same element-wise scaling — bit-for-bit identical) but
// announces each segment through ready as soon as it is final during the
// final sequence's backpropagation: the read-out segment right after its
// gradient settles, the recurrent segment once the BPTT loop finishes. Each
// segment is already scaled by the batch size when its notification fires. A
// nil ready degrades to BatchGradient.
func (m *LSTMClassifier) BatchGradientBuckets(seqs [][]tensor.Vector, labels []int, ready func(Segment)) float64 {
	if len(seqs) != len(labels) {
		panic(fmt.Sprintf("nn: batch size mismatch %d sequences vs %d labels", len(seqs), len(labels)))
	}
	if len(seqs) == 0 {
		panic("nn: empty batch")
	}
	m.ZeroGrads()
	var total float64
	last := len(seqs) - 1
	for i := 0; i < last; i++ {
		total += m.AccumulateGradient(seqs[i], labels[i])
	}
	inv := 1 / float64(len(seqs))
	segs := m.Segments()
	total += m.accumulateGradient(seqs[last], labels[last], func() {
		seg := segs[1] // read-out: final before the BPTT loop runs
		m.grads[seg.Offset : seg.Offset+seg.Len].Scale(inv)
		if ready != nil {
			ready(seg)
		}
	})
	seg := segs[0] // recurrent block: final after the full BPTT loop
	m.grads[seg.Offset : seg.Offset+seg.Len].Scale(inv)
	if ready != nil {
		ready(seg)
	}
	return total * inv
}

func tanh(x float64) float64 { return math.Tanh(x) }
