// Package nn is the minimal neural-network substrate the training
// experiments run on: dense layers, element-wise activations, classification
// and regression losses, a feed-forward Network container, and an LSTM
// sequence classifier (lstm.go) for the variable-length video workload.
//
// Every model keeps its parameters and gradients in single flat
// tensor.Vector buffers. That mirrors how the paper's systems exchange
// gradients (one fused allreduce over the flattened model) and lets the
// distributed trainers in internal/core hand Grads() directly to a collective
// without any marshalling.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"eagersgd/internal/tensor"
)

// Layer is one stage of a feed-forward network. A layer binds views into the
// network's flat parameter and gradient vectors, then transforms activations
// forward and gradients backward.
type Layer interface {
	// NumParams returns how many scalar parameters the layer owns.
	NumParams() int
	// Bind hands the layer its views of the network's flat parameter and
	// gradient vectors. Both have length NumParams().
	Bind(params, grads tensor.Vector)
	// Init initializes the bound parameters.
	Init(rng *rand.Rand)
	// OutputSize returns the length of the activation vector the layer
	// produces for an input of the configured size.
	OutputSize() int
	// Forward computes the layer output for one sample.
	Forward(x tensor.Vector) tensor.Vector
	// Backward consumes dL/d(output), accumulates parameter gradients into
	// the bound gradient view, and returns dL/d(input). It must be called
	// immediately after the Forward for the same sample.
	Backward(dOut tensor.Vector) tensor.Vector
}

// Dense is a fully connected layer: y = W*x + b.
type Dense struct {
	In, Out int

	w *tensor.Matrix
	b tensor.Vector

	gw *tensor.Matrix
	gb tensor.Vector

	lastIn tensor.Vector
}

// NewDense creates a fully connected layer with the given fan-in and fan-out.
func NewDense(in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %dx%d", out, in))
	}
	return &Dense{In: in, Out: out}
}

// NumParams returns Out*In weights plus Out biases.
func (d *Dense) NumParams() int { return d.Out*d.In + d.Out }

// OutputSize returns the fan-out.
func (d *Dense) OutputSize() int { return d.Out }

// Bind attaches parameter and gradient views.
func (d *Dense) Bind(params, grads tensor.Vector) {
	if len(params) != d.NumParams() || len(grads) != d.NumParams() {
		panic(fmt.Sprintf("nn: dense bind size %d/%d, want %d", len(params), len(grads), d.NumParams()))
	}
	nw := d.Out * d.In
	d.w, _ = tensor.MatrixFromData(d.Out, d.In, params[:nw])
	d.b = params[nw:]
	d.gw, _ = tensor.MatrixFromData(d.Out, d.In, grads[:nw])
	d.gb = grads[nw:]
}

// Init applies Xavier initialization to the weights and zeros the biases.
func (d *Dense) Init(rng *rand.Rand) {
	d.w.XavierInit(rng)
	d.b.Zero()
}

// Forward computes W*x + b.
func (d *Dense) Forward(x tensor.Vector) tensor.Vector {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense forward input %d, want %d", len(x), d.In))
	}
	d.lastIn = x.Clone()
	out := tensor.NewVector(d.Out)
	d.w.MulVec(x, out)
	out.Add(d.b)
	return out
}

// Backward accumulates dW and db and returns dL/dx.
func (d *Dense) Backward(dOut tensor.Vector) tensor.Vector {
	if len(dOut) != d.Out {
		panic(fmt.Sprintf("nn: dense backward grad %d, want %d", len(dOut), d.Out))
	}
	d.gw.AddOuter(1, dOut, d.lastIn)
	d.gb.Add(dOut)
	dIn := tensor.NewVector(d.In)
	d.w.MulVecT(dOut, dIn)
	return dIn
}

// activation is a parameter-free element-wise layer.
type activation struct {
	size    int
	fn      func(float64) float64
	deriv   func(x, y float64) float64 // derivative given input x and output y
	lastIn  tensor.Vector
	lastOut tensor.Vector
	name    string
}

// NewReLU returns a rectified linear activation for vectors of length size.
func NewReLU(size int) Layer {
	return &activation{
		size: size,
		name: "relu",
		fn:   func(x float64) float64 { return math.Max(0, x) },
		deriv: func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		},
	}
}

// NewTanh returns a hyperbolic tangent activation for vectors of length size.
func NewTanh(size int) Layer {
	return &activation{
		size:  size,
		name:  "tanh",
		fn:    math.Tanh,
		deriv: func(_, y float64) float64 { return 1 - y*y },
	}
}

// NewSigmoid returns a logistic activation for vectors of length size.
func NewSigmoid(size int) Layer {
	return &activation{
		size:  size,
		name:  "sigmoid",
		fn:    sigmoid,
		deriv: func(_, y float64) float64 { return y * (1 - y) },
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func (a *activation) NumParams() int          { return 0 }
func (a *activation) OutputSize() int         { return a.size }
func (a *activation) Bind(_, _ tensor.Vector) {}
func (a *activation) Init(_ *rand.Rand)       {}
func (a *activation) String() string          { return a.name }
func (a *activation) Forward(x tensor.Vector) tensor.Vector {
	if len(x) != a.size {
		panic(fmt.Sprintf("nn: %s forward input %d, want %d", a.name, len(x), a.size))
	}
	a.lastIn = x.Clone()
	out := tensor.NewVector(a.size)
	for i, v := range x {
		out[i] = a.fn(v)
	}
	a.lastOut = out.Clone()
	return out
}

func (a *activation) Backward(dOut tensor.Vector) tensor.Vector {
	dIn := tensor.NewVector(a.size)
	for i, g := range dOut {
		dIn[i] = g * a.deriv(a.lastIn[i], a.lastOut[i])
	}
	return dIn
}

// Loss maps a prediction and target to a scalar loss and its gradient with
// respect to the prediction.
type Loss interface {
	// Loss returns the scalar loss for one sample.
	Loss(pred, target tensor.Vector) float64
	// Grad returns dLoss/dPred for one sample.
	Grad(pred, target tensor.Vector) tensor.Vector
	// Name identifies the loss in logs.
	Name() string
}

// MSE is the mean squared error loss 0.5*||pred-target||^2 (the 0.5 keeps the
// gradient free of constants).
type MSE struct{}

// Name returns "mse".
func (MSE) Name() string { return "mse" }

// Loss returns 0.5 * squared error.
func (MSE) Loss(pred, target tensor.Vector) float64 {
	var s float64
	for i, p := range pred {
		d := p - target[i]
		s += d * d
	}
	return 0.5 * s
}

// Grad returns pred - target.
func (MSE) Grad(pred, target tensor.Vector) tensor.Vector {
	out := pred.Clone()
	out.Sub(target)
	return out
}

// SoftmaxCrossEntropy combines a softmax output layer with the cross-entropy
// loss; Grad returns the numerically stable softmax(pred)-onehot form. The
// target vector is a one-hot encoding of the class.
type SoftmaxCrossEntropy struct{}

// Name returns "softmax-xent".
func (SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// Softmax returns the softmax distribution of logits.
func Softmax(logits tensor.Vector) tensor.Vector {
	maxLogit, _ := logits.Max()
	out := tensor.NewVector(len(logits))
	var sum float64
	for i, l := range logits {
		out[i] = math.Exp(l - maxLogit)
		sum += out[i]
	}
	out.Scale(1 / sum)
	return out
}

// Loss returns the cross entropy between softmax(pred) and the one-hot
// target.
func (SoftmaxCrossEntropy) Loss(pred, target tensor.Vector) float64 {
	probs := Softmax(pred)
	var loss float64
	for i, t := range target {
		if t > 0 {
			loss -= t * math.Log(math.Max(probs[i], 1e-12))
		}
	}
	return loss
}

// Grad returns softmax(pred) - target.
func (SoftmaxCrossEntropy) Grad(pred, target tensor.Vector) tensor.Vector {
	probs := Softmax(pred)
	probs.Sub(target)
	return probs
}

// OneHot returns a one-hot vector of the given length with index class set.
func OneHot(class, length int) tensor.Vector {
	if class < 0 || class >= length {
		panic(fmt.Sprintf("nn: one-hot class %d out of range [0,%d)", class, length))
	}
	v := tensor.NewVector(length)
	v[class] = 1
	return v
}

// Segment describes one layer-aligned slice of a model's flat parameter and
// gradient vectors — the natural bucket boundary of a bucketed gradient
// exchange: the slice [Offset, Offset+Len) of Params()/Grads() belongs to one
// layer, so it becomes final (and exchangeable) as soon as that layer's
// backward pass completes.
type Segment struct {
	// Name identifies the owning layer in diagnostics.
	Name string
	// Offset is the segment's start within the flat vectors.
	Offset int
	// Len is the segment's element count.
	Len int
}

// Network is a feed-forward stack of layers with a loss, holding all
// parameters and gradients in flat vectors.
type Network struct {
	layers  []Layer
	offsets []int // per-layer start offset within the flat vectors
	loss    Loss
	params  tensor.Vector
	grads   tensor.Vector
}

// NewNetwork assembles the layers into a network and allocates the flat
// parameter and gradient buffers. Call Init before training.
func NewNetwork(loss Loss, layers ...Layer) *Network {
	if loss == nil {
		panic("nn: nil loss")
	}
	if len(layers) == 0 {
		panic("nn: network needs at least one layer")
	}
	total := 0
	for _, l := range layers {
		total += l.NumParams()
	}
	n := &Network{
		layers: layers,
		loss:   loss,
		params: tensor.NewVector(total),
		grads:  tensor.NewVector(total),
	}
	n.offsets = make([]int, len(layers))
	off := 0
	for i, l := range layers {
		sz := l.NumParams()
		n.offsets[i] = off
		l.Bind(n.params[off:off+sz], n.grads[off:off+sz])
		off += sz
	}
	return n
}

// layerName labels a layer for Segment diagnostics.
func layerName(i int, l Layer) string {
	if s, ok := l.(fmt.Stringer); ok {
		return fmt.Sprintf("%d:%s", i, s.String())
	}
	return fmt.Sprintf("%d:%T", i, l)
}

// Segments returns the layer-aligned segments of the flat parameter and
// gradient vectors in layer (offset) order, one per layer that owns
// parameters. The segments tile [0, NumParams()) exactly when every layer has
// parameters; parameter-free layers (activations) own no segment.
func (n *Network) Segments() []Segment {
	var segs []Segment
	for i, l := range n.layers {
		if sz := l.NumParams(); sz > 0 {
			segs = append(segs, Segment{Name: layerName(i, l), Offset: n.offsets[i], Len: sz})
		}
	}
	return segs
}

// Init initializes every layer's parameters.
func (n *Network) Init(rng *rand.Rand) {
	for _, l := range n.layers {
		l.Init(rng)
	}
}

// NumParams returns the total parameter count.
func (n *Network) NumParams() int { return len(n.params) }

// Params returns the flat parameter vector (aliased by the layers).
func (n *Network) Params() tensor.Vector { return n.params }

// Grads returns the flat gradient vector (aliased by the layers).
func (n *Network) Grads() tensor.Vector { return n.grads }

// ZeroGrads clears the accumulated gradients.
func (n *Network) ZeroGrads() { n.grads.Zero() }

// Forward runs one sample through the network and returns the output.
func (n *Network) Forward(x tensor.Vector) tensor.Vector {
	out := x
	for _, l := range n.layers {
		out = l.Forward(out)
	}
	return out
}

// LossValue returns the loss for one sample without touching gradients.
func (n *Network) LossValue(x, target tensor.Vector) float64 {
	return n.loss.Loss(n.Forward(x), target)
}

// BackwardFrom backpropagates the prediction gradient through the network,
// accumulating parameter gradients. It must directly follow the Forward call
// for the same sample.
func (n *Network) BackwardFrom(dPred tensor.Vector) {
	g := dPred
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
}

// AccumulateGradient runs forward and backward for one sample and returns its
// loss. Gradients accumulate into Grads (call ZeroGrads between batches and
// scale by the batch size afterwards).
func (n *Network) AccumulateGradient(x, target tensor.Vector) float64 {
	pred := n.Forward(x)
	loss := n.loss.Loss(pred, target)
	n.BackwardFrom(n.loss.Grad(pred, target))
	return loss
}

// BatchGradient zeroes the gradients, accumulates over the batch, divides by
// the batch size, and returns the mean loss.
func (n *Network) BatchGradient(xs, targets []tensor.Vector) float64 {
	if len(xs) != len(targets) {
		panic(fmt.Sprintf("nn: batch size mismatch %d inputs vs %d targets", len(xs), len(targets)))
	}
	if len(xs) == 0 {
		panic("nn: empty batch")
	}
	n.ZeroGrads()
	var total float64
	for i, x := range xs {
		total += n.AccumulateGradient(x, targets[i])
	}
	inv := 1 / float64(len(xs))
	n.grads.Scale(inv)
	return total * inv
}

// BatchGradientBuckets computes exactly the gradients of BatchGradient — the
// same accumulation order and the same element-wise scaling, so the result is
// bit-for-bit identical — but announces each layer's segment through ready as
// soon as it is final, which happens during the final sample's backward pass
// in reverse layer order (the output layer's gradient settles first). Each
// segment is already scaled by the batch size when its notification fires, so
// the callback may hand Grads()[Offset:Offset+Len] straight to a gradient
// exchange while the remaining layers are still backpropagating. A nil ready
// degrades to BatchGradient.
func (n *Network) BatchGradientBuckets(xs, targets []tensor.Vector, ready func(Segment)) float64 {
	if len(xs) != len(targets) {
		panic(fmt.Sprintf("nn: batch size mismatch %d inputs vs %d targets", len(xs), len(targets)))
	}
	if len(xs) == 0 {
		panic("nn: empty batch")
	}
	n.ZeroGrads()
	var total float64
	last := len(xs) - 1
	for i := 0; i < last; i++ {
		total += n.AccumulateGradient(xs[i], targets[i])
	}
	inv := 1 / float64(len(xs))

	// Final sample: backpropagate layer by layer; a layer's gradient segment
	// is final the moment its backward completes, so finalize (scale) and
	// announce it right there.
	pred := n.Forward(xs[last])
	total += n.loss.Loss(pred, targets[last])
	g := n.loss.Grad(pred, targets[last])
	for i := len(n.layers) - 1; i >= 0; i-- {
		l := n.layers[i]
		g = l.Backward(g)
		if sz := l.NumParams(); sz > 0 {
			n.grads[n.offsets[i] : n.offsets[i]+sz].Scale(inv)
			if ready != nil {
				ready(Segment{Name: layerName(i, l), Offset: n.offsets[i], Len: sz})
			}
		}
	}
	return total * inv
}

// Predict returns the class index with the highest output for x.
func (n *Network) Predict(x tensor.Vector) int {
	return n.Forward(x).ArgMax()
}

// Loss returns the network's loss function.
func (n *Network) Loss() Loss { return n.loss }
