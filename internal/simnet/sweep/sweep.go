// Package sweep is the lockstep sweep driver over the simnet models: it
// replays {solo, majority, quorum(k), sync} partial-collective policies
// against identical per-rank compute-skew draws and per-step wire draws,
// producing the paper's NAP-vs-step-time trade-off curves at world sizes
// (1000+ ranks) the socket transports cannot reach.
//
// The driver follows the seeded tick-world idiom (see SNIPPETS.md Snippet 1):
// one root seed derives every stream, every policy consumes the same draws,
// and the whole sweep is pure arithmetic over the event-level model below —
// no goroutines, no channels, no wall clock — so two runs with the same
// Config are bit-identical, which CI gates on.
//
// # Event-level model
//
// Per step, rank r finishes its gradient at
//
//	arr[r] = start[r] + BaseCompute + skew[r][step]
//
// where skew draws come from the same per-rank streams the simnet Hub uses.
// The policy then decides the round's activation time:
//
//	sync:      max over live arr (everyone waits for the last straggler)
//	solo:      min over live arr (the fastest rank activates immediately)
//	majority:  arr of the round's designated initiator — selected by the
//	           exact seeded formula internal/partial uses — or, when every
//	           designated initiator is dead, the dead-initiator failover:
//	           the fastest live arrival plus PeerDeadline
//	quorum(k): min arr over the round's k seeded candidates (same failover)
//
// NAP (the paper's "number of active processes", RoundInfo.ActiveProcesses)
// is the count of live ranks whose contribution arrived by activation. The
// round's result is formed at activation and propagated in ceil(log2 n)
// hops, each drawing wire latency from a shared per-step stream:
//
//	end = activation + wire[step]
//	start[r] = max(arr[r], end)
//
// A rank slower than the round (arr[r] > end) continues from its own late
// arrival — partial collectives never block on stragglers; their stale
// contribution lands in a later round, exactly the eager-SGD semantics.
//
// Crashes come from faults.Scenario.CrashAtStep (the PR 5 vocabulary): rank
// r leaves the world at its scheduled step and contributes to no later
// round. What the model deliberately omits: per-message queueing inside the
// collective's hop graph, transport backpressure, and tag-level protocol
// detail — those belong to the simnet Hub, which runs the real stack at
// moderate sizes. DESIGN.md "Deterministic simulation" states the split.
package sweep

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"eagersgd/internal/faults"
	"eagersgd/internal/simnet"
)

// Policy names one activation policy of the sweep.
type Policy struct {
	// Name labels the policy in curves and benchmark names ("solo",
	// "majority", "quorum3", ...).
	Name string
	// Mode is one of "sync", "solo", "majority", "quorum".
	Mode string
	// K is the candidate count for quorum mode (ignored otherwise).
	K int
}

// Config parameterizes one sweep cell: one world size × one skew model,
// swept across every policy in lockstep.
type Config struct {
	// Seed is the root seed; every stream (skew, wire, initiator selection)
	// derives from it.
	Seed uint64
	// Ranks is the world size.
	Ranks int
	// Steps is the number of training steps simulated.
	Steps int
	// BaseCompute is the skew-free per-step compute time.
	BaseCompute time.Duration
	// Skew models per-rank per-step compute skew (nil = none).
	Skew simnet.Model
	// Link models per-hop wire latency of the collective (nil = none).
	Link simnet.Model
	// Policies are the activation policies compared in lockstep.
	Policies []Policy
	// Faults optionally schedules rank crashes via CrashAtStep (other
	// Scenario fields are outside this model — the simnet Hub honors them
	// through the real faults.Injector).
	Faults *faults.Scenario
	// PeerDeadline is the dead-initiator failover delay: when every
	// designated initiator of a round is dead, the fastest live rank
	// self-activates after waiting this long (default 50ms), mirroring
	// partial.Options.PeerDeadline.
	PeerDeadline time.Duration
}

// Curve is one policy's aggregate result over the sweep.
type Curve struct {
	Policy Policy
	// Steps actually simulated (can stop early if every rank crashes).
	Steps int
	// Step-time statistics in virtual nanoseconds.
	MeanStepNs float64
	P50StepNs  int64
	P95StepNs  int64
	P99StepNs  int64
	// NAP statistics (the paper's active-process count per round).
	MeanNAP float64
	MinNAP  int
	MaxNAP  int
	// Survivors is the live rank count after the last step.
	Survivors int
	// TotalNs is the virtual time of the last round's completion.
	TotalNs int64
}

// Run sweeps every policy of cfg over identical draws and returns one curve
// per policy, in cfg.Policies order.
func Run(cfg Config) ([]Curve, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("sweep: ranks %d must be positive", cfg.Ranks)
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("sweep: steps %d must be positive", cfg.Steps)
	}
	if len(cfg.Policies) == 0 {
		return nil, fmt.Errorf("sweep: no policies")
	}
	for _, p := range cfg.Policies {
		switch p.Mode {
		case "sync", "solo", "majority":
		case "quorum":
			if p.K <= 0 {
				return nil, fmt.Errorf("sweep: quorum policy %q needs K > 0", p.Name)
			}
		default:
			return nil, fmt.Errorf("sweep: unknown mode %q in policy %q", p.Mode, p.Name)
		}
	}
	skewModel := cfg.Skew
	if skewModel == nil {
		skewModel = simnet.Constant(0)
	}
	linkModel := cfg.Link
	if linkModel == nil {
		linkModel = simnet.Constant(0)
	}
	deadline := cfg.PeerDeadline
	if deadline <= 0 {
		deadline = 50 * time.Millisecond
	}

	n := cfg.Ranks
	// Shared draws: every policy sees the same skew and wire samples — the
	// lockstep property that makes the curves apples-to-apples.
	skews := make([][]int64, n) // skews[r][step]
	for r := 0; r < n; r++ {
		s := skewModel.Sampler(simnet.DeriveSeed(cfg.Seed, simnet.DomainSkew, uint64(r)))
		draws := make([]int64, cfg.Steps)
		for step := range draws {
			draws[step] = s.Next()
		}
		skews[r] = draws
	}
	hops := int64(1)
	if n > 1 {
		hops = int64(bits.Len(uint(n - 1))) // ceil(log2 n)
	}
	wire := make([]int64, cfg.Steps)
	ws := linkModel.Sampler(simnet.DeriveSeed(cfg.Seed, simnet.DomainWire, 0))
	for step := range wire {
		var sum int64
		for h := int64(0); h < hops; h++ {
			sum += ws.Next()
		}
		wire[step] = sum
	}
	// Crash schedule: deadAt[r] = step at which rank r leaves, -1 = never.
	deadAt := make([]int, n)
	for r := range deadAt {
		deadAt[r] = -1
	}
	if cfg.Faults != nil {
		for r, step := range cfg.Faults.CrashAtStep {
			if r >= 0 && r < n && step >= 0 {
				deadAt[r] = step
			}
		}
	}

	curves := make([]Curve, 0, len(cfg.Policies))
	for _, pol := range cfg.Policies {
		curves = append(curves, runPolicy(cfg, pol, skews, wire, deadAt, int64(deadline)))
	}
	return curves, nil
}

func runPolicy(cfg Config, pol Policy, skews [][]int64, wire []int64, deadAt []int, deadline int64) Curve {
	n := cfg.Ranks
	base := int64(cfg.BaseCompute)
	start := make([]int64, n)
	arr := make([]int64, n)
	stepDurs := make([]int64, 0, cfg.Steps)
	naps := make([]int, 0, cfg.Steps)
	var prevEnd int64

	for step := 0; step < cfg.Steps; step++ {
		live := 0
		var minArr, maxArr int64 = math.MaxInt64, 0
		for r := 0; r < n; r++ {
			if deadAt[r] >= 0 && step >= deadAt[r] {
				continue
			}
			live++
			arr[r] = start[r] + base + skews[r][step]
			if arr[r] < minArr {
				minArr = arr[r]
			}
			if arr[r] > maxArr {
				maxArr = arr[r]
			}
		}
		if live == 0 {
			break
		}
		isLive := func(r int) bool { return deadAt[r] < 0 || step < deadAt[r] }

		var act int64
		switch pol.Mode {
		case "sync":
			act = maxArr
		case "solo":
			act = minArr
		case "majority":
			if i0 := initiatorFor(cfg.Seed, step, 0, n); isLive(i0) {
				act = arr[i0]
			} else {
				act = minArr + deadline // dead-initiator failover
			}
		case "quorum":
			act = int64(math.MaxInt64)
			for idx := 0; idx < pol.K; idx++ {
				if c := initiatorFor(cfg.Seed, step, idx, n); isLive(c) && arr[c] < act {
					act = arr[c]
				}
			}
			if act == math.MaxInt64 {
				act = minArr + deadline // every candidate dead
			}
		}

		nap := 0
		for r := 0; r < n; r++ {
			if isLive(r) && arr[r] <= act {
				nap++
			}
		}
		end := act + wire[step]
		stepDurs = append(stepDurs, end-prevEnd)
		prevEnd = end
		naps = append(naps, nap)
		for r := 0; r < n; r++ {
			if !isLive(r) {
				continue
			}
			if arr[r] > end {
				start[r] = arr[r] // straggler: continues from its late arrival
			} else {
				start[r] = end
			}
		}
	}

	c := Curve{Policy: pol, Steps: len(stepDurs), TotalNs: prevEnd}
	if len(stepDurs) == 0 {
		return c
	}
	var sumDur int64
	for _, d := range stepDurs {
		sumDur += d
	}
	c.MeanStepNs = float64(sumDur) / float64(len(stepDurs))
	c.P50StepNs = simnet.Percentile(stepDurs, 50)
	c.P95StepNs = simnet.Percentile(stepDurs, 95)
	c.P99StepNs = simnet.Percentile(stepDurs, 99)
	c.MinNAP, c.MaxNAP = naps[0], naps[0]
	sumNAP := 0
	for _, v := range naps {
		sumNAP += v
		if v < c.MinNAP {
			c.MinNAP = v
		}
		if v > c.MaxNAP {
			c.MaxNAP = v
		}
	}
	c.MeanNAP = float64(sumNAP) / float64(len(naps))
	// Survivors are the ranks still live at the step where the sweep stopped
	// (one past the last completed step — a rank whose crash step equals the
	// stop step is dead, which is exactly why an all-crashed world stops).
	stop := len(stepDurs)
	for r := 0; r < cfg.Ranks; r++ {
		if deadAt[r] < 0 || stop < deadAt[r] {
			c.Survivors++
		}
	}
	return c
}

// initiatorFor mirrors internal/partial's designated-initiator selection
// exactly — same SplitMix64 finalizer, same mixing constants — so the sweep
// model activates the very rank the real engine would for a given (seed,
// round, idx).
func initiatorFor(seed uint64, round, idx, size int) int {
	h := mix64(seed ^ (uint64(round)+1)*0x9e3779b97f4a7c15 ^ uint64(idx)*0xbf58476d1ce4e5b9)
	return int(h % uint64(size))
}

// mix64 is the SplitMix64 finalizer (see internal/partial.splitmix64).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
