package sweep

import (
	"encoding/json"
	"fmt"
	"runtime"
)

// The snapshot schema mirrors cmd/benchjson's BENCH_*.json documents field
// for field, so the sweep's curves drop straight into the repository's
// existing comparison tooling (`benchjson -compare sim_a.json sim_b.json`
// diffs two sweeps like any two benchmark runs). The structs are duplicated
// rather than imported because cmd/benchjson is package main.
//
// Determinism: nothing machine- or time-dependent enters the document. The
// Date field carries the root seed instead of a wall-clock date, map-valued
// metrics marshal with sorted keys (encoding/json's documented behavior),
// and benchmarks append in sweep order — so two runs of the same sweep are
// byte-identical, which CI diffs to gate the determinism contract.

// Result is one benchmark line, schema-compatible with cmd/benchjson.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     float64            `json:"b_per_op"`
	AllocsPer  float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the top-level JSON document, schema-compatible with
// cmd/benchjson.
type Snapshot struct {
	Date       string   `json:"date"`
	Command    string   `json:"command"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"numcpu,omitempty"`
	Package    string   `json:"package,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// NewSnapshot starts an empty sweep snapshot. The Date field records the
// root seed ("sim-seed-<seed>") instead of the wall clock, keeping the
// document bit-identical across invocations; command records how the sweep
// was parameterized.
func NewSnapshot(seed uint64, command string) *Snapshot {
	return &Snapshot{
		Date:    fmt.Sprintf("sim-seed-%d", seed),
		Command: command,
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Package: "eagersgd/internal/simnet/sweep",
	}
}

// Add appends one policy curve under the conventional name
// "SimSweep/policy=<name>/skew=<label>/n=<ranks>". The mean virtual step
// time lands in ns_per_op; NAP and tail statistics land in Metrics.
func (s *Snapshot) Add(skewLabel string, ranks int, c Curve) {
	s.Benchmarks = append(s.Benchmarks, Result{
		Name:       fmt.Sprintf("SimSweep/policy=%s/skew=%s/n=%d", c.Policy.Name, skewLabel, ranks),
		Iterations: int64(c.Steps),
		NsPerOp:    c.MeanStepNs,
		Metrics: map[string]float64{
			"nap":         c.MeanNAP,
			"nap-min":     float64(c.MinNAP),
			"nap-max":     float64(c.MaxNAP),
			"p50-step-ns": float64(c.P50StepNs),
			"p95-step-ns": float64(c.P95StepNs),
			"p99-step-ns": float64(c.P99StepNs),
			"survivors":   float64(c.Survivors),
			"total-ns":    float64(c.TotalNs),
		},
	})
}

// Marshal renders the snapshot as indented JSON with a trailing newline,
// byte-identical for identical sweeps.
func (s *Snapshot) Marshal() ([]byte, error) {
	doc, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}
