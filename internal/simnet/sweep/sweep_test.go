package sweep

import (
	"bytes"
	"testing"
	"time"

	"eagersgd/internal/faults"
	"eagersgd/internal/partial"
	"eagersgd/internal/simnet"
	"eagersgd/internal/transport"
)

func basePolicies() []Policy {
	return []Policy{
		{Name: "sync", Mode: "sync"},
		{Name: "solo", Mode: "solo"},
		{Name: "majority", Mode: "majority"},
		{Name: "quorum3", Mode: "quorum", K: 3},
	}
}

func heavyTailConfig(seed uint64, ranks, steps int) Config {
	return Config{
		Seed:        seed,
		Ranks:       ranks,
		Steps:       steps,
		BaseCompute: 2 * time.Millisecond,
		Skew:        simnet.Pareto(200*time.Microsecond, 1.2, 500*time.Millisecond),
		Link:        simnet.Uniform(50*time.Microsecond, 200*time.Microsecond),
		Policies:    basePolicies(),
	}
}

// TestSweepBitIdentical runs the same 1000-rank sweep twice and requires the
// marshalled snapshots to be byte-identical — the determinism contract CI
// gates on.
func TestSweepBitIdentical(t *testing.T) {
	render := func() []byte {
		cfg := heavyTailConfig(42, 1000, 100)
		curves, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		snap := NewSnapshot(cfg.Seed, "test")
		for _, c := range curves {
			snap.Add("pareto", cfg.Ranks, c)
		}
		doc, err := snap.Marshal()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		return doc
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical sweeps produced different snapshots")
	}
}

// TestSweepPolicyOrdering pins the paper's qualitative claims at 1000 ranks
// under heavy-tailed skew:
//
//   - step time: solo ≤ quorum(k) ≤ majority ≤ sync per construction (the
//     quorum's candidate 0 IS the majority initiator, and sync waits for
//     everyone), so the means must order the same way;
//   - NAP: sync is always full participation, and solo activates on the
//     fastest rank so its mean NAP must be below majority's.
func TestSweepPolicyOrdering(t *testing.T) {
	curves, err := Run(heavyTailConfig(7, 1000, 200))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byName := map[string]Curve{}
	for _, c := range curves {
		byName[c.Policy.Name] = c
	}
	sync, solo, maj, quo := byName["sync"], byName["solo"], byName["majority"], byName["quorum3"]
	if !(solo.MeanStepNs <= quo.MeanStepNs && quo.MeanStepNs <= maj.MeanStepNs && maj.MeanStepNs <= sync.MeanStepNs) {
		t.Fatalf("step-time ordering violated: solo=%.0f quorum=%.0f majority=%.0f sync=%.0f",
			solo.MeanStepNs, quo.MeanStepNs, maj.MeanStepNs, sync.MeanStepNs)
	}
	if sync.MinNAP != 1000 || sync.MaxNAP != 1000 {
		t.Fatalf("sync NAP must be full participation, got [%d,%d]", sync.MinNAP, sync.MaxNAP)
	}
	if solo.MeanNAP >= maj.MeanNAP {
		t.Fatalf("solo mean NAP %.1f should be below majority's %.1f", solo.MeanNAP, maj.MeanNAP)
	}
	if solo.MinNAP < 1 {
		t.Fatalf("NAP below 1 (%d): the initiator always participates", solo.MinNAP)
	}
}

// TestSweepCascadingCrash schedules the PR 5 chaos scenario at simulation
// scale: a cascade of rank deaths starting at rank 500 of a 1000-rank world.
// The sweep must keep producing rounds with the survivor set and report the
// reduced participation.
func TestSweepCascadingCrash(t *testing.T) {
	crash := map[int]int{}
	for i := 0; i < 50; i++ {
		crash[500+i] = 100 + i // one more rank dies each step
	}
	cfg := heavyTailConfig(11, 1000, 300)
	cfg.Faults = &faults.Scenario{Name: "cascade-at-500", CrashAtStep: crash}
	curves, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, c := range curves {
		if c.Steps != 300 {
			t.Fatalf("%s: completed %d/300 steps", c.Policy.Name, c.Steps)
		}
		if c.Survivors != 950 {
			t.Fatalf("%s: survivors = %d, want 950", c.Policy.Name, c.Survivors)
		}
		if c.Policy.Mode == "sync" && c.MinNAP != 950 {
			t.Fatalf("sync min NAP = %d, want 950 after the cascade", c.MinNAP)
		}
		if c.MaxNAP > 1000 {
			t.Fatalf("%s: NAP %d exceeds world size", c.Policy.Name, c.MaxNAP)
		}
	}
}

// TestSweepAllCrashedStopsEarly kills the whole world mid-sweep; the curves
// must truncate instead of dividing by zero.
func TestSweepAllCrashedStopsEarly(t *testing.T) {
	crash := map[int]int{}
	for r := 0; r < 8; r++ {
		crash[r] = 10
	}
	cfg := heavyTailConfig(3, 8, 50)
	cfg.Faults = &faults.Scenario{CrashAtStep: crash}
	curves, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, c := range curves {
		if c.Steps != 10 {
			t.Fatalf("%s: simulated %d steps after total death at step 10", c.Policy.Name, c.Steps)
		}
		if c.Survivors != 0 {
			t.Fatalf("%s: survivors = %d, want 0", c.Policy.Name, c.Survivors)
		}
	}
}

// TestSweepDeadInitiatorFailover kills rank communities until every majority
// initiator of a round can be dead, and checks the failover path (fastest
// live rank + PeerDeadline) keeps rounds finite rather than hanging at
// math.MaxInt64.
func TestSweepDeadInitiatorFailover(t *testing.T) {
	// Kill ranks 0 and 1 of a 2-rank... no: use 4 ranks, kill 3 — many rounds
	// will designate a dead initiator.
	crash := map[int]int{1: 0, 2: 0, 3: 0}
	cfg := Config{
		Seed:         5,
		Ranks:        4,
		Steps:        40,
		BaseCompute:  time.Millisecond,
		Policies:     []Policy{{Name: "majority", Mode: "majority"}, {Name: "quorum2", Mode: "quorum", K: 2}},
		Faults:       &faults.Scenario{CrashAtStep: crash},
		PeerDeadline: 10 * time.Millisecond,
	}
	curves, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, c := range curves {
		if c.Steps != 40 {
			t.Fatalf("%s: completed %d/40 steps", c.Policy.Name, c.Steps)
		}
		if c.Survivors != 1 {
			t.Fatalf("%s: survivors = %d, want 1", c.Policy.Name, c.Survivors)
		}
		// With one live rank every completed round has NAP 1.
		if c.MinNAP != 1 || c.MaxNAP != 1 {
			t.Fatalf("%s: NAP range [%d,%d], want [1,1]", c.Policy.Name, c.MinNAP, c.MaxNAP)
		}
		// Failover rounds cost at most base + skew + deadline + wire; mean
		// step time must stay in that ballpark, not blow up.
		if c.MeanStepNs > float64(40*time.Millisecond) {
			t.Fatalf("%s: mean step %.0fns suggests failover did not bound the round", c.Policy.Name, c.MeanStepNs)
		}
	}
}

// TestSweepCoordinatedStragglers replays an aligned trace where every rank
// stalls in the same rounds (the coordinated-slowdown chaos scenario): sync
// must absorb the stall every time while solo's median stays at the fast
// path... both see the stall (it is coordinated — nobody is fast), so the
// check is that the stall shows in BOTH p99s and that the lockstep draws
// made the two policies see identical stall rounds (same p99).
func TestSweepCoordinatedStragglers(t *testing.T) {
	// 9 fast steps then one 80ms stall, aligned across ranks.
	trace := make([]time.Duration, 10)
	for i := range trace {
		trace[i] = 100 * time.Microsecond
	}
	trace[9] = 80 * time.Millisecond
	cfg := Config{
		Seed:        13,
		Ranks:       64,
		Steps:       100,
		BaseCompute: time.Millisecond,
		Skew:        simnet.TraceAligned(trace),
		Policies:    []Policy{{Name: "sync", Mode: "sync"}, {Name: "solo", Mode: "solo"}},
	}
	curves, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, c := range curves {
		if c.P99StepNs < int64(80*time.Millisecond) {
			t.Fatalf("%s: p99 %dns misses the coordinated 80ms stall", c.Policy.Name, c.P99StepNs)
		}
		if c.P50StepNs > int64(5*time.Millisecond) {
			t.Fatalf("%s: p50 %dns should reflect the fast rounds", c.Policy.Name, c.P50StepNs)
		}
	}
	// Coordinated stall: every rank participates even under solo.
	for _, c := range curves {
		if c.MinNAP != 64 && c.Policy.Mode == "sync" {
			t.Fatalf("sync NAP %d under aligned trace, want 64", c.MinNAP)
		}
	}
}

// TestSweepMatchesPartialInitiator cross-checks the sweep's mirrored
// initiator formula against the real engine: the ranks the sweep model
// treats as a round's quorum candidates must be exactly the ranks
// partial.Allreducer.DesignatedInitiators reports for the same seed and
// round, guarding against silent drift between model and engine.
func TestSweepMatchesPartialInitiator(t *testing.T) {
	const size, k, seed = 8, 4, 99
	world := transport.NewInprocWorld(size)
	defer world[0].Close()
	a := partial.New(world[0], 4, partial.Options{Mode: partial.Quorum, Seed: seed, Candidates: k})
	for round := 0; round < 100; round++ {
		want := a.DesignatedInitiators(round)
		// The sweep iterates candidate indices without dedup (duplicates are
		// harmless under min-arrival); dedup in first-seen order to compare.
		seen := map[int]bool{}
		var got []int
		for idx := 0; idx < k; idx++ {
			r := initiatorFor(seed, round, idx, size)
			if !seen[r] {
				seen[r] = true
				got = append(got, r)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: candidates %v, engine says %v", round, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: candidates %v, engine says %v", round, got, want)
			}
		}
	}
}
