package simnet

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// A Sampler produces a deterministic sequence of non-negative durations in
// nanoseconds. Each entity (link, rank) gets its own sampler, backed by its
// own seed-derived stream, so samplers never contend and never share state.
type Sampler interface {
	Next() int64
}

// A Model is a named family of duration distributions: given an entity's
// seed it instantiates the Sampler for that entity. Models are immutable and
// shareable; all per-draw state lives in the samplers they create.
//
// The four families cover the paper's straggler axis:
//
//   - Constant: no variance — the calibration baseline.
//   - Uniform: bounded benign jitter (OS noise).
//   - Pareto: heavy-tailed stragglers (the distribution the eager-SGD paper
//     motivates with: most steps fast, occasional order-of-magnitude stalls).
//   - Trace: replay of recorded per-step durations, for reproducing a
//     specific observed straggler pattern (e.g. a coordinated slowdown).
type Model interface {
	// Sampler instantiates the model's deterministic sampler for one entity.
	Sampler(seed uint64) Sampler
	// String renders the model in the spec syntax ParseModel accepts.
	String() string
}

// Constant returns a model that always samples d.
func Constant(d time.Duration) Model {
	if d < 0 {
		d = 0
	}
	return constantModel{ns: int64(d)}
}

type constantModel struct{ ns int64 }

func (m constantModel) Sampler(uint64) Sampler { return constSampler(m.ns) }
func (m constantModel) String() string {
	return fmt.Sprintf("constant:%s", time.Duration(m.ns))
}

type constSampler int64

func (s constSampler) Next() int64 { return int64(s) }

// Uniform returns a model sampling uniformly from [lo, hi].
func Uniform(lo, hi time.Duration) Model {
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return uniformModel{lo: int64(lo), hi: int64(hi)}
}

type uniformModel struct{ lo, hi int64 }

func (m uniformModel) Sampler(seed uint64) Sampler {
	return &uniformSampler{m: m, rng: NewStream(seed)}
}
func (m uniformModel) String() string {
	return fmt.Sprintf("uniform:%s,%s", time.Duration(m.lo), time.Duration(m.hi))
}

type uniformSampler struct {
	m   uniformModel
	rng *Stream
}

func (s *uniformSampler) Next() int64 {
	if s.m.hi == s.m.lo {
		return s.m.lo
	}
	return s.m.lo + s.rng.Int63n(s.m.hi-s.m.lo+1)
}

// Pareto returns a heavy-tailed model: samples follow a Pareto distribution
// with the given scale (minimum value) and tail exponent alpha, truncated at
// cap so a single draw cannot stall the simulation unboundedly. Small alpha
// (≤ ~1.5) produces the occasional extreme straggler the eager-SGD paper is
// designed around; large alpha degenerates toward the scale.
func Pareto(scale time.Duration, alpha float64, cap time.Duration) Model {
	if scale <= 0 {
		scale = time.Nanosecond
	}
	if alpha <= 0 {
		alpha = 1
	}
	if cap < scale {
		cap = scale
	}
	return paretoModel{scale: int64(scale), alpha: alpha, cap: int64(cap)}
}

type paretoModel struct {
	scale int64
	alpha float64
	cap   int64
}

func (m paretoModel) Sampler(seed uint64) Sampler {
	return &paretoSampler{m: m, rng: NewStream(seed)}
}
func (m paretoModel) String() string {
	return fmt.Sprintf("pareto:%s,%g,%s", time.Duration(m.scale), m.alpha, time.Duration(m.cap))
}

type paretoSampler struct {
	m   paretoModel
	rng *Stream
}

func (s *paretoSampler) Next() int64 {
	// Inverse-CDF: x = scale / U^(1/alpha), U in (0, 1].
	u := 1 - s.rng.Float64() // (0, 1]
	x := float64(s.m.scale) / math.Pow(u, 1/s.m.alpha)
	if x > float64(s.m.cap) {
		return s.m.cap
	}
	return int64(x)
}

// Trace returns a model replaying the recorded durations cyclically, in
// order. Every entity replays the same trace from the start; the seed only
// rotates the starting offset so a world of ranks sharing one trace does not
// stall in lockstep unless the trace is meant to model exactly that (pass
// identical seeds, as the sweep's coordinated-straggler scenario does).
func Trace(samples []time.Duration) Model {
	ns := make([]int64, len(samples))
	for i, d := range samples {
		if d < 0 {
			d = 0
		}
		ns[i] = int64(d)
	}
	return traceModel{ns: ns}
}

// TraceAligned is Trace without the per-entity offset rotation: every sampler
// replays from index 0 regardless of seed. This is the coordinated-straggler
// model — all ranks hit the trace's stall step in the same round.
func TraceAligned(samples []time.Duration) Model {
	m := Trace(samples).(traceModel)
	m.aligned = true
	return m
}

type traceModel struct {
	ns      []int64
	aligned bool
}

func (m traceModel) Sampler(seed uint64) Sampler {
	if len(m.ns) == 0 {
		return constSampler(0)
	}
	start := 0
	if !m.aligned {
		start = int(NewStream(seed).Uint64() % uint64(len(m.ns)))
	}
	return &traceSampler{ns: m.ns, i: start}
}

func (m traceModel) String() string {
	parts := make([]string, len(m.ns))
	for i, v := range m.ns {
		parts[i] = time.Duration(v).String()
	}
	name := "trace"
	if m.aligned {
		name = "tracealigned"
	}
	return name + ":" + strings.Join(parts, ",")
}

type traceSampler struct {
	ns []int64
	i  int
}

func (s *traceSampler) Next() int64 {
	v := s.ns[s.i]
	s.i++
	if s.i == len(s.ns) {
		s.i = 0
	}
	return v
}

// ParseModel parses the textual model spec syntax used by cmd/simsweep and
// the collective Sim options:
//
//	constant:DUR
//	uniform:LO,HI
//	pareto:SCALE,ALPHA,CAP
//	trace:DUR,DUR,...          (per-entity rotated replay)
//	tracealigned:DUR,DUR,...   (coordinated replay, all entities in phase)
//
// Durations use Go syntax ("2ms", "150us"). A bare duration is shorthand for
// constant.
func ParseModel(spec string) (Model, error) {
	spec = strings.TrimSpace(spec)
	kind, rest, found := strings.Cut(spec, ":")
	if !found {
		d, err := time.ParseDuration(spec)
		if err != nil {
			return nil, fmt.Errorf("simnet: bad model spec %q: want kind:args or a bare duration", spec)
		}
		return Constant(d), nil
	}
	args := strings.Split(rest, ",")
	durs := func(n int) ([]time.Duration, error) {
		if len(args) != n {
			return nil, fmt.Errorf("simnet: %s wants %d args, got %d in %q", kind, n, len(args), spec)
		}
		out := make([]time.Duration, n)
		for i, a := range args {
			d, err := time.ParseDuration(strings.TrimSpace(a))
			if err != nil {
				return nil, fmt.Errorf("simnet: bad duration %q in %q: %v", a, spec, err)
			}
			out[i] = d
		}
		return out, nil
	}
	switch kind {
	case "constant":
		d, err := durs(1)
		if err != nil {
			return nil, err
		}
		return Constant(d[0]), nil
	case "uniform":
		d, err := durs(2)
		if err != nil {
			return nil, err
		}
		if d[1] < d[0] {
			return nil, fmt.Errorf("simnet: uniform hi %v < lo %v in %q", d[1], d[0], spec)
		}
		return Uniform(d[0], d[1]), nil
	case "pareto":
		if len(args) != 3 {
			return nil, fmt.Errorf("simnet: pareto wants scale,alpha,cap, got %q", spec)
		}
		scale, err := time.ParseDuration(strings.TrimSpace(args[0]))
		if err != nil {
			return nil, fmt.Errorf("simnet: bad pareto scale in %q: %v", spec, err)
		}
		var alpha float64
		if _, err := fmt.Sscanf(strings.TrimSpace(args[1]), "%g", &alpha); err != nil || alpha <= 0 {
			return nil, fmt.Errorf("simnet: bad pareto alpha %q in %q", args[1], spec)
		}
		cap, err := time.ParseDuration(strings.TrimSpace(args[2]))
		if err != nil {
			return nil, fmt.Errorf("simnet: bad pareto cap in %q: %v", spec, err)
		}
		return Pareto(scale, alpha, cap), nil
	case "trace", "tracealigned":
		samples := make([]time.Duration, 0, len(args))
		for _, a := range args {
			d, err := time.ParseDuration(strings.TrimSpace(a))
			if err != nil {
				return nil, fmt.Errorf("simnet: bad trace duration %q in %q: %v", a, spec, err)
			}
			samples = append(samples, d)
		}
		if len(samples) == 0 {
			return nil, fmt.Errorf("simnet: empty trace in %q", spec)
		}
		if kind == "tracealigned" {
			return TraceAligned(samples), nil
		}
		return Trace(samples), nil
	default:
		return nil, fmt.Errorf("simnet: unknown model kind %q in %q (want constant, uniform, pareto, trace, or tracealigned)", kind, spec)
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the samples using
// nearest-rank on a sorted copy. Shared by the sweep's curve statistics and
// tests; returns 0 for an empty slice.
func Percentile(samples []int64, p float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
