package simnet_test

import (
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/simnet"
	"eagersgd/internal/tensor"
)

// TestStreamDeterminism pins the SplitMix64 sequence: same seed, same draws;
// distinct derived seeds, distinct streams.
func TestStreamDeterminism(t *testing.T) {
	a := simnet.NewStream(42)
	b := simnet.NewStream(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %x vs %x", i, av, bv)
		}
	}
	s1 := simnet.DeriveSeed(7, 1, 2, 3)
	s2 := simnet.DeriveSeed(7, 1, 2, 3)
	s3 := simnet.DeriveSeed(7, 1, 3, 2)
	if s1 != s2 {
		t.Fatalf("DeriveSeed not deterministic: %x vs %x", s1, s2)
	}
	if s1 == s3 {
		t.Fatalf("DeriveSeed ignored id order: both %x", s1)
	}
}

// TestModelsSampleDeterministically checks each model family produces the
// same sequence for the same seed, stays within its stated bounds, and
// round-trips through ParseModel.
func TestModelsSampleDeterministically(t *testing.T) {
	models := []string{
		"constant:2ms",
		"uniform:1ms,8ms",
		"pareto:200us,1.2,500ms",
		"trace:1ms,2ms,50ms",
		"tracealigned:1ms,2ms,50ms",
		"3ms", // bare-duration shorthand
	}
	for _, spec := range models {
		m, err := simnet.ParseModel(spec)
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", spec, err)
		}
		// String() must re-parse to an equivalent model (spec round-trip).
		if _, err := simnet.ParseModel(m.String()); err != nil {
			t.Fatalf("ParseModel(%q).String()=%q does not re-parse: %v", spec, m.String(), err)
		}
		s1, s2 := m.Sampler(99), m.Sampler(99)
		for i := 0; i < 200; i++ {
			v1, v2 := s1.Next(), s2.Next()
			if v1 != v2 {
				t.Fatalf("%s: draw %d diverged: %d vs %d", spec, i, v1, v2)
			}
			if v1 < 0 {
				t.Fatalf("%s: negative duration %d", spec, v1)
			}
		}
	}
}

func TestModelBounds(t *testing.T) {
	u := simnet.Uniform(time.Millisecond, 8*time.Millisecond).Sampler(1)
	for i := 0; i < 1000; i++ {
		v := u.Next()
		if v < int64(time.Millisecond) || v > int64(8*time.Millisecond) {
			t.Fatalf("uniform draw %d outside [1ms,8ms]", v)
		}
	}
	p := simnet.Pareto(200*time.Microsecond, 1.2, 500*time.Millisecond).Sampler(1)
	for i := 0; i < 1000; i++ {
		v := p.Next()
		if v < int64(200*time.Microsecond) || v > int64(500*time.Millisecond) {
			t.Fatalf("pareto draw %d outside [200us cap 500ms]", v)
		}
	}
}

func TestParseModelRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"", "nope", "gauss:1ms", "uniform:8ms,1ms", "uniform:1ms",
		"pareto:1ms,0,2ms", "pareto:1ms,x,2ms", "trace:", "constant:fast",
	} {
		if _, err := simnet.ParseModel(spec); err == nil {
			t.Errorf("ParseModel(%q) accepted a bad spec", spec)
		}
	}
}

// TestHubVirtualTimeDeterminism runs the same single-goroutine send sequence
// twice and requires identical virtual clocks — the Hub-layer determinism
// contract.
func TestHubVirtualTimeDeterminism(t *testing.T) {
	run := func() (time.Duration, []time.Duration) {
		hub := simnet.NewHub(4, simnet.Config{
			Seed:    1234,
			Latency: simnet.Uniform(50*time.Microsecond, 400*time.Microsecond),
			Skew:    simnet.Pareto(time.Millisecond, 1.3, 100*time.Millisecond),
		})
		world := make([]*comm.Communicator, 4)
		for r := 0; r < 4; r++ {
			world[r] = comm.NewCommunicator(hub.Endpoint(r))
		}
		defer world[0].Close()
		for step := 0; step < 20; step++ {
			for r := 0; r < 4; r++ {
				hub.AdvanceCompute(r)
			}
			for r := 0; r < 4; r++ {
				if err := world[r].Send((r+1)%4, step, tensor.GetVector(8)); err != nil {
					t.Fatalf("send: %v", err)
				}
			}
			for r := 0; r < 4; r++ {
				data, _, err := world[r].Recv((r+3)%4, step)
				if err != nil {
					t.Fatalf("recv: %v", err)
				}
				tensor.PutVector(data)
			}
		}
		times := make([]time.Duration, 4)
		for r := range times {
			times[r] = hub.RankTime(r)
		}
		return hub.Now(), times
	}
	now1, t1 := run()
	now2, t2 := run()
	if now1 != now2 {
		t.Fatalf("virtual clocks diverged across identical runs: %v vs %v", now1, now2)
	}
	for r := range t1 {
		if t1[r] != t2[r] {
			t.Fatalf("rank %d virtual clock diverged: %v vs %v", r, t1[r], t2[r])
		}
	}
	if now1 == 0 {
		t.Fatal("virtual clock never advanced")
	}
}

// TestHubPerLinkFIFO sends a burst on one link and checks arrival order
// matches send order (per-link FIFO in virtual time).
func TestHubPerLinkFIFO(t *testing.T) {
	world := simnet.NewWorld(2, simnet.Config{
		Seed:    7,
		Latency: simnet.Uniform(0, time.Millisecond),
	})
	defer world[0].Close()
	const n = 50
	for i := 0; i < n; i++ {
		v := tensor.GetVector(1)
		v[0] = float64(i)
		if err := world[0].Send(1, 5, v); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		data, _, err := world[1].Recv(0, 5)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got := int(data[0]); got != i {
			t.Fatalf("link reordered: got payload %d at position %d", got, i)
		}
		tensor.PutVector(data)
	}
}

// TestHubCloseReleasesUndelivered closes a world with scheduled-but-unread
// deliveries in flight and asserts no pool lease leaks.
func TestHubCloseReleasesUndelivered(t *testing.T) {
	world := simnet.NewWorld(2, simnet.Config{Seed: 3})
	before := tensor.ReadPoolStats()
	for i := 0; i < 32; i++ {
		if err := world[0].Send(1, i, tensor.GetVector(16)); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for _, w := range world {
		w.Close()
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("close leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
	if err := world[0].Send(1, 0, tensor.GetVector(4)); err == nil {
		t.Fatal("send after close succeeded")
	}
}

// TestHubComputeSkewDelaysSends checks that a rank's compute advances push
// its virtual clock forward and that subsequent sends depart no earlier: the
// receiver's clock lands at or after the sender's advanced clock plus the
// link latency floor.
func TestHubComputeSkewDelaysSends(t *testing.T) {
	hub := simnet.NewHub(2, simnet.Config{
		Seed:    11,
		Latency: simnet.Constant(100 * time.Microsecond),
		Skew:    simnet.Constant(5 * time.Millisecond),
	})
	world := []*comm.Communicator{
		comm.NewCommunicator(hub.Endpoint(0)),
		comm.NewCommunicator(hub.Endpoint(1)),
	}
	defer world[0].Close()
	if d := hub.AdvanceCompute(0); d != 5*time.Millisecond {
		t.Fatalf("AdvanceCompute = %v, want 5ms", d)
	}
	if err := world[0].Send(1, 1, tensor.GetVector(1)); err != nil {
		t.Fatal(err)
	}
	data, _, err := world[1].Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tensor.PutVector(data)
	if got, want := hub.RankTime(1), 5*time.Millisecond+100*time.Microsecond; got != want {
		t.Fatalf("receiver virtual clock = %v, want %v (sender compute + link latency)", got, want)
	}
}
