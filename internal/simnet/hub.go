// Package simnet is the deterministic simulation transport: a third backend
// next to inproc/TCP/shm that runs real communicators, collectives, and
// training loops over a discrete-event network with a virtual clock — no
// sockets, no wall-clock sleeps, thousands of ranks in one process.
//
// Two layers share the package:
//
//   - The Hub/Endpoint layer below implements comm.Endpoint over an event
//     heap: every send is assigned a virtual delivery time from the link's
//     seeded latency model, a dispatcher drains the heap in virtual-time
//     order, and per-rank virtual clocks advance from deliveries and from
//     explicit AdvanceCompute calls (the compute-skew model). The full real
//     stack — tag matching, direct delivery, partial rounds, epochs, fault
//     injection — runs unmodified on top.
//   - internal/simnet/sweep is the closed-form lockstep sweep driver that
//     reproduces the paper's NAP-vs-step-time curves at 1000+ ranks,
//     bit-identically, using the same Model/Stream vocabulary (see that
//     package and DESIGN.md "Deterministic simulation" for the determinism
//     contract — what each layer does and does not pin down).
//
// Determinism contract of this layer: all virtual timestamps are derived
// from per-entity seeded streams, so a fixed sequence of operations yields
// identical virtual times across runs. Per-link delivery is FIFO in virtual
// time. What the Hub does NOT pin down is cross-link goroutine interleaving:
// real goroutines still race on real CPUs, exactly as with the inproc hub
// (the collectives' results are interleaving-independent by construction).
// Bit-identical end-to-end runs come from the sweep layer, which has no
// goroutines to race.
package simnet

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// DefaultInboxDepth matches the inproc hub's inbox capacity: deep enough that
// a solo initiator can send to a rank still busy computing.
const DefaultInboxDepth = 4096

// Config parameterizes a simulated world.
type Config struct {
	// Seed is the root seed every per-entity stream derives from. Zero is a
	// valid seed (distinct from all others).
	Seed uint64
	// Latency models per-link message latency. Each directed link draws from
	// its own stream. Nil means Constant(0) — instant delivery.
	Latency Model
	// Skew models per-rank compute time per AdvanceCompute call. Each rank
	// draws from its own stream. Nil means Constant(0).
	Skew Model
	// InboxDepth overrides the per-rank inbox capacity (default
	// DefaultInboxDepth).
	InboxDepth int
}

// event is one scheduled delivery.
type event struct {
	at   int64  // virtual delivery time, ns
	seq  uint64 // enqueue order, tie-break for equal times
	dest int
	m    comm.Message
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Hub connects size simulated endpoints through one virtual clock. Delivery
// is reliable and FIFO per directed link in virtual time; latency per link
// and compute skew per rank are drawn from seed-derived streams.
type Hub struct {
	cfg  Config
	size int

	inboxes []chan comm.Message
	done    chan struct{}

	mu       sync.Mutex
	cond     *sync.Cond // wakes the dispatcher when events arrive or the hub closes
	events   eventHeap
	seq      uint64
	now      int64           // global virtual clock: max delivery time dispatched
	rankTime []int64         // per-rank virtual clock
	linkFree []int64         // per directed link: virtual time the link is next free
	linkLat  map[int]Sampler // lazy per-link latency samplers, keyed src*size+dst
	skew     []Sampler       // lazy per-rank skew samplers
	closed   bool

	dispatcherWG sync.WaitGroup
}

// NewHub creates a simulated world of size ranks.
func NewHub(size int, cfg Config) *Hub {
	if size <= 0 {
		panic(fmt.Sprintf("simnet: hub size %d must be positive", size))
	}
	if cfg.Latency == nil {
		cfg.Latency = Constant(0)
	}
	if cfg.Skew == nil {
		cfg.Skew = Constant(0)
	}
	depth := cfg.InboxDepth
	if depth <= 0 {
		depth = DefaultInboxDepth
	}
	h := &Hub{
		cfg:      cfg,
		size:     size,
		inboxes:  make([]chan comm.Message, size),
		done:     make(chan struct{}),
		rankTime: make([]int64, size),
		linkFree: make([]int64, size*size),
		linkLat:  make(map[int]Sampler),
		skew:     make([]Sampler, size),
	}
	h.cond = sync.NewCond(&h.mu)
	for i := range h.inboxes {
		h.inboxes[i] = make(chan comm.Message, depth)
	}
	h.dispatcherWG.Add(1)
	go h.dispatch()
	return h
}

// Size returns the number of ranks connected by the hub.
func (h *Hub) Size() int { return h.size }

// Endpoint returns the comm.Endpoint for the given rank.
func (h *Hub) Endpoint(rank int) *Endpoint {
	if rank < 0 || rank >= h.size {
		panic(fmt.Sprintf("simnet: rank %d out of range [0,%d)", rank, h.size))
	}
	return &Endpoint{hub: h, rank: rank}
}

// Now returns the global virtual clock: the latest virtual time any
// dispatched delivery or compute advance has reached.
func (h *Hub) Now() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.now)
}

// RankTime returns rank's virtual clock: the maximum of its compute advances
// and the delivery times of messages dispatched to it.
func (h *Hub) RankTime(rank int) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.rankTime[rank])
}

// AdvanceCompute advances rank's virtual clock by one draw from its
// compute-skew stream, modelling one unit of local computation (a training
// step's forward+backward), and returns the draw. Subsequent sends from the
// rank depart no earlier than the advanced clock.
func (h *Hub) AdvanceCompute(rank int) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.skew[rank]
	if s == nil {
		s = h.cfg.Skew.Sampler(DeriveSeed(h.cfg.Seed, DomainSkew, uint64(rank)))
		h.skew[rank] = s
	}
	d := s.Next()
	h.rankTime[rank] += d
	if h.rankTime[rank] > h.now {
		h.now = h.rankTime[rank]
	}
	return time.Duration(d)
}

// send schedules delivery of m on the src→dest link. The virtual delivery
// time is max(sender clock, link free time) + one latency draw; the link is
// then busy until that time, which is what makes per-link delivery FIFO in
// virtual time. Ownership of m.Data transfers unconditionally, as the
// comm.Endpoint contract requires.
func (h *Hub) send(src, dest int, m comm.Message) error {
	if dest < 0 || dest >= h.size {
		tensor.PutVector(m.Data)
		return fmt.Errorf("simnet: destination %d out of range [0,%d)", dest, h.size)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		tensor.PutVector(m.Data)
		return ErrClosed
	}
	link := src*h.size + dest
	lat := h.linkLat[link]
	if lat == nil {
		lat = h.cfg.Latency.Sampler(DeriveSeed(h.cfg.Seed, DomainLink, uint64(src), uint64(dest)))
		h.linkLat[link] = lat
	}
	depart := h.rankTime[src]
	if h.linkFree[link] > depart {
		depart = h.linkFree[link]
	}
	at := depart + lat.Next()
	h.linkFree[link] = at
	h.seq++
	heap.Push(&h.events, event{at: at, seq: h.seq, dest: dest, m: m})
	h.cond.Signal()
	h.mu.Unlock()
	return nil
}

// dispatch is the hub's single delivery goroutine: it drains the event heap
// in (virtual time, enqueue order) and forwards each message to its
// destination inbox, advancing the virtual clocks as it goes. Inbox
// backpressure blocks outside the lock, so senders keep scheduling while a
// slow rank catches up.
func (h *Hub) dispatch() {
	defer h.dispatcherWG.Done()
	for {
		h.mu.Lock()
		for len(h.events) == 0 && !h.closed {
			h.cond.Wait()
		}
		if h.closed {
			// Close drains the heap after this goroutine exits; leaving the
			// events in place keeps exactly one owner per lease.
			h.mu.Unlock()
			return
		}
		e := heap.Pop(&h.events).(event)
		if e.at > h.now {
			h.now = e.at
		}
		if e.at > h.rankTime[e.dest] {
			h.rankTime[e.dest] = e.at
		}
		ch := h.inboxes[e.dest]
		h.mu.Unlock()
		select {
		case ch <- e.m:
		case <-h.done:
			tensor.PutVector(e.m.Data)
			return
		}
	}
}

// ErrClosed is returned when sending through a closed hub.
var ErrClosed = fmt.Errorf("simnet: closed")

// Close shuts the whole world down: future sends fail, the dispatcher stops,
// undelivered events release their payload leases, and every inbox closes so
// the communicators above observe an ordinary transport shutdown. Safe to
// call more than once.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	close(h.done)
	h.cond.Broadcast()
	h.mu.Unlock()
	h.dispatcherWG.Wait()
	h.mu.Lock()
	for _, e := range h.events {
		tensor.PutVector(e.m.Data)
	}
	h.events = nil
	h.mu.Unlock()
	for _, ch := range h.inboxes {
		close(ch)
	}
	return nil
}

// Endpoint is the per-rank view of a simulated Hub. It implements
// comm.Endpoint; like the inproc transport, closing any endpoint closes the
// whole world (the collective shutdown of an MPI job).
type Endpoint struct {
	hub  *Hub
	rank int
}

// Rank returns the endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the number of ranks in the simulated world.
func (e *Endpoint) Size() int { return e.hub.size }

// Send schedules delivery of m to dest under the link's latency model.
func (e *Endpoint) Send(dest int, m comm.Message) error { return e.hub.send(e.rank, dest, m) }

// Inbox returns the stream of messages dispatched to this rank.
func (e *Endpoint) Inbox() <-chan comm.Message { return e.hub.inboxes[e.rank] }

// Close closes the entire simulated world.
func (e *Endpoint) Close() error { return e.hub.Close() }

// AdvanceCompute advances this rank's virtual clock by one compute-skew
// draw (see Hub.AdvanceCompute).
func (e *Endpoint) AdvanceCompute() time.Duration { return e.hub.AdvanceCompute(e.rank) }

// NewWorld builds a hub for size ranks and returns one ready-to-use
// Communicator per rank, mirroring transport.NewInprocWorld. Closing any one
// communicator closes all.
func NewWorld(size int, cfg Config) []*comm.Communicator {
	hub := NewHub(size, cfg)
	world := make([]*comm.Communicator, size)
	for r := 0; r < size; r++ {
		world[r] = comm.NewCommunicator(hub.Endpoint(r))
	}
	return world
}
