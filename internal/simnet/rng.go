package simnet

// Deterministic randomness for the simulator: every entity that needs random
// draws — a link's latency, a rank's compute skew, a sweep's per-step wire
// jitter — owns a private SplitMix64 stream whose seed is derived from one
// root seed plus the entity's identity. Two runs with the same root seed make
// bit-identical draws in every stream, regardless of how goroutines
// interleave, because no stream is ever shared between entities.
//
// SplitMix64 is the same generator internal/partial uses for initiator
// selection and internal/faults for per-link fault decisions, so the whole
// deterministic axis of the repository speaks one PRNG dialect.

// Stream is a SplitMix64 pseudo-random stream. The zero value is a valid
// stream seeded with 0; NewStream seeds explicitly. Not safe for concurrent
// use — an entity's stream belongs to the goroutine simulating that entity.
type Stream struct {
	state uint64
}

// NewStream returns a stream producing the SplitMix64 sequence for seed.
func NewStream(seed uint64) *Stream { return &Stream{state: seed} }

// Uint64 returns the next value of the stream.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns the next value uniformly distributed in [0, 1), using the
// top 53 bits (the float64 mantissa width) of the next Uint64.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Int63n returns the next value uniformly distributed in [0, n); n must be
// positive. The tiny modulo bias (< 2^-63 per draw at simulator magnitudes)
// is irrelevant for latency modelling and costs no rejection loop.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("simnet: Int63n on non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// DeriveSeed folds an entity identity into the root seed, producing the seed
// for that entity's private stream. Identities are small structured tuples —
// (kindLink, src, dst), (kindSkew, rank) — mixed one component at a time
// through the SplitMix64 finalizer, so streams for distinct entities are
// statistically independent and stable across runs.
func DeriveSeed(root uint64, ids ...uint64) uint64 {
	h := root
	for _, id := range ids {
		h = mix64(h ^ (id+1)*0x9e3779b97f4a7c15)
	}
	return h
}

// mix64 is the SplitMix64 finalizer (identical to internal/partial's
// splitmix64 helper, duplicated to keep the packages dependency-free).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Seed-derivation domains, the first id passed to DeriveSeed so link streams
// can never collide with skew streams even when their remaining ids match.
// Exported so internal/simnet/sweep draws from the very same per-rank skew
// streams the Hub uses for a given root seed.
const (
	DomainLink uint64 = 1 // per directed link latency: (DomainLink, src, dst)
	DomainSkew uint64 = 2 // per rank compute skew: (DomainSkew, rank)
	DomainWire uint64 = 3 // sweep per-step collective wire draws: (DomainWire, stream)
)
