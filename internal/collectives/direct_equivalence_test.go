package collectives_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// plainEndpoint strips every optional capability from an endpoint by
// interface embedding: the struct satisfies comm.Endpoint and nothing else,
// so a communicator built over it takes only the classic paths — inbox demux
// instead of direct delivery, per-pair ring relays instead of broadcast
// segments, retained copies instead of borrowed sends. Wrapping every rank of
// a shared-ring hub yields a world that moves the same bytes over the same
// rings but exercises none of the fast paths, which is exactly the baseline
// the equivalence tests below compare against.
type plainEndpoint struct{ comm.Endpoint }

// newPlainShmWorld builds a shared-ring world whose communicators see only
// the bare comm.Endpoint surface (see plainEndpoint).
func newPlainShmWorld(p int) []*comm.Communicator {
	hub := transport.NewShmHub(p)
	world := make([]*comm.Communicator, p)
	for r := 0; r < p; r++ {
		world[r] = comm.NewCommunicator(plainEndpoint{hub.Endpoint(r)})
	}
	return world
}

// runWorld drives body on every rank of a prebuilt world, fails the test on
// any rank error, and closes the world afterwards.
func runWorld(t *testing.T, world []*comm.Communicator, body func(c *comm.Communicator) error) {
	t.Helper()
	defer func() {
		for _, c := range world {
			c.Close()
		}
	}()
	p := len(world)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(world[r])
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("collective did not complete (deadlock)")
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestAllreduceDirectMatchesDemux: an allreduce over the full fast path —
// direct delivery from the poll loop plus the broadcast-segment allgather
// with zero-copy block aliasing — must produce results bit-for-bit identical
// to the same allreduce over the classic demux + ring-relay paths on the same
// transport. The size sweep crosses every routing boundary: tiny fused
// chunks, chunks below and above the alias threshold, a non-divisible
// element count (unequal chunk bounds), and a chunk past the segment bound
// that must fall back to the segmented unfused path on both worlds.
func TestAllreduceDirectMatchesDemux(t *testing.T) {
	algos := []struct {
		name string
		algo collectives.Algorithm
	}{
		{"ring", collectives.AlgoRing},
		{"recursive-doubling", collectives.AlgoRecursiveDoubling},
	}
	for _, p := range []int{3, 4} {
		ns := []int{
			p + 3,                                 // tiny fused chunks, far below the alias threshold
			4096,                                  // mid-size, still copied out of the segment
			collectives.DefaultSegmentElems * p,   // max fused chunk: broadcast publish + zero-copy alias
			collectives.DefaultSegmentElems*p - 7, // non-divisible: unequal chunk bounds over the segment
			4*collectives.DefaultSegmentElems + 5, // chunk past the segment bound: segmented fallback
		}
		for _, n := range ns {
			for _, ac := range algos {
				p, n, ac := p, n, ac
				t.Run(fmt.Sprintf("%s/p%d_n%d", ac.name, p, n), func(t *testing.T) {
					run := func(world []*comm.Communicator) []tensor.Vector {
						results := make([]tensor.Vector, p)
						runWorld(t, world, func(c *comm.Communicator) error {
							data := makeContribution(c.Rank(), n)
							if err := collectives.Allreduce(c, data, collectives.OpSum, ac.algo); err != nil {
								return err
							}
							results[c.Rank()] = data
							return nil
						})
						return results
					}
					demux := run(newPlainShmWorld(p))
					direct := run(transport.NewShmWorld(p))
					for r := 0; r < p; r++ {
						for i := range demux[r] {
							if demux[r][i] != direct[r][i] {
								t.Fatalf("rank %d elem %d: demux %v != direct %v (fast path diverged)",
									r, i, demux[r][i], direct[r][i])
							}
						}
					}
				})
			}
		}
	}
}

// TestBroadcastDirectMatchesDemux: the broadcast collective's segment path
// (root publishes once, every peer receives the same block, large peers alias
// it zero-copy) must leave every rank holding exactly the root's bytes, and
// must agree bit-for-bit with the classic hop-by-hop broadcast over demuxed
// rings. Roots at both ends cover the rank-rotation arithmetic; 64Ki elements
// puts the payload over the alias threshold, 64 under it.
func TestBroadcastDirectMatchesDemux(t *testing.T) {
	for _, p := range []int{3, 4} {
		for _, n := range []int{64, 1 << 16} {
			for _, root := range []int{0, p - 1} {
				p, n, root := p, n, root
				t.Run(fmt.Sprintf("p%d_n%d_root%d", p, n, root), func(t *testing.T) {
					run := func(world []*comm.Communicator) []tensor.Vector {
						results := make([]tensor.Vector, p)
						runWorld(t, world, func(c *comm.Communicator) error {
							data := makeContribution(root, n) // root's payload everywhere; non-roots get overwritten
							if c.Rank() != root {
								for i := range data {
									data[i] = -1 // poison: broadcast must overwrite every element
								}
							}
							if err := collectives.Broadcast(c, root, data); err != nil {
								return err
							}
							results[c.Rank()] = data
							return nil
						})
						return results
					}
					want := makeContribution(root, n)
					demux := run(newPlainShmWorld(p))
					direct := run(transport.NewShmWorld(p))
					for r := 0; r < p; r++ {
						for i := range want {
							if direct[r][i] != want[i] {
								t.Fatalf("rank %d elem %d: direct broadcast %v, want root's %v", r, i, direct[r][i], want[i])
							}
							if demux[r][i] != direct[r][i] {
								t.Fatalf("rank %d elem %d: demux %v != direct %v", r, i, demux[r][i], direct[r][i])
							}
						}
					}
				})
			}
		}
	}
}
