package collectives_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// runSPMD runs body concurrently on every rank of a fresh in-process world
// and fails the test on error or timeout.
func runSPMD(t *testing.T, p int, body func(c *comm.Communicator) error) {
	t.Helper()
	world := transport.NewInprocWorld(p)
	defer world[0].Close()
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(world[r])
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("collective did not complete (deadlock)")
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// expectedSum computes the element-wise sum of the per-rank test vectors used
// by makeContribution.
func makeContribution(rank, n int) tensor.Vector {
	v := tensor.NewVector(n)
	for i := range v {
		v[i] = float64(rank+1) * float64(i+1)
	}
	return v
}

func expectedSum(p, n int) tensor.Vector {
	want := tensor.NewVector(n)
	for r := 0; r < p; r++ {
		want.Add(makeContribution(r, n))
	}
	return want
}

func testAllreduceCorrect(t *testing.T, algo collectives.Algorithm, sizes []int, lengths []int) {
	t.Helper()
	for _, p := range sizes {
		for _, n := range lengths {
			p, n := p, n
			t.Run(fmt.Sprintf("p%d_n%d", p, n), func(t *testing.T) {
				want := expectedSum(p, n)
				var mu sync.Mutex
				results := make(map[int]tensor.Vector)
				runSPMD(t, p, func(c *comm.Communicator) error {
					data := makeContribution(c.Rank(), n)
					if err := collectives.Allreduce(c, data, collectives.OpSum, algo); err != nil {
						return err
					}
					mu.Lock()
					results[c.Rank()] = data
					mu.Unlock()
					return nil
				})
				for r := 0; r < p; r++ {
					if !results[r].AllClose(want, 1e-9) {
						t.Fatalf("rank %d: wrong allreduce result", r)
					}
				}
			})
		}
	}
}

func TestAllreduceRecursiveDoubling(t *testing.T) {
	testAllreduceCorrect(t, collectives.AlgoRecursiveDoubling, []int{1, 2, 3, 4, 5, 6, 7, 8, 16}, []int{1, 7, 64})
}

func TestAllreduceRing(t *testing.T) {
	testAllreduceCorrect(t, collectives.AlgoRing, []int{1, 2, 3, 4, 5, 8}, []int{8, 65, 128})
}

func TestAllreduceRabenseifner(t *testing.T) {
	testAllreduceCorrect(t, collectives.AlgoRabenseifner, []int{1, 2, 3, 4, 5, 6, 8, 16}, []int{16, 63, 257})
}

func TestAllreduceAuto(t *testing.T) {
	testAllreduceCorrect(t, collectives.AlgoAuto, []int{4, 8}, []int{16, 8192})
}

func TestAllreduceUnknownAlgorithm(t *testing.T) {
	runSPMD(t, 1, func(c *comm.Communicator) error {
		err := collectives.Allreduce(c, tensor.Vector{1}, collectives.OpSum, collectives.Algorithm(42))
		if err == nil {
			return fmt.Errorf("expected error for unknown algorithm")
		}
		return nil
	})
}

func TestAllreduceMaxAndMin(t *testing.T) {
	const p = 5
	var mu sync.Mutex
	maxResults := make(map[int]tensor.Vector)
	minResults := make(map[int]tensor.Vector)
	runSPMD(t, p, func(c *comm.Communicator) error {
		maxData := tensor.Vector{float64(c.Rank()), float64(-c.Rank()), 3}
		if err := collectives.Allreduce(c, maxData, collectives.OpMax, collectives.AlgoRecursiveDoubling); err != nil {
			return err
		}
		minData := tensor.Vector{float64(c.Rank()), float64(-c.Rank()), 3}
		if err := collectives.Allreduce(c, minData, collectives.OpMin, collectives.AlgoRecursiveDoubling); err != nil {
			return err
		}
		mu.Lock()
		maxResults[c.Rank()] = maxData
		minResults[c.Rank()] = minData
		mu.Unlock()
		return nil
	})
	for r := 0; r < p; r++ {
		if !maxResults[r].Equal(tensor.Vector{4, 0, 3}) {
			t.Fatalf("rank %d max result %v", r, maxResults[r])
		}
		if !minResults[r].Equal(tensor.Vector{0, -4, 3}) {
			t.Fatalf("rank %d min result %v", r, minResults[r])
		}
	}
}

func TestReduceOpApplyAndString(t *testing.T) {
	a := tensor.Vector{1, 5}
	collectives.OpSum.Apply(a, tensor.Vector{2, 2})
	if !a.Equal(tensor.Vector{3, 7}) {
		t.Fatalf("sum apply: %v", a)
	}
	collectives.OpMax.Apply(a, tensor.Vector{10, 0})
	if !a.Equal(tensor.Vector{10, 7}) {
		t.Fatalf("max apply: %v", a)
	}
	collectives.OpMin.Apply(a, tensor.Vector{2, 100})
	if !a.Equal(tensor.Vector{2, 7}) {
		t.Fatalf("min apply: %v", a)
	}
	for _, op := range []collectives.ReduceOp{collectives.OpSum, collectives.OpMax, collectives.OpMin, collectives.ReduceOp(9)} {
		if op.String() == "" {
			t.Fatal("empty op name")
		}
	}
}

func TestBroadcastAllRoots(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < p; root++ {
			p, root := p, root
			t.Run(fmt.Sprintf("p%d_root%d", p, root), func(t *testing.T) {
				var mu sync.Mutex
				results := make(map[int]tensor.Vector)
				runSPMD(t, p, func(c *comm.Communicator) error {
					data := tensor.NewVector(5)
					if c.Rank() == root {
						data.CopyFrom(tensor.Vector{1, 2, 3, 4, 5})
					}
					if err := collectives.Broadcast(c, root, data); err != nil {
						return err
					}
					mu.Lock()
					results[c.Rank()] = data
					mu.Unlock()
					return nil
				})
				for r := 0; r < p; r++ {
					if !results[r].Equal(tensor.Vector{1, 2, 3, 4, 5}) {
						t.Fatalf("rank %d did not receive broadcast: %v", r, results[r])
					}
				}
			})
		}
	}
}

func TestBroadcastInvalidRoot(t *testing.T) {
	runSPMD(t, 2, func(c *comm.Communicator) error {
		if err := collectives.Broadcast(c, 7, tensor.Vector{1}); err == nil {
			return fmt.Errorf("expected error for invalid root")
		}
		return nil
	})
}

func TestReduceToRoot(t *testing.T) {
	const p = 6
	const n = 4
	want := expectedSum(p, n)
	var mu sync.Mutex
	results := make(map[int]tensor.Vector)
	runSPMD(t, p, func(c *comm.Communicator) error {
		data := makeContribution(c.Rank(), n)
		if err := collectives.Reduce(c, 2, data, collectives.OpSum); err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = data
		mu.Unlock()
		return nil
	})
	if !results[2].AllClose(want, 1e-9) {
		t.Fatalf("root result %v, want %v", results[2], want)
	}
	// Non-root buffers must be untouched.
	if !results[0].Equal(makeContribution(0, n)) {
		t.Fatalf("non-root buffer modified: %v", results[0])
	}
}

func TestReduceInvalidRoot(t *testing.T) {
	runSPMD(t, 2, func(c *comm.Communicator) error {
		if err := collectives.Reduce(c, -1, tensor.Vector{1}, collectives.OpSum); err == nil {
			return fmt.Errorf("expected error")
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			var mu sync.Mutex
			results := make(map[int]tensor.Vector)
			runSPMD(t, p, func(c *comm.Communicator) error {
				contrib := tensor.Vector{float64(c.Rank()), float64(c.Rank() * 10)}
				out, err := collectives.Allgather(c, contrib)
				if err != nil {
					return err
				}
				mu.Lock()
				results[c.Rank()] = out
				mu.Unlock()
				return nil
			})
			want := tensor.NewVector(2 * p)
			for r := 0; r < p; r++ {
				want[2*r] = float64(r)
				want[2*r+1] = float64(r * 10)
			}
			for r := 0; r < p; r++ {
				if !results[r].Equal(want) {
					t.Fatalf("rank %d allgather %v, want %v", r, results[r], want)
				}
			}
		})
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 8
	var before, after [p]time.Time
	runSPMD(t, p, func(c *comm.Communicator) error {
		// Stagger arrivals so the barrier has real work to do.
		time.Sleep(time.Duration(c.Rank()) * 5 * time.Millisecond)
		before[c.Rank()] = time.Now()
		if err := collectives.Barrier(c); err != nil {
			return err
		}
		after[c.Rank()] = time.Now()
		return nil
	})
	// No rank may leave the barrier before the last rank entered it.
	lastEnter := before[0]
	for _, b := range before {
		if b.After(lastEnter) {
			lastEnter = b
		}
	}
	for r, a := range after {
		if a.Before(lastEnter) {
			t.Fatalf("rank %d left the barrier %v before the last rank entered", r, lastEnter.Sub(a))
		}
	}
}

func TestConsecutiveAllreducesDoNotInterfere(t *testing.T) {
	const p = 4
	const rounds = 20
	var mu sync.Mutex
	results := make(map[int][]float64)
	runSPMD(t, p, func(c *comm.Communicator) error {
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		var got []float64
		for round := 0; round < rounds; round++ {
			data := tensor.Vector{float64(round*10 + c.Rank())}
			// Random per-rank jitter so ranks enter successive collectives in
			// different orders.
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
			if err := collectives.Allreduce(c, data, collectives.OpSum, collectives.AlgoRecursiveDoubling); err != nil {
				return err
			}
			got = append(got, data[0])
		}
		mu.Lock()
		results[c.Rank()] = got
		mu.Unlock()
		return nil
	})
	for round := 0; round < rounds; round++ {
		want := 0.0
		for r := 0; r < p; r++ {
			want += float64(round*10 + r)
		}
		for r := 0; r < p; r++ {
			if results[r][round] != want {
				t.Fatalf("round %d rank %d = %v, want %v (cross-round interference)", round, r, results[r][round], want)
			}
		}
	}
}

// Property: all three allreduce algorithms agree with a locally computed sum
// for random sizes and payloads.
func TestPropAllreduceAlgorithmsAgree(t *testing.T) {
	f := func(pRaw, nRaw uint8, seed int64) bool {
		p := int(pRaw%6) + 1
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		contribs := make([]tensor.Vector, p)
		want := tensor.NewVector(n)
		for r := 0; r < p; r++ {
			contribs[r] = tensor.NewVector(n)
			contribs[r].Randomize(rng, 10)
			want.Add(contribs[r])
		}
		for _, algo := range []collectives.Algorithm{collectives.AlgoRecursiveDoubling, collectives.AlgoRing, collectives.AlgoRabenseifner} {
			world := transport.NewInprocWorld(p)
			ok := true
			var wg sync.WaitGroup
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					data := contribs[r].Clone()
					if err := collectives.Allreduce(world[r], data, collectives.OpSum, algo); err != nil {
						ok = false
						return
					}
					if !data.AllClose(want, 1e-6) {
						ok = false
					}
				}(r)
			}
			wg.Wait()
			world[0].Close()
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// testOpAllreduce runs one allreduce with the given op/algo/config on p ranks
// over random data and compares every rank's result against the locally
// computed reference.
func testOpAllreduce(t *testing.T, p, n int, op collectives.ReduceOp, algo collectives.Algorithm, cfg collectives.Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(97*p + n)))
	contribs := make([]tensor.Vector, p)
	for r := range contribs {
		contribs[r] = tensor.NewVector(n)
		contribs[r].Randomize(rng, 10)
	}
	want := contribs[0].Clone()
	for r := 1; r < p; r++ {
		op.Apply(want, contribs[r])
	}
	var mu sync.Mutex
	results := make(map[int]tensor.Vector)
	runSPMD(t, p, func(c *comm.Communicator) error {
		data := contribs[c.Rank()].Clone()
		if err := collectives.AllreduceWith(c, data, op, algo, cfg, nil); err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = data
		mu.Unlock()
		return nil
	})
	tol := 1e-9
	if op != collectives.OpSum {
		tol = 0 // max/min never round: results must be exact
	}
	for r := 0; r < p; r++ {
		if !results[r].AllClose(want, tol) {
			t.Fatalf("rank %d: wrong %v result (algo %v, cfg %+v)", r, op, algo, cfg)
		}
	}
}

// TestAllreduceOpsAllAlgorithms covers OpMax and OpMin (and OpSum for
// completeness) across every algorithm, on power-of-two and folded world
// sizes, both unsegmented and with a tiny segment size that forces the
// pipelined multi-segment path.
func TestAllreduceOpsAllAlgorithms(t *testing.T) {
	algos := []collectives.Algorithm{
		collectives.AlgoRecursiveDoubling,
		collectives.AlgoRing,
		collectives.AlgoRabenseifner,
		collectives.AlgoAuto,
	}
	ops := []collectives.ReduceOp{collectives.OpSum, collectives.OpMax, collectives.OpMin}
	for _, algo := range algos {
		for _, op := range ops {
			for _, p := range []int{3, 4} {
				for _, cfg := range []collectives.Config{{}, {SegmentElems: 13}} {
					algo, op, p, cfg := algo, op, p, cfg
					name := fmt.Sprintf("%v/%v/p%d/seg%d", algo, op, p, cfg.SegmentElems)
					t.Run(name, func(t *testing.T) {
						testOpAllreduce(t, p, 257, op, algo, cfg)
					})
				}
			}
		}
	}
}

// TestAllreduceSegmentSizes drives the pipelined ring and Rabenseifner
// through a spread of segment sizes — including sizes that do not divide the
// chunk evenly and the segmentation-disabled setting — and checks the results
// agree with the unsegmented run bit-for-bit (segmentation must not change
// the reduction order).
func TestAllreduceSegmentSizes(t *testing.T) {
	const p, n = 4, 1 << 12
	for _, algo := range []collectives.Algorithm{collectives.AlgoRing, collectives.AlgoRabenseifner} {
		algo := algo
		t.Run(fmt.Sprint(algo), func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			contribs := make([]tensor.Vector, p)
			for r := range contribs {
				contribs[r] = tensor.NewVector(n)
				contribs[r].Randomize(rng, 1)
			}
			run := func(seg int) map[int]tensor.Vector {
				var mu sync.Mutex
				results := make(map[int]tensor.Vector)
				runSPMD(t, p, func(c *comm.Communicator) error {
					data := contribs[c.Rank()].Clone()
					err := collectives.AllreduceWith(c, data, collectives.OpSum, algo, collectives.Config{SegmentElems: seg}, nil)
					if err != nil {
						return err
					}
					mu.Lock()
					results[c.Rank()] = data
					mu.Unlock()
					return nil
				})
				return results
			}
			baseline := run(-1) // segmentation disabled
			for _, seg := range []int{7, 64, 100, 1024, n} {
				got := run(seg)
				for r := 0; r < p; r++ {
					if !got[r].Equal(baseline[r]) {
						t.Fatalf("seg=%d rank %d: segmented result differs from unsegmented", seg, r)
					}
				}
			}
		})
	}
}

// TestSegmentedAllreduceLargeVectors exercises the default segmentation on
// vectors big enough to pipeline for real (several segments per exchange).
func TestSegmentedAllreduceLargeVectors(t *testing.T) {
	if testing.Short() {
		t.Skip("large-vector allreduce in -short mode")
	}
	const p = 4
	n := 3*collectives.DefaultSegmentElems + 1017
	for _, algo := range []collectives.Algorithm{collectives.AlgoRing, collectives.AlgoRabenseifner, collectives.AlgoAuto} {
		testOpAllreduce(t, p, n, collectives.OpSum, algo, collectives.Config{})
	}
}
