// Package collectives implements the synchronous collective operations the
// paper uses as its baseline (§3, §7): allreduce with three classic
// algorithms (recursive doubling, ring, and Rabenseifner's reduce-scatter +
// allgather), broadcast, reduce, allgather, and barrier.
//
// All operations are SPMD: every rank of the communicator must call the same
// sequence of collectives with compatible arguments. A collective call does
// not return on any rank before every rank has entered it (that is the
// synchronization the paper's partial collectives relax).
//
// Every operation has a *Cancel variant taking a cancel channel (typically a
// context's Done channel) that aborts blocked receives with comm.ErrCanceled
// instead of hanging when a peer never joins. A canceled collective leaves the
// communicator mid-protocol; the only safe follow-up is closing it.
package collectives

import (
	"errors"
	"fmt"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// ErrRankUnreachable is wrapped by every collective error caused by a peer
// that is dead or unreachable (a crashed process, a partitioned link, a
// connection whose read loop died). The synchronous collectives cannot
// complete without every rank, so instead of blocking forever they surface
// this typed error as soon as the comm layer marks a peer down — either
// because the transport reported the failure or because a Config.PeerDeadline
// expired. Use errors.Is(err, ErrRankUnreachable); the underlying
// comm.PeerDownError (with the rank and root cause) remains in the chain.
var ErrRankUnreachable = errors.New("collectives: rank unreachable")

// wrapUnreachable converts a comm-layer peer failure into the package's typed
// error surface, preserving the cause chain.
func wrapUnreachable(err error) error {
	if err != nil && errors.Is(err, comm.ErrPeerDown) {
		return fmt.Errorf("%w: %w", ErrRankUnreachable, err)
	}
	return err
}

// tagBase is the private tag namespace of this package. All collective
// traffic uses tags in [tagBase, tagBase+tagSpan) so it cannot collide with
// the partial-collective engine or application point-to-point messages.
const (
	tagBase = 1 << 20
	tagSpan = 1 << 10

	tagRecursiveDoubling = tagBase + 0
	tagRingReduce        = tagBase + 64
	tagRingGather        = tagBase + 128
	tagBroadcast         = tagBase + 192
	tagReduce            = tagBase + 256
	tagBarrier           = tagBase + 320
	tagAllgather         = tagBase + 384
	tagFold              = tagBase + 448
	tagScatterReduce     = tagBase + 512
	tagAllgatherRab      = tagBase + 576
	tagRingBcast         = tagBase + 640
	tagBcastDirect       = tagBase + 704
)

// bcastWorld reports whether this rank can reach every peer of the world with
// one comm.SendBroadcastCopy of up to maxBytes — the gate for replacing a
// relay or tree protocol with direct publication over the transport's
// broadcast segment. The decision is SPMD-consistent without agreement
// traffic: group membership is symmetric (either the whole world shares one
// segment hub, in which case every rank's group covers all its peers, or some
// rank is outside it, in which case every rank's group is short), the budget
// is a hub-wide constant, and maxBytes derives from the collective's SPMD
// arguments. Ranks whose endpoints hide the capability (fault-injection
// wrappers, plain-endpoint worlds) see a nil group and keep the classic path
// — wrapping only some ranks of one world would break the consistency and is
// not supported.
func bcastWorld(c *comm.Communicator, maxBytes int) bool {
	g := c.BroadcastGroup()
	return len(g) == c.Size()-1 && maxBytes <= c.BroadcastBudget()
}

// ReduceOp identifies the element-wise combination applied by reductions.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// Apply combines incoming into local element-wise according to the operator.
// All three operators route through the tuned kernel layer in internal/tensor
// (unrolled loops, parallel above tensor.ParallelThreshold).
func (op ReduceOp) Apply(local, incoming tensor.Vector) {
	switch op {
	case OpSum:
		tensor.AddVec(local, incoming)
	case OpMax:
		tensor.MaxVec(local, incoming)
	case OpMin:
		tensor.MinVec(local, incoming)
	default:
		panic(fmt.Sprintf("collectives: unknown reduce op %d", int(op)))
	}
}

// ApplyInto combines local and incoming element-wise into dst, which may be
// transport memory (a reserved ring span) rather than either operand. Same
// kernels, ordering, and NaN convention as Apply, so fused and in-place
// reductions are bit-for-bit identical.
func (op ReduceOp) ApplyInto(dst, local, incoming tensor.Vector) {
	switch op {
	case OpSum:
		tensor.AddInto(dst, local, incoming)
	case OpMax:
		tensor.MaxInto(dst, local, incoming)
	case OpMin:
		tensor.MinInto(dst, local, incoming)
	default:
		panic(fmt.Sprintf("collectives: unknown reduce op %d", int(op)))
	}
}

// String returns the operator name.
func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Algorithm selects the allreduce implementation.
type Algorithm int

// Available allreduce algorithms.
const (
	// AlgoAuto picks recursive doubling for small vectors and Rabenseifner's
	// algorithm for large ones, mirroring production MPI libraries.
	AlgoAuto Algorithm = iota
	AlgoRecursiveDoubling
	AlgoRing
	AlgoRabenseifner
)

// autoThreshold is the element count above which AlgoAuto switches from the
// latency-optimal recursive doubling to the bandwidth-optimal Rabenseifner
// algorithm.
const autoThreshold = 4096

// autoRingThreshold is the element count at which AlgoAuto switches from
// Rabenseifner to the pipelined ring: at large sizes the ring's perfectly
// uniform segment stream keeps the pipeline (and the wire) busiest.
const autoRingThreshold = 32768

// DefaultSegmentElems is the default pipeline segment size: payload ranges
// larger than this are split into segments so that one segment's reduction
// overlaps the next segment's receive and the previous segment's send. 16Ki
// float64s (128 KiB) is large enough to amortize per-message overhead and
// small enough to overlap meaningfully at the sizes that matter (>= 512 KiB).
const DefaultSegmentElems = 16 * 1024

// pipelineWindow is how many segments a rank keeps in flight toward a peer
// before its first receive completes: double-buffering. Each in-flight
// segment occupies one pool lease, so the window bounds the steady-state
// working set while keeping the wire busy during reduction.
const pipelineWindow = 2

// Config carries the tunables of the algorithm implementations. The zero
// value selects the defaults. Like the algorithm and the operator, the
// configuration is SPMD state: every rank of a collective must use the same
// values (segmentation determines the message stream each peer expects, and
// the tag offset determines which stream a message belongs to).
type Config struct {
	// SegmentElems is the pipeline segment size in elements. Zero selects
	// DefaultSegmentElems; a negative value disables segmentation (one
	// message per hop, the pre-pipelining behaviour).
	SegmentElems int
	// TagOffset shifts every tag the collective uses by a fixed amount,
	// placing the whole operation in a private tag block. Concurrent
	// allreduces over one communicator — the bucket streams of an overlapped
	// gradient exchange — each use a distinct offset (BucketStreamTagOffset)
	// so their message streams never collide. Zero is the default block,
	// shared with the non-bucketed collectives.
	TagOffset int
	// PeerDeadline bounds how long a collective receive may block on one
	// peer: past the deadline the peer is marked down on the communicator and
	// the collective returns an error wrapping ErrRankUnreachable instead of
	// hanging on a rank that died. The deadline is a failure detector, not a
	// latency bound — choose it far above legitimate skew, because a peer it
	// fires on is treated as permanently failed by the communicator. Zero
	// (the default) disables it; receives from peers already marked down
	// still fail fast.
	PeerDeadline time.Duration
}

// env builds the per-operation environment. The per-receive deadline carries
// a hop allowance of the communicator size: detection latency accumulates
// once per serial hop (a ring has size-1 of them; a live peer's send at hop k
// can be delayed by its own deadline waits at earlier hops), and without the
// slack the detection of one dead rank would cascade into falsely suspecting
// live ones. Every collective in this package must build its env here so the
// formula stays in one place.
func (cfg Config) env(c *comm.Communicator, cancel <-chan struct{}) env {
	return env{c: c, cancel: cancel, seg: cfg.segmentElems(), off: cfg.TagOffset,
		deadline: cfg.PeerDeadline * time.Duration(c.Size())}
}

func (cfg Config) segmentElems() int {
	switch {
	case cfg.SegmentElems > 0:
		return cfg.SegmentElems
	case cfg.SegmentElems < 0:
		return int(^uint(0) >> 1) // effectively unsegmented
	default:
		return DefaultSegmentElems
	}
}

// MaxBucketStreams is the number of disjoint tag blocks available for
// concurrent bucket streams. The blocks occupy
// [tagBase, tagBase + MaxBucketStreams*tagSpan), which stays far below the
// partial-collective namespace at 2^24.
const MaxBucketStreams = 64

// BucketStreamTagOffset returns the Config.TagOffset of bucket stream i.
// Stream 0 is the default tag block (offset 0), shared with non-bucketed
// collectives; callers that interleave bucketed and plain collectives on one
// communicator must issue them in the same order on every rank (per-(source,
// tag) FIFO then keeps the streams matched).
func BucketStreamTagOffset(i int) int {
	if i < 0 || i >= MaxBucketStreams {
		panic(fmt.Sprintf("collectives: bucket stream %d out of range [0,%d)", i, MaxBucketStreams))
	}
	return i * tagSpan
}

// BucketStreamTagRange returns the [lo, hi) tag interval covering every
// bucket-stream block, for comm.DiscardTagRange hygiene after an abandoned
// (canceled) bucketed step.
func BucketStreamTagRange() (lo, hi int) {
	return tagBase, tagBase + MaxBucketStreams*tagSpan
}

// env bundles the communicator with the cancel channel and the resolved
// segment size so the algorithm implementations stay free of cancellation and
// configuration plumbing at every call site.
//
// Buffer discipline (DESIGN.md, "Buffer ownership & pooling"): every vector
// returned by recv or sendRecv is a pool lease; the algorithms reduce or copy
// it into the caller-owned data buffer in place and release it immediately
// with release. Outgoing payloads always borrow the caller's buffer (sendCopy
// / sendRecv snapshot into a pooled buffer internally), because data is owned
// by the application for the whole collective.
type env struct {
	c        *comm.Communicator
	cancel   <-chan struct{}
	seg      int
	off      int           // tag offset of this collective's tag block (Config.TagOffset)
	deadline time.Duration // per-peer failure-detector deadline (Config.PeerDeadline)
}

// tag places a package tag constant into this collective's tag block.
func (e env) tag(t int) int { return t + e.off }

func (e env) recv(source, tag int) (tensor.Vector, comm.Status, error) {
	v, st, err := e.c.RecvTimeout(source, tag, e.cancel, e.deadline)
	return v, st, wrapUnreachable(err)
}

func (e env) sendRecv(dest, sendTag int, data tensor.Vector, source, recvTag int) (tensor.Vector, comm.Status, error) {
	v, st, err := e.c.SendRecvTimeout(dest, sendTag, data, source, recvTag, e.cancel, e.deadline)
	return v, st, wrapUnreachable(err)
}

// sendCopy borrows data and sends it, surfacing a dead destination as
// ErrRankUnreachable.
func (e env) sendCopy(dest, tag int, data tensor.Vector) error {
	return wrapUnreachable(e.c.SendCopy(dest, tag, data))
}

func (e env) release(v tensor.Vector) { comm.Release(v) }

// sendFrom sends a frame produced in place by fill(dst, a, b) (comm.SendFrom:
// straight into the ring span on a fill-capable transport, staged through one
// pool lease elsewhere), surfacing a dead destination as ErrRankUnreachable.
func (e env) sendFrom(dest, tag int, a, b tensor.Vector, fill func(dst, a, b tensor.Vector)) error {
	return wrapUnreachable(e.c.SendFrom(dest, tag, a, b, fill))
}

// exchangeSegmented performs one pipelined exchange: it streams send to dest
// in segments of at most e.seg elements while receiving the peer's same-tag
// stream from source into recvInto — reducing each incoming segment with op
// when reduce is true, copying it otherwise. Segment k's reduction overlaps
// segment k+1's receive and the next outgoing segment's send; at most
// pipelineWindow outgoing segments are in flight ahead of the receive stream,
// double-buffered through the vector pool. With a nil cancel channel the
// steady state allocates nothing; a cancelable call pays one overlapped send
// (goroutine + request) per outgoing segment — the price of staying
// responsive to cancellation on a stalled peer, and the same mechanism the
// pre-pipelining code paid once per chunk exchange.
//
// Both sides must segment identically (same e.seg — an SPMD configuration),
// because the receiver walks recvInto by the lengths of the segments the
// sender produced. All segments of one exchange share one tag: the comm layer
// guarantees per-(source, tag) FIFO order, so offsets advance in send order.
//
// When both directions fit in a single segment the exchange degenerates to
// the classic combined sendRecv, which also keeps the cancel-overlapped send
// of SendRecvCancel for small payloads. On the multi-segment path,
// cancellation is honored at every receive and — through sendSeg's
// SendCopyCancel — at every send, so a frozen peer whose socket stops
// draining cannot wedge a cancel-aware collective.
func (e env) exchangeSegmented(dest, source, tag int, send, recvInto tensor.Vector, op ReduceOp, reduce bool) error {
	if len(send) <= e.seg && len(recvInto) <= e.seg {
		incoming, _, err := e.sendRecv(dest, tag, send, source, tag)
		if err != nil {
			return err
		}
		if reduce {
			op.Apply(recvInto, incoming)
		} else {
			recvInto.CopyFrom(incoming)
		}
		e.release(incoming)
		return nil
	}
	sendOff := 0
	for i := 0; i < pipelineWindow && sendOff < len(send); i++ {
		hi := min(sendOff+e.seg, len(send))
		if err := e.sendSeg(dest, tag, send[sendOff:hi]); err != nil {
			return err
		}
		sendOff = hi
	}
	recvOff := 0
	for recvOff < len(recvInto) {
		incoming, _, err := e.recv(source, tag)
		if err != nil {
			return err
		}
		// Refill the window before reducing, so the wire carries the next
		// segment while this one is folded in.
		if sendOff < len(send) {
			hi := min(sendOff+e.seg, len(send))
			if err := e.sendSeg(dest, tag, send[sendOff:hi]); err != nil {
				e.release(incoming)
				return err
			}
			sendOff = hi
		}
		if recvOff+len(incoming) > len(recvInto) {
			e.release(incoming)
			return fmt.Errorf("collectives: segmented exchange from rank %d overflows receive range (%d + %d > %d); mismatched segment configuration?",
				source, recvOff, len(incoming), len(recvInto))
		}
		if reduce {
			op.Apply(recvInto[recvOff:recvOff+len(incoming)], incoming)
		} else {
			recvInto[recvOff : recvOff+len(incoming)].CopyFrom(incoming)
		}
		recvOff += len(incoming)
		e.release(incoming)
	}
	for sendOff < len(send) {
		hi := min(sendOff+e.seg, len(send))
		if err := e.sendSeg(dest, tag, send[sendOff:hi]); err != nil {
			return err
		}
		sendOff = hi
	}
	return nil
}

// sendSeg sends one outgoing segment. Without a cancel channel the send runs
// inline and allocation-free; with one it is cancel-overlapped (SendCopyCancel)
// so a stalled peer cannot block a cancelable collective indefinitely.
func (e env) sendSeg(dest, tag int, seg tensor.Vector) error {
	if e.cancel == nil {
		return wrapUnreachable(e.c.SendCopy(dest, tag, seg))
	}
	return wrapUnreachable(e.c.SendCopyCancel(dest, tag, seg, e.cancel))
}

// Allreduce reduces data element-wise across all ranks with op and leaves the
// identical result in data on every rank. The operation is synchronous: it
// cannot complete before the slowest rank joins.
func Allreduce(c *comm.Communicator, data tensor.Vector, op ReduceOp, algo Algorithm) error {
	return AllreduceCancel(c, data, op, algo, nil)
}

// AllreduceCancel behaves like Allreduce but aborts blocked receives with
// comm.ErrCanceled when cancel is closed.
func AllreduceCancel(c *comm.Communicator, data tensor.Vector, op ReduceOp, algo Algorithm, cancel <-chan struct{}) error {
	return AllreduceWith(c, data, op, algo, Config{}, cancel)
}

// AllreduceWith is the fully configurable allreduce: algorithm, pipeline
// segment size, and cancellation. Every rank must pass the same op, algo, and
// cfg (SPMD).
func AllreduceWith(c *comm.Communicator, data tensor.Vector, op ReduceOp, algo Algorithm, cfg Config, cancel <-chan struct{}) error {
	e := cfg.env(c, cancel)
	switch algo {
	case AlgoRecursiveDoubling:
		return allreduceRecursiveDoubling(e, data, op)
	case AlgoRing:
		return allreduceRing(e, data, op)
	case AlgoRabenseifner:
		return allreduceRabenseifner(e, data, op)
	case AlgoAuto:
		switch {
		case len(data) <= autoThreshold || c.Size() < 4:
			return allreduceRecursiveDoubling(e, data, op)
		case len(data) >= autoRingThreshold:
			return allreduceRing(e, data, op)
		default:
			return allreduceRabenseifner(e, data, op)
		}
	default:
		return fmt.Errorf("collectives: unknown algorithm %d", int(algo))
	}
}

// allreduceRecursiveDoubling implements the O(log P) latency algorithm with
// the standard fold for non-power-of-two process counts.
func allreduceRecursiveDoubling(e env, data tensor.Vector, op ReduceOp) error {
	c := e.c
	rank, size := c.Rank(), c.Size()
	if size == 1 {
		return nil
	}
	pof2 := largestPowerOfTwo(size)
	rem := size - pof2

	inDoubling := true
	doublingRank := rank
	switch {
	case rank < 2*rem && rank%2 == 0:
		// sendCopy: data is still needed to receive the final result below.
		if err := e.sendCopy(rank+1, e.tag(tagFold), data); err != nil {
			return err
		}
		inDoubling = false
	case rank < 2*rem && rank%2 == 1:
		incoming, _, err := e.recv(rank-1, e.tag(tagFold))
		if err != nil {
			return err
		}
		op.Apply(data, incoming)
		e.release(incoming)
		doublingRank = rank / 2
	default:
		doublingRank = rank - rem
	}

	if inDoubling {
		step := 0
		for d := 1; d < pof2; d *= 2 {
			peer := doublingToRank(doublingRank^d, rem)
			incoming, _, err := e.sendRecv(peer, e.tag(tagRecursiveDoubling+step), data, peer, e.tag(tagRecursiveDoubling+step))
			if err != nil {
				return err
			}
			op.Apply(data, incoming)
			e.release(incoming)
			step++
		}
	}

	// Post phase: odd folded ranks return the result to their even partners.
	switch {
	case rank < 2*rem && rank%2 == 1:
		return e.sendCopy(rank-1, e.tag(tagFold+1), data)
	case rank < 2*rem && rank%2 == 0:
		result, _, err := e.recv(rank+1, e.tag(tagFold+1))
		if err != nil {
			return err
		}
		data.CopyFrom(result)
		e.release(result)
	}
	return nil
}

// allreduceRing implements the bandwidth-optimal ring allreduce
// (reduce-scatter around the ring followed by allgather around the ring).
// Chunk boundaries are computed with ChunkBounds instead of materializing a
// []Vector of chunk headers, keeping the steady-state round allocation-free.
// Each per-step chunk exchange is pipelined: chunks larger than the segment
// size stream in segments, so reducing segment k overlaps receiving segment
// k+1 and sending the next outgoing segment (see exchangeSegmented).
func allreduceRing(e env, data tensor.Vector, op ReduceOp) error {
	rank, size := e.c.Rank(), e.c.Size()
	if size == 1 {
		return nil
	}
	n := len(data)
	if e.cancel == nil && n >= size {
		if lo, hi := tensor.ChunkBounds(n, size, 0); hi-lo <= e.seg {
			return allreduceRingFused(e, data, op)
		}
	}
	next := (rank + 1) % size
	prev := (rank - 1 + size) % size

	// Reduce-scatter: after size-1 steps, chunk (rank+1) mod size holds the
	// full reduction on this rank.
	for step := 0; step < size-1; step++ {
		sendIdx := (rank - step + size) % size
		recvIdx := (rank - step - 1 + size) % size
		sendLo, sendHi := tensor.ChunkBounds(n, size, sendIdx)
		recvLo, recvHi := tensor.ChunkBounds(n, size, recvIdx)
		if err := e.exchangeSegmented(next, prev, e.tag(tagRingReduce+step), data[sendLo:sendHi], data[recvLo:recvHi], op, true); err != nil {
			return err
		}
	}

	// Allgather: circulate the fully reduced chunks.
	for step := 0; step < size-1; step++ {
		sendIdx := (rank - step + 1 + size) % size
		recvIdx := (rank - step + size) % size
		sendLo, sendHi := tensor.ChunkBounds(n, size, sendIdx)
		recvLo, recvHi := tensor.ChunkBounds(n, size, recvIdx)
		if err := e.exchangeSegmented(next, prev, e.tag(tagRingGather+step), data[sendLo:sendHi], data[recvLo:recvHi], op, false); err != nil {
			return err
		}
	}
	return nil
}

// intoFill returns the three-address kernel matching op, as a static
// function value (no closure, no allocation) for the fill-send path.
func (op ReduceOp) intoFill() func(dst, a, b tensor.Vector) {
	switch op {
	case OpSum:
		return tensor.AddInto
	case OpMax:
		return tensor.MaxInto
	case OpMin:
		return tensor.MinInto
	default:
		panic(fmt.Sprintf("collectives: unknown reduce op %d", int(op)))
	}
}

// allreduceRingFused is allreduceRing with the per-hop staging copies fused
// into the transport encode. In the reduce-scatter, each forwarded partial
// sum is computed by op's three-address kernel directly inside the outgoing
// frame (comm.SendFrom — the reserved ring span on the shared-ring transport,
// one pool stage elsewhere) instead of accumulating in data and copying out
// afterwards; the local accumulation is skipped entirely for chunks whose
// partials this rank only relays. In the allgather, each forwarded chunk is
// written into the result buffer and the outgoing frame in one pass (Copy2).
// The wire stream — tags, chunk order, payload values — is identical to
// allreduceRing's single-segment path, so fused and unfused ranks
// interoperate, and the sum order matches Apply bit for bit.
//
// Chosen only for cancel-free calls whose chunks fit one segment; the
// cancelable and multi-segment regimes keep exchangeSegmented's overlapped
// sends and pipelining.
func allreduceRingFused(e env, data tensor.Vector, op ReduceOp) error {
	rank, size := e.c.Rank(), e.c.Size()
	n := len(data)
	next := (rank + 1) % size
	prev := (rank - 1 + size) % size
	fill := op.intoFill()

	// Reduce-scatter: each hop forwards local-chunk + incoming straight into
	// the ring; only the last incoming chunk — the one this rank owns fully
	// reduced — is folded into data.
	sendLo, sendHi := tensor.ChunkBounds(n, size, rank)
	if err := e.sendCopy(next, e.tag(tagRingReduce), data[sendLo:sendHi]); err != nil {
		return err
	}
	for step := 0; step < size-1; step++ {
		idx := (rank - step - 1 + size) % size
		lo, hi := tensor.ChunkBounds(n, size, idx)
		incoming, _, err := e.recv(prev, e.tag(tagRingReduce+step))
		if err != nil {
			return err
		}
		if len(incoming) != hi-lo {
			e.release(incoming)
			return fmt.Errorf("collectives: ring chunk %d from rank %d carries %d elements, want %d; mismatched segment configuration?",
				idx, prev, len(incoming), hi-lo)
		}
		if step < size-2 {
			err = e.sendFrom(next, e.tag(tagRingReduce+step+1), data[lo:hi], incoming, fill)
		} else {
			op.Apply(data[lo:hi], incoming)
		}
		e.release(incoming)
		if err != nil {
			return err
		}
	}

	// Allgather: every rank now owns one fully reduced chunk, and every other
	// rank needs exactly that chunk — a one-to-many pattern. Over a broadcast
	// segment covering the world, each rank publishes its chunk once and
	// copies the peers' chunks straight out of their segments: one encode and
	// P-1 zero-copy reads replace the P-1 serial relay hops (and their
	// re-encodes) of the ring walk below.
	maxChunk := 0
	for i := 0; i < size; i++ {
		if lo, hi := tensor.ChunkBounds(n, size, i); hi-lo > maxChunk {
			maxChunk = hi - lo
		}
	}
	if bcastWorld(e.c, 8*maxChunk) {
		return allgatherOwnedBcast(e, data)
	}

	// Ring walk: circulate the fully reduced chunks, mirroring each forwarded
	// one into the result buffer and the outgoing frame in a single pass.
	sendLo, sendHi = tensor.ChunkBounds(n, size, next)
	if err := e.sendCopy(next, e.tag(tagRingGather), data[sendLo:sendHi]); err != nil {
		return err
	}
	for step := 0; step < size-1; step++ {
		idx := (rank - step + size) % size
		lo, hi := tensor.ChunkBounds(n, size, idx)
		incoming, _, err := e.recv(prev, e.tag(tagRingGather+step))
		if err != nil {
			return err
		}
		if len(incoming) != hi-lo {
			e.release(incoming)
			return fmt.Errorf("collectives: ring chunk %d from rank %d carries %d elements, want %d; mismatched segment configuration?",
				idx, prev, len(incoming), hi-lo)
		}
		if step < size-2 {
			err = e.sendFrom(next, e.tag(tagRingGather+step+1), data[lo:hi], incoming, tensor.Copy2)
		} else {
			data[lo:hi].CopyFrom(incoming)
		}
		e.release(incoming)
		if err != nil {
			return err
		}
	}
	return nil
}

// allgatherOwnedBcast completes a ring allreduce's allgather over the
// transport's broadcast segments: each rank publishes the chunk it owns
// fully reduced after the reduce-scatter — chunk (rank+1) mod size — exactly
// once, then copies every peer's owned chunk into place as the publications
// arrive. The values written are the same fully reduced chunks the ring walk
// relays, so the result is bit-identical; only the transport pattern differs,
// which is why the whole world must take the same path (bcastWorld). The
// receive loop walks peers in ring-upstream order, matching the order the
// relay walk would have delivered the chunks.
func allgatherOwnedBcast(e env, data tensor.Vector) error {
	rank, size := e.c.Rank(), e.c.Size()
	n := len(data)
	lo, hi := tensor.ChunkBounds(n, size, (rank+1)%size)
	if err := wrapUnreachable(e.c.SendBroadcastCopy(e.tag(tagRingBcast), data[lo:hi])); err != nil {
		return err
	}
	for step := 1; step < size; step++ {
		p := (rank - step + size) % size
		idx := (p + 1) % size
		lo, hi := tensor.ChunkBounds(n, size, idx)
		incoming, _, err := e.recv(p, e.tag(tagRingBcast))
		if err != nil {
			return err
		}
		if len(incoming) != hi-lo {
			e.release(incoming)
			return fmt.Errorf("collectives: broadcast chunk %d from rank %d carries %d elements, want %d",
				idx, p, len(incoming), hi-lo)
		}
		data[lo:hi].CopyFrom(incoming)
		e.release(incoming)
	}
	return nil
}

// allreduceRabenseifner implements Rabenseifner's algorithm: a recursive
// halving reduce-scatter followed by a recursive doubling allgather. For
// non-power-of-two sizes it first folds the extra ranks as in recursive
// doubling.
func allreduceRabenseifner(e env, data tensor.Vector, op ReduceOp) error {
	c := e.c
	rank, size := c.Rank(), c.Size()
	if size == 1 {
		return nil
	}
	pof2 := largestPowerOfTwo(size)
	rem := size - pof2

	inGroup := true
	groupRank := rank
	switch {
	case rank < 2*rem && rank%2 == 0:
		// sendCopy: data is still needed to receive the final result below.
		if err := e.sendCopy(rank+1, e.tag(tagFold+2), data); err != nil {
			return err
		}
		inGroup = false
	case rank < 2*rem && rank%2 == 1:
		incoming, _, err := e.recv(rank-1, e.tag(tagFold+2))
		if err != nil {
			return err
		}
		op.Apply(data, incoming)
		e.release(incoming)
		groupRank = rank / 2
	default:
		groupRank = rank - rem
	}

	if inGroup {
		// Recursive halving reduce-scatter. Track the [lo, hi) element range
		// this rank is responsible for. Each exchange is pipelined: the halves
		// stream in segments so reduction overlaps the wire (exchangeSegmented).
		lo, hi := 0, len(data)
		step := 0
		for d := pof2 / 2; d >= 1; d /= 2 {
			peerGroup := groupRank ^ d
			peer := doublingToRank(peerGroup, rem)
			mid := lo + (hi-lo)/2
			var sendLo, sendHi, keepLo, keepHi int
			if groupRank&d == 0 {
				// Keep the lower half, send the upper half.
				sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
			} else {
				sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
			}
			if err := e.exchangeSegmented(peer, peer, e.tag(tagScatterReduce+step), data[sendLo:sendHi], data[keepLo:keepHi], op, true); err != nil {
				return err
			}
			lo, hi = keepLo, keepHi
			step++
		}

		// Recursive doubling allgather reverses the halving. The two partners
		// at distance d own adjacent ranges (whose sizes may differ by the
		// floor/ceil split); the peer's exact range is recomputed with
		// rabOwnedRange so the incoming segment stream has a known destination
		// before the first segment arrives.
		agStep := 0
		for d := 1; d < pof2; d *= 2 {
			peerGroup := groupRank ^ d
			peer := doublingToRank(peerGroup, rem)
			peerLo, peerHi := rabOwnedRange(len(data), pof2, peerGroup, d)
			if err := e.exchangeSegmented(peer, peer, e.tag(tagAllgatherRab+agStep), data[lo:hi], data[peerLo:peerHi], op, false); err != nil {
				return err
			}
			if peerLo < lo {
				lo = peerLo
			}
			if peerHi > hi {
				hi = peerHi
			}
			agStep++
		}
	}

	// Post phase for folded-out ranks.
	switch {
	case rank < 2*rem && rank%2 == 1:
		return e.sendCopy(rank-1, e.tag(tagFold+3), data)
	case rank < 2*rem && rank%2 == 0:
		result, _, err := e.recv(rank+1, e.tag(tagFold+3))
		if err != nil {
			return err
		}
		data.CopyFrom(result)
		e.release(result)
	}
	return nil
}

// Broadcast copies data from the root rank to every other rank using a
// binomial tree. All ranks must pass a buffer of the same length.
func Broadcast(c *comm.Communicator, root int, data tensor.Vector) error {
	return BroadcastCancel(c, root, data, nil)
}

// BroadcastCancel behaves like Broadcast but aborts blocked receives with
// comm.ErrCanceled when cancel is closed.
func BroadcastCancel(c *comm.Communicator, root int, data tensor.Vector, cancel <-chan struct{}) error {
	return BroadcastWith(c, root, data, Config{}, cancel)
}

// BroadcastWith adds the Config tunables — in particular Config.PeerDeadline,
// so a broadcast blocked on a dead parent aborts with ErrRankUnreachable
// instead of hanging.
func BroadcastWith(c *comm.Communicator, root int, data tensor.Vector, cfg Config, cancel <-chan struct{}) error {
	e := cfg.env(c, cancel)
	rank, size := c.Rank(), c.Size()
	if size == 1 {
		return nil
	}
	if root < 0 || root >= size {
		return fmt.Errorf("collectives: broadcast root %d out of range", root)
	}

	// Direct path: the root publishes once into its broadcast segment and
	// every rank reads it from there — one hop instead of a log-depth tree,
	// zero-copy above the transport's alias floor. A distinct tag keeps this
	// stream apart from the tree's relayed sends, so a communicator whose
	// broadcasts alternate between the two regimes (the payload budget gates
	// per call) never interleaves them on one (source, tag) stream.
	if bcastWorld(c, 8*len(data)) {
		if rank == root {
			return wrapUnreachable(c.SendBroadcastCopy(e.tag(tagBcastDirect), data))
		}
		incoming, _, err := e.recv(root, e.tag(tagBcastDirect))
		if err != nil {
			return err
		}
		if len(incoming) != len(data) {
			e.release(incoming)
			return fmt.Errorf("collectives: broadcast from root %d carries %d elements, want %d",
				root, len(incoming), len(data))
		}
		data.CopyFrom(incoming)
		e.release(incoming)
		return nil
	}
	rel := (rank - root + size) % size

	// Receive from parent (unless root).
	if rel != 0 {
		mask := 1
		for mask < size {
			if rel&mask != 0 {
				parent := (rel - mask + root) % size
				incoming, _, err := e.recv(parent, e.tag(tagBroadcast))
				if err != nil {
					return err
				}
				data.CopyFrom(incoming)
				e.release(incoming)
				break
			}
			mask *= 2
		}
	}
	// Forward to children. SendCopy: data is the caller's buffer and the same
	// payload goes to every child.
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			break
		}
		childRel := rel + mask
		if childRel < size {
			child := (childRel + root) % size
			if err := e.sendCopy(child, e.tag(tagBroadcast), data); err != nil {
				return err
			}
		}
		mask *= 2
	}
	return nil
}

// Reduce combines data from all ranks onto the root with op; other ranks'
// buffers are left unchanged. It is implemented as an allreduce followed by
// discarding on non-roots, which is wasteful but simple; it is only used for
// small metric vectors in this repository.
func Reduce(c *comm.Communicator, root int, data tensor.Vector, op ReduceOp) error {
	return ReduceCancel(c, root, data, op, nil)
}

// ReduceCancel behaves like Reduce but aborts blocked receives with
// comm.ErrCanceled when cancel is closed.
func ReduceCancel(c *comm.Communicator, root int, data tensor.Vector, op ReduceOp, cancel <-chan struct{}) error {
	return ReduceWith(c, root, data, op, Config{}, cancel)
}

// ReduceWith adds the Config tunables (PeerDeadline: abort typed on a dead
// rank instead of hanging).
func ReduceWith(c *comm.Communicator, root int, data tensor.Vector, op ReduceOp, cfg Config, cancel <-chan struct{}) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("collectives: reduce root %d out of range", root)
	}
	scratch := tensor.GetVectorCopy(data)
	defer tensor.PutVector(scratch)
	if err := AllreduceWith(c, scratch, op, AlgoRecursiveDoubling, cfg, cancel); err != nil {
		return err
	}
	if c.Rank() == root {
		data.CopyFrom(scratch)
	}
	return nil
}

// Allgather concatenates each rank's contribution (all of identical length)
// into a vector of length size*len(contrib), ordered by rank, on every rank.
func Allgather(c *comm.Communicator, contrib tensor.Vector) (tensor.Vector, error) {
	return AllgatherCancel(c, contrib, nil)
}

// AllgatherCancel behaves like Allgather but aborts blocked receives with
// comm.ErrCanceled when cancel is closed.
func AllgatherCancel(c *comm.Communicator, contrib tensor.Vector, cancel <-chan struct{}) (tensor.Vector, error) {
	return AllgatherWith(c, contrib, Config{}, cancel)
}

// AllgatherWith adds the Config tunables (PeerDeadline: abort typed on a dead
// rank instead of hanging).
func AllgatherWith(c *comm.Communicator, contrib tensor.Vector, cfg Config, cancel <-chan struct{}) (tensor.Vector, error) {
	e := cfg.env(c, cancel)
	size := c.Size()
	rank := c.Rank()
	n := len(contrib)
	out := tensor.NewVector(size * n)
	out[rank*n : (rank+1)*n].CopyFrom(contrib)
	if size == 1 {
		return out, nil
	}
	// Ring allgather: size-1 steps, passing blocks around.
	next := (rank + 1) % size
	prev := (rank - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendIdx := (rank - step + size) % size
		recvIdx := (rank - step - 1 + size) % size
		incoming, _, err := e.sendRecv(next, e.tag(tagAllgather+step), out[sendIdx*n:(sendIdx+1)*n], prev, e.tag(tagAllgather+step))
		if err != nil {
			return nil, err
		}
		out[recvIdx*n : (recvIdx+1)*n].CopyFrom(incoming)
		e.release(incoming)
	}
	return out, nil
}

// Barrier blocks until every rank has entered it, using a dissemination
// barrier (log2(size) rounds of token exchange).
func Barrier(c *comm.Communicator) error {
	return BarrierCancel(c, nil)
}

// BarrierCancel behaves like Barrier but aborts blocked receives with
// comm.ErrCanceled when cancel is closed.
func BarrierCancel(c *comm.Communicator, cancel <-chan struct{}) error {
	return BarrierWith(c, Config{}, cancel)
}

// BarrierWith adds the Config tunables (PeerDeadline: a barrier blocked on a
// dead rank aborts with ErrRankUnreachable instead of hanging).
func BarrierWith(c *comm.Communicator, cfg Config, cancel <-chan struct{}) error {
	e := cfg.env(c, cancel)
	rank, size := c.Rank(), c.Size()
	if size == 1 {
		return nil
	}
	token := tensor.GetVectorZero(1)
	defer tensor.PutVector(token)
	// Dissemination barrier: log2(size) rounds.
	step := 0
	for d := 1; d < size; d *= 2 {
		to := (rank + d) % size
		from := (rank - d + size) % size
		in, _, err := e.sendRecv(to, e.tag(tagBarrier+step), token, from, e.tag(tagBarrier+step))
		if err != nil {
			return err
		}
		e.release(in)
		step++
	}
	return nil
}

// largestPowerOfTwo returns the largest power of two less than or equal to n.
func largestPowerOfTwo(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// rabOwnedRange returns the [lo, hi) element range a group rank owns after
// the recursive-halving splits at distances pof2/2 down to minD: at each
// distance d the range splits at its floor midpoint, the rank with bit d
// clear keeping the lower half. During the allgather, the range a rank owns
// before the merge at distance d is exactly rabOwnedRange(n, pof2, r, d).
func rabOwnedRange(n, pof2, groupRank, minD int) (int, int) {
	lo, hi := 0, n
	for d := pof2 / 2; d >= minD; d /= 2 {
		mid := lo + (hi-lo)/2
		if groupRank&d == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, hi
}

// doublingToRank maps a rank id within the folded power-of-two group back to
// the original communicator rank (inverse of the fold used for
// non-power-of-two sizes).
func doublingToRank(groupRank, rem int) int {
	if groupRank < rem {
		return groupRank*2 + 1
	}
	return groupRank + rem
}
