package collectives_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// TestAllreduceSurfacesRankUnreachable: with one rank marked down, every
// algorithm returns a typed ErrRankUnreachable from the ranks that depend on
// it instead of blocking — and the PeerDownError cause stays in the chain.
// The deadline matters even with the dead rank pre-marked: a live rank that
// aborts (because IT depended on the dead one) goes silent toward its own
// partners, and only the failure detector turns that silence into an error.
func TestAllreduceSurfacesRankUnreachable(t *testing.T) {
	algos := map[string]collectives.Algorithm{
		"recursive-doubling": collectives.AlgoRecursiveDoubling,
		"ring":               collectives.AlgoRing,
		"rabenseifner":       collectives.AlgoRabenseifner,
	}
	for name, algo := range algos {
		t.Run(name, func(t *testing.T) {
			const size = 4
			w := transport.NewInprocWorld(size)
			defer w[0].Close()
			// Rank 3 is dead; every live rank's detector already knows.
			for r := 0; r < size-1; r++ {
				w[r].MarkPeerDown(size-1, errors.New("dead"))
			}
			errs := make([]error, size-1)
			var wg sync.WaitGroup
			for r := 0; r < size-1; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					data := tensor.NewVector(64)
					errs[r] = collectives.AllreduceWith(w[r], data, collectives.OpSum, algo,
						collectives.Config{PeerDeadline: 100 * time.Millisecond}, nil)
				}(r)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("allreduce with a dead rank hung")
			}
			sawTyped := false
			for r, err := range errs {
				if err == nil {
					continue // a rank may legitimately finish its part before needing the dead peer
				}
				if !errors.Is(err, collectives.ErrRankUnreachable) {
					t.Errorf("rank %d err = %v, want ErrRankUnreachable in the chain", r, err)
				}
				if errors.Is(err, comm.ErrPeerDown) {
					sawTyped = true
				}
			}
			if !sawTyped {
				t.Error("no rank surfaced the underlying PeerDownError")
			}
		})
	}
}

// TestAllreduceDeadlineDetectsSilentRank: without prior marking, the
// Config.PeerDeadline failure detector suspects the absent rank and the
// collective aborts typed.
func TestAllreduceDeadlineDetectsSilentRank(t *testing.T) {
	const size = 2
	w := transport.NewInprocWorld(size)
	defer w[0].Close()
	data := tensor.NewVector(16)
	err := collectives.AllreduceWith(w[0], data, collectives.OpSum, collectives.AlgoRecursiveDoubling,
		collectives.Config{PeerDeadline: 30 * time.Millisecond}, nil)
	if !errors.Is(err, collectives.ErrRankUnreachable) {
		t.Fatalf("err = %v, want ErrRankUnreachable", err)
	}
	if !errors.Is(err, comm.ErrPeerDeadline) {
		t.Fatalf("err = %v, want ErrPeerDeadline as the cause", err)
	}
}
