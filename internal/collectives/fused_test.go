package collectives_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// runSPMDShm is runSPMD over the shared-ring transport, where the ring
// allreduce takes the fused fill-send path (reduce-scatter partials computed
// straight into the outgoing ring frame).
func runSPMDShm(t *testing.T, p int, body func(c *comm.Communicator) error) {
	t.Helper()
	world := transport.NewShmWorld(p)
	defer func() {
		for _, c := range world {
			c.Close()
		}
	}()
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(world[r])
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("collective did not complete (deadlock)")
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestAllreduceRingFusedMatchesUnfused: the fused ring allreduce (shared
// rings, single-segment regime) must produce results bit-for-bit identical to
// the unfused path (in-process transport, same algorithm) — the fill kernels
// combine operands in the same order op.Apply would, and the fused wire
// stream is the unfused one. Sizes cross the fused gate: n >= p with the
// per-rank chunk within one default segment, plus a chunk straddling the
// segment bound (> DefaultSegmentElems per chunk) that must fall back to the
// segmented unfused path and still agree.
func TestAllreduceRingFusedMatchesUnfused(t *testing.T) {
	ops := []struct {
		name string
		op   collectives.ReduceOp
	}{
		{"sum", collectives.OpSum},
		{"max", collectives.OpMax},
		{"min", collectives.OpMin},
	}
	for _, p := range []int{2, 3, 4, 5} {
		for _, n := range []int{p, 64, 1000, 4*collectives.DefaultSegmentElems + 5} {
			for _, o := range ops {
				p, n, o := p, n, o
				t.Run(fmt.Sprintf("p%d_n%d_%s", p, n, o.name), func(t *testing.T) {
					run := func(spmd func(*testing.T, int, func(c *comm.Communicator) error)) []tensor.Vector {
						results := make([]tensor.Vector, p)
						spmd(t, p, func(c *comm.Communicator) error {
							data := makeContribution(c.Rank(), n)
							if err := collectives.Allreduce(c, data, o.op, collectives.AlgoRing); err != nil {
								return err
							}
							results[c.Rank()] = data
							return nil
						})
						return results
					}
					unfused := run(runSPMD)
					fused := run(runSPMDShm)
					for r := 0; r < p; r++ {
						for i := range unfused[r] {
							if unfused[r][i] != fused[r][i] {
								t.Fatalf("rank %d elem %d: inproc %v != shm %v (fused path diverged)",
									r, i, unfused[r][i], fused[r][i])
							}
						}
					}
				})
			}
		}
	}
}
