package sched

import (
	"errors"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// TestPeerDownSkipCompletesChainWithoutContribution: a recv-reduce whose peer
// is down completes silently (buffer untouched) and fires its dependents, so
// the chain drains with the surviving contributions only.
func TestPeerDownSkipCompletesChainWithoutContribution(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()
	w[0].MarkPeerDown(1, errors.New("dead"))

	s := NewSchedule()
	buf := tensor.NewVector(2)
	buf.Fill(5)
	s.SetBuffer("b", buf)
	recv := s.AddRecvReduce(1, 7, "b", SumReduce, DepAnd)
	s.SetPeerDownPolicy(recv, PeerDownSkip)
	after := s.AddCompute(func(bufs map[string]tensor.Vector) { bufs["b"][0] += 1 }, DepAnd, recv)
	s.SetCompletionOps(after)

	ex, err := NewExecutor(w[0], s)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	if err := ex.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if buf[0] != 6 || buf[1] != 5 {
		t.Fatalf("buffer = %v: skip must leave the buffer unreduced and still fire dependents", buf)
	}
}

// TestPeerDownFailPropagates: the default policy surfaces the failure as an
// execution error — synchronous semantics.
func TestPeerDownFailPropagates(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()
	w[0].MarkPeerDown(1, errors.New("dead"))

	s := NewSchedule()
	s.SetBuffer("b", tensor.NewVector(1))
	s.AddRecv(1, 7, "b", DepAnd)
	ex, err := NewExecutor(w[0], s)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	if err := ex.Wait(); !errors.Is(err, comm.ErrPeerDown) {
		t.Fatalf("Wait = %v, want ErrPeerDown", err)
	}
}

// TestPeerDownHoldDoesNotActivateOrDependents: a held receive must not
// satisfy an OR dependency — a dead peer cannot spuriously activate a round.
func TestPeerDownHoldDoesNotActivateOrDependents(t *testing.T) {
	w := transport.NewInprocWorld(3)
	defer w[0].Close()
	w[0].MarkPeerDown(1, errors.New("dead"))

	s := NewSchedule()
	s.SetBuffer("b", tensor.NewVector(1))
	heldRecv := s.AddRecv(1, 7, "b", DepAnd)
	s.SetPeerDownPolicy(heldRecv, PeerDownHold)
	liveRecv := s.AddRecv(2, 7, "b", DepAnd)
	activated := s.AddNop(DepOr, heldRecv, liveRecv)
	fired := make(chan struct{})
	act := s.AddCompute(func(map[string]tensor.Vector) { close(fired) }, DepAnd, activated)
	s.SetCompletionOps(act)

	ex, err := NewExecutor(w[0], s)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	select {
	case <-fired:
		t.Fatal("held receive from a dead peer activated the OR dependency")
	case <-time.After(100 * time.Millisecond):
	}
	// The live path still activates.
	if err := w[2].Send(0, 7, tensor.GetVectorZero(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("live activation path blocked")
	}
	if err := ex.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestHeldOpObservesCommClose: a schedule whose only fired operations are
// held (every activation peer dead, round never activated) must still wind
// down when the communicator closes — Wait returns instead of hanging, the
// shutdown-liveness property the engine's leak-free close depends on.
func TestHeldOpObservesCommClose(t *testing.T) {
	w := transport.NewInprocWorld(2)
	w[0].MarkPeerDown(1, errors.New("dead"))

	s := NewSchedule()
	s.SetBuffer("b", tensor.NewVector(1))
	held := s.AddRecv(1, 7, "b", DepAnd)
	s.SetPeerDownPolicy(held, PeerDownHold)
	never := s.AddCompute(nil, DepAnd, held)
	s.SetCompletionOps(never)

	ex, err := NewExecutor(w[0], s)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	done := make(chan error, 1)
	go func() { done <- ex.Wait() }()
	time.Sleep(20 * time.Millisecond)
	w[0].Close()
	select {
	case err := <-done:
		if !errors.Is(err, comm.ErrClosed) {
			t.Fatalf("Wait = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("executor with only held operations did not observe the communicator closing")
	}
}

// TestScheduleDeadlineMarksDeadPeerAndSkips: end to end through the executor,
// a skip-policy receive with a schedule deadline suspects its silent peer,
// marks it down, and completes.
func TestScheduleDeadlineMarksDeadPeerAndSkips(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()

	s := NewSchedule()
	s.SetBuffer("b", tensor.NewVector(1))
	recv := s.AddRecvReduce(1, 7, "b", SumReduce, DepAnd)
	s.SetPeerDownPolicy(recv, PeerDownSkip)
	s.SetCompletionOps(recv)
	s.SetPeerDeadline(30 * time.Millisecond)

	ex, err := NewExecutor(w[0], s)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	if err := ex.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !w[0].PeerDown(1) {
		t.Fatal("silent peer not marked down by the schedule deadline")
	}
}

// TestSendToDownPeerSkips: a skip-policy send to a dead destination is
// dropped silently and the schedule still completes.
func TestSendToDownPeerSkips(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()
	w[0].MarkPeerDown(1, errors.New("dead"))

	s := NewSchedule()
	s.SetBuffer("b", tensor.NewVector(4))
	send := s.AddSend(1, 9, "b", DepAnd)
	s.SetPeerDownPolicy(send, PeerDownSkip)
	s.SetCompletionOps(send)
	ex, err := NewExecutor(w[0], s)
	if err != nil {
		t.Fatal(err)
	}
	// The send has no dependencies, so it needs a trigger-free start; fire it
	// by starting the executor (dependency-free non-NOPs fire at Start).
	ex.Start()
	if err := ex.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}
