package sched

import (
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

func TestOpKindString(t *testing.T) {
	for _, k := range []OpKind{OpNop, OpSend, OpRecv, OpRecvReduce, OpCompute} {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", k)
		}
	}
	if OpKind(99).String() == "" {
		t.Fatalf("unknown kind should still produce a string")
	}
}

func TestValidateRejectsBadDeps(t *testing.T) {
	s := NewSchedule()
	a := s.AddNop(DepAnd)
	s.AddCompute(nil, DepAnd, OpID(42))
	if err := s.Validate(); err == nil {
		t.Fatal("expected error for unknown dependency")
	}
	_ = a

	s2 := NewSchedule()
	op := s2.AddNop(DepAnd)
	s2.ops[op].Deps = []OpID{op}
	if err := s2.Validate(); err == nil {
		t.Fatal("expected error for self dependency")
	}

	s3 := NewSchedule()
	x := s3.AddNop(DepAnd)
	y := s3.AddNop(DepAnd, x)
	s3.ops[x].Deps = []OpID{y}
	if err := s3.Validate(); err == nil {
		t.Fatal("expected error for dependency cycle")
	}
}

func TestValidateAcceptsDAG(t *testing.T) {
	s := NewSchedule()
	a := s.AddNop(DepAnd)
	b := s.AddCompute(nil, DepAnd, a)
	s.AddCompute(nil, DepOr, a, b)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumOps() != 3 {
		t.Fatalf("NumOps = %d", s.NumOps())
	}
}

func TestComputeChainRunsInDependencyOrder(t *testing.T) {
	w := transport.NewInprocWorld(1)
	defer w[0].Close()

	s := NewSchedule()
	s.SetBuffer("x", tensor.Vector{1})
	start := s.AddNop(DepAnd)
	double := s.AddCompute(func(b map[string]tensor.Vector) { b["x"][0] *= 2 }, DepAnd, start)
	s.AddCompute(func(b map[string]tensor.Vector) { b["x"][0] += 3 }, DepAnd, double)

	ex, err := NewExecutor(w[0], s)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	if err := ex.Trigger(start); err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Buffer("x")[0]; got != 5 {
		t.Fatalf("x = %v, want 5 (order-dependent result)", got)
	}
}

func TestOrDependencyFiresOnFirst(t *testing.T) {
	w := transport.NewInprocWorld(1)
	defer w[0].Close()

	s := NewSchedule()
	s.SetBuffer("n", tensor.Vector{0})
	a := s.AddNop(DepAnd)
	b := s.AddNop(DepAnd)
	c := s.AddCompute(func(bufs map[string]tensor.Vector) { bufs["n"][0]++ }, DepOr, a, b)
	s.SetCompletionOps(c)

	ex, err := NewExecutor(w[0], s)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	if err := ex.Trigger(a); err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Buffer("n")[0]; got != 1 {
		t.Fatalf("compute ran %v times, want 1", got)
	}
	if ex.Fired(b) {
		t.Fatal("unrelated NOP b should not have fired")
	}
}

func TestConsumableComputeRunsOnce(t *testing.T) {
	w := transport.NewInprocWorld(1)
	defer w[0].Close()

	s := NewSchedule()
	s.SetBuffer("n", tensor.Vector{0})
	a := s.AddNop(DepAnd)
	b := s.AddNop(DepAnd)
	count := s.AddCompute(func(bufs map[string]tensor.Vector) { bufs["n"][0]++ }, DepOr, a, b)
	s.SetCompletionOps(count)

	ex, err := NewExecutor(w[0], s)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	// Both sources fire; the OR-dependent compute must still run exactly once.
	if err := ex.Trigger(a); err != nil {
		t.Fatal(err)
	}
	if err := ex.Trigger(b); err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Buffer("n")[0]; got != 1 {
		t.Fatalf("compute ran %v times, want 1", got)
	}
}

func TestTriggerTwiceIsIdempotent(t *testing.T) {
	w := transport.NewInprocWorld(1)
	defer w[0].Close()
	s := NewSchedule()
	s.SetBuffer("n", tensor.Vector{0})
	a := s.AddNop(DepAnd)
	s.AddCompute(func(bufs map[string]tensor.Vector) { bufs["n"][0]++ }, DepAnd, a)
	ex, _ := NewExecutor(w[0], s)
	ex.Start()
	if err := ex.Trigger(a); err != nil {
		t.Fatal(err)
	}
	if err := ex.Trigger(a); err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Buffer("n")[0]; got != 1 {
		t.Fatalf("compute ran %v times, want 1", got)
	}
}

func TestTriggerErrors(t *testing.T) {
	w := transport.NewInprocWorld(1)
	defer w[0].Close()
	s := NewSchedule()
	nop := s.AddNop(DepAnd)
	cmp := s.AddCompute(nil, DepAnd, nop)
	ex, _ := NewExecutor(w[0], s)
	if err := ex.Trigger(nop); err == nil {
		t.Fatal("expected error for Trigger before Start")
	}
	ex.Start()
	if err := ex.Trigger(cmp); err != ErrNotNop {
		t.Fatalf("err = %v, want ErrNotNop", err)
	}
	if err := ex.Trigger(OpID(99)); err == nil {
		t.Fatal("expected error for unknown op")
	}
	if err := ex.Trigger(nop); err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyScheduleCompletesImmediately(t *testing.T) {
	w := transport.NewInprocWorld(1)
	defer w[0].Close()
	ex, err := NewExecutor(w[0], NewSchedule())
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	done := make(chan error, 1)
	go func() { done <- ex.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("empty schedule did not complete")
	}
}

func TestCompletionOpsOutOfRange(t *testing.T) {
	w := transport.NewInprocWorld(1)
	defer w[0].Close()
	s := NewSchedule()
	s.AddNop(DepAnd)
	s.SetCompletionOps(OpID(7))
	if _, err := NewExecutor(w[0], s); err == nil {
		t.Fatal("expected error for out-of-range completion op")
	}
}

func TestExternalActivationViaRecv(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()

	// Rank 1 runs a schedule that starts when a message arrives from rank 0.
	s := NewSchedule()
	s.SetBuffer("in", tensor.NewVector(1))
	s.SetBuffer("out", tensor.NewVector(1))
	recv := s.AddRecv(0, 5, "in", DepAnd)
	done := s.AddCompute(func(b map[string]tensor.Vector) { b["out"][0] = b["in"][0] * 10 }, DepAnd, recv)
	s.SetCompletionOps(done)

	ex, err := NewExecutor(w[1], s)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	if err := w[0].Send(1, 5, tensor.Vector{7}); err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Buffer("out")[0]; got != 70 {
		t.Fatalf("out = %v, want 70", got)
	}
}

func TestSendSnapshotsBufferAtFireTime(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()

	s := NewSchedule()
	s.SetBuffer("d", tensor.Vector{1})
	start := s.AddNop(DepAnd)
	send := s.AddSend(1, 3, "d", DepAnd, start)
	// A compute that clobbers the buffer right after the send fires.
	s.AddCompute(func(b map[string]tensor.Vector) { b["d"][0] = 999 }, DepAnd, send)

	ex, _ := NewExecutor(w[0], s)
	ex.Start()
	if err := ex.Trigger(start); err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	data, _, err := w[1].Recv(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 1 {
		t.Fatalf("send payload = %v, want the value at fire time (1)", data[0])
	}
}

func TestRecvLengthMismatchIsError(t *testing.T) {
	w := transport.NewInprocWorld(2)
	defer w[0].Close()
	s := NewSchedule()
	s.SetBuffer("in", tensor.NewVector(2))
	recv := s.AddRecv(0, 1, "in", DepAnd)
	s.SetCompletionOps(recv)
	ex, _ := NewExecutor(w[1], s)
	ex.Start()
	if err := w[0].Send(1, 1, tensor.Vector{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestPersistentRunnerAdvancesRounds(t *testing.T) {
	w := transport.NewInprocWorld(1)
	defer w[0].Close()

	factory := func(round int) *Schedule {
		s := NewSchedule()
		s.SetBuffer("x", tensor.Vector{0})
		start := s.AddNop(DepAnd)
		s.AddCompute(func(b map[string]tensor.Vector) { b["x"][0] = float64(round) }, DepAnd, start)
		return s
	}
	r, err := NewPersistentRunner(w[0], factory)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for want := 0; want < 3; want++ {
		if r.Round() != want {
			t.Fatalf("Round() = %d, want %d", r.Round(), want)
		}
		ex, _ := r.Current()
		sched := mustTriggerStart(t, ex)
		s, err := r.Advance()
		if err != nil {
			t.Fatal(err)
		}
		_ = sched
		if got := s.Buffer("x")[0]; got != float64(want) {
			t.Fatalf("round %d result = %v", want, got)
		}
	}
}

// mustTriggerStart triggers the first NOP of the currently armed schedule.
func mustTriggerStart(t *testing.T, ex *Executor) *Schedule {
	t.Helper()
	for id, op := range ex.sched.ops {
		if op.Kind == OpNop && len(op.Deps) == 0 {
			if err := ex.Trigger(OpID(id)); err != nil {
				t.Fatal(err)
			}
			return ex.sched
		}
	}
	t.Fatal("no activation NOP found")
	return nil
}

func TestPersistentRunnerStop(t *testing.T) {
	w := transport.NewInprocWorld(1)
	defer w[0].Close()
	factory := func(round int) *Schedule {
		s := NewSchedule()
		s.AddNop(DepAnd)
		return s
	}
	r, err := NewPersistentRunner(w[0], factory)
	if err != nil {
		t.Fatal(err)
	}
	r.Stop()
	if _, err := r.Advance(); err == nil {
		t.Fatal("Advance after Stop should fail")
	}
}

// TestSendFiredByCompletionCascade reproduces the cascade in which the
// completion set is reached mid-sweep while the same dependent-firing sweep
// still has a send to fire: the cascade counter must defer the queue close
// until the sweep unwinds, so the send is delivered instead of panicking on a
// closed queue.
func TestSendFiredByCompletionCascade(t *testing.T) {
	world := transport.NewInprocWorld(1)
	defer world[0].Close()

	s := NewSchedule()
	s.SetBuffer("buf", tensor.Vector{42})
	x := s.AddNop(DepAnd)
	a := s.AddNop(DepAnd, x) // completion op, fires before the send below
	s.AddSend(0, 777, "buf", DepAnd, x)
	s.SetCompletionOps(a)

	ex, err := NewExecutor(world[0], s)
	if err != nil {
		t.Fatal(err)
	}
	ex.Start()
	if err := ex.Trigger(x); err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	data, _, err := world[0].Recv(0, 777)
	if err != nil || data[0] != 42 {
		t.Fatalf("send fired after completion was not delivered: %v %v", data, err)
	}
	comm.Release(data)
}
