// Package sched implements the communication-schedule engine described in
// §4.1 of the paper: a collective operation is expressed as a directed acyclic
// graph of operations (point-to-point sends and receives, local computations,
// and NOPs) connected by happens-before dependencies with AND or OR
// semantics.
//
// The engine supports the features partial collectives rely on:
//
//   - Consumable operations: an operation fires at most once even if its
//     dependencies are satisfied multiple times (needed when several
//     initiators activate the same solo collective).
//   - Internal and external activation: a schedule can be triggered by the
//     local application (Trigger on a NOP) or by the arrival of a message
//     (a Recv with no dependencies), whichever happens first.
//   - Asynchronous execution by library offloading (§4.3): Executor.Run
//     drives the schedule on background goroutines, so a slow application
//     thread still progresses the collective on behalf of faster peers.
//   - Persistent schedules (§4.1.1): RunPersistent re-instantiates a schedule
//     round after round without application intervention.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// OpKind identifies the type of a schedule operation.
type OpKind int

// The operation kinds defined by §4.1.1: point-to-point communication,
// computation, and non-operations used to build dependencies.
const (
	OpNop OpKind = iota
	OpSend
	OpRecv
	OpRecvReduce
	OpCompute
)

// String returns a human-readable name for the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpNop:
		return "nop"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpRecvReduce:
		return "recv-reduce"
	case OpCompute:
		return "compute"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// DepMode selects how an operation's dependencies combine.
type DepMode int

const (
	// DepAnd fires the operation after all dependencies complete.
	DepAnd DepMode = iota
	// DepOr fires the operation as soon as any one dependency completes.
	DepOr
)

// OpID identifies an operation within its schedule.
type OpID int

// PeerDownPolicy selects how a communication operation reacts when its peer
// is marked down on the communicator (comm.ErrPeerDown). The policies encode
// the partial-collective failure semantics: a dead rank is
// permanently-not-participating, so its data contributions are skipped and
// its activations simply never happen.
type PeerDownPolicy int

const (
	// PeerDownFail propagates the peer failure as an execution error — the
	// synchronous semantics, where every rank must participate. The default.
	PeerDownFail PeerDownPolicy = iota
	// PeerDownSkip completes the operation silently without transferring any
	// data: a receive skips its reduce/copy (the dead subtree contributes
	// nothing, and its activation flag resolves false), a send is dropped.
	// Dependents fire as if the operation had succeeded, so a reduction chain
	// continues past the dead peer with the surviving participant set.
	PeerDownSkip
	// PeerDownHold treats the failure as a message that will never arrive:
	// the operation neither completes nor errors, exactly like a receive
	// whose sender never fires. Used for external-activation receives — a
	// dead peer must not spuriously activate a round through an OR
	// dependency. Held operations must not be in the completion set; they are
	// abandoned when the schedule completes.
	PeerDownHold
)

// ReduceFunc combines an incoming payload into a local buffer (e.g. addition
// for allreduce-sum).
type ReduceFunc func(local, incoming tensor.Vector)

// SumReduce adds the incoming vector into the local buffer element-wise.
func SumReduce(local, incoming tensor.Vector) { local.Add(incoming) }

// MaxReduce keeps the element-wise maximum in the local buffer, routed
// through the tuned kernel layer.
func MaxReduce(local, incoming tensor.Vector) { tensor.MaxVec(local, incoming) }

// Op is one node of the schedule DAG. Fields are interpreted according to
// Kind; the zero values of unused fields are ignored.
type Op struct {
	ID   OpID
	Kind OpKind

	// Peer and Tag describe the communication partner for send/recv kinds.
	Peer int
	Tag  int

	// Buffer names the schedule buffer a send reads from or a receive writes
	// to. For OpRecvReduce the incoming payload is folded into the buffer
	// with Reduce.
	Buffer string
	Reduce ReduceFunc

	// Fn is the body of an OpCompute operation. It receives the schedule's
	// buffer table and may read or modify any buffer.
	Fn func(bufs map[string]tensor.Vector)

	// Deps lists the operations that must complete (per Mode) before this one
	// fires. An operation with no dependencies is eligible immediately when
	// the schedule starts, except NOPs, which only fire via Trigger or
	// dependencies.
	Deps []OpID
	Mode DepMode

	// OnPeerDown selects the operation's reaction to a dead peer (send/recv
	// kinds only). The zero value, PeerDownFail, preserves synchronous
	// semantics: the failure surfaces as an execution error.
	OnPeerDown PeerDownPolicy
}

// Schedule is a DAG of operations plus the named buffers they operate on.
// Build one with NewSchedule and the Add* methods, then execute it with an
// Executor.
type Schedule struct {
	ops          []*Op
	buffers      map[string]tensor.Vector
	completion   []OpID
	peerDeadline time.Duration
}

// SetPeerDeadline arms a per-peer deadline on the schedule's PeerDownSkip
// receives: a receive that waits longer than d marks its peer down on the
// communicator (see comm.RecvTimeout) and is then skipped, so a reduction
// chain cannot block forever on a rank that died mid-round. Operations with
// other policies are unaffected — in particular, activation receives
// (PeerDownHold) may legitimately wait arbitrarily long for a slow
// application and must not suspect their peers. Zero (the default) disables
// the deadline.
func (s *Schedule) SetPeerDeadline(d time.Duration) { s.peerDeadline = d }

// SetPeerDownPolicy overrides the policy of one operation. Intended for
// tests; the builders annotate their operations directly.
func (s *Schedule) SetPeerDownPolicy(id OpID, p PeerDownPolicy) { s.ops[id].OnPeerDown = p }

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule {
	return &Schedule{buffers: make(map[string]tensor.Vector)}
}

// SetCompletionOps designates the operations whose completion means the
// schedule has logically finished. Operations that have not fired by then —
// redundant activation receives, the internal-activation NOP of an externally
// activated schedule — are abandoned: pending receives are canceled and the
// executor's Wait returns. If never called, every operation must complete.
func (s *Schedule) SetCompletionOps(ids ...OpID) { s.completion = append([]OpID(nil), ids...) }

// SetBuffer registers (or replaces) a named buffer. Buffers are shared by
// reference: the caller and the schedule observe each other's writes, and the
// caller may keep slicing sub-views of v after registration — but the
// schedule owns the recycling: pool-leased buffers registered here are
// returned to the pool by ReleaseBuffers, never by the builder.
//
//eagersgd:takes-ownership
func (s *Schedule) SetBuffer(name string, v tensor.Vector) { s.buffers[name] = v }

// Buffer returns the named buffer, or nil if it was never registered.
func (s *Schedule) Buffer(name string) tensor.Vector { return s.buffers[name] }

// NumOps returns the number of operations added so far.
func (s *Schedule) NumOps() int { return len(s.ops) }

func (s *Schedule) add(op *Op) OpID {
	op.ID = OpID(len(s.ops))
	s.ops = append(s.ops, op)
	return op.ID
}

// AddNop adds a non-operation used purely as a dependency anchor (an
// activation point, typically).
func (s *Schedule) AddNop(mode DepMode, deps ...OpID) OpID {
	return s.add(&Op{Kind: OpNop, Mode: mode, Deps: deps})
}

// AddSend adds an operation that sends the current contents of buffer to peer
// with the given tag when it fires. The payload is snapshotted at fire time.
func (s *Schedule) AddSend(peer, tag int, buffer string, mode DepMode, deps ...OpID) OpID {
	return s.add(&Op{Kind: OpSend, Peer: peer, Tag: tag, Buffer: buffer, Mode: mode, Deps: deps})
}

// AddRecv adds an operation that receives a message from peer with the given
// tag into buffer (overwriting its contents).
func (s *Schedule) AddRecv(peer, tag int, buffer string, mode DepMode, deps ...OpID) OpID {
	return s.add(&Op{Kind: OpRecv, Peer: peer, Tag: tag, Buffer: buffer, Mode: mode, Deps: deps})
}

// AddRecvReduce adds an operation that receives a message from peer and folds
// it into buffer using reduce.
func (s *Schedule) AddRecvReduce(peer, tag int, buffer string, reduce ReduceFunc, mode DepMode, deps ...OpID) OpID {
	return s.add(&Op{Kind: OpRecvReduce, Peer: peer, Tag: tag, Buffer: buffer, Reduce: reduce, Mode: mode, Deps: deps})
}

// AddCompute adds a local computation over the schedule buffers.
func (s *Schedule) AddCompute(fn func(bufs map[string]tensor.Vector), mode DepMode, deps ...OpID) OpID {
	return s.add(&Op{Kind: OpCompute, Fn: fn, Mode: mode, Deps: deps})
}

// Validate checks that every dependency references an existing operation and
// that the dependency graph is acyclic.
func (s *Schedule) Validate() error {
	n := len(s.ops)
	for _, op := range s.ops {
		for _, d := range op.Deps {
			if int(d) < 0 || int(d) >= n {
				return fmt.Errorf("sched: op %d depends on unknown op %d", op.ID, d)
			}
			if d == op.ID {
				return fmt.Errorf("sched: op %d depends on itself", op.ID)
			}
		}
	}
	// Cycle detection via DFS coloring.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	var visit func(i int) error
	visit = func(i int) error {
		color[i] = gray
		for _, d := range s.ops[i].Deps {
			switch color[d] {
			case gray:
				return fmt.Errorf("sched: dependency cycle involving op %d", i)
			case white:
				if err := visit(int(d)); err != nil {
					return err
				}
			}
		}
		color[i] = black
		return nil
	}
	for i := 0; i < n; i++ {
		if color[i] == white {
			if err := visit(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// ErrNotNop is returned by Trigger when the target operation is not a NOP.
var ErrNotNop = errors.New("sched: Trigger target is not a NOP")

// Executor drives one schedule over a communicator. Executors are single-use:
// create one per schedule execution (PersistentRunner manages this for you).
type Executor struct {
	comm  *comm.Communicator
	sched *Schedule

	mu           sync.Mutex
	fired        []bool // operation has been started (consumable guard)
	completed    []bool
	err          error
	pending      int // completion ops not yet completed
	isCompl      []bool
	done         chan struct{}
	cancel       chan struct{}
	sendqs       map[int]chan sendItem // per-destination fired-send queues
	sendqsClosed bool
	cascade      int // depth of the in-progress completeLocked cascade
	doneClosed   bool
	started      bool
	wg           sync.WaitGroup
}

// sendItem is one fired OpSend: the operation plus its payload snapshot
// (taken at fire time, so later buffer writes cannot leak into the message).
type sendItem struct {
	op      *Op
	payload tensor.Vector
}

// NewExecutor prepares an executor for the schedule. The schedule must pass
// Validate.
func NewExecutor(c *comm.Communicator, s *Schedule) (*Executor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e := &Executor{
		comm:      c,
		sched:     s,
		fired:     make([]bool, len(s.ops)),
		completed: make([]bool, len(s.ops)),
		isCompl:   make([]bool, len(s.ops)),
		done:      make(chan struct{}),
		cancel:    make(chan struct{}),
	}
	// One queue (and, at Start, one sender goroutine) per distinct send
	// destination: sends to the same peer are serialized — reaching the
	// transport back to back, where the TCP write coalescer batches them —
	// while sends to different peers proceed independently, so one stalled
	// peer cannot block progress toward healthy ones. Each queue holds every
	// send the schedule can fire at that destination, so enqueueing under
	// e.mu never blocks.
	var counts map[int]int
	for _, op := range s.ops {
		if op.Kind != OpSend {
			continue
		}
		if counts == nil {
			counts = make(map[int]int)
		}
		counts[op.Peer]++
	}
	if counts != nil {
		e.sendqs = make(map[int]chan sendItem, len(counts))
		for peer, n := range counts {
			e.sendqs[peer] = make(chan sendItem, n)
		}
	}
	if len(s.completion) == 0 {
		for i := range e.isCompl {
			e.isCompl[i] = true
		}
		e.pending = len(s.ops)
	} else {
		for _, id := range s.completion {
			if int(id) < 0 || int(id) >= len(s.ops) {
				return nil, fmt.Errorf("sched: completion op %d out of range", id)
			}
			if !e.isCompl[id] {
				e.isCompl[id] = true
				e.pending++
			}
		}
	}
	return e, nil
}

// Start begins asynchronous execution: every non-NOP operation whose
// dependency set is already satisfied (in particular, operations with no
// dependencies) is fired. NOPs with no dependencies wait for Trigger, which
// is how internal activation is expressed.
func (e *Executor) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	// Shutdown watcher: a schedule may reach a state with no operation
	// observing the transport at all — a size-1 world's unactivated round has
	// no receives, and a round whose receives all returned held. If the
	// communicator closes then, nothing would ever complete and Wait would
	// hang forever; the watcher aborts the schedule instead. It is not part
	// of e.wg (it exits via e.done once the schedule finishes normally).
	go func() {
		select {
		case <-e.comm.Done():
			e.mu.Lock()
			if !e.doneClosed {
				if e.err == nil {
					e.err = comm.ErrClosed
				}
				e.closeDoneLocked()
				e.maybeCloseSendqsLocked()
			}
			e.mu.Unlock()
		case <-e.done:
		}
	}()
	for _, q := range e.sendqs {
		e.wg.Add(1)
		go e.sendLoop(q)
	}
	if e.pending == 0 {
		e.closeDoneLocked()
		e.maybeCloseSendqsLocked()
		return
	}
	for _, op := range e.sched.ops {
		if len(op.Deps) == 0 && op.Kind != OpNop {
			e.fireLocked(op)
		}
	}
}

// sendLoop drains one destination's fired sends in fire order and hands them
// to the communicator one after another. Same-destination sends therefore
// reach the transport back to back, where the TCP write coalescer batches
// them into one syscall — the syscall-per-segment cost pipelined collectives
// would otherwise pay — while sends to other destinations run on their own
// loops, so a peer that stopped draining its socket delays only its own
// stream, never the quorum forming among healthy ranks. The loop exits when
// the queue is closed (after the completion cascade settles), first writing
// whatever remains queued — peers may still need those messages.
func (e *Executor) sendLoop(q chan sendItem) {
	defer e.wg.Done()
	for it := range q {
		err := e.comm.Send(it.op.Peer, it.op.Tag, it.payload)
		if err != nil && it.op.OnPeerDown != PeerDownFail && errors.Is(err, comm.ErrPeerDown) {
			// The destination is dead and tolerated: the message is simply
			// lost, like any send to a crashed process. Complete silently so
			// the chain (and the round) can finish with the survivors.
			err = nil
		}
		e.mu.Lock()
		e.completeLocked(it.op, err)
		e.mu.Unlock()
	}
}

// Trigger fires a dependency-free NOP from the application thread — the
// internal activation of §4.1.1. Triggering an already-fired NOP is a no-op
// (the operation is consumable). Triggering a non-NOP returns ErrNotNop.
func (e *Executor) Trigger(id OpID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(id) < 0 || int(id) >= len(e.sched.ops) {
		return fmt.Errorf("sched: Trigger of unknown op %d", id)
	}
	op := e.sched.ops[id]
	if op.Kind != OpNop {
		return ErrNotNop
	}
	if !e.started {
		return errors.New("sched: Trigger before Start")
	}
	e.fireLocked(op)
	return nil
}

// Wait blocks until every operation has completed (or execution failed) and
// returns the first error encountered.
func (e *Executor) Wait() error {
	<-e.done
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Done returns a channel closed when the schedule has fully executed.
func (e *Executor) Done() <-chan struct{} { return e.done }

// depsSatisfied reports whether op's dependencies allow it to fire.
// Caller holds e.mu.
func (e *Executor) depsSatisfied(op *Op) bool {
	if len(op.Deps) == 0 {
		// Dependency-free NOPs fire only via Trigger; everything else fires
		// at Start.
		return op.Kind != OpNop
	}
	switch op.Mode {
	case DepOr:
		for _, d := range op.Deps {
			if e.completed[d] {
				return true
			}
		}
		return false
	default: // DepAnd
		for _, d := range op.Deps {
			if !e.completed[d] {
				return false
			}
		}
		return true
	}
}

// fireLocked starts op if it has not fired yet. Caller holds e.mu.
func (e *Executor) fireLocked(op *Op) {
	if e.fired[op.ID] {
		return // consumable: never execute twice
	}
	e.fired[op.ID] = true
	switch op.Kind {
	case OpNop:
		e.completeLocked(op, nil)
	case OpCompute:
		fn := op.Fn
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			var err error
			if fn != nil {
				fn(e.sched.buffers)
			}
			e.mu.Lock()
			e.completeLocked(op, err)
			e.mu.Unlock()
		}()
	case OpSend:
		// Snapshot the buffer into a pool lease at fire time; the destination
		// sender then passes ownership of the lease to Send, so the schedule
		// buffer remains free to be overwritten by subsequent operations. The
		// enqueue cannot block (the queue holds every send the schedule can
		// fire at this peer) and the queue is necessarily open: queues close
		// only after the completion cascade that fired the last send has
		// fully unwound (maybeCloseSendqsLocked).
		e.sendqs[op.Peer] <- sendItem{op: op, payload: tensor.GetVectorCopy(e.sched.buffers[op.Buffer])}
	case OpRecv, OpRecvReduce:
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			// Only PeerDownSkip receives arm the failure-detector deadline:
			// they run post-activation, where progress is engine-bound, so a
			// peer silent past the deadline is dead, not merely slow. The
			// deadline carries a chain-depth allowance: a live peer's send can
			// legitimately be delayed by its own detection wait on a dead rank
			// earlier in its chain, and that latency accumulates once per
			// doubling hop — without the slack, detection of one dead rank
			// would cascade into falsely suspecting live ones.
			var deadline time.Duration
			if op.OnPeerDown == PeerDownSkip {
				deadline = e.sched.peerDeadline * time.Duration(chainSlack(e.comm.Size()))
			}
			data, _, err := e.comm.RecvTimeout(op.Peer, op.Tag, e.cancel, deadline)
			if err != nil && errors.Is(err, comm.ErrPeerDown) {
				switch op.OnPeerDown {
				case PeerDownSkip:
					// The dead peer's subtree contributes nothing; the chain
					// continues with the survivors.
					e.mu.Lock()
					e.completeLocked(op, nil)
					e.mu.Unlock()
					return
				case PeerDownHold:
					// Behave as if the message never arrives: wait out the
					// schedule like any abandoned receive. The cancel channel
					// always fires eventually — when the schedule completes,
					// aborts on an error, or the shutdown watcher observes
					// the communicator closing.
					<-e.cancel
					e.mu.Lock()
					e.completeLocked(op, nil)
					e.mu.Unlock()
					return
				}
			}
			e.mu.Lock()
			if errors.Is(err, comm.ErrCanceled) {
				// The schedule already reached its completion set; this
				// receive was an abandoned redundant path (e.g. a duplicate
				// activation). Complete it silently.
				e.completeLocked(op, nil)
				e.mu.Unlock()
				return
			}
			if err == nil {
				buf := e.sched.buffers[op.Buffer]
				switch {
				case op.Kind == OpRecvReduce && op.Reduce != nil:
					op.Reduce(buf, data)
				case op.Kind == OpRecvReduce:
					SumReduce(buf, data)
				default:
					if len(buf) != len(data) {
						err = fmt.Errorf("sched: recv into buffer %q: length %d != %d", op.Buffer, len(buf), len(data))
					} else {
						buf.CopyFrom(data)
					}
				}
				comm.Release(data) // the payload has been folded into the buffer
			}
			e.completeLocked(op, err)
			e.mu.Unlock()
		}()
	}
}

// completeLocked marks op complete, records errors, and fires any dependents
// whose dependencies are now satisfied. Caller holds e.mu.
//
// The cascade counter tracks the nesting of completeLocked calls within one
// critical section: a dependent fired by this sweep may complete synchronously
// (a NOP) and recursively fire further dependents — possibly reaching the
// completion set mid-sweep and then still firing a send afterwards. The send
// queues therefore close only when the outermost call unwinds, never in the
// middle of a sweep that may still enqueue.
func (e *Executor) completeLocked(op *Op, err error) {
	if e.completed[op.ID] {
		return
	}
	e.cascade++
	defer func() {
		e.cascade--
		e.maybeCloseSendqsLocked()
	}()
	e.completed[op.ID] = true
	if e.isCompl[op.ID] {
		e.pending--
	}
	if err != nil && e.err == nil {
		e.err = err
		// A failed operation aborts the schedule. Its dependents can never
		// run meaningfully, and completion ops downstream of the failure
		// would never fire — waiting for them would hang Wait forever (the
		// classic case: the communicator closes mid-round while the round's
		// activation is still pending). Closing done cancels the outstanding
		// receives and lets the executor wind down; Wait returns this error.
		e.closeDoneLocked()
	}
	if !e.doneClosed {
		for _, candidate := range e.sched.ops {
			if e.fired[candidate.ID] || len(candidate.Deps) == 0 {
				continue
			}
			if e.dependsOn(candidate, op.ID) && e.depsSatisfied(candidate) {
				e.fireLocked(candidate)
			}
		}
	}
	if e.pending == 0 {
		e.closeDoneLocked()
	}
}

// chainSlack returns the failure-detector depth allowance for a world of the
// given size: one deadline unit per possible doubling hop plus one, so that
// waiting on a live peer that is itself waiting out a dead rank does not trip
// the detector.
func chainSlack(size int) int {
	slack := 2
	for p := 2; p < size; p *= 2 {
		slack++
	}
	return slack
}

// closeDoneLocked marks the schedule complete and cancels abandoned receives.
// Caller holds e.mu.
func (e *Executor) closeDoneLocked() {
	if e.doneClosed {
		return
	}
	e.doneClosed = true
	close(e.cancel)
	close(e.done)
}

// maybeCloseSendqsLocked closes the per-destination send queues once the
// schedule is done and no completion cascade is in progress — the point after
// which no send can fire. The senders drain what is queued and exit. Caller
// holds e.mu.
func (e *Executor) maybeCloseSendqsLocked() {
	if !e.doneClosed || e.cascade != 0 || e.sendqsClosed {
		return
	}
	e.sendqsClosed = true
	for _, q := range e.sendqs {
		close(q)
	}
}

func (e *Executor) dependsOn(op *Op, id OpID) bool {
	for _, d := range op.Deps {
		if d == id {
			return true
		}
	}
	return false
}

// Completed reports whether the operation has completed. Intended for tests.
func (e *Executor) Completed(id OpID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.completed[id]
}

// Fired reports whether the operation has fired (started). Intended for tests.
func (e *Executor) Fired(id OpID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired[id]
}

// ScheduleFactory builds the schedule for a given round of a persistent
// collective. Tags must be unique per round so consecutive rounds do not
// interfere.
type ScheduleFactory func(round int) *Schedule

// PersistentRunner re-instantiates a schedule round after round, implementing
// the persistent schedules of §4.1.1: once one execution completes, the next
// is armed immediately without application intervention.
type PersistentRunner struct {
	comm    *comm.Communicator
	factory ScheduleFactory

	mu      sync.Mutex
	round   int
	current *Executor
	sched   *Schedule
	stopped bool
}

// NewPersistentRunner creates a runner and arms round 0.
func NewPersistentRunner(c *comm.Communicator, factory ScheduleFactory) (*PersistentRunner, error) {
	r := &PersistentRunner{comm: c, factory: factory}
	if err := r.arm(0); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *PersistentRunner) arm(round int) error {
	s := r.factory(round)
	ex, err := NewExecutor(r.comm, s)
	if err != nil {
		return err
	}
	r.round = round
	r.sched = s
	r.current = ex
	ex.Start()
	return nil
}

// Round returns the round number currently armed.
func (r *PersistentRunner) Round() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.round
}

// Current returns the executor and schedule for the currently armed round.
func (r *PersistentRunner) Current() (*Executor, *Schedule) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current, r.sched
}

// Advance waits for the current round to complete, then arms the next round.
// It returns the completed round's schedule (whose buffers hold the results)
// and any execution error.
func (r *PersistentRunner) Advance() (*Schedule, error) {
	r.mu.Lock()
	ex, s := r.current, r.sched
	round := r.round
	stopped := r.stopped
	r.mu.Unlock()
	if stopped {
		return nil, errors.New("sched: persistent runner stopped")
	}
	err := ex.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.stopped && r.round == round {
		if armErr := r.arm(round + 1); armErr != nil && err == nil {
			err = armErr
		}
	}
	return s, err
}

// Stop prevents further rounds from being armed. The currently armed round is
// left to drain naturally.
func (r *PersistentRunner) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopped = true
}
