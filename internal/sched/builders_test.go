package sched

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// runPlans starts one executor per rank for the given plans, triggers the
// internal activation on the ranks listed in triggers, waits for every
// executor, and returns each rank's data buffer.
func runPlans(t *testing.T, world []*comm.Communicator, plans []PartialAllreducePlan, triggers []int) []tensor.Vector {
	t.Helper()
	p := len(plans)
	execs := make([]*Executor, p)
	for r := 0; r < p; r++ {
		ex, err := NewExecutor(world[r], plans[r].Schedule)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		execs[r] = ex
		ex.Start()
	}
	for _, r := range triggers {
		if err := execs[r].Trigger(plans[r].InternalActivation); err != nil {
			t.Fatalf("trigger rank %d: %v", r, err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = execs[r].Wait()
		}(r)
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(20 * time.Second):
		t.Fatal("schedule execution did not complete (deadlock)")
	}
	out := make([]tensor.Vector, p)
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		out[r] = plans[r].Schedule.Buffer(DataBuffer)
	}
	return out
}

func allRanks(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

func buildContributingPlans(p, n int, build func(rank int) PartialAllreducePlan) ([]PartialAllreducePlan, tensor.Vector) {
	plans := make([]PartialAllreducePlan, p)
	want := tensor.NewVector(n)
	for r := 0; r < p; r++ {
		plans[r] = build(r)
		contrib := tensor.NewVector(n)
		for i := range contrib {
			contrib[i] = float64(r + i + 1)
			want[i] += contrib[i]
		}
		plans[r].Schedule.Buffer(DataBuffer).CopyFrom(contrib)
	}
	return plans, want
}

func TestBuildAllreduceSumAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16} {
		p := p
		t.Run(sizeName(p), func(t *testing.T) {
			world := transport.NewInprocWorld(p)
			defer world[0].Close()
			const n = 17
			plans, want := buildContributingPlans(p, n, func(r int) PartialAllreducePlan {
				return BuildAllreduce(r, p, 0, n, SumReduce)
			})
			results := runPlans(t, world, plans, allRanks(p))
			for r, got := range results {
				if !got.AllClose(want, 1e-9) {
					t.Fatalf("rank %d result %v, want %v", r, got[:minInt(4, n)], want[:minInt(4, n)])
				}
			}
		})
	}
}

func TestBuildPartialAllreduceAllTriggered(t *testing.T) {
	for _, p := range []int{2, 3, 4, 6, 8} {
		p := p
		t.Run(sizeName(p), func(t *testing.T) {
			world := transport.NewInprocWorld(p)
			defer world[0].Close()
			const n = 9
			plans, want := buildContributingPlans(p, n, func(r int) PartialAllreducePlan {
				return BuildPartialAllreduce(r, p, 0, n, SumReduce)
			})
			results := runPlans(t, world, plans, allRanks(p))
			for r, got := range results {
				if !got.AllClose(want, 1e-9) {
					t.Fatalf("rank %d result %v, want %v", r, got, want)
				}
			}
		})
	}
}

// A single initiator must be enough to complete the collective on every rank
// (external activation): this is the defining property of a solo collective.
func TestBuildPartialAllreduceSingleInitiator(t *testing.T) {
	for _, p := range []int{2, 4, 5, 8} {
		for _, initiator := range []int{0, p - 1, p / 2} {
			p, initiator := p, initiator
			t.Run(sizeName(p)+"-init"+sizeName(initiator), func(t *testing.T) {
				world := transport.NewInprocWorld(p)
				defer world[0].Close()
				const n = 5
				// Every rank's buffer already holds its contribution (the
				// engine contributes whatever is in the buffer on behalf of
				// slow ranks), so the result is still the full sum.
				plans, want := buildContributingPlans(p, n, func(r int) PartialAllreducePlan {
					return BuildPartialAllreduce(r, p, 0, n, SumReduce)
				})
				results := runPlans(t, world, plans, []int{initiator})
				for r, got := range results {
					if !got.AllClose(want, 1e-9) {
						t.Fatalf("rank %d result %v, want %v", r, got, want)
					}
				}
			})
		}
	}
}

// Slow ranks that never set their buffer contribute zeros ("null gradients"),
// and the result must reflect only the initiators' data.
func TestBuildPartialAllreduceNullContributions(t *testing.T) {
	const p = 4
	const n = 3
	world := transport.NewInprocWorld(p)
	defer world[0].Close()
	plans := make([]PartialAllreducePlan, p)
	for r := 0; r < p; r++ {
		plans[r] = BuildPartialAllreduce(r, p, 0, n, SumReduce)
	}
	// Only rank 2 contributes real data and activates.
	plans[2].Schedule.Buffer(DataBuffer).CopyFrom(tensor.Vector{1, 2, 3})
	results := runPlans(t, world, plans, []int{2})
	for r, got := range results {
		if !got.AllClose(tensor.Vector{1, 2, 3}, 1e-9) {
			t.Fatalf("rank %d result %v, want [1 2 3]", r, got)
		}
	}
}

func TestBuildPartialAllreduceMultipleInitiatorsExecuteOnce(t *testing.T) {
	// All ranks trigger at nearly the same time; consumable operations must
	// guarantee the collective still executes exactly once, i.e. the result
	// equals the plain sum (no double counting).
	const p = 8
	const n = 4
	world := transport.NewInprocWorld(p)
	defer world[0].Close()
	plans, want := buildContributingPlans(p, n, func(r int) PartialAllreducePlan {
		return BuildPartialAllreduce(r, p, 100*TagStride, n, SumReduce)
	})
	results := runPlans(t, world, plans, allRanks(p))
	for r, got := range results {
		if !got.AllClose(want, 1e-9) {
			t.Fatalf("rank %d result %v, want %v (double counting?)", r, got, want)
		}
	}
}

func TestBuildPartialAllreduceConsecutiveRounds(t *testing.T) {
	const p = 4
	const n = 2
	world := transport.NewInprocWorld(p)
	defer world[0].Close()
	for round := 0; round < 5; round++ {
		plans := make([]PartialAllreducePlan, p)
		want := tensor.NewVector(n)
		for r := 0; r < p; r++ {
			plans[r] = BuildPartialAllreduce(r, p, round*TagStride, n, SumReduce)
			contrib := tensor.Vector{float64(round), float64(r)}
			want.Add(contrib)
			plans[r].Schedule.Buffer(DataBuffer).CopyFrom(contrib)
		}
		results := runPlans(t, world, plans, []int{round % p})
		for r, got := range results {
			if !got.AllClose(want, 1e-9) {
				t.Fatalf("round %d rank %d: %v want %v", round, r, got, want)
			}
		}
		// Purge stray duplicate activation messages from this round before
		// the next one, as the partial engine does.
		for r := 0; r < p; r++ {
			world[r].DiscardTagRange(0, (round+1)*TagStride)
		}
	}
}

func TestBuildAllreduceMaxReduce(t *testing.T) {
	const p = 4
	const n = 3
	world := transport.NewInprocWorld(p)
	defer world[0].Close()
	plans := make([]PartialAllreducePlan, p)
	for r := 0; r < p; r++ {
		plans[r] = BuildAllreduce(r, p, 0, n, MaxReduce)
		plans[r].Schedule.Buffer(DataBuffer).CopyFrom(tensor.Vector{float64(r), float64(-r), 1})
	}
	results := runPlans(t, world, plans, allRanks(p))
	want := tensor.Vector{3, 0, 1}
	for r, got := range results {
		if !got.AllClose(want, 1e-9) {
			t.Fatalf("rank %d max-reduce result %v, want %v", r, got, want)
		}
	}
}

func TestDoublingToRankRoundTrip(t *testing.T) {
	f := func(sizeRaw uint8) bool {
		size := int(sizeRaw%29) + 1
		pof2 := 1
		for pof2*2 <= size {
			pof2 *= 2
		}
		rem := size - pof2
		seen := make(map[int]bool)
		for d := 0; d < pof2; d++ {
			r := doublingToRank(d, rem)
			if r < 0 || r >= size || seen[r] {
				return false
			}
			seen[r] = true
			// Ranks that survive folding are odd ranks below 2*rem and all
			// ranks at or above 2*rem.
			if r < 2*rem && r%2 == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 16: 4, 64: 6}
	for in, want := range cases {
		if got := log2(in); got != want {
			t.Fatalf("log2(%d) = %d, want %d", in, got, want)
		}
	}
}

func sizeName(p int) string {
	return "p" + string(rune('0'+p/10)) + string(rune('0'+p%10))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
