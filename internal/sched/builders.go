package sched

import (
	"fmt"

	"eagersgd/internal/tensor"
)

// Buffer names used by the builders in this file. The application reads and
// writes these via Schedule.Buffer / SetBuffer.
const (
	// DataBuffer holds the local contribution on entry and the reduced result
	// after the schedule completes.
	DataBuffer = "data"
	// ActivationBuffer holds the tiny activation payload (one element carrying
	// the initiator rank, for diagnostics).
	ActivationBuffer = "activation"
)

// TagStride is the number of distinct tags a single round of a partial
// allreduce schedule may use. Per-round base tags must be spaced at least
// this far apart.
const TagStride = 64

// Tag offsets within a round's tag block.
const (
	tagActivation = 0 // activation broadcast
	tagFold       = 1 // non-power-of-two pre/post fold
	tagDataBase   = 2 // recursive-doubling exchange, one tag per step
)

// PartialAllreducePlan describes one rank's solo/majority allreduce schedule
// for one round, as produced by BuildPartialAllreduce.
type PartialAllreducePlan struct {
	Schedule *Schedule
	// InternalActivation is the NOP the application triggers when it reaches
	// the collective call (internal activation, §4.1.1). Externally activated
	// ranks never trigger it.
	InternalActivation OpID
	// AllreduceActivated is the NOP that marks the start of the allreduce
	// phase; it completes on the first internal or external activation.
	AllreduceActivated OpID
	// Completion is the operation after which DataBuffer holds the reduced
	// result on this rank.
	Completion OpID
}

// ReleaseBuffers returns the plan's pool-leased schedule buffers (DataBuffer,
// ActivationBuffer) to the vector pool. Call it only after the executor's
// Wait has returned and the results have been copied out; the plan must not
// be used afterwards. The persistent partial-allreduce engine calls this once
// per round so long trainings recycle two buffers per round instead of
// allocating them.
func (p PartialAllreducePlan) ReleaseBuffers() {
	tensor.PutVector(p.Schedule.Buffer(DataBuffer))
	tensor.PutVector(p.Schedule.Buffer(ActivationBuffer))
}

// BuildPartialAllreduce constructs the schedule of Fig. 6 for one rank: an
// activation phase (a recursive-doubling broadcast equivalent to the union of
// P binomial trees, so any rank can be the initiator) feeding an allreduce
// phase (recursive doubling with the standard fold for non-power-of-two
// process counts).
//
// rank and size describe the communicator, baseTag is the first tag of this
// round's tag block (use round*TagStride), n is the element count of the data
// buffer, and reduce combines contributions (SumReduce for gradient
// accumulation).
//
// The returned schedule owns freshly allocated DataBuffer and
// ActivationBuffer buffers; callers overwrite DataBuffer with their
// contribution before activation (or let the engine contribute whatever the
// buffer holds — null or stale gradients — on behalf of a slow rank).
func BuildPartialAllreduce(rank, size, baseTag, n int, reduce ReduceFunc) PartialAllreducePlan {
	return BuildPartialAllreduceWithPrepare(rank, size, baseTag, n, reduce, nil)
}

// BuildPartialAllreduceWithPrepare is BuildPartialAllreduce with an optional
// prepare hook that runs after activation and before the first data-phase
// operation. The partial-collective engine uses it to snapshot the
// application's send buffer into DataBuffer at the moment the collective
// actually starts (so a slow rank contributes whatever — null or stale
// gradients — is in its buffer at that point, per Fig. 7 of the paper).
func BuildPartialAllreduceWithPrepare(rank, size, baseTag, n int, reduce ReduceFunc, prepare func(data tensor.Vector)) PartialAllreducePlan {
	if size <= 0 {
		panic(fmt.Sprintf("sched: invalid communicator size %d", size))
	}
	if reduce == nil {
		reduce = SumReduce
	}
	s := NewSchedule()
	// Pool-leased: a long-running engine builds one schedule per round, and
	// the round's buffers are recycled via ReleaseBuffers. Zeroed because an
	// externally activated rank contributes the buffer as-is (null gradients).
	s.SetBuffer(DataBuffer, tensor.GetVectorZero(n))
	act := tensor.GetVectorZero(1)
	act[0] = float64(rank)
	s.SetBuffer(ActivationBuffer, act)

	n0, n1 := buildActivationPhase(s, rank, size, baseTag+tagActivation)

	// Optional prepare hook: snapshot the application's send buffer into the
	// schedule's data buffer at activation time.
	start := n1
	if prepare != nil {
		start = s.AddCompute(func(bufs map[string]tensor.Vector) {
			prepare(bufs[DataBuffer])
		}, DepAnd, n1)
	}

	// --- Allreduce phase ---------------------------------------------------
	completion := buildRecursiveDoubling(s, rank, size, baseTag, DataBuffer, reduce, start, PeerDownSkip)

	plan := PartialAllreducePlan{
		Schedule:           s,
		InternalActivation: n0,
		AllreduceActivated: n1,
		Completion:         completion,
	}
	s.SetCompletionOps(completion)
	return plan
}

// BuildAllreduce constructs a plain synchronous allreduce schedule (no
// activation phase): the schedule starts executing as soon as the executor
// starts, which matches the internal activation of a synchronous collective.
// It exists so the schedule engine can also express the baseline collective,
// and for tests comparing the two paths.
func BuildAllreduce(rank, size, baseTag, n int, reduce ReduceFunc) PartialAllreducePlan {
	if reduce == nil {
		reduce = SumReduce
	}
	s := NewSchedule()
	s.SetBuffer(DataBuffer, tensor.GetVectorZero(n))
	start := s.AddNop(DepAnd) // triggered by the caller when its data is ready
	completion := buildRecursiveDoubling(s, rank, size, baseTag, DataBuffer, reduce, start, PeerDownFail)
	s.SetCompletionOps(completion)
	return PartialAllreducePlan{
		Schedule:           s,
		InternalActivation: start,
		AllreduceActivated: start,
		Completion:         completion,
	}
}

// buildActivationPhase appends the Fig. 6 activation phase to s: the internal
// activation NOP (n0, fired by Executor.Trigger), the external activation
// receives (one per recursive-doubling distance), and the consumable
// forwarding sends. It returns n0 and n1, the NOP that completes on the first
// activation of any kind.
func buildActivationPhase(s *Schedule, rank, size, actTag int) (n0, n1 OpID) {
	// Internal activation NOP (N0 in Fig. 6): fired by Executor.Trigger when
	// the local application reaches the collective call.
	n0 = s.AddNop(DepAnd)

	// External activation receives (R0, R1, ... in Fig. 6): one per
	// recursive-doubling distance, posted immediately. Any of them completing
	// also activates the schedule.
	var actRecvs []OpID
	var peers []int
	for d := 1; d < size; d *= 2 {
		peer := rank ^ d
		if peer >= size {
			continue
		}
		peers = append(peers, peer)
		// PeerDownHold: a dead peer's activation simply never arrives. The
		// receive must not complete on failure — it feeds the OR-activation
		// NOP, and a spurious completion would activate the round with no
		// initiator.
		id := s.AddRecv(peer, actTag, ActivationBuffer, DepAnd)
		s.SetPeerDownPolicy(id, PeerDownHold)
		actRecvs = append(actRecvs, id)
	}

	// Activation forwarding sends (S0, S1, ...): consumable, fired on the
	// first activation from any source other than the peer they target (no
	// echo back to the rank that just told us).
	for i, peer := range peers {
		deps := []OpID{n0}
		for j, r := range actRecvs {
			if j != i {
				deps = append(deps, r)
			}
		}
		// PeerDownSkip: forwarding an activation to a dead peer is a no-op.
		s.SetPeerDownPolicy(s.AddSend(peer, actTag, ActivationBuffer, DepOr, deps...), PeerDownSkip)
	}

	// N1 in Fig. 6: the allreduce phase starts on the first activation of any
	// kind.
	allreduceDeps := append([]OpID{n0}, actRecvs...)
	n1 = s.AddNop(DepOr, allreduceDeps...)
	return n0, n1
}

// Bucketed rounds: one activation decision shared by every bucket.

// BucketBuffer returns the schedule buffer name of bucket b — a slice view
// into the full DataBuffer registered by BuildBucketedPartialAllreduce.
func BucketBuffer(b int) string { return fmt.Sprintf("bucket[%d]", b) }

// FlagBuffer names the one-element fresh-contribution flag chain's buffer (a
// view of DataBuffer's last element); its reduced value is the round's number
// of active processes.
const FlagBuffer = "flag"

// BucketRoundTagStride returns the tag-space width one bucketed round
// occupies: block 0 carries the activation broadcast, blocks 1..B the bucket
// chains, and block B+1 the flag chain. Per-round base tags of a bucketed
// engine must be spaced this far apart.
func BucketRoundTagStride(numBuckets int) int { return (numBuckets + 2) * TagStride }

// BucketedPartialAllreducePlan describes one rank's bucketed partial
// allreduce schedule for one round, as produced by
// BuildBucketedPartialAllreduce.
type BucketedPartialAllreducePlan struct {
	Schedule *Schedule
	// InternalActivation is the NOP the application triggers when it commits
	// its step contribution (internal activation, §4.1.1).
	InternalActivation OpID
	// AllreduceActivated is the NOP that completes on the first internal or
	// external activation — the round's single participation decision point.
	AllreduceActivated OpID
	// BucketReady holds, per bucket, the operation after which the bucket's
	// slice of DataBuffer is fully reduced on this rank.
	BucketReady []OpID
}

// ReleaseBuffers returns the plan's pool-leased schedule buffers to the
// vector pool (the per-bucket buffers are views of DataBuffer and share its
// lease). Same contract as PartialAllreducePlan.ReleaseBuffers.
func (p BucketedPartialAllreducePlan) ReleaseBuffers() {
	tensor.PutVector(p.Schedule.Buffer(DataBuffer))
	tensor.PutVector(p.Schedule.Buffer(ActivationBuffer))
}

// BuildBucketedPartialAllreduce constructs the bucketed variant of the Fig. 6
// schedule: the same single activation phase (so the solo/majority/quorum
// participation decision is made exactly once per round, shared by every
// bucket), one prepare hook that atomically snapshots the application's send
// buffer into DataBuffer, and then one independent recursive-doubling
// reduction chain per bucket plus a one-element chain for the
// fresh-contribution flag. The chains run concurrently on the executor —
// bucket b's later hops overlap bucket b+1's earlier ones — and each chain
// uses its own tag block within the round (see BucketRoundTagStride), so the
// streams never collide.
//
// bucketLens partitions the data range: DataBuffer has sum(bucketLens)+1
// elements, the final element being the flag. onBucket, when non-nil, is
// invoked once per bucket as soon as that bucket's chain completes — before
// the round as a whole finishes — with the bucket index and its reduced slice
// (valid until ReleaseBuffers); it may be called concurrently for different
// buckets.
func BuildBucketedPartialAllreduce(rank, size, baseTag int, bucketLens []int, reduce ReduceFunc, prepare func(data tensor.Vector), onBucket func(b int, seg tensor.Vector)) BucketedPartialAllreducePlan {
	if size <= 0 {
		panic(fmt.Sprintf("sched: invalid communicator size %d", size))
	}
	if len(bucketLens) == 0 {
		panic("sched: bucketed plan needs at least one bucket")
	}
	if reduce == nil {
		reduce = SumReduce
	}
	n := 0
	for b, l := range bucketLens {
		if l <= 0 {
			panic(fmt.Sprintf("sched: bucket %d length %d must be positive", b, l))
		}
		n += l
	}

	s := NewSchedule()
	data := tensor.GetVectorZero(n + 1)
	s.SetBuffer(DataBuffer, data)
	off := 0
	for b, l := range bucketLens {
		s.SetBuffer(BucketBuffer(b), data[off:off+l])
		off += l
	}
	s.SetBuffer(FlagBuffer, data[n:])
	act := tensor.GetVectorZero(1)
	act[0] = float64(rank)
	s.SetBuffer(ActivationBuffer, act)

	n0, n1 := buildActivationPhase(s, rank, size, baseTag+tagActivation)

	// One atomic snapshot for the whole step: every bucket sees the send
	// buffer as of the same instant, so the set of ranks whose contribution is
	// fresh is identical across buckets (the step-consistency invariant).
	start := n1
	if prepare != nil {
		start = s.AddCompute(func(bufs map[string]tensor.Vector) {
			prepare(bufs[DataBuffer])
		}, DepAnd, n1)
	}

	plan := BucketedPartialAllreducePlan{
		Schedule:           s,
		InternalActivation: n0,
		AllreduceActivated: n1,
		BucketReady:        make([]OpID, len(bucketLens)),
	}
	completions := make([]OpID, 0, len(bucketLens)+1)
	for b := range bucketLens {
		bucketTag := baseTag + (b+1)*TagStride
		done := buildRecursiveDoubling(s, rank, size, bucketTag, BucketBuffer(b), reduce, start, PeerDownSkip)
		if onBucket != nil {
			bb := b
			done = s.AddCompute(func(bufs map[string]tensor.Vector) {
				onBucket(bb, bufs[BucketBuffer(bb)])
			}, DepAnd, done)
		}
		plan.BucketReady[b] = done
		completions = append(completions, done)
	}
	flagTag := baseTag + (len(bucketLens)+1)*TagStride
	completions = append(completions, buildRecursiveDoubling(s, rank, size, flagTag, FlagBuffer, reduce, start, PeerDownSkip))
	s.SetCompletionOps(completions...)
	return plan
}

// Non-power-of-two sizes use the standard MPICH approach: the first 2*rem
// ranks (rem = size - 2^k) fold pairwise so 2^k ranks run the doubling loop,
// and the result is copied back to the folded-out ranks afterwards.
func buildRecursiveDoubling(s *Schedule, rank, size, baseTag int, buffer string, reduce ReduceFunc, start OpID, onPeerDown PeerDownPolicy) OpID {
	annotate := func(id OpID) OpID {
		s.SetPeerDownPolicy(id, onPeerDown)
		return id
	}
	pof2 := 1
	for pof2*2 <= size {
		pof2 *= 2
	}
	rem := size - pof2
	foldTag := baseTag + tagFold

	prev := start
	inDoubling := true
	doublingRank := rank

	switch {
	case rank < 2*rem && rank%2 == 0:
		// Fold out: send contribution to rank+1, then wait for the final
		// result in the post phase.
		prev = annotate(s.AddSend(rank+1, foldTag, buffer, DepAnd, prev))
		inDoubling = false
	case rank < 2*rem && rank%2 == 1:
		// Fold in: absorb the even neighbour's contribution.
		prev = annotate(s.AddRecvReduce(rank-1, foldTag, buffer, reduce, DepAnd, prev))
		doublingRank = rank / 2
	default:
		doublingRank = rank - rem
	}

	if inDoubling {
		for d := 1; d < pof2; d *= 2 {
			peerDoubling := doublingRank ^ d
			peer := doublingToRank(peerDoubling, rem)
			dataTag := baseTag + tagDataBase + log2(d)
			send := annotate(s.AddSend(peer, dataTag, buffer, DepAnd, prev))
			// The receive-reduce waits for the send so the outgoing payload is
			// snapshotted before the buffer is modified.
			prev = annotate(s.AddRecvReduce(peer, dataTag, buffer, reduce, DepAnd, send))
		}
	}

	// Post phase for non-power-of-two sizes: odd folded ranks push the result
	// back to their even neighbours.
	switch {
	case rank < 2*rem && rank%2 == 1:
		prev = annotate(s.AddSend(rank-1, foldTag+TagStride/2, buffer, DepAnd, prev))
	case rank < 2*rem && rank%2 == 0:
		prev = annotate(s.AddRecv(rank+1, foldTag+TagStride/2, buffer, DepAnd, prev))
	}
	return prev
}

// doublingToRank maps a rank id in the folded power-of-two group back to the
// original communicator rank.
func doublingToRank(doublingRank, rem int) int {
	if doublingRank < rem {
		return doublingRank*2 + 1
	}
	return doublingRank + rem
}

func log2(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
