package bench

import (
	"fmt"
	"testing"

	"eagersgd/internal/collectives"
	"eagersgd/internal/partial"
	"eagersgd/internal/race"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// These tests are the allocation-regression gate of the zero-copy message
// substrate (run by plain `go test ./...`): a steady-state in-process
// allreduce round must allocate exactly zero heap objects per operation, for
// every algorithm, on power-of-two and folded (non-power-of-two) world sizes.
// Any defensive clone, per-exchange goroutine, or unpooled wire buffer
// reintroduced anywhere on the path tensor -> transport -> comm -> collectives
// shows up here as a failure.

// roundDriver runs one multi-rank round per call via persistent workers, so
// AllocsPerRun measures only the steady-state collective, not goroutine spawns.
type roundDriver struct {
	size  int
	start []chan struct{}
	done  chan error
}

func newRoundDriver(size int, body func(rank int) error) *roundDriver {
	d := &roundDriver{size: size, start: make([]chan struct{}, size), done: make(chan error, size)}
	for r := 0; r < size; r++ {
		d.start[r] = make(chan struct{})
		go func(r int) {
			for range d.start[r] {
				d.done <- body(r)
			}
		}(r)
	}
	return d
}

func (d *roundDriver) round() error {
	for r := 0; r < d.size; r++ {
		d.start[r] <- struct{}{}
	}
	var first error
	for r := 0; r < d.size; r++ {
		if err := <-d.done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (d *roundDriver) stop() {
	for r := 0; r < d.size; r++ {
		close(d.start[r])
	}
}

func TestAllreduceInprocAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	if tensor.LeaseDebugEnabled {
		t.Skip("-tags leasedebug trades the alloc-free guarantee for lease-site tracking")
	}
	const n = 2048
	for _, ac := range allreduceAlgos {
		for _, size := range []int{4, 3} { // power-of-two and folded sizes
			t.Run(fmt.Sprintf("%s/p=%d", ac.name, size), func(t *testing.T) {
				w := transport.NewInprocWorld(size)
				defer w[0].Close()
				data := make([]tensor.Vector, size)
				for r := range data {
					data[r] = tensor.NewVector(n)
					data[r].Fill(1)
				}
				d := newRoundDriver(size, func(rank int) error {
					return collectives.Allreduce(w[rank], data[rank], collectives.OpSum, ac.algo)
				})
				defer d.stop()
				// Warm the vector pool, the box pool, the unexpected-queue
				// capacities, and the demux scheduling before measuring.
				for i := 0; i < 32; i++ {
					if err := d.round(); err != nil {
						t.Fatalf("warmup round: %v", err)
					}
				}
				avg := testing.AllocsPerRun(100, func() {
					if err := d.round(); err != nil {
						t.Fatalf("round: %v", err)
					}
				})
				if avg > 0 {
					t.Errorf("steady-state inproc allreduce (%s, %d ranks) allocates %.2f objects per round, want 0",
						ac.name, size, avg)
				}
			})
		}
	}
}

// TestAllreduceShmAllocFree is the same gate for the shared-ring transport: a
// steady-state allreduce round over per-pair SPSC rings — frames encoded in
// place into a reserved ring span on send, decoded into pooled vectors on
// receive — must allocate zero heap objects per round, like inproc.
func TestAllreduceShmAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	if tensor.LeaseDebugEnabled {
		t.Skip("-tags leasedebug trades the alloc-free guarantee for lease-site tracking")
	}
	const n = 2048
	for _, ac := range allreduceAlgos {
		for _, size := range []int{4, 3} { // power-of-two and folded sizes
			t.Run(fmt.Sprintf("%s/p=%d", ac.name, size), func(t *testing.T) {
				w := transport.NewShmWorld(size)
				defer func() {
					for _, c := range w {
						c.Close()
					}
				}()
				data := make([]tensor.Vector, size)
				for r := range data {
					data[r] = tensor.NewVector(n)
					data[r].Fill(1)
				}
				d := newRoundDriver(size, func(rank int) error {
					return collectives.Allreduce(w[rank], data[rank], collectives.OpSum, ac.algo)
				})
				defer d.stop()
				for i := 0; i < 32; i++ {
					if err := d.round(); err != nil {
						t.Fatalf("warmup round: %v", err)
					}
				}
				avg := testing.AllocsPerRun(100, func() {
					if err := d.round(); err != nil {
						t.Fatalf("round: %v", err)
					}
				})
				if avg > 0 {
					t.Errorf("steady-state shm allreduce (%s, %d ranks) allocates %.2f objects per round, want 0",
						ac.name, size, avg)
				}
			})
		}
	}
}

// TestAllreduceShmBcastAllocFree gates the broadcast-segment allgather: at
// 64Ki elements over 4 shared-ring ranks each chunk is 16Ki elements
// (128 KiB), so the ring allreduce takes the fused path and its allgather
// phase publishes every fully-reduced chunk once into the owner's broadcast
// segment, with peers aliasing the published block zero-copy (the chunk is
// well past the alias threshold). The steady-state cycle — publish, direct
// delivery, alias, release, reclaim — must allocate zero heap objects, like
// the per-pair ring paths.
func TestAllreduceShmBcastAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	if tensor.LeaseDebugEnabled {
		t.Skip("-tags leasedebug trades the alloc-free guarantee for lease-site tracking")
	}
	const (
		size = 4
		n    = 1 << 16
	)
	w := transport.NewShmWorld(size)
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	data := make([]tensor.Vector, size)
	for r := range data {
		data[r] = tensor.NewVector(n)
		data[r].Fill(1)
	}
	d := newRoundDriver(size, func(rank int) error {
		return collectives.Allreduce(w[rank], data[rank], collectives.OpSum, collectives.AlgoRing)
	})
	defer d.stop()
	// Warm the pools, the broadcast block list, and the alias table before
	// measuring.
	for i := 0; i < 32; i++ {
		if err := d.round(); err != nil {
			t.Fatalf("warmup round: %v", err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := d.round(); err != nil {
			t.Fatalf("round: %v", err)
		}
	})
	if avg > 0 {
		t.Errorf("steady-state shm broadcast-segment allreduce allocates %.2f objects per round, want 0", avg)
	}
}

// TestAllreducePipelinedInprocAllocFree is the same gate for the pipelined
// paths: at 256Ki elements the ring moves 4 segments per chunk exchange and
// Rabenseifner 8 per first halving (default 16Ki-element segments), so this
// exercises the windowed multi-segment stream — which must recycle its
// double-buffered leases through the pool without allocating.
func TestAllreducePipelinedInprocAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	if tensor.LeaseDebugEnabled {
		t.Skip("-tags leasedebug trades the alloc-free guarantee for lease-site tracking")
	}
	const n = 1 << 18
	for _, ac := range allreduceAlgos {
		if ac.algo == collectives.AlgoRecursiveDoubling {
			continue // not segmented: covered by the plain gate above
		}
		t.Run(ac.name, func(t *testing.T) {
			const size = 4
			w := transport.NewInprocWorld(size)
			defer w[0].Close()
			data := make([]tensor.Vector, size)
			for r := range data {
				data[r] = tensor.NewVector(n)
				data[r].Fill(1)
			}
			d := newRoundDriver(size, func(rank int) error {
				return collectives.Allreduce(w[rank], data[rank], collectives.OpSum, ac.algo)
			})
			defer d.stop()
			for i := 0; i < 16; i++ {
				if err := d.round(); err != nil {
					t.Fatalf("warmup round: %v", err)
				}
			}
			avg := testing.AllocsPerRun(50, func() {
				if err := d.round(); err != nil {
					t.Fatalf("round: %v", err)
				}
			})
			if avg > 0 {
				t.Errorf("steady-state pipelined inproc allreduce (%s) allocates %.2f objects per round, want 0", ac.name, avg)
			}
		})
	}
}

// partialRoundAllocBudget bounds the per-round allocations of one eager
// (solo) partial-allreduce round across 4 ranks. An eager round inherently
// allocates: each round builds a fresh schedule DAG and executor and spawns
// the operations' goroutines (§4.1.1 persistent schedules re-instantiate per
// round). The data buffers themselves are pooled, so the budget is bounded by
// the DAG size and independent of the gradient dimension — at the time the
// substrate landed a round measured ~244 objects (down from ~290 before
// pooling, with B/op dominated by gradient-sized clones). The budget
// leaves headroom for scheduling jitter while still catching any reintroduced
// per-element or per-hop allocation.
const partialRoundAllocBudget = 400

func TestPartialRoundAllocBounded(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	if tensor.LeaseDebugEnabled {
		t.Skip("-tags leasedebug trades the alloc-free guarantee for lease-site tracking")
	}
	const (
		size = 4
		n    = 16384
	)
	w := transport.NewInprocWorld(size)
	defer w[0].Close()
	ars := make([]*partial.Allreducer, size)
	for r := range ars {
		ars[r] = partial.New(w[r], n, partial.Options{Mode: partial.Solo, Seed: 3})
	}
	grads := make([]tensor.Vector, size)
	for r := range grads {
		grads[r] = tensor.NewVector(n)
		grads[r].Fill(1)
	}
	d := newRoundDriver(size, func(rank int) error {
		sum, _, err := ars[rank].Exchange(grads[rank])
		if err == nil {
			tensor.PutVector(sum)
		}
		return err
	})
	defer d.stop()
	for i := 0; i < 16; i++ {
		if err := d.round(); err != nil {
			t.Fatalf("warmup round: %v", err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := d.round(); err != nil {
			t.Fatalf("round: %v", err)
		}
	})
	if avg > partialRoundAllocBudget {
		t.Errorf("eager round allocates %.0f objects across %d ranks, budget %d", avg, size, partialRoundAllocBudget)
	}
}
