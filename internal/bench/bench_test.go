// Package bench hosts the message-substrate microbenchmark suite: one
// allreduce benchmark per {algorithm × vector size × transport} cell plus a
// partial-allreduce round benchmark. Run with
//
//	go test -run '^$' -bench . -benchmem ./internal/bench
//
// to regenerate the numbers quoted in README.md, or use cmd/benchjson to emit
// them as a BENCH_<date>.json snapshot.
//
// Every benchmark drives persistent per-rank worker goroutines through
// start/done channels, so one benchmark iteration measures exactly one
// steady-state collective round with no per-iteration goroutine-spawn noise.
package bench

import (
	"fmt"
	"sync/atomic"
	"testing"

	"eagersgd/internal/collectives"
	"eagersgd/internal/comm"
	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// benchRanks is the world size used by every benchmark: small enough that
// scheduling noise stays low, large enough that every algorithm takes multiple
// hops (and, at 4 ranks, recursive doubling and Rabenseifner exercise their
// power-of-two fast paths while ring takes 2(P-1) steps).
const benchRanks = 4

// nextTCPPort hands out non-overlapping loopback port ranges to the TCP
// benchmarks so repeated runs (-count, -benchtime) never collide.
var nextTCPPort atomic.Int64

func init() { nextTCPPort.Store(40100) }

// worldFactory builds a communicator world and returns it with its cleanup.
type worldFactory struct {
	name string
	make func(b *testing.B, size int) ([]*comm.Communicator, func())
}

func transports() []worldFactory {
	return []worldFactory{
		{name: "inproc", make: func(b *testing.B, size int) ([]*comm.Communicator, func()) {
			w := transport.NewInprocWorld(size)
			return w, func() { w[0].Close() }
		}},
		{name: "tcp", make: func(b *testing.B, size int) ([]*comm.Communicator, func()) {
			base := int(nextTCPPort.Add(int64(size))) - size
			w, err := transport.NewTCPWorld(size, base)
			if err != nil {
				b.Skipf("TCP unavailable in this environment: %v", err)
			}
			return w, func() {
				for _, c := range w {
					c.Close()
				}
			}
		}},
		{name: "shm", make: func(b *testing.B, size int) ([]*comm.Communicator, func()) {
			w := transport.NewShmWorld(size)
			return w, func() {
				for _, c := range w {
					c.Close()
				}
			}
		}},
	}
}

// runRounds drives one round per benchmark iteration: every rank runs body
// concurrently, and the iteration completes when all ranks have finished.
func runRounds(b *testing.B, size int, body func(rank int) error) {
	b.Helper()
	start := make([]chan struct{}, size)
	done := make(chan error, size)
	for r := 0; r < size; r++ {
		start[r] = make(chan struct{})
		go func(r int) {
			for range start[r] {
				done <- body(r)
			}
		}(r)
	}
	defer func() {
		for r := 0; r < size; r++ {
			close(start[r])
		}
	}()

	// Warm the pools, the unexpected-queue capacities, and the TCP write
	// buffers before measuring.
	for i := 0; i < 3; i++ {
		for r := 0; r < size; r++ {
			start[r] <- struct{}{}
		}
		for r := 0; r < size; r++ {
			if err := <-done; err != nil {
				b.Fatalf("warmup round: %v", err)
			}
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < size; r++ {
			start[r] <- struct{}{}
		}
		for r := 0; r < size; r++ {
			if err := <-done; err != nil {
				b.Fatalf("round: %v", err)
			}
		}
	}
	b.StopTimer()
}

var allreduceAlgos = []struct {
	name string
	algo collectives.Algorithm
}{
	{"recursive-doubling", collectives.AlgoRecursiveDoubling},
	{"ring", collectives.AlgoRing},
	{"rabenseifner", collectives.AlgoRabenseifner},
}

var benchSizes = []int{1 << 10, 1 << 16, 1 << 20}

// BenchmarkAllreduce measures one synchronous allreduce round across all
// ranks, for every {transport × algorithm × vector size} combination.
func BenchmarkAllreduce(b *testing.B) {
	for _, tr := range transports() {
		tr := tr
		b.Run(tr.name, func(b *testing.B) {
			for _, ac := range allreduceAlgos {
				ac := ac
				b.Run(ac.name, func(b *testing.B) {
					for _, n := range benchSizes {
						n := n
						b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
							w, cleanup := tr.make(b, benchRanks)
							defer cleanup()
							data := make([]tensor.Vector, benchRanks)
							for r := range data {
								data[r] = tensor.NewVector(n)
								data[r].Fill(float64(r + 1))
							}
							b.SetBytes(int64(8 * n))
							runRounds(b, benchRanks, func(rank int) error {
								return collectives.Allreduce(w[rank], data[rank], collectives.OpSum, ac.algo)
							})
						})
					}
				})
			}
		})
	}
}

// BenchmarkAllreduceSegment sweeps the pipeline segment size for the ring
// allreduce at a fixed large payload, on both transports. seg=-1 disables
// segmentation (the pre-pipelining behaviour) and is the baseline the other
// cells are read against.
func BenchmarkAllreduceSegment(b *testing.B) {
	const n = 1 << 18
	segs := []int{-1, 4096, 16384, 65536}
	for _, tr := range transports() {
		tr := tr
		b.Run(tr.name, func(b *testing.B) {
			for _, seg := range segs {
				seg := seg
				b.Run(fmt.Sprintf("seg=%d", seg), func(b *testing.B) {
					w, cleanup := tr.make(b, benchRanks)
					defer cleanup()
					cfg := collectives.Config{SegmentElems: seg}
					data := make([]tensor.Vector, benchRanks)
					for r := range data {
						data[r] = tensor.NewVector(n)
						data[r].Fill(float64(r + 1))
					}
					b.SetBytes(int64(8 * n))
					runRounds(b, benchRanks, func(rank int) error {
						return collectives.AllreduceWith(w[rank], data[rank], collectives.OpSum, collectives.AlgoRing, cfg, nil)
					})
				})
			}
		})
	}
}

// BenchmarkReduceKernels measures the tuned reduction kernels against the
// naive scalar loops they replaced, at a small size (unrolled path) and a
// large one (parallel-eligible when more than one processor is available).
func BenchmarkReduceKernels(b *testing.B) {
	naive := map[string]func(dst, src tensor.Vector){
		"sum": func(dst, src tensor.Vector) {
			for i, x := range src {
				dst[i] += x
			}
		},
		"max": func(dst, src tensor.Vector) {
			for i, x := range src {
				if x > dst[i] {
					dst[i] = x
				}
			}
		},
		"axpy": func(dst, src tensor.Vector) {
			for i, x := range src {
				dst[i] += 0.5 * x
			}
		},
	}
	tuned := map[string]func(dst, src tensor.Vector){
		"sum":  func(dst, src tensor.Vector) { tensor.AddVec(dst, src) },
		"max":  func(dst, src tensor.Vector) { tensor.MaxVec(dst, src) },
		"axpy": func(dst, src tensor.Vector) { tensor.AxpyVec(dst, 0.5, src) },
	}
	for _, op := range []string{"sum", "max", "axpy"} {
		op := op
		b.Run(op, func(b *testing.B) {
			for _, n := range []int{1 << 12, 1 << 18} {
				n := n
				for _, impl := range []string{"naive", "kernel"} {
					impl := impl
					b.Run(fmt.Sprintf("%s/n=%d", impl, n), func(b *testing.B) {
						dst := tensor.NewVector(n)
						src := tensor.NewVector(n)
						for i := range src {
							src[i] = float64(i % 97)
						}
						fn := naive[op]
						if impl == "kernel" {
							fn = tuned[op]
						}
						b.SetBytes(int64(16 * n)) // one read + one read-modify-write stream
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							fn(dst, src)
						}
					})
				}
			}
		})
	}
}

// BenchmarkPartialRound measures one eager (solo partial-allreduce) round:
// every rank contributes a gradient via Exchange once per iteration.
func BenchmarkPartialRound(b *testing.B) {
	for _, n := range benchSizes {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			w := transport.NewInprocWorld(benchRanks)
			defer w[0].Close()
			ars := make([]*partial.Allreducer, benchRanks)
			for r := range ars {
				ars[r] = partial.New(w[r], n, partial.Options{Mode: partial.Solo, Seed: 7})
			}
			grads := make([]tensor.Vector, benchRanks)
			for r := range grads {
				grads[r] = tensor.NewVector(n)
				grads[r].Fill(1)
			}
			b.SetBytes(int64(8 * n))
			runRounds(b, benchRanks, func(rank int) error {
				sum, _, err := ars[rank].Exchange(grads[rank])
				if err == nil {
					tensor.PutVector(sum) // recycle the pool-leased result
				}
				return err
			})
		})
	}
}
