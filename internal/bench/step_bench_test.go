package bench

import (
	"fmt"
	"testing"

	"eagersgd/collective"
	"eagersgd/internal/core"
	"eagersgd/internal/data"
	"eagersgd/internal/nn"
	"eagersgd/internal/optimizer"
)

// BenchmarkStepOverlap measures one full distributed training step across
// all ranks — backward pass, gradient exchange, optimizer update — for a
// multi-layer MLP and an LSTM, comparing the serial exchange (full backward,
// then one fused allreduce) against the overlapped bucketed exchange
// (buckets submitted during the backward pass, results applied as they
// land). The interesting cells are the TCP ones: there the wire time is
// substantial, and overlap=on hides part of it under compute while the
// bucket streams keep several reductions in flight.
func BenchmarkStepOverlap(b *testing.B) {
	type model struct {
		name      string
		buildTask func(rank, size int) core.Task
	}
	models := []model{
		{name: "mlp", buildTask: func(rank, size int) core.Task {
			// ~165K params (1.3 MB) across 4 dense layers: enough wire time
			// on TCP for overlap to matter, enough layers for real buckets.
			train := data.Blobs(8, 64, 64, 0.4, 11)
			eval := data.Blobs(8, 64, 8, 0.4, 12)
			net := nn.NewNetwork(nn.SoftmaxCrossEntropy{},
				nn.NewDense(64, 256), nn.NewTanh(256),
				nn.NewDense(256, 256), nn.NewReLU(256),
				nn.NewDense(256, 256), nn.NewReLU(256),
				nn.NewDense(256, 8))
			return core.NewClassificationTask("mlp", net, train, eval, 1, rank, size, 5)
		}},
		{name: "lstm", buildTask: func(rank, size int) core.Task {
			// ~26K params; per-step cost dominated by BPTT over 12–40 frames.
			train := data.Sequences(data.SequenceConfig{
				Classes: 16, FeatDim: 32, Samples: 64, Noise: 0.3,
				Lengths: data.UCF101LengthDistribution{MinFrames: 12, MaxFrames: 40, Median: 20, Sigma: 0.4},
				Seed:    13,
			})
			eval := data.Sequences(data.SequenceConfig{
				Classes: 16, FeatDim: 32, Samples: 8, Noise: 0.3,
				Lengths: data.UCF101LengthDistribution{MinFrames: 12, MaxFrames: 40, Median: 20, Sigma: 0.4},
				Seed:    14,
			})
			model := nn.NewLSTMClassifier(32, 64, 16)
			return core.NewSequenceTask("lstm", model, train, eval, 2, rank, size, 7)
		}},
	}
	for _, tr := range transports() {
		tr := tr
		b.Run(tr.name, func(b *testing.B) {
			for _, m := range models {
				m := m
				b.Run(m.name, func(b *testing.B) {
					for _, overlap := range []bool{false, true} {
						overlap := overlap
						b.Run(fmt.Sprintf("overlap=%v", overlap), func(b *testing.B) {
							w, cleanup := tr.make(b, benchRanks)
							defer cleanup()
							trainers := make([]*core.Trainer, benchRanks)
							for r := 0; r < benchRanks; r++ {
								task := m.buildTask(r, benchRanks)
								opts := []collective.Option{collective.WithAlgorithm(collective.RecursiveDoubling)}
								if overlap {
									bt := task.(core.BucketedTask)
									opts = append(opts,
										collective.WithOverlap(),
										collective.WithBucketLayout(core.BucketLayout(bt, 0)...))
								}
								ex, err := collective.NewReducer(w[r], task.NumParams(), opts...)
								if err != nil {
									b.Fatal(err)
								}
								trainers[r], err = core.NewTrainer(core.Config{
									Comm: w[r], Task: task, Exchanger: ex,
									Optimizer: optimizer.NewSGD(0.01),
								})
								if err != nil {
									b.Fatal(err)
								}
							}
							defer func() {
								for _, t := range trainers {
									t.Close()
								}
							}()
							runRounds(b, benchRanks, func(rank int) error {
								_, err := trainers[rank].Step()
								return err
							})
						})
					}
				})
			}
		})
	}
}
