// Package data provides the synthetic datasets and workload generators used
// by the experiments: the hyperplane regression task of §6.2.1, Gaussian-blob
// classification tasks standing in for CIFAR-10/ImageNet (§6.2.2, §6.2.3),
// and a variable-length sequence dataset whose length distribution matches
// the UCF101 statistics reported in §2.1 (29–1,776 frames, median 167),
// which is the source of the inherent load imbalance studied in §6.3.
//
// Generators are deterministic given a seed, and the samplers partition work
// across ranks deterministically so every rank of a distributed run draws
// disjoint minibatches without communication — the same property data-parallel
// input pipelines provide in the paper's setup.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"eagersgd/internal/tensor"
)

// RegressionDataset is a supervised dataset with real-valued targets.
type RegressionDataset struct {
	Inputs  []tensor.Vector
	Targets []tensor.Vector
	// Coefficients is the ground-truth hyperplane (including the task noise
	// excluded), kept so tests can measure recovery error.
	Coefficients tensor.Vector
}

// Len returns the number of samples.
func (d *RegressionDataset) Len() int { return len(d.Inputs) }

// Hyperplane generates the regression task of §6.2.1: targets are
// y = a·x + noise for a fixed random coefficient vector a and inputs drawn
// uniformly from [-1, 1)^dim.
func Hyperplane(dim, samples int, noise float64, seed int64) *RegressionDataset {
	if dim <= 0 || samples <= 0 {
		panic(fmt.Sprintf("data: invalid hyperplane shape dim=%d samples=%d", dim, samples))
	}
	rng := rand.New(rand.NewSource(seed))
	coeff := tensor.NewVector(dim)
	coeff.Randomize(rng, 1)
	d := &RegressionDataset{
		Inputs:       make([]tensor.Vector, samples),
		Targets:      make([]tensor.Vector, samples),
		Coefficients: coeff,
	}
	for i := 0; i < samples; i++ {
		x := tensor.NewVector(dim)
		x.Randomize(rng, 1)
		y := coeff.Dot(x) + rng.NormFloat64()*noise
		d.Inputs[i] = x
		d.Targets[i] = tensor.Vector{y}
	}
	return d
}

// ClassificationDataset is a supervised dataset with integer class labels.
type ClassificationDataset struct {
	Inputs  []tensor.Vector
	Labels  []int
	Classes int
}

// Len returns the number of samples.
func (d *ClassificationDataset) Len() int { return len(d.Inputs) }

// Blobs generates an isotropic Gaussian-blob classification task: classes
// centred on random prototypes with the given spread. It stands in for the
// image classification datasets (CIFAR-10, ImageNet) whose absolute scale is
// far beyond a CPU-only reproduction; what matters for the experiments is
// that accuracy improves with training and degrades with gradient staleness,
// which this task exhibits.
func Blobs(classes, dim, samplesPerClass int, spread float64, seed int64) *ClassificationDataset {
	if classes <= 1 || dim <= 0 || samplesPerClass <= 0 {
		panic(fmt.Sprintf("data: invalid blobs shape classes=%d dim=%d spc=%d", classes, dim, samplesPerClass))
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]tensor.Vector, classes)
	for c := range centers {
		centers[c] = tensor.NewVector(dim)
		centers[c].Randomize(rng, 2)
	}
	d := &ClassificationDataset{Classes: classes}
	for c := 0; c < classes; c++ {
		for s := 0; s < samplesPerClass; s++ {
			x := centers[c].Clone()
			for i := range x {
				x[i] += rng.NormFloat64() * spread
			}
			d.Inputs = append(d.Inputs, x)
			d.Labels = append(d.Labels, c)
		}
	}
	// Shuffle so per-rank shards are class-balanced.
	rng.Shuffle(len(d.Inputs), func(i, j int) {
		d.Inputs[i], d.Inputs[j] = d.Inputs[j], d.Inputs[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	})
	return d
}

// SequenceDataset is a supervised dataset of variable-length sequences of
// feature vectors (the stand-in for per-frame Inception features of UCF101).
type SequenceDataset struct {
	Sequences [][]tensor.Vector
	Labels    []int
	Classes   int
	FeatDim   int
}

// Len returns the number of sequences.
func (d *SequenceDataset) Len() int { return len(d.Sequences) }

// Lengths returns the per-sample sequence lengths.
func (d *SequenceDataset) Lengths() []int {
	out := make([]int, len(d.Sequences))
	for i, s := range d.Sequences {
		out[i] = len(s)
	}
	return out
}

// UCF101LengthDistribution describes the video length statistics of §2.1:
// lengths between MinFrames and MaxFrames with the given median and standard
// deviation. Sampling uses a log-normal distribution fitted to the median and
// clipped to the observed range, reproducing the one-mode-plus-tail shape of
// Fig. 2a.
type UCF101LengthDistribution struct {
	MinFrames int
	MaxFrames int
	Median    float64
	Sigma     float64 // sigma of the underlying normal in log space
}

// DefaultUCF101Lengths returns the distribution parameters reported in the
// paper for the UCF101 training set.
func DefaultUCF101Lengths() UCF101LengthDistribution {
	return UCF101LengthDistribution{MinFrames: 29, MaxFrames: 1776, Median: 167, Sigma: 0.45}
}

// Sample draws one sequence length.
func (d UCF101LengthDistribution) Sample(rng *rand.Rand) int {
	mu := math.Log(d.Median)
	length := int(math.Round(math.Exp(mu + d.Sigma*rng.NormFloat64())))
	if length < d.MinFrames {
		length = d.MinFrames
	}
	if length > d.MaxFrames {
		length = d.MaxFrames
	}
	return length
}

// SequenceConfig configures Sequences.
type SequenceConfig struct {
	Classes  int
	FeatDim  int
	Samples  int
	Noise    float64
	Lengths  UCF101LengthDistribution
	Seed     int64
	MaxSteps int // optional cap on sequence length to bound test time; 0 = no cap
}

// Sequences generates a classification dataset of variable-length sequences.
// Each class has a prototype feature vector; every frame of a sample is the
// prototype plus Gaussian noise, so longer videos carry no more class signal
// per frame — but cost proportionally more to process, reproducing the
// workload imbalance of §2.1.
func Sequences(cfg SequenceConfig) *SequenceDataset {
	if cfg.Classes <= 1 || cfg.FeatDim <= 0 || cfg.Samples <= 0 {
		panic(fmt.Sprintf("data: invalid sequence config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	prototypes := make([]tensor.Vector, cfg.Classes)
	for c := range prototypes {
		prototypes[c] = tensor.NewVector(cfg.FeatDim)
		prototypes[c].Randomize(rng, 1)
	}
	d := &SequenceDataset{Classes: cfg.Classes, FeatDim: cfg.FeatDim}
	for s := 0; s < cfg.Samples; s++ {
		class := rng.Intn(cfg.Classes)
		length := cfg.Lengths.Sample(rng)
		if cfg.MaxSteps > 0 && length > cfg.MaxSteps {
			length = cfg.MaxSteps
		}
		seq := make([]tensor.Vector, length)
		for fr := range seq {
			f := prototypes[class].Clone()
			for i := range f {
				f[i] += rng.NormFloat64() * cfg.Noise
			}
			seq[fr] = f
		}
		d.Sequences = append(d.Sequences, seq)
		d.Labels = append(d.Labels, class)
	}
	return d
}

// Shard returns the index range [start, end) of the samples owned by rank
// when total samples are split evenly across size ranks (the data-parallel
// partition used by every distributed experiment).
func Shard(total, size, rank int) (int, int) {
	if size <= 0 || rank < 0 || rank >= size {
		panic(fmt.Sprintf("data: invalid shard rank=%d size=%d", rank, size))
	}
	return tensor.ChunkBounds(total, size, rank)
}

// BatchSampler deterministically enumerates minibatch index sets for a rank:
// every rank sees a disjoint shard of the dataset and cycles through it in a
// per-epoch shuffled order derived from the shared seed, so no coordination
// is needed to agree on batches.
type BatchSampler struct {
	total     int
	batchSize int
	rank      int
	size      int
	seed      int64

	start, end int
	order      []int
	cursor     int
	epoch      int
}

// NewBatchSampler creates a sampler over total samples for the given rank of
// size ranks with the per-rank batch size.
func NewBatchSampler(total, batchSize, rank, size int, seed int64) *BatchSampler {
	if batchSize <= 0 {
		panic("data: batch size must be positive")
	}
	start, end := Shard(total, size, rank)
	s := &BatchSampler{
		total: total, batchSize: batchSize, rank: rank, size: size, seed: seed,
		start: start, end: end,
	}
	s.reshuffle()
	return s
}

func (s *BatchSampler) reshuffle() {
	n := s.end - s.start
	s.order = make([]int, n)
	for i := range s.order {
		s.order[i] = s.start + i
	}
	rng := rand.New(rand.NewSource(s.seed + int64(s.epoch)*1_000_003 + int64(s.rank)*7919))
	rng.Shuffle(n, func(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] })
	s.cursor = 0
}

// Epoch returns the number of completed passes over this rank's shard.
func (s *BatchSampler) Epoch() int { return s.epoch }

// Next returns the dataset indices of the next minibatch, advancing to the
// next epoch (with a fresh shuffle) when the shard is exhausted.
func (s *BatchSampler) Next() []int {
	if len(s.order) == 0 {
		return nil
	}
	batch := make([]int, 0, s.batchSize)
	for len(batch) < s.batchSize {
		if s.cursor >= len(s.order) {
			s.epoch++
			s.reshuffle()
		}
		batch = append(batch, s.order[s.cursor])
		s.cursor++
	}
	return batch
}

// At returns the minibatch for an absolute step index — a pure function of
// (seed, rank, size, step), unlike the call-sequential Next. Data-epoch
// step/StepsPerEpoch is reshuffled on demand and the batch reads
// step%StepsPerEpoch·batchSize positions onward, wrapping within the shard.
// Step-indexed sampling is what lets an elastic run retry a failed step (or
// a joiner replay from a handoff step) and draw the exact batch the step
// would have had: gradients become deterministic in the step index, not in
// how many attempts it took to get there.
func (s *BatchSampler) At(step int) []int {
	if len(s.order) == 0 || step < 0 {
		return nil
	}
	spe := s.StepsPerEpoch()
	if e := step / spe; e != s.epoch {
		s.epoch = e
		s.reshuffle()
	}
	base := (step % spe) * s.batchSize
	batch := make([]int, 0, s.batchSize)
	for i := 0; i < s.batchSize; i++ {
		batch = append(batch, s.order[(base+i)%len(s.order)])
	}
	return batch
}

// StepsPerEpoch returns how many Next calls constitute one pass over the
// rank's shard (rounded up).
func (s *BatchSampler) StepsPerEpoch() int {
	n := s.end - s.start
	if n == 0 {
		return 0
	}
	return (n + s.batchSize - 1) / s.batchSize
}

// LengthHistogram bins sequence lengths into equal-width buckets over
// [min, max] and returns the bucket upper edges and counts — the data behind
// Fig. 2a.
func LengthHistogram(lengths []int, buckets int) (edges []float64, counts []int) {
	if buckets <= 0 || len(lengths) == 0 {
		return nil, nil
	}
	lo, hi := lengths[0], lengths[0]
	for _, l := range lengths {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	width := float64(hi-lo+1) / float64(buckets)
	edges = make([]float64, buckets)
	counts = make([]int, buckets)
	for i := range edges {
		edges[i] = float64(lo) + width*float64(i+1)
	}
	for _, l := range lengths {
		idx := int(float64(l-lo) / width)
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	return edges, counts
}
