package data

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHyperplaneDeterministicAndConsistent(t *testing.T) {
	a := Hyperplane(16, 100, 0, 42)
	b := Hyperplane(16, 100, 0, 42)
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatalf("Len = %d/%d", a.Len(), b.Len())
	}
	for i := range a.Inputs {
		if !a.Inputs[i].Equal(b.Inputs[i]) || !a.Targets[i].Equal(b.Targets[i]) {
			t.Fatalf("sample %d differs between identical seeds", i)
		}
	}
	// With zero noise, targets must equal the dot product exactly.
	for i := range a.Inputs {
		want := a.Coefficients.Dot(a.Inputs[i])
		if math.Abs(a.Targets[i][0]-want) > 1e-12 {
			t.Fatalf("sample %d target %v, want %v", i, a.Targets[i][0], want)
		}
	}
}

func TestHyperplaneNoiseChangesTargets(t *testing.T) {
	clean := Hyperplane(8, 50, 0, 7)
	noisy := Hyperplane(8, 50, 0.5, 7)
	same := 0
	for i := range clean.Targets {
		if clean.Targets[i][0] == noisy.Targets[i][0] {
			same++
		}
	}
	if same == len(clean.Targets) {
		t.Fatal("noise had no effect on targets")
	}
}

func TestHyperplaneInvalidArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Hyperplane(0, 10, 0, 1)
}

func TestBlobsShapeAndSeparability(t *testing.T) {
	d := Blobs(3, 5, 40, 0.1, 9)
	if d.Len() != 120 || d.Classes != 3 {
		t.Fatalf("Len=%d Classes=%d", d.Len(), d.Classes)
	}
	counts := make(map[int]int)
	for _, l := range d.Labels {
		counts[l]++
	}
	for c := 0; c < 3; c++ {
		if counts[c] != 40 {
			t.Fatalf("class %d has %d samples, want 40", c, counts[c])
		}
	}
	// With tiny spread, a nearest-class-mean classifier must be near perfect:
	// compute class means and check self-consistency.
	dims := len(d.Inputs[0])
	means := make(map[int][]float64)
	for c := 0; c < 3; c++ {
		means[c] = make([]float64, dims)
	}
	for i, x := range d.Inputs {
		for j, v := range x {
			means[d.Labels[i]][j] += v / 40
		}
	}
	correct := 0
	for i, x := range d.Inputs {
		best, bestDist := -1, math.Inf(1)
		for c := 0; c < 3; c++ {
			var dist float64
			for j, v := range x {
				diff := v - means[c][j]
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == d.Labels[i] {
			correct++
		}
	}
	if float64(correct)/float64(d.Len()) < 0.99 {
		t.Fatalf("blobs not separable: %d/%d", correct, d.Len())
	}
}

func TestBlobsInvalidArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Blobs(1, 4, 10, 0.1, 1)
}

func TestUCF101LengthDistribution(t *testing.T) {
	dist := DefaultUCF101Lengths()
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	lengths := make([]int, n)
	for i := range lengths {
		lengths[i] = dist.Sample(rng)
		if lengths[i] < dist.MinFrames || lengths[i] > dist.MaxFrames {
			t.Fatalf("length %d outside [%d, %d]", lengths[i], dist.MinFrames, dist.MaxFrames)
		}
	}
	sort.Ints(lengths)
	median := float64(lengths[n/2])
	if math.Abs(median-dist.Median) > dist.Median*0.15 {
		t.Fatalf("sample median %v too far from target %v", median, dist.Median)
	}
	// The distribution must have a right tail: some videos much longer than
	// the median (the paper reports a max of 1,776 frames vs a median of 167).
	if lengths[n-1] < 3*int(dist.Median) {
		t.Fatalf("no long-video tail: max %d", lengths[n-1])
	}
}

func TestSequencesShapeAndLearnability(t *testing.T) {
	cfg := SequenceConfig{
		Classes: 3, FeatDim: 4, Samples: 60, Noise: 0.05,
		Lengths: UCF101LengthDistribution{MinFrames: 5, MaxFrames: 40, Median: 12, Sigma: 0.4},
		Seed:    17,
	}
	d := Sequences(cfg)
	if d.Len() != 60 || d.Classes != 3 || d.FeatDim != 4 {
		t.Fatalf("unexpected dataset shape %+v", d)
	}
	lengths := d.Lengths()
	varies := false
	for _, l := range lengths {
		if l < 5 || l > 40 {
			t.Fatalf("length %d outside configured range", l)
		}
		if l != lengths[0] {
			varies = true
		}
	}
	if !varies {
		t.Fatal("all sequences have identical length; no workload imbalance")
	}
	// Frames of a sample must cluster around a class prototype: frame-mean
	// nearest-prototype classification should be near perfect at low noise.
	prototypes := make(map[int][]float64)
	counts := make(map[int]int)
	for i, seq := range d.Sequences {
		mean := make([]float64, cfg.FeatDim)
		for _, f := range seq {
			for j, v := range f {
				mean[j] += v / float64(len(seq))
			}
		}
		label := d.Labels[i]
		if prototypes[label] == nil {
			prototypes[label] = make([]float64, cfg.FeatDim)
		}
		for j := range mean {
			prototypes[label][j] += mean[j]
		}
		counts[label]++
	}
	for c, p := range prototypes {
		for j := range p {
			p[j] /= float64(counts[c])
		}
	}
	correct := 0
	for i, seq := range d.Sequences {
		mean := make([]float64, cfg.FeatDim)
		for _, f := range seq {
			for j, v := range f {
				mean[j] += v / float64(len(seq))
			}
		}
		best, bestDist := -1, math.Inf(1)
		for c, p := range prototypes {
			var dist float64
			for j := range p {
				diff := mean[j] - p[j]
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == d.Labels[i] {
			correct++
		}
	}
	if float64(correct)/float64(d.Len()) < 0.95 {
		t.Fatalf("sequence classes not separable: %d/%d", correct, d.Len())
	}
}

func TestSequencesMaxStepsCap(t *testing.T) {
	cfg := SequenceConfig{
		Classes: 2, FeatDim: 2, Samples: 30, Noise: 0.1,
		Lengths:  DefaultUCF101Lengths(),
		Seed:     1,
		MaxSteps: 25,
	}
	d := Sequences(cfg)
	for _, l := range d.Lengths() {
		if l > 25 {
			t.Fatalf("MaxSteps cap violated: %d", l)
		}
	}
}

func TestShardPartitionsEverything(t *testing.T) {
	f := func(totalRaw uint16, sizeRaw uint8) bool {
		total := int(totalRaw % 1000)
		size := int(sizeRaw%16) + 1
		covered := 0
		prevEnd := 0
		for r := 0; r < size; r++ {
			s, e := Shard(total, size, r)
			if s != prevEnd || e < s {
				return false
			}
			covered += e - s
			prevEnd = e
		}
		return covered == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShardInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Shard(10, 4, 9)
}

func TestBatchSamplerCoversShardEachEpoch(t *testing.T) {
	const total, batch, rank, size = 103, 8, 1, 4
	s := NewBatchSampler(total, batch, rank, size, 5)
	start, end := Shard(total, size, rank)
	steps := s.StepsPerEpoch()
	if steps != (end-start+batch-1)/batch {
		t.Fatalf("StepsPerEpoch = %d", steps)
	}
	seen := make(map[int]int)
	for i := 0; i < steps; i++ {
		for _, idx := range s.Next() {
			if idx < start || idx >= end {
				t.Fatalf("index %d outside shard [%d,%d)", idx, start, end)
			}
			seen[idx]++
		}
	}
	// Every shard element must appear at least once in one epoch's worth of
	// batches (the last batch may wrap into the next epoch).
	missing := 0
	for idx := start; idx < end; idx++ {
		if seen[idx] == 0 {
			missing++
		}
	}
	if missing > batch {
		t.Fatalf("%d shard elements never sampled in one epoch", missing)
	}
}

func TestBatchSamplerDisjointAcrossRanks(t *testing.T) {
	const total, batch, size = 64, 4, 4
	owner := make(map[int]int)
	for r := 0; r < size; r++ {
		s := NewBatchSampler(total, batch, r, size, 11)
		for i := 0; i < s.StepsPerEpoch(); i++ {
			for _, idx := range s.Next() {
				if prev, ok := owner[idx]; ok && prev != r {
					t.Fatalf("index %d sampled by ranks %d and %d", idx, prev, r)
				}
				owner[idx] = r
			}
		}
	}
}

func TestBatchSamplerEpochAdvancesAndReshuffles(t *testing.T) {
	s := NewBatchSampler(10, 10, 0, 1, 3)
	first := append([]int(nil), s.Next()...)
	if s.Epoch() != 0 {
		t.Fatalf("epoch = %d after first batch", s.Epoch())
	}
	second := append([]int(nil), s.Next()...)
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d after exhausting the shard", s.Epoch())
	}
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epoch reshuffle produced the identical order (suspicious)")
	}
}

func TestBatchSamplerInvalidBatchSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatchSampler(10, 0, 0, 1, 1)
}

func TestLengthHistogram(t *testing.T) {
	lengths := []int{1, 2, 3, 10, 10, 10, 20}
	edges, counts := LengthHistogram(lengths, 4)
	if len(edges) != 4 || len(counts) != 4 {
		t.Fatalf("histogram shape %d/%d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(lengths) {
		t.Fatalf("histogram counts %d samples, want %d", total, len(lengths))
	}
	if edges[3] < 20 {
		t.Fatalf("last edge %v must cover the maximum", edges[3])
	}
	if e, c := LengthHistogram(nil, 4); e != nil || c != nil {
		t.Fatal("empty input must produce empty histogram")
	}
}
