// Package optimizer implements the parameter update rules U(G, w, t) of
// Algorithm 1/2: plain SGD and SGD with momentum, plus simple learning-rate
// schedules. Updates operate in place on the flat parameter vectors exposed
// by internal/nn, so the distributed trainers can apply a globally reduced
// gradient with one call.
package optimizer

import (
	"fmt"

	"eagersgd/internal/tensor"
)

// Schedule maps a step index to a learning rate.
type Schedule interface {
	// LearningRate returns the learning rate for the given step.
	LearningRate(step int) float64
}

// ConstantLR always returns the same learning rate.
type ConstantLR float64

// LearningRate returns the constant value.
func (c ConstantLR) LearningRate(int) float64 { return float64(c) }

// StepDecay multiplies the base rate by Factor every Every steps.
type StepDecay struct {
	Base   float64
	Factor float64
	Every  int
}

// LearningRate returns Base * Factor^(step/Every).
func (s StepDecay) LearningRate(step int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	lr := s.Base
	for k := 0; k < step/s.Every; k++ {
		lr *= s.Factor
	}
	return lr
}

// Optimizer applies a gradient to a parameter vector.
type Optimizer interface {
	// Step applies the update w <- w + U(grad, w, step) in place.
	Step(params, grad tensor.Vector, step int)
	// StepSegment applies the update to one contiguous segment of the model:
	// params is the full flat parameter vector and grad the reduced gradient
	// for [offset, offset+len(grad)). A bucketed (overlapped) trainer applies
	// each bucket's result as it lands; applying every segment of a step
	// exactly once, in any order, must equal one full-vector Step — which
	// holds for element-wise updates like SGD and momentum.
	StepSegment(params, grad tensor.Vector, offset, step int)
	// Name identifies the optimizer in reports.
	Name() string
}

// SGD is plain stochastic gradient descent: w <- w - lr*grad.
type SGD struct {
	LR Schedule
}

// NewSGD returns plain SGD with a constant learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: ConstantLR(lr)} }

// Name returns "sgd".
func (s *SGD) Name() string { return "sgd" }

// Step applies w <- w - lr*grad.
func (s *SGD) Step(params, grad tensor.Vector, step int) {
	params.Axpy(-s.LR.LearningRate(step), grad)
}

// StepSegment applies the SGD update to one segment of the model.
func (s *SGD) StepSegment(params, grad tensor.Vector, offset, step int) {
	params[offset:offset+len(grad)].Axpy(-s.LR.LearningRate(step), grad)
}

// Momentum is SGD with classical (heavy-ball) momentum:
// v <- beta*v + grad; w <- w - lr*v.
type Momentum struct {
	LR       Schedule
	Beta     float64
	velocity tensor.Vector
}

// NewMomentum returns momentum SGD with a constant learning rate.
func NewMomentum(lr, beta float64) *Momentum {
	if beta < 0 || beta >= 1 {
		panic(fmt.Sprintf("optimizer: momentum beta %v out of [0,1)", beta))
	}
	return &Momentum{LR: ConstantLR(lr), Beta: beta}
}

// Name returns "momentum".
func (m *Momentum) Name() string { return "momentum" }

// Step applies the heavy-ball update.
func (m *Momentum) Step(params, grad tensor.Vector, step int) {
	m.ensureVelocity(len(params))
	m.velocity.Scale(m.Beta)
	m.velocity.Add(grad)
	params.Axpy(-m.LR.LearningRate(step), m.velocity)
}

// StepSegment applies the heavy-ball update to one segment of the model. The
// velocity is element-wise, so updating it segment by segment — each segment
// exactly once per step — matches the full-vector Step bit for bit.
func (m *Momentum) StepSegment(params, grad tensor.Vector, offset, step int) {
	m.ensureVelocity(len(params))
	v := m.velocity[offset : offset+len(grad)]
	v.Scale(m.Beta)
	v.Add(grad)
	params[offset:offset+len(grad)].Axpy(-m.LR.LearningRate(step), v)
}

func (m *Momentum) ensureVelocity(n int) {
	if m.velocity == nil {
		m.velocity = tensor.NewVector(n)
	}
	if len(m.velocity) != n {
		panic(fmt.Sprintf("optimizer: parameter length changed from %d to %d", len(m.velocity), n))
	}
}
