package optimizer

import (
	"math"
	"testing"

	"eagersgd/internal/tensor"
)

func TestConstantLR(t *testing.T) {
	lr := ConstantLR(0.1)
	if lr.LearningRate(0) != 0.1 || lr.LearningRate(1000) != 0.1 {
		t.Fatal("constant LR must not vary")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 1, Factor: 0.5, Every: 10}
	if s.LearningRate(0) != 1 || s.LearningRate(9) != 1 {
		t.Fatal("decay applied too early")
	}
	if s.LearningRate(10) != 0.5 || s.LearningRate(25) != 0.25 {
		t.Fatalf("decay wrong: %v %v", s.LearningRate(10), s.LearningRate(25))
	}
	if (StepDecay{Base: 2, Factor: 0.1, Every: 0}).LearningRate(100) != 2 {
		t.Fatal("Every=0 must disable decay")
	}
}

func TestSGDStep(t *testing.T) {
	opt := NewSGD(0.1)
	if opt.Name() != "sgd" {
		t.Fatal("name")
	}
	params := tensor.Vector{1, 2}
	opt.Step(params, tensor.Vector{10, -10}, 0)
	if !params.AllClose(tensor.Vector{0, 3}, 1e-12) {
		t.Fatalf("params = %v", params)
	}
}

func TestMomentumAccumulatesVelocity(t *testing.T) {
	opt := NewMomentum(1, 0.5)
	if opt.Name() != "momentum" {
		t.Fatal("name")
	}
	params := tensor.Vector{0}
	opt.Step(params, tensor.Vector{1}, 0) // v=1, w=-1
	opt.Step(params, tensor.Vector{1}, 1) // v=1.5, w=-2.5
	if math.Abs(params[0]+2.5) > 1e-12 {
		t.Fatalf("params = %v, want -2.5", params)
	}
}

func TestMomentumInvalidBetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMomentum(0.1, 1.5)
}

func TestMomentumParamLengthChangePanics(t *testing.T) {
	opt := NewMomentum(0.1, 0.9)
	opt.Step(tensor.Vector{1, 2}, tensor.Vector{1, 1}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	opt.Step(tensor.Vector{1}, tensor.Vector{1}, 1)
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = 0.5*||w - target||^2 with both optimizers.
	target := tensor.Vector{3, -2, 0.5}
	for _, opt := range []Optimizer{NewSGD(0.2), NewMomentum(0.1, 0.9)} {
		w := tensor.Vector{0, 0, 0}
		for step := 0; step < 200; step++ {
			grad := w.Clone()
			grad.Sub(target)
			opt.Step(w, grad, step)
		}
		if !w.AllClose(target, 1e-3) {
			t.Fatalf("%s did not converge: %v", opt.Name(), w)
		}
	}
}
