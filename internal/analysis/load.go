package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	loading bool
	err     error
}

// A Loader parses and type-checks packages for the analyzers. Module-local
// packages (and, in tests, stub packages under a GOPATH-style source root)
// are loaded from source so their syntax and annotations are visible;
// standard-library imports are satisfied from compiler export data located
// with `go list -export`, which works offline and needs no third-party
// tooling.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod; ModulePath its module
	// path. Import paths at or below ModulePath resolve into ModuleRoot.
	ModuleRoot string
	ModulePath string
	// SrcRoots are GOPATH-style src directories (testdata/src in golden
	// tests) consulted before the module and the standard library.
	SrcRoots []string
	// Overlay maps absolute file paths to replacement contents, letting tests
	// type-check seeded mutations of real files without touching the tree.
	Overlay map[string][]byte

	// Facts accumulates module-wide annotations as packages load.
	Facts *Facts

	pkgs    map[string]*Package
	std     types.ImporterFrom
	exports map[string]string // stdlib import path -> export data file
}

// NewLoader returns a loader rooted at the given module.
func NewLoader(moduleRoot, modulePath string) *Loader {
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		Facts:      NewFacts(),
		pkgs:       make(map[string]*Package),
		exports:    make(map[string]string),
	}
	l.std = importer.ForCompiler(l.Fset, "gc", l.lookupExport).(types.ImporterFrom)
	return l
}

// FindModule locates the enclosing go.mod from dir and returns the module
// root and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// buildContext returns a build.Context that honors the loader's overlay and
// the process build tags (GOOS/GOARCH defaults; no extra tags, so files like
// pool_leasedebug.go stay excluded exactly as in a default build).
func (l *Loader) buildContext() *build.Context {
	ctxt := build.Default
	if len(l.Overlay) > 0 {
		ctxt.OpenFile = func(path string) (io.ReadCloser, error) {
			if src, ok := l.Overlay[path]; ok {
				return io.NopCloser(bytes.NewReader(src)), nil
			}
			return os.Open(path)
		}
	}
	return &ctxt
}

// Load type-checks the package with the given import path and returns it.
// Results are cached; import cycles and type errors are reported as errors.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg.loading {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return pkg, pkg.err
	}
	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	return l.loadDir(dir, path)
}

// resolveDir maps an import path to the source directory providing it.
func (l *Loader) resolveDir(path string) (string, error) {
	for _, root := range l.SrcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	if path == l.ModulePath {
		return l.ModuleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q", path)
}

// loadDir loads the package in dir under the given import path.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, loading: true}
	l.pkgs[path] = pkg
	defer func() { pkg.loading = false }()

	bp, err := l.buildContext().ImportDir(dir, 0)
	if err != nil {
		pkg.err = fmt.Errorf("analysis: %s: %w", path, err)
		return nil, pkg.err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		filename := filepath.Join(dir, name)
		var src any
		if over, ok := l.Overlay[filename]; ok {
			src = over
		}
		file, err := parser.ParseFile(l.Fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.err = err
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		pkg.err = fmt.Errorf("analysis: type-checking %s: %w", path, err)
		return nil, pkg.err
	}
	pkg.Types = tpkg
	l.Facts.sourcePaths[path] = true
	l.Facts.collectFacts(pkg.Files, pkg.Info)
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: source roots and the module are
// consulted first, then the standard library via export data.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, err := l.resolveDir(path); err == nil {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// lookupExport locates compiler export data for a standard-library package by
// asking the go command, batching transitive dependencies in one invocation.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	if file, ok := l.exports[path]; ok {
		return os.Open(file)
	}
	cmd := exec.Command("go", "list", "-export", "-deps",
		"-f", `{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}`, path)
	cmd.Dir = l.ModuleRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list -export %s: %v: %s", path, err, stderr.String())
	}
	for _, line := range strings.Split(string(out), "\n") {
		if p, file, ok := strings.Cut(strings.TrimSpace(line), "="); ok && file != "" {
			l.exports[p] = file
		}
	}
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(file)
}

// Expand resolves package patterns ("./...", "./internal/sched", an import
// path below the module) into the sorted list of matching import paths.
// Directories without buildable Go files are skipped, as are testdata, hidden
// directories, and (for recursive patterns) nested modules.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkModule(l.ModuleRoot)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir, err := l.patternDir(base)
			if err != nil {
				return nil, err
			}
			paths, err := l.walkModule(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			dir, err := l.patternDir(pat)
			if err != nil {
				return nil, err
			}
			path, err := l.dirImportPath(dir)
			if err != nil {
				return nil, err
			}
			add(path)
		}
	}
	sort.Strings(out)
	return out, nil
}

// patternDir maps a non-recursive pattern to a directory.
func (l *Loader) patternDir(pat string) (string, error) {
	if pat == "." || pat == "./" {
		return l.ModuleRoot, nil
	}
	if strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat) {
		return filepath.Abs(pat)
	}
	// Treat as an import path.
	return l.resolveDir(pat)
}

// dirImportPath maps a directory inside the module to its import path.
func (l *Loader) dirImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// walkModule collects the import paths of all buildable packages under root.
func (l *Loader) walkModule(root string) ([]string, error) {
	var out []string
	ctxt := l.buildContext()
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if p != root {
			// Skip nested modules.
			if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		if _, err := ctxt.ImportDir(p, 0); err != nil {
			return nil // no buildable Go files here
		}
		path, err := l.dirImportPath(p)
		if err != nil {
			return err
		}
		out = append(out, path)
		return nil
	})
	return out, err
}
