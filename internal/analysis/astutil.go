package analysis

import (
	"go/ast"
	"go/types"
)

// parentMap records each node's parent, the backbone of the lexical-dominance
// approximation the flow-sensitive checks use (no SSA/CFG in the standard
// library). Built once per function body.
type parentMap map[ast.Node]ast.Node

func buildParents(root ast.Node) parentMap {
	parents := make(parentMap)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// blockNode reports whether n delimits a statement list (the granularity of
// the dominance approximation): blocks plus switch/select clause bodies.
func blockNode(n ast.Node) bool {
	switch n.(type) {
	case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
		return true
	}
	return false
}

// enclosingBlocks returns the chain of block-like ancestors of n, innermost
// first, stopping at (and excluding) function boundaries.
func enclosingBlocks(parents parentMap, n ast.Node) []ast.Node {
	var chain []ast.Node
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		if blockNode(cur) {
			chain = append(chain, cur)
		}
		if _, ok := cur.(*ast.FuncLit); ok {
			break
		}
		if _, ok := cur.(*ast.FuncDecl); ok {
			break
		}
	}
	return chain
}

// nearestBlock returns the innermost block-like ancestor of n.
func nearestBlock(parents parentMap, n ast.Node) ast.Node {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		if blockNode(cur) {
			return cur
		}
	}
	return nil
}

// lexicallyDominates reports whether an event at node a is certainly executed
// before node b on every path reaching b, under the lexical approximation:
// a precedes b in the source AND a's innermost block is an ancestor of (or
// the same as) b's block chain. This never claims dominance across sibling
// branches or out of loop bodies, so it is safe for "must already have
// happened" diagnostics (double release, use after release).
func lexicallyDominates(parents parentMap, a, b ast.Node) bool {
	if a.Pos() >= b.Pos() {
		return false
	}
	ab := nearestBlock(parents, a)
	if ab == nil {
		return false
	}
	for _, blk := range enclosingBlocks(parents, b) {
		if blk == ab {
			return true
		}
	}
	return false
}

// enclosingFunc returns the innermost enclosing function node (FuncDecl or
// FuncLit) of n, or nil.
func enclosingFunc(parents parentMap, n ast.Node) ast.Node {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		switch cur.(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return cur
		}
	}
	return nil
}

// inDefer reports whether n is part of a defer statement — either directly
// (`defer tensor.PutVector(v)`) or inside a deferred closure's body.
func inDefer(parents parentMap, n ast.Node) bool {
	for cur := n; cur != nil; cur = parents[cur] {
		if _, ok := cur.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// deferStmtOf walks outward to the enclosing defer statement, if any, for
// position comparisons: a defer covers everything after its registration.
func deferStmtOf(parents parentMap, n ast.Node) *ast.DeferStmt {
	for cur := n; cur != nil; cur = parents[cur] {
		if d, ok := cur.(*ast.DeferStmt); ok {
			return d
		}
	}
	return nil
}

// isWaitGroupMethod reports whether the call invokes sync.WaitGroup's method
// with the given name (Add, Done, Wait).
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// hasJoinEvidence reports whether a function body contains goroutine join
// plumbing: a sync.WaitGroup Done call, a close() of a channel, or a
// select/receive on a channel. lifecyclecheck accepts a `go` statement whose
// body (or resolved callee) shows such evidence; everything else needs a
// WaitGroup.Add before the launch or an explicit //eagervet:ignore.
func hasJoinEvidence(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupMethod(info, n, "Done") {
				found = true
				return false
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					return false
				}
			}
		case *ast.UnaryExpr:
			// A blocking receive: the goroutine observes a channel, typically
			// a done/stop signal that bounds its lifetime.
			if n.Op.String() == "<-" {
				found = true
				return false
			}
		case *ast.SelectStmt:
			found = true
			return false
		}
		return true
	})
	return found
}
