package analysis

import (
	"go/ast"
)

// LifecycleCheck enforces the leak-free-shutdown rule the chaos suite pins at
// runtime (PoolStats.OutstandingSince, goroutine-count assertions): in the
// concurrency-bearing packages — collective, internal/partial, internal/comm,
// internal/transport, internal/membership — every goroutine must be joinable.
// A `go` statement passes if any of:
//
//   - a sync.WaitGroup Add call precedes it in the same function (the
//     Add-before-go / defer-Done idiom used throughout the stack);
//   - it launches a closure whose body visibly participates in join plumbing
//     (WaitGroup.Done, close of a done-channel, a select or channel receive
//     that bounds its lifetime);
//   - it launches a named function or method whose body shows the same
//     evidence (resolved module-wide via the facts registry).
//
// Fire-and-forget goroutines with no join path outlive Close/Shutdown and
// show up as pool leaks and racy teardowns; either wire them to a WaitGroup
// or reaper, or document why they terminate with //eagervet:ignore.
var LifecycleCheck = &Analyzer{
	Name: "lifecyclecheck",
	Doc:  "require goroutines in collective/partial/comm/transport/membership to be joinable (WaitGroup, done channel, or reaper)",
	Run:  runLifecycleCheck,
}

func runLifecycleCheck(pass *Pass) error {
	if !pkgNameIs(pass.Pkg, "collective", "partial", "comm", "transport", "membership") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			parents := buildParents(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goStmtJoinable(pass, parents, fd.Body, g) {
					pass.Report(g.Pos(),
						"goroutine is not joinable: add sync.WaitGroup Add/Done around it, give it a done-channel select, or register it with a reaper")
				}
				return true
			})
		}
	}
	return nil
}

func goStmtJoinable(pass *Pass, parents parentMap, body *ast.BlockStmt, g *ast.GoStmt) bool {
	// (a) WaitGroup.Add lexically before the launch in the same function.
	addBefore := false
	ast.Inspect(body, func(n ast.Node) bool {
		if addBefore {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() < g.Pos() && isWaitGroupMethod(pass.Info, call, "Add") {
			addBefore = true
			return false
		}
		return true
	})
	if addBefore {
		return true
	}
	// (b) closure body shows join plumbing.
	if fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return hasJoinEvidence(fl.Body, pass.Info)
	}
	// (c) named callee with module-wide join evidence.
	if fn := calleeFunc(pass.Info, g.Call); fn != nil {
		return pass.Facts.JoinEvidence[fn.FullName()]
	}
	return false
}
