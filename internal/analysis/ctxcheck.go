package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxCheck enforces cancellation hygiene. Two rules:
//
//  1. Library code (any non-main package; tests are outside the analysis
//     scope) must not mint its own root context with context.Background() or
//     context.TODO(): roots belong to the binary entry point, and a library
//     that fabricates one severs the caller's cancellation chain. The two
//     compatibility shims that deliberately root a context (Exchange,
//     Trainer.Step) carry //eagervet:ignore annotations explaining why.
//
//  2. A blocking collective or transport call issued from inside a loop must
//     be the cancellable variant when one exists: calling Recv in a
//     for-loop when RecvCancel is available (same for *Context siblings)
//     recreates the unkillable-engine-loop bug the PR 5 chaos suite exists
//     to catch. The check fires only when the callee takes neither a
//     context.Context nor a stop/done channel and a sibling named
//     <Name>Cancel or <Name>Context is in scope.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "forbid context.Background/TODO in library code; require cancellable call variants inside loops",
	Run:  runCtxCheck,
}

func runCtxCheck(pass *Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			if !isMain && isContextRoot(fn) {
				pass.Report(call.Pos(),
					"library code must not call context.%s: accept a context (or stop channel) from the caller instead",
					fn.Name())
			}
			checkLoopCancellable(pass, parents, call, fn)
			return true
		})
	}
	return nil
}

func isContextRoot(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// checkLoopCancellable flags a call inside a for/range body to a module-local
// function that has no cancellation input when a *Cancel/*Context sibling
// exists.
func checkLoopCancellable(pass *Pass, parents parentMap, call *ast.CallExpr, fn *types.Func) {
	if !isSourcePkg(pass.Facts, fn) {
		return
	}
	name := fn.Name()
	if strings.HasSuffix(name, "Cancel") || strings.HasSuffix(name, "Context") {
		return
	}
	if !inLoopBody(parents, call) {
		return
	}
	sig := fn.Type().(*types.Signature)
	if hasCancellationParam(sig) {
		return
	}
	variant := cancellableSibling(fn)
	if variant == "" {
		return
	}
	pass.Report(call.Pos(),
		"loop-resident call to %s has no cancellation path: use %s so shutdown can interrupt the loop",
		name, variant)
}

// inLoopBody reports whether n sits inside the body of a for or range
// statement within the same function (crossing into a closure resets the
// search: the closure may itself be the loop body's unit of work).
func inLoopBody(parents parentMap, n ast.Node) bool {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		switch cur.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// hasCancellationParam reports whether the signature accepts a
// context.Context or a struct{}-channel (done/stop channel) anywhere.
func hasCancellationParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) || isSignalChan(t) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isSignalChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// cancellableSibling returns the name of a <Name>Cancel or <Name>Context
// variant visible where fn is defined — a package-level function for
// package-level fn, a method on the same receiver type for methods.
func cancellableSibling(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	for _, suffix := range []string{"Cancel", "Context"} {
		want := fn.Name() + suffix
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			obj, _, _ := types.LookupFieldOrMethod(t, true, fn.Pkg(), want)
			if m, ok := obj.(*types.Func); ok && m != nil {
				return want
			}
		} else if fn.Pkg() != nil {
			if _, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok {
				return want
			}
		}
	}
	return ""
}
