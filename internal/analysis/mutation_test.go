package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The mutation tests seed known invariant violations into real source files
// through the loader's overlay — the tree on disk is never touched — and
// require the suite to catch them. They pin the acceptance criteria from the
// analyzers' introduction: deleting a PutVector in internal/collectives must
// trip leasecheck, and hardcoding a tag literal in internal/sched must trip
// tagcheck.

// mutate loads the file, applies old->new (which must change it), and returns
// an overlay for it.
func mutate(t *testing.T, path, old, new string) map[string][]byte {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(src, []byte(old)) {
		t.Fatalf("%s no longer contains %q; update the mutation test", path, old)
	}
	return map[string][]byte{path: bytes.Replace(src, []byte(old), []byte(new), 1)}
}

// runOn loads one module package under the overlay and returns the suite's
// diagnostics for it.
func runOn(t *testing.T, overlay map[string][]byte, pkgPath string) []Diagnostic {
	t.Helper()
	l := newTestLoader(t, overlay)
	pkg, err := l.Load(pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	diags, err := Run(pkg, All(), l.Fset, l.Facts)
	if err != nil {
		t.Fatalf("run %s: %v", pkgPath, err)
	}
	return diags
}

func requireFinding(t *testing.T, diags []Diagnostic, analyzer, substr string) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Fatalf("expected a %s diagnostic containing %q; got %d diagnostics: %v", analyzer, substr, len(diags), diags)
}

// TestMutationDeletedPutVector deletes the scratch buffer's deferred release
// in internal/collectives; leasecheck must report the leak.
func TestMutationDeletedPutVector(t *testing.T) {
	l := newTestLoader(t, nil)
	file := filepath.Join(l.ModuleRoot, "internal", "collectives", "collectives.go")
	overlay := mutate(t, file,
		"defer tensor.PutVector(scratch)",
		"_ = scratch")
	diags := runOn(t, overlay, l.ModulePath+"/internal/collectives")
	requireFinding(t, diags, "leasecheck", `pool lease "scratch"`)
}

// TestMutationHardcodedTag replaces a named tag derivation in internal/sched
// with a raw literal; tagcheck must flag it.
func TestMutationHardcodedTag(t *testing.T) {
	l := newTestLoader(t, nil)
	file := filepath.Join(l.ModuleRoot, "internal", "sched", "builders.go")
	overlay := mutate(t, file,
		"s.AddRecv(peer, actTag, ActivationBuffer, DepAnd)",
		"s.AddRecv(peer, 31337, ActivationBuffer, DepAnd)")
	diags := runOn(t, overlay, l.ModulePath+"/internal/sched")
	requireFinding(t, diags, "tagcheck", "raw literal tag")
}

// TestMutationContextRoot plants a context.Background() root in library code;
// ctxcheck must flag it. (internal/partial already imports context, so the
// mutation stays compilable.)
func TestMutationContextRoot(t *testing.T) {
	l := newTestLoader(t, nil)
	file := filepath.Join(l.ModuleRoot, "internal", "partial", "partial.go")
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the shim's ignore directive so the existing root is exposed: the
	// suppression, not the analyzer, is what keeps the tree clean.
	const directive = "//eagervet:ignore ctxcheck"
	if !bytes.Contains(src, []byte(directive)) {
		t.Fatalf("%s no longer carries the ctxcheck suppression; update the mutation test", file)
	}
	mutated := bytes.Replace(src, []byte(directive+" "), []byte("// "), 1)
	// The replacement leaves the rest of the comment line behind; cut the
	// stale "-- reason" text too by neutralizing the whole line marker.
	diags := runOn(t, map[string][]byte{file: mutated}, l.ModulePath+"/internal/partial")
	requireFinding(t, diags, "ctxcheck", "context.Background")
}

// TestMutationDetachedGoroutine plants a goroutine with no join plumbing
// (before the constructor's WaitGroup.Add, so the Add-before-go idiom does
// not cover it) in internal/comm; lifecyclecheck must flag the launch.
func TestMutationDetachedGoroutine(t *testing.T) {
	l := newTestLoader(t, nil)
	file := filepath.Join(l.ModuleRoot, "internal", "comm", "comm.go")
	overlay := mutate(t, file,
		"c.cond = sync.NewCond(&c.mu)",
		"c.cond = sync.NewCond(&c.mu)\n\tgo func() { for i := 0; i >= 0; i++ { _ = i } }()")
	diags := runOn(t, overlay, l.ModulePath+"/internal/comm")
	requireFinding(t, diags, "lifecyclecheck", "not joinable")
}
