package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LeaseCheck enforces the PR 2 buffer-ownership model (DESIGN.md, "Buffer
// ownership & pooling"): every vector leased with tensor.GetVector /
// GetVectorZero / GetVectorCopy must leave the function through exactly one
// ownership edge — tensor.PutVector / comm.Release, an ownership-transferring
// send (comm.Send / comm.Isend payload), storage into longer-lived state, a
// return, or a callee annotated //eagersgd:takes-ownership. The analysis is
// intra-function and flow-approximate (lexical dominance over the AST):
//
//   - a lease with no release, transfer, store, or capture anywhere in the
//     function is a straight-line leak;
//   - a return statement reachable after the lease with no prior (or
//     deferred) release on the path is an early-return leak;
//   - a second release dominated by a first is a double release;
//   - any use dominated by a strict release (PutVector / Release / Send /
//     Isend) is a use-after-release or use-after-send.
//
// Dominance never crosses sibling branches or loop boundaries, so the
// "already released" and "use after release" findings are certain; the leak
// findings are conservative and can be silenced case by case with
// //eagervet:ignore leasecheck -- <reason> when ownership demonstrably leaves
// through an edge the analyzer cannot see.
var LeaseCheck = &Analyzer{
	Name: "leasecheck",
	Doc:  "verify pool leases (tensor.GetVector*) are released or transferred exactly once on every path",
	Run:  runLeaseCheck,
}

// leaseEventKind classifies what happens to a lease at one syntactic site.
type leaseEventKind int

const (
	evUse          leaseEventKind = iota // borrow: read, slice, pass to an ordinary call
	evRelease                            // strict release: PutVector / Release
	evTransfer                           // strict transfer: comm.Send / comm.Isend payload
	evAnnotated                          // callee annotated //eagersgd:takes-ownership
	evStored                             // stored into a field/map/slice/channel/global or aliased
	evReturned                           // returned to the caller
	evCaptured                           // captured by a (non-defer-release) closure
	evDeferRelease                       // released inside a defer registered at this position
)

type leaseEvent struct {
	kind leaseEventKind
	node ast.Node // the identifier use (or defer statement for evDeferRelease)
	call *ast.CallExpr
}

// ownershipEdge reports whether the event passes ownership out of the
// function, satisfying the leak checks.
func (e leaseEvent) ownershipEdge() bool {
	switch e.kind {
	case evRelease, evTransfer, evAnnotated, evStored, evReturned, evCaptured, evDeferRelease:
		return true
	}
	return false
}

// strictRelease reports whether the event certainly invalidates the lease at
// its site (arming use-after-release and double-release).
func (e leaseEvent) strictRelease() bool {
	return e.kind == evRelease || e.kind == evTransfer
}

type leaseInstance struct {
	obj    *types.Var
	name   string
	get    *ast.CallExpr // the tensor.Get* call minting the lease
	getPos token.Pos
	endPos token.Pos // next reassignment of the variable, or scope end
	events []leaseEvent
}

func runLeaseCheck(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					leaseCheckFunc(pass, fn.Body)
				}
				return false // leaseCheckFunc handles nested closures itself
			}
			return true
		})
	}
	return nil
}

// leaseCheckFunc analyzes one top-level function body, including nested
// closures: each closure body is analyzed as its own scope for leases minted
// inside it, while outer leases referenced from a closure count as captured.
func leaseCheckFunc(pass *Pass, body *ast.BlockStmt) {
	parents := buildParents(body)
	var scopes []ast.Node // function-scope roots: the body plus nested FuncLits
	scopes = append(scopes, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, fl.Body)
		}
		return true
	})
	for _, scope := range scopes {
		leaseCheckScope(pass, parents, scope.(*ast.BlockStmt))
	}
}

// scopeRootOf returns the function-scope body (outer body or closure body)
// that directly contains n.
func scopeRootOf(parents parentMap, n ast.Node, outer *ast.BlockStmt) ast.Node {
	for cur := n; cur != nil; cur = parents[cur] {
		if fl, ok := cur.(*ast.FuncLit); ok {
			return fl.Body
		}
		if cur == ast.Node(outer) {
			return outer
		}
	}
	return nil
}

func leaseCheckScope(pass *Pass, parents parentMap, scope *ast.BlockStmt) {
	info := pass.Info
	// Pass 1: find the lease-minting assignments whose LHS is a plain local
	// identifier. (Get calls used directly as arguments or return values pass
	// ownership on immediately and need no tracking.)
	var instances []*leaseInstance
	ast.Inspect(scope, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if scopeRootOf(parents, as, scope) != ast.Node(scope) {
			return true // minted inside a nested closure; that scope handles it
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isLeaseGet(pass, call) {
			return true
		}
		if len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := localVar(info, id)
		if obj == nil {
			return true
		}
		instances = append(instances, &leaseInstance{
			obj:    obj,
			name:   id.Name,
			get:    call,
			getPos: as.Pos(),
			endPos: obj.Parent().End(),
		})
		return true
	})
	if len(instances) == 0 {
		return
	}

	// Truncate each instance at the variable's next reassignment.
	byVar := make(map[*types.Var][]*leaseInstance)
	for _, inst := range instances {
		byVar[inst.obj] = append(byVar[inst.obj], inst)
	}
	ast.Inspect(scope, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := assignedVar(info, id)
			if obj == nil {
				continue
			}
			for _, inst := range byVar[obj] {
				if as.Pos() > inst.getPos && as.Pos() < inst.endPos {
					inst.endPos = as.Pos()
				}
			}
		}
		return true
	})

	// Pass 2: classify every use of each instance's variable in its range.
	ast.Inspect(scope, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		for _, inst := range byVar[obj] {
			if id.Pos() > inst.getPos && id.Pos() < inst.endPos {
				ev := classifyLeaseUse(pass, parents, scope, id)
				inst.events = append(inst.events, ev)
			}
		}
		return true
	})

	// Pass 3: diagnostics.
	var returns []*ast.ReturnStmt
	ast.Inspect(scope, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok && scopeRootOf(parents, r, scope) == ast.Node(scope) {
			returns = append(returns, r)
		}
		return true
	})
	for _, inst := range instances {
		sort.Slice(inst.events, func(i, j int) bool { return inst.events[i].node.Pos() < inst.events[j].node.Pos() })
		reportLeaseDiagnostics(pass, parents, inst, returns)
	}
}

func reportLeaseDiagnostics(pass *Pass, parents parentMap, inst *leaseInstance, returns []*ast.ReturnStmt) {
	edge := false
	for _, ev := range inst.events {
		if ev.ownershipEdge() {
			edge = true
			break
		}
	}
	if !edge {
		pass.Report(inst.get.Pos(),
			"pool lease %q is never released or transferred: add tensor.PutVector / comm.Release, hand it to an owning call, or annotate the consumer //eagersgd:takes-ownership",
			inst.name)
		return
	}

	// Early-return leak: a return inside the lease's live range that no
	// ownership edge (generously: any edge lexically before the return, or a
	// defer registered before it) covers.
	for _, ret := range returns {
		if ret.Pos() <= inst.getPos || ret.Pos() >= inst.endPos {
			continue
		}
		covered := false
		for _, ev := range inst.events {
			if ev.node.Pos() < ret.End() && ev.ownershipEdge() {
				covered = true
				break
			}
		}
		if !covered {
			pass.Report(ret.Pos(),
				"pool lease %q (leased at line %d) may leak on this return path: release it or defer tensor.PutVector before returning",
				inst.name, pass.Fset.Position(inst.getPos).Line)
		}
	}

	// Double release and use-after-release, using strict dominance.
	for i, rel := range inst.events {
		if !rel.strictRelease() && rel.kind != evDeferRelease {
			continue
		}
		for j, ev := range inst.events {
			if i == j || rel.call != nil && ev.call == rel.call {
				continue
			}
			switch {
			case ev.strictRelease():
				if rel.kind == evDeferRelease {
					// A deferred release runs last: any strict release after
					// the defer's registration releases the lease twice.
					if d := deferStmtOf(parents, rel.node); d != nil && d.Pos() < ev.node.Pos() {
						pass.Report(ev.node.Pos(),
							"pool lease %q released twice: a deferred release is registered at line %d",
							inst.name, pass.Fset.Position(d.Pos()).Line)
					}
				} else if lexicallyDominates(parents, rel.node, ev.node) {
					pass.Report(ev.node.Pos(),
						"pool lease %q already released at line %d", inst.name, pass.Fset.Position(rel.node.Pos()).Line)
				}
			default:
				if rel.strictRelease() && lexicallyDominates(parents, rel.node, ev.node) {
					what := "release"
					if rel.kind == evTransfer {
						what = "ownership transfer"
					}
					pass.Report(ev.node.Pos(),
						"use of pool lease %q after %s at line %d", inst.name, what, pass.Fset.Position(rel.node.Pos()).Line)
				}
			}
		}
	}
}

// isLeaseGet reports whether the call mints a pool lease: tensor.GetVector,
// GetVectorZero, or GetVectorCopy (in internal/tensor or its public facade).
func isLeaseGet(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !pkgNameIs(fn.Pkg(), "tensor") {
		return false
	}
	switch fn.Name() {
	case "GetVector", "GetVectorZero", "GetVectorCopy":
		return true
	}
	return false
}

// isLeaseRelease reports whether fn is a strict release: tensor.PutVector or
// comm.Release.
func isLeaseRelease(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	return (pkgNameIs(fn.Pkg(), "tensor") && fn.Name() == "PutVector") ||
		(pkgNameIs(fn.Pkg(), "comm") && fn.Name() == "Release")
}

// isOwnershipTransfer reports whether fn consumes its payload argument:
// comm.Communicator.Send / Isend (ownership transfers even on error).
func isOwnershipTransfer(fn *types.Func) bool {
	if fn == nil || !pkgNameIs(fn.Pkg(), "comm") {
		return false
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Send", "Isend":
		return true
	}
	return false
}

// classifyLeaseUse determines what one identifier occurrence does with the
// lease, by walking up from the identifier through value-transparent nodes
// (parens, slices) to the consuming construct.
func classifyLeaseUse(pass *Pass, parents parentMap, scope *ast.BlockStmt, id *ast.Ident) leaseEvent {
	ev := leaseEvent{kind: evUse, node: id}

	// Captured by a closure nested below this scope?
	if scopeRootOf(parents, id, scope) != ast.Node(scope) {
		// Inside a nested closure. A deferred closure that releases the lease
		// is the canonical cleanup idiom; classify by the consuming call if
		// there is one, else treat as captured.
		ev = classifyConsumer(pass, parents, id)
		if ev.strictRelease() && inDefer(parents, id) {
			return leaseEvent{kind: evDeferRelease, node: id, call: ev.call}
		}
		if ev.strictRelease() || ev.kind == evAnnotated {
			// Released inside a non-defer closure: when the closure runs is
			// unknowable here; treat as captured (ownership leaves).
			return leaseEvent{kind: evCaptured, node: id, call: ev.call}
		}
		return leaseEvent{kind: evCaptured, node: id}
	}

	ev = classifyConsumer(pass, parents, id)
	if ev.strictRelease() && inDefer(parents, id) {
		return leaseEvent{kind: evDeferRelease, node: id, call: ev.call}
	}
	return ev
}

// classifyConsumer inspects the syntactic context of the identifier.
func classifyConsumer(pass *Pass, parents parentMap, id *ast.Ident) leaseEvent {
	info := pass.Info
	var cur ast.Node = id
	for {
		parent := parents[cur]
		if parent == nil {
			return leaseEvent{kind: evUse, node: id}
		}
		switch p := parent.(type) {
		case *ast.ParenExpr:
			cur = parent
			continue
		case *ast.SliceExpr:
			if p.X == cur {
				cur = parent // v[lo:hi] still aliases the lease
				continue
			}
			return leaseEvent{kind: evUse, node: id}
		case *ast.CallExpr:
			if ast.Unparen(p.Fun) == cur || isArgOf(p, cur) < 0 {
				return leaseEvent{kind: evUse, node: id}
			}
			fn := calleeFunc(info, p)
			switch {
			case isLeaseRelease(fn):
				return leaseEvent{kind: evRelease, node: id, call: p}
			case isOwnershipTransfer(fn) && isVectorArg(info, p, cur):
				return leaseEvent{kind: evTransfer, node: id, call: p}
			case fn != nil && pass.Facts != nil && pass.Facts.TakesOwnership[fn.FullName()]:
				return leaseEvent{kind: evAnnotated, node: id, call: p}
			case fn == nil && isBuiltinAppend(info, p):
				return leaseEvent{kind: evStored, node: id, call: p}
			}
			return leaseEvent{kind: evUse, node: id, call: p}
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if ast.Unparen(rhs) != cur {
					continue
				}
				// The lease value flows into another location, aliasing or
				// storing it — unless the target is the blank identifier,
				// which discards the value and keeps ownership here.
				if i < len(p.Lhs) {
					if lhs, ok := p.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
						return leaseEvent{kind: evUse, node: id}
					}
				}
				return leaseEvent{kind: evStored, node: id}
			}
			return leaseEvent{kind: evUse, node: id}
		case *ast.ReturnStmt:
			return leaseEvent{kind: evReturned, node: id}
		case *ast.CompositeLit:
			return leaseEvent{kind: evStored, node: id}
		case *ast.KeyValueExpr:
			cur = parent
			continue
		case *ast.SendStmt:
			if p.Value == cur {
				return leaseEvent{kind: evStored, node: id}
			}
			return leaseEvent{kind: evUse, node: id}
		case *ast.IndexExpr, *ast.StarExpr, *ast.UnaryExpr, *ast.BinaryExpr,
			*ast.SelectorExpr, *ast.TypeAssertExpr, *ast.RangeStmt, *ast.IfStmt,
			*ast.ForStmt, *ast.SwitchStmt, *ast.ExprStmt, *ast.IncDecStmt, *ast.CaseClause:
			return leaseEvent{kind: evUse, node: id}
		default:
			return leaseEvent{kind: evUse, node: id}
		}
	}
}

// isArgOf returns the argument index of expr in call, or -1.
func isArgOf(call *ast.CallExpr, expr ast.Node) int {
	for i, a := range call.Args {
		if ast.Unparen(a) == expr {
			return i
		}
	}
	return -1
}

// isVectorArg reports whether expr occupies a vector-typed (payload)
// parameter of the call — the position through which ownership transfers.
func isVectorArg(info *types.Info, call *ast.CallExpr, expr ast.Node) bool {
	idx := isArgOf(call, expr)
	if idx < 0 {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if idx >= sig.Params().Len() {
		if !sig.Variadic() {
			return false
		}
		idx = sig.Params().Len() - 1
	}
	t := sig.Params().At(idx).Type()
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// localVar returns the *types.Var defined or used by id when it is a
// function-local variable (not a field, global, or parameter of another
// function).
func localVar(info *types.Info, id *ast.Ident) *types.Var {
	var obj types.Object
	if def, ok := info.Defs[id]; ok {
		obj = def
	} else if use, ok := info.Uses[id]; ok {
		obj = use
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == nil || v.Parent().Parent() == nil {
		return nil // package-level
	}
	return v
}

// assignedVar resolves the variable an assignment LHS identifier refers to
// (covering both := definitions and = reassignments).
func assignedVar(info *types.Info, id *ast.Ident) *types.Var {
	if def, ok := info.Defs[id].(*types.Var); ok {
		return def
	}
	if use, ok := info.Uses[id].(*types.Var); ok {
		return use
	}
	return nil
}
