// Package analysis implements eagervet, the repository's static-analysis
// suite. It encodes the stack's hand-maintained invariant systems — the
// buffer-ownership/lease model of internal/tensor and internal/comm, the
// per-stream tag-block discipline of internal/sched and internal/collectives,
// and the leak-free-shutdown rules pinned by the chaos suite — as compile-time
// checks, so every new package upholds them without re-learning the idioms
// from DESIGN.md (see the "Invariants as code" section there).
//
// The package is self-contained on the Go standard library: it mirrors the
// shape of golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, golden
// tests over testdata/src) without depending on it, because this repository
// builds with no third-party modules. The cmd/eagervet driver runs the suite
// over package patterns; see that command and DESIGN.md for usage.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //eagervet:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run analyzes one package and reports findings via Pass.Report.
	Run func(*Pass) error
}

// A Pass provides one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Facts carries module-wide annotation knowledge collected at load time
	// (//eagersgd:takes-ownership callees, goroutine join evidence).
	Facts *Facts

	diags *[]Diagnostic
}

// Report records a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Facts is the module-wide annotation registry, built while packages are
// loaded from source. It stands in for go/analysis fact propagation: because
// the loader type-checks every in-module dependency from source, annotations
// on a callee are visible when any caller is analyzed.
type Facts struct {
	// TakesOwnership holds the full names (types.Func.FullName) of functions
	// whose doc comment carries //eagersgd:takes-ownership: passing a pool
	// lease to them transfers the lease out of the caller.
	TakesOwnership map[string]bool
	// JoinEvidence holds the full names of functions whose body contains
	// goroutine join plumbing (a WaitGroup.Done, the close of a done-style
	// channel, or a select/receive on a channel): `go f()` of such a function
	// is considered joinable by lifecyclecheck.
	JoinEvidence map[string]bool

	// sourcePaths records the import paths loaded from source (module
	// packages and testdata stubs) as opposed to export data (stdlib).
	sourcePaths map[string]bool
}

// NewFacts returns an empty registry.
func NewFacts() *Facts {
	return &Facts{
		TakesOwnership: make(map[string]bool),
		JoinEvidence:   make(map[string]bool),
		sourcePaths:    make(map[string]bool),
	}
}

// TakesOwnershipDirective is the annotation, written in a function's doc
// comment, that tells leasecheck the function assumes ownership of any pool
// lease passed to it (storing it in a plan, handing it to a transport, ...).
const TakesOwnershipDirective = "eagersgd:takes-ownership"

// collectFacts scans one type-checked package's syntax for fact-bearing
// declarations. Called by the loader for every module and testdata package.
func (f *Facts) collectFacts(files []*ast.File, info *types.Info) {
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.Contains(c.Text, TakesOwnershipDirective) {
						f.TakesOwnership[obj.FullName()] = true
					}
				}
			}
			if fd.Body != nil && hasJoinEvidence(fd.Body, info) {
				f.JoinEvidence[obj.FullName()] = true
			}
		}
	}
}

// All returns the full eagervet suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{LeaseCheck, TagCheck, LifecycleCheck, CtxCheck}
}

// Run executes the analyzers over one loaded package, applies the
// //eagervet:ignore suppression directives, and returns the surviving
// diagnostics sorted by position. Malformed directives (missing reason,
// unknown analyzer name) surface as diagnostics of the pseudo-analyzer
// "eagervet".
func Run(pkg *Package, azs []*Analyzer, fset *token.FileSet, facts *Facts) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, az := range azs {
		pass := &Pass{
			Analyzer: az,
			Fset:     fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Facts:    facts,
			diags:    &diags,
		}
		if err := az.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", az.Name, pkg.Path, err)
		}
	}
	known := make(map[string]bool, len(azs))
	for _, az := range azs {
		known[az.Name] = true
	}
	dirs, bad := parseIgnoreDirectives(pkg.Files, fset, known)
	diags = applyIgnores(diags, dirs, fset)
	diags = append(diags, bad...)
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// pkgNameIs reports whether the package's import path identifies the named
// subsystem: its last path element equals name. This matches both the real
// module layout ("eagersgd/internal/tensor", "eagersgd/tensor") and the flat
// stub packages used by the analyzers' golden tests ("tensor").
func pkgNameIs(p *types.Package, names ...string) bool {
	if p == nil {
		return false
	}
	path := p.Path()
	last := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		last = path[i+1:]
	}
	for _, n := range names {
		if last == n {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through function-typed values, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // instantiated generic function
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// isModulePkg reports whether the function's package was loaded from source
// (the module under analysis or a testdata stub) rather than from export data
// (the standard library). Source packages are exactly those whose path has no
// dot in its first element — the module path "eagersgd" and testdata stubs —
// plus everything below them; the standard library also has dotless paths, so
// the loader records the distinction explicitly.
func isSourcePkg(facts *Facts, fn *types.Func) bool {
	// JoinEvidence/TakesOwnership are only populated for source-loaded
	// packages; sourcePkgs tracks the full set.
	return fn != nil && fn.Pkg() != nil && facts != nil && facts.sourcePaths[fn.Pkg().Path()]
}
