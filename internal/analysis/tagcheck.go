package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// TagCheck enforces the tag-block discipline (DESIGN.md, "Tag-space layout"):
// every distinct logical stream owns a named block of the message-tag space
// (collectives tagBase/tagSpan, sched TagStride, partial DefaultBaseTag), and
// call sites must derive tags from those names. A raw integer literal passed
// as a tag argument silently collides with whichever block happens to cover
// that number — the class of bug the registries exist to prevent — so the
// analyzer flags any tag-position argument built purely from literals.
//
// A "tag position" is an integer-typed parameter whose name is, or ends or
// begins with, "tag" ("tag", "sendTag", "recvTag", "tagBase", ...), on any
// function in this module. Constant declarations are unaffected (the blocks
// themselves are defined with literals); 0 is allowed as the conventional
// "no tag / default stream" sentinel.
var TagCheck = &Analyzer{
	Name: "tagcheck",
	Doc:  "require message-tag arguments to derive from named tag-block constants, not raw literals",
	Run:  runTagCheck,
}

func runTagCheck(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCallTags(pass, n)
			case *ast.CompositeLit:
				checkCompositeTags(pass, n)
			}
			return true
		})
	}
	return nil
}

// isTagParamName reports whether a parameter or field name designates a
// message tag.
func isTagParamName(name string) bool {
	l := strings.ToLower(name)
	return l == "tag" || strings.HasSuffix(l, "tag") || strings.HasPrefix(l, "tag")
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// checkCallTags inspects one call: for every tag-named integer parameter of a
// module-local callee, the argument must mention a named constant, variable,
// or call — not be assembled from literals alone.
func checkCallTags(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !isSourcePkg(pass.Facts, fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len() {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		p := params.At(pi)
		if !isTagParamName(p.Name()) || !isIntType(p.Type()) {
			continue
		}
		reportLiteralTag(pass, arg, fn.Name(), p.Name())
	}
}

// checkCompositeTags inspects keyed composite literals (plan/op structs) for
// tag fields initialized from raw literals.
func checkCompositeTags(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	// Only police module-local struct types.
	if named, ok := tv.Type.(*types.Named); ok {
		if named.Obj().Pkg() == nil || !pass.Facts.sourcePaths[named.Obj().Pkg().Path()] {
			return
		}
	} else {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !isTagParamName(key.Name) {
			continue
		}
		var fieldType types.Type
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == key.Name {
				fieldType = st.Field(i).Type()
				break
			}
		}
		if fieldType == nil || !isIntType(fieldType) {
			continue
		}
		reportLiteralTag(pass, kv.Value, tv.Type.String(), key.Name)
	}
}

// reportLiteralTag flags arg when it is built purely from literals (no named
// constant, variable, field, or call anywhere in the expression) and its
// constant value is not the 0 sentinel.
func reportLiteralTag(pass *Pass, arg ast.Expr, callee, param string) {
	if mentionsName(arg) {
		return
	}
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
			return
		}
	}
	pass.Report(arg.Pos(),
		"raw literal tag passed as %q to %s: derive tags from the named tag-block constants (collectives tagBase, sched.TagStride, partial.DefaultBaseTag, ...)",
		param, callee)
}

// mentionsName reports whether the expression contains any identifier or
// selector — i.e. whether the tag value is rooted in something named.
func mentionsName(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr:
			found = true
			return false
		}
		return true
	})
	return found
}
