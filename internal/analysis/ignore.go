package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// IgnoreDirective is the suppression annotation:
//
//	//eagervet:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// Placed on (or immediately above) a flagged line it silences that line's
// diagnostics for the named analyzers only; placed in the file's package doc
// it silences them for the whole file. The reason is mandatory — an ignore
// without one is itself a diagnostic — so every suppression documents why the
// invariant holds even though the analyzer cannot see it.
const IgnoreDirective = "eagervet:ignore"

type ignoreScope int

const (
	scopeLine ignoreScope = iota // the directive's line (and the next, for standalone comments)
	scopeFile                    // the whole file
)

type ignore struct {
	analyzers []string
	file      string
	line      int  // line the directive appears on
	ownLine   bool // the comment is alone on its line (suppress the following line too)
	scope     ignoreScope
}

var ignoreRe = regexp.MustCompile(`^//\s*` + IgnoreDirective + `\b(.*)$`)

// parseIgnoreDirectives extracts every //eagervet:ignore directive from the
// files. Malformed directives (no analyzer, unknown analyzer, missing
// "-- reason") are returned as diagnostics of the pseudo-analyzer "eagervet".
func parseIgnoreDirectives(files []*ast.File, fset *token.FileSet, known map[string]bool) ([]ignore, []Diagnostic) {
	var igs []ignore
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{Analyzer: "eagervet", Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, file := range files {
		pkgLine := fset.Position(file.Package).Line
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				rest := strings.TrimSpace(m[1])
				names, reason, hasReason := strings.Cut(rest, "--")
				names = strings.TrimSpace(names)
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				if names == "" {
					report(c.Pos(), "%s directive names no analyzer: //%s <analyzer> -- <reason>", IgnoreDirective, IgnoreDirective)
					continue
				}
				var list []string
				ok := true
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if !known[n] {
						report(c.Pos(), "%s names unknown analyzer %q", IgnoreDirective, n)
						ok = false
						break
					}
					list = append(list, n)
				}
				if !ok {
					continue
				}
				if !hasReason || reason == "" {
					report(c.Pos(), "%s %s requires a reason: //%s %s -- <why the invariant holds here>", IgnoreDirective, names, IgnoreDirective, names)
					continue
				}
				ig := ignore{analyzers: list, file: pos.Filename, line: pos.Line, ownLine: pos.Column == 1 || onOwnLine(fset, file, c)}
				if pos.Line <= pkgLine {
					ig.scope = scopeFile
				}
				igs = append(igs, ig)
			}
		}
	}
	return igs, bad
}

// onOwnLine reports whether comment c shares its line with no non-comment
// code, by checking that no statement or declaration token starts on it.
func onOwnLine(fset *token.FileSet, file *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	shared := false
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || shared {
			return false
		}
		switch n.(type) {
		case *ast.File, *ast.Comment, *ast.CommentGroup:
			return true
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if line < start || line > end {
			return line >= start-1 // prune subtrees that cannot span the line
		}
		// The node spans the comment's line; only leaf-ish tokens matter, but
		// any node *starting* on the line means code shares it.
		if start == line && n.Pos() < c.Pos() {
			shared = true
			return false
		}
		return true
	})
	return !shared
}

// applyIgnores filters out the diagnostics matched by a directive.
func applyIgnores(diags []Diagnostic, igs []ignore, fset *token.FileSet) []Diagnostic {
	if len(igs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, ig := range igs {
			if ig.file != pos.Filename || !containsName(ig.analyzers, d.Analyzer) {
				continue
			}
			switch ig.scope {
			case scopeFile:
				suppressed = true
			case scopeLine:
				if pos.Line == ig.line || (ig.ownLine && pos.Line == ig.line+1) {
					suppressed = true
				}
			}
			if suppressed {
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

func containsName(names []string, n string) bool {
	for _, x := range names {
		if x == n {
			return true
		}
	}
	return false
}
