package analysis

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// The golden-test harness mirrors golang.org/x/tools/go/analysis/analysistest
// on the standard library: each package under testdata/src is type-checked
// with the real loader and the suite's diagnostics are matched against
// `want "regex"` markers in comments. Every diagnostic must match a marker on
// its line and every marker must be consumed — extra and missing findings are
// both failures.

var wantRe = regexp.MustCompile(`want((?:\s+"[^"]*")+)`)
var quotedRe = regexp.MustCompile(`"([^"]*)"`)

type wantMarker struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// newTestLoader returns a loader rooted at the real module with testdata/src
// as a GOPATH-style source root, optionally with a file overlay.
func newTestLoader(t *testing.T, overlay map[string][]byte) *Loader {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := FindModule(wd)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	l.SrcRoots = []string{filepath.Join(wd, "testdata", "src")}
	l.Overlay = overlay
	return l
}

// runGolden loads the testdata package at the import path, runs the given
// analyzers (plus ignore processing), and checks the diagnostics against the
// package's want markers.
func runGolden(t *testing.T, path string, azs []*Analyzer) {
	t.Helper()
	l := newTestLoader(t, nil)
	pkg, err := l.Load(path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	diags, err := Run(pkg, azs, l.Fset, l.Facts)
	if err != nil {
		t.Fatalf("run %s: %v", path, err)
	}

	wants := collectWants(t, pkg.Files, l)
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d:%d: unexpected diagnostic [%s] %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q was not reported", key, w.raw)
			}
		}
	}
}

// collectWants extracts want markers from every comment, keyed by
// "filename:line".
func collectWants(t *testing.T, files []*ast.File, l *Loader) map[string][]*wantMarker {
	t.Helper()
	wants := make(map[string][]*wantMarker)
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, q[1], err)
					}
					wants[key] = append(wants[key], &wantMarker{re: re, raw: q[1]})
				}
			}
		}
	}
	return wants
}

func TestLeaseCheckGolden(t *testing.T)          { runGolden(t, "leasetest", All()) }
func TestTagCheckGolden(t *testing.T)            { runGolden(t, "tagtest", All()) }
func TestLifecycleCheckGolden(t *testing.T)      { runGolden(t, "collective", All()) }
func TestTransportLifecycleGolden(t *testing.T)  { runGolden(t, "transport", All()) }
func TestMembershipLifecycleGolden(t *testing.T) { runGolden(t, "membership", All()) }
func TestCtxCheckGolden(t *testing.T)            { runGolden(t, "ctxtest", All()) }
func TestIgnoreDirectives(t *testing.T)          { runGolden(t, "ignoretest", All()) }

// TestSelfCheck runs the full suite over the real module and requires zero
// diagnostics: the repository must stay eagervet-clean (the CI staticcheck
// job enforces the same).
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check type-checks the whole module")
	}
	l := newTestLoader(t, nil)
	l.SrcRoots = nil
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags, err := Run(pkg, All(), l.Fset, l.Facts)
		if err != nil {
			t.Fatalf("run %s: %v", path, err)
		}
		for _, d := range diags {
			pos := l.Fset.Position(d.Pos)
			t.Errorf("%s:%d:%d: [%s] %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
}
