// Package ignoretest exercises the //eagervet:ignore directive machinery
// itself: a directive silences exactly the diagnostics on its line (or the
// next line for standalone directives), a directive without a reason is
// itself a diagnostic, and unknown analyzer names are rejected.
package ignoretest

const tagBase = 1 << 20

func send(dest, tag int) {}

// exactlyOne shows that one directive suppresses one line only: the first
// violation is silenced, the identical violation on the next line still
// fires.
func exactlyOne() {
	send(1, 111) //eagervet:ignore tagcheck -- fixture: first of two identical violations; only this line is covered.
	send(1, 111) // want "raw literal tag passed as .tag. to send"
}

// standaloneCoversNext shows a directive on its own line covering the
// following line.
func standaloneCoversNext() {
	//eagervet:ignore tagcheck -- fixture: standalone directive covers the next line.
	send(2, 222)
	send(2, 222) // want "raw literal tag passed as .tag. to send"
}

// missingReason: a directive without "-- reason" is itself flagged and
// suppresses nothing.
func missingReason() {
	/* want "requires a reason" */ //eagervet:ignore tagcheck
	send(3, 333)                   // want "raw literal tag passed as .tag. to send"
}

// unknownAnalyzer: naming a non-existent analyzer is flagged and suppresses
// nothing.
func unknownAnalyzer() {
	/* want "unknown analyzer .nosuchcheck." */ //eagervet:ignore nosuchcheck
	send(4, 444)                                // want "raw literal tag passed as .tag. to send"
}

// noAnalyzer: a bare directive is flagged.
func noAnalyzer() {
	send(5, tagBase) /* want "names no analyzer" */ //eagervet:ignore
}
