// Package comm is the golden-test stub of the transport layer, mirroring the
// ownership semantics the analyzers encode: Send and Isend consume their
// payload, SendCopy borrows it, and Release is a strict release.
package comm

import (
	"context"

	"tensor"
)

// Communicator is the stub endpoint.
type Communicator struct{}

// Send transfers ownership of payload, even on error.
func (c *Communicator) Send(dest, tag int, payload tensor.Vector) error { return nil }

// Isend transfers ownership of payload, even on error.
func (c *Communicator) Isend(dest, tag int, payload tensor.Vector) error { return nil }

// SendCopy borrows payload: the caller still owns it afterward.
func (c *Communicator) SendCopy(dest, tag int, payload tensor.Vector) error { return nil }

// Recv blocks until a message arrives.
func (c *Communicator) Recv(source, tag int) (tensor.Vector, error) { return nil, nil }

// RecvCancel is the cancellable variant of Recv.
func (c *Communicator) RecvCancel(source, tag int, cancel <-chan struct{}) (tensor.Vector, error) {
	return nil, nil
}

// Barrier blocks until every rank arrives.
func (c *Communicator) Barrier() error { return nil }

// BarrierContext is the cancellable variant of Barrier.
func (c *Communicator) BarrierContext(ctx context.Context) error { return nil }

// Release returns a received (pool-leased) vector to the pool.
func Release(v tensor.Vector) {}
