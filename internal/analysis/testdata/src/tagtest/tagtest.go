// Package tagtest exercises tagcheck: raw literal tags at call sites and in
// composite literals, named tag-block derivations, the 0 sentinel, and
// suppression.
package tagtest

// The package's tag-block registry, mirroring the real layout.
const (
	tagBase   = 1 << 20
	tagSpan   = 1 << 10
	TagStride = 64
)

// Op is a schedule operation; Tag is its message tag.
type Op struct {
	Peer int
	Tag  int
}

func send(dest, tag int)                          {}
func sendRecv(dest, sendTag, source, recvTag int) {}
func setCount(count int)                          {}

// streamTag derives a tag from the registry.
func streamTag(stream int) int { return tagBase + stream*tagSpan }

func good() {
	send(1, tagBase+3)
	send(2, streamTag(4))
	send(3, 0) // the 0 sentinel is the conventional default stream
	sendRecv(1, tagBase, 2, tagBase+tagSpan)
	setCount(17) // not a tag parameter: literals are fine
	_ = Op{Peer: 1, Tag: TagStride * 2}
}

func bad() {
	send(1, 42)                 // want "raw literal tag passed as .tag. to send"
	send(2, 1<<20+7)            // want "raw literal tag passed as .tag. to send"
	sendRecv(1, tagBase, 2, 99) // want "raw literal tag passed as .recvTag. to sendRecv"
	_ = Op{Peer: 1, Tag: 7}     // want "raw literal tag passed as .Tag."
}

func suppressed() {
	//eagervet:ignore tagcheck -- loopback self-test uses a fixed scratch tag outside every registered block.
	send(1, 424242)
}
