// Package leasetest exercises leasecheck: pool-lease leaks, early-return
// leaks, double releases, use-after-release/send, ownership transfers, and
// suppression.
package leasetest

import (
	"comm"

	"tensor"
)

const tagWork = 1 << 8

// straightLineLeak never releases its lease.
func straightLineLeak(n int) float64 {
	v := tensor.GetVector(n) // want "pool lease .v. is never released or transferred"
	v[0] = 1
	return v[0]
}

// earlyReturnLeak releases on the happy path but leaks on the error path.
func earlyReturnLeak(c *comm.Communicator, n int) error {
	v := tensor.GetVectorZero(n)
	if err := c.SendCopy(1, tagWork, v); err != nil {
		return err // want "may leak on this return path"
	}
	tensor.PutVector(v)
	return nil
}

// deferRelease is the canonical cleanup idiom: no diagnostics.
func deferRelease(n int) float64 {
	v := tensor.GetVector(n)
	defer tensor.PutVector(v)
	v[0] = 2
	return v[0]
}

// deferClosureRelease releases through a deferred closure: no diagnostics.
func deferClosureRelease(n int) float64 {
	v := tensor.GetVectorZero(n)
	defer func() {
		tensor.PutVector(v)
	}()
	return v[0]
}

// doubleRelease puts the same lease twice on one path.
func doubleRelease(n int) {
	v := tensor.GetVector(n)
	tensor.PutVector(v)
	tensor.PutVector(v) // want "already released at line"
}

// doubleReleaseAfterDefer registers a deferred put and then puts again.
func doubleReleaseAfterDefer(n int) {
	v := tensor.GetVector(n)
	defer tensor.PutVector(v)
	v[0] = 3
	tensor.PutVector(v) // want "released twice: a deferred release is registered"
}

// useAfterRelease reads the lease after returning it to the pool.
func useAfterRelease(n int) float64 {
	v := tensor.GetVector(n)
	tensor.PutVector(v)
	return v[0] // want "use of pool lease .v. after release"
}

// useAfterSend touches the payload after Send consumed it.
func useAfterSend(c *comm.Communicator, n int) error {
	v := tensor.GetVectorZero(n)
	if err := c.Send(1, tagWork, v); err != nil {
		return err
	}
	v[0] = 4 // want "use of pool lease .v. after ownership transfer"
	return nil
}

// branchReleaseNoFalsePositive releases in both arms; the lexical
// approximation must not call the second arm a double release.
func branchReleaseNoFalsePositive(c *comm.Communicator, n int, fast bool) error {
	v := tensor.GetVectorZero(n)
	if fast {
		return c.Send(1, tagWork, v)
	}
	tensor.PutVector(v)
	return nil
}

// stash takes ownership of the vector passed to it.
//
//eagersgd:takes-ownership
func stash(v tensor.Vector) {}

// annotatedTransfer hands the lease to an annotated consumer and may keep
// slicing it afterward (shared-by-reference, recycled by the consumer).
func annotatedTransfer(n int) float64 {
	v := tensor.GetVectorZero(n)
	stash(v)
	return v[0]
}

// escapeByReturn passes ownership to the caller: no diagnostics.
func escapeByReturn(n int) tensor.Vector {
	v := tensor.GetVector(n)
	v[0] = 5
	return v
}

// escapeByStore parks the lease in longer-lived state: no diagnostics.
type holder struct{ buf tensor.Vector }

func escapeByStore(h *holder, n int) {
	v := tensor.GetVectorZero(n)
	h.buf = v
}

// suppressedLeak hands its lease to an opaque consumer the analyzer cannot
// model; the ignore directive (with its mandatory reason) silences the leak
// report.
func suppressedLeak(sink func(tensor.Vector), n int) {
	//eagervet:ignore leasecheck -- sink recycles the lease via the pool in every registered implementation.
	v := tensor.GetVector(n)
	sink(v)
}
