// Package membership exercises lifecyclecheck over the epoch-transition
// package path: transition watchers and transfer pumps must be joinable so a
// failed or close-raced reconfiguration cannot strand goroutines past
// World.Close.
package membership

import "sync"

// detachedWatcher launches an unjoinable health watcher: nothing can wait for
// it, so it outlives the transition that spawned it.
func detachedWatcher(poll func()) {
	go poll() // want "goroutine is not joinable"
}

// bareTransferPump streams state chunks with no join plumbing.
func bareTransferPump(chunks chan []byte) {
	go func() { // want "goroutine is not joinable"
		for range chunks {
		}
	}()
}

// drainWorkers is the stack's standard pattern: Add before go, defer Done, so
// the commit path can wait for every in-flight allowance to retire.
func drainWorkers(n int, drainOne func()) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drainOne()
		}()
	}
	wg.Wait()
}

// epochWatcher bounds the watcher's lifetime with a select on stop: the
// transition's retire path closes stop and the goroutine exits.
func epochWatcher(stop chan struct{}, epochs chan uint64) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case e := <-epochs:
				_ = e
			}
		}
	}()
}

// coordinatorLoop is a long-lived re-election loop that exits when stop
// closes; go coordinatorLoop(...) is joinable because the body shows the
// receive (facts registry).
func coordinatorLoop(stop chan struct{}) {
	<-stop
}

func electCoordinator(stop chan struct{}) {
	go coordinatorLoop(stop)
}

// suppressedProbe launches a deliberately detached liveness probe; the ignore
// directive documents why that is safe here.
func suppressedProbe(probe func()) {
	//eagervet:ignore lifecyclecheck -- one-shot best-effort probe; the deadline detector owns liveness, this only warms a connection.
	go probe()
}
