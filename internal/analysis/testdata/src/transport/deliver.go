// deliver.go exercises lifecyclecheck on the direct-delivery handoff: in
// delivery mode the transport's poll loop hands each decoded frame straight
// to a callback the communicator latched before the poller started. The
// handoff must stay synchronous — the frame moves on the poller's own
// goroutine, so Close joins the poller and thereby bounds delivery — and the
// poller keeps the joinable spin-loop shape busypoll.go establishes.
package transport

import (
	"runtime"
	"sync"
)

type frame struct{ payload []byte }

// directPoller is the delivery-mode endpoint shape: the deliver callback is
// latched before start (the poller reads it without synchronization, which
// is only sound because no frame can precede the latch), the poller is
// joinable, and every frame is handed over synchronously from the loop. No
// diagnostic.
type directPoller struct {
	wg      sync.WaitGroup
	done    chan struct{}
	deliver func(frame)
}

func (p *directPoller) setDeliver(fn func(frame)) { p.deliver = fn }

func (p *directPoller) start(next func() (frame, bool)) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-p.done:
				return
			default:
			}
			if f, ok := next(); ok && p.deliver != nil {
				p.deliver(f) // synchronous handoff: claim by a posted receiver or inbox fallback
			} else {
				runtime.Gosched()
			}
		}
	}()
}

func (p *directPoller) close() {
	close(p.done)
	p.wg.Wait()
}

// perFrameHandoff detaches a goroutine for every delivered frame: none are
// joinable, so Close cannot bound in-flight deliveries and frames race the
// endpoint teardown — the anti-shape the synchronous handoff exists to
// avoid.
func perFrameHandoff(next func() (frame, bool), deliver func(frame)) {
	for {
		f, ok := next()
		if !ok {
			return
		}
		go deliver(f) // want "goroutine is not joinable"
	}
}
