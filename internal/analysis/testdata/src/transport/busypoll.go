// Package transport exercises lifecyclecheck and ctxcheck on the busy-poll
// idioms of the shared-ring transport: an endpoint's poll loop must be
// joinable (Add-before-go, defer Done) and every spin loop must be gated by a
// done channel or stop flag so Close can always reclaim it.
package transport

import (
	"context"
	"runtime"
	"sync"
)

// ungatedPoller spins forever with no join plumbing: Close can neither stop
// nor wait for it, so it outlives the endpoint — exactly the leak the shm
// poll loop's wg.Add/defer wg.Done wiring exists to prevent.
func ungatedPoller(poll func() bool) {
	go func() { // want "goroutine is not joinable"
		for {
			if !poll() {
				runtime.Gosched()
			}
		}
	}()
}

// detachedNamedPoller launches a named spin loop whose body shows no join
// evidence either; the facts registry proves nothing, so it is flagged.
func spinForever(poll func() bool) {
	for {
		poll()
	}
}

func detachedNamedPoller(poll func() bool) {
	go spinForever(poll) // want "goroutine is not joinable"
}

// endpointPoller is the shm endpoint shape: Add before go, defer Done in the
// loop, and a done channel bounding every spin — joinable, no diagnostic.
type endpointPoller struct {
	wg   sync.WaitGroup
	done chan struct{}
}

func (e *endpointPoller) start(poll func() bool) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			select {
			case <-e.done:
				return
			default:
			}
			if !poll() {
				runtime.Gosched()
			}
		}
	}()
}

func (e *endpointPoller) close() {
	close(e.done)
	e.wg.Wait()
}

// parkedReader bounds its lifetime with a select on done while parked — the
// adaptive spin-then-park shape; the select is the join evidence.
func parkedReader(wake, done chan struct{}, poll func() bool) {
	go func() {
		for {
			if poll() {
				continue
			}
			select {
			case <-wake:
			case <-done:
				return
			}
		}
	}()
}

// mintedRoot shows ctxcheck holds in this package too: library transport code
// must not fabricate its own root context for its poll loops.
func mintedRoot(run func(ctx context.Context)) {
	run(context.Background()) // want "context.Background"
}

// suppressedDetached documents a deliberately detached goroutine.
func suppressedDetached(work func()) {
	//eagervet:ignore lifecyclecheck -- close-path escape hatch: the endpoint tears itself down and the call is idempotent.
	go work()
}
