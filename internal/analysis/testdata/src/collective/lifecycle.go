// Package collective exercises lifecyclecheck (which polices the collective,
// partial, and comm package paths): unjoinable goroutines, the
// Add-before-go/defer-Done idiom, done-channel selects, named reaper callees,
// and suppression.
package collective

import "sync"

// fireAndForget launches an unjoinable goroutine: nothing can wait for it.
func fireAndForget(work func()) {
	go work() // want "goroutine is not joinable"
}

// bareClosure launches a closure with no join plumbing.
func bareClosure() {
	go func() { // want "goroutine is not joinable"
		println("orphan")
	}()
}

// waitGroupIdiom is the stack's standard pattern: Add before go, defer Done.
func waitGroupIdiom(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// doneChannelIdiom bounds the goroutine's lifetime with a select on done.
func doneChannelIdiom(done chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// reaper is a long-lived loop that exits when stop closes; go reaper(...) is
// joinable because the body shows the receive (facts registry).
func reaper(stop chan struct{}) {
	<-stop
}

func launchReaper(stop chan struct{}) {
	go reaper(stop)
}

// suppressedDetached launches a deliberately detached goroutine; the ignore
// directive documents why that is safe here.
func suppressedDetached(work func()) {
	//eagervet:ignore lifecyclecheck -- best-effort telemetry flush; the process exits without waiting for it by design.
	go work()
}
