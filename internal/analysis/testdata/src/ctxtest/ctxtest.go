// Package ctxtest exercises ctxcheck: context roots in library code,
// loop-resident calls missing their cancellable variants, and suppression.
package ctxtest

import (
	"context"

	"comm"
)

// Engine is a stand-in for a collective endpoint.
type Engine struct{}

// Pull blocks until work arrives.
func (e *Engine) Pull() error { return nil }

// PullCancel is the cancellable variant of Pull.
func (e *Engine) PullCancel(stop <-chan struct{}) error { return nil }

// poll blocks without a cancellation path.
func poll() {}

// pollContext is the cancellable variant of poll.
func pollContext(ctx context.Context) {}

// rootInLibrary fabricates a context root in library code.
func rootInLibrary(e *Engine) error {
	ctx := context.Background() // want "library code must not call context.Background"
	_ = ctx
	return e.Pull()
}

// todoInLibrary is the same break via TODO.
func todoInLibrary() context.Context {
	return context.TODO() // want "library code must not call context.TODO"
}

// loopWithoutCancel spins on the uncancellable variants.
func loopWithoutCancel(e *Engine, c *comm.Communicator) error {
	for {
		if err := e.Pull(); err != nil { // want "loop-resident call to Pull has no cancellation path: use PullCancel"
			return err
		}
		poll()                              // want "loop-resident call to poll has no cancellation path: use pollContext"
		if err := c.Barrier(); err != nil { // want "loop-resident call to Barrier has no cancellation path: use BarrierContext"
			return err
		}
	}
}

// loopWithCancel uses the cancellable variants: no diagnostics.
func loopWithCancel(ctx context.Context, e *Engine, c *comm.Communicator, stop <-chan struct{}) error {
	for {
		if err := e.PullCancel(stop); err != nil {
			return err
		}
		pollContext(ctx)
		if err := c.BarrierContext(ctx); err != nil {
			return err
		}
	}
}

// outsideLoop may use the blocking variant: only loop residency is policed.
func outsideLoop(e *Engine) error {
	return e.Pull()
}

// suppressedLoop documents why the blocking variant is correct here.
func suppressedLoop(e *Engine) error {
	for i := 0; i < 3; i++ {
		//eagervet:ignore ctxcheck -- bounded three-attempt handshake during setup; cancellation arrives via Close tearing down the transport.
		if err := e.Pull(); err != nil {
			return err
		}
	}
	return nil
}
