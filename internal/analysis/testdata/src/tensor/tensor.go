// Package tensor is the golden-test stub of the repository's pool API: the
// analyzers match callees by package-path suffix and function name, so this
// flat GOPATH-style stub exercises them without loading the real module.
package tensor

// Vector mirrors the real pool's vector type.
type Vector []float64

// GetVector leases a vector from the pool.
func GetVector(n int) Vector { return make(Vector, n) }

// GetVectorZero leases a zeroed vector from the pool.
func GetVectorZero(n int) Vector { return make(Vector, n) }

// GetVectorCopy leases a copy of src from the pool.
func GetVectorCopy(src Vector) Vector {
	v := make(Vector, len(src))
	copy(v, src)
	return v
}

// PutVector returns a leased vector to the pool.
func PutVector(v Vector) {}

// NewVector allocates an unpooled vector (no lease).
func NewVector(n int) Vector { return make(Vector, n) }
