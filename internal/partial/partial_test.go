package partial_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// makeWorld builds a world of p allreducers over an in-process transport. The
// cleanup closes the transport, which also releases the background engines.
func makeWorld(t *testing.T, p, n int, opts partial.Options) ([]*comm.Communicator, []*partial.Allreducer) {
	t.Helper()
	world := transport.NewInprocWorld(p)
	reducers := make([]*partial.Allreducer, p)
	for r := 0; r < p; r++ {
		reducers[r] = partial.New(world[r], n, opts)
	}
	t.Cleanup(func() {
		for _, a := range reducers {
			a.Close()
		}
		world[0].Close()
	})
	return world, reducers
}

func TestModeString(t *testing.T) {
	if partial.Solo.String() != "solo" || partial.Majority.String() != "majority" || partial.Quorum.String() != "quorum" {
		t.Fatal("unexpected mode names")
	}
	if partial.Mode(42).String() == "" {
		t.Fatal("unknown mode must still produce a name")
	}
}

func TestExchangeWrongLength(t *testing.T) {
	_, reducers := makeWorld(t, 1, 4, partial.Options{Mode: partial.Solo})
	if _, _, err := reducers[0].Exchange(tensor.Vector{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestExchangeAfterClose(t *testing.T) {
	_, reducers := makeWorld(t, 1, 2, partial.Options{Mode: partial.Solo})
	reducers[0].Close()
	if _, _, err := reducers[0].Exchange(tensor.Vector{1, 2}); err != partial.ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestSoloSingleRoundConsistency(t *testing.T) {
	// With solo allreduce, which contributions are included depends on timing
	// (the fastest rank triggers immediately). The invariants that must hold
	// regardless: every rank observes the identical result, the result equals
	// exactly the sum of the contributions reported as included, and the
	// number of active processes matches the number of included ranks, with
	// the quorum lower bound of one.
	const p = 4
	const n = 8
	_, reducers := makeWorld(t, p, n, partial.Options{Mode: partial.Solo})

	contribs := make([]tensor.Vector, p)
	for r := 0; r < p; r++ {
		contribs[r] = tensor.NewVector(n)
		for i := range contribs[r] {
			contribs[r][i] = float64(r + i + 1)
		}
	}
	results, infos := exchangeAll(t, reducers, contribs, nil)

	includedSum := tensor.NewVector(n)
	includedCount := 0
	for r := 0; r < p; r++ {
		if infos[r].Included {
			includedSum.Add(contribs[r])
			includedCount++
		}
	}
	if includedCount < 1 {
		t.Fatal("quorum lower bound violated: no contribution included")
	}
	for r := 0; r < p; r++ {
		if !results[r].Equal(results[0]) {
			t.Fatalf("rank %d observed a different result than rank 0", r)
		}
		if !results[r].AllClose(includedSum, 1e-9) {
			t.Fatalf("rank %d result %v, want sum of included contributions %v", r, results[r], includedSum)
		}
		if infos[r].ActiveProcesses != includedCount {
			t.Fatalf("rank %d NAP %d, want %d (number of included ranks)", r, infos[r].ActiveProcesses, includedCount)
		}
	}
}

func TestSoloFastRankDoesNotWaitForSlow(t *testing.T) {
	const p = 2
	const n = 4
	_, reducers := makeWorld(t, p, n, partial.Options{Mode: partial.Solo})

	slowDelay := 300 * time.Millisecond
	var fastLatency time.Duration
	var slowInfo partial.RoundInfo
	var fastResult, slowResult tensor.Vector
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // fast rank 0
		defer wg.Done()
		start := time.Now()
		res, _, err := reducers[0].Exchange(tensor.Vector{1, 1, 1, 1})
		if err != nil {
			t.Errorf("fast rank: %v", err)
			return
		}
		fastLatency = time.Since(start)
		fastResult = res
	}()
	go func() { // slow rank 1
		defer wg.Done()
		time.Sleep(slowDelay)
		res, info, err := reducers[1].Exchange(tensor.Vector{10, 10, 10, 10})
		if err != nil {
			t.Errorf("slow rank: %v", err)
			return
		}
		slowResult = res
		slowInfo = info
	}()
	wg.Wait()

	if fastLatency > slowDelay/2 {
		t.Fatalf("fast rank waited %v: solo allreduce must not wait for the slow rank", fastLatency)
	}
	// Round 0 completed with only the fast contribution.
	if !fastResult.AllClose(tensor.Vector{1, 1, 1, 1}, 1e-9) {
		t.Fatalf("fast result %v, want only its own contribution", fastResult)
	}
	// The slow rank arrived after completion: it sees the same result and its
	// own gradient is parked as a stale contribution.
	if !slowResult.AllClose(tensor.Vector{1, 1, 1, 1}, 1e-9) {
		t.Fatalf("slow result %v, want the round-0 receive buffer", slowResult)
	}
	if slowInfo.Included {
		t.Fatal("slow rank reported Included although it arrived late")
	}
	if reducers[1].PendingStale() == 0 {
		t.Fatal("slow rank should hold a stale gradient in its send buffer")
	}

	// Two more rounds (one regular, one drain with zero contributions). By
	// gradient conservation the per-element totals observed by rank 0 across
	// its rounds must equal everything ever contributed: the stale gradient
	// is folded into a later round, never lost and never duplicated.
	cumulative := fastResult.Clone()
	round1, _ := exchangeAll(t, reducers, []tensor.Vector{{2, 2, 2, 2}, {20, 20, 20, 20}}, nil)
	cumulative.Add(round1[0])
	drain, _ := exchangeAll(t, reducers, []tensor.Vector{{0, 0, 0, 0}, {0, 0, 0, 0}}, nil)
	cumulative.Add(drain[0])
	want := tensor.Vector{33, 33, 33, 33} // 1+10 + 2+20 + 0+0
	if !cumulative.AllClose(want, 1e-9) {
		t.Fatalf("cumulative observed %v, want %v (stale gradient lost or duplicated)", cumulative, want)
	}
	if reducers[0].PendingStale() != 0 || reducers[1].PendingStale() != 0 {
		t.Fatalf("stale buffers not drained: %v / %v", reducers[0].PendingStale(), reducers[1].PendingStale())
	}
}

// exchangeAll runs one Exchange on every rank with the given per-rank delay
// and returns results and infos.
func exchangeAll(t *testing.T, reducers []*partial.Allreducer, contribs []tensor.Vector, delays []time.Duration) ([]tensor.Vector, []partial.RoundInfo) {
	t.Helper()
	p := len(reducers)
	results := make([]tensor.Vector, p)
	infos := make([]partial.RoundInfo, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if delays != nil && delays[r] > 0 {
				time.Sleep(delays[r])
			}
			results[r], infos[r], errs[r] = reducers[r].Exchange(contribs[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results, infos
}

func TestGradientConservationUnderSkew(t *testing.T) {
	// Every contributed gradient must end up in exactly one round's result —
	// either the round it was produced for or a later round, as a stale
	// gradient (Fig. 7) — and never be duplicated or lost. Rounds are run in
	// lockstep (the test waits for all ranks before starting the next round),
	// so no round result is overwritten and rank 0's per-round observations,
	// plus one final drain round, must sum to exactly the total contributed.
	const p = 4
	const rounds = 12
	_, reducers := makeWorld(t, p, 1, partial.Options{Mode: partial.Solo})

	totalContributed := 0.0
	observed := 0.0
	for round := 0; round < rounds; round++ {
		contribs := make([]tensor.Vector, p)
		delays := make([]time.Duration, p)
		for r := 0; r < p; r++ {
			v := float64(round*10 + r + 1)
			contribs[r] = tensor.Vector{v}
			totalContributed += v
			delays[r] = time.Duration((r*round)%3) * 3 * time.Millisecond
		}
		results, _ := exchangeAll(t, reducers, contribs, delays)
		observed += results[0][0]
	}
	// Drain: one final round with zero contributions flushes any stale
	// gradients still parked in send buffers.
	contribs := make([]tensor.Vector, p)
	for r := 0; r < p; r++ {
		contribs[r] = tensor.Vector{0}
	}
	finalResults, _ := exchangeAll(t, reducers, contribs, nil)
	observed += finalResults[0][0]

	for r := 0; r < p; r++ {
		if reducers[r].PendingStale() != 0 {
			t.Fatalf("rank %d still has stale gradients after the drain round", r)
		}
	}
	if diff := observed - totalContributed; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("observed gradient mass %v != contributed %v (lost or duplicated gradients)", observed, totalContributed)
	}
}

func TestMajorityInitiatorsAgreeAcrossRanks(t *testing.T) {
	const p = 5
	_, reducers := makeWorld(t, p, 1, partial.Options{Mode: partial.Majority, Seed: 7})
	for round := 0; round < 50; round++ {
		want := reducers[0].DesignatedInitiators(round)
		if len(want) != 1 || want[0] < 0 || want[0] >= p {
			t.Fatalf("round %d: invalid initiator set %v", round, want)
		}
		for r := 1; r < p; r++ {
			got := reducers[r].DesignatedInitiators(round)
			if len(got) != 1 || got[0] != want[0] {
				t.Fatalf("round %d: rank %d designates %v, rank 0 designates %v", round, r, got, want)
			}
		}
	}
	// Over many rounds the designated initiator must spread over the ranks
	// (roughly uniform random selection).
	seen := make(map[int]bool)
	for round := 0; round < 100; round++ {
		seen[reducers[0].DesignatedInitiators(round)[0]] = true
	}
	if len(seen) < p-1 {
		t.Fatalf("initiator selection covered only %d of %d ranks over 100 rounds", len(seen), p)
	}
}

func TestSoloHasNoDesignatedInitiator(t *testing.T) {
	_, reducers := makeWorld(t, 2, 1, partial.Options{Mode: partial.Solo})
	if got := reducers[0].DesignatedInitiators(3); got != nil {
		t.Fatalf("solo mode returned designated initiators %v", got)
	}
}

func TestMajorityAllIncludedWhenInitiatorArrivesLast(t *testing.T) {
	// Holding the designated initiator back until every other rank has
	// contributed guarantees that all contributions are included: the round
	// cannot activate before the initiator arrives.
	const p = 4
	const n = 2
	_, reducers := makeWorld(t, p, n, partial.Options{Mode: partial.Majority, Seed: 7})

	for round := 0; round < 4; round++ {
		initiator := reducers[0].DesignatedInitiators(round)[0]
		contribs := make([]tensor.Vector, p)
		delays := make([]time.Duration, p)
		want := tensor.NewVector(n)
		for r := 0; r < p; r++ {
			contribs[r] = tensor.Vector{float64(round + 1), float64(r + 1)}
			want.Add(contribs[r])
			if r == initiator {
				delays[r] = 60 * time.Millisecond
			}
		}
		results, infos := exchangeAll(t, reducers, contribs, delays)
		for r := 0; r < p; r++ {
			if !results[r].AllClose(want, 1e-9) {
				t.Fatalf("round %d rank %d result %v, want %v", round, r, results[r], want)
			}
			if !infos[r].Included {
				t.Fatalf("round %d rank %d not included although the initiator arrived last", round, r)
			}
			if infos[r].ActiveProcesses != p {
				t.Fatalf("round %d rank %d NAP %d, want %d", round, r, infos[r].ActiveProcesses, p)
			}
		}
	}
}

func TestMajorityWaitsForInitiatorNotForAll(t *testing.T) {
	// With linear skew and many rounds, majority allreduce must include on
	// average about half the ranks — strictly more than solo under the same
	// skew — and never fewer than one.
	const p = 8
	const n = 1
	const rounds = 30
	_, majReducers := makeWorld(t, p, n, partial.Options{Mode: partial.Majority, Seed: 3})
	_, soloReducers := makeWorld(t, p, n, partial.Options{Mode: partial.Solo})

	napSum := func(reducers []*partial.Allreducer) int {
		total := 0
		for round := 0; round < rounds; round++ {
			contribs := make([]tensor.Vector, p)
			delays := make([]time.Duration, p)
			for r := 0; r < p; r++ {
				contribs[r] = tensor.Vector{1}
				delays[r] = time.Duration(r) * 2 * time.Millisecond // linear skew
			}
			_, infos := exchangeAll(t, reducers, contribs, delays)
			// Use the NAP observed by the last rank (it always sees the
			// completed round's record).
			nap := 0
			for r := 0; r < p; r++ {
				if infos[r].ActiveProcesses > nap {
					nap = infos[r].ActiveProcesses
				}
			}
			if nap < 1 {
				t.Fatalf("round %d: NAP %d < 1 violates the quorum lower bound", round, nap)
			}
			total += nap
		}
		return total
	}

	soloNAP := napSum(soloReducers)
	majNAP := napSum(majReducers)
	soloAvg := float64(soloNAP) / rounds
	majAvg := float64(majNAP) / rounds
	if majAvg <= soloAvg {
		t.Fatalf("majority average NAP %.2f should exceed solo average NAP %.2f under linear skew", majAvg, soloAvg)
	}
	if majAvg < 2.0 {
		t.Fatalf("majority average NAP %.2f is implausibly low for p=%d", majAvg, p)
	}
}

func TestQuorumAllCandidatesBehavesLikeSolo(t *testing.T) {
	const p = 4
	const n = 2
	_, reducers := makeWorld(t, p, n, partial.Options{Mode: partial.Quorum, Candidates: p, Seed: 1})
	// With every rank a candidate, nobody is "designated": any rank may
	// initiate, exactly like solo.
	if got := reducers[0].DesignatedInitiators(0); got != nil {
		t.Fatalf("candidates=p should behave like solo, got designated initiators %v", got)
	}
	contribs := make([]tensor.Vector, p)
	for r := 0; r < p; r++ {
		contribs[r] = tensor.Vector{1, 2}
	}
	results, infos := exchangeAll(t, reducers, contribs, nil)
	// Same consistency invariants as solo: identical results everywhere,
	// equal to the sum of included contributions.
	included := 0
	for r := 0; r < p; r++ {
		if infos[r].Included {
			included++
		}
	}
	if included < 1 {
		t.Fatal("no contribution included")
	}
	want := tensor.Vector{float64(included), float64(2 * included)}
	for r := 0; r < p; r++ {
		if !results[r].AllClose(want, 1e-9) {
			t.Fatalf("rank %d result %v, want %v", r, results[r], want)
		}
	}
}

func TestManyRoundsStaySane(t *testing.T) {
	// Stress the per-round tag allocation, record pruning, and duplicate
	// purging over a few hundred rounds.
	const p = 4
	const n = 3
	const rounds = 300
	_, reducers := makeWorld(t, p, n, partial.Options{Mode: partial.Solo})
	contribs := make([]tensor.Vector, p)
	for r := 0; r < p; r++ {
		contribs[r] = tensor.Vector{1, 1, 1}
	}
	for round := 0; round < rounds; round++ {
		results, _ := exchangeAll(t, reducers, contribs, nil)
		for r := 0; r < p; r++ {
			if results[r].Sum() <= 0 || results[r].Sum() > float64(p*n*2) {
				t.Fatalf("round %d rank %d implausible result %v", round, r, results[r])
			}
		}
	}
	for r := 0; r < p; r++ {
		if got := reducers[r].LastRound(); got < rounds-1 {
			t.Fatalf("rank %d completed only %d rounds, want at least %d", r, got+1, rounds)
		}
	}
}

func TestRankAndSizeAccessors(t *testing.T) {
	const p = 3
	_, reducers := makeWorld(t, p, 1, partial.Options{Mode: partial.Majority, Seed: 2})
	for r := 0; r < p; r++ {
		if reducers[r].Rank() != r || reducers[r].Size() != p {
			t.Fatalf("rank %d accessors wrong: %d/%d", r, reducers[r].Rank(), reducers[r].Size())
		}
		if reducers[r].Mode() != partial.Majority {
			t.Fatalf("mode accessor wrong")
		}
	}
}

func TestLockstepRoundsExactResults(t *testing.T) {
	// Results must track per-round contributions exactly when every
	// designated initiator is held back until the other ranks have
	// contributed, for both majority and quorum modes.
	cases := []struct {
		name string
		opts partial.Options
	}{
		{"majority", partial.Options{Mode: partial.Majority, Seed: 11}},
		// A single-candidate quorum is semantically majority; it exercises the
		// Quorum code path with a deterministic initiator. (With two or more
		// candidates "everyone included" cannot be forced by delaying the
		// candidates: whichever candidate arrives first excludes the others.)
		{"quorum1", partial.Options{Mode: partial.Quorum, Candidates: 1, Seed: 11}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const p = 4
			const n = 2
			const rounds = 8
			_, reducers := makeWorld(t, p, n, tc.opts)
			for round := 0; round < rounds; round++ {
				initiators := reducers[0].DesignatedInitiators(round)
				contribs := make([]tensor.Vector, p)
				delays := make([]time.Duration, p)
				want := tensor.NewVector(n)
				for r := 0; r < p; r++ {
					contribs[r] = tensor.Vector{float64(round), float64(r)}
					want.Add(contribs[r])
				}
				for _, init := range initiators {
					delays[init] = 40 * time.Millisecond
				}
				results, infos := exchangeAll(t, reducers, contribs, delays)
				for r := 0; r < p; r++ {
					if !results[r].AllClose(want, 1e-9) {
						t.Fatalf("%s round %d rank %d: %v want %v", tc.name, round, r, results[r], want)
					}
					if !infos[r].Included {
						t.Fatalf("%s round %d rank %d not included although initiators arrived last", tc.name, round, r)
					}
				}
			}
		})
	}
}

func TestExchangeResultIsACopy(t *testing.T) {
	// Single-rank world (also exercises the size-1 edge case): mutating a
	// returned result must not corrupt the allreducer's internal receive
	// buffer.
	_, reducers := makeWorld(t, 1, 2, partial.Options{Mode: partial.Solo})
	res, info, err := reducers[0].Exchange(tensor.Vector{1, 1})
	if err != nil || !res.Equal(tensor.Vector{1, 1}) || !info.Included || info.ActiveProcesses != 1 {
		t.Fatalf("single-rank exchange: %v %+v %v", res, info, err)
	}
	res[0] = 999
	res2, _, err := reducers[0].Exchange(tensor.Vector{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Equal(tensor.Vector{3, 4}) {
		t.Fatalf("round 1 result %v polluted by caller mutation of round 0 result", res2)
	}
}

func ExampleAllreducer() {
	world := transport.NewInprocWorld(2)
	defer world[0].Close()
	a0 := partial.New(world[0], 3, partial.Options{Mode: partial.Solo})
	a1 := partial.New(world[1], 3, partial.Options{Mode: partial.Solo})
	defer a0.Close()
	defer a1.Close()

	var wg sync.WaitGroup
	results := make([]tensor.Vector, 2)
	wg.Add(2)
	go func() { defer wg.Done(); results[0], _, _ = a0.Exchange(tensor.Vector{1, 2, 3}) }()
	go func() { defer wg.Done(); results[1], _, _ = a1.Exchange(tensor.Vector{10, 20, 30}) }()
	wg.Wait()
	fmt.Println(results[0].Equal(results[1]))
	// Output: true
}

// TestExchangeContextCancellation proves a blocked ExchangeContext returns
// promptly when the context expires, and that the contribution survives as a
// stale gradient: in majority mode with the designated initiator held back,
// a non-initiator's exchange cannot complete — canceling it must not lose the
// gradient, which is folded into the next round once the initiator arrives.
func TestExchangeContextCancellation(t *testing.T) {
	const p = 2
	const n = 3
	_, reducers := makeWorld(t, p, n, partial.Options{Mode: partial.Majority, Seed: 8})

	initiator := reducers[0].DesignatedInitiators(0)[0]
	waiter := (initiator + 1) % p

	grad := tensor.NewVector(n)
	grad.Fill(1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, _, err := reducers[waiter].ExchangeContext(ctx, grad); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked exchange returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	if reducers[waiter].PendingStale() == 0 {
		t.Fatal("canceled contribution must stay buffered as a stale gradient")
	}

	// The reducer stays usable: once every rank participates again the
	// canceled rank's stale gradient is delivered in a later round.
	var wg sync.WaitGroup
	results := make([]tensor.Vector, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				g := tensor.NewVector(n)
				out, _, err := reducers[r].Exchange(g)
				if err != nil {
					t.Errorf("rank %d round %d: %v", r, round, err)
					return
				}
				results[r] = out
			}
		}(r)
	}
	wg.Wait()
	if results[waiter] == nil {
		t.Fatal("no result after cancellation")
	}
	if reducers[waiter].PendingStale() != 0 {
		t.Fatal("stale gradient was never contributed after cancellation")
	}
}

// TestDrainPendingTakesStaleGradients checks the atomic take used by the
// periodic full synchronization.
func TestDrainPendingTakesStaleGradients(t *testing.T) {
	_, reducers := makeWorld(t, 2, 2, partial.Options{Mode: partial.Majority, Seed: 8})
	waiter := (reducers[0].DesignatedInitiators(0)[0] + 1) % 2
	grad := tensor.Vector{2, 3}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := reducers[waiter].ExchangeContext(ctx, grad)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("setup exchange returned %v", err)
	}
	drained := reducers[waiter].DrainPending()
	if !drained.Equal(grad) {
		t.Fatalf("drained %v, want %v", drained, grad)
	}
	if reducers[waiter].PendingStale() != 0 {
		t.Fatal("send buffer must be empty after drain")
	}
}
