package partial_test

import (
	"sync"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/faults"
	"eagersgd/internal/partial"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// faultyWorld builds p allreducers over an in-process transport wrapped by a
// fault injector.
func faultyWorld(t *testing.T, p, n int, sc faults.Scenario, opts partial.Options) (*faults.Injector, []*comm.Communicator, []*partial.Allreducer) {
	t.Helper()
	hub := transport.NewHub(p)
	inj := faults.NewInjector(p, sc)
	comms := make([]*comm.Communicator, p)
	ars := make([]*partial.Allreducer, p)
	for r := 0; r < p; r++ {
		comms[r] = comm.NewCommunicator(inj.Wrap(hub.Endpoint(r)))
		ars[r] = partial.New(comms[r], n, opts)
	}
	t.Cleanup(func() {
		for _, a := range ars {
			a.Close()
		}
		for _, c := range comms {
			c.Close()
		}
		for _, a := range ars {
			a.Join()
		}
		inj.Close()
	})
	return inj, comms, ars
}

// TestCrashedRankRoundsCompleteWithSurvivors drives solo exchanges through a
// scripted crash: survivors' rounds keep completing (liveness), and once the
// dead rank's last possible contribution is past, the per-round
// active-process count — the published flags — covers only the surviving
// participant set.
func TestCrashedRankRoundsCompleteWithSurvivors(t *testing.T) {
	const (
		p         = 4
		n         = 16
		steps     = 8
		crashRank = 3
		crashStep = 2
	)
	sc := faults.Scenario{Seed: 21, CrashAtStep: map[int]int{crashRank: crashStep}, SignalCrashes: true}
	inj, _, ars := faultyWorld(t, p, n, sc, partial.Options{Mode: partial.Solo, PeerDeadline: 2 * time.Second})

	type outcome struct {
		naps []int
		errs []error
	}
	outs := make([]outcome, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			grad := make(tensor.Vector, n)
			for s := 0; s < steps; s++ {
				grad.Fill(1)
				sum, info, err := ars[r].Exchange(grad)
				if err != nil {
					outs[r].errs = append(outs[r].errs, err)
					return
				}
				tensor.PutVector(sum)
				outs[r].naps = append(outs[r].naps, info.ActiveProcesses)
				inj.AdvanceStep(r)
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("exchanges hung after the scripted crash (liveness violated)")
	}

	for r := 0; r < p; r++ {
		if r == crashRank {
			if len(outs[r].naps) < crashStep {
				t.Errorf("crashed rank completed %d exchanges before its scripted crash at %d", len(outs[r].naps), crashStep)
			}
			continue
		}
		if len(outs[r].naps) != steps {
			t.Fatalf("survivor %d completed %d of %d exchanges (errs=%v)", r, len(outs[r].naps), steps, outs[r].errs)
		}
		// Flags match contributors: the dead rank's engine contributed its
		// last flag no later than its final exchange round, so later rounds'
		// NAP is bounded by the surviving set.
		final := outs[r].naps[steps-1]
		if final < 1 || final > p-1 {
			t.Errorf("survivor %d final-round NAP = %d, want within the surviving set [1,%d]", r, final, p-1)
		}
	}
}

// TestDeadDesignatedInitiatorFailsOver pins the Majority liveness hole: when
// the round's only designated initiator is dead, the surviving ranks'
// failure detector must activate the round after the deadline — the dead
// rank's activation flag resolves false — instead of waiting forever.
func TestDeadDesignatedInitiatorFailsOver(t *testing.T) {
	const (
		p = 4
		n = 8
	)
	// Find a seed/round whose designated initiator is the rank we crash.
	sc := faults.Scenario{Seed: 1}
	inj, _, ars := faultyWorld(t, p, n, sc, partial.Options{Mode: partial.Majority, Seed: 5, PeerDeadline: 300 * time.Millisecond})
	victim := ars[0].DesignatedInitiators(0)[0]
	inj.Crash(victim)

	var wg sync.WaitGroup
	naps := make([]int, p)
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			grad := make(tensor.Vector, n)
			grad.Fill(1)
			sum, info, err := ars[r].Exchange(grad)
			if err != nil {
				errs[r] = err
				return
			}
			tensor.PutVector(sum)
			naps[r] = info.ActiveProcesses
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("round with dead designated initiator (rank %d) never completed", victim)
	}
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		if errs[r] != nil {
			t.Errorf("rank %d: %v", r, errs[r])
		}
		if naps[r] > p-1 {
			t.Errorf("rank %d observed NAP %d although the initiator was dead before the round", r, naps[r])
		}
	}
}

// TestPeerDeadlineZeroKeepsStrictSemantics guards the default: without a
// peer deadline the failure-tolerance machinery stays inert — designated
// initiators are never failed over, so a Majority round with an absent
// initiator blocks (until canceled) exactly as before.
func TestPeerDeadlineZeroKeepsStrictSemantics(t *testing.T) {
	const (
		p = 2
		n = 4
	)
	sc := faults.Scenario{Seed: 2}
	_, _, ars := faultyWorld(t, p, n, sc, partial.Options{Mode: partial.Majority, Seed: 3})
	victim := ars[0].DesignatedInitiators(0)[0]
	other := (victim + 1) % p

	done := make(chan error, 1)
	go func() {
		grad := make(tensor.Vector, n)
		sum, _, err := ars[other].Exchange(grad)
		if err == nil {
			tensor.PutVector(sum)
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("non-initiator's exchange completed (err=%v) although the initiator never arrived and no deadline was set", err)
	case <-time.After(300 * time.Millisecond):
		// Still blocked: strict semantics preserved. Cleanup closes the world
		// and unblocks the goroutine.
	}
}
