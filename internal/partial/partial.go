// Package partial implements the paper's partial collective operations (§4):
// solo allreduce, majority allreduce, and the generalized quorum allreduce
// mentioned as future work (§8), all without a central parameter server.
//
// An Allreducer owns a background engine goroutine (the "communication
// library" of §4.3) that executes one persistent schedule per round. The
// schedule (built by internal/sched) contains an activation broadcast and a
// recursive-doubling allreduce. Fast ranks activate the round internally;
// slow ranks are activated externally by the broadcast and contribute
// whatever their send buffer holds — null gradients, or stale gradients
// accumulated from earlier rounds (Fig. 7 semantics). The application-facing
// Exchange call therefore never waits for stragglers in Solo mode, and in
// Majority mode waits only for a per-round randomly designated initiator,
// giving the statistical ≥P/2 participation guarantee of §4.2.
package partial

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/sched"
	"eagersgd/internal/tensor"
)

// Mode selects which partial collective the Allreducer implements.
type Mode int

const (
	// Solo lets any rank initiate the collective: a wait-free operation where
	// the fastest rank triggers completion (§4.1).
	Solo Mode = iota
	// Majority designates one random initiator per round (same seeded choice
	// on every rank), so on average half the ranks contribute fresh data
	// (§4.2).
	Majority
	// Quorum generalizes the two: Candidates ranks are designated per round
	// and the first of them to arrive initiates. Candidates=1 is Majority,
	// Candidates=P is Solo; intermediate values trade latency for expected
	// participation (§8).
	Quorum
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Solo:
		return "solo"
	case Majority:
		return "majority"
	case Quorum:
		return "quorum"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DefaultBaseTag is the start of the tag namespace used by partial
// collectives. It is far above the namespace used by internal/collectives so
// the two can share a communicator.
const DefaultBaseTag = 1 << 24

// Options configures an Allreducer.
type Options struct {
	// Mode selects solo, majority, or quorum behaviour. Default Solo.
	Mode Mode
	// Seed drives the shared pseudo-random initiator selection for Majority
	// and Quorum modes. Every rank must use the same seed (the consensus of
	// §4.2 is achieved by using the same seed on all processes).
	Seed int64
	// Candidates is the number of designated initiators per round in Quorum
	// mode. Values below 1 are treated as 1; values above the communicator
	// size behave like Solo.
	Candidates int
	// BaseTag is the first tag of the private tag namespace. Defaults to
	// DefaultBaseTag.
	BaseTag int
	// Buckets partitions the n-element gradient into contiguous buckets of
	// the given lengths (summing to n). Each round then reduces the buckets
	// as concurrent per-bucket sub-collectives behind a single activation —
	// one solo/majority/quorum participation decision per round, shared by
	// every bucket — and publishes each bucket's result as soon as its chain
	// completes, which is what the overlapped (bucketed) step API exposes.
	// Empty means one bucket covering the whole vector. Every rank must use
	// the same layout (the per-bucket tag blocks are wire state).
	Buckets []int
	// PeerDeadline enables rank-failure tolerance: it is the failure
	// detector's deadline. A reduction-chain receive blocked on a peer for
	// longer than this marks the peer down (its subtree — data and activation
	// flag — is dropped from the round and every later round), and a rank that
	// has arrived at a round whose designated initiators are all marked down
	// activates the round itself after this long, so a dead initiator cannot
	// stall Majority/Quorum training. Choose it far above any legitimate
	// skew: a rank it fires on is treated as permanently failed. Zero (the
	// default) disables failure tolerance — a dead peer then blocks the round
	// forever, the pre-fault-tolerance behaviour.
	PeerDeadline time.Duration
}

// RoundInfo describes the completed round an Exchange call observed.
type RoundInfo struct {
	// Round is the round index whose result was returned. If the caller fell
	// behind by more than one round, this is the latest completed round (the
	// receive buffer only retains the most recent result, §5 of the paper).
	Round int
	// ActiveProcesses is the number of ranks whose fresh contribution for
	// that round arrived before the collective was activated — the NAP metric
	// of Fig. 9.
	ActiveProcesses int
	// Included reports whether the caller's contribution to this Exchange was
	// part of the returned result. When false the gradient remains in the
	// send buffer and will be folded into a later round (stale gradient).
	Included bool
}

// ErrClosed is returned by Exchange after Close has been called.
var ErrClosed = errors.New("partial: allreducer closed")

type roundRecord struct {
	snapshotSeq uint64
	nap         int
}

// retainedRounds bounds the per-round bookkeeping kept for late callers.
const retainedRounds = 128

// Allreducer provides partial allreduce over a fixed-size gradient vector.
// It is safe for concurrent use by one application goroutine per rank plus
// its internal engine; the usual usage is one Allreducer per rank, called
// from that rank's training loop.
type Allreducer struct {
	comm *comm.Communicator
	n    int
	opts Options

	buckets    []int // bucket lengths, summing to n (single whole-vector bucket by default)
	bucketOffs []int // bucket start offsets

	mu   sync.Mutex
	cond *sync.Cond

	sendBuf     tensor.Vector // accumulated not-yet-contributed gradients
	contribSeq  uint64        // bumped on every accumulation into sendBuf
	appRound    int           // next round index the application will exchange
	appArrived  int           // highest round for which the application has arrived (-1 none)
	pendingInit int           // highest round the app wants internally activated (-1 none)

	engineRound    int // round currently armed by the engine
	activatedRound int // highest round whose activation snapshot ran (-1 none)
	completedRound int // highest completed round (-1 none)
	lastResult     tensor.Vector
	records        map[int]roundRecord

	bucketRound int    // round whose bucketDone entries are valid
	bucketDone  []bool // per-bucket completion of bucketRound

	currentEx         *sched.Executor
	currentActivation sched.OpID

	closed   bool
	engineWG sync.WaitGroup
	err      error
}

// New creates an Allreducer for vectors of length n over the communicator.
// Every rank of the communicator must create one with identical n and
// options; the engines start immediately.
func New(c *comm.Communicator, n int, opts Options) *Allreducer {
	if opts.BaseTag == 0 {
		opts.BaseTag = DefaultBaseTag
	}
	if opts.Candidates < 1 {
		opts.Candidates = 1
	}
	buckets := opts.Buckets
	if len(buckets) == 0 {
		buckets = []int{n}
	}
	offs := make([]int, len(buckets))
	total := 0
	for b, l := range buckets {
		if l <= 0 {
			panic(fmt.Sprintf("partial: bucket %d length %d must be positive", b, l))
		}
		offs[b] = total
		total += l
	}
	if total != n {
		panic(fmt.Sprintf("partial: bucket lengths sum to %d, want %d", total, n))
	}
	a := &Allreducer{
		comm:           c,
		n:              n,
		opts:           opts,
		buckets:        buckets,
		bucketOffs:     offs,
		sendBuf:        tensor.NewVector(n),
		appArrived:     -1,
		pendingInit:    -1,
		activatedRound: -1,
		completedRound: -1,
		bucketRound:    -1,
		bucketDone:     make([]bool, len(buckets)),
		lastResult:     tensor.NewVector(n),
		records:        make(map[int]roundRecord),
	}
	a.cond = sync.NewCond(&a.mu)
	if opts.PeerDeadline > 0 {
		// A peer marked down (by a chain deadline, the transport, or the
		// failure detector of a sibling allreducer on the same communicator)
		// may have been the only rank allowed to activate the armed round;
		// re-evaluate failover activation on every marking.
		c.OnPeerDown(func(int) { a.maybeFailoverActivate() })
	}
	a.engineWG.Add(1)
	go a.engineLoop()
	return a
}

// anyInitiatorAlive reports whether any designated initiator of the round is
// still believed alive (self counts as alive). For Solo mode every rank may
// initiate, so the answer is always true.
func (a *Allreducer) anyInitiatorAlive(round int) bool {
	inits := a.DesignatedInitiators(round)
	if inits == nil {
		return true // Solo (or Quorum covering all ranks)
	}
	me := a.comm.Rank()
	for _, r := range inits {
		if r == me || !a.comm.PeerDown(r) {
			return true
		}
	}
	return false
}

// mayActivateLocked reports whether this rank may internally activate the
// round: it is a designated initiator, or failure tolerance is on and every
// designated initiator is marked down (the failover that keeps a round with a
// dead initiator live — its activation then carries only survivors' flags).
// Caller holds a.mu.
func (a *Allreducer) mayActivateLocked(round int) bool {
	if a.isInitiator(round) {
		return true
	}
	return a.opts.PeerDeadline > 0 && !a.anyInitiatorAlive(round)
}

// maybeFailoverActivate triggers the armed round if the application has
// arrived at it and its designated initiators are all dead.
func (a *Allreducer) maybeFailoverActivate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed || a.err != nil {
		return
	}
	round := a.engineRound
	if a.appArrived >= round && a.completedRound < round && a.mayActivateLocked(round) {
		if a.pendingInit < round {
			a.pendingInit = round
		}
		a.triggerIfArmedLocked(round)
	}
}

// armFailoverTimer starts the per-wait failure detector used while the
// application waits on an incomplete round: if the round is still incomplete
// after the peer deadline, the round's designated initiators that have not
// been heard from are marked down on the communicator (cause
// comm.ErrPeerDeadline) and, all initiators now being dead, the round is
// failover-activated. The returned stop function must be called when the
// wait ends. With failure tolerance off (or in Solo mode, where the waiter
// activates the round itself) it does nothing.
func (a *Allreducer) armFailoverTimer(round int) (stop func()) {
	if a.opts.PeerDeadline <= 0 {
		return func() {}
	}
	inits := a.DesignatedInitiators(round)
	if inits == nil {
		return func() {} // Solo: the application's own arrival activates
	}
	timer := time.AfterFunc(a.opts.PeerDeadline, func() {
		a.mu.Lock()
		// Only suspect the initiators while the round is both incomplete AND
		// unactivated: once any live initiator activated it, the wait is on
		// the reduction chains (whose own deadlines handle dead ranks), and
		// marking the initiators down here would falsely kill live ranks.
		expired := !a.closed && a.err == nil && a.completedRound < round && a.activatedRound < round
		a.mu.Unlock()
		if !expired {
			return
		}
		me := a.comm.Rank()
		for _, r := range inits {
			if r != me {
				// MarkPeerDown re-runs maybeFailoverActivate via the
				// OnPeerDown hook; the direct call below covers the case
				// where every initiator was already marked.
				a.comm.MarkPeerDown(r, fmt.Errorf("partial: round %d initiator %d unresponsive: %w", round, r, comm.ErrPeerDeadline))
			}
		}
		a.maybeFailoverActivate()
	})
	return func() { timer.Stop() }
}

// NumBuckets returns the number of buckets each round reduces.
func (a *Allreducer) NumBuckets() int { return len(a.buckets) }

// BucketRange returns the [lo, hi) element range of bucket b.
func (a *Allreducer) BucketRange(b int) (lo, hi int) {
	return a.bucketOffs[b], a.bucketOffs[b] + a.buckets[b]
}

// Mode returns the configured mode.
func (a *Allreducer) Mode() Mode { return a.opts.Mode }

// Size returns the number of participating ranks.
func (a *Allreducer) Size() int { return a.comm.Size() }

// Rank returns the local rank.
func (a *Allreducer) Rank() int { return a.comm.Rank() }

// isInitiator reports whether this rank may internally activate the given
// round under the configured mode.
func (a *Allreducer) isInitiator(round int) bool {
	switch a.opts.Mode {
	case Solo:
		return true
	case Majority:
		return a.initiatorFor(round, 0) == a.comm.Rank()
	case Quorum:
		c := a.opts.Candidates
		if c >= a.comm.Size() {
			return true
		}
		me := a.comm.Rank()
		for i := 0; i < c; i++ {
			if a.initiatorFor(round, i) == me {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// DesignatedInitiators returns the ranks allowed to internally activate the
// given round: nil for Solo (every rank may initiate), the single designated
// initiator for Majority, and the candidate set for Quorum. Every rank
// computes the same answer (the shared-seed consensus of §4.2), which makes
// this useful for diagnostics and for tests that need to control who
// activates a round.
func (a *Allreducer) DesignatedInitiators(round int) []int {
	switch a.opts.Mode {
	case Majority:
		return []int{a.initiatorFor(round, 0)}
	case Quorum:
		c := a.opts.Candidates
		if c >= a.comm.Size() {
			return nil
		}
		set := make(map[int]bool, c)
		var out []int
		for i := 0; i < c; i++ {
			r := a.initiatorFor(round, i)
			if !set[r] {
				set[r] = true
				out = append(out, r)
			}
		}
		return out
	default:
		return nil
	}
}

// initiatorFor returns the idx-th designated initiator for the round. All
// ranks compute the same value because the hash depends only on the shared
// seed, the round, and the index.
func (a *Allreducer) initiatorFor(round, idx int) int {
	h := splitmix64(uint64(a.opts.Seed) ^ (uint64(round)+1)*0x9e3779b97f4a7c15 ^ uint64(idx)*0xbf58476d1ce4e5b9)
	return int(h % uint64(a.comm.Size()))
}

// splitmix64 is the SplitMix64 hash finalizer, used as a tiny shared PRNG so
// initiator selection needs no state that could drift between ranks.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Exchange contributes grad to the current round of the partial allreduce and
// returns the reduced gradient sum visible to this rank, following the
// eager-SGD buffer protocol of Fig. 7:
//
//   - If the round has not completed yet, the gradient (plus any stale
//     gradients from earlier rounds) is contributed, the call blocks until
//     the round completes (which in Solo mode happens as soon as the fastest
//     rank arrives), and Included is true if this rank's data made it into
//     the snapshot.
//   - If the round already completed (this rank is a straggler), the latest
//     receive-buffer contents are returned immediately, Included is false,
//     and the gradient is kept in the send buffer to be folded into a later
//     round.
//
// The returned vector is a pool-leased copy owned by the caller (release it
// with tensor.PutVector when done, or let the garbage collector take it). The
// result is the element-wise sum over contributions; divide by Size() for the
// average used by eager-SGD.
func (a *Allreducer) Exchange(grad tensor.Vector) (tensor.Vector, RoundInfo, error) {
	//eagervet:ignore ctxcheck -- Exchange is the documented no-context shim over ExchangeContext; the root lives here by design.
	return a.ExchangeContext(context.Background(), grad)
}

// ExchangeContext behaves like Exchange but stops waiting for the round to
// complete when ctx is canceled, returning ctx's error. The contribution
// itself is not withdrawn: the gradient stays folded into the send buffer and
// is contributed to a later round as a stale gradient (Fig. 7 semantics), and
// the engine keeps making rounds progress on behalf of peers, so a canceled
// call leaves the allreducer fully usable.
func (a *Allreducer) ExchangeContext(ctx context.Context, grad tensor.Vector) (tensor.Vector, RoundInfo, error) {
	if len(grad) != a.n {
		return nil, RoundInfo{}, fmt.Errorf("partial: gradient length %d, want %d", len(grad), a.n)
	}
	defer a.watchContext(ctx)()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, RoundInfo{}, ErrClosed
	}
	round := a.appRound
	a.appRound++
	a.appArrived = round

	// Fold the new gradient into the send buffer together with any stale
	// gradients waiting there.
	a.sendBuf.Add(grad)
	a.contribSeq++
	mySeq := a.contribSeq

	if a.err != nil {
		return nil, RoundInfo{}, a.err
	}
	if a.completedRound >= round {
		// Straggler path: the engine already completed this round on our
		// behalf using whatever was in the send buffer at the time.
		info := RoundInfo{Round: a.completedRound, Included: false}
		if rec, ok := a.records[a.completedRound]; ok {
			info.ActiveProcesses = rec.nap
		}
		return a.resultCopyLocked(), info, nil
	}

	// The round is still open. Request internal activation if this rank is
	// allowed to initiate under the configured mode (or via failover when
	// every designated initiator is already known dead).
	if a.mayActivateLocked(round) {
		a.pendingInit = round
		a.triggerIfArmedLocked(round)
	} else {
		stopDetector := a.armFailoverTimer(round)
		defer stopDetector()
	}

	// Wait for the round to complete (possibly activated externally).
	for a.completedRound < round && !a.closed && a.err == nil {
		if err := ctx.Err(); err != nil {
			return nil, RoundInfo{}, err
		}
		a.cond.Wait()
	}
	if a.err != nil {
		return nil, RoundInfo{}, a.err
	}
	if a.closed {
		return nil, RoundInfo{}, ErrClosed
	}
	info := RoundInfo{Round: round}
	if rec, ok := a.records[round]; ok {
		info.ActiveProcesses = rec.nap
		info.Included = mySeq <= rec.snapshotSeq
	}
	return a.resultCopyLocked(), info, nil
}

// resultCopyLocked returns a pool-leased copy of the latest receive-buffer
// contents. The caller (the application) owns the lease and may release it
// with tensor.PutVector once consumed. Caller holds a.mu.
func (a *Allreducer) resultCopyLocked() tensor.Vector {
	return tensor.GetVectorCopy(a.lastResult)
}

// watchContext converts a context cancellation into condition-variable
// wakeups so the wait loops can observe it. The returned stop function must
// be called (usually deferred) when the wait is over.
func (a *Allreducer) watchContext(ctx context.Context) (stop func()) {
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	go func() {
		select {
		case <-done:
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
		case <-stopCh:
		}
	}()
	return func() { close(stopCh) }
}

// BeginStep reserves the next exchange round for a bucketed step and returns
// its round index. The bucketed step protocol — the overlapped path behind
// collective's SubmitBucket/WaitStep — is:
//
//	round, _ := a.BeginStep()
//	// ... as backprop produces buckets, stage them application-side ...
//	seq, _ := a.Contribute(round, full)   // commit: the step's arrival
//	a.WaitBucket(ctx, round, b)           // per bucket, as results land
//	a.WaitStep(ctx, round, seq)           // end-of-step accounting
//
// The contribution is committed atomically by Contribute, so the set of ranks
// whose data is fresh in the round is identical for every bucket: one
// participation decision per step. Every rank must interleave its
// BeginStep/Contribute pairs and Exchange calls in the same order (SPMD).
func (a *Allreducer) BeginStep() (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0, ErrClosed
	}
	if a.err != nil {
		return 0, a.err
	}
	round := a.appRound
	a.appRound++
	return round, nil
}

// Contribute commits the step's whole gradient vector to the send buffer in
// one atomic fold — the bucketed step's arrival point. If this rank may
// initiate the round under the configured mode, the round is activated. The
// returned sequence number identifies the contribution for WaitStep's
// inclusion accounting. Contribute never blocks on communication: if the
// round already completed (straggler), the data simply stays buffered and is
// folded into a later round as a stale gradient (Fig. 7).
func (a *Allreducer) Contribute(round int, grad tensor.Vector) (uint64, error) {
	if len(grad) != a.n {
		return 0, fmt.Errorf("partial: gradient length %d, want %d", len(grad), a.n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0, ErrClosed
	}
	a.sendBuf.Add(grad)
	a.contribSeq++
	seq := a.contribSeq
	if round > a.appArrived {
		a.appArrived = round
	}
	if a.err != nil {
		return seq, a.err
	}
	if a.completedRound < round && a.mayActivateLocked(round) {
		a.pendingInit = round
		a.triggerIfArmedLocked(round)
	}
	return seq, nil
}

// WaitBucket blocks until bucket b of the round has been reduced and returns
// a pool-leased copy of the bucket's receive-buffer slice. Buckets complete
// (and unblock their waiters) as their chains drain, before the round as a
// whole finishes. If the round — or a later one — already completed, the
// latest receive-buffer contents for the bucket are returned immediately:
// the straggler path of Fig. 7 at bucket granularity.
func (a *Allreducer) WaitBucket(ctx context.Context, round, b int) (tensor.Vector, error) {
	if b < 0 || b >= len(a.buckets) {
		return nil, fmt.Errorf("partial: bucket %d out of range [0,%d)", b, len(a.buckets))
	}
	defer a.watchContext(ctx)()
	defer a.armFailoverTimer(round)()
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if a.err != nil {
			return nil, a.err
		}
		if a.closed {
			return nil, ErrClosed
		}
		if a.completedRound >= round || (a.bucketRound == round && a.bucketDone[b]) {
			lo := a.bucketOffs[b]
			return tensor.GetVectorCopy(a.lastResult[lo : lo+a.buckets[b]]), nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a.cond.Wait()
	}
}

// WaitStep blocks until the round has fully completed and returns its
// accounting: the number of active processes and whether the contribution
// identified by seq (from Contribute) made it into the round's snapshot.
// Because the snapshot is atomic and the activation decision is made once per
// round, inclusion is the same for every bucket of the step.
func (a *Allreducer) WaitStep(ctx context.Context, round int, seq uint64) (RoundInfo, error) {
	defer a.watchContext(ctx)()
	defer a.armFailoverTimer(round)()
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.completedRound < round && !a.closed && a.err == nil {
		if err := ctx.Err(); err != nil {
			return RoundInfo{}, err
		}
		a.cond.Wait()
	}
	if a.err != nil {
		return RoundInfo{}, a.err
	}
	if a.closed {
		return RoundInfo{}, ErrClosed
	}
	info := RoundInfo{Round: round}
	if rec, ok := a.records[round]; ok {
		info.ActiveProcesses = rec.nap
		info.Included = seq > 0 && seq <= rec.snapshotSeq
	}
	return info, nil
}

// triggerIfArmedLocked triggers the internal activation of the armed round if
// it matches the requested one; otherwise the engine triggers it itself when
// it arms the round (it checks pendingInit). Caller holds a.mu. Holding a.mu
// across Trigger is safe: schedule computations (including the snapshot hook)
// run on their own goroutines and only take a.mu while no executor lock is
// held, so there is no lock cycle.
func (a *Allreducer) triggerIfArmedLocked(round int) {
	if a.currentEx != nil && a.engineRound == round {
		_ = a.currentEx.Trigger(a.currentActivation)
	}
}

// snapshot is invoked by the schedule's prepare hook at activation time: it
// moves the send buffer into the schedule's data buffer (appending the
// "fresh contribution" flag used to compute the number of active processes)
// and resets the send buffer to null gradients.
func (a *Allreducer) snapshot(round int, data tensor.Vector) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if round > a.activatedRound {
		a.activatedRound = round
	}
	copy(data[:a.n], a.sendBuf)
	if a.appArrived >= round {
		data[a.n] = 1 // this rank's application reached the collective in time
	} else {
		data[a.n] = 0
	}
	a.records[round] = roundRecord{snapshotSeq: a.contribSeq, nap: -1}
	a.sendBuf.Zero()
}

// engineLoop is the background communication engine: it arms one bucketed
// schedule per round, lets it be activated internally or externally (one
// participation decision per round, shared by every bucket), publishes each
// bucket's result as its chain completes, and publishes the round itself when
// every chain has drained.
func (a *Allreducer) engineLoop() {
	defer a.engineWG.Done()
	rank, size := a.comm.Rank(), a.comm.Size()
	roundStride := sched.BucketRoundTagStride(len(a.buckets))
	for round := 0; ; round++ {
		baseTag := a.opts.BaseTag + round*roundStride
		r := round
		plan := sched.BuildBucketedPartialAllreduce(rank, size, baseTag, a.buckets, sched.SumReduce,
			func(data tensor.Vector) { a.snapshot(r, data) },
			func(b int, seg tensor.Vector) { a.publishBucket(r, b, seg) })
		// Failure tolerance: reduction-chain receives blocked past the
		// deadline mark their peer down and are skipped, so a round always
		// drains with the surviving participant set (zero disables this).
		plan.Schedule.SetPeerDeadline(a.opts.PeerDeadline)
		ex, err := sched.NewExecutor(a.comm, plan.Schedule)
		if err != nil {
			plan.ReleaseBuffers()
			a.fail(err)
			return
		}

		// Start first so a Trigger from the application (which only happens
		// after currentEx is published below) is never rejected as premature.
		ex.Start()

		a.mu.Lock()
		closing := a.closed
		a.engineRound = round
		a.currentEx = ex
		a.currentActivation = plan.InternalActivation
		a.bucketRound = round
		for b := range a.bucketDone {
			a.bucketDone[b] = false
		}
		trigger := a.pendingInit >= round
		a.mu.Unlock()

		if trigger && !closing {
			_ = ex.Trigger(plan.InternalActivation)
		}

		// Even when the allreducer is closing, the armed executor must drain
		// before its buffers can be recycled: peers may still activate the
		// round, and the communicator's close unblocks it otherwise. Waiting
		// here (instead of abandoning the executor) is what guarantees a
		// closed engine leaks no pool leases.
		if err := ex.Wait(); err != nil {
			plan.ReleaseBuffers()
			if errors.Is(err, comm.ErrClosed) {
				a.fail(ErrClosed)
				return
			}
			a.fail(err)
			return
		}

		if !closing {
			data := plan.Schedule.Buffer(sched.DataBuffer)
			a.publish(round, data)
		}
		// The executor has fully drained (Wait returned), so nothing references
		// the round's schedule buffers anymore: recycle them for the next round.
		plan.ReleaseBuffers()

		// Purge stray duplicate activation messages from completed rounds so
		// the unexpected queue stays short over long trainings (their payloads
		// are released back to the pool by the communicator).
		a.comm.DiscardTagRange(a.opts.BaseTag, baseTag)

		a.mu.Lock()
		closed := a.closed
		a.mu.Unlock()
		if closed {
			return
		}
	}
}

// publishBucket records one completed bucket of the armed round into the
// receive buffer and wakes WaitBucket callers. It runs on a schedule compute
// goroutine as soon as the bucket's reduction chain drains — typically while
// other buckets of the same round are still in flight.
func (a *Allreducer) publishBucket(round, b int, seg tensor.Vector) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lo := a.bucketOffs[b]
	a.lastResult[lo : lo+a.buckets[b]].CopyFrom(seg)
	if a.bucketRound == round {
		a.bucketDone[b] = true
	}
	a.cond.Broadcast()
}

// publish records the accounting of a completed round and wakes waiting
// Exchange calls. The receive buffer itself was already filled bucket by
// bucket (publishBucket) as the chains drained; only the flag element — the
// round's number of active processes — is read here.
func (a *Allreducer) publish(round int, data tensor.Vector) {
	a.mu.Lock()
	defer a.mu.Unlock()
	nap := int(data[a.n] + 0.5)
	rec := a.records[round]
	rec.nap = nap
	a.records[round] = rec
	delete(a.records, round-retainedRounds)
	if round > a.completedRound {
		a.completedRound = round
	}
	a.cond.Broadcast()
}

// fail records a fatal engine error and wakes all waiters.
func (a *Allreducer) fail(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err == nil && !errors.Is(err, ErrClosed) {
		a.err = err
	}
	if errors.Is(err, ErrClosed) {
		a.closed = true
	}
	a.cond.Broadcast()
}

// LastRound returns the highest completed round, or -1 if none completed yet.
func (a *Allreducer) LastRound() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.completedRound
}

// PendingStale returns the L2 norm of the gradients currently parked in the
// send buffer (stale gradients not yet contributed). Useful for diagnostics
// and tests of the Fig. 7 protocol.
func (a *Allreducer) PendingStale() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sendBuf.Norm2()
}

// DrainPending atomically removes and returns the stale gradients accumulated
// in the send buffer, leaving it null. It exists for hybrid reduction
// schemes that periodically fold the pending contributions into a synchronous
// allreduce outside the partial engine (the periodic full synchronization of
// §5): every rank must drain at the same exchange index, with no Exchange in
// flight, so no round can snapshot concurrently.
func (a *Allreducer) DrainPending() tensor.Vector {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := tensor.GetVectorCopy(a.sendBuf)
	a.sendBuf.Zero()
	return out
}

// RestorePending folds v back into the send buffer. It is the undo of
// DrainPending for hybrid schemes whose out-of-engine reduction failed after
// draining: the contributions return to the buffer and are delivered in a
// later round, preserving the no-gradient-lost guarantee of Fig. 7.
func (a *Allreducer) RestorePending(v tensor.Vector) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sendBuf.Add(v)
}

// Join blocks until the background engine goroutine has exited and released
// its round buffers back to the pool. The engine only exits once the
// underlying communicator is closed, so call Join after that point (the
// collective World does, giving leak-free shutdown accounting).
func (a *Allreducer) Join() {
	a.engineWG.Wait()
}

// Close marks the allreducer closed. Pending and future Exchange calls return
// ErrClosed. The background engine exits once the underlying communicator is
// closed (closing the communicator is the collective shutdown point, after
// all ranks have stopped exchanging); Close itself does not block.
func (a *Allreducer) Close() {
	a.mu.Lock()
	a.closed = true
	a.cond.Broadcast()
	a.mu.Unlock()
}
