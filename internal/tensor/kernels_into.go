package tensor

// Three-address variants of the element-wise kernels: the result lands in a
// destination distinct from both operands. The shared-ring transport's
// fill-send path (comm.SendFrom) is built on these — a collective computes a
// forwarded partial sum straight into the reserved outgoing frame instead of
// accumulating in place and paying a staging copy afterwards.
//
// Like their two-address siblings, the kernels are element-wise and chunk
// across the same worker pool above ParallelThreshold, producing results
// bit-for-bit identical to the scalar loop. The comparison kernels keep the
// reduce-op NaN convention: b is the incoming operand, and a NaN in b never
// replaces the local value from a.

// AddInto computes dst[i] = a[i] + b[i]. It panics if the lengths differ.
// dst may alias a or b (the kernels only read an element before writing it).
func AddInto(dst, a, b Vector) {
	checkKernelLen("AddInto", len(dst), len(a))
	checkKernelLen("AddInto", len(dst), len(b))
	applyKernel(kernelAddInto, dst, a, b, 0)
}

// MaxInto computes dst[i] = max(a[i], b[i]) with the reduce-op NaN
// convention: a NaN in b never wins, a NaN in a is kept.
func MaxInto(dst, a, b Vector) {
	checkKernelLen("MaxInto", len(dst), len(a))
	checkKernelLen("MaxInto", len(dst), len(b))
	applyKernel(kernelMaxInto, dst, a, b, 0)
}

// MinInto computes dst[i] = min(a[i], b[i]) with the same NaN convention as
// MaxInto.
func MinInto(dst, a, b Vector) {
	checkKernelLen("MinInto", len(dst), len(a))
	checkKernelLen("MinInto", len(dst), len(b))
	applyKernel(kernelMinInto, dst, a, b, 0)
}

// Copy2 copies src into both dst and dup in one pass — one read of src, two
// writes — for the allgather hop that must place an incoming chunk into the
// result buffer and the outgoing frame at once.
func Copy2(dst, dup, src Vector) {
	checkKernelLen("Copy2", len(dst), len(dup))
	checkKernelLen("Copy2", len(dst), len(src))
	applyKernel(kernelCopy2, dst, dup, src, 0)
}

// addIntoKernel is the 8-way unrolled dst = a + b.
func addIntoKernel(dst, a, b []float64) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		x := a[i : i+8 : i+8]
		y := b[i : i+8 : i+8]
		d[0] = x[0] + y[0]
		d[1] = x[1] + y[1]
		d[2] = x[2] + y[2]
		d[3] = x[3] + y[3]
		d[4] = x[4] + y[4]
		d[5] = x[5] + y[5]
		d[6] = x[6] + y[6]
		d[7] = x[7] + y[7]
	}
	for ; i < n; i++ {
		dst[i] = a[i] + b[i]
	}
}

// maxIntoKernel is the 4-way unrolled dst = max(a, b); comparison-based, so a
// NaN in b loses and a's value is taken (matching maxKernel).
func maxIntoKernel(dst, a, b []float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		for k := 0; k < 4; k++ {
			v := x[k]
			if y[k] > v {
				v = y[k]
			}
			d[k] = v
		}
	}
	for ; i < n; i++ {
		v := a[i]
		if b[i] > v {
			v = b[i]
		}
		dst[i] = v
	}
}

// minIntoKernel is the 4-way unrolled dst = min(a, b), same NaN convention.
func minIntoKernel(dst, a, b []float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		for k := 0; k < 4; k++ {
			v := x[k]
			if y[k] < v {
				v = y[k]
			}
			d[k] = v
		}
	}
	for ; i < n; i++ {
		v := a[i]
		if b[i] < v {
			v = b[i]
		}
		dst[i] = v
	}
}

// copy2Kernel writes src into both dst and dup as two bulk copies. A fused
// single-read scalar loop looks cheaper on paper (one read, two writes) but
// measures ~2.5x slower on cold destinations: per-element stores pay a
// read-for-ownership on every missing cache line, while the runtime's bulk
// memmove takes the no-RFO fast-string path. Task field mapping: dst=dst,
// src=dup, aux=src.
func copy2Kernel(dst, dup, src []float64) {
	copy(dst, src)
	copy(dup, src)
}
