package tensor

import (
	"sync"
	"testing"

	"eagersgd/internal/race"
)

func TestGetVectorLengthsAndClassCaps(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 32}, {31, 32}, {32, 32}, {33, 64}, {64, 64}, {65, 128},
		{1024, 1024}, {1025, 2048}, {maxPoolCap, maxPoolCap},
	}
	for _, c := range cases {
		v := GetVector(c.n)
		if len(v) != c.n {
			t.Fatalf("GetVector(%d): len = %d", c.n, len(v))
		}
		if cap(v) != c.wantCap {
			t.Fatalf("GetVector(%d): cap = %d, want %d", c.n, cap(v), c.wantCap)
		}
		PutVector(v)
	}
}

func TestGetVectorZeroLength(t *testing.T) {
	v := GetVector(0)
	if v == nil || len(v) != 0 {
		t.Fatalf("GetVector(0) = %v", v)
	}
	PutVector(v) // must not panic
}

func TestGetVectorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative length")
		}
	}()
	GetVector(-1)
}

func TestGetVectorOversizedAllocatesDirectly(t *testing.T) {
	v := GetVector(4 * maxPoolCap)
	if len(v) != 4*maxPoolCap {
		t.Fatalf("len = %d", len(v))
	}
	before := ReadPoolStats()
	PutVector(v) // far too large for any class: dropped
	after := ReadPoolStats()
	if after.Discards != before.Discards+1 {
		t.Fatalf("oversized Put not discarded: %+v -> %+v", before, after)
	}
}

func TestPutGetReusesBuffer(t *testing.T) {
	v := GetVector(100)
	v.Fill(3)
	PutVector(v)
	// Same size class (cap 128): the very next Get on this goroutine must hand
	// the same backing array back.
	w := GetVector(70)
	if &w[0] != &v[0] {
		t.Fatalf("pool did not reuse the released buffer")
	}
	PutVector(w)
}

func TestGetVectorZeroClearsRecycledContents(t *testing.T) {
	v := GetVector(64)
	v.Fill(42)
	PutVector(v)
	w := GetVectorZero(64)
	for i, x := range w {
		if x != 0 {
			t.Fatalf("element %d = %v, want 0", i, x)
		}
	}
	PutVector(w)
}

func TestPutVectorForeignCapacities(t *testing.T) {
	before := ReadPoolStats()
	PutVector(nil)                 // never a lease: silent no-op, not a discard
	PutVector(make(Vector, 5))     // cap below the smallest class: dropped
	PutVector(make(Vector, 0, 40)) // cap 40 serves class 0 (cap 32)
	after := ReadPoolStats()
	if after.Discards != before.Discards+1 {
		t.Fatalf("discards: %+v -> %+v", before, after)
	}
	if after.Puts != before.Puts+1 {
		t.Fatalf("puts: %+v -> %+v", before, after)
	}
	// The odd-capacity buffer must still satisfy a class-0 lease.
	v := GetVector(30)
	if len(v) != 30 {
		t.Fatalf("len = %d", len(v))
	}
	PutVector(v)
}

func TestPoolConcurrentStress(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 2 + (g*131+i*17)%4096
				v := GetVector(n)
				v[0] = float64(g)
				v[n-1] = float64(i)
				if v[0] != float64(g) || v[n-1] != float64(i) {
					t.Errorf("corrupted lease")
					return
				}
				PutVector(v)
			}
		}(g)
	}
	wg.Wait()
}

func TestGetPutCycleAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	if LeaseDebugEnabled {
		t.Skip("-tags leasedebug trades the alloc-free guarantee for lease-site tracking")
	}
	// Warm the class and box pools.
	for i := 0; i < 16; i++ {
		PutVector(GetVector(1024))
	}
	avg := testing.AllocsPerRun(200, func() {
		v := GetVector(1024)
		v[0] = 1
		PutVector(v)
	})
	if avg > 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f objects per cycle, want 0", avg)
	}
}
