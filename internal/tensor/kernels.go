package tensor

import (
	"runtime"
	"sync"
)

// This file implements the tuned reduction-kernel layer beneath the
// element-wise vector operations the collectives hammer on every hop:
// unrolled single-thread kernels for sum, max, min, and axpy, plus a chunked
// multi-goroutine parallel dispatcher backed by a persistent worker pool.
//
// Vector.Add, Vector.Axpy, and the collective ReduceOp implementations all
// route through AddVec/MaxVec/MinVec/AxpyVec. Small vectors stay on the
// single-thread unrolled path (spawning work costs more than it saves below
// tens of kilobytes); vectors of ParallelThreshold elements or more are split
// into contiguous chunks and fanned out across the pool, with the calling
// goroutine reducing the first chunk itself so the pool only ever carries
// workers-1 chunks.
//
// Every kernel is element-wise (dst[i] op= src[i]), so chunking never
// reassociates floating-point operations: the parallel and unrolled paths
// produce results bit-for-bit identical to the naive scalar loop, which the
// property tests in kernels_test.go assert.
//
// The pool is engaged only when GOMAXPROCS > 1 at first use; on a
// single-processor runtime every call takes the unrolled path and no worker
// goroutines are ever started. Workers are started once and live for the
// process lifetime (there is no shutdown: they are parked on an empty channel
// and cost nothing while idle). The dispatch path is allocation-free in
// steady state: tasks are plain structs sent by value, and the completion
// WaitGroups are recycled through a sync.Pool.

// ParallelThreshold is the element count at or above which the element-wise
// kernels fan out across the persistent worker pool (when more than one
// processor is available). 64Ki float64s (512 KiB) is past the point where a
// single core's loop is memory-bound on typical hardware.
const ParallelThreshold = 64 * 1024

// minParallelChunk bounds how finely a parallel call is chunked: no worker
// receives fewer than this many elements, so the per-task handoff cost stays
// negligible against the work itself.
const minParallelChunk = 16 * 1024

// maxKernelWorkers caps the pool size; beyond this the kernels are
// memory-bandwidth-bound and extra goroutines only add handoff latency.
const maxKernelWorkers = 16

type kernelOp uint8

const (
	kernelAdd kernelOp = iota
	kernelMax
	kernelMin
	kernelAxpy
	kernelAddInto
	kernelMaxInto
	kernelMinInto
	kernelCopy2
)

// kernelTask is one chunk of a parallel kernel call. It is sent by value, so
// enqueueing a task performs no allocation. aux carries the second operand of
// the three-address kernels (kernels_into.go) and is nil for the in-place
// two-address ones.
type kernelTask struct {
	op       kernelOp
	dst, src []float64
	aux      []float64
	alpha    float64
	wg       *sync.WaitGroup
}

var (
	kernelOnce    sync.Once
	kernelWorkers int             // 0 until the pool starts; 0 forever on GOMAXPROCS=1
	kernelCh      chan kernelTask // nil when the pool is disabled
	kernelWGPool  = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

// startKernelPool starts the persistent workers on first use. On a
// single-processor runtime the pool stays disabled and kernelWorkers stays 0.
func startKernelPool() {
	kernelOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		if workers > maxKernelWorkers {
			workers = maxKernelWorkers
		}
		if workers < 2 {
			return
		}
		kernelWorkers = workers
		kernelCh = make(chan kernelTask, 2*workers)
		for i := 0; i < workers; i++ {
			go func() {
				for t := range kernelCh {
					runKernel(t.op, t.dst, t.src, t.aux, t.alpha)
					t.wg.Done()
				}
			}()
		}
	})
}

// runKernel executes one kernel over a contiguous range on the calling
// goroutine. aux is the second operand of the three-address kernels and nil
// for the in-place ones.
func runKernel(op kernelOp, dst, src, aux []float64, alpha float64) {
	switch op {
	case kernelAdd:
		addKernel(dst, src)
	case kernelMax:
		maxKernel(dst, src)
	case kernelMin:
		minKernel(dst, src)
	case kernelAxpy:
		axpyKernel(dst, alpha, src)
	case kernelAddInto:
		addIntoKernel(dst, src, aux)
	case kernelMaxInto:
		maxIntoKernel(dst, src, aux)
	case kernelMinInto:
		minIntoKernel(dst, src, aux)
	case kernelCopy2:
		copy2Kernel(dst, src, aux)
	}
}

// applyKernel is the routing point: small inputs run the unrolled kernel
// inline; large inputs are chunked across the worker pool, with the caller
// taking chunk 0.
func applyKernel(op kernelOp, dst, src, aux []float64, alpha float64) {
	n := len(dst)
	if n >= ParallelThreshold {
		startKernelPool()
		if kernelWorkers >= 2 {
			parallelApply(op, dst, src, aux, alpha, kernelWorkers)
			return
		}
	}
	runKernel(op, dst, src, aux, alpha)
}

// parallelApply splits [0, len(dst)) into parts contiguous chunks, hands
// chunks 1..parts-1 to the pool, reduces chunk 0 on the calling goroutine,
// and waits for the pool chunks to finish.
func parallelApply(op kernelOp, dst, src, aux []float64, alpha float64, parts int) {
	n := len(dst)
	if byChunk := n / minParallelChunk; parts > byChunk {
		parts = byChunk
	}
	if parts < 2 {
		runKernel(op, dst, src, aux, alpha)
		return
	}
	wg := kernelWGPool.Get().(*sync.WaitGroup)
	wg.Add(parts - 1)
	for i := 1; i < parts; i++ {
		lo, hi := ChunkBounds(n, parts, i)
		t := kernelTask{op: op, dst: dst[lo:hi], src: src[lo:hi], alpha: alpha, wg: wg}
		if aux != nil {
			t.aux = aux[lo:hi]
		}
		kernelCh <- t
	}
	_, hi0 := ChunkBounds(n, parts, 0)
	var aux0 []float64
	if aux != nil {
		aux0 = aux[:hi0]
	}
	runKernel(op, dst[:hi0], src[:hi0], aux0, alpha)
	wg.Wait()
	kernelWGPool.Put(wg)
}

// AddVec computes dst[i] += src[i]. It panics if the lengths differ.
func AddVec(dst, src Vector) {
	checkKernelLen("AddVec", len(dst), len(src))
	applyKernel(kernelAdd, dst, src, nil, 0)
}

// MaxVec keeps the element-wise maximum: dst[i] = max(dst[i], src[i]).
// Following the comparison-based convention of the collective reduce ops, a
// NaN in src never replaces dst (NaN comparisons are false).
func MaxVec(dst, src Vector) {
	checkKernelLen("MaxVec", len(dst), len(src))
	applyKernel(kernelMax, dst, src, nil, 0)
}

// MinVec keeps the element-wise minimum: dst[i] = min(dst[i], src[i]), with
// the same NaN convention as MaxVec.
func MinVec(dst, src Vector) {
	checkKernelLen("MinVec", len(dst), len(src))
	applyKernel(kernelMin, dst, src, nil, 0)
}

// AxpyVec computes dst[i] += alpha * src[i]. It panics if the lengths differ.
func AxpyVec(dst Vector, alpha float64, src Vector) {
	checkKernelLen("AxpyVec", len(dst), len(src))
	applyKernel(kernelAxpy, dst, src, nil, alpha)
}

func checkKernelLen(name string, nd, ns int) {
	if nd != ns {
		panic("tensor: " + name + " length mismatch")
	}
}

// addKernel is the 8-way unrolled element-wise sum. The full-slice
// expressions re-slice dst and src to a common 8-element block, letting the
// compiler prove the inner accesses in bounds once per block.
func addKernel(dst, src []float64) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
		d[4] += s[4]
		d[5] += s[5]
		d[6] += s[6]
		d[7] += s[7]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// axpyKernel is the 8-way unrolled dst += alpha*src.
func axpyKernel(dst []float64, alpha float64, src []float64) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] += alpha * s[0]
		d[1] += alpha * s[1]
		d[2] += alpha * s[2]
		d[3] += alpha * s[3]
		d[4] += alpha * s[4]
		d[5] += alpha * s[5]
		d[6] += alpha * s[6]
		d[7] += alpha * s[7]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// maxKernel is the 4-way unrolled element-wise maximum (comparison-based, so
// NaNs in src lose and dst is kept — matching the scalar reduce loop).
func maxKernel(dst, src []float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := src[i : i+4 : i+4]
		if s[0] > d[0] {
			d[0] = s[0]
		}
		if s[1] > d[1] {
			d[1] = s[1]
		}
		if s[2] > d[2] {
			d[2] = s[2]
		}
		if s[3] > d[3] {
			d[3] = s[3]
		}
	}
	for ; i < n; i++ {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// minKernel is the 4-way unrolled element-wise minimum.
func minKernel(dst, src []float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := src[i : i+4 : i+4]
		if s[0] < d[0] {
			d[0] = s[0]
		}
		if s[1] < d[1] {
			d[1] = s[1]
		}
		if s[2] < d[2] {
			d[2] = s[2]
		}
		if s[3] < d[3] {
			d[3] = s[3]
		}
	}
	for ; i < n; i++ {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}
