//go:build leasedebug

package tensor

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Build with -tags leasedebug to record the call site of every outstanding
// pool lease. The chaos and shutdown suites assert
// PoolStats.OutstandingSince == 0; when that fails, the counter alone says a
// lease leaked but not where it was minted. Under this tag every GetVector
// remembers its caller, every PutVector forgets it, and FormatLeaseReport
// prints the live leases aggregated by minting site — so re-running the
// failing test with -tags leasedebug names the leak directly.
//
// The instrumented pool is not the production pool: the map and stack
// capture cost real time per lease, so the tag must never be part of a
// benchmark or release build.

// LeaseDebugEnabled reports whether the build carries lease-site tracking.
const LeaseDebugEnabled = true

type leaseRecord struct {
	site string
	n    int
	at   time.Time
}

var (
	leaseMu  sync.Mutex
	leaseMap = make(map[uintptr]leaseRecord)
)

// leaseSite returns the nearest caller outside the pool implementation —
// skipping this file, pool.go's Get/Put wrappers, and the public facade in
// eagersgd/tensor, so the reported site is the code that minted the lease.
func leaseSite() string {
	var pcs [16]uintptr
	n := runtime.Callers(3, pcs[:]) // skip Callers, leaseSite, leaseTrack
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		if f.Function != "" &&
			!strings.Contains(f.File, "/internal/tensor/pool") &&
			!strings.HasSuffix(f.File, "/tensor/tensor.go") {
			return fmt.Sprintf("%s (%s:%d)", f.Function, f.File, f.Line)
		}
		if !more {
			return "unknown"
		}
	}
}

// leaseTrack records a freshly minted lease. v is never empty: GetVector
// returns the zero-length Vector without touching the pool.
func leaseTrack(v Vector) {
	rec := leaseRecord{site: leaseSite(), n: len(v), at: time.Now()}
	key := reflect.ValueOf(v).Pointer()
	leaseMu.Lock()
	leaseMap[key] = rec
	leaseMu.Unlock()
}

// leaseUntrack forgets a lease on release. Unknown pointers (vectors that
// never came from the pool, or sub-slices not starting at the lease's first
// element) are ignored.
func leaseUntrack(v Vector) {
	if cap(v) == 0 {
		return
	}
	key := reflect.ValueOf(v).Pointer()
	leaseMu.Lock()
	delete(leaseMap, key)
	leaseMu.Unlock()
}

// LeaseSite aggregates the outstanding leases minted at one call site.
type LeaseSite struct {
	Site   string
	Count  int
	Elems  int           // total leased elements
	Oldest time.Duration // age of the oldest live lease from this site
}

// OutstandingLeases returns the live leases aggregated by minting site,
// largest count first.
func OutstandingLeases() []LeaseSite {
	now := time.Now()
	agg := make(map[string]*LeaseSite)
	leaseMu.Lock()
	for _, rec := range leaseMap {
		s := agg[rec.site]
		if s == nil {
			s = &LeaseSite{Site: rec.site}
			agg[rec.site] = s
		}
		s.Count++
		s.Elems += rec.n
		if age := now.Sub(rec.at); age > s.Oldest {
			s.Oldest = age
		}
	}
	leaseMu.Unlock()
	out := make([]LeaseSite, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// FormatLeaseReport renders the outstanding leases for appending to a test
// failure message. It returns "" when nothing is outstanding.
func FormatLeaseReport() string {
	sites := OutstandingLeases()
	if len(sites) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\noutstanding pool leases by minting site (-tags leasedebug):\n")
	for _, s := range sites {
		fmt.Fprintf(&b, "  %4d lease(s), %8d elems, oldest %8s  %s\n", s.Count, s.Elems, s.Oldest.Round(time.Millisecond), s.Site)
	}
	return b.String()
}
