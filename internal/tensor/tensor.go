// Package tensor provides the dense numerical containers used throughout the
// eager-SGD reproduction: flat float64 vectors, row-major matrices, and the
// small set of BLAS-like kernels (axpy, scal, dot, reductions) the neural
// network and collective layers are built on.
//
// Everything is plain Go on float64 slices.  Collectives operate on Vector
// values directly (gradients are exchanged as flat vectors), and the nn
// package views slices of one flat parameter vector as layer weights, so no
// copies are needed between "model", "send buffer" and "wire" representations.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense one-dimensional array of float64 values.
type Vector []float64

// NewVector returns a zero-initialized vector of length n.
func NewVector(n int) Vector {
	if n < 0 {
		panic("tensor: negative vector length")
	}
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Len returns the number of elements in v.
func (v Vector) Len() int { return len(v) }

// Zero sets every element of v to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// CopyFrom copies src into v. It panics if the lengths differ.
func (v Vector) CopyFrom(src Vector) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("tensor: CopyFrom length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Add adds w element-wise into v (v += w). It routes through the tuned
// kernel layer (see kernels.go): unrolled on one goroutine for small vectors,
// chunked across the persistent worker pool for large ones.
func (v Vector) Add(w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d != %d", len(v), len(w)))
	}
	applyKernel(kernelAdd, v, w, nil, 0)
}

// Sub subtracts w element-wise from v (v -= w).
func (v Vector) Sub(w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Sub length mismatch %d != %d", len(v), len(w)))
	}
	for i, x := range w {
		v[i] -= x
	}
}

// Scale multiplies every element of v by alpha.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Axpy computes v += alpha*w through the tuned kernel layer.
func (v Vector) Axpy(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d != %d", len(v), len(w)))
	}
	applyKernel(kernelAxpy, v, w, nil, alpha)
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d != %d", len(v), len(w)))
	}
	var s float64
	for i, x := range w {
		s += v[i] * x
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum element of v and its index. It panics on an empty
// vector.
func (v Vector) Max() (float64, int) {
	if len(v) == 0 {
		panic("tensor: Max of empty vector")
	}
	best, idx := v[0], 0
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// ArgMax returns the index of the maximum element.
func (v Vector) ArgMax() int {
	_, idx := v.Max()
	return idx
}

// Equal reports whether v and w have the same length and identical elements.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i, x := range w {
		if v[i] != x {
			return false
		}
	}
	return true
}

// AllClose reports whether v and w have the same length and every pair of
// elements differs by at most tol in absolute value.
func (v Vector) AllClose(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i, x := range w {
		if math.Abs(v[i]-x) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element is finite (no NaN or Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Randomize fills v with uniform values in [-scale, scale) drawn from rng.
func (v Vector) Randomize(rng *rand.Rand, scale float64) {
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * scale
	}
}

// RandomizeNormal fills v with normal values N(0, std^2) drawn from rng.
func (v Vector) RandomizeNormal(rng *rand.Rand, std float64) {
	for i := range v {
		v[i] = rng.NormFloat64() * std
	}
}

// Chunk splits v into n contiguous chunks whose sizes differ by at most one
// element; the first (len(v) mod n) chunks receive one extra element. The
// returned slices alias v. Chunk panics if n <= 0.
func (v Vector) Chunk(n int) []Vector {
	if n <= 0 {
		panic("tensor: Chunk with non-positive chunk count")
	}
	out := make([]Vector, n)
	base := len(v) / n
	rem := len(v) % n
	off := 0
	for i := 0; i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		out[i] = v[off : off+sz]
		off += sz
	}
	return out
}

// ChunkBounds returns the [start,end) bounds of chunk i when v of length n is
// split into p chunks with the same policy as Chunk.
func ChunkBounds(n, p, i int) (int, int) {
	if p <= 0 || i < 0 || i >= p {
		panic("tensor: ChunkBounds index out of range")
	}
	base := n / p
	rem := n % p
	start := i*base + min(i, rem)
	sz := base
	if i < rem {
		sz++
	}
	return start, start + sz
}

// ErrShape is returned by matrix constructors when dimensions are invalid.
var ErrShape = errors.New("tensor: invalid shape")

// Matrix is a dense row-major matrix backed by a flat Vector.
type Matrix struct {
	Rows, Cols int
	Data       Vector
}

// NewMatrix allocates a Rows x Cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(ErrShape)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: NewVector(rows * cols)}
}

// MatrixFromData wraps an existing flat slice as a Rows x Cols matrix without
// copying. It returns an error if the slice length does not match.
func MatrixFromData(rows, cols int, data Vector) (*Matrix, error) {
	if rows*cols != len(data) {
		return nil, fmt.Errorf("%w: %dx%d requires %d elements, got %d", ErrShape, rows, cols, rows*cols, len(data))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a vector aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() { m.Data.Zero() }

// MulVec computes out = m * x for a column vector x of length Cols, writing
// the result into out of length Rows.
func (m *Matrix) MulVec(x, out Vector) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVec shape mismatch (%dx%d) * %d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = s
	}
}

// MulVecT computes out = m^T * x for a vector x of length Rows, writing the
// result into out of length Cols.
func (m *Matrix) MulVecT(x, out Vector) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVecT shape mismatch (%dx%d)^T * %d -> %d", m.Rows, m.Cols, len(x), len(out)))
	}
	out.Zero()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, w := range row {
			out[j] += w * xi
		}
	}
}

// AddOuter accumulates the outer product alpha * x * y^T into m, where x has
// length Rows and y has length Cols.
func (m *Matrix) AddOuter(alpha float64, x, y Vector) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuter shape mismatch (%dx%d) vs %d,%d", m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		for j, yj := range y {
			row[j] += ax * yj
		}
	}
}

// Randomize fills m with uniform values in [-scale, scale).
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) { m.Data.Randomize(rng, scale) }

// XavierInit fills m with the Glorot/Xavier uniform initialization commonly
// used for dense layers: U(-sqrt(6/(fanIn+fanOut)), +sqrt(6/(fanIn+fanOut))).
func (m *Matrix) XavierInit(rng *rand.Rand) {
	scale := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	m.Data.Randomize(rng, scale)
}
