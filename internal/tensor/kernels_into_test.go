package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refAddInto and friends are the scalar reference loops the unrolled
// three-address kernels must match bit for bit, including the reduce-op NaN
// convention (b is the incoming operand; a NaN in b never wins).
func refAddInto(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

func refMaxInto(dst, a, b []float64) {
	for i := range dst {
		v := a[i]
		if b[i] > v {
			v = b[i]
		}
		dst[i] = v
	}
}

func refMinInto(dst, a, b []float64) {
	for i := range dst {
		v := a[i]
		if b[i] < v {
			v = b[i]
		}
		dst[i] = v
	}
}

// intoLengths crosses the unroll widths, the remainder tails, and the
// parallel dispatch threshold.
var intoLengths = []int{0, 1, 3, 7, 8, 9, 31, 100, 1024, ParallelThreshold, ParallelThreshold + 17}

func randomOperands(rng *rand.Rand, n int) (a, b Vector) {
	a, b = NewVector(n), NewVector(n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
		// Sprinkle the NaN convention's interesting cases.
		switch rng.Intn(16) {
		case 0:
			b[i] = math.NaN()
		case 1:
			a[i] = math.NaN()
		case 2:
			a[i], b[i] = math.Inf(1), math.Inf(-1)
		}
	}
	return a, b
}

func TestIntoKernelsMatchReference(t *testing.T) {
	kernels := []struct {
		name string
		into func(dst, a, b Vector)
		ref  func(dst, a, b []float64)
	}{
		{"AddInto", AddInto, refAddInto},
		{"MaxInto", MaxInto, refMaxInto},
		{"MinInto", MinInto, refMinInto},
	}
	rng := rand.New(rand.NewSource(7))
	for _, k := range kernels {
		t.Run(k.name, func(t *testing.T) {
			for _, n := range intoLengths {
				a, b := randomOperands(rng, n)
				got, want := NewVector(n), NewVector(n)
				k.into(got, a, b)
				k.ref(want, a, b)
				for i := range want {
					if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
						t.Fatalf("n=%d: %s[%d] = %v, reference %v (a=%v b=%v)", n, k.name, i, got[i], want[i], a[i], b[i])
					}
				}
			}
		})
	}
}

// TestIntoKernelsAliasDst checks the documented aliasing contract: dst may be
// a or b, since each element is read before it is written.
func TestIntoKernelsAliasDst(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{8, 100, 1024} {
		a, b := randomOperands(rng, n)
		want := NewVector(n)
		refAddInto(want, a, b)

		gotA := append(Vector(nil), a...)
		AddInto(gotA, gotA, b)
		gotB := append(Vector(nil), b...)
		AddInto(gotB, a, gotB)
		for i := range want {
			sameA := gotA[i] == want[i] || (math.IsNaN(gotA[i]) && math.IsNaN(want[i]))
			sameB := gotB[i] == want[i] || (math.IsNaN(gotB[i]) && math.IsNaN(want[i]))
			if !sameA || !sameB {
				t.Fatalf("n=%d: aliased AddInto diverged at %d: dst=a %v, dst=b %v, want %v", n, i, gotA[i], gotB[i], want[i])
			}
		}
	}
}

func TestCopy2WritesBothDestinations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range intoLengths {
		src := NewVector(n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		dst, dup := NewVector(n), NewVector(n)
		dst.Fill(math.NaN())
		dup.Fill(math.NaN())
		Copy2(dst, dup, src)
		for i := range src {
			if dst[i] != src[i] || dup[i] != src[i] {
				t.Fatalf("n=%d: Copy2 at %d: dst=%v dup=%v src=%v", n, i, dst[i], dup[i], src[i])
			}
		}
	}
}

func TestIntoKernelsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddInto with mismatched lengths did not panic")
		}
	}()
	AddInto(NewVector(4), NewVector(4), NewVector(5))
}
