package tensor

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file implements the shared vector pool behind the zero-allocation
// message substrate. Every layer of the message path — the transports, the
// communicator, the collective algorithms, and the partial-allreduce engine —
// obtains its wire and scratch buffers from GetVector and returns them with
// PutVector, so a steady-state collective round recycles a fixed working set
// instead of hitting the allocator on every hop.
//
// Ownership contract (see DESIGN.md, "Buffer ownership & pooling"):
//
//   - A vector obtained from GetVector is exclusively owned by the caller
//     until it is handed off (e.g. to comm.Send, which takes ownership) or
//     released with PutVector.
//   - PutVector must be called at most once per lease, and never while any
//     other reference to the vector (or a sub-slice of it) is still live.
//     Forgetting to release is safe — the buffer is simply garbage collected —
//     but releasing early corrupts whoever still holds the buffer.
//   - GetVector returns a vector with arbitrary contents; use GetVectorZero
//     when the algorithm assumes null gradients.

const (
	// minPoolCap is the capacity of the smallest size class. Requests below it
	// are rounded up; buffers with smaller capacity are not retained.
	minPoolCap = 32
	// poolClasses is the number of power-of-two size classes:
	// 32 << 0 … 32 << (poolClasses-1) elements, i.e. up to 4 Mi float64s
	// (32 MiB), far above the largest gradient exchanged in this repository.
	poolClasses = 18
)

// maxPoolCap is the capacity of the largest size class. Larger vectors are
// allocated directly and never retained, bounding the memory the pool can pin.
const maxPoolCap = minPoolCap << (poolClasses - 1)

var (
	// vecPools holds one sync.Pool per size class. The pooled element is a
	// *[]float64 rather than the slice itself: storing a bare slice in a
	// sync.Pool would box the slice header on every Put, which alone would
	// break the alloc-free guarantee the message substrate is built on.
	vecPools [poolClasses]sync.Pool
	// boxPool recycles the *[]float64 boxes between GetVector (which frees a
	// box when it unwraps a vector) and PutVector (which needs one to wrap a
	// vector), closing the cycle so steady state allocates neither vectors nor
	// boxes.
	boxPool = sync.Pool{New: func() any { return new([]float64) }}

	poolGets     atomic.Uint64
	poolPuts     atomic.Uint64
	poolMisses   atomic.Uint64
	poolDiscards atomic.Uint64
)

// classForLen returns the smallest size class whose capacity holds n elements
// (n >= 1). Classes beyond poolClasses-1 mean "too large to pool".
func classForLen(n int) int {
	return bits.Len64(uint64(n-1) >> 5)
}

// classForCap returns the largest size class a buffer of capacity c (>=
// minPoolCap) can serve.
func classForCap(c int) int {
	return bits.Len64(uint64(c)>>5) - 1
}

// classCap returns the capacity of size class c.
func classCap(c int) int { return minPoolCap << c }

// GetVector leases a vector of length n from the pool. The contents are
// arbitrary (previous lease's data); the caller must overwrite every element
// it reads, or use GetVectorZero. Vectors larger than the largest size class
// are allocated directly.
func GetVector(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("tensor: GetVector length %d must be non-negative", n))
	}
	if n == 0 {
		return Vector{}
	}
	c := classForLen(n)
	if c >= poolClasses {
		// Counted as a Get too: the lease-balance accounting
		// (PoolStats.OutstandingSince) must see every lease, and the
		// oversized buffer's eventual PutVector lands in Discards.
		poolGets.Add(1)
		poolMisses.Add(1)
		v := make(Vector, n)
		leaseTrack(v)
		return v
	}
	poolGets.Add(1)
	if x := vecPools[c].Get(); x != nil {
		bp := x.(*[]float64)
		v := Vector((*bp)[:n])
		*bp = nil
		boxPool.Put(bp)
		leaseTrack(v)
		return v
	}
	poolMisses.Add(1)
	v := make(Vector, n, classCap(c))
	leaseTrack(v)
	return v
}

// GetVectorZero leases a zero-initialized vector of length n from the pool.
func GetVectorZero(n int) Vector {
	v := GetVector(n)
	v.Zero()
	return v
}

// GetVectorCopy leases a vector holding a copy of src — the snapshot
// primitive behind SendCopy, send-time buffer snapshots, and result copies.
func GetVectorCopy(src Vector) Vector {
	v := GetVector(len(src))
	v.CopyFrom(src)
	return v
}

// PutVector returns a leased vector to the pool. It accepts any vector
// (including nil and vectors that did not come from the pool); buffers too
// small or too large for the size classes are simply dropped for the garbage
// collector. The caller must not retain any reference to v — or to any slice
// aliasing v's backing array — after the call.
func PutVector(v Vector) {
	c := cap(v)
	if c == 0 {
		// Nil and empty vectors were never leases (GetVector(0) allocates
		// nothing); dropping them is not a discard, so the lease-balance
		// accounting stays exact.
		return
	}
	if b := aliasReleaser.Load(); b != nil && b.r.ReleaseAlias(v) {
		// An aliased span (see alias.go): reclaimed by its owner, never
		// pooled, and invisible to the lease accounting — no GetVector
		// issued it, so counting neither side keeps the balance exact.
		return
	}
	if c < minPoolCap {
		poolDiscards.Add(1)
		return
	}
	leaseUntrack(v)
	cls := classForCap(c)
	if cls >= poolClasses {
		poolDiscards.Add(1)
		return
	}
	poolPuts.Add(1)
	bp := boxPool.Get().(*[]float64)
	*bp = v[:c]
	vecPools[cls].Put(bp)
}

// PoolStats is a snapshot of the vector pool counters. Counters are
// monotonically increasing process-wide totals.
type PoolStats struct {
	// Gets counts every GetVector lease (pool hit, fresh class-sized
	// allocation, or oversized direct allocation).
	Gets uint64
	// Puts counts vectors accepted back into a size class.
	Puts uint64
	// Misses counts GetVector calls that had to allocate (empty class or
	// oversized request).
	Misses uint64
	// Discards counts PutVector calls whose buffer was dropped (capacity
	// outside the size classes).
	Discards uint64
}

// OutstandingSince estimates the number of pool leases taken between the two
// snapshots that have not been returned: Δ(Gets) - Δ(Puts) - Δ(Discards).
// It is exact when, over the interval, every vector released with PutVector
// came from GetVector — which holds for the message substrate's steady
// state. Chaos and shutdown tests assert it is zero across a quiesced
// create/run/close cycle: a positive value means a leaked lease, the bug
// class this counter exists to catch.
func (s PoolStats) OutstandingSince(prev PoolStats) int64 {
	return int64(s.Gets-prev.Gets) - int64(s.Puts-prev.Puts) - int64(s.Discards-prev.Discards)
}

// ReadPoolStats returns a snapshot of the pool counters. Intended for tests
// (alloc-regression and zero-copy assertions) and diagnostics.
func ReadPoolStats() PoolStats {
	return PoolStats{
		Gets:     poolGets.Load(),
		Puts:     poolPuts.Load(),
		Misses:   poolMisses.Load(),
		Discards: poolDiscards.Load(),
	}
}
