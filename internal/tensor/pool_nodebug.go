//go:build !leasedebug

package tensor

// LeaseDebugEnabled reports whether the build carries lease-site tracking;
// see pool_leasedebug.go (-tags leasedebug) for the instrumented pool.
const LeaseDebugEnabled = false

// leaseTrack is a no-op in production builds; the compiler erases the call.
func leaseTrack(Vector) {}

// leaseUntrack is a no-op in production builds.
func leaseUntrack(Vector) {}

// FormatLeaseReport returns "" in production builds: the diagnostic exists
// only under -tags leasedebug, and callers can unconditionally append it to
// lease-balance failure messages.
func FormatLeaseReport() string { return "" }
