package tensor

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// Naive scalar reference loops the kernels must match bit-for-bit. Every
// kernel is element-wise, so neither unrolling nor chunking may reassociate
// floating-point operations.

func naiveAdd(dst, src []float64) {
	for i, x := range src {
		dst[i] += x
	}
}

func naiveMax(dst, src []float64) {
	for i, x := range src {
		if x > dst[i] {
			dst[i] = x
		}
	}
}

func naiveMin(dst, src []float64) {
	for i, x := range src {
		if x < dst[i] {
			dst[i] = x
		}
	}
}

func naiveAxpy(dst []float64, alpha float64, src []float64) {
	for i, x := range src {
		dst[i] += alpha * x
	}
}

// kernelVariants enumerates the implementations under test for each op: the
// unrolled single-thread kernel, the public routing entry point, and the
// chunked parallel dispatcher driven directly (so the parallel path is
// exercised even when GOMAXPROCS is 1 and routing would never pick it).
var kernelCases = []struct {
	name     string
	naive    func(dst []float64, alpha float64, src []float64)
	unrolled func(dst []float64, alpha float64, src []float64)
	routed   func(dst []float64, alpha float64, src []float64)
	op       kernelOp
}{
	{
		name:     "add",
		naive:    func(d []float64, _ float64, s []float64) { naiveAdd(d, s) },
		unrolled: func(d []float64, _ float64, s []float64) { addKernel(d, s) },
		routed:   func(d []float64, _ float64, s []float64) { AddVec(d, s) },
		op:       kernelAdd,
	},
	{
		name:     "max",
		naive:    func(d []float64, _ float64, s []float64) { naiveMax(d, s) },
		unrolled: func(d []float64, _ float64, s []float64) { maxKernel(d, s) },
		routed:   func(d []float64, _ float64, s []float64) { MaxVec(d, s) },
		op:       kernelMax,
	},
	{
		name:     "min",
		naive:    func(d []float64, _ float64, s []float64) { naiveMin(d, s) },
		unrolled: func(d []float64, _ float64, s []float64) { minKernel(d, s) },
		routed:   func(d []float64, _ float64, s []float64) { MinVec(d, s) },
		op:       kernelMin,
	},
	{
		name:     "axpy",
		naive:    naiveAxpy,
		unrolled: axpyKernel,
		routed:   func(d []float64, a float64, s []float64) { AxpyVec(d, a, s) },
		op:       kernelAxpy,
	},
}

// fillSpecial draws values that stress the comparison kernels: ordinary
// finites plus signed zeros, infinities, and NaNs.
func fillSpecial(rng *rand.Rand, v []float64) {
	for i := range v {
		switch rng.Intn(12) {
		case 0:
			v[i] = math.NaN()
		case 1:
			v[i] = math.Inf(1)
		case 2:
			v[i] = math.Inf(-1)
		case 3:
			v[i] = math.Copysign(0, -1)
		default:
			v[i] = (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(7)-3))
		}
	}
}

func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// TestKernelsMatchNaiveBitForBit is the property test of the kernel layer:
// for every op, every implementation (unrolled, routed, and the parallel
// dispatcher at several chunk counts) must reproduce the naive scalar loop
// bit-for-bit — across odd lengths that exercise the unroll tails and lengths
// past the parallel threshold.
func TestKernelsMatchNaiveBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lengths := []int{0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 63, 100, 1023, 4096, ParallelThreshold + 37}
	for _, kc := range kernelCases {
		for _, n := range lengths {
			dst := make([]float64, n)
			src := make([]float64, n)
			fillSpecial(rng, dst)
			fillSpecial(rng, src)
			alpha := rng.NormFloat64()

			want := append([]float64(nil), dst...)
			kc.naive(want, alpha, src)

			check := func(impl string, fn func(d []float64, a float64, s []float64)) {
				got := append([]float64(nil), dst...)
				fn(got, alpha, src)
				if i, ok := bitsEqual(want, got); !ok {
					t.Fatalf("%s/%s n=%d: element %d differs: got %x want %x",
						kc.name, impl, n, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
			check("unrolled", kc.unrolled)
			check("routed", kc.routed)
			if n >= 2*minParallelChunk {
				startKernelPool()
				if kernelCh != nil {
					for _, parts := range []int{2, 3} {
						p := parts
						check("parallel", func(d []float64, a float64, s []float64) {
							parallelApply(kc.op, d, s, nil, a, p)
						})
					}
				}
			}
		}
	}
}

// TestParallelChunkingDirect drives the chunked dispatcher through worker
// handoff even on a single-processor runtime, by starting a private task
// relay identical to the pool's. It guards the chunk-boundary arithmetic.
func TestParallelChunkingDirect(t *testing.T) {
	n := 3*minParallelChunk + 11
	rng := rand.New(rand.NewSource(7))
	dst := make([]float64, n)
	src := make([]float64, n)
	fillSpecial(rng, dst)
	fillSpecial(rng, src)
	want := append([]float64(nil), dst...)
	naiveAdd(want, src)

	got := append([]float64(nil), dst...)
	parts := 3
	done := make(chan struct{}, parts)
	for i := 0; i < parts; i++ {
		lo, hi := ChunkBounds(n, parts, i)
		go func(lo, hi int) {
			addKernel(got[lo:hi], src[lo:hi])
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < parts; i++ {
		<-done
	}
	if i, ok := bitsEqual(want, got); !ok {
		t.Fatalf("chunked add differs from naive at %d", i)
	}
}

// FuzzKernels cross-checks every kernel against its naive loop on
// fuzzer-generated byte strings reinterpreted as float64 pairs.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1.5)
	f.Add(make([]byte, 8*31), -0.25)
	f.Fuzz(func(t *testing.T, raw []byte, alpha float64) {
		n := len(raw) / 16
		if n == 0 {
			return
		}
		dst := make([]float64, n)
		src := make([]float64, n)
		for i := 0; i < n; i++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i:]))
			src[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i+8:]))
		}
		for _, kc := range kernelCases {
			want := append([]float64(nil), dst...)
			kc.naive(want, alpha, src)
			got := append([]float64(nil), dst...)
			kc.unrolled(got, alpha, src)
			if i, ok := bitsEqual(want, got); !ok {
				t.Fatalf("%s: element %d differs: got %x want %x",
					kc.name, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	})
}
