//go:build leasedebug

package tensor

import (
	"strings"
	"testing"
)

// TestLeaseDebugTracksSites exercises the -tags leasedebug pool: an
// outstanding lease is reported against its minting call site, and releasing
// it clears the report.
func TestLeaseDebugTracksSites(t *testing.T) {
	if !LeaseDebugEnabled {
		t.Fatal("leasedebug build tag set but LeaseDebugEnabled is false")
	}
	before := len(OutstandingLeases())

	v := GetVector(128)
	w := GetVectorZero(64)

	sites := OutstandingLeases()
	total, mine, mineElems := 0, 0, 0
	for i := range sites {
		total += sites[i].Count
		if strings.Contains(sites[i].Site, "lease_debug_test.go") {
			mine += sites[i].Count
			mineElems += sites[i].Elems
		}
	}
	if total < before+2 {
		t.Fatalf("expected at least %d outstanding leases, got %d", before+2, total)
	}
	if mine < 2 || mineElems < 128+64 {
		t.Fatalf("expected >=2 leases / >=192 elems minted by this file, got %d / %d (sites: %v)", mine, mineElems, sites)
	}
	if rep := FormatLeaseReport(); !strings.Contains(rep, "lease_debug_test.go") {
		t.Fatalf("FormatLeaseReport does not name the minting site:\n%s", rep)
	}

	PutVector(v)
	PutVector(w)
	for _, s := range OutstandingLeases() {
		if strings.Contains(s.Site, "lease_debug_test.go") {
			t.Fatalf("leases from this test still outstanding after PutVector: %+v", s)
		}
	}
}

// TestLeaseDebugUntrackOnDiscard verifies that oversized buffers passing
// through PutVector do not linger in the lease map. 2*maxPoolCap exceeds
// every size class, so the Put is a true discard and the pool's size-class
// contents are untouched.
func TestLeaseDebugUntrackOnDiscard(t *testing.T) {
	huge := GetVector(2 * maxPoolCap)
	PutVector(huge)
	for _, s := range OutstandingLeases() {
		if strings.Contains(s.Site, "lease_debug_test.go") {
			t.Fatalf("discarded oversized lease still tracked: %+v", s)
		}
	}
}
