package tensor

import "sync/atomic"

// AliasReleaser is implemented by subsystems that hand out vectors aliasing
// memory they own rather than pool leases — the shared-ring transport delivers
// large frames as views straight into ring memory instead of decode copies.
// PutVector consults the installed releaser first: a vector the releaser
// recognizes is reclaimed by it (the ring span is freed for the producer) and
// never enters the pool, which would otherwise recycle transport-owned memory
// as an ordinary lease.
//
// Aliased vectors tighten the release contract: where forgetting to release a
// pool lease merely costs a garbage collection, an unreleased alias pins the
// memory it views (a ring span stays unavailable to its producer). The
// transport only aliases traffic whose receivers release promptly, and the
// eagervet leasecheck analyzer enforces the release on every receive path.
type AliasReleaser interface {
	// ReleaseAlias reports whether v aliases memory owned by the releaser,
	// reclaiming the alias if so. Vectors it does not own are left untouched.
	// v may be a sub-slice of the vector originally handed out; releasers
	// match by backing-array address.
	ReleaseAlias(v Vector) bool
}

// aliasReleaser holds the installed releaser. A single atomic load is the only
// cost PutVector pays while no aliasing transport is active (the common case:
// in-process and TCP worlds never install one).
var aliasReleaser atomic.Pointer[aliasReleaserBox]

// aliasReleaserBox wraps the interface value so it fits an atomic.Pointer.
type aliasReleaserBox struct{ r AliasReleaser }

// SetAliasReleaser installs the process-wide alias releaser consulted by
// PutVector. Transports install one shared registry once (the first ring that
// hands out an alias); nil uninstalls, which is only safe when no aliased
// vectors are outstanding.
func SetAliasReleaser(r AliasReleaser) {
	if r == nil {
		aliasReleaser.Store(nil)
		return
	}
	aliasReleaser.Store(&aliasReleaserBox{r: r})
}
