package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVectorZeroed(t *testing.T) {
	v := NewVector(16)
	if v.Len() != 16 {
		t.Fatalf("Len = %d, want 16", v.Len())
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("element %d = %v, want 0", i, x)
		}
	}
}

func TestNewVectorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for negative length")
		}
	}()
	NewVector(-1)
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone shares storage with original")
	}
}

func TestZeroAndFill(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Fill(7)
	for _, x := range v {
		if x != 7 {
			t.Fatalf("Fill failed: %v", v)
		}
	}
	v.Zero()
	for _, x := range v {
		if x != 0 {
			t.Fatalf("Zero failed: %v", v)
		}
	}
}

func TestCopyFrom(t *testing.T) {
	v := NewVector(3)
	v.CopyFrom(Vector{4, 5, 6})
	if !v.Equal(Vector{4, 5, 6}) {
		t.Fatalf("CopyFrom failed: %v", v)
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewVector(2).CopyFrom(Vector{1, 2, 3})
}

func TestAddSubScale(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Add(Vector{10, 20, 30})
	if !v.Equal(Vector{11, 22, 33}) {
		t.Fatalf("Add failed: %v", v)
	}
	v.Sub(Vector{1, 2, 3})
	if !v.Equal(Vector{10, 20, 30}) {
		t.Fatalf("Sub failed: %v", v)
	}
	v.Scale(0.5)
	if !v.Equal(Vector{5, 10, 15}) {
		t.Fatalf("Scale failed: %v", v)
	}
}

func TestAxpy(t *testing.T) {
	v := Vector{1, 1, 1}
	v.Axpy(2, Vector{1, 2, 3})
	if !v.Equal(Vector{3, 5, 7}) {
		t.Fatalf("Axpy failed: %v", v)
	}
}

func TestDotAndNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(Vector{1, 1}); got != 7 {
		t.Fatalf("Dot = %v, want 7", got)
	}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestSumMaxArgMax(t *testing.T) {
	v := Vector{1, 5, 3, 5}
	if got := v.Sum(); got != 14 {
		t.Fatalf("Sum = %v", got)
	}
	best, idx := v.Max()
	if best != 5 || idx != 1 {
		t.Fatalf("Max = %v,%d want 5,1 (first occurrence)", best, idx)
	}
	if v.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d", v.ArgMax())
	}
}

func TestMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Vector{}.Max()
}

func TestEqualAndAllClose(t *testing.T) {
	a := Vector{1, 2, 3}
	if !a.Equal(Vector{1, 2, 3}) {
		t.Fatalf("Equal false negative")
	}
	if a.Equal(Vector{1, 2}) {
		t.Fatalf("Equal ignores length")
	}
	if !a.AllClose(Vector{1.0001, 2, 3}, 1e-3) {
		t.Fatalf("AllClose false negative")
	}
	if a.AllClose(Vector{1.1, 2, 3}, 1e-3) {
		t.Fatalf("AllClose false positive")
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vector{1, 2, 3}).IsFinite() {
		t.Fatalf("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Fatalf("NaN not detected")
	}
	if (Vector{math.Inf(1)}).IsFinite() {
		t.Fatalf("Inf not detected")
	}
}

func TestRandomizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewVector(1000)
	v.Randomize(rng, 0.5)
	for _, x := range v {
		if x < -0.5 || x >= 0.5 {
			t.Fatalf("Randomize out of bounds: %v", x)
		}
	}
}

func TestChunkCoversAndBalances(t *testing.T) {
	v := NewVector(10)
	for i := range v {
		v[i] = float64(i)
	}
	chunks := v.Chunk(3)
	if len(chunks) != 3 {
		t.Fatalf("chunk count %d", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
		if len(c) < 3 || len(c) > 4 {
			t.Fatalf("unbalanced chunk size %d", len(c))
		}
	}
	if total != 10 {
		t.Fatalf("chunks cover %d elements, want 10", total)
	}
	// Chunks must alias v.
	chunks[0][0] = 42
	if v[0] != 42 {
		t.Fatalf("Chunk does not alias the vector")
	}
}

func TestChunkMoreChunksThanElements(t *testing.T) {
	v := NewVector(2)
	chunks := v.Chunk(5)
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != 2 {
		t.Fatalf("chunks cover %d, want 2", total)
	}
}

func TestChunkBoundsMatchesChunk(t *testing.T) {
	for _, n := range []int{0, 1, 5, 17, 100} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			v := NewVector(n)
			chunks := v.Chunk(p)
			off := 0
			for i := 0; i < p; i++ {
				s, e := ChunkBounds(n, p, i)
				if s != off || e-s != len(chunks[i]) {
					t.Fatalf("ChunkBounds(%d,%d,%d)=(%d,%d) disagrees with Chunk (off=%d len=%d)", n, p, i, s, e, off, len(chunks[i]))
				}
				off = e
			}
			if off != n {
				t.Fatalf("bounds do not cover the vector: %d != %d", off, n)
			}
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("Set/At failed")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 7 {
		t.Fatalf("Row view incorrect")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatalf("Clone shares storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatalf("Zero failed")
	}
}

func TestMatrixFromData(t *testing.T) {
	m, err := MatrixFromData(2, 2, Vector{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("row-major layout broken")
	}
	if _, err := MatrixFromData(2, 3, Vector{1}); err == nil {
		t.Fatalf("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := MatrixFromData(2, 3, Vector{1, 2, 3, 4, 5, 6})
	out := NewVector(2)
	m.MulVec(Vector{1, 1, 1}, out)
	if !out.Equal(Vector{6, 15}) {
		t.Fatalf("MulVec = %v", out)
	}
}

func TestMulVecT(t *testing.T) {
	m, _ := MatrixFromData(2, 3, Vector{1, 2, 3, 4, 5, 6})
	out := NewVector(3)
	m.MulVecT(Vector{1, 1}, out)
	if !out.Equal(Vector{5, 7, 9}) {
		t.Fatalf("MulVecT = %v", out)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, Vector{1, 2}, Vector{3, 4})
	want := Vector{6, 8, 12, 16}
	if !m.Data.Equal(want) {
		t.Fatalf("AddOuter = %v, want %v", m.Data, want)
	}
}

func TestXavierInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(100, 100)
	m.XavierInit(rng)
	limit := math.Sqrt(6.0 / 200.0)
	for _, x := range m.Data {
		if x < -limit || x >= limit {
			t.Fatalf("Xavier value %v out of [-%v, %v)", x, limit, limit)
		}
	}
}

// --- property-based tests ---

func boundedVec(xs []float64) Vector {
	v := make(Vector, len(xs))
	for i, x := range xs {
		// Keep values in a sane range so float error bounds stay meaningful.
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		v[i] = math.Mod(x, 1e6)
	}
	return v
}

func TestPropAddCommutative(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		a := boundedVec(xs[:n])
		b := boundedVec(ys[:n])
		ab := a.Clone()
		ab.Add(b)
		ba := b.Clone()
		ba.Add(a)
		return ab.AllClose(ba, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropAddSubRoundTrip(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		a := boundedVec(xs[:n])
		b := boundedVec(ys[:n])
		c := a.Clone()
		c.Add(b)
		c.Sub(b)
		return c.AllClose(a, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropScaleLinearity(t *testing.T) {
	f := func(xs []float64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			alpha = 1
		}
		alpha = math.Mod(alpha, 100)
		a := boundedVec(xs)
		sum := a.Sum()
		a.Scale(alpha)
		return math.Abs(a.Sum()-alpha*sum) <= 1e-6*(1+math.Abs(alpha*sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropDotCauchySchwarz(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		a := boundedVec(xs[:n])
		b := boundedVec(ys[:n])
		lhs := math.Abs(a.Dot(b))
		rhs := a.Norm2() * b.Norm2()
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropChunkPreservesSum(t *testing.T) {
	f := func(xs []float64, pRaw uint8) bool {
		p := int(pRaw%16) + 1
		a := boundedVec(xs)
		var total float64
		for _, c := range a.Chunk(p) {
			total += c.Sum()
		}
		return math.Abs(total-a.Sum()) <= 1e-6*(1+math.Abs(a.Sum()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropChunkBoundsPartition(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw % 2048)
		p := int(pRaw%32) + 1
		prevEnd := 0
		for i := 0; i < p; i++ {
			s, e := ChunkBounds(n, p, i)
			if s != prevEnd || e < s {
				return false
			}
			prevEnd = e
		}
		return prevEnd == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
