// Package faults is the deterministic fault-injection substrate of the
// degraded-cluster test axis: a transport-endpoint wrapper that injects
// seed-driven faults per link — message delay distributions, drops,
// reordering, one-way partitions — and scripted rank crashes, all described
// by a small Scenario spec.
//
// The injector sits between a comm.Endpoint (in-process hub or TCP) and the
// communicator, so every layer above — comm matching, the schedule executor,
// the sync collectives, the partial engine — experiences the faults through
// its ordinary interfaces. Determinism comes from per-link SplitMix64-seeded
// PRNG streams: given the same Scenario (seed included) and the same per-link
// message order, the same messages are dropped, delayed, and reordered.
// Delays use real timers, but chaos tests assert liveness and participant-set
// invariants, never wall-clock thresholds, so timing jitter cannot flip a
// verdict.
//
// Crash semantics: a crashed rank's endpoint refuses sends with ErrCrashed
// and closes its inbox (its communicator observes a closed transport, so the
// rank's own blocked operations fail fast), while messages addressed to it
// are silently dropped by the sender's wrapper — the network black-holes
// traffic to a dead process. Peers learn of the crash either through the
// comm layer's per-peer deadlines (the detection path real clusters need) or,
// when Scenario.SignalCrashes is set, through an immediate peer-failure
// notification modelling a TCP connection reset.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Link identifies one directed sender→receiver pair.
type Link struct {
	From, To int
}

// LinkRule describes the faults injected on one directed link. The zero
// value injects nothing.
type LinkRule struct {
	// Drop is the probability in [0, 1] that a message is silently dropped.
	Drop float64
	// Cut drops every message on the link — a one-way partition. (Cut in both
	// directions partitions the pair completely.)
	Cut bool
	// DelayProb is the probability in [0, 1] that a message is delayed by a
	// uniform sample from [DelayMin, DelayMax]. Delayed and undelayed
	// messages still deliver in FIFO order per link (a slow link, not a
	// reordering one).
	DelayProb          float64
	DelayMin, DelayMax time.Duration
	// Reorder is the probability in [0, 1] that a message is delivered out of
	// band after a short delay, letting later messages on the link overtake
	// it (per-(source, tag) FIFO is deliberately broken for it).
	Reorder float64
}

// active reports whether the rule injects anything.
func (r LinkRule) active() bool {
	return r.Cut || r.Drop > 0 || r.DelayProb > 0 || r.Reorder > 0
}

// hasDelay reports whether the rule can delay messages in FIFO order, which
// forces all the link's ordinary traffic through a serializing worker.
func (r LinkRule) hasDelay() bool { return r.DelayProb > 0 }

// String summarizes the rule.
func (r LinkRule) String() string {
	if !r.active() {
		return "clean"
	}
	var parts []string
	if r.Cut {
		parts = append(parts, "cut")
	}
	if r.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.2f", r.Drop))
	}
	if r.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%.2f[%v,%v]", r.DelayProb, r.DelayMin, r.DelayMax))
	}
	if r.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%.2f", r.Reorder))
	}
	return strings.Join(parts, ",")
}

// Scenario is the scriptable fault spec one injector executes. The zero value
// injects nothing.
type Scenario struct {
	// Name labels the scenario in test output and CI summaries.
	Name string
	// Seed drives every per-link PRNG stream. Two injectors built from equal
	// scenarios make identical per-link decisions.
	Seed int64
	// Default applies to every directed link without an explicit entry in
	// Links.
	Default LinkRule
	// Links overrides Default per directed (From, To) pair.
	Links map[Link]LinkRule
	// CrashAtStep schedules rank crashes: rank r crashes when its own step
	// counter (Injector.AdvanceStep(r)) reaches the given value. Crashes are
	// deterministic in the rank's step sequence, not in wall-clock time.
	CrashAtStep map[int]int
	// SignalCrashes delivers an immediate peer-failure notification to every
	// surviving rank when a rank crashes, modelling a TCP connection reset.
	// When false, survivors only learn of the crash through per-peer
	// deadlines — the harsher detection model.
	SignalCrashes bool
}

// clone returns a deep copy of the scenario: the Links and CrashAtStep maps
// are duplicated so an injector's view cannot race the caller mutating its
// own Scenario (SetLink/CutOneWay are a documented chaining API).
func (s Scenario) clone() Scenario {
	out := s
	if s.Links != nil {
		out.Links = make(map[Link]LinkRule, len(s.Links))
		for k, v := range s.Links {
			out.Links[k] = v
		}
	}
	if s.CrashAtStep != nil {
		out.CrashAtStep = make(map[int]int, len(s.CrashAtStep))
		for k, v := range s.CrashAtStep {
			out.CrashAtStep[k] = v
		}
	}
	return out
}

// rule returns the effective rule for a directed link.
func (s *Scenario) rule(from, to int) LinkRule {
	if r, ok := s.Links[Link{From: from, To: to}]; ok {
		return r
	}
	return s.Default
}

// SetLink sets the rule for the directed from→to link, allocating the map as
// needed, and returns the scenario for chaining.
func (s *Scenario) SetLink(from, to int, r LinkRule) *Scenario {
	if s.Links == nil {
		s.Links = make(map[Link]LinkRule)
	}
	s.Links[Link{From: from, To: to}] = r
	return s
}

// CutOneWay drops every message from→to (a one-way partition).
func (s *Scenario) CutOneWay(from, to int) *Scenario {
	r := s.rule(from, to)
	r.Cut = true
	return s.SetLink(from, to, r)
}

// String renders a short human-readable description of the scenario, for
// logs and CI job summaries.
func (s Scenario) String() string {
	var b strings.Builder
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Fprintf(&b, "%s(seed=%d", name, s.Seed)
	if s.Default.active() {
		fmt.Fprintf(&b, " default=%s", s.Default)
	}
	if len(s.Links) > 0 {
		links := make([]Link, 0, len(s.Links))
		for l := range s.Links {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].From != links[j].From {
				return links[i].From < links[j].From
			}
			return links[i].To < links[j].To
		})
		for _, l := range links {
			fmt.Fprintf(&b, " %d->%d=%s", l.From, l.To, s.Links[l])
		}
	}
	if len(s.CrashAtStep) > 0 {
		ranks := make([]int, 0, len(s.CrashAtStep))
		for r := range s.CrashAtStep {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			fmt.Fprintf(&b, " crash[%d]@step%d", r, s.CrashAtStep[r])
		}
		if s.SignalCrashes {
			b.WriteString(" signaled")
		}
	}
	b.WriteString(")")
	return b.String()
}
