// Chaos scenario for the broadcast-segment fast path: a rank dies while the
// world is mid-allgather over the SPMC broadcast segments. Unlike the
// scripted scenarios in chaos_test.go, this one runs over a bare shared-ring
// world — no fault injector wrapping — because the injector hides the
// endpoint's optional capabilities and would silently route every rank onto
// the classic ring-relay path, leaving the segment code untested.
package faults_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"eagersgd/internal/collectives"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// TestChaosBcastSegmentRankCrash: four shared-ring ranks loop large fused
// ring allreduces — 16Ki-element chunks, so the allgather phase publishes
// through the broadcast segments and survivors alias the published blocks
// zero-copy — and one rank closes its communicator between steps. The
// liveness and hygiene contract of the classic paths must hold on the fast
// path too: every survivor surfaces a typed ErrRankUnreachable instead of
// hanging (the dead producer's segment reads ring-dead, the dead consumer
// drops out of the reclamation quorum so publishers never park forever), and
// no pool lease leaks — aliased broadcast blocks pinned by undelivered
// messages are released when the closing communicator drains its queues.
func TestChaosBcastSegmentRankCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios take seconds")
	}
	const (
		size      = 4
		n         = 1 << 16 // 16Ki-element chunks: fused ring + broadcast alias path
		steps     = 8
		crashRank = 2
		crashStep = 3
	)
	leaseBalanced(t, func() {
		world := transport.NewShmWorld(size)
		defer func() {
			for _, c := range world {
				c.Close()
			}
		}()
		cfg := collectives.Config{PeerDeadline: 200 * time.Millisecond}
		errs := make([]error, size)
		stepsDone := make([]int, size)
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				data := make(tensor.Vector, n)
				for s := 0; s < steps; s++ {
					if r == crashRank && s == crashStep {
						world[r].Close() // crash: tears down rings and broadcast segment mid-world
						return
					}
					for i := range data {
						data[i] = float64(r + 1)
					}
					if err := collectives.AllreduceWith(world[r], data, collectives.OpSum,
						collectives.AlgoRing, cfg, nil); err != nil {
						errs[r] = err
						return
					}
					stepsDone[r]++
				}
			}(r)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(chaosWatchdog):
			t.Fatal("broadcast-segment crash scenario hung: a survivor neither completed nor failed (liveness violated)")
		}
		for r := 0; r < size; r++ {
			if r == crashRank {
				if errs[r] != nil {
					t.Errorf("crashing rank %d returned %v before its scripted close", r, errs[r])
				}
				continue
			}
			// Survivors completed every pre-crash step, then the collective
			// after the crash must abort typed: the failure detector turns
			// the dead rank's silence into ErrRankUnreachable.
			if stepsDone[r] < crashStep {
				t.Errorf("survivor %d completed %d steps before failing, want at least %d (pre-crash rounds must succeed)",
					r, stepsDone[r], crashStep)
			}
			if errs[r] == nil {
				t.Errorf("survivor %d completed all %d steps; the crash at step %d should have aborted it", r, steps, crashStep)
			} else if !errors.Is(errs[r], collectives.ErrRankUnreachable) {
				t.Errorf("survivor %d err = %v, want ErrRankUnreachable in the chain", r, errs[r])
			}
		}
	})
}
