package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// ErrCrashed is returned by a crashed rank's endpoint for every send, and is
// the cause surviving ranks see when Scenario.SignalCrashes announces the
// crash. It matches comm.ErrPeerDown through the communicator's marking, not
// directly.
var ErrCrashed = errors.New("faults: rank crashed")

// fate is one per-message injection decision.
type fate int

const (
	fateDeliver fate = iota
	fateDrop
	fateDelay   // FIFO delay through the link worker
	fateReorder // out-of-band delivery; later messages may overtake
)

// linkState serializes one directed link's PRNG draws and, when the link can
// delay, its FIFO delivery worker. The queue is a mutex+cond list (not a
// channel) so Close never races a concurrent enqueue.
type linkState struct {
	rng *rand.Rand

	mu      sync.Mutex
	cond    *sync.Cond
	q       []delayedMsg
	started bool
	closed  bool
}

type delayedMsg struct {
	ep    comm.Endpoint // the sender's inner endpoint: deliveries go out through it
	dest  int
	m     comm.Message
	delay time.Duration
}

// Injector executes one Scenario over the endpoints of one world. Wrap every
// rank's endpoint with Wrap before building communicators; the injector is
// safe for concurrent use by all ranks.
type Injector struct {
	sc   Scenario
	size int

	mu        sync.Mutex
	links     map[Link]*linkState
	overrides map[Link]LinkRule // dynamic rule changes (mid-step partitions)
	crashed   []bool
	crashChs  []chan struct{}    // per-rank, closed on that rank's crash
	steps     []int              // per-rank application step counters
	handlers  []func(int, error) // per-rank peer-failure handlers (SignalCrashes)
	closed    bool

	wg sync.WaitGroup // link workers and out-of-band deliveries
}

// NewInjector builds an injector for a world of the given size. The scenario
// is deep-copied: later mutations of the caller's Scenario never affect a
// running injector.
func NewInjector(size int, sc Scenario) *Injector {
	in := &Injector{
		sc:       sc.clone(),
		size:     size,
		links:    make(map[Link]*linkState),
		crashed:  make([]bool, size),
		crashChs: make([]chan struct{}, size),
		steps:    make([]int, size),
		handlers: make([]func(int, error), size),
	}
	for r := 0; r < size; r++ {
		in.crashChs[r] = make(chan struct{})
	}
	return in
}

// Scenario returns the scenario the injector executes.
func (in *Injector) Scenario() Scenario { return in.sc }

// Size returns the world size the injector was built for.
func (in *Injector) Size() int { return in.size }

// linkSeed derives a per-link PRNG seed so each link's fault stream depends
// only on the scenario seed and the link, never on cross-link interleaving.
func (in *Injector) linkSeed(from, to int) int64 {
	x := uint64(in.sc.Seed) ^ (uint64(from)+1)*0x9e3779b97f4a7c15 ^ (uint64(to)+1)*0xbf58476d1ce4e5b9
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// link returns (creating on first use) the state of a directed link.
func (in *Injector) link(from, to int) *linkState {
	in.mu.Lock()
	defer in.mu.Unlock()
	key := Link{From: from, To: to}
	ls := in.links[key]
	if ls == nil {
		ls = &linkState{rng: rand.New(rand.NewSource(in.linkSeed(from, to)))}
		ls.cond = sync.NewCond(&ls.mu)
		in.links[key] = ls
	}
	return ls
}

// ruleFor returns the effective rule for a link, dynamic overrides included.
func (in *Injector) ruleFor(from, to int) LinkRule {
	in.mu.Lock()
	defer in.mu.Unlock()
	if r, ok := in.overrides[Link{From: from, To: to}]; ok {
		return r
	}
	return in.sc.rule(from, to)
}

// SetLink replaces the rule of the directed from→to link at runtime — the
// hook chaos tests use to inject a partition mid-step.
func (in *Injector) SetLink(from, to int, r LinkRule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.overrides == nil {
		in.overrides = make(map[Link]LinkRule)
	}
	in.overrides[Link{From: from, To: to}] = r
}

// IsolateRank cuts every link to and from the rank at runtime: a full
// partition of one rank without crashing it.
func (in *Injector) IsolateRank(rank int) {
	for r := 0; r < in.size; r++ {
		if r == rank {
			continue
		}
		in.SetLink(rank, r, LinkRule{Cut: true})
		in.SetLink(r, rank, LinkRule{Cut: true})
	}
}

// AdvanceStep increments the rank's application step counter and executes any
// crash the scenario scripts at the new step. It returns the new counter.
// Training loops call it once per optimizer step, making crash-at-step
// deterministic in the rank's own step sequence.
func (in *Injector) AdvanceStep(rank int) int {
	in.mu.Lock()
	in.steps[rank]++
	step := in.steps[rank]
	at, scripted := in.sc.CrashAtStep[rank]
	in.mu.Unlock()
	if scripted && step >= at {
		in.Crash(rank)
	}
	return step
}

// Crash kills the rank now: its endpoint refuses further sends, its inbox
// closes, and traffic addressed to it is black-holed. Idempotent. When the
// scenario signals crashes, every surviving rank's peer-failure handler is
// invoked with ErrCrashed.
func (in *Injector) Crash(rank int) {
	if rank < 0 || rank >= in.size {
		return
	}
	in.mu.Lock()
	if in.crashed[rank] {
		in.mu.Unlock()
		return
	}
	in.crashed[rank] = true
	ch := in.crashChs[rank]
	var notify []func(int, error)
	if in.sc.SignalCrashes {
		for r, fn := range in.handlers {
			if r != rank && !in.crashed[r] && fn != nil {
				notify = append(notify, fn)
			}
		}
	}
	in.mu.Unlock()
	close(ch)
	cause := fmt.Errorf("%w: rank %d", ErrCrashed, rank)
	for _, fn := range notify {
		fn(rank, cause)
	}
}

// AnyCrashed reports whether any rank has crashed.
func (in *Injector) AnyCrashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, c := range in.crashed {
		if c {
			return true
		}
	}
	return false
}

// Crashed reports whether the rank has crashed.
func (in *Injector) Crashed(rank int) bool {
	if rank < 0 || rank >= in.size {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed[rank]
}

// Close stops the injector's delivery workers, releasing any payloads still
// held in delay queues back to the vector pool, and waits for out-of-band
// deliveries to finish. Call it after the world's communicators are closed:
// a late delivery into a closed transport is simply refused (and its payload
// released) by the transport itself.
func (in *Injector) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		in.wg.Wait()
		return
	}
	in.closed = true
	links := make([]*linkState, 0, len(in.links))
	for _, ls := range in.links {
		links = append(links, ls)
	}
	in.mu.Unlock()
	for _, ls := range links {
		ls.mu.Lock()
		ls.closed = true
		ls.cond.Broadcast()
		ls.mu.Unlock()
	}
	in.wg.Wait()
}

// decide draws the fate of one message on a link, plus its delay if any.
func (in *Injector) decide(from, to int) (fate, time.Duration) {
	rule := in.ruleFor(from, to)
	if !rule.active() {
		return fateDeliver, 0
	}
	if rule.Cut {
		return fateDrop, 0
	}
	ls := in.link(from, to)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if rule.Drop > 0 && ls.rng.Float64() < rule.Drop {
		return fateDrop, 0
	}
	if rule.Reorder > 0 && ls.rng.Float64() < rule.Reorder {
		d := rule.DelayMax
		if d <= 0 {
			d = 2 * time.Millisecond
		}
		return fateReorder, time.Duration(ls.rng.Int63n(int64(d) + 1))
	}
	if rule.DelayProb > 0 && ls.rng.Float64() < rule.DelayProb {
		span := rule.DelayMax - rule.DelayMin
		d := rule.DelayMin
		if span > 0 {
			d += time.Duration(ls.rng.Int63n(int64(span) + 1))
		}
		return fateDelay, d
	}
	if rule.hasDelay() {
		// The link can delay, so ordinary traffic must queue behind any
		// delayed message to preserve per-link FIFO order.
		return fateDelay, 0
	}
	return fateDeliver, 0
}

// Wrap interposes the injector between a rank's endpoint and its
// communicator. The endpoint's rank selects the scenario rules that apply to
// its outgoing links.
func (in *Injector) Wrap(ep comm.Endpoint) comm.Endpoint {
	if ep.Size() != in.size {
		panic(fmt.Sprintf("faults: endpoint size %d, injector built for %d", ep.Size(), in.size))
	}
	e := &endpoint{inner: ep, inj: in, rank: ep.Rank(), out: make(chan comm.Message)}
	go e.forward()
	return e
}

// enqueueFIFO appends the message to the link's FIFO delay worker, starting
// the worker on first use.
func (in *Injector) enqueueFIFO(from int, it delayedMsg) {
	ls := in.link(from, it.dest)
	ls.mu.Lock()
	if ls.closed {
		ls.mu.Unlock()
		tensor.PutVector(it.m.Data)
		return
	}
	ls.q = append(ls.q, it)
	if !ls.started {
		ls.started = true
		in.wg.Add(1)
		go in.runLink(ls)
	}
	ls.cond.Broadcast()
	ls.mu.Unlock()
}

// runLink is one link's FIFO delivery worker: it sleeps each message's delay
// in arrival order, then forwards it. On close, queued payloads are released.
func (in *Injector) runLink(ls *linkState) {
	defer in.wg.Done()
	for {
		ls.mu.Lock()
		for len(ls.q) == 0 && !ls.closed {
			ls.cond.Wait()
		}
		if len(ls.q) == 0 { // closed and drained
			ls.mu.Unlock()
			return
		}
		it := ls.q[0]
		ls.q = ls.q[1:]
		closed := ls.closed
		ls.mu.Unlock()
		if closed {
			tensor.PutVector(it.m.Data)
			continue
		}
		if it.delay > 0 {
			time.Sleep(it.delay)
		}
		in.deliver(it)
	}
}

// goDeliver spawns a tracked out-of-band delivery of it after delay. It
// reports false — without consuming the payload — when the injector is
// already closed: wg.Add must never race Close's wg.Wait.
func (in *Injector) goDeliver(it delayedMsg, delay time.Duration) bool {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return false
	}
	in.wg.Add(1)
	in.mu.Unlock()
	go func() {
		defer in.wg.Done()
		time.Sleep(delay)
		in.deliver(it)
	}()
	return true
}

// deliver forwards a message through the sender's inner endpoint unless the
// destination has crashed meanwhile. Transport errors are swallowed — the
// network lost the message; the transport releases the payload on its own
// error paths.
func (in *Injector) deliver(it delayedMsg) {
	if in.Crashed(it.dest) {
		tensor.PutVector(it.m.Data)
		return
	}
	_ = it.ep.Send(it.dest, it.m)
}

// registerHandler records a rank's peer-failure handler for SignalCrashes
// delivery, replaying crashes that already happened.
func (in *Injector) registerHandler(rank int, fn func(int, error)) {
	in.mu.Lock()
	in.handlers[rank] = fn
	var replay []int
	if in.sc.SignalCrashes {
		for r, crashed := range in.crashed {
			if crashed && r != rank {
				replay = append(replay, r)
			}
		}
	}
	in.mu.Unlock()
	for _, r := range replay {
		fn(r, fmt.Errorf("%w: rank %d", ErrCrashed, r))
	}
}
