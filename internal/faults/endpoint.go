package faults

import (
	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// endpoint is the fault-injecting comm.Endpoint wrapper returned by
// Injector.Wrap. Outgoing messages pass through the injector's per-link fate
// decisions; the inbox is forwarded through a goroutine so a crash can sever
// it (the communicator then observes a closed transport).
type endpoint struct {
	inner comm.Endpoint
	inj   *Injector
	rank  int
	out   chan comm.Message
}

// Rank returns the wrapped endpoint's rank.
func (e *endpoint) Rank() int { return e.rank }

// Size returns the wrapped endpoint's world size.
func (e *endpoint) Size() int { return e.inner.Size() }

// Inbox returns the fault-filtered message stream. It closes when the inner
// endpoint closes or when this rank crashes.
func (e *endpoint) Inbox() <-chan comm.Message { return e.out }

// Close closes the wrapped endpoint. (For the in-process hub this closes the
// whole hub, matching the unwrapped semantics.)
func (e *endpoint) Close() error { return e.inner.Close() }

// NotifyPeerFailure forwards transport-level failure observation from the
// inner endpoint (TCP read-loop deaths) and registers the handler for the
// injector's scripted crash signals (Scenario.SignalCrashes).
func (e *endpoint) NotifyPeerFailure(fn func(rank int, cause error)) {
	if n, ok := e.inner.(comm.PeerFailureNotifier); ok {
		n.NotifyPeerFailure(fn)
	}
	e.inj.registerHandler(e.rank, fn)
}

// Send applies the link's fate decision to m. It consumes m.Data on every
// path, like any transport. Sends from a crashed rank fail with ErrCrashed;
// sends to a crashed rank vanish silently (the network black-holes traffic
// to a dead process — the sender cannot tell).
func (e *endpoint) Send(dest int, m comm.Message) error {
	if e.inj.Crashed(e.rank) {
		tensor.PutVector(m.Data)
		return ErrCrashed
	}
	if dest == e.rank || dest < 0 || dest >= e.Size() {
		// Self-sends never touch the network; invalid destinations get the
		// transport's own validation error.
		return e.inner.Send(dest, m)
	}
	if e.inj.Crashed(dest) {
		tensor.PutVector(m.Data)
		return nil
	}
	f, delay := e.inj.decide(e.rank, dest)
	switch f {
	case fateDrop:
		tensor.PutVector(m.Data)
		return nil
	case fateDelay:
		e.inj.enqueueFIFO(e.rank, delayedMsg{ep: e.inner, dest: dest, m: m, delay: delay})
		return nil
	case fateReorder:
		if !e.inj.goDeliver(delayedMsg{ep: e.inner, dest: dest, m: m}, delay) {
			tensor.PutVector(m.Data) // injector closed: the message is lost
		}
		return nil
	default:
		return e.inner.Send(dest, m)
	}
}

// forward pumps the inner inbox into the wrapper's, severing the stream when
// this rank crashes: the wrapper inbox closes (the communicator sees a dead
// transport) and any further arrivals are drained and released so inner
// senders never block on a dead rank's full inbox.
func (e *endpoint) forward() {
	crash := e.inj.crashChs[e.rank]
	in := e.inner.Inbox()
	alive := true
	for {
		select {
		case <-crash:
			if alive {
				close(e.out)
				alive = false
			}
			crash = nil // stop selecting on the closed channel
		case m, ok := <-in:
			if !ok {
				if alive {
					close(e.out)
				}
				return
			}
			if !alive {
				tensor.PutVector(m.Data)
				continue
			}
			select {
			case e.out <- m:
			case <-crash:
				close(e.out)
				alive = false
				crash = nil
				tensor.PutVector(m.Data)
			}
		}
	}
}
