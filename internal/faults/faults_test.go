package faults

import (
	"errors"
	"strings"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// drain collects messages from an inbox until it would block.
func drainInbox(in <-chan comm.Message) []comm.Message {
	var out []comm.Message
	for {
		select {
		case m, ok := <-in:
			if !ok {
				return out
			}
			out = append(out, m)
		case <-time.After(50 * time.Millisecond):
			return out
		}
	}
}

func payload(vals ...float64) tensor.Vector {
	v := tensor.GetVector(len(vals))
	copy(v, vals)
	return v
}

// sendFates replays n sends over a fresh injector with the given scenario and
// records which message indices were delivered (in delivery order).
func sendFates(t *testing.T, sc Scenario, n int) []float64 {
	t.Helper()
	hub := transport.NewHub(2)
	inj := NewInjector(2, sc)
	ep0 := inj.Wrap(hub.Endpoint(0))
	ep1 := inj.Wrap(hub.Endpoint(1))
	for i := 0; i < n; i++ {
		if err := ep0.Send(1, comm.Message{Source: 0, Tag: 7, Data: payload(float64(i))}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Let delayed/reordered deliveries settle before draining.
	time.Sleep(30 * time.Millisecond)
	var got []float64
	for _, m := range drainInbox(ep1.Inbox()) {
		got = append(got, m.Data[0])
		tensor.PutVector(m.Data)
	}
	hub.Close()
	inj.Close()
	return got
}

func TestDropsAreDeterministicPerSeed(t *testing.T) {
	sc := Scenario{Seed: 42, Default: LinkRule{Drop: 0.5}}
	a := sendFates(t, sc, 64)
	b := sendFates(t, sc, 64)
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("drop=0.5 delivered %d of 64 — injector not active", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delivery %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sendFates(t, Scenario{Seed: 43, Default: LinkRule{Drop: 0.5}}, 64)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestCutDropsEverything(t *testing.T) {
	sc := Scenario{}
	sc.CutOneWay(0, 1)
	if got := sendFates(t, sc, 16); len(got) != 0 {
		t.Fatalf("cut link delivered %d messages", len(got))
	}
}

func TestDelayPreservesFIFOOrder(t *testing.T) {
	sc := Scenario{Seed: 9, Default: LinkRule{DelayProb: 0.7, DelayMin: time.Millisecond, DelayMax: 3 * time.Millisecond}}
	got := sendFates(t, sc, 32)
	if len(got) != 32 {
		t.Fatalf("delay-only link lost messages: got %d of 32", len(got))
	}
	for i := range got {
		if got[i] != float64(i) {
			t.Fatalf("delayed link reordered: position %d holds %v", i, got[i])
		}
	}
}

func TestReorderBreaksOrderButLosesNothing(t *testing.T) {
	sc := Scenario{Seed: 5, Default: LinkRule{Reorder: 0.5, DelayMax: 4 * time.Millisecond}}
	got := sendFates(t, sc, 64)
	if len(got) != 64 {
		t.Fatalf("reorder link lost messages: got %d of 64", len(got))
	}
	inOrder := true
	seen := make(map[float64]bool)
	for i, v := range got {
		if v != float64(i) {
			inOrder = false
		}
		seen[v] = true
	}
	if len(seen) != 64 {
		t.Fatalf("reorder link duplicated or lost payloads: %d distinct of 64", len(seen))
	}
	if inOrder {
		t.Fatal("reorder=0.5 over 64 messages delivered in exact FIFO order")
	}
}

func TestCrashSemantics(t *testing.T) {
	hub := transport.NewHub(3)
	inj := NewInjector(3, Scenario{CrashAtStep: map[int]int{1: 2}})
	eps := make([]comm.Endpoint, 3)
	for r := range eps {
		eps[r] = inj.Wrap(hub.Endpoint(r))
	}

	// Crash-at-step is per-rank deterministic: two steps of rank 1 kill it.
	if inj.Crashed(1) {
		t.Fatal("rank 1 crashed before any step")
	}
	inj.AdvanceStep(1)
	if inj.Crashed(1) {
		t.Fatal("rank 1 crashed one step early")
	}
	inj.AdvanceStep(1)
	if !inj.Crashed(1) {
		t.Fatal("rank 1 did not crash at its scripted step")
	}

	// The crashed rank's own sends fail with ErrCrashed.
	if err := eps[1].Send(0, comm.Message{Source: 1, Tag: 1, Data: payload(1)}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("send from crashed rank: err = %v, want ErrCrashed", err)
	}
	// Its inbox closes, so its communicator observes a dead transport.
	select {
	case _, ok := <-eps[1].Inbox():
		if ok {
			t.Fatal("crashed rank received a message")
		}
	case <-time.After(time.Second):
		t.Fatal("crashed rank's inbox did not close")
	}
	// Traffic to it is black-holed without an error (the sender cannot tell).
	if err := eps[0].Send(1, comm.Message{Source: 0, Tag: 1, Data: payload(2)}); err != nil {
		t.Fatalf("send to crashed rank: %v", err)
	}
	// Live links keep working.
	if err := eps[0].Send(2, comm.Message{Source: 0, Tag: 1, Data: payload(3)}); err != nil {
		t.Fatalf("send between live ranks: %v", err)
	}
	got := drainInbox(eps[2].Inbox())
	if len(got) != 1 || got[0].Data[0] != 3 {
		t.Fatalf("live link delivered %v", got)
	}
	tensor.PutVector(got[0].Data)
	hub.Close()
	inj.Close()
}

func TestSignalCrashesNotifiesSurvivors(t *testing.T) {
	hub := transport.NewHub(2)
	inj := NewInjector(2, Scenario{SignalCrashes: true})
	ep0 := inj.Wrap(hub.Endpoint(0))
	inj.Wrap(hub.Endpoint(1))

	notified := make(chan int, 1)
	ep0.(comm.PeerFailureNotifier).NotifyPeerFailure(func(rank int, cause error) {
		if !errors.Is(cause, ErrCrashed) {
			t.Errorf("cause = %v, want ErrCrashed", cause)
		}
		notified <- rank
	})
	inj.Crash(1)
	select {
	case r := <-notified:
		if r != 1 {
			t.Fatalf("notified rank = %d, want 1", r)
		}
	case <-time.After(time.Second):
		t.Fatal("crash signal not delivered")
	}

	// Late registration replays the crash.
	replayed := make(chan int, 1)
	inj.registerHandler(0, func(rank int, cause error) { replayed <- rank })
	select {
	case r := <-replayed:
		if r != 1 {
			t.Fatalf("replayed rank = %d, want 1", r)
		}
	case <-time.After(time.Second):
		t.Fatal("crash not replayed to a late handler")
	}
	hub.Close()
	inj.Close()
}

func TestScenarioString(t *testing.T) {
	sc := Scenario{Name: "lossy", Seed: 3, Default: LinkRule{Drop: 0.25}, CrashAtStep: map[int]int{2: 5}, SignalCrashes: true}
	sc.CutOneWay(0, 1)
	s := sc.String()
	for _, want := range []string{"lossy", "seed=3", "drop=0.25", "0->1", "cut", "crash[2]@step5", "signaled"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Scenario.String() = %q, missing %q", s, want)
		}
	}
}

func TestIsolateRankCutsBothDirections(t *testing.T) {
	hub := transport.NewHub(2)
	inj := NewInjector(2, Scenario{})
	ep0 := inj.Wrap(hub.Endpoint(0))
	ep1 := inj.Wrap(hub.Endpoint(1))
	inj.IsolateRank(1)
	if err := ep0.Send(1, comm.Message{Source: 0, Tag: 1, Data: payload(1)}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := ep1.Send(0, comm.Message{Source: 1, Tag: 1, Data: payload(2)}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got := drainInbox(ep1.Inbox()); len(got) != 0 {
		t.Fatalf("isolated rank received %d messages", len(got))
	}
	if got := drainInbox(ep0.Inbox()); len(got) != 0 {
		t.Fatalf("messages escaped an isolated rank: %d", len(got))
	}
	hub.Close()
	inj.Close()
}
