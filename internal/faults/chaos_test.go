// Chaos suite: seeded fault scenarios swept over {mode × transport × seed},
// asserting liveness (every step of every surviving rank terminates),
// participation invariants (active-rank counts stay within the surviving
// set), typed failure surfaces (no hang is ever the answer), and clean
// shutdown with zero leaked pool leases. Assertions never compare against
// wall-clock thresholds; timers only bound how long the whole test may run
// before it is declared hung.
package faults_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eagersgd/collective"
	"eagersgd/internal/tensor"
)

// chaosWatchdog bounds a whole scenario run: if the scenario has not
// terminated by then, the fault-tolerance machinery failed its liveness
// guarantee (this is a hang detector, not a performance assertion).
const chaosWatchdog = 120 * time.Second

// rankOutcome records one rank's run through a scenario.
type rankOutcome struct {
	steps       int   // completed reductions
	err         error // first error, if the rank stopped early
	lastActive  int   // ActiveRanks of the final completed reduction
	activeStats []int // ActiveRanks per completed step
}

// runChaosTraining drives size ranks through steps partial reductions over a
// faulty world, advancing each rank's crash-at-step counter once per step.
// Every rank goroutine terminates or the watchdog fails the test.
func runChaosTraining(t *testing.T, w *collective.World, dim, steps int) []rankOutcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), chaosWatchdog)
	defer cancel()
	size := w.Size()
	inj := w.FaultInjector()
	out := make([]rankOutcome, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		red, err := w.Node(r).Reducer(dim)
		if err != nil {
			t.Fatalf("rank %d reducer: %v", r, err)
		}
		wg.Add(1)
		go func(r int, red collective.Reducer) {
			defer wg.Done()
			grad := make(tensor.Vector, dim)
			for s := 0; s < steps; s++ {
				for i := range grad {
					grad[i] = float64(r + 1)
				}
				res, err := red.Reduce(ctx, grad)
				if err != nil {
					out[r].err = err
					return
				}
				tensor.PutVector(res.Sum)
				out[r].steps++
				out[r].lastActive = res.ActiveRanks
				out[r].activeStats = append(out[r].activeStats, res.ActiveRanks)
				if inj != nil {
					inj.AdvanceStep(r)
				}
			}
		}(r, red)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatal("chaos scenario hung: a rank's reduction neither completed nor failed (liveness violated)")
	}
	return out
}

// leaseBalanced runs fn between two pool snapshots and asserts no pool lease
// leaked across it.
func leaseBalanced(t *testing.T, fn func()) {
	t.Helper()
	before := tensor.ReadPoolStats()
	fn()
	after := tensor.ReadPoolStats()
	if n := after.OutstandingSince(before); n != 0 {
		t.Errorf("pool lease accounting off by %d across the scenario (positive = leaked leases)%s", n, tensor.FormatLeaseReport())
	}
}

// chaosPort hands out disjoint TCP base ports so subtests never collide.
var chaosPort = 33000

func nextChaosPort() int {
	p := chaosPort
	chaosPort += 16
	return p
}

// TestChaosRankCrashPartialTraining is the acceptance scenario: a scripted
// crash of one rank at step k, on both transports, with both detection models
// (an immediate crash signal — the TCP-reset analogue — and pure per-peer
// deadlines). Solo and majority training must complete every remaining step
// with the surviving participant set.
func TestChaosRankCrashPartialTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios take seconds")
	}
	const (
		size      = 4
		dim       = 96
		steps     = 6
		crashRank = 2
		crashStep = 2
	)
	modes := map[string]collective.Mode{"solo": collective.Solo, "majority": collective.Majority}
	transports := map[string]collective.Transport{"inproc": collective.Inproc, "tcp": collective.TCP}
	for modeName, mode := range modes {
		for trName, tr := range transports {
			for _, signal := range []bool{true, false} {
				for _, seed := range []int64{1, 2} {
					if (trName == "tcp" || !signal) && seed != 1 {
						continue // keep the slow variants to one seed
					}
					detect := "signal"
					deadline := 5 * time.Second
					if !signal {
						detect = "deadline"
						deadline = 700 * time.Millisecond
					}
					name := fmt.Sprintf("%s/%s/%s/seed%d", modeName, trName, detect, seed)
					t.Run(name, func(t *testing.T) {
						sc := collective.FaultScenario{
							Name:          "crash",
							Seed:          seed,
							CrashAtStep:   map[int]int{crashRank: crashStep},
							SignalCrashes: signal,
						}
						leaseBalanced(t, func() {
							opts := []collective.Option{
								collective.WithTransport(tr),
								collective.WithMode(mode),
								collective.WithSeed(seed),
								collective.WithPeerDeadline(deadline),
								collective.WithFaults(sc),
							}
							if tr == collective.TCP {
								opts = append(opts, collective.WithBasePort(nextChaosPort()))
							}
							w, err := collective.NewWorld(size, opts...)
							if err != nil {
								t.Skipf("world unavailable: %v", err)
							}
							out := runChaosTraining(t, w, dim, steps)

							// Survivors complete every step; the crashed rank
							// completes its scripted steps and then observes
							// its own death as an error, never a hang.
							for r, o := range out {
								if r == crashRank {
									if o.steps < crashStep {
										t.Errorf("crashed rank completed %d steps, scripted to reach %d", o.steps, crashStep)
									}
									if o.steps < steps && o.err == nil {
										t.Errorf("crashed rank stopped at step %d with no error", o.steps)
									}
									continue
								}
								if o.steps != steps {
									t.Errorf("survivor %d completed %d of %d steps (err=%v)", r, o.steps, steps, o.err)
									continue
								}
								// Participation invariant: every round's NAP
								// stays within the world, and rounds after the
								// crash cannot carry the dead rank's flag —
								// the surviving participant set has size 3.
								for s, a := range o.activeStats {
									if a < 0 || a > size {
										t.Errorf("survivor %d step %d: ActiveRanks=%d outside [0,%d]", r, s, a, size)
									}
								}
								if o.lastActive > size-1 {
									t.Errorf("survivor %d final step: ActiveRanks=%d includes the dead rank", r, o.lastActive)
								}
							}
							// The health view reflects the crash.
							if st := w.Peers()[crashRank]; st.Up {
								t.Errorf("World.Peers reports crashed rank %d up", crashRank)
							}
							if err := w.Close(); err != nil {
								t.Errorf("world close: %v", err)
							}
						})
					})
				}
			}
		}
	}
}

// TestChaosScenarioMatrixLiveness sweeps degraded-network scenarios (delay,
// reorder, light loss, a one-way partition) across modes and seeds: every
// rank's training loop must terminate with every step completed — partial
// collectives never require the faulty links to behave — and shutdown must
// leak nothing.
func TestChaosScenarioMatrixLiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios take seconds")
	}
	const (
		size  = 4
		dim   = 48
		steps = 5
	)
	scenarios := []collective.FaultScenario{
		{Name: "delay", Default: collective.FaultLinkRule{DelayProb: 0.5, DelayMin: time.Millisecond, DelayMax: 4 * time.Millisecond}},
		{Name: "reorder", Default: collective.FaultLinkRule{Reorder: 0.3, DelayMax: 3 * time.Millisecond}},
		{Name: "lossy", Default: collective.FaultLinkRule{Drop: 0.02}},
		*(&collective.FaultScenario{Name: "oneway-cut"}).CutOneWay(1, 3),
	}
	modes := map[string]collective.Mode{"solo": collective.Solo, "majority": collective.Majority, "quorum2": collective.Quorum(2)}
	for _, base := range scenarios {
		for modeName, mode := range modes {
			for _, seed := range []int64{1, 2} {
				if modeName == "quorum2" && seed != 1 {
					continue
				}
				sc := base
				sc.Seed = seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", sc.Name, modeName, seed), func(t *testing.T) {
					leaseBalanced(t, func() {
						w, err := collective.NewWorld(size,
							collective.WithMode(mode),
							collective.WithSeed(seed),
							collective.WithPeerDeadline(time.Second),
							collective.WithFaults(sc),
						)
						if err != nil {
							t.Fatalf("world: %v", err)
						}
						out := runChaosTraining(t, w, dim, steps)
						for r, o := range out {
							if o.err != nil {
								t.Errorf("rank %d failed under %s: %v", r, sc.Name, o.err)
							}
							if o.steps != steps {
								t.Errorf("rank %d completed %d of %d steps", r, o.steps, steps)
							}
							// NAP can legitimately be 0 on a straggler path (the
							// rank observed a round that was activated before any
							// flag — even its own — reached it), so only the upper
							// bound is a hard invariant.
							for s, a := range o.activeStats {
								if a < 0 || a > size {
									t.Errorf("rank %d step %d: ActiveRanks=%d outside [0,%d]", r, s, a, size)
								}
							}
						}
						if err := w.Close(); err != nil {
							t.Errorf("world close: %v", err)
						}
					})
				})
			}
		}
	}
}

// TestChaosBucketedStepCrash runs the overlapped (bucketed) step protocol
// through a scripted crash: one participation decision per step must keep
// every bucket consistent, surviving ranks complete all steps bucket by
// bucket, and shutdown leaks nothing.
func TestChaosBucketedStepCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios take seconds")
	}
	const (
		size      = 4
		steps     = 5
		crashRank = 1
		crashStep = 2
	)
	lens := []int{40, 24, 8}
	dim := 0
	for _, l := range lens {
		dim += l
	}
	sc := collective.FaultScenario{Name: "bucketed-crash", Seed: 7, CrashAtStep: map[int]int{crashRank: crashStep}, SignalCrashes: true}
	leaseBalanced(t, func() {
		w, err := collective.NewWorld(size,
			collective.WithMode(collective.Solo),
			collective.WithSeed(7),
			collective.WithPeerDeadline(2*time.Second),
			collective.WithFaults(sc),
			collective.WithOverlap(),
			collective.WithBucketLayout(lens...),
		)
		if err != nil {
			t.Fatalf("world: %v", err)
		}
		inj := w.FaultInjector()
		ctx, cancel := context.WithTimeout(context.Background(), chaosWatchdog)
		defer cancel()
		outSteps := make([]int, size)
		outErr := make([]error, size)
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			red, err := w.Node(r).Reducer(dim)
			if err != nil {
				t.Fatalf("rank %d reducer: %v", r, err)
			}
			br := red.(collective.BucketReducer)
			wg.Add(1)
			go func(r int, br collective.BucketReducer) {
				defer wg.Done()
				grad := make(tensor.Vector, dim)
				for i := range grad {
					grad[i] = 1
				}
				for s := 0; s < steps; s++ {
					if err := br.BeginStep(ctx, lens); err != nil {
						outErr[r] = err
						return
					}
					var handles []*collective.BucketHandle
					off := 0
					for _, l := range lens {
						h, err := br.SubmitBucket(ctx, off, grad[off:off+l])
						if err != nil {
							outErr[r] = err
							return
						}
						handles = append(handles, h)
						off += l
					}
					for i, h := range handles {
						sum, err := h.Wait(ctx)
						if err != nil {
							outErr[r] = err
							return
						}
						if len(sum) != lens[i] {
							outErr[r] = fmt.Errorf("bucket %d: sum has %d elements, want %d", i, len(sum), lens[i])
							tensor.PutVector(sum)
							return
						}
						tensor.PutVector(sum)
					}
					res, err := br.WaitStep(ctx)
					if err != nil {
						outErr[r] = err
						return
					}
					if res.ActiveRanks < 0 || res.ActiveRanks > size {
						outErr[r] = fmt.Errorf("step %d: ActiveRanks=%d outside [0,%d]", s, res.ActiveRanks, size)
						return
					}
					outSteps[r]++
					if inj != nil {
						inj.AdvanceStep(r)
					}
				}
			}(r, br)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-ctx.Done():
			t.Fatal("bucketed chaos scenario hung (liveness violated)")
		}
		for r := 0; r < size; r++ {
			if r == crashRank {
				if outSteps[r] < crashStep {
					t.Errorf("crashed rank completed %d steps, scripted to reach %d", outSteps[r], crashStep)
				}
				continue
			}
			if outErr[r] != nil {
				t.Errorf("survivor %d: %v", r, outErr[r])
			}
			if outSteps[r] != steps {
				t.Errorf("survivor %d completed %d of %d steps", r, outSteps[r], steps)
			}
		}
		if err := w.Close(); err != nil {
			t.Errorf("world close: %v", err)
		}
	})
}

// TestChaosSyncModeCrashSurfacesRankUnreachable pins the synchronous failure
// surface: sync reduction cannot proceed without every rank, so after a crash
// the survivors must all get errors — at least one wrapping
// ErrRankUnreachable — instead of blocking forever.
func TestChaosSyncModeCrashSurfacesRankUnreachable(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios take seconds")
	}
	const (
		size      = 4
		dim       = 32
		crashRank = 3
	)
	sc := collective.FaultScenario{Name: "sync-crash", Seed: 11, CrashAtStep: map[int]int{crashRank: 1}}
	leaseBalanced(t, func() {
		w, err := collective.NewWorld(size,
			collective.WithMode(collective.Sync),
			collective.WithPeerDeadline(500*time.Millisecond),
			collective.WithFaults(sc),
		)
		if err != nil {
			t.Fatalf("world: %v", err)
		}
		out := runChaosTraining(t, w, dim, 4)
		unreachable := false
		for r, o := range out {
			if r == crashRank {
				continue
			}
			if o.steps >= 4 {
				t.Errorf("survivor %d completed all steps of a sync reduction missing a rank", r)
			}
			if o.err == nil {
				t.Errorf("survivor %d stopped with no error", r)
			} else if errors.Is(o.err, collective.ErrRankUnreachable) {
				unreachable = true
			}
		}
		if !unreachable {
			t.Error("no survivor surfaced ErrRankUnreachable")
		}
		if err := w.Close(); err != nil {
			t.Errorf("world close: %v", err)
		}
	})
}

// TestChaosShmCrashWithLoss runs the acceptance crash scenario over the
// shared-ring transport, with a lossy network layered on top: the injector
// wraps shm endpoints exactly as it wraps channel or socket endpoints, so a
// scripted crash at step k plus seeded message loss must leave solo training
// live on the survivors and the pool balanced — in-place ring encoding does
// not change who owns a dropped message's lease.
func TestChaosShmCrashWithLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios take seconds")
	}
	const (
		size      = 4
		dim       = 96
		steps     = 6
		crashRank = 2
		crashStep = 2
	)
	sc := collective.FaultScenario{
		Name:          "shm-crash-lossy",
		Seed:          7,
		Default:       collective.FaultLinkRule{Drop: 0.05},
		CrashAtStep:   map[int]int{crashRank: crashStep},
		SignalCrashes: true,
	}
	leaseBalanced(t, func() {
		w, err := collective.NewWorld(size,
			collective.WithTransport(collective.Shm),
			collective.WithMode(collective.Solo),
			collective.WithSeed(7),
			collective.WithPeerDeadline(5*time.Second),
			collective.WithFaults(sc),
		)
		if err != nil {
			t.Fatalf("world: %v", err)
		}
		out := runChaosTraining(t, w, dim, steps)
		for r, o := range out {
			if r == crashRank {
				if o.steps < crashStep {
					t.Errorf("crashed rank completed %d steps, scripted to reach %d", o.steps, crashStep)
				}
				if o.steps < steps && o.err == nil {
					t.Errorf("crashed rank stopped at step %d with no error", o.steps)
				}
				continue
			}
			if o.steps != steps {
				t.Errorf("survivor %d completed %d of %d steps (err=%v)", r, o.steps, steps, o.err)
				continue
			}
			for s, a := range o.activeStats {
				if a < 0 || a > size {
					t.Errorf("survivor %d step %d: ActiveRanks=%d outside [0,%d]", r, s, a, size)
				}
			}
			if o.lastActive > size-1 {
				t.Errorf("survivor %d final step: ActiveRanks=%d includes the dead rank", r, o.lastActive)
			}
		}
		if st := w.Peers()[crashRank]; st.Up {
			t.Errorf("World.Peers reports crashed rank %d up", crashRank)
		}
		if err := w.Close(); err != nil {
			t.Errorf("world close: %v", err)
		}
	})
}
