package transport

import (
	"fmt"
	"sync"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// HybridEndpoint composes a shared-ring endpoint with a TCP endpoint into one
// comm.Endpoint: sends to colocated ranks take the syscall-free ring path,
// sends to remote ranks take TCP, and the two inbound streams merge into a
// single inbox. This is the per-rank building block of a mixed world where
// each host group exchanges over rings while cross-host pairs keep sockets.
type HybridEndpoint struct {
	local     comm.Endpoint // carries traffic to colocated ranks (shared rings)
	remote    comm.Endpoint // carries traffic to everyone else (TCP)
	colocated []bool        // indexed by rank; colocated[own rank] is true

	inbox chan comm.Message
	wg    sync.WaitGroup // the two inbox forwarders

	startOnce sync.Once // forwarder launch (first Inbox call); consumed by Close
	closeOnce sync.Once
	closeErr  error
}

// NewHybridEndpoint wires local and remote under one endpoint. colocated[d]
// selects the path for destination d: true routes through local, false
// through remote. The two sub-endpoints must agree on rank and size, and
// colocated[rank] must be true (self-sends stay local). HybridEndpoint owns
// both sub-endpoints; Close closes them.
func NewHybridEndpoint(local, remote comm.Endpoint, colocated []bool) *HybridEndpoint {
	if local.Rank() != remote.Rank() || local.Size() != remote.Size() {
		panic(fmt.Sprintf("transport: hybrid sub-endpoints disagree: local rank %d/%d, remote rank %d/%d",
			local.Rank(), local.Size(), remote.Rank(), remote.Size()))
	}
	if len(colocated) != local.Size() {
		panic(fmt.Sprintf("transport: hybrid colocation map has %d entries for a %d-rank world", len(colocated), local.Size()))
	}
	if !colocated[local.Rank()] {
		panic(fmt.Sprintf("transport: rank %d is not colocated with itself", local.Rank()))
	}
	e := &HybridEndpoint{
		local:     local,
		remote:    remote,
		colocated: append([]bool(nil), colocated...),
		inbox:     make(chan comm.Message, DefaultInboxDepth),
	}
	return e
}

// startForwarders launches the two inbox forwarders once. Like the shm
// poller, they start lazily on the first Inbox call so a SetDeliver issued at
// communicator construction reaches the ring side before its poller latches a
// delivery mode.
func (e *HybridEndpoint) startForwarders() {
	e.startOnce.Do(func() {
		e.wg.Add(2)
		go e.forward(e.local.Inbox())
		go e.forward(e.remote.Inbox())
	})
}

// forward drains one sub-endpoint's inbox into the merged inbox. Ownership of
// each message's payload passes straight through; nothing is copied.
func (e *HybridEndpoint) forward(in <-chan comm.Message) {
	defer e.wg.Done()
	for m := range in {
		e.inbox <- m
	}
}

// Rank returns this endpoint's rank.
func (e *HybridEndpoint) Rank() int { return e.remote.Rank() }

// Size returns the number of ranks in the job.
func (e *HybridEndpoint) Size() int { return e.remote.Size() }

// Send routes m by the destination's colocation: shared ring for colocated
// ranks, TCP otherwise. Ownership of m.Data passes to the chosen sub-endpoint
// unconditionally, matching the comm.Endpoint contract.
func (e *HybridEndpoint) Send(dest int, m comm.Message) error {
	if dest < 0 || dest >= len(e.colocated) {
		tensor.PutVector(m.Data)
		return fmt.Errorf("transport: destination rank %d out of range [0,%d)", dest, len(e.colocated))
	}
	if e.colocated[dest] {
		return e.local.Send(dest, m)
	}
	return e.remote.Send(dest, m)
}

// SendBorrowed keeps the comm.BorrowingSender fast path alive in a mixed
// world: colocated destinations borrow straight through the ring path, while
// remote destinations get the pool snapshot the retaining TCP path requires.
func (e *HybridEndpoint) SendBorrowed(dest int, m comm.Message) error {
	if dest >= 0 && dest < len(e.colocated) && e.colocated[dest] {
		if bs, ok := e.local.(comm.BorrowingSender); ok {
			return bs.SendBorrowed(dest, m)
		}
	}
	m.Data = tensor.GetVectorCopy(m.Data)
	return e.Send(dest, m)
}

// SendFill routes the comm.FillSender in-place path to the ring side for
// colocated destinations; remote destinations report handled=false so the
// caller stages the payload for the retaining TCP path.
func (e *HybridEndpoint) SendFill(dest, tag int, a, b tensor.Vector, fill func(dst, a, b tensor.Vector)) (bool, error) {
	if dest >= 0 && dest < len(e.colocated) && e.colocated[dest] {
		if fs, ok := e.local.(comm.FillSender); ok {
			return fs.SendFill(dest, tag, a, b, fill)
		}
	}
	return false, nil
}

// Inbox returns the merged stream of messages from both paths. The channel is
// closed after Close, once both sub-inboxes have drained. The first call
// starts the forwarders.
func (e *HybridEndpoint) Inbox() <-chan comm.Message {
	e.startForwarders()
	return e.inbox
}

// SetDeliver routes the comm.DirectSource fast path to the ring side:
// colocated peers' frames go straight from the local poll loop to the
// communicator, while remote (TCP) frames keep the merged-inbox path. Each
// source rank's messages travel exactly one of the two, so ordering is
// preserved per source.
func (e *HybridEndpoint) SetDeliver(fn func(m comm.Message)) {
	if ds, ok := e.local.(comm.DirectSource); ok {
		ds.SetDeliver(fn)
	}
}

// BroadcastGroup forwards the comm.GroupBroadcaster capability of the ring
// side: the colocated ranks that share this host's broadcast segments. In a
// mixed world the group never covers the whole job, so whole-world broadcast
// protocols fall back to per-pair sends — by the gating contract, not by
// special-casing here.
func (e *HybridEndpoint) BroadcastGroup() []int {
	if gb, ok := e.local.(comm.GroupBroadcaster); ok {
		return gb.BroadcastGroup()
	}
	return nil
}

// BroadcastBudget forwards the ring side's broadcast block budget.
func (e *HybridEndpoint) BroadcastBudget() int {
	if gb, ok := e.local.(comm.GroupBroadcaster); ok {
		return gb.BroadcastBudget()
	}
	return 0
}

// SendBroadcast publishes to the colocated group through the ring side's
// broadcast segment. Remote ranks are not covered — callers gate on
// BroadcastGroup.
func (e *HybridEndpoint) SendBroadcast(tag int, data tensor.Vector) error {
	if gb, ok := e.local.(comm.GroupBroadcaster); ok {
		return gb.SendBroadcast(tag, data)
	}
	return fmt.Errorf("transport: hybrid local endpoint has no broadcast segment")
}

// NotifyPeerFailure registers fn with both sub-endpoints, so a peer failure
// observed on either path (ring torn down, TCP read loop died) surfaces. A
// colocated peer closing may report through both paths; consumers of the
// notification (comm.MarkPeerDown) are idempotent per rank.
func (e *HybridEndpoint) NotifyPeerFailure(fn func(rank int, cause error)) {
	if n, ok := e.local.(comm.PeerFailureNotifier); ok {
		n.NotifyPeerFailure(fn)
	}
	if n, ok := e.remote.(comm.PeerFailureNotifier); ok {
		n.NotifyPeerFailure(fn)
	}
}

// Close closes both sub-endpoints, waits for the inbox forwarders to drain
// their closed sub-inboxes, and closes the merged inbox. Undelivered payloads
// remaining in the merged inbox are released.
func (e *HybridEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.startOnce.Do(func() {}) // latch: no forwarder may start after close
		lerr := e.local.Close()
		rerr := e.remote.Close()
		e.wg.Wait()
		close(e.inbox)
		for m := range e.inbox {
			tensor.PutVector(m.Data)
		}
		if rerr != nil {
			e.closeErr = rerr
		} else {
			e.closeErr = lerr
		}
	})
	return e.closeErr
}
