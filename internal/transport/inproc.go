// Package transport provides the wire layers beneath internal/comm: an
// in-process transport where ranks are goroutines exchanging messages through
// channels (the default used by all experiments), and a TCP transport that
// runs the same collectives across OS processes using the net package.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// ErrClosed is returned when sending through a closed transport.
var ErrClosed = errors.New("transport: closed")

// DefaultInboxDepth is the per-rank buffered channel capacity of the
// in-process hub. It is deep enough that the collectives used in this
// repository never block a sender on a receiver that has not yet entered the
// collective (a requirement for solo activation, where the initiator must be
// able to send to a rank still busy computing).
const DefaultInboxDepth = 4096

// Hub connects p in-process endpoints. Message delivery is FIFO per
// (sender, receiver) pair and reliable; there is no loss or reordering.
type Hub struct {
	size    int
	inboxes []chan comm.Message
	done    chan struct{} // closed by Close; unblocks in-flight sends

	mu      sync.Mutex
	senders sync.WaitGroup // in-flight send calls; Close drains it before closing inboxes
	closed  bool
}

// NewHub creates an in-process hub for size ranks with the default inbox
// depth.
func NewHub(size int) *Hub {
	return NewHubDepth(size, DefaultInboxDepth)
}

// NewHubDepth creates an in-process hub with an explicit per-rank inbox
// capacity. depth must be at least 1.
func NewHubDepth(size, depth int) *Hub {
	if size <= 0 {
		panic(fmt.Sprintf("transport: hub size %d must be positive", size))
	}
	if depth < 1 {
		panic(fmt.Sprintf("transport: inbox depth %d must be at least 1", depth))
	}
	h := &Hub{size: size, inboxes: make([]chan comm.Message, size), done: make(chan struct{})}
	for i := range h.inboxes {
		h.inboxes[i] = make(chan comm.Message, depth)
	}
	return h
}

// Size returns the number of ranks connected by the hub.
func (h *Hub) Size() int { return h.size }

// Endpoint returns the endpoint for the given rank.
func (h *Hub) Endpoint(rank int) *InprocEndpoint {
	if rank < 0 || rank >= h.size {
		panic(fmt.Sprintf("transport: rank %d out of range [0,%d)", rank, h.size))
	}
	return &InprocEndpoint{hub: h, rank: rank}
}

// Close shuts down every endpoint of the hub. It is safe to call more than
// once. In-flight sends unblock with ErrClosed; the inboxes are closed only
// after every such send has drained, so a send never races the close.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	close(h.done)
	h.mu.Unlock()
	h.senders.Wait()
	for _, ch := range h.inboxes {
		close(ch)
	}
	return nil
}

// send delivers m to dest's inbox, forwarding ownership of m.Data to the
// receiver. On every error path the payload is released to the vector pool,
// upholding the Endpoint.Send contract that ownership transfers
// unconditionally.
func (h *Hub) send(dest int, m comm.Message) error {
	if dest < 0 || dest >= h.size {
		tensor.PutVector(m.Data)
		return fmt.Errorf("transport: destination %d out of range [0,%d)", dest, h.size)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		tensor.PutVector(m.Data)
		return ErrClosed
	}
	// Registering under the lock while closed is still false guarantees Close
	// cannot start draining senders before this send is visible to it.
	h.senders.Add(1)
	ch := h.inboxes[dest]
	h.mu.Unlock()
	defer h.senders.Done()
	// The inbox is buffered; sends only block when a rank is severely behind,
	// which provides natural flow control without unbounded memory use. A
	// concurrent Close unblocks the send through the done channel.
	select {
	case ch <- m:
		return nil
	case <-h.done:
		tensor.PutVector(m.Data)
		return ErrClosed
	}
}

// InprocEndpoint is the per-rank view of a Hub. It implements comm.Endpoint.
type InprocEndpoint struct {
	hub  *Hub
	rank int
}

// Rank returns the endpoint's rank.
func (e *InprocEndpoint) Rank() int { return e.rank }

// Size returns the number of ranks connected by the hub.
func (e *InprocEndpoint) Size() int { return e.hub.size }

// Send delivers m to dest's inbox.
func (e *InprocEndpoint) Send(dest int, m comm.Message) error { return e.hub.send(dest, m) }

// Inbox returns the stream of messages addressed to this rank.
func (e *InprocEndpoint) Inbox() <-chan comm.Message { return e.hub.inboxes[e.rank] }

// Close closes the entire hub. All ranks share the hub's lifetime, matching
// the collective shutdown of an MPI job.
func (e *InprocEndpoint) Close() error { return e.hub.Close() }

// NewInprocWorld is a convenience constructor that builds a hub for size ranks
// and returns one ready-to-use Communicator per rank. The caller should close
// any one of the communicators (or the hub) when done; closing one closes all.
func NewInprocWorld(size int) []*comm.Communicator {
	hub := NewHub(size)
	world := make([]*comm.Communicator, size)
	for r := 0; r < size; r++ {
		world[r] = comm.NewCommunicator(hub.Endpoint(r))
	}
	return world
}
