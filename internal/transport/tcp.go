package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// maxFrameElements bounds the payload of a single TCP frame. 64M float64
// elements (512 MiB) is far above any gradient exchanged in this repository
// and protects the reader from corrupt length headers.
const maxFrameElements = 64 << 20

// TCPConfig describes a TCP job: the addresses of every rank, indexed by
// rank, and this process's rank.
type TCPConfig struct {
	Rank      int
	Addrs     []string      // listen address of every rank, e.g. "127.0.0.1:9000"
	DialRetry time.Duration // total time to keep retrying dials (default 5s)
}

// TCPEndpoint implements comm.Endpoint over one duplex TCP connection per
// peer pair. Rank i accepts connections from ranks j < i and dials ranks
// j > i, so exactly one connection exists between every pair.
type TCPEndpoint struct {
	rank  int
	size  int
	inbox chan comm.Message
	done  chan struct{} // closed by Close; unblocks in-flight local deliveries

	mu      sync.Mutex
	conns   []net.Conn   // indexed by peer rank; nil for self
	wlocks  []sync.Mutex // per-connection write locks
	ln      net.Listener
	closed  bool
	wg      sync.WaitGroup // read loops
	senders sync.WaitGroup // in-flight deliverLocal calls; drained before closing the inbox
}

// NewTCPEndpoint establishes the full mesh of connections described by cfg
// and returns a ready endpoint. It blocks until every peer connection is
// established or the dial retry budget is exhausted.
func NewTCPEndpoint(cfg TCPConfig) (*TCPEndpoint, error) {
	size := len(cfg.Addrs)
	if size == 0 {
		return nil, fmt.Errorf("transport: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("transport: rank %d out of range for %d addresses", cfg.Rank, size)
	}
	retry := cfg.DialRetry
	if retry <= 0 {
		retry = 5 * time.Second
	}
	ep := &TCPEndpoint{
		rank:   cfg.Rank,
		size:   size,
		inbox:  make(chan comm.Message, DefaultInboxDepth),
		done:   make(chan struct{}),
		conns:  make([]net.Conn, size),
		wlocks: make([]sync.Mutex, size),
	}

	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
	}
	ep.ln = ln

	var acceptErr error
	var acceptWG sync.WaitGroup
	expected := cfg.Rank // ranks below us dial in
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		for i := 0; i < expected; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr = err
				return
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				acceptErr = fmt.Errorf("transport: handshake read: %w", err)
				conn.Close()
				return
			}
			peer := int(binary.LittleEndian.Uint32(hdr[:]))
			if peer < 0 || peer >= size {
				acceptErr = fmt.Errorf("transport: handshake from invalid rank %d", peer)
				conn.Close()
				return
			}
			ep.mu.Lock()
			ep.conns[peer] = conn
			ep.mu.Unlock()
		}
	}()

	// Dial every higher rank, retrying until its listener is up.
	for peer := cfg.Rank + 1; peer < size; peer++ {
		conn, err := dialRetry(cfg.Addrs[peer], retry)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("transport: dial rank %d (%s): %w", peer, cfg.Addrs[peer], err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(cfg.Rank))
		if _, err := conn.Write(hdr[:]); err != nil {
			ln.Close()
			return nil, fmt.Errorf("transport: handshake write to rank %d: %w", peer, err)
		}
		ep.conns[peer] = conn
	}

	acceptWG.Wait()
	if acceptErr != nil {
		ln.Close()
		return nil, acceptErr
	}

	for peer, conn := range ep.conns {
		if peer == cfg.Rank || conn == nil {
			continue
		}
		ep.wg.Add(1)
		go ep.readLoop(conn)
	}
	return ep, nil
}

func dialRetry(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Rank returns this endpoint's rank.
func (e *TCPEndpoint) Rank() int { return e.rank }

// Size returns the number of ranks in the job.
func (e *TCPEndpoint) Size() int { return e.size }

// Inbox returns the stream of messages addressed to this rank.
func (e *TCPEndpoint) Inbox() <-chan comm.Message { return e.inbox }

// Send encodes m as a length-prefixed frame and writes it to the connection
// for dest. Sending to self delivers directly to the local inbox.
func (e *TCPEndpoint) Send(dest int, m comm.Message) error {
	if dest < 0 || dest >= e.size {
		return fmt.Errorf("transport: destination %d out of range [0,%d)", dest, e.size)
	}
	if dest == e.rank {
		return e.deliverLocal(m)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	conn := e.conns[dest]
	e.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("transport: no connection to rank %d", dest)
	}

	frame := encodeFrame(m)
	e.wlocks[dest].Lock()
	defer e.wlocks[dest].Unlock()
	_, err := conn.Write(frame)
	return err
}

func (e *TCPEndpoint) deliverLocal(m comm.Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	// Registering under the lock while closed is still false guarantees Close
	// cannot start draining senders before this delivery is visible to it.
	e.senders.Add(1)
	e.mu.Unlock()
	defer e.senders.Done()
	select {
	case e.inbox <- m:
		return nil
	case <-e.done:
		return ErrClosed
	}
}

// Close tears down the listener, the peer connections, and the inbox. The
// inbox is closed only after the read loops have exited and in-flight local
// deliveries have drained, so a delivery never races the close.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	conns := append([]net.Conn(nil), e.conns...)
	e.mu.Unlock()

	e.ln.Close()
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
	e.wg.Wait()
	e.senders.Wait()
	close(e.inbox)
	return nil
}

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	for {
		m, err := decodeFrame(conn)
		if err != nil {
			return
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		if err := e.deliverLocal(m); err != nil {
			return
		}
	}
}

// Frame layout (little endian):
//
//	uint32 source | uint32 tag+1<<31 offset (tags may be negative, stored as int32) | uint32 count | count * float64
func encodeFrame(m comm.Message) []byte {
	buf := make([]byte, 12+8*len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(int32(m.Source)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(int32(m.Tag)))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(m.Data)))
	for i, x := range m.Data {
		binary.LittleEndian.PutUint64(buf[12+8*i:], math.Float64bits(x))
	}
	return buf
}

func decodeFrame(r io.Reader) (comm.Message, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return comm.Message{}, err
	}
	source := int(int32(binary.LittleEndian.Uint32(hdr[0:4])))
	tag := int(int32(binary.LittleEndian.Uint32(hdr[4:8])))
	count := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if count < 0 || count > maxFrameElements {
		return comm.Message{}, fmt.Errorf("transport: invalid frame length %d", count)
	}
	payload := make([]byte, 8*count)
	if _, err := io.ReadFull(r, payload); err != nil {
		return comm.Message{}, err
	}
	data := make(tensor.Vector, count)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return comm.Message{Source: source, Tag: tag, Data: data}, nil
}

// NewTCPWorld starts size TCP endpoints on consecutive loopback ports
// beginning at basePort and returns a communicator per rank. It exists mainly
// for tests and examples that want the TCP path exercised within one process;
// production deployments construct one NewTCPEndpoint per OS process.
func NewTCPWorld(size, basePort int) ([]*comm.Communicator, error) {
	addrs := make([]string, size)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	eps := make([]*TCPEndpoint, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eps[r], errs[r] = NewTCPEndpoint(TCPConfig{Rank: r, Addrs: addrs})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, ep := range eps {
				if ep != nil {
					ep.Close()
				}
			}
			return nil, err
		}
	}
	world := make([]*comm.Communicator, size)
	for r := 0; r < size; r++ {
		world[r] = comm.NewCommunicator(eps[r])
	}
	return world, nil
}
