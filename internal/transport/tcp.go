package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// maxFrameElements bounds the payload of a single TCP frame. 64M float64
// elements (512 MiB) is far above any gradient exchanged in this repository
// and protects the reader from corrupt length headers: a reader that trusted
// a hostile or corrupt length would try to allocate up to 32 GiB before
// failing.
const maxFrameElements = 64 << 20

// ErrFrameTooLarge is wrapped by decode errors for frames whose length header
// exceeds maxFrameElements.
var ErrFrameTooLarge = errors.New("transport: frame exceeds element limit")

// TCPConfig describes a TCP job: the addresses of every rank, indexed by
// rank, and this process's rank.
type TCPConfig struct {
	Rank      int
	Addrs     []string      // listen address of every rank, e.g. "127.0.0.1:9000"
	DialRetry time.Duration // total time to keep retrying dials (default 5s)
}

// TCPEndpoint implements comm.Endpoint over one duplex TCP connection per
// peer pair. Rank i accepts connections from ranks j < i and dials ranks
// j > i, so exactly one connection exists between every pair.
type TCPEndpoint struct {
	rank  int
	size  int
	inbox chan comm.Message
	done  chan struct{} // closed by Close; unblocks in-flight local deliveries

	mu      sync.Mutex
	writers []*tcpWriter // indexed by peer rank; nil for self
	ln      net.Listener
	closed  bool
	wg      sync.WaitGroup // read loops
	senders sync.WaitGroup // in-flight deliverLocal calls; drained before closing the inbox

	readMu   sync.Mutex
	readErr  error              // first read-loop decode/IO failure, kept for diagnostics
	onFail   []func(int, error) // peer-failure handlers (NotifyPeerFailure)
	failures map[int]error      // per-peer failures observed so far, for replay
}

// NotifyPeerFailure registers the handler invoked when a peer's connection
// dies mid-job (read-loop EOF or decode/IO failure). Failures observed before
// registration are replayed immediately. With a handler registered, a dead
// connection fails only that peer — the handler typically marks the rank down
// on the communicator so blocked receives surface a typed PeerDownError while
// traffic with healthy peers continues. Without one, the endpoint falls back
// to closing itself entirely (the pre-fault-tolerance behaviour), so bare
// endpoints never hang their receivers.
func (e *TCPEndpoint) NotifyPeerFailure(fn func(rank int, cause error)) {
	e.readMu.Lock()
	e.onFail = append(e.onFail, fn)
	replay := make(map[int]error, len(e.failures))
	for r, err := range e.failures {
		replay[r] = err
	}
	e.readMu.Unlock()
	for r, err := range replay {
		fn(r, err)
	}
}

// recordPeerFailure stores the failure for replay and returns the registered
// handlers (nil if none).
func (e *TCPEndpoint) recordPeerFailure(peer int, cause error) []func(int, error) {
	e.readMu.Lock()
	defer e.readMu.Unlock()
	if e.failures == nil {
		e.failures = make(map[int]error)
	}
	if e.failures[peer] == nil {
		e.failures[peer] = cause
	}
	return e.onFail
}

// tcpWriter owns one peer connection's write half and coalesces concurrent
// sends: frames are staged as iovecs under the lock, and the first sender to
// find no flush in progress becomes the flusher, handing the whole batch to
// the kernel in one vectored write (net.Buffers / writev, see flushBuffers)
// and looping until the batch list is empty — picking up frames other senders
// appended while it was writing. Segment streams produced by the pipelined
// collectives and the schedule executor's sender therefore reach the kernel
// in one syscall per batch instead of one per frame, while a lone send still
// goes out immediately, and the last flusher leaving drains everything:
// flush-on-idle without timers.
//
// Each frame contributes two iovecs: a 12-byte header from a recycled
// freelist and the payload. On little-endian targets the payload iovec
// aliases the pooled vector's backing array — the frame is never copied in
// user space at all; the kernel reads the vector during writev and the lease
// is released when its batch completes (see encodePayload). The portable
// fallback stages through recycled conversion buffers. Either way the steady
// state allocates nothing: the batch slices, header buffers, and staging
// buffers all ping-pong.
//
// The semantics are group commit: every sender's frames reach the socket
// before its send returns — a coalesced sender waits on the condition
// variable until the flusher has written past its frame (or failed). On a
// write failure the kernel's byte count still advances flushed, so the error
// is reported to exactly the sends whose frames were not fully delivered,
// never swallowed and never over-reported.
//
// Flow control: the staged bytes are additionally bounded by maxPendBytes —
// admission blocks while a stuck flusher (a peer that stopped draining its
// socket) has that much already queued, the backpressure the Endpoint.Send
// contract advertises. Close unblocks everyone: closing the connection fails
// the in-flight write, the error is recorded, and all waiters are woken.
type tcpWriter struct {
	conn net.Conn

	mu        sync.Mutex
	cond      sync.Cond       // signaled when flushed advances, the flusher exits, or err is set
	pend      net.Buffers     // iovecs awaiting write (header, payload, header, payload, ...)
	owned     []tensor.Vector // payload leases aliased by pend, released once the batch is written
	hdrs      [][]byte        // header buffers in pend, recycled after the batch
	encs      [][]byte        // staging buffers in pend (portable fallback only), recycled after
	pendBytes int             // total bytes staged in pend
	writing   bool            // a flusher is active
	queued    uint64          // total frame bytes ever staged
	flushed   uint64          // total frame bytes the kernel accepted
	err       error           // first write failure; sticky

	sparePend            net.Buffers     // recycled backing arrays the next batch reuses
	spareOwned           []tensor.Vector //
	spareHdrs, spareEncs [][]byte        //
	hdrFree, encFree     [][]byte        // freelists of header / staging buffers
}

// buffersWriter lets tests intercept the vectored flush; *net.TCPConn goes
// through net.Buffers.WriteTo, which issues a single writev per batch.
type buffersWriter interface {
	WriteBuffers(*net.Buffers) (int64, error)
}

// flushBuffers hands one batch of iovecs to the connection. The returned
// count is bytes the kernel accepted even on a partial failure — the group
// commit's error attribution depends on it.
func flushBuffers(conn net.Conn, bufs *net.Buffers) (int64, error) {
	if bw, ok := conn.(buffersWriter); ok {
		return bw.WriteBuffers(bufs)
	}
	return bufs.WriteTo(conn)
}

// maxPendBytes bounds the frames buffered behind an in-progress flush before
// new senders block for flow control. 4 MiB absorbs a full pipelined exchange
// of large-gradient segments without stalling the fast path.
const maxPendBytes = 4 << 20

func newTCPWriter(conn net.Conn) *tcpWriter {
	w := &tcpWriter{conn: conn}
	w.cond.L = &w.mu
	return w
}

// takeHdr pops a recycled 12-byte header buffer (allocating on first use).
func (w *tcpWriter) takeHdr() []byte {
	if n := len(w.hdrFree); n > 0 {
		h := w.hdrFree[n-1]
		w.hdrFree = w.hdrFree[:n-1]
		return h
	}
	return make([]byte, 12)
}

// takeEnc pops a recycled staging buffer for the portable encoder (nil when
// none is available; appendFloats grows it as needed).
func (w *tcpWriter) takeEnc() []byte {
	if n := len(w.encFree); n > 0 {
		e := w.encFree[n-1]
		w.encFree = w.encFree[:n-1]
		return e
	}
	return nil
}

// send stages m as header+payload iovecs and returns once the frame has been
// written to the socket: either this sender becomes the flusher (no flush in
// progress) and issues the vectored write itself, or it waits for the active
// flusher to write past its frame. It consumes m.Data on every path.
func (w *tcpWriter) send(m comm.Message) error {
	w.mu.Lock()
	for w.err == nil && w.writing && w.pendBytes >= maxPendBytes {
		w.cond.Wait()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		tensor.PutVector(m.Data)
		return err
	}
	hdr := w.takeHdr()
	putFrameHeader(hdr, m)
	w.pend = append(w.pend, hdr)
	w.hdrs = append(w.hdrs, hdr)
	var retained tensor.Vector
	var enc []byte
	w.pend, retained, enc = encodePayload(w.pend, m.Data, w.takeEnc())
	if retained != nil {
		w.owned = append(w.owned, retained)
	}
	if enc != nil {
		w.encs = append(w.encs, enc)
	}
	frameSize := 12 + 8*len(m.Data)
	w.pendBytes += frameSize
	w.queued += uint64(frameSize)
	target := w.queued
	if w.writing {
		// Group commit: the active flusher will pick this frame up in its
		// next batch; wait until it has been written (or the write failed).
		for w.err == nil && w.flushed < target {
			w.cond.Wait()
		}
		var err error
		if w.flushed < target {
			err = w.err
		}
		w.mu.Unlock()
		return err
	}
	w.writing = true
	for len(w.pend) > 0 && w.err == nil {
		bufs := w.pend
		owned := w.owned
		hdrs := w.hdrs
		encs := w.encs
		batchBytes := w.pendBytes
		w.pend = w.sparePend[:0]
		w.owned = w.spareOwned[:0]
		w.hdrs = w.spareHdrs[:0]
		w.encs = w.spareEncs[:0]
		w.pendBytes = 0
		w.mu.Unlock()
		remaining := bufs // WriteTo consumes the slice; keep bufs for recycling
		n, err := flushBuffers(w.conn, &remaining)
		// The kernel is done with every iovec (written or abandoned): the
		// aliased payload leases can go back to the pool either way — the
		// Send contract consumed them, and non-delivery is reported below.
		for _, v := range owned {
			tensor.PutVector(v)
		}
		w.mu.Lock()
		w.sparePend = bufs[:0]
		w.spareOwned = owned[:0]
		w.hdrFree = append(w.hdrFree, hdrs...)
		w.spareHdrs = hdrs[:0]
		w.encFree = append(w.encFree, encs...)
		w.spareEncs = encs[:0]
		if err != nil {
			if w.err == nil {
				w.err = err
			}
			// Partial-write attribution: senders whose frames the kernel
			// fully accepted succeed; everyone behind the failure point gets
			// the error.
			w.flushed += uint64(n)
		} else {
			w.flushed += uint64(batchBytes)
		}
		w.cond.Broadcast() // progress (or failure): wake coalesced waiters and admissions
	}
	if w.err != nil && len(w.pend) > 0 {
		// Frames staged behind the failure point will never be written (the
		// error is sticky, so no flusher ever runs again): release their
		// leases and recycle their buffers so nothing leaks.
		for _, v := range w.owned {
			tensor.PutVector(v)
		}
		w.owned = w.owned[:0]
		w.hdrFree = append(w.hdrFree, w.hdrs...)
		w.hdrs = w.hdrs[:0]
		w.encFree = append(w.encFree, w.encs...)
		w.encs = w.encs[:0]
		w.pend = w.pend[:0]
		w.pendBytes = 0
	}
	w.writing = false
	w.cond.Broadcast() // flusher exiting: admit a new flusher
	var err error
	if w.flushed < target {
		err = w.err
	}
	w.mu.Unlock()
	return err
}

// NewTCPEndpoint establishes the full mesh of connections described by cfg
// and returns a ready endpoint. It blocks until every peer connection is
// established or the dial retry budget is exhausted.
func NewTCPEndpoint(cfg TCPConfig) (*TCPEndpoint, error) {
	size := len(cfg.Addrs)
	if size == 0 {
		return nil, fmt.Errorf("transport: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("transport: rank %d out of range for %d addresses", cfg.Rank, size)
	}
	retry := cfg.DialRetry
	if retry <= 0 {
		retry = 5 * time.Second
	}
	ep := &TCPEndpoint{
		rank:    cfg.Rank,
		size:    size,
		inbox:   make(chan comm.Message, DefaultInboxDepth),
		done:    make(chan struct{}),
		writers: make([]*tcpWriter, size),
	}

	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
	}
	ep.ln = ln

	var acceptErr error
	var acceptWG sync.WaitGroup
	expected := cfg.Rank // ranks below us dial in
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		// The accept phase shares the dial-retry budget. A lower rank that
		// failed to start — lost its bind race (epoch port blocks can land on
		// an in-use ephemeral port), or died before dialing — will never dial
		// in; without a deadline every sibling would sit in Accept forever
		// and mesh construction would deadlock instead of surfacing that
		// rank's error.
		deadline := time.Now().Add(retry)
		tl, _ := ln.(*net.TCPListener)
		for i := 0; i < expected; i++ {
			if tl != nil {
				tl.SetDeadline(deadline)
			}
			conn, err := ln.Accept()
			if err != nil {
				if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
					err = fmt.Errorf("transport: rank %d accepted %d of %d expected peer connections within %v (a lower rank likely failed to start): %w",
						cfg.Rank, i, expected, retry, err)
				}
				acceptErr = err
				return
			}
			var hdr [4]byte
			conn.SetReadDeadline(deadline) // handshake must not outwait the phase
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				acceptErr = fmt.Errorf("transport: handshake read: %w", err)
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			peer := int(binary.LittleEndian.Uint32(hdr[:]))
			if peer < 0 || peer >= size {
				acceptErr = fmt.Errorf("transport: handshake from invalid rank %d", peer)
				conn.Close()
				return
			}
			tuneConn(conn)
			ep.mu.Lock()
			ep.writers[peer] = newTCPWriter(conn)
			ep.mu.Unlock()
		}
		if tl != nil {
			tl.SetDeadline(time.Time{})
		}
	}()

	// Dial every higher rank, retrying until its listener is up.
	for peer := cfg.Rank + 1; peer < size; peer++ {
		conn, err := dialRetry(cfg.Addrs[peer], retry)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("transport: dial rank %d (%s): %w", peer, cfg.Addrs[peer], err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(cfg.Rank))
		if _, err := conn.Write(hdr[:]); err != nil {
			ln.Close()
			return nil, fmt.Errorf("transport: handshake write to rank %d: %w", peer, err)
		}
		tuneConn(conn)
		ep.writers[peer] = newTCPWriter(conn)
	}

	acceptWG.Wait()
	if acceptErr != nil {
		ln.Close()
		return nil, acceptErr
	}

	for peer, w := range ep.writers {
		if peer == cfg.Rank || w == nil {
			continue
		}
		ep.wg.Add(1)
		go ep.readLoop(peer, w.conn)
	}
	return ep, nil
}

// tuneConn applies the latency-sensitive socket options. TCP_NODELAY is Go's
// default for TCP connections, but the pipelined collectives depend on small
// segment frames leaving immediately, so it is asserted explicitly rather
// than inherited.
func tuneConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
}

// Dial backoff shape: start small so a listener that is already up costs one
// extra round trip at most, double up to a cap so a slow-starting peer (or a
// joiner dialing a world mid-reconfiguration) is not hammered, and jitter each
// sleep by up to half so a whole world bootstrapping at once does not dial in
// lockstep. The budget remains the total wall-clock window across attempts.
const (
	dialBackoffFloor = 2 * time.Millisecond
	dialBackoffCeil  = 250 * time.Millisecond
)

func dialRetry(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	backoff := dialBackoffFloor
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, err
		}
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		if sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
		if backoff < dialBackoffCeil {
			backoff *= 2
		}
	}
}

// Rank returns this endpoint's rank.
func (e *TCPEndpoint) Rank() int { return e.rank }

// Size returns the number of ranks in the job.
func (e *TCPEndpoint) Size() int { return e.size }

// Inbox returns the stream of messages addressed to this rank.
func (e *TCPEndpoint) Inbox() <-chan comm.Message { return e.inbox }

// Send encodes m as a length-prefixed frame into the destination
// connection's coalescing writer (see tcpWriter: concurrent sends to the same
// peer batch into one syscall, a lone send flushes immediately). Sending to
// self forwards the payload to the local inbox without any encoding. Send
// consumes m.Data: after the frame is encoded the vector is released to the
// pool, and on every error path it is released as well, so the caller (the
// comm layer) never owns the payload after Send.
func (e *TCPEndpoint) Send(dest int, m comm.Message) error {
	if dest < 0 || dest >= e.size {
		tensor.PutVector(m.Data)
		return fmt.Errorf("transport: destination %d out of range [0,%d)", dest, e.size)
	}
	if dest == e.rank {
		return e.deliverLocal(m)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		tensor.PutVector(m.Data)
		return ErrClosed
	}
	w := e.writers[dest]
	e.mu.Unlock()
	if w == nil {
		tensor.PutVector(m.Data)
		return fmt.Errorf("transport: no connection to rank %d", dest)
	}
	return w.send(m)
}

// deliverLocal forwards m (ownership included) to the local inbox, releasing
// the payload if the endpoint is closing.
func (e *TCPEndpoint) deliverLocal(m comm.Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		tensor.PutVector(m.Data)
		return ErrClosed
	}
	// Registering under the lock while closed is still false guarantees Close
	// cannot start draining senders before this delivery is visible to it.
	e.senders.Add(1)
	e.mu.Unlock()
	defer e.senders.Done()
	select {
	case e.inbox <- m:
		return nil
	case <-e.done:
		tensor.PutVector(m.Data)
		return ErrClosed
	}
}

// Close tears down the listener, the peer connections, and the inbox. The
// inbox is closed only after the read loops have exited and in-flight local
// deliveries have drained, so a delivery never races the close.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	writers := append([]*tcpWriter(nil), e.writers...)
	e.mu.Unlock()

	e.ln.Close()
	for _, w := range writers {
		if w != nil {
			w.conn.Close()
		}
	}
	e.wg.Wait()
	e.senders.Wait()
	close(e.inbox)
	return nil
}

// readLoop drains one peer connection, decoding frames into pool-leased
// vectors and forwarding them to the inbox. Each loop owns a private scratch
// buffer that is grown once and reused for every frame, so a steady-state
// receive performs no allocation. A decode failure (including an oversized or
// truncated frame) tears the connection down and is recorded on the endpoint
// (see ReadError) instead of silently vanishing; with a peer-failure handler
// registered (NotifyPeerFailure) only that peer is declared dead, otherwise
// the whole endpoint closes.
func (e *TCPEndpoint) readLoop(peer int, conn net.Conn) {
	defer e.wg.Done()
	var scratch []byte
	for {
		m, err := decodeFrame(conn, &scratch)
		if err != nil {
			e.handleReadFailure(peer, conn, err)
			return
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			tensor.PutVector(m.Data)
			return
		}
		if err := e.deliverLocal(m); err != nil {
			return
		}
	}
}

// handleReadFailure reacts to a read loop ending: nothing during our own
// shutdown; otherwise the peer is unreachable (its process exited — EOF — or
// the stream is corrupt). Decode/IO failures are recorded for ReadError
// diagnostics. With a peer-failure handler the failure is scoped to the peer:
// the connection is closed (failing its pending writes) and the handler is
// invoked so the comm layer can mark the rank down. Without a handler, a
// fatal (non-EOF) failure closes the whole endpoint so blocked receivers
// observe ErrClosed promptly instead of hanging.
func (e *TCPEndpoint) handleReadFailure(peer int, conn net.Conn, err error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return
	}
	cause := err
	if errors.Is(err, io.EOF) {
		cause = fmt.Errorf("transport: rank %d closed its connection (process exited?): %w", peer, err)
	} else {
		e.readMu.Lock()
		if e.readErr == nil {
			e.readErr = err
		}
		e.readMu.Unlock()
	}
	if fns := e.recordPeerFailure(peer, cause); len(fns) > 0 {
		conn.Close() // fail pending writes toward the dead peer too
		for _, fn := range fns {
			fn(peer, cause)
		}
		return
	}
	if !errors.Is(err, io.EOF) {
		// Close must run off this goroutine: it waits for read loops.
		go e.Close()
	}
}

// ReadError returns the first fatal decode or I/O failure observed by a read
// loop (nil if none). A non-nil value means a peer connection died mid-job —
// for example on a corrupt or oversized frame. With a peer-failure handler
// registered (the communicator's default), only that peer is marked down and
// blocked operations naming it observe a PeerDownError carrying this error;
// without one the endpoint closes itself, so blocked receivers observe
// ErrClosed and this error explains why.
func (e *TCPEndpoint) ReadError() error {
	e.readMu.Lock()
	defer e.readMu.Unlock()
	return e.readErr
}

// Frame layout (little endian):
//
//	uint32 source | uint32 tag (stored as int32; tags may be negative) | uint32 count | count * float64
//
// appendFrame appends m's wire encoding to buf and returns the extended
// slice. On little-endian architectures the payload is one bulk copy of the
// vector's bytes (see wire_le.go); the portable fallback converts element by
// element. The caller (tcpWriter) retains and recycles the buffer, so
// steady-state sends allocate nothing.
func appendFrame(buf []byte, m comm.Message) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(int32(m.Source)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(int32(m.Tag)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(m.Data)))
	buf = append(buf, hdr[:]...)
	return appendFloats(buf, m.Data)
}

// decodeFrame reads one frame from r into a pool-leased vector. On
// little-endian architectures the payload bytes land directly in the vector's
// backing array (no staging buffer, no conversion pass); the portable
// fallback stages through *scratch (grown once, then reused). The returned
// message owns its Data lease. Oversized length headers are rejected before
// any payload allocation with an error wrapping ErrFrameTooLarge; a payload
// shorter than its header promises fails with a descriptive truncation error.
func decodeFrame(r io.Reader, scratch *[]byte) (comm.Message, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return comm.Message{}, err
	}
	source := int(int32(binary.LittleEndian.Uint32(hdr[0:4])))
	tag := int(int32(binary.LittleEndian.Uint32(hdr[4:8])))
	// Compare in the unsigned domain: converting first could wrap negative on
	// 32-bit ints and sneak past the limit.
	count64 := uint64(binary.LittleEndian.Uint32(hdr[8:12]))
	if count64 > maxFrameElements {
		return comm.Message{}, fmt.Errorf("%w: header from rank %d (tag %d) announces %d elements, limit %d (corrupt or hostile length header)",
			ErrFrameTooLarge, source, tag, count64, maxFrameElements)
	}
	count := int(count64)
	data := tensor.GetVector(count)
	if err := readFloats(r, data, scratch); err != nil {
		tensor.PutVector(data)
		return comm.Message{}, fmt.Errorf("transport: truncated frame from rank %d (tag %d): read fewer than the %d payload bytes announced: %w",
			source, tag, 8*count, err)
	}
	return comm.Message{Source: source, Tag: tag, Data: data}, nil
}

// NewTCPEndpoints starts size TCP endpoints on consecutive loopback ports
// beginning at basePort and returns them indexed by rank. It exists for
// in-process TCP worlds (tests, examples, fault-injection wrapping);
// production deployments construct one NewTCPEndpoint per OS process.
func NewTCPEndpoints(size, basePort int) ([]*TCPEndpoint, error) {
	return NewTCPEndpointsRetry(size, basePort, 0)
}

// NewTCPEndpointsRetry is NewTCPEndpoints with an explicit dial-retry budget
// (TCPConfig.DialRetry) applied to every rank's dials; retry <= 0 keeps the
// default window.
func NewTCPEndpointsRetry(size, basePort int, retry time.Duration) ([]*TCPEndpoint, error) {
	addrs := make([]string, size)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	eps := make([]*TCPEndpoint, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eps[r], errs[r] = NewTCPEndpoint(TCPConfig{Rank: r, Addrs: addrs, DialRetry: retry})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, ep := range eps {
				if ep != nil {
					ep.Close()
				}
			}
			return nil, err
		}
	}
	return eps, nil
}

// NewTCPWorld starts size TCP endpoints on consecutive loopback ports
// beginning at basePort and returns a communicator per rank.
func NewTCPWorld(size, basePort int) ([]*comm.Communicator, error) {
	eps, err := NewTCPEndpoints(size, basePort)
	if err != nil {
		return nil, err
	}
	world := make([]*comm.Communicator, size)
	for r := 0; r < size; r++ {
		world[r] = comm.NewCommunicator(eps[r])
	}
	return world, nil
}
