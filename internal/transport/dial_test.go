package transport

import (
	"net"
	"testing"
	"time"
)

func TestDialRetryWaitsForLateListener(t *testing.T) {
	// Reserve a port, close it, and only re-listen after a delay: the dialer
	// must ride its backoff across the gap instead of failing on the first
	// refused connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	accepted := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial side will report the failure
		}
		defer ln2.Close()
		if c, err := ln2.Accept(); err == nil {
			c.Close()
			close(accepted)
		}
	}()

	conn, err := dialRetry(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dialRetry did not survive a 150ms-late listener: %v", err)
	}
	conn.Close()
	select {
	case <-accepted:
	case <-time.After(time.Second):
		t.Fatal("listener never observed the accepted connection")
	}
}

func TestDialRetryExhaustsBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nobody listens here for the rest of the test

	start := time.Now()
	if _, err := dialRetry(addr, 100*time.Millisecond); err == nil {
		t.Fatal("dialRetry succeeded against a closed port")
	}
	// The budget is a total window, not per attempt: with exponential backoff
	// capped at the remaining time, exhaustion must land near the window.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget exhaustion took %v, want ~100ms", elapsed)
	}
}

func TestNewTCPEndpointsRetryBuildsWorld(t *testing.T) {
	eps, err := NewTCPEndpointsRetry(3, 39400, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		ep.Close()
	}
}

func TestNewTCPEndpointsRetryFailsFastOnOccupiedPort(t *testing.T) {
	// Squat on the base port so rank 0's bind fails. The ranks above it are
	// then waiting for a dial that will never come; construction must
	// surface rank 0's bind error within the retry budget instead of
	// deadlocking in their accept loops. This is live exposure for elastic
	// worlds: epoch transitions take fresh port blocks from a cursor, which
	// can land on a port the kernel handed to an unrelated ephemeral
	// connection.
	squatter, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer squatter.Close()
	base := squatter.Addr().(*net.TCPAddr).Port

	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := NewTCPEndpointsRetry(3, base, 500*time.Millisecond)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("construction succeeded with the base port occupied")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("failure took %v, want within the ~500ms budget", elapsed)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("NewTCPEndpointsRetry deadlocked on an occupied base port")
	}
}
