package transport

import (
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// TestRingEnqueueFillRoundTrip: the fill-send path reserves the outgoing
// frame's span and computes the payload in place; the consumer must see the
// filled values under the given source and tag.
func TestRingEnqueueFillRoundTrip(t *testing.T) {
	if !wireViewable {
		t.Skip("fill-send requires the little-endian view codec")
	}
	r := newRing(1 << 14)
	a, b := leasedVector(100, 1), leasedVector(100, 1000)
	defer tensor.PutVector(a)
	defer tensor.PutVector(b)

	ok, err := r.enqueueFill(3, 17, a, b, tensor.AddInto, nil)
	if err != nil || !ok {
		t.Fatalf("enqueueFill: ok=%v err=%v", ok, err)
	}
	m := drainOne(t, r)
	if m.Source != 3 || m.Tag != 17 || len(m.Data) != 100 {
		t.Fatalf("message header = %d/%d/%d, want 3/17/100", m.Source, m.Tag, len(m.Data))
	}
	for i := range m.Data {
		if want := a[i] + b[i]; m.Data[i] != want {
			t.Fatalf("data[%d] = %v, want %v", i, m.Data[i], want)
		}
	}
	tensor.PutVector(m.Data)
}

// TestRingEnqueueFillOversizeDeclines: a frame too large for a single
// complete record must report handled=false without touching the ring — the
// caller then stages through the ordinary fragmenting send.
func TestRingEnqueueFillOversizeDeclines(t *testing.T) {
	r := newRing(1 << 14) // maxRec = cap/4 = 4 KiB => 512 floats
	n := r.maxRec/8 + 1
	a, b := leasedVector(n, 0), leasedVector(n, 0)
	defer tensor.PutVector(a)
	defer tensor.PutVector(b)

	ok, err := r.enqueueFill(0, 1, a, b, tensor.AddInto, nil)
	if err != nil || ok {
		t.Fatalf("oversize enqueueFill: ok=%v err=%v, want false nil", ok, err)
	}
	if _, res, err := r.tryDequeue(); err != nil || res != ringEmpty {
		t.Fatalf("declined fill left the ring non-empty: res=%v err=%v", res, err)
	}
}

// TestShmSendFillRoundTrip: the endpoint-level FillSender contract over a
// shared ring — handled sends deliver fill(a, b), self- and out-of-range
// destinations decline so the caller can fall back.
func TestShmSendFillRoundTrip(t *testing.T) {
	if !wireViewable {
		t.Skip("fill-send requires the little-endian view codec")
	}
	hub := NewShmHub(2)
	e0, e1 := hub.Endpoint(0), hub.Endpoint(1)
	defer hub.Close()

	a, b := leasedVector(64, 5), leasedVector(64, 500)
	defer tensor.PutVector(a)
	defer tensor.PutVector(b)

	handled, err := e0.SendFill(1, 9, a, b, tensor.AddInto)
	if err != nil || !handled {
		t.Fatalf("SendFill: handled=%v err=%v", handled, err)
	}
	var m comm.Message
	select {
	case m = <-e1.Inbox():
	case <-time.After(5 * time.Second):
		t.Fatal("filled frame never surfaced on the consumer inbox")
	}
	if m.Source != 0 || m.Tag != 9 {
		t.Fatalf("message header = %d/%d, want 0/9", m.Source, m.Tag)
	}
	for i := range m.Data {
		if want := a[i] + b[i]; m.Data[i] != want {
			t.Fatalf("data[%d] = %v, want %v", i, m.Data[i], want)
		}
	}
	tensor.PutVector(m.Data)

	for _, dest := range []int{0, -1, 2} {
		if handled, err := e0.SendFill(dest, 1, a, b, tensor.AddInto); handled || err != nil {
			t.Fatalf("SendFill(dest=%d): handled=%v err=%v, want decline", dest, handled, err)
		}
	}
}
