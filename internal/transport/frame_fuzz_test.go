package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// FuzzDecodeFrame feeds arbitrary byte streams to the TCP frame decoder. The
// decoder's contract under hostile input: it either returns a well-formed
// message (whose announced length it honoured) or a descriptive error — it
// must never panic, never allocate from a corrupt length header, and never
// leak a pooled vector on an error path. The seed corpus covers the
// interesting boundaries: a valid frame, truncations at every section, an
// oversized length header, the exact element limit, and garbage.
func FuzzDecodeFrame(f *testing.F) {
	valid := appendFrame(nil, comm.Message{Source: 1, Tag: 7, Data: tensor.Vector{1.5, -2.25, 3}})
	f.Add(valid)                                                                          // well-formed frame
	f.Add(valid[:3])                                                                      // truncated header
	f.Add(valid[:12])                                                                     // header only, payload missing
	f.Add(valid[:len(valid)-5])                                                           // truncated payload
	f.Add(append([]byte{}, valid[:12]...))                                                // header with no body
	f.Add([]byte{})                                                                       // empty stream
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // all-ones header (oversized length)
	atLimit := make([]byte, 12)
	binary.LittleEndian.PutUint32(atLimit[8:12], uint32(maxFrameElements))
	f.Add(atLimit) // exactly at the element limit, truncated payload
	overLimit := make([]byte, 12)
	binary.LittleEndian.PutUint32(overLimit[8:12], uint32(maxFrameElements)+1)
	f.Add(overLimit) // one past the element limit
	multi := append(append([]byte{}, valid...), valid...)
	f.Add(multi) // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		before := tensor.ReadPoolStats()
		var scratch []byte
		r := bytes.NewReader(data)
		for {
			m, err := decodeFrame(r, &scratch)
			if err != nil {
				if err.Error() == "" {
					t.Fatal("decode error with empty message")
				}
				if !strings.Contains(err.Error(), "EOF") && err != io.EOF &&
					!strings.Contains(err.Error(), "transport") {
					t.Fatalf("decode error %q is not descriptive (no package context)", err)
				}
				break
			}
			if len(m.Data) > maxFrameElements {
				t.Fatalf("decoded frame with %d elements past the %d limit", len(m.Data), maxFrameElements)
			}
			tensor.PutVector(m.Data)
		}
		after := tensor.ReadPoolStats()
		if n := after.OutstandingSince(before); n != 0 {
			t.Fatalf("decode leaked %d pool leases on input %x%s", n, data, tensor.FormatLeaseReport())
		}
	})
}

// FuzzFrameRoundTrip fuzzes the encoder/decoder pair: any (source, tag,
// payload) message must survive append+decode bit for bit, including NaN and
// negative-zero payload bytes (the payload is reinterpreted from raw bytes to
// exercise every float pattern).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(int32(0), int32(0), []byte{})
	f.Add(int32(3), int32(-1), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(int32(-2), int32(1<<20), bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, source, tag int32, raw []byte) {
		n := len(raw) / 8
		payload := tensor.GetVector(n)
		for i := 0; i < n; i++ {
			payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8 : i*8+8]))
		}
		buf := appendFrame(nil, comm.Message{Source: int(source), Tag: int(tag), Data: payload})
		var scratch []byte
		got, err := decodeFrame(bytes.NewReader(buf), &scratch)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if got.Source != int(source) || got.Tag != int(tag) || len(got.Data) != n {
			t.Fatalf("round trip mangled header: got (%d, %d, %d)", got.Source, got.Tag, len(got.Data))
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(got.Data[i]) != binary.LittleEndian.Uint64(raw[i*8:i*8+8]) {
				t.Fatalf("payload bit pattern changed at element %d", i)
			}
		}
		tensor.PutVector(got.Data)
		tensor.PutVector(payload)
	})
}
