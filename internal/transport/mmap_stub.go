//go:build !unix

package transport

import (
	"fmt"
	"os"
	"runtime"
)

// mmapFile is unavailable without mmap: the cross-process shared-memory
// transport is unix-only. The in-process shm hub (NewShmHub / NewShmWorld)
// works everywhere.
func mmapFile(_ *os.File, _ int) ([]byte, func() error, error) {
	return nil, nil, fmt.Errorf("transport: cross-process shared-memory rings require mmap, unavailable on %s", runtime.GOOS)
}
