//go:build unix

package transport

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f shared and read-write. The returned cleanup
// unmaps the region; the caller owns unlinking the file.
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
