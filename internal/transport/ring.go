package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// This file implements the SPSC byte ring beneath the shared-memory transport
// (see shm.go): one directed ring per (producer rank, consumer rank) pair,
// laid out in a flat byte region so the same code runs over an in-process
// slice and an mmap-backed file shared between OS processes. The producer
// reserves a span, encodes the PR 2 frame format in place with the wire_le.go
// bulk codec, and publishes it with one atomic store; the consumer decodes
// straight into a pool-leased vector. A same-host frame exchange therefore
// performs zero syscalls and exactly one copy on each side (encode into the
// ring, decode out of it).
//
// Region layout (little endian, offsets cache-line separated so the two ends
// never false-share):
//
//	  0  magic    uint64  — ringMagic once the producer has initialized the region
//	 64  head     uint64  — consumer position, bytes consumed (monotonic)
//	128  tail     uint64  — producer position, bytes published (monotonic)
//	192  prodClosed uint32 — producer closed its end (EOF after drain)
//	256  consClosed uint32 — consumer closed its end (producer aborts)
//	320  consParked uint32 — consumer is parked; a committing producer must wake it
//	384  prodParked uint32 — producer is parked on a full ring; consumer wakes it
//	448  capacity uint64  — data-area size in bytes (power of two)
//	512  data[capacity]
//
// Record framing inside the data area (all records 8-byte aligned, so a
// complete frame's float payload — at offset 16 into the record — can be
// handed to the receiver as a zero-copy view of the ring, see ringalias.go):
//
//	uint32 recWord | payload
//
// The top two bits of recWord carry the record type, the rest the payload
// byte length. Complete frames carry the PR 2 wire format (12-byte header +
// little-endian float64s). Frames larger than the fragment threshold stream
// as a fragment-start record (full frame header + first chunk) followed by
// continuation records (raw payload bytes), so a ring a few hundred KiB large
// carries arbitrarily big gradients while the consumer drains concurrently —
// the ring itself pipelines the copy. A pad record skips the tail of the data
// area when a record would wrap.
const (
	ringOffMagic      = 0
	ringOffHead       = 64
	ringOffTail       = 128
	ringOffProdClosed = 192
	ringOffConsClosed = 256
	ringOffConsParked = 320
	ringOffProdParked = 384
	ringOffCapacity   = 448
	ringHdrSize       = 512

	ringMagic = 0xEA6E55D0_51C0FF33 // "eager-sgd ring v1"

	// Record types (top two bits of the record word).
	recFrame = 0 // complete frame: 12-byte header + payload
	recStart = 1 // fragment start: 12-byte header (count = total) + first chunk
	recCont  = 2 // fragment continuation: raw payload bytes
	recPad   = 3 // skip to the top of the data area (length bits ignored)

	recTypeShift = 30
	recLenMask   = 1<<recTypeShift - 1

	// ringFragmentBytes is the payload size above which a frame streams as
	// fragments. 128 KiB (16Ki float64s) keeps even the default 16Ki-element
	// pipeline segments in single records while letting an unsegmented
	// multi-MiB recursive-doubling frame flow through a modest ring.
	ringFragmentBytes = 128 << 10

	// DefaultRingBytes is the default data-area capacity of one directed
	// ring. Must comfortably exceed ringFragmentBytes so a fragment and its
	// bookkeeping always fit with room for the consumer to stay ahead.
	DefaultRingBytes = 1 << 19 // 512 KiB
)

// ErrRingClosed is returned when enqueueing into a ring whose consumer end
// has been closed.
var ErrRingClosed = errors.New("transport: ring closed")

// errRingCorrupt wraps consumer-side framing violations: a record word or
// frame header that cannot have been produced by this transport. It is the
// shared-memory analogue of a TCP decode failure and tears the peer down the
// same way.
var errRingCorrupt = errors.New("transport: ring framing corrupt")

// ringParker is how a ring end waits when it runs out of work or space after
// exhausting its spin budget. In-process rings park on a channel the opposite
// end signals; cross-process (mmap) rings fall back to escalating sleeps, so
// the hot path stays syscall-free and only an idle ring pays the timer.
type ringParker struct {
	wake chan struct{} // buffered(1); nil => sleep parking (cross-process)
}

func (p *ringParker) signal() {
	if p.wake == nil {
		return
	}
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// ringBuffer is one directed SPSC ring over a byte region. The producer side
// is internally serialized (prodMu): the comm layer may issue concurrent
// sends to one destination, and they are appended to the ring in admission
// order, preserving per-(source, tag) FIFO.
type ringBuffer struct {
	data   []byte
	mask   uint64
	maxRec int // payload-byte budget of one record (scaled down for tiny rings)

	head       *atomic.Uint64
	tail       *atomic.Uint64
	prodClosed *atomic.Uint32
	consClosed *atomic.Uint32
	consParked *atomic.Uint32
	prodParked *atomic.Uint32

	prodMu   sync.Mutex
	consWake ringParker // signaled by the producer after a commit
	prodWake ringParker // signaled by the consumer after freeing space

	// consPos is the consumer's private read cursor. It runs ahead of the
	// shared head whenever aliased spans (ringalias.go) are outstanding: head
	// only advances — freeing ring space for the producer — once the receiver
	// releases the aliased vectors, while consPos tracks what has been read.
	// With no aliases outstanding the two are equal. Owned by the consumer.
	consPos uint64

	// Consumer-side reassembly state for fragmented frames: the vector being
	// filled and the byte offset reached. Owned by the single consumer.
	pending     tensor.Vector
	pendingMsg  comm.Message
	pendingFill int

	// Alias-delivery state (ringalias.go): spans handed out as zero-copy
	// vectors and the deferred head advances queued behind them.
	aliasMu     sync.Mutex
	aliasActive atomic.Bool // any span entries pending (consumer fast-path check)
	aliasSpans  []aliasSpan // FIFO of consumed spans not yet freed to the producer
	aliasHeld   int         // unreleased alias entries among aliasSpans
	aliasReg    bool        // consumer-owned: ring is in the process alias table
	aliasRetire func()      // teardown deferred until the last alias is released

	region []byte       // full region (header + data), kept for cross-process unmap
	unmap  func() error // non-nil for mmap-backed regions the consumer attached
}

// ringAtomics binds the typed atomic views into a region. The region must be
// 8-byte aligned (heap allocations and mmap pages both are).
func (r *ringBuffer) bind(region []byte) {
	if uintptr(unsafe.Pointer(&region[0]))%8 != 0 {
		panic("transport: ring region is not 8-byte aligned")
	}
	r.region = region
	r.head = (*atomic.Uint64)(unsafe.Pointer(&region[ringOffHead]))
	r.tail = (*atomic.Uint64)(unsafe.Pointer(&region[ringOffTail]))
	r.prodClosed = (*atomic.Uint32)(unsafe.Pointer(&region[ringOffProdClosed]))
	r.consClosed = (*atomic.Uint32)(unsafe.Pointer(&region[ringOffConsClosed]))
	r.consParked = (*atomic.Uint32)(unsafe.Pointer(&region[ringOffConsParked]))
	r.prodParked = (*atomic.Uint32)(unsafe.Pointer(&region[ringOffProdParked]))
	r.consPos = r.head.Load()
}

// newRing creates an in-process ring with the given data capacity (rounded up
// to a power of two, minimum 4 KiB). Both ends park on channels.
func newRing(capacity int) *ringBuffer {
	capacity = ringCapacity(capacity)
	r := &ringBuffer{}
	r.bind(make([]byte, ringHdrSize+capacity))
	r.data = r.region[ringHdrSize:]
	r.mask = uint64(capacity - 1)
	r.maxRec = ringMaxRec(capacity)
	binary.LittleEndian.PutUint64(r.region[ringOffCapacity:], uint64(capacity))
	binary.LittleEndian.PutUint64(r.region[ringOffMagic:], ringMagic)
	r.consWake.wake = make(chan struct{}, 1)
	r.prodWake.wake = make(chan struct{}, 1)
	return r
}

// ringCapacity normalizes a requested capacity: power of two, at least 4 KiB.
func ringCapacity(capacity int) int {
	if capacity < 1<<12 {
		capacity = DefaultRingBytes
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return c
}

// ringMaxRec bounds one record's payload so a record never exceeds a quarter
// of the data area — the producer must always be able to make progress while
// the consumer holds the rest of the ring, whatever capacity was configured.
func ringMaxRec(capacity int) int {
	m := ringFragmentBytes
	if q := capacity / 4; q < m {
		m = q
	}
	return m
}

// enqueue appends m to the ring, blocking (with adaptive parking) while the
// ring is full. The encode is synchronous — m.Data is fully copied into the
// ring before the call returns — so the payload can be either owned (released
// here on every path, the Endpoint.Send ownership contract) or merely
// borrowed from the caller (the SendCopy fast path: never released). done
// aborts a blocked enqueue when the producing endpoint shuts down; a consumer
// that closed its end aborts it with ErrRingClosed.
func (r *ringBuffer) enqueue(m comm.Message, done <-chan struct{}, owned bool) error {
	if owned {
		defer tensor.PutVector(m.Data)
	}
	if len(m.Data) > maxFrameElements {
		return fmt.Errorf("%w: ring frame with %d elements exceeds the %d-element limit",
			ErrFrameTooLarge, len(m.Data), maxFrameElements)
	}
	r.prodMu.Lock()
	defer r.prodMu.Unlock()

	if 8*len(m.Data) <= r.maxRec {
		return r.writeRecord(recFrame, 12+8*len(m.Data), done, func(span []byte) {
			putFrameHeader(span, m)
			putFloats(span[12:], m.Data)
		})
	}

	// Fragment path: header + first chunk, then continuations. The consumer
	// reassembles into one pooled vector; the producer blocks on ring space
	// between chunks, which is exactly the pipelining that lets a small ring
	// carry a frame much larger than itself.
	elems := len(m.Data)
	chunk := r.maxRec / 8 // elements per fragment
	first := chunk
	if first > elems {
		first = elems
	}
	err := r.writeRecord(recStart, 12+8*first, done, func(span []byte) {
		putFrameHeader(span, m)
		putFloats(span[12:], m.Data[:first])
	})
	for off := first; err == nil && off < elems; off += chunk {
		end := off + chunk
		if end > elems {
			end = elems
		}
		part := m.Data[off:end]
		err = r.writeRecord(recCont, 8*len(part), done, func(span []byte) {
			putFloats(span, part)
		})
	}
	return err
}

// enqueueFill appends one complete frame whose float payload is produced by
// fill directly inside the reserved ring span: fill(dst, a, b) computes the
// payload into dst — a view of the span — from the caller's operands, fusing
// what would otherwise be a separate combine pass plus the encode copy into
// one write. Only frames that fit a single record qualify (fragments stream
// through the staged path), and only where the wire format doubles as memory
// representation (wireViewable); ok=false means the caller must fall back to
// a plain enqueue, with no reservation made. a and b remain caller-owned.
func (r *ringBuffer) enqueueFill(source, tag int, a, b tensor.Vector, fill func(dst, a, b tensor.Vector), done <-chan struct{}) (ok bool, err error) {
	count := len(a)
	if !wireViewable || count == 0 || count > maxFrameElements || 8*count > r.maxRec {
		return false, nil
	}
	r.prodMu.Lock()
	defer r.prodMu.Unlock()
	err = r.writeRecord(recFrame, 12+8*count, done, func(span []byte) {
		binary.LittleEndian.PutUint32(span[0:4], uint32(int32(source)))
		binary.LittleEndian.PutUint32(span[4:8], uint32(int32(tag)))
		binary.LittleEndian.PutUint32(span[8:12], uint32(count))
		if dst, viewed := floatsView(span[12:12+8*count], count); viewed {
			fill(dst, a, b)
			return
		}
		// Unreachable when wireViewable (record starts are 8-aligned, so the
		// payload at record offset 16 is too), but stay correct regardless.
		tmp := tensor.GetVector(count)
		fill(tmp, a, b)
		putFloats(span[12:12+8*count], tmp)
		tensor.PutVector(tmp)
	})
	return true, err
}

// putFrameHeader encodes the 12-byte PR 2 frame header into span. The count
// field always carries the frame's TOTAL element count, also for fragment
// starts — the consumer sizes its reassembly lease from it.
func putFrameHeader(span []byte, m comm.Message) {
	binary.LittleEndian.PutUint32(span[0:4], uint32(int32(m.Source)))
	binary.LittleEndian.PutUint32(span[4:8], uint32(int32(m.Tag)))
	binary.LittleEndian.PutUint32(span[8:12], uint32(len(m.Data)))
}

// writeRecord reserves a span of payloadLen bytes (plus the record word and
// any pad record), lets encode fill it in place, and publishes it with one
// atomic tail store, waking a parked consumer. It blocks while the ring lacks
// space: spinning, then yielding, then parking until the consumer frees room.
func (r *ringBuffer) writeRecord(recType int, payloadLen int, done <-chan struct{}, encode func(span []byte)) error {
	capacity := r.mask + 1
	need := uint64(recordSpan(payloadLen))
	tail := r.tail.Load()
	contig := capacity - (tail & r.mask)
	advance := need
	pad := false
	if need > contig {
		// The record will not fit before the wrap point: pad the tail of the
		// data area and start at the top.
		pad = true
		advance = contig + need
	}

	spins := 0
	for {
		if r.consClosed.Load() != 0 {
			return ErrRingClosed
		}
		free := capacity - (tail - r.head.Load())
		if advance <= free {
			break
		}
		select {
		case <-done:
			return ErrClosed
		default:
		}
		if !parkStep(&spins, &r.prodWake, r.prodParked, func() bool {
			return capacity-(tail-r.head.Load()) >= advance || r.consClosed.Load() != 0
		}, done) {
			return ErrClosed
		}
	}

	idx := tail & r.mask
	if pad {
		binary.LittleEndian.PutUint32(r.data[idx:], uint32(recPad)<<recTypeShift)
		idx = 0
	}
	binary.LittleEndian.PutUint32(r.data[idx:], uint32(recType)<<recTypeShift|uint32(payloadLen))
	encode(r.data[idx+4 : idx+4+uint64(payloadLen)])
	r.tail.Store(tail + advance)
	if r.consParked.Swap(0) != 0 {
		r.consWake.signal()
	}
	return nil
}

// recordSpan is the ring-space footprint of a record with the given payload
// length: the 4-byte record word plus the payload, rounded up to 8 bytes so
// every record — and hence every complete frame's float payload, 16 bytes in —
// stays 8-aligned. The alignment is what makes alias delivery (ringalias.go)
// possible: a float64 view of the payload needs a naturally aligned base.
func recordSpan(payloadLen int) int { return (4 + payloadLen + 7) &^ 7 }

// Adaptive parking budgets: a busy ring never leaves the spin phase, a
// bursty one burns a few Goscheds, and only a genuinely idle ring pays the
// park (channel wait in-process, escalating sleep cross-process). Spinning
// only pays when the opposite end can run in parallel: on a single-CPU
// schedule (GOMAXPROCS=1) every spin iteration is stolen from the very
// producer being waited on, so the budgets collapse to yield-then-park.
var (
	ringSpinBudget  = 2048
	ringYieldBudget = 64
)

func init() {
	if runtime.GOMAXPROCS(0) == 1 {
		ringSpinBudget = 0
		ringYieldBudget = 2
	}
}

// parkStep advances one step of the spin → yield → park escalation, shared
// by the rings and the broadcast segments. ready is re-checked after the
// parked flag is raised (the lost-wakeup guard: the opposite end reads the
// flag only after its own publish, so either it sees the flag and signals,
// or this end's re-check sees the publish). Returns false when done fired
// while parked.
func parkStep(spins *int, parker *ringParker, parked *atomic.Uint32, ready func() bool, done <-chan struct{}) bool {
	*spins++
	if *spins <= ringSpinBudget {
		return true
	}
	if *spins <= ringSpinBudget+ringYieldBudget {
		runtime.Gosched()
		return true
	}
	parked.Store(1)
	if ready() {
		parked.Store(0)
		return true
	}
	if parker.wake != nil {
		select {
		case <-parker.wake:
		case <-done:
			parked.Store(0)
			return false
		}
	} else {
		// Cross-process fallback: no shared wake channel exists, so sleep a
		// bounded, escalating amount. The opposite end clears the parked flag
		// on publish purely as a hint; correctness comes from re-checking.
		d := time.Duration(*spins-ringSpinBudget-ringYieldBudget) * 20 * time.Microsecond
		if d > time.Millisecond {
			d = time.Millisecond
		}
		select {
		case <-done:
			parked.Store(0)
			return false
		case <-time.After(d):
		}
	}
	parked.Store(0)
	return true
}

// closeProducer marks the producer end closed (EOF once drained) and wakes a
// parked consumer so it observes the close.
func (r *ringBuffer) closeProducer() {
	r.prodClosed.Store(1)
	if r.consParked.Swap(0) != 0 {
		r.consWake.signal()
	}
	r.consWake.signal()
}

// abortProducer marks the consumer end closed and wakes a parked producer so
// its blocked enqueue aborts with ErrRingClosed. It touches only the shared
// flags, so either end may call it — the consuming endpoint during its own
// Close, or on its outgoing ring toward a peer it has declared dead (the
// shared-memory analogue of closing a TCP connection to fail pending writes).
func (r *ringBuffer) abortProducer() {
	r.consClosed.Store(1)
	if r.prodParked.Swap(0) != 0 {
		r.prodWake.signal()
	}
	r.prodWake.signal()
}

// releasePending drops a half-reassembled frame back into the pool. Only the
// consumer may call it (the reassembly state is consumer-owned): the poller
// when it declares the producing peer dead, or Close after the poller has
// been joined.
func (r *ringBuffer) releasePending() {
	if r.pending != nil {
		tensor.PutVector(r.pending)
		r.pending = nil
		r.pendingFill = 0
	}
}

// ringResult classifies one tryDequeue outcome.
type ringResult int

const (
	ringEmpty ringResult = iota // nothing published (check closed for EOF)
	ringMsg                     // a complete message was decoded
	ringMore                    // progress was made (fragment consumed), poll again
	ringDead                    // producer closed and the ring is drained
)

// tryDequeue consumes at most one record without blocking. On ringMsg the
// returned message owns either a pool-leased vector or, for large complete
// frames, a zero-copy view of the ring span itself (ringalias.go) — the
// receiver releases both the same way, with tensor.PutVector. Framing
// violations return a descriptive error wrapping errRingCorrupt and poison
// the ring (the caller tears the peer down, mirroring a TCP decode failure).
func (r *ringBuffer) tryDequeue() (comm.Message, ringResult, error) {
	pos := r.consPos
	tail := r.tail.Load()
	if pos == tail {
		if r.prodClosed.Load() != 0 && pos == r.tail.Load() {
			return comm.Message{}, ringDead, nil
		}
		return comm.Message{}, ringEmpty, nil
	}
	capacity := r.mask + 1
	idx := pos & r.mask
	word := binary.LittleEndian.Uint32(r.data[idx:])
	recType := int(word >> recTypeShift)
	payloadLen := int(word & recLenMask)
	if recType == recPad {
		r.consumeRecord(pos, capacity-idx)
		return comm.Message{}, ringMore, nil
	}
	need := uint64(recordSpan(payloadLen))
	if need > capacity-idx || tail-pos < need {
		return comm.Message{}, ringEmpty, fmt.Errorf("%w: record of %d bytes exceeds the published span (type %d)",
			errRingCorrupt, payloadLen, recType)
	}
	span := r.data[idx+4 : idx+4+uint64(payloadLen)]

	switch recType {
	case recFrame:
		if r.pending != nil {
			return comm.Message{}, ringEmpty, fmt.Errorf("%w: complete frame interleaved with an unfinished fragment stream", errRingCorrupt)
		}
		if len(span) < 12 {
			return comm.Message{}, ringEmpty, fmt.Errorf("%w: frame record of %d bytes is shorter than a frame header", errRingCorrupt, len(span))
		}
		source, tag, count, err := ringFrameHeader(span)
		if err != nil {
			return comm.Message{}, ringEmpty, err
		}
		if len(span) < 12+8*count {
			return comm.Message{}, ringEmpty, fmt.Errorf("%w: truncated frame from rank %d (tag %d): record holds %d of the %d payload bytes announced",
				errRingCorrupt, source, tag, len(span)-12, 8*count)
		}
		if 8*count >= aliasMinBytes {
			if v, ok := floatsView(span[12:12+8*count], count); ok && r.consumeAliasRecord(pos, need, idx+16, uint64(8*count)) {
				return comm.Message{Source: source, Tag: tag, Data: v}, ringMsg, nil
			}
		}
		data := tensor.GetVector(count)
		getFloats(data, span[12:])
		r.consumeRecord(pos, need)
		return comm.Message{Source: source, Tag: tag, Data: data}, ringMsg, nil

	case recStart:
		if r.pending != nil {
			return comm.Message{}, ringEmpty, fmt.Errorf("%w: fragment start interleaved with an unfinished fragment stream", errRingCorrupt)
		}
		if payloadLen < 12 {
			return comm.Message{}, ringEmpty, fmt.Errorf("%w: fragment start of %d bytes is shorter than a frame header", errRingCorrupt, payloadLen)
		}
		source, tag, count, err := ringFrameHeader(span)
		if err != nil {
			return comm.Message{}, ringEmpty, err
		}
		chunk := (payloadLen - 12) / 8
		if chunk > count {
			return comm.Message{}, ringEmpty, fmt.Errorf("%w: fragment start carries %d elements of a %d-element frame", errRingCorrupt, chunk, count)
		}
		r.pending = tensor.GetVector(count)
		r.pendingMsg = comm.Message{Source: source, Tag: tag}
		getFloats(r.pending[:chunk], span[12:])
		r.pendingFill = chunk
		r.consumeRecord(pos, need)
		if r.pendingFill == count { // a degenerate single-fragment frame
			return r.finishPending(), ringMsg, nil
		}
		return comm.Message{}, ringMore, nil

	case recCont:
		if r.pending == nil {
			return comm.Message{}, ringEmpty, fmt.Errorf("%w: fragment continuation with no fragment stream open", errRingCorrupt)
		}
		chunk := payloadLen / 8
		if payloadLen%8 != 0 || r.pendingFill+chunk > len(r.pending) {
			return comm.Message{}, ringEmpty, fmt.Errorf("%w: fragment continuation of %d bytes overflows the %d-element frame (have %d)",
				errRingCorrupt, payloadLen, len(r.pending), r.pendingFill)
		}
		getFloats(r.pending[r.pendingFill:r.pendingFill+chunk], span)
		r.pendingFill += chunk
		r.consumeRecord(pos, need)
		if r.pendingFill == len(r.pending) {
			return r.finishPending(), ringMsg, nil
		}
		return comm.Message{}, ringMore, nil

	default:
		return comm.Message{}, ringEmpty, fmt.Errorf("%w: unknown record type %d", errRingCorrupt, recType)
	}
}

// finishPending hands the reassembled frame to the caller.
func (r *ringBuffer) finishPending() comm.Message {
	m := r.pendingMsg
	m.Data = r.pending
	r.pending = nil
	r.pendingFill = 0
	return m
}

// advance publishes the consumer's progress and wakes a parked producer. In
// alias mode the head advance is deferred instead — see consumeRecord.
func (r *ringBuffer) advance(head, n uint64) {
	r.head.Store(head + n)
	if r.prodParked.Swap(0) != 0 {
		r.prodWake.signal()
	}
}

// initRingRegion initializes a zeroed shared region (freshly truncated backing
// file) as a ring of the given data capacity and returns a ringBuffer bound to
// it. The magic word is published last, with an atomic store: a consumer
// process polling the region attaches only after it observes the magic, by
// which point the capacity and zeroed positions are visible.
func initRingRegion(region []byte, capacity int) (*ringBuffer, error) {
	if len(region) != ringHdrSize+capacity {
		return nil, fmt.Errorf("transport: ring region of %d bytes does not match header + %d-byte capacity", len(region), capacity)
	}
	r := &ringBuffer{}
	r.bind(region)
	r.data = region[ringHdrSize:]
	r.mask = uint64(capacity - 1)
	r.maxRec = ringMaxRec(capacity)
	binary.LittleEndian.PutUint64(region[ringOffCapacity:], uint64(capacity))
	(*atomic.Uint64)(unsafe.Pointer(&region[ringOffMagic])).Store(ringMagic)
	return r, nil
}

// attachRingRegion binds a ringBuffer to a region another process initialized.
// It validates the magic word and the header's capacity against the mapped
// size before trusting either.
func attachRingRegion(region []byte) (*ringBuffer, error) {
	if len(region) < ringHdrSize {
		return nil, fmt.Errorf("transport: ring region of %d bytes is shorter than the %d-byte header", len(region), ringHdrSize)
	}
	if (*atomic.Uint64)(unsafe.Pointer(&region[0])).Load() != ringMagic {
		return nil, fmt.Errorf("transport: ring region lacks the magic word (producer not initialized yet?)")
	}
	capacity := binary.LittleEndian.Uint64(region[ringOffCapacity:])
	if capacity == 0 || capacity&(capacity-1) != 0 || uint64(len(region)) != ringHdrSize+capacity {
		return nil, fmt.Errorf("transport: ring header announces %d-byte capacity, region holds %d bytes (corrupt or mismatched mapping)",
			capacity, len(region))
	}
	r := &ringBuffer{}
	r.bind(region)
	r.data = region[ringHdrSize:]
	r.mask = capacity - 1
	r.maxRec = ringMaxRec(int(capacity))
	return r, nil
}

// ringFrameHeader decodes and validates the 12-byte frame header at the start
// of span. The element count is validated in the unsigned domain against the
// transport-wide limit, mirroring decodeFrame: a corrupt header must never
// size an allocation.
func ringFrameHeader(span []byte) (source, tag, count int, err error) {
	source = int(int32(binary.LittleEndian.Uint32(span[0:4])))
	tag = int(int32(binary.LittleEndian.Uint32(span[4:8])))
	count64 := uint64(binary.LittleEndian.Uint32(span[8:12]))
	if count64 > maxFrameElements {
		return 0, 0, 0, fmt.Errorf("%w: header from rank %d (tag %d) announces %d elements, limit %d (corrupt or hostile length header)",
			ErrFrameTooLarge, source, tag, count64, maxFrameElements)
	}
	return source, tag, int(count64), nil
}
