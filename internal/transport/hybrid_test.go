package transport

import (
	"errors"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// recvFrom pulls one message from an inbox with a deadline.
func recvFrom(t *testing.T, in <-chan comm.Message) comm.Message {
	t.Helper()
	select {
	case m, ok := <-in:
		if !ok {
			t.Fatal("inbox closed while a message was expected")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a message")
	}
	panic("unreachable")
}

// TestHybridRoutesByColocation proves the hybrid sends colocated traffic
// through the local (ring) path and remote traffic through the remote path,
// by watching the messages arrive at the distinct underlying hubs, and that
// the merged inbox carries arrivals from both paths.
func TestHybridRoutesByColocation(t *testing.T) {
	before := tensor.ReadPoolStats()
	const size = 4
	local := NewShmHubFor(size, []int{0, 1}, 1<<16) // ranks 0,1 share a host
	remote := NewHub(size)                          // stands in for the TCP mesh
	colocated := []bool{true, true, false, false}
	hy := NewHybridEndpoint(local.Endpoint(0), remote.Endpoint(0), colocated)

	// Colocated send lands on the ring hub's endpoint for rank 1.
	if err := hy.Send(1, comm.Message{Source: 0, Tag: 7, Data: leasedVector(4, 1)}); err != nil {
		t.Fatalf("colocated send: %v", err)
	}
	m := recvFrom(t, local.Endpoint(1).Inbox())
	if m.Source != 0 || m.Tag != 7 || m.Data[0] != 1 {
		t.Fatalf("ring path delivered %+v", m)
	}
	tensor.PutVector(m.Data)

	// Remote send lands on the fallback hub's endpoint for rank 2.
	if err := hy.Send(2, comm.Message{Source: 0, Tag: 8, Data: leasedVector(4, 2)}); err != nil {
		t.Fatalf("remote send: %v", err)
	}
	m = recvFrom(t, remote.Endpoint(2).Inbox())
	if m.Source != 0 || m.Tag != 8 || m.Data[0] != 2 {
		t.Fatalf("remote path delivered %+v", m)
	}
	tensor.PutVector(m.Data)

	// Arrivals from both paths surface in the one merged inbox.
	if err := local.Endpoint(1).Send(0, comm.Message{Source: 1, Tag: 9, Data: leasedVector(4, 3)}); err != nil {
		t.Fatalf("ring send toward hybrid: %v", err)
	}
	if err := remote.Endpoint(2).Send(0, comm.Message{Source: 2, Tag: 10, Data: leasedVector(4, 4)}); err != nil {
		t.Fatalf("remote send toward hybrid: %v", err)
	}
	got := map[int]float64{}
	for i := 0; i < 2; i++ {
		m := recvFrom(t, hy.Inbox())
		got[m.Source] = m.Data[0]
		tensor.PutVector(m.Data)
	}
	if got[1] != 3 || got[2] != 4 {
		t.Fatalf("merged inbox saw %v, want sources 1->3 and 2->4", got)
	}

	// An out-of-range destination releases the payload and errors.
	if err := hy.Send(size, comm.Message{Source: 0, Tag: 0, Data: leasedVector(4, 0)}); err == nil {
		t.Fatal("send to out-of-range rank succeeded")
	}

	if err := hy.Close(); err != nil {
		t.Fatalf("hybrid close: %v", err)
	}
	// Sends after close fail on both paths and still consume the payload.
	if err := hy.Send(1, comm.Message{Source: 0, Tag: 0, Data: leasedVector(4, 0)}); !errors.Is(err, ErrRingClosed) && err == nil {
		t.Fatal("colocated send after close succeeded")
	}
	local.Endpoint(1).Close()
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("hybrid routing leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}

// TestHybridPeerFailureFromRingPath: a notifier registered on the hybrid
// observes a colocated peer vanishing on the ring path.
func TestHybridPeerFailureFromRingPath(t *testing.T) {
	const size = 3
	local := NewShmHubFor(size, []int{0, 1}, 1<<16)
	remote := NewHub(size)
	colocated := []bool{true, true, false}
	hy := NewHybridEndpoint(local.Endpoint(0), remote.Endpoint(0), colocated)
	defer hy.Close()

	failed := make(chan int, 4)
	hy.NotifyPeerFailure(func(rank int, cause error) { failed <- rank })

	local.Endpoint(1).Close() // the colocated peer exits
	select {
	case r := <-failed:
		if r != 1 {
			t.Fatalf("failure reported for rank %d, want 1", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ring-path peer failure never reached the hybrid notifier")
	}
}
