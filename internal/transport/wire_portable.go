//go:build !(amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm)

package transport

import (
	"encoding/binary"
	"io"
	"math"
	"net"

	"eagersgd/internal/tensor"
)

// Portable fallback for big-endian (or otherwise unknown) architectures: the
// wire format stays little-endian, converted element by element.

// appendFloats appends data's wire encoding (little-endian float64s) to buf.
func appendFloats(buf []byte, data []float64) []byte {
	var tmp [8]byte
	for _, x := range data {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(x))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// encodePayload appends data's wire bytes to bufs for a vectored write,
// converting element by element into enc (grown as needed and recycled by the
// caller). Nothing aliases the vector afterwards, so its lease is released
// immediately and the retained return is nil.
func encodePayload(bufs net.Buffers, data tensor.Vector, enc []byte) (net.Buffers, tensor.Vector, []byte) {
	enc = appendFloats(enc[:0], data)
	tensor.PutVector(data)
	if len(enc) > 0 {
		bufs = append(bufs, enc)
	}
	return bufs, nil, enc
}

// putFloats writes data's wire encoding (little-endian float64s) into dst,
// which must hold exactly 8*len(data) bytes, converting element by element.
func putFloats(dst []byte, data []float64) {
	for i, x := range data {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(x))
	}
}

// getFloats fills data from its wire encoding in src (8*len(data) bytes).
func getFloats(data tensor.Vector, src []byte) {
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}

// wireViewable: on big-endian targets wire and memory representations
// differ, so the ring transport's alias delivery and fill-send paths are
// compiled out in favour of the copying fallbacks.
const wireViewable = false

// floatsView would reinterpret a wire span as a float64 vector in place; on
// big-endian targets the representations differ, so there is no view and the
// ring transport's alias delivery falls back to copying.
func floatsView(span []byte, count int) (tensor.Vector, bool) {
	return nil, false
}

// readFloats fills data with count little-endian float64s read from r,
// staging the raw bytes in *scratch (grown once, reused across calls).
func readFloats(r io.Reader, data tensor.Vector, scratch *[]byte) error {
	need := 8 * len(data)
	buf := *scratch
	if cap(buf) < need {
		buf = make([]byte, need)
		*scratch = buf
	} else {
		buf = buf[:need]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}
