//go:build !(amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm)

package transport

import (
	"encoding/binary"
	"io"
	"math"

	"eagersgd/internal/tensor"
)

// Portable fallback for big-endian (or otherwise unknown) architectures: the
// wire format stays little-endian, converted element by element.

// appendFloats appends data's wire encoding (little-endian float64s) to buf.
func appendFloats(buf []byte, data []float64) []byte {
	var tmp [8]byte
	for _, x := range data {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(x))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// readFloats fills data with count little-endian float64s read from r,
// staging the raw bytes in *scratch (grown once, reused across calls).
func readFloats(r io.Reader, data tensor.Vector, scratch *[]byte) error {
	need := 8 * len(data)
	buf := *scratch
	if cap(buf) < need {
		buf = make([]byte, need)
		*scratch = buf
	} else {
		buf = buf[:need]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}
