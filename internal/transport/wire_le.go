//go:build amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm

package transport

import (
	"io"
	"net"
	"unsafe"

	"eagersgd/internal/tensor"
)

// On little-endian architectures the wire format (little-endian float64s) is
// the in-memory representation, so encoding is a single bulk copy of the
// vector's bytes and decoding reads the socket directly into the pooled
// vector's backing array. This removes the per-element bit-conversion loops
// from the TCP hot path — at 64Ki-element gradients the conversion loops, not
// the sockets, were the transport's dominant cost.

// floatBytes reinterprets data's backing array as bytes without copying.
// Callers must not let the returned slice outlive data.
func floatBytes(data []float64) []byte {
	if len(data) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), 8*len(data))
}

// appendFloats appends data's wire encoding (little-endian float64s) to buf.
func appendFloats(buf []byte, data []float64) []byte {
	return append(buf, floatBytes(data)...)
}

// readFloats fills data with count little-endian float64s read from r. The
// scratch buffer is unused on little-endian targets (the read lands directly
// in data's backing array); the parameter keeps the signature shared with the
// portable fallback.
func readFloats(r io.Reader, data tensor.Vector, _ *[]byte) error {
	if len(data) == 0 {
		return nil
	}
	_, err := io.ReadFull(r, floatBytes(data))
	return err
}

// encodePayload appends data's wire bytes to bufs for a vectored write. On
// little-endian targets the vector's backing array is aliased directly — no
// copy at all; the kernel reads it during writev — so the lease is retained
// (second return) and released by the caller only after the batch has been
// written. The enc staging buffer is unused here and returned untouched.
func encodePayload(bufs net.Buffers, data tensor.Vector, enc []byte) (net.Buffers, tensor.Vector, []byte) {
	if len(data) > 0 {
		bufs = append(bufs, floatBytes(data))
	}
	return bufs, data, enc
}

// putFloats writes data's wire encoding (little-endian float64s) into dst,
// which must hold exactly 8*len(data) bytes. On little-endian architectures
// this is one bulk copy — the in-place encode the shared-ring transport
// reserves its spans for.
func putFloats(dst []byte, data []float64) {
	copy(dst, floatBytes(data))
}

// getFloats fills data from its wire encoding in src (8*len(data) bytes). One
// bulk copy straight into the pooled vector's backing array.
func getFloats(data tensor.Vector, src []byte) {
	if len(data) == 0 {
		return
	}
	copy(floatBytes(data), src)
}

// wireViewable reports at compile time whether floatsView can ever succeed —
// whether a wire span doubles as in-memory float64 storage on this
// architecture. Gates the ring transport's alias delivery and fill-send
// paths before any reservation work.
const wireViewable = true

// floatsView reinterprets an 8-byte-aligned little-endian wire span as a
// float64 vector without copying — the zero-copy receive the shared-ring
// transport's alias delivery is built on. Returns false when the span cannot
// be viewed in place (empty, or misaligned base); the caller copies instead.
func floatsView(span []byte, count int) (tensor.Vector, bool) {
	if count == 0 || uintptr(unsafe.Pointer(&span[0]))%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&span[0])), count), true
}
