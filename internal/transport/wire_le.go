//go:build amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm

package transport

import (
	"io"
	"unsafe"

	"eagersgd/internal/tensor"
)

// On little-endian architectures the wire format (little-endian float64s) is
// the in-memory representation, so encoding is a single bulk copy of the
// vector's bytes and decoding reads the socket directly into the pooled
// vector's backing array. This removes the per-element bit-conversion loops
// from the TCP hot path — at 64Ki-element gradients the conversion loops, not
// the sockets, were the transport's dominant cost.

// floatBytes reinterprets data's backing array as bytes without copying.
// Callers must not let the returned slice outlive data.
func floatBytes(data []float64) []byte {
	if len(data) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), 8*len(data))
}

// appendFloats appends data's wire encoding (little-endian float64s) to buf.
func appendFloats(buf []byte, data []float64) []byte {
	return append(buf, floatBytes(data)...)
}

// readFloats fills data with count little-endian float64s read from r. The
// scratch buffer is unused on little-endian targets (the read lands directly
// in data's backing array); the parameter keeps the signature shared with the
// portable fallback.
func readFloats(r io.Reader, data tensor.Vector, _ *[]byte) error {
	if len(data) == 0 {
		return nil
	}
	_, err := io.ReadFull(r, floatBytes(data))
	return err
}
