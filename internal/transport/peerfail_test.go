package transport

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// dialTCPPair builds a two-rank TCP world on the given ports, skipping the
// test when loopback TCP is unavailable.
func dialTCPPair(t *testing.T, basePort int) [2]*TCPEndpoint {
	t.Helper()
	eps, err := NewTCPEndpoints(2, basePort)
	if err != nil {
		t.Skipf("TCP unavailable in this environment: %v", err)
	}
	return [2]*TCPEndpoint{eps[0], eps[1]}
}

// TestSendRecvSurfacesPeerReadLoopDeath is the regression test for the
// blocked-forever class: a SendRecv whose peer's read loop died used to hang
// until some unrelated timeout. With the failure notifier wired (as every
// communicator does), the death is scoped to that peer, the blocked exchange
// returns a typed PeerDownError, and the root cause — the endpoint's recorded
// ReadError — is in the error chain instead of a bare timeout.
func TestSendRecvSurfacesPeerReadLoopDeath(t *testing.T) {
	eps := dialTCPPair(t, 37100)
	c0 := comm.NewCommunicator(eps[0])
	c1 := comm.NewCommunicator(eps[1])
	defer c0.Close()
	defer c1.Close()

	type result struct {
		v   tensor.Vector
		err error
	}
	done := make(chan result, 1)
	go func() {
		// Rank 1 exchanges with rank 0; rank 0 never answers because its
		// stream to rank 1 is about to die.
		v, _, err := c1.SendRecv(0, 5, make(tensor.Vector, 4), 0, 5)
		done <- result{v, err}
	}()
	time.Sleep(20 * time.Millisecond)

	// Corrupt rank 0's stream toward rank 1: an oversized length header kills
	// rank 1's read loop for that connection.
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[8:12], 0xfffffff0)
	if _, err := eps[0].writers[1].conn.Write(hdr[:]); err != nil {
		t.Fatalf("write corrupt frame: %v", err)
	}

	select {
	case r := <-done:
		if r.err == nil {
			tensor.PutVector(r.v)
			t.Fatal("SendRecv succeeded although the peer's read loop died")
		}
		if !errors.Is(r.err, comm.ErrPeerDown) {
			t.Fatalf("err = %v, want ErrPeerDown", r.err)
		}
		if !errors.Is(r.err, ErrFrameTooLarge) {
			t.Fatalf("err = %v does not surface the read loop's decode failure", r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SendRecv still blocked after the peer's read loop died")
	}
	if err := eps[1].ReadError(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadError = %v, want ErrFrameTooLarge", err)
	}
	// The failure is scoped to the dead peer: the endpoint itself stays open,
	// and rank 1 can tell exactly who died.
	if !c1.PeerDown(0) {
		t.Fatal("peer 0 not marked down on rank 1's communicator")
	}
}

// TestSendRecvCancelStillHonorsContextOnDeadPeer pins the ctx half of the
// contract: even without transport-level detection (the peer is silent, not
// dead), a canceled SendRecv returns promptly.
func TestSendRecvCancelStillHonorsContextOnDeadPeer(t *testing.T) {
	eps := dialTCPPair(t, 37140)
	c0 := comm.NewCommunicator(eps[0])
	c1 := comm.NewCommunicator(eps[1])
	defer c0.Close()
	defer c1.Close()

	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := c1.SendRecvCancel(0, 6, make(tensor.Vector, 4), 0, 6, cancel)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, comm.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled SendRecv did not return")
	}
}

// TestPeerEOFMarksPeerDownWithNotifier: a peer process exiting cleanly (EOF
// on its connections) is a rank failure for the survivors — with a notifier
// registered, the survivor marks it down instead of closing its endpoint.
func TestPeerEOFMarksPeerDownWithNotifier(t *testing.T) {
	eps := dialTCPPair(t, 37180)
	c0 := comm.NewCommunicator(eps[0])
	defer c0.Close()

	var mu sync.Mutex
	var failed []int
	eps[0].NotifyPeerFailure(func(rank int, cause error) {
		mu.Lock()
		failed = append(failed, rank)
		mu.Unlock()
	})
	// Rank 1's process "exits": its endpoint closes, sending EOF to rank 0.
	eps[1].Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(failed)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer EOF not reported to the failure notifier")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if failed[0] != 1 {
		t.Fatalf("failed = %v, want [1]", failed)
	}
	mu.Unlock()
}
