package transport

import (
	"encoding/binary"
	"math"
	"runtime"
	"strings"
	"testing"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// seedRingRecord encodes one record into buf at off and returns the next
// offset, for building fuzz seed corpora that look like real ring contents.
func seedRingRecord(buf []byte, off int, recType int, payload []byte) int {
	binary.LittleEndian.PutUint32(buf[off:], uint32(recType)<<recTypeShift|uint32(len(payload)))
	copy(buf[off+4:], payload)
	return off + recordSpan(len(payload))
}

// FuzzRingRecords feeds arbitrary byte streams to the ring consumer as if a
// producer had published them. The contract under hostile contents mirrors
// FuzzDecodeFrame: tryDequeue either yields a well-formed message (whose
// announced length it honoured) or a descriptive error — it must never panic,
// never size an allocation from a corrupt header, and never leak a pooled
// vector, including a half-reassembled fragment stream that is abandoned.
func FuzzRingRecords(f *testing.F) {
	frame := make([]byte, 12+3*8)
	binary.LittleEndian.PutUint32(frame[0:], 1) // source
	binary.LittleEndian.PutUint32(frame[4:], 7) // tag
	binary.LittleEndian.PutUint32(frame[8:], 3) // count
	for i := 0; i < 3; i++ {
		binary.LittleEndian.PutUint64(frame[12+8*i:], math.Float64bits(float64(i)+0.5))
	}

	valid := make([]byte, 64)
	seedRingRecord(valid, 0, recFrame, frame)
	f.Add(valid) // one well-formed complete frame

	twoFrames := make([]byte, 128)
	seedRingRecord(twoFrames, seedRingRecord(twoFrames, 0, recFrame, frame), recFrame, frame)
	f.Add(twoFrames) // two frames back to back

	frag := make([]byte, 128)
	start := make([]byte, 12+8) // header announcing 3 elements, carrying 1
	copy(start, frame[:12+8])
	cont := frame[12+8:] // the remaining 2 elements as a continuation
	seedRingRecord(frag, seedRingRecord(frag, 0, recStart, start), recCont, cont)
	f.Add(frag) // fragmented frame, start + continuation

	abandoned := make([]byte, 64)
	seedRingRecord(abandoned, 0, recStart, start)
	f.Add(abandoned) // fragment stream with no continuation: must not leak

	orphan := make([]byte, 32)
	seedRingRecord(orphan, 0, recCont, cont)
	f.Add(orphan) // continuation with no open stream

	oversized := make([]byte, 32)
	badHdr := append([]byte{}, frame[:12]...)
	binary.LittleEndian.PutUint32(badHdr[8:], uint32(maxFrameElements)+1)
	seedRingRecord(oversized, 0, recFrame, badHdr)
	f.Add(oversized) // element count one past the limit

	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // pad marker alone
	f.Add([]byte{})                       // empty ring

	f.Fuzz(func(t *testing.T, data []byte) {
		before := tensor.ReadPoolStats()
		r := newRing(4096)
		n := len(data)
		if n > len(r.data) {
			n = len(r.data)
		}
		n &^= 7 // tail is always 8-byte aligned in a real ring
		copy(r.data, data[:n])
		r.tail.Store(uint64(n))

		for i := 0; i < 4096; i++ {
			m, res, err := r.tryDequeue()
			if err != nil {
				if err.Error() == "" {
					t.Fatal("ring error with empty message")
				}
				if !strings.Contains(err.Error(), "transport") {
					t.Fatalf("ring error %q is not descriptive (no package context)", err)
				}
				break
			}
			if res == ringMsg {
				if len(m.Data) > maxFrameElements {
					t.Fatalf("decoded frame with %d elements past the %d limit", len(m.Data), maxFrameElements)
				}
				tensor.PutVector(m.Data)
				continue
			}
			if res == ringEmpty || res == ringDead {
				break
			}
		}
		// An abandoned fragment stream leaves a consumer-owned lease behind;
		// the endpoint releases it when it declares the peer dead or closes.
		r.releasePending()
		if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
			t.Fatalf("ring consumption leaked %d pool leases on input %x%s", n, data, tensor.FormatLeaseReport())
		}
	})
}

// FuzzRingRoundTrip fuzzes the producer/consumer pair end to end: any
// (source, tag, payload) message must survive enqueue + dequeue bit for bit
// across an adversarially small ring — exercising wrap-around pads, the
// fragment path, and producer blocking (a concurrent consumer drains while
// the producer streams).
func FuzzRingRoundTrip(f *testing.F) {
	f.Add(int32(0), int32(0), []byte{}, uint8(0))
	f.Add(int32(3), int32(-1), []byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Add(int32(-2), int32(1<<20), make([]byte, 8*300), uint8(0)) // forces fragmentation in a 4 KiB ring
	f.Add(int32(9), int32(2), make([]byte, 8*2000), uint8(2))

	f.Fuzz(func(t *testing.T, source, tag int32, raw []byte, capSel uint8) {
		before := tensor.ReadPoolStats()
		n := len(raw) / 8
		payload := tensor.GetVector(n)
		for i := 0; i < n; i++ {
			payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8 : i*8+8]))
		}
		r := newRing(1 << (12 + int(capSel)%3)) // 4–16 KiB
		done := make(chan struct{})
		defer close(done)

		type result struct {
			m   comm.Message
			err error
		}
		got := make(chan result, 1)
		go func() {
			for {
				m, res, err := r.tryDequeue()
				if err != nil {
					got <- result{err: err}
					return
				}
				if res == ringMsg {
					got <- result{m: m}
					return
				}
				if res == ringEmpty {
					runtime.Gosched()
				}
			}
		}()
		if err := r.enqueue(comm.Message{Source: int(source), Tag: int(tag), Data: payload}, done, true); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
		res := <-got
		if res.err != nil {
			t.Fatalf("round trip failed: %v", res.err)
		}
		m := res.m
		if m.Source != int(source) || m.Tag != int(tag) || len(m.Data) != n {
			t.Fatalf("round trip mangled header: got (%d, %d, %d)", m.Source, m.Tag, len(m.Data))
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(m.Data[i]) != binary.LittleEndian.Uint64(raw[i*8:i*8+8]) {
				t.Fatalf("payload bit pattern changed at element %d", i)
			}
		}
		tensor.PutVector(m.Data)
		if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
			t.Fatalf("round trip leaked %d pool leases%s", n, tensor.FormatLeaseReport())
		}
	})
}
