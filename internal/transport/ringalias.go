package transport

import (
	"sync"
	"unsafe"

	"eagersgd/internal/tensor"
)

// Alias delivery: large complete frames are handed to the receiver as float64
// views of the ring span itself instead of decode copies — the second of the
// two copies a classic copy-in/copy-out shared-memory transport pays, and the
// dominant cost of the shm hot path at gradient sizes. The receiver releases
// the view with tensor.PutVector exactly like a pool lease; a process-wide
// AliasReleaser registry routes that release back to the owning ring, which
// only then advances the shared head and returns the span to its producer.
//
// The consumer therefore keeps two cursors: consPos (private, what has been
// read) and head (shared, what has been freed). While aliased spans are
// outstanding, every consumed record — aliased or not — queues a span entry
// behind them, because head can only advance monotonically: a copied record
// behind an unreleased alias stays pinned until the alias is released.
// Entries released in order collapse into their predecessor, so the queue
// stays proportional to the number of outstanding aliases, which the
// aliasMinBytes floor bounds by capacity/aliasMinBytes.
//
// Aliasing tightens the release contract (an unreleased alias pins ring space
// the way an unread TCP socket buffer pins its sender), so only bulk frames
// are aliased: small control traffic — and everything in a ring too small to
// matter — keeps the copy path and the loose "forgetting to release only
// costs a GC" contract.

const (
	// aliasMinBytes is the payload floor for alias delivery. 16 KiB keeps
	// every alias large enough that the saved memmove dominates the tracking
	// overhead, bounds the span queue, and leaves small-frame traffic (control
	// messages, the chaos suites' toy gradients) on the copy path. A ring can
	// alias only when its record budget reaches the floor, i.e. capacity of
	// at least 4*aliasMinBytes.
	aliasMinBytes = 16 << 10

	// maxAliasSpans caps the span queue; beyond it new frames fall back to
	// copying. With entry collapsing the queue needs at most two entries per
	// outstanding alias, so this is a backstop, not a working limit.
	maxAliasSpans = 512
)

// aliasSpan is one consumed stretch of the ring awaiting its head advance:
// either an aliased frame (released when the receiver puts the vector back)
// or a run of copied/pad/fragment records queued behind one (born released).
type aliasSpan struct {
	end      uint64 // ring position after this span (next record's start)
	payStart uint64 // data-area offset of the aliased payload; 0 for fillers
	payLen   uint64 // payload byte length; 0 for fillers
	released bool
}

// ringAliasTable is the process-wide registry mapping ring data regions to
// their rings, installed as the tensor pool's AliasReleaser by the first ring
// that hands out an alias. PutVector consults it before pooling: one mutex
// and a linear scan over the live aliasing rings (a handful per endpoint).
type ringAliasTable struct {
	mu     sync.Mutex
	rings  []*ringBuffer
	bcasts []*bcastRegion // broadcast segments (bcast.go): registered from birth
}

var (
	aliasTable       ringAliasTable
	aliasInstallHook sync.Once
)

// ReleaseAlias implements tensor.AliasReleaser: if v's backing array lies in
// a registered ring's data area, the owning span is released (head advances
// past every span freed by it) and true is returned. Sub-slices of the
// delivered vector match too — release is by address containment.
func (t *ringAliasTable) ReleaseAlias(v tensor.Vector) bool {
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(v)))
	t.mu.Lock()
	for i, r := range t.rings {
		base := uintptr(unsafe.Pointer(unsafe.SliceData(r.data)))
		if addr < base || addr >= base+uintptr(len(r.data)) {
			continue
		}
		retired := r.releaseAlias(uint64(addr - base))
		var teardown func()
		if retired {
			t.rings = append(t.rings[:i], t.rings[i+1:]...)
			teardown = r.aliasRetire
			r.aliasRetire = nil
		}
		t.mu.Unlock()
		if teardown != nil {
			teardown()
		}
		return true
	}
	for i, b := range t.bcasts {
		base := uintptr(unsafe.Pointer(unsafe.SliceData(b.data)))
		if addr < base || addr >= base+uintptr(len(b.data)) {
			continue
		}
		if b.releaseAliasAt(uint64(addr - base)) {
			t.bcasts = append(t.bcasts[:i], t.bcasts[i+1:]...)
		}
		t.mu.Unlock()
		return true
	}
	t.mu.Unlock()
	return false
}

// removeBcastLocked drops a retired broadcast region from the table. Caller
// holds t.mu.
func (t *ringAliasTable) removeBcastLocked(b *bcastRegion) {
	for i, reg := range t.bcasts {
		if reg == b {
			t.bcasts = append(t.bcasts[:i], t.bcasts[i+1:]...)
			return
		}
	}
}

// ensureAliasRegistered puts the ring in the process alias table (installing
// the table as the pool's releaser on first use). Consumer-owned; called
// before the first alias escapes.
func (r *ringBuffer) ensureAliasRegistered() {
	if r.aliasReg {
		return
	}
	aliasInstallHook.Do(func() { tensor.SetAliasReleaser(&aliasTable) })
	aliasTable.mu.Lock()
	aliasTable.rings = append(aliasTable.rings, r)
	aliasTable.mu.Unlock()
	r.aliasReg = true
}

// consumeRecord publishes that the consumer has fully processed the record at
// pos: consPos always advances; the shared head advances immediately unless
// aliased spans are outstanding, in which case the span queues behind them
// (collapsing into a released predecessor).
func (r *ringBuffer) consumeRecord(pos, n uint64) {
	r.consPos = pos + n
	if !r.aliasActive.Load() {
		r.advance(pos, n)
		return
	}
	r.aliasMu.Lock()
	if len(r.aliasSpans) == 0 {
		// The releaser drained the queue after our fast-path check.
		r.aliasMu.Unlock()
		r.advance(pos, n)
		return
	}
	if last := &r.aliasSpans[len(r.aliasSpans)-1]; last.released {
		last.end = pos + n
	} else {
		r.aliasSpans = append(r.aliasSpans, aliasSpan{end: pos + n, released: true})
	}
	r.aliasMu.Unlock()
}

// consumeAliasRecord records an aliased span: consPos advances past it but
// the head advance is deferred until the receiver releases the view. Returns
// false (and consumes nothing) when the span queue is at its backstop cap —
// the caller copies instead.
func (r *ringBuffer) consumeAliasRecord(pos, n, payStart, payLen uint64) bool {
	r.ensureAliasRegistered()
	r.aliasMu.Lock()
	if len(r.aliasSpans) >= maxAliasSpans {
		r.aliasMu.Unlock()
		return false
	}
	r.aliasSpans = append(r.aliasSpans, aliasSpan{end: pos + n, payStart: payStart, payLen: payLen})
	r.aliasHeld++
	r.aliasActive.Store(true)
	r.aliasMu.Unlock()
	r.consPos = pos + n
	return true
}

// releaseAlias marks the span containing data-area offset off released and
// advances head past the released prefix of the queue. Called by the table
// with its lock held; returns true when the ring was retired (closed and now
// drained) and should leave the table.
func (r *ringBuffer) releaseAlias(off uint64) bool {
	r.aliasMu.Lock()
	defer r.aliasMu.Unlock()
	for i := range r.aliasSpans {
		s := &r.aliasSpans[i]
		if !s.released && off >= s.payStart && off < s.payStart+s.payLen {
			s.released = true
			r.aliasHeld--
			break
		}
	}
	r.drainAliasLocked()
	return r.aliasRetire != nil && r.aliasHeld == 0 && len(r.aliasSpans) == 0
}

// drainAliasLocked pops the released prefix of the span queue, publishing the
// head advance and waking a parked producer. Caller holds aliasMu.
func (r *ringBuffer) drainAliasLocked() {
	i := 0
	for i < len(r.aliasSpans) && r.aliasSpans[i].released {
		i++
	}
	if i == 0 {
		return
	}
	end := r.aliasSpans[i-1].end
	r.aliasSpans = append(r.aliasSpans[:0], r.aliasSpans[i:]...)
	if len(r.aliasSpans) == 0 {
		r.aliasActive.Store(false)
	}
	r.head.Store(end)
	if r.prodParked.Swap(0) != 0 {
		r.prodWake.signal()
	}
}

// retireAliases detaches the ring from alias delivery at consumer close.
// teardown (the unmap of an attached cross-process region) runs immediately
// when no aliases are outstanding; otherwise it is deferred — and the ring
// stays registered — until the receiver releases the last aliased vector, so
// a late tensor.PutVector still finds the ring and never reaches the pool
// with transport-owned (soon unmapped) memory. Only the closing endpoint may
// call it, after the poller has been joined.
func (r *ringBuffer) retireAliases(teardown func()) {
	aliasTable.mu.Lock()
	r.aliasMu.Lock()
	if r.aliasHeld > 0 {
		r.aliasRetire = teardown
		if r.aliasRetire == nil {
			r.aliasRetire = func() {} // mark retirement pending even without work
		}
		r.aliasMu.Unlock()
		aliasTable.mu.Unlock()
		return
	}
	if r.aliasReg {
		for i, reg := range aliasTable.rings {
			if reg == r {
				aliasTable.rings = append(aliasTable.rings[:i], aliasTable.rings[i+1:]...)
				break
			}
		}
		r.aliasReg = false
	}
	r.aliasMu.Unlock()
	aliasTable.mu.Unlock()
	if teardown != nil {
		teardown()
	}
}
