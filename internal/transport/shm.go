package transport

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// The shared-memory transport: one directed SPSC ring (ring.go) per peer
// pair, a single poller goroutine per endpoint sweeping its incoming rings,
// and adaptive parking so idle ranks burn no cores. In-process the rings live
// on the heap and the poller parks on a channel; cross-process they are
// mmap-backed files and parking falls back to escalating sleeps. Either way
// the data path is identical — and performs zero syscalls per frame.

// ShmHub connects size in-process endpoints through heap-backed rings. It is
// the shared-memory analogue of Hub, but endpoints have independent
// lifetimes like TCP endpoints: closing one rank's endpoint looks to its
// peers like that rank exiting (ring EOF), not a whole-world shutdown.
type ShmHub struct {
	size int
	eps  []*ShmEndpoint
}

// NewShmHub creates an in-process shared-ring hub for size ranks with the
// default per-ring capacity.
func NewShmHub(size int) *ShmHub { return NewShmHubRing(size, DefaultRingBytes) }

// NewShmHubRing creates an in-process shared-ring hub with an explicit
// per-ring data capacity (rounded up to a power of two).
func NewShmHubRing(size, ringBytes int) *ShmHub {
	members := make([]int, size)
	for r := range members {
		members[r] = r
	}
	return NewShmHubFor(size, members, ringBytes)
}

// NewShmHubFor creates a hub connecting only the given member ranks of a
// size-rank world: rings and endpoints exist solely for member pairs. This is
// the building block of mixed-transport worlds, where each host group gets a
// hub carrying its colocated traffic while remote pairs stay on TCP.
// Endpoint panics for non-member ranks.
func NewShmHubFor(size int, members []int, ringBytes int) *ShmHub {
	if size <= 0 {
		panic(fmt.Sprintf("transport: shm hub size %d must be positive", size))
	}
	member := make([]bool, size)
	for _, r := range members {
		if r < 0 || r >= size {
			panic(fmt.Sprintf("transport: shm hub member %d out of range [0,%d)", r, size))
		}
		member[r] = true
	}
	h := &ShmHub{size: size, eps: make([]*ShmEndpoint, size)}
	wakes := make([]chan struct{}, size)
	for _, r := range members {
		wakes[r] = make(chan struct{}, 1)
	}
	rings := make([][]*ringBuffer, size) // [producer][consumer]
	for p := 0; p < size; p++ {
		rings[p] = make([]*ringBuffer, size)
		if !member[p] {
			continue
		}
		for c := 0; c < size; c++ {
			if p == c || !member[c] {
				continue
			}
			rb := newRing(ringBytes)
			// All of a consumer's rings share its endpoint's wake channel, so
			// the poller parks in one place however many peers it has.
			rb.consWake.wake = wakes[c]
			rings[p][c] = rb
		}
	}
	// One broadcast segment per member (bcast.go): that member produces,
	// every other member consumes, parking on its endpoint's wake channel.
	bcasts := make([]*bcastRegion, size)
	for _, p := range members {
		reg := newBcastRegion(p, size, DefaultBcastBytes, member)
		reg.prodWake.wake = make(chan struct{}, 1)
		for _, c := range members {
			if c != p {
				reg.consWake[c] = ringParker{wake: wakes[c]}
			}
		}
		bcasts[p] = reg
	}
	for _, r := range members {
		in := make([]*ringBuffer, size)
		out := make([]*ringBuffer, size)
		for p := 0; p < size; p++ {
			in[p] = rings[p][r]
			out[p] = rings[r][p]
		}
		h.eps[r] = newShmEndpoint(r, size, in, out, wakes[r])
		h.eps[r].bcOut = bcasts[r]
		for p := 0; p < size; p++ {
			if p != r && bcasts[p] != nil {
				h.eps[r].bcIn[p] = bcasts[p].reader(r)
			}
		}
	}
	return h
}

// Size returns the number of ranks connected by the hub.
func (h *ShmHub) Size() int { return h.size }

// Endpoint returns the endpoint for the given rank.
func (h *ShmHub) Endpoint(rank int) *ShmEndpoint {
	if rank < 0 || rank >= h.size {
		panic(fmt.Sprintf("transport: rank %d out of range [0,%d)", rank, h.size))
	}
	if h.eps[rank] == nil {
		panic(fmt.Sprintf("transport: rank %d is not a member of this shm hub", rank))
	}
	return h.eps[rank]
}

// Close closes every endpoint of the hub.
func (h *ShmHub) Close() error {
	for _, ep := range h.eps {
		if ep != nil {
			ep.Close()
		}
	}
	return nil
}

// ShmEndpoint implements comm.Endpoint over per-peer SPSC rings. One poller
// goroutine sweeps the incoming rings, decoding frames straight into
// pool-leased vectors; sends reserve a span in the outgoing ring and encode
// in place. It also implements comm.PeerFailureNotifier with the same
// semantics as TCPEndpoint: a peer closing its rings (EOF) or corrupting one
// fails that peer, not the endpoint.
type ShmEndpoint struct {
	rank  int
	size  int
	in    []*ringBuffer // indexed by producing peer; nil at own rank
	out   []*ringBuffer // indexed by consuming peer; nil at own rank
	wake  chan struct{} // poller park channel; nil => sleep parking (cross-process)
	inbox chan comm.Message
	done  chan struct{} // closed by Close; unblocks enqueues, deliveries, the poller

	mu      sync.Mutex
	closed  bool
	started bool           // poller launched (first Inbox or SetDeliver call)
	wg      sync.WaitGroup // the poller
	senders sync.WaitGroup // in-flight deliverLocal calls; drained before closing the inbox

	// deliverFn, when set, is the comm.DirectSource sink: the poller hands
	// decoded frames straight to it instead of the inbox. It is latched
	// before the poller starts and never changes, so the poller reads it
	// without synchronization; self-sends keep the inbox path (one delivery
	// path per source either way).
	deliverFn func(m comm.Message)

	readMu   sync.Mutex
	readErr  error              // first ring corruption observed, kept for diagnostics
	onFail   []func(int, error) // peer-failure handlers (NotifyPeerFailure)
	failures map[int]error      // per-peer failures observed so far, for replay

	dead []bool // poller-owned: rings no longer swept (peer EOF or corrupt)

	// Broadcast segments (bcast.go): bcOut is the region this rank produces
	// into (nil without one — cross-process endpoints, for now), bcIn the
	// readers over colocated peers' regions, bcDead the poller-owned marks
	// for regions no longer swept.
	bcOut  *bcastRegion
	bcIn   []*bcastReader
	bcDead []bool

	cleanups []func() // cross-process only: munmap + unlink, run at the end of Close
}

func newShmEndpoint(rank, size int, in, out []*ringBuffer, wake chan struct{}) *ShmEndpoint {
	e := &ShmEndpoint{
		rank:  rank,
		size:  size,
		in:    in,
		out:   out,
		wake:  wake,
		inbox: make(chan comm.Message, DefaultInboxDepth),
		done:  make(chan struct{}),
		dead:  make([]bool, size),
	}
	e.bcIn = make([]*bcastReader, size)
	e.bcDead = make([]bool, size)
	return e
}

// startPoller launches the consumer goroutine once. The poller starts lazily
// — on the first Inbox or SetDeliver call — so the delivery mode is decided
// before the first frame is decoded and every message of the endpoint's
// lifetime travels exactly one path.
func (e *ShmEndpoint) startPoller() {
	e.mu.Lock()
	if !e.started && !e.closed {
		e.started = true
		e.wg.Add(1)
		go e.pollLoop()
	}
	e.mu.Unlock()
}

// SetDeliver installs the comm.DirectSource sink and starts the poller in
// direct mode. If the poller is already running (something consumed Inbox
// first) the call is ignored: mixing delivery paths for one source could
// reorder messages, so the mode is latched by whoever starts the poller.
func (e *ShmEndpoint) SetDeliver(fn func(m comm.Message)) {
	e.mu.Lock()
	if !e.started && !e.closed {
		e.deliverFn = fn
		e.started = true
		e.wg.Add(1)
		go e.pollLoop()
	}
	e.mu.Unlock()
}

// Rank returns this endpoint's rank.
func (e *ShmEndpoint) Rank() int { return e.rank }

// Size returns the number of ranks in the job.
func (e *ShmEndpoint) Size() int { return e.size }

// Inbox returns the stream of messages addressed to this rank. The first
// call starts the poller in inbox mode (unless SetDeliver got there first).
func (e *ShmEndpoint) Inbox() <-chan comm.Message {
	e.startPoller()
	return e.inbox
}

// NotifyPeerFailure registers the handler invoked when a peer's ring dies
// mid-job (ring EOF or framing corruption). Failures observed before
// registration are replayed immediately. Semantics mirror
// TCPEndpoint.NotifyPeerFailure.
func (e *ShmEndpoint) NotifyPeerFailure(fn func(rank int, cause error)) {
	// Failure detection is the poller observing ring EOF/corruption, so
	// registering interest starts it (in inbox mode unless SetDeliver already
	// chose direct).
	e.startPoller()
	e.readMu.Lock()
	e.onFail = append(e.onFail, fn)
	replay := make(map[int]error, len(e.failures))
	for r, err := range e.failures {
		replay[r] = err
	}
	e.readMu.Unlock()
	for r, err := range replay {
		fn(r, err)
	}
}

// recordPeerFailure stores the failure for replay and returns the registered
// handlers (nil if none).
func (e *ShmEndpoint) recordPeerFailure(peer int, cause error) []func(int, error) {
	e.readMu.Lock()
	defer e.readMu.Unlock()
	if e.failures == nil {
		e.failures = make(map[int]error)
	}
	if e.failures[peer] == nil {
		e.failures[peer] = cause
	}
	return e.onFail
}

// ReadError returns the first ring corruption observed by the poller (nil if
// none), the shared-memory analogue of TCPEndpoint.ReadError.
func (e *ShmEndpoint) ReadError() error {
	e.readMu.Lock()
	defer e.readMu.Unlock()
	return e.readErr
}

// Send enqueues m into the destination's ring: a span is reserved, the frame
// encoded in place, and the commit published with one atomic store — no
// syscall anywhere. Sending to self forwards the payload to the local inbox
// without encoding. Send consumes m.Data on every path, upholding the
// Endpoint.Send ownership contract; while the destination ring is full it
// blocks (adaptive parking), the flow control the contract advertises.
func (e *ShmEndpoint) Send(dest int, m comm.Message) error {
	return e.send(dest, m, true)
}

// SendBorrowed is the comm.BorrowingSender fast path: the ring encode is
// synchronous, so the payload can be copied straight out of the caller's
// buffer — no pool snapshot — and ownership stays with the caller on every
// path. Sending to self still snapshots (the local inbox hand-off retains
// the slice).
func (e *ShmEndpoint) SendBorrowed(dest int, m comm.Message) error {
	return e.send(dest, m, false)
}

// SendFill is the comm.FillSender in-place path: the outgoing frame's payload
// span is reserved in the ring and fill computes it there, fusing the
// caller's combine pass with the encode. handled=false (self-sends, missing
// ring, frames past the single-record budget) tells the caller to fall back
// to a staged send; nothing was reserved.
func (e *ShmEndpoint) SendFill(dest, tag int, a, b tensor.Vector, fill func(dst, a, b tensor.Vector)) (bool, error) {
	if dest < 0 || dest >= e.size || dest == e.rank {
		return false, nil
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return true, ErrClosed
	}
	r := e.out[dest]
	if r == nil {
		return false, nil
	}
	ok, err := r.enqueueFill(e.rank, tag, a, b, fill, e.done)
	if !ok {
		return false, nil
	}
	if err != nil && errors.Is(err, ErrRingClosed) {
		return true, fmt.Errorf("transport: ring to rank %d: %w", dest, err)
	}
	return true, err
}

// BroadcastGroup returns the colocated peer ranks that consume this rank's
// broadcast segment (comm.GroupBroadcaster); nil without a segment.
func (e *ShmEndpoint) BroadcastGroup() []int {
	if e.bcOut == nil {
		return nil
	}
	return e.bcOut.group
}

// BroadcastBudget returns the payload-byte budget of one broadcast block —
// the largest payload SendBroadcast accepts. Zero without a segment.
func (e *ShmEndpoint) BroadcastBudget() int {
	if e.bcOut == nil {
		return 0
	}
	return e.bcOut.maxBlock
}

// SendBroadcast publishes data (borrowed from the caller, fully encoded
// before return) once into this rank's broadcast segment; every rank in
// BroadcastGroup receives it as a message tagged (this rank, tag). It blocks
// while the region is full — the same flow control as a ring send — and
// fails with ErrFrameTooLarge past BroadcastBudget.
func (e *ShmEndpoint) SendBroadcast(tag int, data tensor.Vector) error {
	if e.bcOut == nil {
		return fmt.Errorf("transport: rank %d has no broadcast segment", e.rank)
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.bcOut.publish(tag, data, e.done)
}

func (e *ShmEndpoint) send(dest int, m comm.Message, owned bool) error {
	if dest < 0 || dest >= e.size {
		if owned {
			tensor.PutVector(m.Data)
		}
		return fmt.Errorf("transport: destination %d out of range [0,%d)", dest, e.size)
	}
	if dest == e.rank {
		if !owned {
			m.Data = tensor.GetVectorCopy(m.Data)
		}
		return e.deliverLocal(m)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		if owned {
			tensor.PutVector(m.Data)
		}
		return ErrClosed
	}
	e.mu.Unlock()
	r := e.out[dest]
	if r == nil {
		if owned {
			tensor.PutVector(m.Data)
		}
		return fmt.Errorf("transport: no ring to rank %d", dest)
	}
	if err := r.enqueue(m, e.done, owned); err != nil {
		if errors.Is(err, ErrRingClosed) {
			return fmt.Errorf("transport: ring to rank %d: %w", dest, err)
		}
		return err
	}
	return nil
}

// deliverLocal forwards m (ownership included) to the local inbox, releasing
// the payload if the endpoint is closing.
func (e *ShmEndpoint) deliverLocal(m comm.Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		tensor.PutVector(m.Data)
		return ErrClosed
	}
	// Registering under the lock while closed is still false guarantees Close
	// cannot start draining senders before this delivery is visible to it.
	e.senders.Add(1)
	e.mu.Unlock()
	defer e.senders.Done()
	select {
	case e.inbox <- m:
		return nil
	case <-e.done:
		tensor.PutVector(m.Data)
		return ErrClosed
	}
}

// Close tears down the endpoint: outgoing rings are marked producer-closed
// (peers observe EOF after draining), the poller is woken and joined, any
// half-reassembled frames are released, peers blocked enqueueing toward this
// rank are aborted, and the inbox is closed once in-flight local deliveries
// have drained. Safe to call more than once.
func (e *ShmEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	e.mu.Unlock()

	for _, r := range e.out {
		if r != nil {
			r.closeProducer()
		}
	}
	if e.bcOut != nil {
		e.bcOut.closeProducer()
	}
	e.wg.Wait() // the poller exits via done; after this the consumer state is ours
	for _, r := range e.in {
		if r != nil {
			r.releasePending()
			r.abortProducer()
			// Detach from alias delivery; an attached region's unmap waits
			// for the receiver to release any still-outstanding alias.
			r.retireAliases(unmapTeardown(r.unmap))
		}
	}
	for _, br := range e.bcIn {
		if br != nil {
			// Leave peers' reclamation quorums so this rank's sweep debt
			// cannot pin their regions.
			br.reg.deadConsumer(e.rank)
		}
	}
	if e.bcOut != nil {
		e.bcOut.retire()
	}
	e.senders.Wait()
	close(e.inbox)
	for _, fn := range e.cleanups {
		fn()
	}
	return nil
}

// pollLoop is the endpoint's single consumer: it sweeps the incoming rings
// round-robin (one record per ring per sweep, so a firehose peer cannot
// starve the others), decoding complete frames into the inbox. When every
// ring is empty it escalates — spin, then runtime.Gosched, then park: the
// parked flag is raised on each ring, the rings are re-checked (the
// lost-wakeup guard), and only then does it block on the wake channel (or an
// escalating sleep cross-process) until a producer commits. It exits when
// Close fires done.
func (e *ShmEndpoint) pollLoop() {
	defer e.wg.Done()
	spins := 0
	for {
		select {
		case <-e.done:
			return
		default:
		}
		progress := false
		for peer := 0; peer < e.size; peer++ {
			r := e.in[peer]
			if r == nil || e.dead[peer] {
				continue
			}
			m, res, err := r.tryDequeue()
			switch {
			case err != nil:
				e.dead[peer] = true
				r.releasePending()
				e.handleRingFailure(peer, err)
			case res == ringMsg:
				progress = true
				if e.deliverFn != nil {
					e.deliverFn(m)
				} else if !e.deliver(m) {
					return
				}
			case res == ringMore:
				progress = true
			case res == ringDead:
				e.dead[peer] = true
				e.handleRingFailure(peer, fmt.Errorf("transport: rank %d closed its ring (process exited?): %w", peer, io.EOF))
			}
		}
		for peer := 0; peer < e.size; peer++ {
			br := e.bcIn[peer]
			if br == nil || e.bcDead[peer] {
				continue
			}
			m, res, err := br.tryDequeue()
			switch {
			case err != nil:
				e.bcDead[peer] = true
				e.handleRingFailure(peer, err)
			case res == ringMsg:
				progress = true
				if e.deliverFn != nil {
					e.deliverFn(m)
				} else if !e.deliver(m) {
					return
				}
			case res == ringMore:
				progress = true
			case res == ringDead:
				// The producer closed its segment: its ring EOF reports the
				// exit, the drained region just stops being swept.
				e.bcDead[peer] = true
			}
		}
		if progress {
			spins = 0
			continue
		}
		spins++
		if spins <= ringSpinBudget {
			continue
		}
		if spins <= ringSpinBudget+ringYieldBudget {
			runtime.Gosched()
			continue
		}
		if !e.parkPoller(spins) {
			return
		}
		spins = 0
	}
}

// parkPoller blocks the poller until a producer commits or Close fires.
// Returns false when the endpoint is closing.
func (e *ShmEndpoint) parkPoller(spins int) bool {
	for peer, r := range e.in {
		if r != nil && !e.dead[peer] {
			r.consParked.Store(1)
		}
	}
	for peer, br := range e.bcIn {
		if br != nil && !e.bcDead[peer] {
			br.reg.consParked[e.rank].Store(1)
		}
	}
	defer func() {
		for peer, r := range e.in {
			if r != nil && !e.dead[peer] {
				r.consParked.Store(0)
			}
		}
		for peer, br := range e.bcIn {
			if br != nil && !e.bcDead[peer] {
				br.reg.consParked[e.rank].Store(0)
			}
		}
	}()
	// Lost-wakeup guard: a producer reads the parked flag only after its
	// commit is published, so either it sees the flag and signals, or this
	// re-check sees the commit. The consumer's own cursor is compared, not
	// the shared head — head lags consPos while aliased spans are out, and
	// a fully-read ring must still park.
	for peer, r := range e.in {
		if r == nil || e.dead[peer] {
			continue
		}
		if r.consPos != r.tail.Load() || r.prodClosed.Load() != 0 {
			return true
		}
	}
	for peer, br := range e.bcIn {
		if br == nil || e.bcDead[peer] {
			continue
		}
		if br.pos != br.reg.tail.Load() || br.reg.prodClosed.Load() != 0 {
			return true
		}
	}
	if e.wake != nil {
		select {
		case <-e.wake:
			return true
		case <-e.done:
			return false
		}
	}
	// Cross-process: no shared wake channel exists, so sleep a bounded,
	// escalating amount; producers still clear the parked flags as a hint.
	d := time.Duration(spins-ringSpinBudget-ringYieldBudget) * 20 * time.Microsecond
	if d > time.Millisecond {
		d = time.Millisecond
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-e.done:
		return false
	}
}

// deliver forwards a decoded message (ownership included) to the inbox.
// Returns false when the endpoint is closing, releasing the payload.
func (e *ShmEndpoint) deliver(m comm.Message) bool {
	select {
	case e.inbox <- m:
		return true
	case <-e.done:
		tensor.PutVector(m.Data)
		return false
	}
}

// handleRingFailure reacts to an incoming ring dying: nothing during our own
// shutdown; otherwise the producing peer is unreachable (closed its ring —
// EOF — or corrupted it). Corruption is recorded for ReadError diagnostics.
// With a peer-failure handler the failure is scoped to the peer: our
// outgoing ring toward it is aborted (failing pending sends, like closing a
// TCP connection) and the handler invoked so the comm layer marks the rank
// down. Without a handler, corruption closes the whole endpoint so blocked
// receivers observe ErrClosed promptly instead of hanging; a clean EOF does
// not.
func (e *ShmEndpoint) handleRingFailure(peer int, cause error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return
	}
	if !errors.Is(cause, io.EOF) {
		e.readMu.Lock()
		if e.readErr == nil {
			e.readErr = cause
		}
		e.readMu.Unlock()
		// A corrupt peer's broadcast segment is as untrustworthy as its ring;
		// a clean EOF keeps draining the segment (the peer published before
		// closing, and the region carries its own EOF).
		e.bcDead[peer] = true
	}
	if e.bcOut != nil {
		// The peer can no longer consume our segment: drop it from the
		// reclamation quorum so its sweep debt cannot pin the region.
		e.bcOut.deadConsumer(peer)
	}
	if fns := e.recordPeerFailure(peer, cause); len(fns) > 0 {
		if r := e.out[peer]; r != nil {
			r.abortProducer() // fail pending sends toward the dead peer too
		}
		for _, fn := range fns {
			fn(peer, cause)
		}
		return
	}
	if !errors.Is(cause, io.EOF) {
		// Close must run off this goroutine: it joins the poller.
		go e.Close()
	}
}

// NewShmWorld builds an in-process shared-ring hub for size ranks and returns
// one ready-to-use Communicator per rank. Unlike NewInprocWorld, each
// communicator owns its endpoint's lifetime (closing one looks like that rank
// exiting, as with TCP); close all of them.
func NewShmWorld(size int) []*comm.Communicator {
	hub := NewShmHub(size)
	world := make([]*comm.Communicator, size)
	for r := 0; r < size; r++ {
		world[r] = comm.NewCommunicator(hub.Endpoint(r))
	}
	return world
}

// ShmConfig describes one rank of a cross-process shared-memory job: a
// directory every rank can reach (ideally tmpfs, e.g. /dev/shm), this
// process's rank, and the job size.
type ShmConfig struct {
	Dir         string
	Rank        int
	Size        int
	RingBytes   int           // per-ring data capacity (default DefaultRingBytes)
	AttachRetry time.Duration // total time to keep waiting for peers' rings (default 5s)
}

// unmapTeardown adapts a ring's consumer-side unmap (nil for in-process
// rings) into the teardown retireAliases defers behind outstanding aliases.
func unmapTeardown(unmap func() error) func() {
	if unmap == nil {
		return nil
	}
	return func() { unmap() }
}

// shmRingPath names the backing file of the (producer → consumer) ring.
func shmRingPath(dir string, producer, consumer int) string {
	return filepath.Join(dir, fmt.Sprintf("eagersgd-ring-%d-%d.shm", producer, consumer))
}

// NewShmEndpoint joins a cross-process shared-memory job: it creates and
// initializes the mmap-backed rings this rank produces (unlinked again on
// Close), attaches to the rings its peers produce (retrying until each
// appears or the retry budget is exhausted), and starts the poller. Requires
// a platform with mmap; elsewhere it fails with a descriptive error.
func NewShmEndpoint(cfg ShmConfig) (*ShmEndpoint, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("transport: shm job size %d must be positive", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("transport: rank %d out of range for job size %d", cfg.Rank, cfg.Size)
	}
	capacity := ringCapacity(cfg.RingBytes)
	retry := cfg.AttachRetry
	if retry <= 0 {
		retry = 5 * time.Second
	}

	in := make([]*ringBuffer, cfg.Size)
	out := make([]*ringBuffer, cfg.Size)
	var cleanups []func() // endpoint-owned teardown, run at the end of Close
	var undo []func()     // constructor-failure teardown: everything mapped so far
	fail := func(err error) (*ShmEndpoint, error) {
		for _, fn := range undo {
			fn()
		}
		return nil, err
	}

	// Create the rings this rank produces first, so peers polling for them
	// see every rank's rings appear regardless of startup order.
	for peer := 0; peer < cfg.Size; peer++ {
		if peer == cfg.Rank {
			continue
		}
		path := shmRingPath(cfg.Dir, cfg.Rank, peer)
		region, unmap, err := createRingFile(path, ringHdrSize+capacity)
		if err != nil {
			return fail(fmt.Errorf("transport: create ring %s: %w", path, err))
		}
		remove := func() {
			unmap()
			os.Remove(path)
		}
		cleanups = append(cleanups, remove)
		undo = append(undo, remove)
		r, err := initRingRegion(region, capacity)
		if err != nil {
			return fail(err)
		}
		out[peer] = r
	}

	// Attach to the rings our peers produce.
	deadline := time.Now().Add(retry)
	for peer := 0; peer < cfg.Size; peer++ {
		if peer == cfg.Rank {
			continue
		}
		path := shmRingPath(cfg.Dir, peer, cfg.Rank)
		r, unmap, err := attachRingFile(path, deadline)
		if err != nil {
			return fail(fmt.Errorf("transport: attach ring %s: %w", path, err))
		}
		// The consumer-side unmap is owned by the ring, not the endpoint
		// cleanup list: Close routes it through retireAliases so the region
		// outlives any zero-copy views still held by the receiver.
		r.unmap = unmap
		undo = append(undo, func() { unmap() })
		in[peer] = r
	}

	e := newShmEndpoint(cfg.Rank, cfg.Size, in, out, nil)
	e.cleanups = cleanups
	return e, nil
}

// createRingFile creates (or re-truncates) a ring backing file of the given
// size and maps it shared.
func createRingFile(path string, size int) ([]byte, func() error, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	// Truncating to zero first wipes any leftover from a crashed run, so a
	// stale magic word can never let a peer attach to garbage.
	if err := f.Truncate(0); err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(int64(size)); err != nil {
		return nil, nil, err
	}
	return mmapFile(f, size)
}

// attachRingFile opens a peer's ring backing file, waiting until the file
// exists, has its full size, and carries the magic word (the producer
// publishes it last), then binds a ringBuffer to the mapping.
func attachRingFile(path string, deadline time.Time) (*ringBuffer, func() error, error) {
	var lastErr error
	for {
		r, unmap, err := tryAttachRingFile(path)
		if err == nil {
			return r, unmap, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("peer ring never became ready: %w", lastErr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func tryAttachRingFile(path string) (*ringBuffer, func() error, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() < ringHdrSize {
		return nil, nil, fmt.Errorf("ring file %s holds %d bytes, producer still initializing", path, st.Size())
	}
	region, unmap, err := mmapFile(f, int(st.Size()))
	if err != nil {
		return nil, nil, err
	}
	r, err := attachRingRegion(region)
	if err != nil {
		unmap()
		return nil, nil, err
	}
	return r, unmap, nil
}
