package transport

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

func TestHubSizeAndEndpoints(t *testing.T) {
	h := NewHub(3)
	defer h.Close()
	if h.Size() != 3 {
		t.Fatalf("Size = %d", h.Size())
	}
	for r := 0; r < 3; r++ {
		ep := h.Endpoint(r)
		if ep.Rank() != r || ep.Size() != 3 {
			t.Fatalf("endpoint %d has rank %d size %d", r, ep.Rank(), ep.Size())
		}
	}
}

func TestHubInvalidConstruction(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHub(0) },
		func() { NewHub(-3) },
		func() { NewHubDepth(2, 0) },
		func() { NewHub(2).Endpoint(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHubDelivery(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	a, b := h.Endpoint(0), h.Endpoint(1)
	if err := a.Send(1, comm.Message{Source: 0, Tag: 3, Data: tensor.Vector{1, 2}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Inbox():
		if m.Source != 0 || m.Tag != 3 || !m.Data.Equal(tensor.Vector{1, 2}) {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestHubSendToSelf(t *testing.T) {
	h := NewHub(1)
	defer h.Close()
	ep := h.Endpoint(0)
	if err := ep.Send(0, comm.Message{Source: 0, Tag: 1, Data: tensor.Vector{7}}); err != nil {
		t.Fatal(err)
	}
	m := <-ep.Inbox()
	if m.Data[0] != 7 {
		t.Fatalf("self-delivery broken: %+v", m)
	}
}

func TestHubSendInvalidDest(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	if err := h.Endpoint(0).Send(7, comm.Message{}); err == nil {
		t.Fatal("expected error for invalid destination")
	}
}

func TestHubSendAfterClose(t *testing.T) {
	h := NewHub(2)
	ep := h.Endpoint(0)
	h.Close()
	if err := ep.Send(1, comm.Message{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Closing twice must be a no-op.
	if err := h.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestHubCloseClosesInbox(t *testing.T) {
	h := NewHub(2)
	ep := h.Endpoint(1)
	h.Close()
	select {
	case _, ok := <-ep.Inbox():
		if ok {
			t.Fatal("expected closed inbox")
		}
	case <-time.After(time.Second):
		t.Fatal("inbox not closed")
	}
}

func TestHubFIFOPerPair(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	a, b := h.Endpoint(0), h.Endpoint(1)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(1, comm.Message{Source: 0, Tag: i, Data: nil}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m := <-b.Inbox()
		if m.Tag != i {
			t.Fatalf("message %d arrived with tag %d (reordered)", i, m.Tag)
		}
	}
}

func TestNewInprocWorldRoundTrip(t *testing.T) {
	w := NewInprocWorld(4)
	defer w[0].Close()
	for r := 1; r < 4; r++ {
		if err := w[0].Send(r, 0, tensor.Vector{float64(r)}); err != nil {
			t.Fatal(err)
		}
		data, _, err := w[r].Recv(0, 0)
		if err != nil || data[0] != float64(r) {
			t.Fatalf("rank %d: %v %v", r, data, err)
		}
	}
}

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	f := func(source int32, tag int32, payload []float64) bool {
		m := comm.Message{Source: int(source), Tag: int(tag), Data: tensor.Vector(payload)}
		buf := encodeFrame(m)
		got, err := decodeFrame(bytes.NewReader(buf))
		if err != nil {
			return false
		}
		if got.Source != m.Source || got.Tag != m.Tag || len(got.Data) != len(m.Data) {
			return false
		}
		for i := range m.Data {
			// NaN payloads must survive the round trip too, so compare bit
			// patterns rather than using ==.
			if math.Float64bits(got.Data[i]) != math.Float64bits(m.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFrameRejectsHugeLength(t *testing.T) {
	m := comm.Message{Source: 1, Tag: 2, Data: tensor.Vector{1}}
	buf := encodeFrame(m)
	// Corrupt the length field to an absurd value.
	buf[8], buf[9], buf[10], buf[11] = 0xff, 0xff, 0xff, 0x7f
	if _, err := decodeFrame(bytes.NewReader(buf)); err == nil {
		t.Fatal("expected error for corrupt frame length")
	}
}

func TestTCPWorldSendRecv(t *testing.T) {
	w, err := NewTCPWorld(3, 39200)
	if err != nil {
		t.Skipf("TCP unavailable in this environment: %v", err)
	}
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	var wg sync.WaitGroup
	for r := 1; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := w[r].Send(0, r, tensor.Vector{float64(r), float64(r * 2)}); err != nil {
				t.Errorf("rank %d send: %v", r, err)
			}
		}(r)
	}
	for i := 0; i < 2; i++ {
		data, st, err := w[0].Recv(comm.AnySource, comm.AnyTag)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if int(data[0]) != st.Source || st.Tag != st.Source {
			t.Fatalf("mismatched message %v %+v", data, st)
		}
	}
	wg.Wait()
}

func TestTCPSelfSend(t *testing.T) {
	w, err := NewTCPWorld(2, 39300)
	if err != nil {
		t.Skipf("TCP unavailable in this environment: %v", err)
	}
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	if err := w[1].Send(1, 5, tensor.Vector{42}); err != nil {
		t.Fatal(err)
	}
	data, st, err := w[1].Recv(1, 5)
	if err != nil || data[0] != 42 || st.Source != 1 {
		t.Fatalf("self send failed: %v %+v %v", data, st, err)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	w, err := NewTCPWorld(2, 39400)
	if err != nil {
		t.Skipf("TCP unavailable in this environment: %v", err)
	}
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	payload := make(tensor.Vector, 1<<16)
	for i := range payload {
		payload[i] = float64(i)
	}
	go func() { _ = w[0].Send(1, 0, payload) }()
	data, _, err := w[1].Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !data.Equal(payload) {
		t.Fatal("large payload corrupted in transit")
	}
}

func TestTCPEndpointConfigValidation(t *testing.T) {
	if _, err := NewTCPEndpoint(TCPConfig{Rank: 0, Addrs: nil}); err == nil {
		t.Fatal("expected error for empty address list")
	}
	if _, err := NewTCPEndpoint(TCPConfig{Rank: 5, Addrs: []string{"127.0.0.1:0"}}); err == nil {
		t.Fatal("expected error for out-of-range rank")
	}
}
