package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

func TestHubSizeAndEndpoints(t *testing.T) {
	h := NewHub(3)
	defer h.Close()
	if h.Size() != 3 {
		t.Fatalf("Size = %d", h.Size())
	}
	for r := 0; r < 3; r++ {
		ep := h.Endpoint(r)
		if ep.Rank() != r || ep.Size() != 3 {
			t.Fatalf("endpoint %d has rank %d size %d", r, ep.Rank(), ep.Size())
		}
	}
}

func TestHubInvalidConstruction(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHub(0) },
		func() { NewHub(-3) },
		func() { NewHubDepth(2, 0) },
		func() { NewHub(2).Endpoint(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHubDelivery(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	a, b := h.Endpoint(0), h.Endpoint(1)
	if err := a.Send(1, comm.Message{Source: 0, Tag: 3, Data: tensor.Vector{1, 2}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Inbox():
		if m.Source != 0 || m.Tag != 3 || !m.Data.Equal(tensor.Vector{1, 2}) {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestHubSendToSelf(t *testing.T) {
	h := NewHub(1)
	defer h.Close()
	ep := h.Endpoint(0)
	if err := ep.Send(0, comm.Message{Source: 0, Tag: 1, Data: tensor.Vector{7}}); err != nil {
		t.Fatal(err)
	}
	m := <-ep.Inbox()
	if m.Data[0] != 7 {
		t.Fatalf("self-delivery broken: %+v", m)
	}
}

func TestHubSendInvalidDest(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	if err := h.Endpoint(0).Send(7, comm.Message{}); err == nil {
		t.Fatal("expected error for invalid destination")
	}
}

func TestHubSendAfterClose(t *testing.T) {
	h := NewHub(2)
	ep := h.Endpoint(0)
	h.Close()
	if err := ep.Send(1, comm.Message{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Closing twice must be a no-op.
	if err := h.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestHubCloseClosesInbox(t *testing.T) {
	h := NewHub(2)
	ep := h.Endpoint(1)
	h.Close()
	select {
	case _, ok := <-ep.Inbox():
		if ok {
			t.Fatal("expected closed inbox")
		}
	case <-time.After(time.Second):
		t.Fatal("inbox not closed")
	}
}

func TestHubFIFOPerPair(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	a, b := h.Endpoint(0), h.Endpoint(1)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(1, comm.Message{Source: 0, Tag: i, Data: nil}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m := <-b.Inbox()
		if m.Tag != i {
			t.Fatalf("message %d arrived with tag %d (reordered)", i, m.Tag)
		}
	}
}

func TestNewInprocWorldRoundTrip(t *testing.T) {
	w := NewInprocWorld(4)
	defer w[0].Close()
	for r := 1; r < 4; r++ {
		if err := w[0].Send(r, 0, tensor.Vector{float64(r)}); err != nil {
			t.Fatal(err)
		}
		data, _, err := w[r].Recv(0, 0)
		if err != nil || data[0] != float64(r) {
			t.Fatalf("rank %d: %v %v", r, data, err)
		}
	}
}

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	var wbuf []byte
	var scratch []byte
	f := func(source int32, tag int32, payload []float64) bool {
		m := comm.Message{Source: int(source), Tag: int(tag), Data: tensor.Vector(payload)}
		wbuf = appendFrame(wbuf[:0], m)
		got, err := decodeFrame(bytes.NewReader(wbuf), &scratch)
		if err != nil {
			return false
		}
		defer tensor.PutVector(got.Data)
		if got.Source != m.Source || got.Tag != m.Tag || len(got.Data) != len(m.Data) {
			return false
		}
		for i := range m.Data {
			// NaN payloads must survive the round trip too, so compare bit
			// patterns rather than using ==.
			if math.Float64bits(got.Data[i]) != math.Float64bits(m.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendFrameReusesBuffer(t *testing.T) {
	m := comm.Message{Source: 0, Tag: 1, Data: make(tensor.Vector, 64)}
	buf := appendFrame(nil, m)
	buf2 := appendFrame(buf[:0], comm.Message{Source: 0, Tag: 2, Data: make(tensor.Vector, 32)})
	if &buf[0] != &buf2[0] {
		t.Fatal("appendFrame reallocated although the buffer had capacity")
	}
}

func TestDecodeFrameRejectsOversizedLength(t *testing.T) {
	var wbuf, scratch []byte
	wbuf = appendFrame(wbuf[:0], comm.Message{Source: 1, Tag: 2, Data: tensor.Vector{1}})
	// Corrupt the length field to an absurd value (~2^31 elements).
	wbuf[8], wbuf[9], wbuf[10], wbuf[11] = 0xff, 0xff, 0xff, 0x7f
	_, err := decodeFrame(bytes.NewReader(wbuf), &scratch)
	if err == nil {
		t.Fatal("expected error for oversized frame length")
	}
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	for _, want := range []string{"2147483647", "limit", "rank 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestDecodeFrameRejectsTruncatedPayload(t *testing.T) {
	var wbuf, scratch []byte
	wbuf = appendFrame(wbuf[:0], comm.Message{Source: 3, Tag: 4, Data: tensor.Vector{1, 2, 3, 4}})
	// Drop the last 8 bytes: the header announces 4 elements but only 3 arrive.
	_, err := decodeFrame(bytes.NewReader(wbuf[:len(wbuf)-8]), &scratch)
	if err == nil {
		t.Fatal("expected error for truncated frame")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want wrapped io.ErrUnexpectedEOF", err)
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error %q does not describe the truncation", err)
	}
}

func TestDecodeFrameTruncatedHeader(t *testing.T) {
	var scratch []byte
	if _, err := decodeFrame(bytes.NewReader([]byte{1, 2, 3}), &scratch); err == nil {
		t.Fatal("expected error for truncated header")
	}
}

func TestTCPReadErrorRecordedOnCorruptFrame(t *testing.T) {
	addrs := []string{"127.0.0.1:39500", "127.0.0.1:39501"}
	var eps [2]*TCPEndpoint
	var errs [2]error
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eps[r], errs[r] = NewTCPEndpoint(TCPConfig{Rank: r, Addrs: addrs})
		}(r)
	}
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Skipf("TCP unavailable in this environment: %v %v", errs[0], errs[1])
	}
	defer eps[0].Close()
	defer eps[1].Close()

	// Write a corrupt frame — an oversized length header announcing ~2^32
	// elements — straight onto rank 0's connection to rank 1.
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[8:12], 0xffffffff)
	if _, err := eps[0].writers[1].conn.Write(hdr[:]); err != nil {
		t.Fatalf("write corrupt frame: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := eps[1].ReadError(); err != nil {
			if !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("recorded error = %v, want ErrFrameTooLarge", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("corrupt frame was swallowed silently: no read error recorded")
		}
		time.Sleep(time.Millisecond)
	}
	// The endpoint must fail fast, not stall: its inbox closes so blocked
	// receivers observe ErrClosed instead of hanging forever.
	select {
	case _, ok := <-eps[1].Inbox():
		if ok {
			t.Fatal("unexpected message on corrupted endpoint")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("endpoint stayed open after fatal decode error: receivers would hang")
	}
}

func TestTCPWorldSendRecv(t *testing.T) {
	w, err := NewTCPWorld(3, 39200)
	if err != nil {
		t.Skipf("TCP unavailable in this environment: %v", err)
	}
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	var wg sync.WaitGroup
	for r := 1; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := w[r].Send(0, r, tensor.Vector{float64(r), float64(r * 2)}); err != nil {
				t.Errorf("rank %d send: %v", r, err)
			}
		}(r)
	}
	for i := 0; i < 2; i++ {
		data, st, err := w[0].Recv(comm.AnySource, comm.AnyTag)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if int(data[0]) != st.Source || st.Tag != st.Source {
			t.Fatalf("mismatched message %v %+v", data, st)
		}
	}
	wg.Wait()
}

func TestTCPSelfSend(t *testing.T) {
	w, err := NewTCPWorld(2, 39300)
	if err != nil {
		t.Skipf("TCP unavailable in this environment: %v", err)
	}
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	if err := w[1].Send(1, 5, tensor.Vector{42}); err != nil {
		t.Fatal(err)
	}
	data, st, err := w[1].Recv(1, 5)
	if err != nil || data[0] != 42 || st.Source != 1 {
		t.Fatalf("self send failed: %v %+v %v", data, st, err)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	w, err := NewTCPWorld(2, 39400)
	if err != nil {
		t.Skipf("TCP unavailable in this environment: %v", err)
	}
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	payload := make(tensor.Vector, 1<<16)
	for i := range payload {
		payload[i] = float64(i)
	}
	// SendCopy: the test keeps payload for the comparison below, so it must
	// retain ownership.
	go func() { _ = w[0].SendCopy(1, 0, payload) }()
	data, _, err := w[1].Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !data.Equal(payload) {
		t.Fatal("large payload corrupted in transit")
	}
}

func TestTCPEndpointConfigValidation(t *testing.T) {
	if _, err := NewTCPEndpoint(TCPConfig{Rank: 0, Addrs: nil}); err == nil {
		t.Fatal("expected error for empty address list")
	}
	if _, err := NewTCPEndpoint(TCPConfig{Rank: 5, Addrs: []string{"127.0.0.1:0"}}); err == nil {
		t.Fatal("expected error for out-of-range rank")
	}
}
