package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// gatedBuffersConn is a net.Conn stub whose vectored-write hook blocks until
// the test releases it, so the test controls exactly when each batch flushes
// and can count how many flushes a workload produced.
type gatedBuffersConn struct {
	gate    chan struct{} // one token admits one WriteBuffers call
	entered chan struct{} // signaled when a WriteBuffers call begins waiting

	mu    sync.Mutex
	calls int
	got   bytes.Buffer
	fail  error // returned (with a partial count) instead of writing
}

func newGatedBuffersConn() *gatedBuffersConn {
	return &gatedBuffersConn{gate: make(chan struct{}), entered: make(chan struct{}, 16)}
}

func (c *gatedBuffersConn) WriteBuffers(bufs *net.Buffers) (int64, error) {
	c.entered <- struct{}{}
	<-c.gate
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.fail != nil {
		return 0, c.fail
	}
	return bufs.WriteTo(&c.got)
}

func (c *gatedBuffersConn) snapshot() (int, []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, append([]byte(nil), c.got.Bytes()...)
}

func (c *gatedBuffersConn) Write(b []byte) (int, error) {
	panic("transport: vectored writer fell back to Write")
}
func (c *gatedBuffersConn) Read(b []byte) (int, error)         { select {} }
func (c *gatedBuffersConn) Close() error                       { return nil }
func (c *gatedBuffersConn) LocalAddr() net.Addr                { return nil }
func (c *gatedBuffersConn) RemoteAddr() net.Addr               { return nil }
func (c *gatedBuffersConn) SetDeadline(t time.Time) error      { return nil }
func (c *gatedBuffersConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *gatedBuffersConn) SetWriteDeadline(t time.Time) error { return nil }

// TestWriterCoalescesBatchIntoSingleVectoredWrite is the writev regression
// test: while one flush is in flight, every concurrently staged frame must
// leave in ONE vectored write when the flusher loops — not one write per
// frame — and every sender must still observe group-commit success.
func TestWriterCoalescesBatchIntoSingleVectoredWrite(t *testing.T) {
	conn := newGatedBuffersConn()
	w := newTCPWriter(conn)

	first := make(chan error, 1)
	go func() {
		first <- w.send(comm.Message{Source: 0, Tag: 0, Data: leasedVector(8, 0)})
	}()
	<-conn.entered // the first sender is now the flusher, blocked in writev

	// Stage a burst behind the in-flight flush.
	const burst = 8
	rest := make(chan error, burst)
	for i := 1; i <= burst; i++ {
		go func(i int) {
			rest <- w.send(comm.Message{Source: 0, Tag: i, Data: leasedVector(8, float64(100*i))})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		staged := w.pendBytes
		w.mu.Unlock()
		if staged == burst*(12+8*8) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("burst never fully staged: %d bytes pending", staged)
		}
		time.Sleep(time.Millisecond)
	}

	conn.gate <- struct{}{} // release the first flush (the lone first frame)
	<-conn.entered          // the flusher picked up the batch and is in writev again
	conn.gate <- struct{}{} // release the batch flush

	if err := <-first; err != nil {
		t.Fatalf("first send: %v", err)
	}
	for i := 0; i < burst; i++ {
		if err := <-rest; err != nil {
			t.Fatalf("coalesced send: %v", err)
		}
	}

	calls, raw := conn.snapshot()
	if calls != 2 {
		t.Fatalf("batch of %d frames took %d vectored writes, want 2 (lone first frame + one coalesced batch)", burst+1, calls)
	}
	// The stream must decode to all 9 frames, intact.
	var scratch []byte
	r := bytes.NewReader(raw)
	seen := make(map[int]bool)
	for {
		m, err := decodeFrame(r, &scratch)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("decode flushed stream: %v", err)
		}
		if len(m.Data) != 8 || m.Data[0] != float64(100*m.Tag) {
			t.Fatalf("frame tag %d carries payload %v", m.Tag, m.Data[0])
		}
		if seen[m.Tag] {
			t.Fatalf("frame tag %d flushed twice", m.Tag)
		}
		seen[m.Tag] = true
		tensor.PutVector(m.Data)
	}
	if len(seen) != burst+1 {
		t.Fatalf("flushed stream holds %d frames, want %d", len(seen), burst+1)
	}
}

// TestWriterVectoredWriteFailureAttribution: a failed vectored write must
// error every sender whose frame the kernel did not accept, release all
// staged payload leases, and stay sticky for later sends.
func TestWriterVectoredWriteFailureAttribution(t *testing.T) {
	before := tensor.ReadPoolStats()
	conn := newGatedBuffersConn()
	w := newTCPWriter(conn)

	first := make(chan error, 1)
	go func() {
		first <- w.send(comm.Message{Source: 0, Tag: 0, Data: leasedVector(8, 0)})
	}()
	<-conn.entered
	second := make(chan error, 1)
	go func() {
		second <- w.send(comm.Message{Source: 0, Tag: 1, Data: leasedVector(8, 0)})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		staged := w.pendBytes
		w.mu.Unlock()
		if staged > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second frame never staged")
		}
		time.Sleep(time.Millisecond)
	}

	conn.mu.Lock()
	conn.fail = errors.New("connection reset by peer")
	conn.mu.Unlock()
	conn.gate <- struct{}{} // the first flush fails with zero bytes accepted

	if err := <-first; err == nil {
		t.Fatal("first send succeeded although its frame was never written")
	}
	if err := <-second; err == nil {
		t.Fatal("coalesced send succeeded although its frame was never written")
	}
	// The error is sticky: later sends fail fast without staging.
	if err := w.send(comm.Message{Source: 0, Tag: 2, Data: leasedVector(8, 0)}); err == nil {
		t.Fatal("send after write failure succeeded")
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("failed writes leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}
