package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// This file implements the SPMC broadcast segment beside the per-pair SPSC
// rings (ring.go): one single-producer/many-consumer byte region per rank,
// into which a one-to-many hop — the ring allreduce's allgather phase, a
// collective broadcast — publishes each block exactly once, and from which
// every colocated consumer reads it in place. A P-rank allgather hop that
// costs P-1 ring encodes (and P-1 decode copies) over the pairwise rings
// costs one encode and zero copies here: consumers above the alias floor
// receive a float64 view of the region itself (ringalias.go machinery), and
// a per-block reference count — not per-consumer bookkeeping — tells the
// producer when the block's space is free again.
//
// Region layout (little endian; producer fields cache-line separated, one
// cache line per consumer so their head cursors never false-share):
//
//	  0  magic      uint64 — bcastMagic once the producer initialized the region
//	 64  tail       uint64 — producer position, bytes published (monotonic)
//	128  prodClosed uint32 — producer closed its end (EOF after drain)
//	192  prodParked uint32 — producer parked on a full region; consumers wake it
//	256  capacity   uint64 — data-area size in bytes (power of two)
//	320+64*r  per-consumer slot r: head uint64, parked uint32 (+8), closed uint32 (+12)
//	320+64*size  data[capacity]
//
// Block framing inside the data area (blocks 8-byte aligned, so the payload —
// 16 bytes in — can be handed out as a zero-copy float64 view):
//
//	uint32 word (type<<30 | payload bytes) | uint32 tag | uint32 count | uint32 reserved | payload
//
// Reclamation protocol: every consumer advances its shared head cursor the
// moment it consumes a block — copy or alias — so heads measure sweep
// progress only. What pins a block is its reference count: a consumer taking
// a zero-copy view increments the block's count *before* advancing its head,
// and tensor.PutVector routes the release back here (the process alias
// table) to decrement it. The producer frees the region's prefix once every
// live consumer's head has passed a block AND its count is zero. Dead
// consumers (closed endpoints, ranks declared failed) are dropped from the
// head quorum so one crashed rank cannot pin the region forever.
//
// The reference counts and block FIFO live on the Go heap under a region
// mutex, which is why broadcast segments are in-process only for now: a
// cross-process port needs the counts moved into the mapped header with a
// lock-free release protocol. The byte-region layout is already
// mmap-shaped for that day.
const (
	bcOffMagic      = 0
	bcOffTail       = 64
	bcOffProdClosed = 128
	bcOffProdParked = 192
	bcOffCapacity   = 256
	bcOffConsBase   = 320
	bcConsStride    = 64

	bcConsOffHead   = 0
	bcConsOffParked = 8
	bcConsOffClosed = 12

	bcastMagic = 0xEA6E55D0_B40ADCA5 // "eager-sgd broadcast v1"

	// Block types (top two bits of the block word, sharing the ring's record
	// framing constants). Broadcast blocks are never fragmented: a block
	// either fits the region budget whole or the caller must use the rings.
	bcFrame = recFrame
	bcPad   = recPad

	// bcBlockHdr is the fixed block header: word, tag, element count, and a
	// reserved word (a future cross-process port's shared reference count).
	// 16 bytes keeps the payload of an 8-aligned block 8-aligned.
	bcBlockHdr = 16

	// DefaultBcastBytes is the default broadcast-segment capacity per rank.
	// 4 MiB lets a 2 MiB allgather chunk (256Ki float64s, a 1Mi-element
	// allreduce across 4 ranks) publish as a single block with the producer
	// still able to run one block ahead of the slowest consumer.
	DefaultBcastBytes = 4 << 20
)

// bcastHdrSize is the header footprint of a size-rank region; the data area
// starts cache-line aligned right after it.
func bcastHdrSize(size int) int { return bcOffConsBase + size*bcConsStride }

// bcastSpan is the region-space footprint of a block with the given payload
// length: header plus payload, rounded up to 8 bytes.
func bcastSpan(payloadLen int) int { return (bcBlockHdr + payloadLen + 7) &^ 7 }

// bcastBlock is the producer-side ledger entry of one published block: where
// it ends, where its aliased payload lives, and how many zero-copy views of
// it are still outstanding. Pad blocks carry no payload. Guarded by aliasMu.
type bcastBlock struct {
	end      uint64 // region position after this block
	payStart uint64 // data-area offset of the payload; 0 for pads
	payLen   uint64 // payload byte length; 0 for pads
	refs     int    // outstanding zero-copy views
}

// bcastRegion is one rank's broadcast segment: that rank is the only
// producer, every other member of its hub is a consumer.
type bcastRegion struct {
	producer int
	size     int
	group    []int // member ranks other than the producer (BroadcastGroup)
	data     []byte
	mask     uint64
	maxBlock int // payload-byte budget of one block (BroadcastBudget)

	tail       *atomic.Uint64
	prodClosed *atomic.Uint32
	prodParked *atomic.Uint32
	heads      []*atomic.Uint64 // per-consumer sweep cursors
	consParked []*atomic.Uint32
	consClosed []*atomic.Uint32 // consumer gone: closed its endpoint or declared dead

	prodMu   sync.Mutex
	prodWake ringParker
	consWake []ringParker // consumer r parks on its endpoint's wake channel

	reclaimed uint64 // producer-private: bytes returned to the free span

	// aliasMu guards the block ledger and the alias life cycle. Lock order:
	// prodMu before aliasMu (publish), aliasTable.mu before aliasMu
	// (release/retire); never the reverse.
	aliasMu       sync.Mutex
	blocks        []bcastBlock
	aliasOut      int  // outstanding views across all blocks
	retirePending bool // producer closed with views outstanding
	retired       bool // left the alias table; no new views may be taken

	region []byte
}

// newBcastRegion creates an in-process broadcast segment for the given
// producer. Non-member ranks' consumer slots (and the producer's own) are
// born closed, so they never count toward the reclamation quorum. The hub
// wires consWake and prodWake before handing out readers.
func newBcastRegion(producer, size, capacity int, member []bool) *bcastRegion {
	capacity = ringCapacity(capacity)
	b := &bcastRegion{
		producer: producer,
		size:     size,
		mask:     uint64(capacity - 1),
		maxBlock: capacity / 2,
		consWake: make([]ringParker, size),
	}
	region := make([]byte, bcastHdrSize(size)+capacity)
	if uintptr(unsafe.Pointer(&region[0]))%8 != 0 {
		panic("transport: broadcast region is not 8-byte aligned")
	}
	b.region = region
	b.data = region[bcastHdrSize(size):]
	b.tail = (*atomic.Uint64)(unsafe.Pointer(&region[bcOffTail]))
	b.prodClosed = (*atomic.Uint32)(unsafe.Pointer(&region[bcOffProdClosed]))
	b.prodParked = (*atomic.Uint32)(unsafe.Pointer(&region[bcOffProdParked]))
	b.heads = make([]*atomic.Uint64, size)
	b.consParked = make([]*atomic.Uint32, size)
	b.consClosed = make([]*atomic.Uint32, size)
	for r := 0; r < size; r++ {
		slot := bcOffConsBase + r*bcConsStride
		b.heads[r] = (*atomic.Uint64)(unsafe.Pointer(&region[slot+bcConsOffHead]))
		b.consParked[r] = (*atomic.Uint32)(unsafe.Pointer(&region[slot+bcConsOffParked]))
		b.consClosed[r] = (*atomic.Uint32)(unsafe.Pointer(&region[slot+bcConsOffClosed]))
		if r == producer || !member[r] {
			b.consClosed[r].Store(1)
		} else {
			b.group = append(b.group, r)
		}
	}
	binary.LittleEndian.PutUint64(region[bcOffCapacity:], uint64(capacity))
	binary.LittleEndian.PutUint64(region[bcOffMagic:], bcastMagic)

	// Registered for alias release from birth (removed again by retire):
	// registration must be visible before the first zero-copy view can
	// possibly be released, and consumers race each other, so the safe
	// moment is before any reader exists.
	aliasInstallHook.Do(func() { tensor.SetAliasReleaser(&aliasTable) })
	aliasTable.mu.Lock()
	aliasTable.bcasts = append(aliasTable.bcasts, b)
	aliasTable.mu.Unlock()
	return b
}

// reader binds consumer rank's sweep cursor over the region.
func (b *bcastRegion) reader(rank int) *bcastReader {
	return &bcastReader{reg: b, rank: rank}
}

// publish appends one block carrying data (borrowed from the caller, fully
// encoded before return) and wakes every parked live consumer. It blocks
// (adaptive parking) while the region lacks space — the flow control that
// stops a producer outrunning its slowest consumer — and aborts with
// ErrClosed when done fires. One publish replaces a send to every consumer.
func (b *bcastRegion) publish(tag int, data tensor.Vector, done <-chan struct{}) error {
	payloadLen := 8 * len(data)
	if payloadLen > b.maxBlock || len(data) > maxFrameElements {
		return fmt.Errorf("%w: broadcast block of %d elements exceeds the region budget (%d bytes)",
			ErrFrameTooLarge, len(data), b.maxBlock)
	}
	b.prodMu.Lock()
	defer b.prodMu.Unlock()

	capacity := b.mask + 1
	need := uint64(bcastSpan(payloadLen))
	tail := b.tail.Load()
	contig := capacity - tail&b.mask
	advance := need
	pad := false
	if need > contig {
		pad = true
		advance = contig + need
	}

	spins := 0
	for {
		if capacity-(tail-b.reclaim()) >= advance {
			break
		}
		select {
		case <-done:
			return ErrClosed
		default:
		}
		if !parkStep(&spins, &b.prodWake, b.prodParked, func() bool {
			return capacity-(tail-b.reclaim()) >= advance
		}, done) {
			return ErrClosed
		}
	}

	idx := tail & b.mask
	if pad {
		binary.LittleEndian.PutUint32(b.data[idx:], uint32(bcPad)<<recTypeShift)
		idx = 0
	}
	binary.LittleEndian.PutUint32(b.data[idx:], uint32(bcFrame)<<recTypeShift|uint32(payloadLen))
	binary.LittleEndian.PutUint32(b.data[idx+4:], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(b.data[idx+8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(b.data[idx+12:], 0)
	putFloats(b.data[idx+bcBlockHdr:idx+bcBlockHdr+uint64(payloadLen)], data)

	b.aliasMu.Lock()
	if pad {
		b.blocks = append(b.blocks, bcastBlock{end: tail + contig})
	}
	b.blocks = append(b.blocks, bcastBlock{end: tail + advance, payStart: idx + bcBlockHdr, payLen: uint64(payloadLen)})
	b.aliasMu.Unlock()

	b.tail.Store(tail + advance)
	for _, c := range b.group {
		if b.consClosed[c].Load() != 0 {
			continue
		}
		if b.consParked[c].Swap(0) != 0 {
			b.consWake[c].signal()
		}
	}
	return nil
}

// reclaim advances the producer's free-space mark over the prefix of blocks
// that every live consumer has swept past and no one holds a view of, and
// returns it. Only the producer calls it (under prodMu).
func (b *bcastRegion) reclaim() uint64 {
	b.aliasMu.Lock()
	i := 0
	for i < len(b.blocks) {
		// Heads before refs: a consumer increments the block's count and only
		// then advances its head, so once every head has passed the block any
		// count it took is visible here (the head load synchronizes with the
		// consumer's store, which its counted increment precedes).
		if !b.headsPassed(b.blocks[i].end) || b.blocks[i].refs != 0 {
			break
		}
		i++
	}
	if i > 0 {
		b.reclaimed = b.blocks[i-1].end
		b.blocks = append(b.blocks[:0], b.blocks[i:]...)
	}
	out := b.reclaimed
	b.aliasMu.Unlock()
	return out
}

// headsPassed reports whether every live consumer's head reached end.
func (b *bcastRegion) headsPassed(end uint64) bool {
	for _, c := range b.group {
		if b.consClosed[c].Load() != 0 {
			continue
		}
		if b.heads[c].Load() < end {
			return false
		}
	}
	return true
}

// takeAlias registers one zero-copy view of the block whose payload starts at
// the given data-area offset. Returns false — the consumer copies instead —
// once the region is retired (producer closed, last view released), so a
// late-draining consumer can never hand out a view the alias table no longer
// routes.
func (b *bcastRegion) takeAlias(payStart uint64) bool {
	b.aliasMu.Lock()
	defer b.aliasMu.Unlock()
	if b.retired {
		return false
	}
	for i := range b.blocks {
		blk := &b.blocks[i]
		if blk.payLen != 0 && blk.payStart == payStart {
			blk.refs++
			b.aliasOut++
			return true
		}
	}
	return false
}

// releaseAliasAt releases the view covering data-area offset off (the alias
// table resolved the address to this region) and wakes a producer parked on
// the space it may have freed. Returns true when this was the last
// outstanding view of a retired region and it should leave the table.
func (b *bcastRegion) releaseAliasAt(off uint64) bool {
	b.aliasMu.Lock()
	for i := range b.blocks {
		blk := &b.blocks[i]
		if blk.refs > 0 && off >= blk.payStart && off < blk.payStart+blk.payLen {
			blk.refs--
			b.aliasOut--
			break
		}
	}
	retired := b.retirePending && b.aliasOut == 0
	if retired {
		b.retired = true
		b.retirePending = false
	}
	b.aliasMu.Unlock()
	if b.prodParked.Swap(0) != 0 {
		b.prodWake.signal()
	}
	return retired
}

// closeProducer marks the producer end closed (consumers observe EOF after
// draining) and wakes every parked consumer so they see it.
func (b *bcastRegion) closeProducer() {
	b.prodClosed.Store(1)
	for _, c := range b.group {
		if b.consParked[c].Swap(0) != 0 {
			b.consWake[c].signal()
		}
		b.consWake[c].signal()
	}
}

// deadConsumer drops consumer rank from the reclamation quorum — its own
// endpoint closing, or the producer's side observing the rank fail — and
// wakes a producer its sweep debt may have been blocking. Views the consumer
// already took stay counted; in-process they are released when the dead
// rank's communicator drains its queue.
func (b *bcastRegion) deadConsumer(rank int) {
	b.consClosed[rank].Store(1)
	if b.prodParked.Swap(0) != 0 {
		b.prodWake.signal()
	}
	b.prodWake.signal()
}

// retire detaches the region from alias release at producer close: removed
// from the table immediately when no views are outstanding, deferred to the
// last release otherwise (a late tensor.PutVector must still find the region
// and never reach the pool with transport-owned memory). Consumers still
// draining after retirement fall back to copy delivery (takeAlias refuses).
func (b *bcastRegion) retire() {
	aliasTable.mu.Lock()
	b.aliasMu.Lock()
	if b.aliasOut > 0 {
		b.retirePending = true
		b.aliasMu.Unlock()
		aliasTable.mu.Unlock()
		return
	}
	b.retired = true
	b.aliasMu.Unlock()
	aliasTable.removeBcastLocked(b)
	aliasTable.mu.Unlock()
}

// bcastReader is one consumer's sweep cursor over a peer's broadcast region.
// Owned by that consumer's poller goroutine.
type bcastReader struct {
	reg  *bcastRegion
	rank int
	pos  uint64 // local mirror of the shared head
}

// tryDequeue consumes at most one block without blocking, mirroring
// ringBuffer.tryDequeue's result contract. Blocks at or above the alias floor
// are delivered as zero-copy views pinned by the block's reference count;
// everything else is decoded into a pool lease. Either way the shared head
// advances immediately — sweep progress and space release are decoupled by
// the counts, not by deferred head advances.
func (br *bcastReader) tryDequeue() (comm.Message, ringResult, error) {
	b := br.reg
	pos := br.pos
	tail := b.tail.Load()
	if pos == tail {
		if b.prodClosed.Load() != 0 && pos == b.tail.Load() {
			return comm.Message{}, ringDead, nil
		}
		return comm.Message{}, ringEmpty, nil
	}
	capacity := b.mask + 1
	idx := pos & b.mask
	word := binary.LittleEndian.Uint32(b.data[idx:])
	recType := int(word >> recTypeShift)
	payloadLen := int(word & recLenMask)
	if recType == bcPad {
		br.advance(capacity - idx)
		return comm.Message{}, ringMore, nil
	}
	need := uint64(bcastSpan(payloadLen))
	if recType != bcFrame || payloadLen%8 != 0 || need > capacity-idx || tail-pos < need {
		return comm.Message{}, ringEmpty, fmt.Errorf("%w: broadcast block of %d bytes (type %d) exceeds the published span",
			errRingCorrupt, payloadLen, recType)
	}
	tag := int(int32(binary.LittleEndian.Uint32(b.data[idx+4:])))
	count := int(binary.LittleEndian.Uint32(b.data[idx+8:]))
	if count > maxFrameElements || 8*count != payloadLen {
		return comm.Message{}, ringEmpty, fmt.Errorf("%w: broadcast block announces %d elements for %d payload bytes",
			errRingCorrupt, count, payloadLen)
	}
	payload := b.data[idx+bcBlockHdr : idx+bcBlockHdr+uint64(payloadLen)]
	if payloadLen >= aliasMinBytes {
		if v, ok := floatsView(payload, count); ok && b.takeAlias(idx+bcBlockHdr) {
			br.advance(need)
			return comm.Message{Source: b.producer, Tag: tag, Data: v}, ringMsg, nil
		}
	}
	data := tensor.GetVector(count)
	getFloats(data, payload)
	br.advance(need)
	return comm.Message{Source: b.producer, Tag: tag, Data: data}, ringMsg, nil
}

// advance publishes this consumer's sweep progress and wakes a parked
// producer. Any reference count this consumer took for the span must already
// be registered (see reclaim's ordering comment).
func (br *bcastReader) advance(n uint64) {
	br.pos += n
	br.reg.heads[br.rank].Store(br.pos)
	if br.reg.prodParked.Swap(0) != 0 {
		br.reg.prodWake.signal()
	}
}
