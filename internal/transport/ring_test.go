package transport

import (
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// leasedVector builds a pool-leased payload with recognizable contents.
func leasedVector(n int, seed float64) tensor.Vector {
	v := tensor.GetVector(n)
	for i := range v {
		v[i] = seed + float64(i)
	}
	return v
}

// drainOne busy-polls r until one complete message surfaces, failing the test
// on ring errors or timeout.
func drainOne(t *testing.T, r *ringBuffer) comm.Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, res, err := r.tryDequeue()
		if err != nil {
			t.Fatalf("tryDequeue: %v", err)
		}
		switch res {
		case ringMsg:
			return m
		case ringDead:
			t.Fatal("ring reported EOF while a message was expected")
		}
		if time.Now().After(deadline) {
			t.Fatal("no message surfaced from the ring")
		}
		if res == ringEmpty {
			runtime.Gosched()
		}
	}
}

// TestRingWrapAroundRoundTrip walks message sizes across many laps of a tiny
// ring, so records land on every alignment, pads fire at the wrap point, and
// large frames exercise the fragment path — each message must round-trip bit
// for bit, in order.
func TestRingWrapAroundRoundTrip(t *testing.T) {
	before := tensor.ReadPoolStats()
	r := newRing(4096)
	done := make(chan struct{})
	defer close(done)
	sizes := []int{0, 1, 3, 7, 16, 63, 120, 127, 128, 129, 200, 300, 5, 250}
	for iter := 0; iter < 64; iter++ {
		for k, n := range sizes {
			want := leasedVector(n, float64(iter*1000+k))
			snapshot := append(tensor.Vector(nil), want...)
			if err := r.enqueue(comm.Message{Source: iter, Tag: k, Data: want}, done, true); err != nil {
				t.Fatalf("enqueue n=%d: %v", n, err)
			}
			m := drainOne(t, r)
			if m.Source != iter || m.Tag != k || len(m.Data) != n {
				t.Fatalf("header mangled: got (%d, %d, %d), want (%d, %d, %d)", m.Source, m.Tag, len(m.Data), iter, k, n)
			}
			for i := range snapshot {
				if m.Data[i] != snapshot[i] {
					t.Fatalf("payload corrupted at element %d of %d-element frame (iter %d)", i, n, iter)
				}
			}
			tensor.PutVector(m.Data)
		}
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("ring round trip leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}

// TestRingFullBlocksAndDrains: a producer pushing far more than the ring
// holds must block for flow control and finish once the consumer drains.
func TestRingFullBlocksAndDrains(t *testing.T) {
	r := newRing(4096)
	done := make(chan struct{})
	defer close(done)
	const total = 50
	var sent atomic.Int32
	go func() {
		for i := 0; i < total; i++ {
			if err := r.enqueue(comm.Message{Source: 0, Tag: i, Data: leasedVector(64, float64(i))}, done, true); err != nil {
				return
			}
			sent.Add(1)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if s := sent.Load(); s == total {
		t.Fatal("producer never blocked although the messages exceed the ring capacity many times over")
	}
	for i := 0; i < total; i++ {
		m := drainOne(t, r)
		if m.Tag != i {
			t.Fatalf("message %d arrived with tag %d (reordered)", i, m.Tag)
		}
		tensor.PutVector(m.Data)
	}
	if s := sent.Load(); s != total {
		t.Fatalf("producer sent %d of %d after the consumer drained", s, total)
	}
}

// TestRingEnqueueAbortsOnDone: a producer blocked on a full ring must unblock
// with ErrClosed when its endpoint's done channel fires, releasing the
// payload.
func TestRingEnqueueAbortsOnDone(t *testing.T) {
	before := tensor.ReadPoolStats()
	r := newRing(4096)
	done := make(chan struct{})
	const attempts = 50 // far more than the ring holds, so the producer must block
	var sent atomic.Int32
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < attempts; i++ {
			if err := r.enqueue(comm.Message{Data: leasedVector(64, 0)}, done, true); err != nil {
				errCh <- err
				return
			}
			sent.Add(1)
		}
		errCh <- nil
	}()
	time.Sleep(50 * time.Millisecond) // let the producer fill the ring and block
	close(done)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked enqueue ignored the done channel")
	}
	// Drain what was accepted so the leases balance (enqueue released the
	// producer-side copies; these are the consumer-side leases).
	for i := int32(0); i < sent.Load(); i++ {
		tensor.PutVector(drainOne(t, r).Data)
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("aborted enqueue leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}

// TestRingAbortProducerUnblocksEnqueue: the consumer side declaring the ring
// closed must abort a blocked producer with ErrRingClosed.
func TestRingAbortProducerUnblocksEnqueue(t *testing.T) {
	r := newRing(4096)
	done := make(chan struct{})
	defer close(done)
	errCh := make(chan error, 1)
	go func() {
		for {
			if err := r.enqueue(comm.Message{Data: leasedVector(64, 0)}, done, true); err != nil {
				errCh <- err
				return
			}
		}
	}()
	time.Sleep(30 * time.Millisecond) // let the producer fill the ring and block
	r.abortProducer()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrRingClosed) {
			t.Fatalf("err = %v, want ErrRingClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked enqueue ignored abortProducer")
	}
}

// TestRingRejectsOversizedHeader: a record whose embedded frame header
// announces more elements than the transport-wide limit must be rejected with
// a descriptive error before any allocation — the same hostile-length
// contract decodeFrame upholds.
func TestRingRejectsOversizedHeader(t *testing.T) {
	r := newRing(4096)
	// Hand-craft a complete-frame record whose header announces 2^31 elements.
	binary.LittleEndian.PutUint32(r.data[0:], uint32(recFrame)<<recTypeShift|12)
	binary.LittleEndian.PutUint32(r.data[4:], 3)        // source
	binary.LittleEndian.PutUint32(r.data[8:], 9)        // tag
	binary.LittleEndian.PutUint32(r.data[12:], 1<<31-1) // count: absurd
	r.tail.Store(uint64(recordSpan(12)))
	_, _, err := r.tryDequeue()
	if err == nil {
		t.Fatal("expected error for oversized element count")
	}
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	for _, want := range []string{"2147483647", "limit", "rank 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestRingRejectsOrphanContinuation: a fragment continuation with no open
// stream is framing corruption, reported descriptively.
func TestRingRejectsOrphanContinuation(t *testing.T) {
	r := newRing(4096)
	binary.LittleEndian.PutUint32(r.data[0:], uint32(recCont)<<recTypeShift|8)
	r.tail.Store(uint64(recordSpan(8)))
	_, _, err := r.tryDequeue()
	if err == nil || !errors.Is(err, errRingCorrupt) {
		t.Fatalf("err = %v, want wrapped errRingCorrupt", err)
	}
	if !strings.Contains(err.Error(), "no fragment stream") {
		t.Fatalf("error %q does not describe the orphan continuation", err)
	}
}

// TestShmWorldSendRecv: every pair exchanges through the in-process shared
// rings via the full communicator stack.
func TestShmWorldSendRecv(t *testing.T) {
	w := NewShmWorld(4)
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	for r := 1; r < 4; r++ {
		if err := w[0].Send(r, r, tensor.Vector{float64(r), float64(2 * r)}); err != nil {
			t.Fatal(err)
		}
		data, st, err := w[r].Recv(0, r)
		if err != nil || data[0] != float64(r) || st.Source != 0 {
			t.Fatalf("rank %d: %v %+v %v", r, data, st, err)
		}
		tensor.PutVector(data)
	}
}

// TestShmSelfSend: sending to self bypasses the rings entirely.
func TestShmSelfSend(t *testing.T) {
	w := NewShmWorld(2)
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	if err := w[1].Send(1, 5, tensor.Vector{42}); err != nil {
		t.Fatal(err)
	}
	data, st, err := w[1].Recv(1, 5)
	if err != nil || data[0] != 42 || st.Source != 1 {
		t.Fatalf("self send failed: %v %+v %v", data, st, err)
	}
	tensor.PutVector(data)
}

// TestShmFIFOPerPair: ring delivery preserves per-pair ordering under
// concurrent sends from multiple goroutines (the comm layer serializes
// nothing above the endpoint).
func TestShmFIFOPerPair(t *testing.T) {
	hub := NewShmHub(2)
	defer hub.Close()
	a, b := hub.Endpoint(0), hub.Endpoint(1)
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(1, comm.Message{Source: 0, Tag: i, Data: leasedVector(16, float64(i))}); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		select {
		case m := <-b.Inbox():
			if m.Tag != i {
				t.Fatalf("message %d arrived with tag %d (reordered)", i, m.Tag)
			}
			if m.Data[0] != float64(i) {
				t.Fatalf("message %d carries payload %v", i, m.Data[0])
			}
			tensor.PutVector(m.Data)
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d never arrived", i)
		}
	}
}

// TestShmLargeMessageStreams: a frame bigger than the whole ring must stream
// through it via fragmentation while the consumer drains concurrently.
func TestShmLargeMessageStreams(t *testing.T) {
	w := NewShmWorld(2)
	defer func() {
		for _, c := range w {
			c.Close()
		}
	}()
	payload := make(tensor.Vector, 1<<17) // 1 MiB of wire bytes vs a 512 KiB ring
	for i := range payload {
		payload[i] = float64(i)
	}
	go func() { _ = w[0].SendCopy(1, 0, payload) }()
	data, _, err := w[1].Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !data.Equal(payload) {
		t.Fatal("large payload corrupted in transit")
	}
	tensor.PutVector(data)
}

// TestShmSendAfterClose mirrors the TCP/inproc contract: sends on a closed
// endpoint fail with ErrClosed and the inbox closes.
func TestShmSendAfterClose(t *testing.T) {
	hub := NewShmHub(2)
	ep := hub.Endpoint(0)
	ep.Close()
	if err := ep.Send(1, comm.Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	select {
	case _, ok := <-ep.Inbox():
		if ok {
			t.Fatal("expected closed inbox")
		}
	case <-time.After(time.Second):
		t.Fatal("inbox not closed")
	}
	if err := ep.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	hub.Close()
}

// TestShmPeerEOFMarksFailureWithNotifier: a peer closing its endpoint is a
// rank failure for the survivors, reported through the notifier — the
// surviving endpoint stays open, mirroring TCP EOF semantics.
func TestShmPeerEOFMarksFailureWithNotifier(t *testing.T) {
	hub := NewShmHub(3)
	defer hub.Close()
	var mu sync.Mutex
	var failed []int
	hub.Endpoint(0).NotifyPeerFailure(func(rank int, cause error) {
		mu.Lock()
		defer mu.Unlock()
		if !errors.Is(cause, io.EOF) {
			t.Errorf("cause = %v, want wrapped io.EOF", cause)
		}
		failed = append(failed, rank)
	})
	hub.Endpoint(1).Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(failed)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer EOF not reported to the failure notifier")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if failed[0] != 1 {
		t.Fatalf("failed = %v, want [1]", failed)
	}
	mu.Unlock()
	// Traffic with the healthy peer continues.
	if err := hub.Endpoint(0).Send(2, comm.Message{Source: 0, Tag: 1, Data: leasedVector(4, 0)}); err != nil {
		t.Fatalf("send to healthy peer after EOF: %v", err)
	}
	m := <-hub.Endpoint(2).Inbox()
	tensor.PutVector(m.Data)
}

// TestShmCorruptRingFailsPeer: framing corruption in an incoming ring is
// recorded (ReadError), reported to the notifier, and aborts pending sends
// toward the corrupt peer — the shared-memory analogue of a TCP decode
// failure tearing down the connection.
func TestShmCorruptRingFailsPeer(t *testing.T) {
	hub := NewShmHub(2)
	defer hub.Close()
	ep0, ep1 := hub.Endpoint(0), hub.Endpoint(1)
	failed := make(chan int, 1)
	ep1.NotifyPeerFailure(func(rank int, cause error) {
		select {
		case failed <- rank:
		default:
		}
	})
	// Corrupt rank 0's ring toward rank 1: an orphan continuation record.
	r := ep0.out[1]
	r.prodMu.Lock()
	binary.LittleEndian.PutUint32(r.data[0:], uint32(recCont)<<recTypeShift|8)
	r.tail.Store(uint64(recordSpan(8)))
	if r.consParked.Swap(0) != 0 {
		r.consWake.signal()
	}
	r.consWake.signal()
	r.prodMu.Unlock()

	select {
	case rank := <-failed:
		if rank != 0 {
			t.Fatalf("failed rank = %d, want 0", rank)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ring corruption not reported to the failure notifier")
	}
	if err := ep1.ReadError(); err == nil || !errors.Is(err, errRingCorrupt) {
		t.Fatalf("ReadError = %v, want wrapped errRingCorrupt", err)
	}
	// Sends toward the corrupt peer now fail instead of blocking forever.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := ep1.Send(0, comm.Message{Source: 1, Tag: 1, Data: leasedVector(4, 0)})
		if err != nil {
			if !errors.Is(err, ErrRingClosed) {
				t.Fatalf("send toward corrupt peer: err = %v, want ErrRingClosed", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sends toward the corrupt peer keep succeeding")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShmCrossProcessRings exercises the mmap-backed path inside one process:
// two endpoints attach to each other's ring files in a temp directory and
// exchange frames, including one large enough to fragment.
func TestShmCrossProcessRings(t *testing.T) {
	dir := t.TempDir()
	var eps [2]*ShmEndpoint
	var errs [2]error
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eps[r], errs[r] = NewShmEndpoint(ShmConfig{Dir: dir, Rank: r, Size: 2, RingBytes: 1 << 16})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Skipf("mmap-backed rings unavailable in this environment (rank %d): %v", r, err)
		}
	}
	defer eps[0].Close()
	defer eps[1].Close()

	if err := eps[0].Send(1, comm.Message{Source: 0, Tag: 7, Data: leasedVector(32, 1)}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-eps[1].Inbox():
		if m.Source != 0 || m.Tag != 7 || len(m.Data) != 32 || m.Data[3] != 4 {
			t.Fatalf("got %+v", m)
		}
		tensor.PutVector(m.Data)
	case <-time.After(10 * time.Second):
		t.Fatal("frame never crossed the mmap ring")
	}

	// A fragmented frame (256 KiB of wire bytes vs a 64 KiB ring).
	big := leasedVector(1<<15, 3)
	go func() { _ = eps[1].Send(0, comm.Message{Source: 1, Tag: 8, Data: big}) }()
	select {
	case m := <-eps[0].Inbox():
		if len(m.Data) != 1<<15 || m.Data[100] != 103 {
			t.Fatalf("fragmented frame mangled: len %d", len(m.Data))
		}
		tensor.PutVector(m.Data)
	case <-time.After(10 * time.Second):
		t.Fatal("fragmented frame never crossed the mmap ring")
	}
}
