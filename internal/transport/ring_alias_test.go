package transport

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// aliasTestElems is large enough to cross the aliasMinBytes floor (16 KiB)
// while staying a complete frame in a 256 KiB ring (maxRec 64 KiB).
const aliasTestElems = 4096

// vectorAliasesRing reports whether v's backing array lies inside r's data
// area — i.e. whether the ring delivered a zero-copy view.
func vectorAliasesRing(r *ringBuffer, v tensor.Vector) bool {
	if len(v) == 0 {
		return false
	}
	addr := uintptr(unsafe.Pointer(&v[0]))
	base := uintptr(unsafe.Pointer(&r.data[0]))
	return addr >= base && addr < base+uintptr(len(r.data))
}

// TestRingAliasDeliveryZeroCopy: a large complete frame must be delivered as
// a view of the ring span — no pool lease taken, head pinned until the
// receiver releases the view, then advanced past the record.
func TestRingAliasDeliveryZeroCopy(t *testing.T) {
	r := newRing(1 << 18)
	defer r.retireAliases(nil)
	done := make(chan struct{})
	defer close(done)

	want := leasedVector(aliasTestElems, 7)
	snapshot := append(tensor.Vector(nil), want...)
	if err := r.enqueue(comm.Message{Source: 1, Tag: 2, Data: want}, done, true); err != nil {
		t.Fatal(err)
	}
	before := tensor.ReadPoolStats()
	m := drainOne(t, r)
	if !vectorAliasesRing(r, m.Data) {
		tensor.PutVector(m.Data)
		t.Skip("alias delivery unavailable on this architecture (portable wire codec)")
	}
	if got := tensor.ReadPoolStats().Gets - before.Gets; got != 0 {
		t.Fatalf("alias delivery took %d pool leases, want 0 (that is the copy it exists to remove)", got)
	}
	if m.Source != 1 || m.Tag != 2 || len(m.Data) != aliasTestElems {
		t.Fatalf("header mangled: %+v", m)
	}
	for i := range snapshot {
		if m.Data[i] != snapshot[i] {
			t.Fatalf("aliased payload differs at element %d", i)
		}
	}
	if h := r.head.Load(); h != 0 {
		t.Fatalf("head advanced to %d while the alias is still held", h)
	}
	wantPos := uint64(recordSpan(12 + 8*aliasTestElems))
	if r.consPos != wantPos {
		t.Fatalf("consPos = %d, want %d", r.consPos, wantPos)
	}
	tensor.PutVector(m.Data)
	if h := r.head.Load(); h != wantPos {
		t.Fatalf("head = %d after release, want %d", h, wantPos)
	}
}

// TestRingAliasOutOfOrderRelease: releasing aliases out of order only frees
// ring space up to the oldest unreleased one — head advances in record order,
// never past a held view, and a trailing copied record drains with the last
// release.
func TestRingAliasOutOfOrderRelease(t *testing.T) {
	r := newRing(1 << 18)
	defer r.retireAliases(nil)
	done := make(chan struct{})
	defer close(done)

	for i := 0; i < 3; i++ {
		if err := r.enqueue(comm.Message{Tag: i, Data: leasedVector(aliasTestElems, float64(i))}, done, true); err != nil {
			t.Fatal(err)
		}
	}
	// A small frame rides behind the aliases on the copy path.
	if err := r.enqueue(comm.Message{Tag: 3, Data: leasedVector(8, 99)}, done, true); err != nil {
		t.Fatal(err)
	}
	var msgs [4]comm.Message
	for i := range msgs {
		msgs[i] = drainOne(t, r)
	}
	if !vectorAliasesRing(r, msgs[0].Data) {
		for _, m := range msgs {
			tensor.PutVector(m.Data)
		}
		t.Skip("alias delivery unavailable on this architecture (portable wire codec)")
	}
	if vectorAliasesRing(r, msgs[3].Data) {
		t.Fatal("small frame below the alias floor was aliased")
	}
	rec := uint64(recordSpan(12 + 8*aliasTestElems))

	tensor.PutVector(msgs[1].Data) // middle first: head must not move
	if h := r.head.Load(); h != 0 {
		t.Fatalf("head = %d after releasing the middle alias, want 0", h)
	}
	tensor.PutVector(msgs[0].Data) // oldest: frees the first two records
	if h := r.head.Load(); h != 2*rec {
		t.Fatalf("head = %d after releasing the oldest alias, want %d", h, 2*rec)
	}
	tensor.PutVector(msgs[2].Data) // last alias: the copied record drains too
	if h, want := r.head.Load(), r.consPos; h != want {
		t.Fatalf("head = %d after releasing every alias, want consPos %d", h, want)
	}
	if r.aliasActive.Load() {
		t.Fatal("alias tracking still active after the queue drained")
	}
	tensor.PutVector(msgs[3].Data) // an ordinary pool lease
}

// TestRingAliasBackpressure: held aliases pin ring space — a producer must
// block once the ring is full of unreleased views and resume when the
// receiver releases them, exactly like TCP socket-buffer backpressure.
func TestRingAliasBackpressure(t *testing.T) {
	r := newRing(1 << 17) // 128 KiB, maxRec 32 KiB
	defer r.retireAliases(nil)
	done := make(chan struct{})
	defer close(done)
	const total = 12
	const elems = 2048 // 16 KiB payloads, exactly at the alias floor
	var sent atomic.Int32
	go func() {
		for i := 0; i < total; i++ {
			if err := r.enqueue(comm.Message{Tag: i, Data: leasedVector(elems, float64(i))}, done, true); err != nil {
				return
			}
			sent.Add(1)
		}
	}()

	var held []comm.Message
	rec := uint64(recordSpan(12 + 8*elems))
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, res, err := r.tryDequeue()
		if err != nil {
			t.Fatal(err)
		}
		if res == ringMsg {
			held = append(held, m)
		}
		// The producer is provably wedged once everything published has been
		// read, frames remain, and the next record cannot fit before head —
		// which is pinned at 0 by the held views.
		if int(sent.Load()) < total && r.consPos == r.tail.Load() &&
			r.tail.Load()-r.head.Load()+rec > r.mask+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("producer never blocked on held aliases (sent %d, held %d)", sent.Load(), len(held))
		}
		if res == ringEmpty {
			runtime.Gosched()
		}
	}
	if !vectorAliasesRing(r, held[0].Data) {
		for _, m := range held {
			tensor.PutVector(m.Data)
		}
		t.Skip("alias delivery unavailable on this architecture (portable wire codec)")
	}

	for _, m := range held {
		tensor.PutVector(m.Data)
	}
	for drained := len(held); drained < total; {
		m, res, err := r.tryDequeue()
		if err != nil {
			t.Fatal(err)
		}
		if res == ringMsg {
			tensor.PutVector(m.Data)
			drained++
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring did not drain after the aliases were released (%d of %d)", drained, total)
		}
	}
	if s := sent.Load(); s != total {
		t.Fatalf("producer finished %d of %d sends after the release", s, total)
	}
}

// TestRingAliasSubsliceRelease: releasing a sub-slice of the delivered view
// (a receiver trimming its vector) still frees the span — matching is by
// address containment, not slice identity.
func TestRingAliasSubsliceRelease(t *testing.T) {
	r := newRing(1 << 18)
	defer r.retireAliases(nil)
	done := make(chan struct{})
	defer close(done)
	if err := r.enqueue(comm.Message{Data: leasedVector(aliasTestElems, 1)}, done, true); err != nil {
		t.Fatal(err)
	}
	m := drainOne(t, r)
	if !vectorAliasesRing(r, m.Data) {
		tensor.PutVector(m.Data)
		t.Skip("alias delivery unavailable on this architecture (portable wire codec)")
	}
	tensor.PutVector(m.Data[100:200])
	if h, want := r.head.Load(), r.consPos; h != want {
		t.Fatalf("head = %d after sub-slice release, want %d", h, want)
	}
}

// TestRingAliasRetireDeferred: a ring closed while a view is still held must
// defer its teardown (the cross-process unmap) until the receiver releases
// the view — releasing after teardown would hand transport-owned memory to
// the pool.
func TestRingAliasRetireDeferred(t *testing.T) {
	r := newRing(1 << 18)
	done := make(chan struct{})
	defer close(done)
	if err := r.enqueue(comm.Message{Data: leasedVector(aliasTestElems, 3)}, done, true); err != nil {
		t.Fatal(err)
	}
	m := drainOne(t, r)
	if !vectorAliasesRing(r, m.Data) {
		tensor.PutVector(m.Data)
		r.retireAliases(nil)
		t.Skip("alias delivery unavailable on this architecture (portable wire codec)")
	}
	var torndown atomic.Bool
	r.retireAliases(func() { torndown.Store(true) })
	if torndown.Load() {
		t.Fatal("teardown ran while an alias was still held")
	}
	if m.Data[1] != 4 { // the mapped span must still be readable
		t.Fatal("aliased payload corrupted before release")
	}
	tensor.PutVector(m.Data)
	if !torndown.Load() {
		t.Fatal("teardown did not run when the last alias was released")
	}
	aliasTable.mu.Lock()
	for _, reg := range aliasTable.rings {
		if reg == r {
			aliasTable.mu.Unlock()
			t.Fatal("retired ring still registered in the alias table")
		}
	}
	aliasTable.mu.Unlock()
}

// TestShmEndpointAliasRoundTrip: the full endpoint path delivers large frames
// as ring views through inbox and communicator, and closing the world with
// the view still held stays safe — the release after Close is routed back to
// the (already closed) ring without touching the pool.
func TestShmEndpointAliasRoundTrip(t *testing.T) {
	before := tensor.ReadPoolStats()
	hub := NewShmHub(2)
	a, b := hub.Endpoint(0), hub.Endpoint(1)

	payload := leasedVector(aliasTestElems, 5)
	if err := a.Send(1, comm.Message{Source: 0, Tag: 9, Data: payload}); err != nil {
		t.Fatal(err)
	}
	var m comm.Message
	select {
	case m = <-b.Inbox():
	case <-time.After(5 * time.Second):
		t.Fatal("large frame never arrived")
	}
	if m.Source != 0 || m.Tag != 9 || len(m.Data) != aliasTestElems || m.Data[10] != 15 {
		t.Fatalf("frame mangled: source %d tag %d len %d", m.Source, m.Tag, len(m.Data))
	}
	aliased := vectorAliasesRing(a.out[1], m.Data)

	hub.Close() // close with the view still held
	if m.Data[20] != 25 {
		t.Fatal("aliased payload unreadable after Close")
	}
	tensor.PutVector(m.Data)
	if !aliased {
		t.Skip("alias delivery unavailable on this architecture (portable wire codec)")
	}
	if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
		t.Fatalf("alias round trip leaked %d pool leases%s", n, tensor.FormatLeaseReport())
	}
}
