//go:build !race

// Package race reports whether the race detector is enabled, so
// allocation-regression tests (testing.AllocsPerRun is unreliable under the
// detector's instrumentation) can skip themselves in -race runs.
package race

// Enabled is true when the binary was built with -race.
const Enabled = false
