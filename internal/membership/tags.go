package membership

import (
	"eagersgd/internal/collectives"
	"eagersgd/internal/partial"
)

// Per-epoch tag-block namespacing. Every epoch's reducers place their wire
// traffic in tag blocks derived from the epoch number, so a stray frame from
// epoch N that survives the transition window can be recognized — and
// discarded, not misdelivered — by epoch N+1's communicators
// (comm.DiscardTagsOnArrival). The blocks wrap modulo a small period because
// the 32-bit wire tag space is finite; that is safe because the transition
// protocol drains the outgoing epoch, so only frames from the immediately
// preceding epoch can ever straggle into the next.
//
// The layout (all below the int32 wire-tag limit):
//
//	[1<<20, 1<<20 + 128*2^16)  collective blocks, one 2^16 block per epoch
//	[1<<24 + e*2^27, ...)      partial (eager engine) base tags, 8-epoch wrap
//	[1<<30, ...)               state transfer (transfer.go), epoch-free
const (
	collectiveEpochPeriod = 128
	partialEpochPeriod    = 8
	partialEpochStride    = 1 << 27
)

// CollectiveTagShift returns the collectives.Config.TagOffset shift of the
// epoch's collective tag block. Epoch 0 shifts by zero, so a fixed-size world
// is bit-compatible with the pre-elastic wire layout.
func CollectiveTagShift(epoch uint64) int {
	lo, hi := collectives.BucketStreamTagRange()
	return int(epoch%collectiveEpochPeriod) * (hi - lo)
}

// PartialBaseTag returns the partial.Options.BaseTag of the epoch's eager
// engine: the default base shifted into the epoch's private block. Epoch 0
// yields partial.DefaultBaseTag exactly.
func PartialBaseTag(epoch uint64) int {
	return partial.DefaultBaseTag + int(epoch%partialEpochPeriod)*partialEpochStride
}

// EpochTagRanges returns the [lo, hi) tag intervals the epoch's reducer
// traffic occupies — the collective block and the partial block. A
// transition registers the outgoing epoch's ranges with the incoming
// communicators (comm.DiscardTagsOnArrival) so straggler frames are released
// on arrival instead of sitting in the unexpected queue or, worse, matching
// a same-tag receive of a later epoch.
func EpochTagRanges(epoch uint64) [][2]int {
	lo, hi := collectives.BucketStreamTagRange()
	shift := CollectiveTagShift(epoch)
	base := PartialBaseTag(epoch)
	return [][2]int{
		{lo + shift, hi + shift},
		{base, base + partialEpochStride},
	}
}
