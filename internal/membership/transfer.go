package membership

import (
	"errors"
	"fmt"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
)

// State transfer: during a transition, every surviving member serves the
// model parameters (ServeState) and each joiner pulls them (FetchState) over
// the incoming epoch's ordinary comm layer — chunked through the vector pool
// so arbitrarily large models move without a single oversized frame, and
// resumable: a joiner that loses its source mid-transfer fails over to the
// next live source and requests only the chunks it is still missing.
//
// The protocol occupies its own tag namespace (TransferTagBase block), far
// above the collective and partial blocks, so transfer frames can never be
// mistaken for training traffic:
//
//	joiner  -> source: REQUEST  [startElem]          (tagStateRequest)
//	source  -> joiner: HEADER   [totalElems]         (tagStateHeader)
//	source  -> joiner: CHUNK    [<= chunkElems vals] (tagStateChunk, repeated)
//
// Chunks ride the comm layer's per-(source, tag) FIFO guarantee, so a chunk's
// position is implied by arrival order from the announced start element.

// Tag namespace of the state transfer, disjoint from the collective
// ([1<<20, ...)) and partial ([1<<24, ...)) blocks and below the int32 wire
// limit.
const (
	// TransferTagBase is the first tag of the state-transfer namespace.
	TransferTagBase = 1 << 30

	tagStateRequest = TransferTagBase + 0
	tagStateHeader  = TransferTagBase + 1
	tagStateChunk   = TransferTagBase + 2
)

// DefaultChunkElems is the per-chunk element count used when the caller does
// not choose one: big enough to amortize per-message cost, small enough to
// stay inside the pool's pipelined size classes.
const DefaultChunkElems = 4096

// ErrTransferFailed is wrapped by FetchState when every offered source died
// or timed out before the full state arrived.
var ErrTransferFailed = errors.New("membership: state transfer failed from every source")

// ServeState answers state-fetch requests with the given parameter snapshot
// until stop closes or the communicator shuts down. Every surviving member of
// a transition runs one serve loop so a joiner always has a failover source;
// requests name the element offset to resume from, so a re-request after a
// source failure transfers only the missing tail. A send failure toward a
// joiner that died mid-transfer abandons that reply (fail-fast on the marked
// peer) and returns to serving others.
func ServeState(c *comm.Communicator, params []float64, chunkElems int, stop <-chan struct{}) {
	if chunkElems <= 0 {
		chunkElems = DefaultChunkElems
	}
	for {
		req, st, err := c.RecvCancel(comm.AnySource, tagStateRequest, stop)
		if err != nil {
			return // canceled by the transition, or the transport went down
		}
		start := 0
		if len(req) >= 1 && req[0] > 0 {
			start = int(req[0])
		}
		comm.Release(req)
		if start > len(params) {
			start = len(params)
		}
		dest := st.Source
		hdr := tensor.GetVector(1)
		hdr[0] = float64(len(params))
		if err := c.Send(dest, tagStateHeader, hdr); /* owns hdr */ err != nil {
			continue
		}
		for off := start; off < len(params); off += chunkElems {
			hi := off + chunkElems
			if hi > len(params) {
				hi = len(params)
			}
			chunk := tensor.GetVector(hi - off)
			copy(chunk, params[off:hi])
			if err := c.Send(dest, tagStateChunk, chunk); err != nil {
				break // joiner died mid-transfer; serve the next request
			}
		}
	}
}

// FetchState pulls the model parameters from the first source that answers,
// failing over down the source list on death or deadline and resuming from
// the last element received — a source that dies mid-transfer costs only the
// retransmission of nothing, not of the prefix already held. deadline bounds
// each blocking receive (a source silent past it is marked down, exactly the
// PR 5 failure detector); cancel aborts the fetch (world closing). The
// returned slice is plain memory owned by the caller, not a pool lease.
func FetchState(c *comm.Communicator, sources []int, deadline time.Duration, cancel <-chan struct{}) ([]float64, error) {
	var out []float64
	got := 0
	var lastErr error
	for _, src := range sources {
		if src == c.Rank() || src < 0 || src >= c.Size() || c.PeerDown(src) {
			continue
		}
		req := tensor.GetVector(1)
		req[0] = float64(got)
		if err := c.Send(src, tagStateRequest, req); err != nil {
			lastErr = err
			continue
		}
		hdr, _, err := c.RecvTimeout(src, tagStateHeader, cancel, deadline)
		if err != nil {
			if isFetchFatal(err) {
				return nil, err
			}
			lastErr = err
			drainStrayState(c, src)
			continue
		}
		total := 0
		if len(hdr) >= 1 {
			total = int(hdr[0])
		}
		comm.Release(hdr)
		if out == nil {
			out = make([]float64, total)
		} else if total != len(out) {
			drainStrayState(c, src)
			lastErr = fmt.Errorf("membership: source %d announced %d elements, previous source announced %d", src, total, len(out))
			continue
		}
		failed := false
		for got < total {
			chunk, _, err := c.RecvTimeout(src, tagStateChunk, cancel, deadline)
			if err != nil {
				if isFetchFatal(err) {
					return nil, err
				}
				lastErr = err
				failed = true
				break
			}
			n := copy(out[got:], chunk)
			comm.Release(chunk)
			got += n
		}
		if !failed && got == len(out) {
			return out, nil
		}
		drainStrayState(c, src)
	}
	if lastErr == nil {
		lastErr = errors.New("no live source offered")
	}
	return nil, fmt.Errorf("%w: %v", ErrTransferFailed, lastErr)
}

// isFetchFatal reports errors that no failover can cure: the fetch itself was
// canceled or the local transport is down.
func isFetchFatal(err error) bool {
	return errors.Is(err, comm.ErrCanceled) || errors.Is(err, comm.ErrClosed)
}

// drainStrayState releases transfer frames a failed-over source may still
// deliver (it was suspected, not necessarily dead): they must not linger in
// the unexpected queue as live leases for the rest of the epoch.
func drainStrayState(c *comm.Communicator, src int) {
	for {
		if v, _, ok := c.TryRecv(src, tagStateHeader); ok {
			comm.Release(v)
			continue
		}
		if v, _, ok := c.TryRecv(src, tagStateChunk); ok {
			comm.Release(v)
			continue
		}
		return
	}
}
