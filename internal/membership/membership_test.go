package membership

import (
	"errors"
	"testing"
)

func TestTrackerEpochZero(t *testing.T) {
	tr := NewTracker(4)
	v := tr.View()
	if v.Epoch != 0 || v.Size() != 4 {
		t.Fatalf("epoch-0 view = %+v, want epoch 0 size 4", v)
	}
	for i, m := range v.Members {
		if m.ID != RankID(i) {
			t.Fatalf("founding member %d has ID %d; stable ID and dense index must coincide at epoch 0", i, m.ID)
		}
	}
}

func TestProposeJoinAssignsFreshIDsAndDenseIndices(t *testing.T) {
	tr := NewTracker(4)
	trans, err := tr.Propose([]Change{{Kind: ChangeJoin, Addr: "a"}, {Kind: ChangeJoin, Addr: "b"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	to := trans.To()
	if to.Epoch != 1 || to.Size() != 6 {
		t.Fatalf("proposed view = %+v, want epoch 1 size 6", to)
	}
	joined := trans.Joined()
	if len(joined) != 2 || joined[0] != 4 || joined[1] != 5 {
		t.Fatalf("joined IDs = %v, want [4 5]", joined)
	}
	if got := to.IndexOf(4); got != 4 {
		t.Fatalf("joiner 4 dense index = %d, want 4", got)
	}
	tr.Commit(trans)
	if v := tr.View(); v.Epoch != 1 || v.Size() != 6 {
		t.Fatalf("committed view = %+v", v)
	}
}

func TestProposeReplaceReindexesSurvivors(t *testing.T) {
	tr := NewTracker(4)
	trans, err := tr.Propose([]Change{{Kind: ChangeReplace, Dead: 1, Addr: "new"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	to := trans.To()
	// Members 0,2,3 survive; joiner gets ID 4. Dense order by stable ID:
	// 0->0, 2->1, 3->2, 4->3.
	wantIdx := map[RankID]int{0: 0, 2: 1, 3: 2, 4: 3}
	for id, want := range wantIdx {
		if got := to.IndexOf(id); got != want {
			t.Fatalf("IndexOf(%d) = %d, want %d", id, got, want)
		}
	}
	if to.IndexOf(1) != -1 {
		t.Fatal("dead member 1 still indexed in the proposed view")
	}
}

func TestLeaveLastMemberRejected(t *testing.T) {
	tr := NewTracker(1)
	if _, err := tr.Propose([]Change{{Kind: ChangeLeave, Dead: 0}}, nil); !errors.Is(err, ErrEmptyWorld) {
		t.Fatalf("err = %v, want ErrEmptyWorld", err)
	}
}

func TestLeaveUnknownRankRejected(t *testing.T) {
	tr := NewTracker(2)
	if _, err := tr.Propose([]Change{{Kind: ChangeLeave, Dead: 9}}, nil); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v, want ErrNotMember", err)
	}
}

func TestSingleTransitionInFlight(t *testing.T) {
	tr := NewTracker(3)
	trans, err := tr.Propose([]Change{{Kind: ChangeJoin}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Propose([]Change{{Kind: ChangeJoin}}, nil); !errors.Is(err, ErrTransitionActive) {
		t.Fatalf("second propose err = %v, want ErrTransitionActive", err)
	}
	tr.Abort(trans)
	if trans.Phase() != PhaseAborted {
		t.Fatalf("phase after abort = %v", trans.Phase())
	}
	// Aborting frees the slot; the burned joiner ID is not reused.
	trans2, err := tr.Propose([]Change{{Kind: ChangeJoin}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ids := trans2.Joined(); len(ids) != 1 || ids[0] != 4 {
		t.Fatalf("joiner ID after aborted transition = %v, want [4] (ID 3 burned)", ids)
	}
}

func TestCoordinatorElectionSkipsDead(t *testing.T) {
	tr := NewTracker(4)
	down := map[RankID]bool{0: true}
	id, ok := Coordinator(tr.View(), func(r RankID) bool { return down[r] })
	if !ok || id != 1 {
		t.Fatalf("coordinator = %d,%v; want 1 (lowest live)", id, ok)
	}
	down[1], down[2], down[3] = true, true, true
	if _, ok := Coordinator(tr.View(), func(r RankID) bool { return down[r] }); ok {
		t.Fatal("coordinator elected with every member down")
	}
}

func TestTransitionReelectOnCoordinatorDeath(t *testing.T) {
	tr := NewTracker(4)
	down := map[RankID]bool{}
	trans, err := tr.Propose([]Change{{Kind: ChangeJoin}}, func(r RankID) bool { return down[r] })
	if err != nil {
		t.Fatal(err)
	}
	if trans.Coordinator() != 0 {
		t.Fatalf("initial coordinator = %d, want 0", trans.Coordinator())
	}
	down[0] = true // coordinator dies mid-transition
	id, ok := trans.Reelect(func(r RankID) bool { return down[r] })
	if !ok || id != 1 || trans.Coordinator() != 1 {
		t.Fatalf("re-elected coordinator = %d,%v; want 1", id, ok)
	}
}

func TestDrainAcksIgnoreDeadAndJoiners(t *testing.T) {
	tr := NewTracker(3)
	down := map[RankID]bool{2: true}
	isDown := func(r RankID) bool { return down[r] }
	trans, err := tr.Propose([]Change{{Kind: ChangeReplace, Dead: 2, Addr: "x"}, {Kind: ChangeJoin, Addr: "y"}}, isDown)
	if err != nil {
		t.Fatal(err)
	}
	if trans.AllAcked(isDown) {
		t.Fatal("AllAcked before any survivor acked")
	}
	trans.Ack(0)
	trans.Ack(3) // joiner: not a voter, must be ignored
	if trans.AllAcked(isDown) {
		t.Fatal("AllAcked with survivor 1 still outstanding")
	}
	trans.Ack(1)
	if !trans.AllAcked(isDown) {
		t.Fatal("AllAcked false with every live survivor acked")
	}
}

func TestCommitNotifiesSubscribers(t *testing.T) {
	tr := NewTracker(2)
	var got []View
	tr.Subscribe(func(v View) { got = append(got, v) })
	trans, err := tr.Propose([]Change{{Kind: ChangeJoin}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Commit(trans)
	if len(got) != 1 || got[0].Epoch != 1 || got[0].Size() != 3 {
		t.Fatalf("subscriber saw %+v, want one epoch-1 size-3 view", got)
	}
}

func TestEpochTagRangesDisjointAcrossAdjacentEpochs(t *testing.T) {
	for e := uint64(0); e < 12; e++ {
		a := EpochTagRanges(e)
		b := EpochTagRanges(e + 1)
		for _, ra := range a {
			for _, rb := range b {
				if ra[0] < rb[1] && rb[0] < ra[1] {
					t.Fatalf("epoch %d range %v overlaps epoch %d range %v", e, ra, e+1, rb)
				}
			}
		}
		// Every range must fit the int32 wire tag.
		for _, r := range a {
			if r[1] > 1<<31-1 {
				t.Fatalf("epoch %d range %v exceeds the int32 wire tag limit", e, r)
			}
		}
	}
	if CollectiveTagShift(0) != 0 {
		t.Fatal("epoch-0 collective shift must be zero for wire compatibility")
	}
}
