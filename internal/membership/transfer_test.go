package membership

import (
	"errors"
	"sync"
	"testing"
	"time"

	"eagersgd/internal/comm"
	"eagersgd/internal/tensor"
	"eagersgd/internal/transport"
)

// transferWorld spins up an inproc hub of the given size with one
// communicator per rank; the cleanup closes everything and asserts zero
// leaked leases since the world was built.
func transferWorld(t *testing.T, size int) []*comm.Communicator {
	t.Helper()
	before := tensor.ReadPoolStats()
	hub := transport.NewHub(size)
	comms := make([]*comm.Communicator, size)
	for r := 0; r < size; r++ {
		comms[r] = comm.NewCommunicator(hub.Endpoint(r))
	}
	t.Cleanup(func() {
		for _, c := range comms {
			c.Close()
		}
		hub.Close()
		if n := tensor.ReadPoolStats().OutstandingSince(before); n != 0 {
			t.Errorf("state transfer leaked %d pool leases", n)
		}
	})
	return comms
}

func refParams(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = float64(i)*0.5 - 3
	}
	return p
}

func TestFetchStateHappyPath(t *testing.T) {
	comms := transferWorld(t, 2)
	params := refParams(10*DefaultChunkElems + 17) // several chunks plus a ragged tail

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ServeState(comms[0], params, 0, stop)
	}()

	got, err := FetchState(comms[1], []int{0}, time.Second, nil)
	if err != nil {
		t.Fatalf("FetchState: %v", err)
	}
	if len(got) != len(params) {
		t.Fatalf("fetched %d elems, want %d", len(got), len(params))
	}
	for i := range got {
		if got[i] != params[i] {
			t.Fatalf("elem %d = %v, want %v", i, got[i], params[i])
		}
	}
	close(stop)
	wg.Wait()
}

func TestFetchStateResumesAfterSourceDeath(t *testing.T) {
	comms := transferWorld(t, 3)
	params := refParams(6 * 64)
	const chunk = 64

	// Source 0 serves exactly two chunks past the requested start, then goes
	// silent — a mid-transfer death. Source 1 serves honestly.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		req, st, err := comms[0].RecvCancel(comm.AnySource, tagStateRequest, stop)
		if err != nil {
			return
		}
		start := int(req[0])
		comm.Release(req)
		hdr := tensor.GetVector(1)
		hdr[0] = float64(len(params))
		if err := comms[0].Send(st.Source, tagStateHeader, hdr); err != nil {
			return
		}
		for i := 0; i < 2; i++ {
			off := start + i*chunk
			c := tensor.GetVector(chunk)
			copy(c, params[off:off+chunk])
			if err := comms[0].Send(st.Source, tagStateChunk, c); err != nil {
				return
			}
		}
		// ...and dies: no more chunks.
	}()
	go func() {
		defer wg.Done()
		ServeState(comms[1], params, chunk, stop)
	}()

	got, err := FetchState(comms[2], []int{0, 1}, 200*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("FetchState with failover: %v", err)
	}
	for i := range got {
		if got[i] != params[i] {
			t.Fatalf("elem %d = %v, want %v (resume corrupted the prefix)", i, got[i], params[i])
		}
	}
	close(stop)
	wg.Wait()
}

func TestFetchStateAllSourcesDead(t *testing.T) {
	comms := transferWorld(t, 2)
	comms[1].MarkPeerDown(0, errors.New("test: down"))
	_, err := FetchState(comms[1], []int{0}, 50*time.Millisecond, nil)
	if !errors.Is(err, ErrTransferFailed) {
		t.Fatalf("err = %v, want ErrTransferFailed", err)
	}
}

func TestFetchStateCanceled(t *testing.T) {
	comms := transferWorld(t, 2)
	cancel := make(chan struct{})
	close(cancel)
	// No server: the canceled fetch must abort on the header receive, not
	// fail over or time out.
	req := []int{0}
	_, err := FetchState(comms[1], req, time.Second, cancel)
	if !errors.Is(err, comm.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The server-less source still got a REQUEST frame; drain it so the
	// lease-leak cleanup stays honest.
	if v, _, ok := comms[0].TryRecv(1, tagStateRequest); ok {
		comm.Release(v)
	}
}

func TestServeStateResumeRequest(t *testing.T) {
	comms := transferWorld(t, 2)
	params := refParams(5 * 32)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ServeState(comms[0], params, 32, stop)
	}()

	// Hand-roll a resume: claim the first 3*32 elements are already held.
	start := 3 * 32
	req := tensor.GetVector(1)
	req[0] = float64(start)
	if err := comms[1].Send(0, tagStateRequest, req); err != nil {
		t.Fatal(err)
	}
	hdr, _, err := comms[1].RecvTimeout(0, tagStateHeader, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if int(hdr[0]) != len(params) {
		t.Fatalf("header = %v, want %d", hdr[0], len(params))
	}
	comm.Release(hdr)
	got := start
	for got < len(params) {
		chunk, _, err := comms[1].RecvTimeout(0, tagStateChunk, nil, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i := range chunk {
			if chunk[i] != params[got+i] {
				t.Fatalf("resumed elem %d = %v, want %v", got+i, chunk[i], params[got+i])
			}
		}
		got += len(chunk)
		comm.Release(chunk)
	}
	// No chunk for the prefix the request skipped may arrive.
	if v, _, ok := comms[1].TryRecv(0, tagStateChunk); ok {
		comm.Release(v)
		t.Fatal("server sent chunks past the announced total")
	}
	close(stop)
	wg.Wait()
}
