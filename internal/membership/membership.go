// Package membership implements epoch-based membership reconfiguration for
// elastic worlds: ranks join, leave, and are replaced while training runs.
//
// The design follows the old-world/new-world handoff shape of dynamic-
// committee protocols: membership is versioned by a monotonically increasing
// epoch, each epoch has an immutable member set, and a transition from epoch
// N to N+1 overlaps the outgoing and incoming membership for exactly one
// window — the outgoing world drains its in-flight work, model state is
// transferred to joiners, and then the new epoch is committed atomically.
//
// Two identities coexist on purpose:
//
//   - RankID is stable: assigned once when a member first joins and never
//     reused. Health views, membership verbs, and the transition protocol
//     speak RankIDs.
//   - The dense rank index (a member's position in the epoch's sorted member
//     list) is per-epoch wire state: transports, communicators, and
//     collective schedules are built over [0, Size) indices, and a member's
//     index may change across epochs when earlier members leave.
//
// The transition itself is a small coordinator-driven state machine
// (Transition): the lowest live member proposes epoch N+1, every live member
// acknowledges once its in-flight bucketed steps are drained, state is
// transferred to joiners (see transfer.go), and the coordinator commits. A
// coordinator that dies mid-transition is re-elected from the surviving
// members via the same health view that detected the death.
package membership

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// RankID is the stable identity of a member, distinct from its dense
// per-epoch rank index: assigned when the member first joins, never reused,
// and constant across every epoch the member belongs to.
type RankID int64

// Member is one participant of an epoch: its stable identity plus the
// (possibly empty) transport address it announced when joining.
type Member struct {
	ID   RankID
	Addr string
}

// View is one epoch's immutable membership: the epoch counter and the member
// set in dense rank-index order (Members[i] holds rank index i).
type View struct {
	Epoch   uint64
	Members []Member
}

// Size returns the number of members.
func (v View) Size() int { return len(v.Members) }

// IndexOf returns the dense rank index of the member with the given stable
// ID, or -1 when the ID is not part of this epoch.
func (v View) IndexOf(id RankID) int {
	for i, m := range v.Members {
		if m.ID == id {
			return i
		}
	}
	return -1
}

// IDs returns the member IDs in dense rank-index order.
func (v View) IDs() []RankID {
	out := make([]RankID, len(v.Members))
	for i, m := range v.Members {
		out[i] = m.ID
	}
	return out
}

// clone deep-copies the view so committed epochs stay immutable.
func (v View) clone() View {
	return View{Epoch: v.Epoch, Members: append([]Member(nil), v.Members...)}
}

// ChangeKind enumerates the membership verbs.
type ChangeKind int

const (
	// ChangeJoin adds a fresh member.
	ChangeJoin ChangeKind = iota
	// ChangeLeave removes a member.
	ChangeLeave
	// ChangeReplace removes a (typically dead) member and adds a fresh one
	// in the same transition, the crash-recovery verb.
	ChangeReplace
)

// String names the change kind.
func (k ChangeKind) String() string {
	switch k {
	case ChangeJoin:
		return "join"
	case ChangeLeave:
		return "leave"
	case ChangeReplace:
		return "replace"
	default:
		return fmt.Sprintf("change(%d)", int(k))
	}
}

// Change is one requested membership edit.
type Change struct {
	Kind ChangeKind
	// Dead is the member being removed (Leave and Replace).
	Dead RankID
	// Addr is the announced address of the incoming member (Join, Replace).
	Addr string
}

// Phase is a transition's position in the epoch-handoff state machine.
type Phase int

const (
	// PhaseProposed: the coordinator has proposed the new view; survivors
	// have not yet drained.
	PhaseProposed Phase = iota
	// PhaseDraining: live members are finishing their in-flight steps.
	PhaseDraining
	// PhaseTransferring: model state is being pushed to the joiners.
	PhaseTransferring
	// PhaseCommitted: the new epoch is installed; the transition is over.
	PhaseCommitted
	// PhaseAborted: the transition was abandoned (world closing, build
	// failure); the old epoch remains in force.
	PhaseAborted
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseProposed:
		return "proposed"
	case PhaseDraining:
		return "draining"
	case PhaseTransferring:
		return "transferring"
	case PhaseCommitted:
		return "committed"
	case PhaseAborted:
		return "aborted"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Errors of the membership protocol.
var (
	// ErrNotMember is returned for verbs naming a RankID outside the current
	// epoch.
	ErrNotMember = errors.New("membership: rank is not a member of the current epoch")
	// ErrTransitionActive is returned when a second transition is proposed
	// while one is still in flight.
	ErrTransitionActive = errors.New("membership: a transition is already in flight")
	// ErrEmptyWorld is returned by a change that would leave the epoch with
	// no members.
	ErrEmptyWorld = errors.New("membership: change would leave an empty world")
	// ErrNoCoordinator is returned when every member is down, so no
	// coordinator can be elected.
	ErrNoCoordinator = errors.New("membership: no live member to coordinate the transition")
)

// Coordinator elects the transition coordinator from a view: the live member
// with the lowest stable RankID (down reports the health view's verdict for
// a member). The bool is false when every member is down.
func Coordinator(v View, down func(RankID) bool) (RankID, bool) {
	best := RankID(-1)
	for _, m := range v.Members {
		if down != nil && down(m.ID) {
			continue
		}
		if best < 0 || m.ID < best {
			best = m.ID
		}
	}
	return best, best >= 0
}

// Transition records one epoch handoff in flight: the outgoing and proposed
// views, the elected coordinator, the protocol phase, and per-member drain
// acknowledgements.
type Transition struct {
	mu          sync.Mutex
	from, to    View
	changes     []Change
	coordinator RankID
	phase       Phase
	acks        map[RankID]bool
	joined      []RankID // stable IDs minted for the incoming members
}

// From returns the outgoing epoch's view.
func (t *Transition) From() View { t.mu.Lock(); defer t.mu.Unlock(); return t.from.clone() }

// To returns the proposed epoch's view.
func (t *Transition) To() View { t.mu.Lock(); defer t.mu.Unlock(); return t.to.clone() }

// Joined returns the stable IDs minted for the transition's incoming
// members, in the order their changes were given.
func (t *Transition) Joined() []RankID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]RankID(nil), t.joined...)
}

// Coordinator returns the currently elected coordinator.
func (t *Transition) Coordinator() RankID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.coordinator
}

// Phase returns the transition's current phase.
func (t *Transition) Phase() Phase { t.mu.Lock(); defer t.mu.Unlock(); return t.phase }

// setPhase advances the state machine. Phases only move forward; Committed
// and Aborted are terminal.
func (t *Transition) setPhase(p Phase) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.phase == PhaseCommitted || t.phase == PhaseAborted {
		return
	}
	t.phase = p
}

// Advance moves the state machine to the given phase (the transition driver
// calls it at each protocol boundary). Phases only move forward; Committed
// and Aborted are terminal and owned by the tracker's Commit/Abort.
func (t *Transition) Advance(p Phase) {
	if p == PhaseCommitted || p == PhaseAborted {
		return
	}
	t.setPhase(p)
}

// Ack records that the member has drained its in-flight work at the epoch
// boundary. Unknown IDs are ignored.
func (t *Transition) Ack(id RankID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.acks[id]; ok {
		t.acks[id] = true
	}
}

// Acked reports whether the member has acknowledged the drain.
func (t *Transition) Acked(id RankID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.acks[id]
}

// AllAcked reports whether every surviving member (one that is in both the
// outgoing and proposed views and that down does not report dead) has
// acknowledged the drain.
func (t *Transition) AllAcked(down func(RankID) bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, acked := range t.acks {
		if acked {
			continue
		}
		if down != nil && down(id) {
			continue // the dead do not vote
		}
		return false
	}
	return true
}

// Reelect re-runs the coordinator election over the outgoing view's live
// members — the recovery step when the health view reports the coordinator
// dead mid-transition. It returns the new coordinator and whether one exists.
func (t *Transition) Reelect(down func(RankID) bool) (RankID, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := Coordinator(t.from, down)
	if ok {
		t.coordinator = id
	}
	return id, ok
}

// Tracker owns the authoritative membership view of one world and serializes
// its transitions: at most one Transition is in flight at a time, and commits
// are atomic — observers never see a half-installed epoch.
type Tracker struct {
	mu     sync.Mutex
	cur    View
	nextID RankID
	trans  *Transition
	subs   []func(View)
}

// NewTracker builds the epoch-0 tracker for a world of the given size.
// Stable IDs 0..size-1 are assigned to the founding members in rank order,
// so for epoch 0 the stable ID and the dense index coincide.
func NewTracker(size int) *Tracker {
	members := make([]Member, size)
	for i := range members {
		members[i] = Member{ID: RankID(i)}
	}
	return &Tracker{cur: View{Epoch: 0, Members: members}, nextID: RankID(size)}
}

// View returns the current committed epoch's view.
func (tr *Tracker) View() View {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.cur.clone()
}

// Subscribe registers fn to be invoked (outside the tracker lock) after every
// committed epoch change.
func (tr *Tracker) Subscribe(fn func(View)) {
	tr.mu.Lock()
	tr.subs = append(tr.subs, fn)
	tr.mu.Unlock()
}

// Propose validates the requested changes against the current epoch, elects
// a coordinator among the live members, and opens the transition to epoch
// N+1. The proposed view keeps surviving members in stable-ID order and
// appends joiners (with freshly minted IDs) after them, then re-sorts by ID —
// so dense indices are the by-ID order of the new member set. At most one
// transition may be in flight.
func (tr *Tracker) Propose(changes []Change, down func(RankID) bool) (*Transition, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.trans != nil {
		return nil, ErrTransitionActive
	}
	if len(changes) == 0 {
		return nil, errors.New("membership: empty change set")
	}
	next := make([]Member, len(tr.cur.Members))
	copy(next, tr.cur.Members)
	var joined []RankID
	remove := func(id RankID) error {
		for i, m := range next {
			if m.ID == id {
				next = append(next[:i], next[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("%w: id %d", ErrNotMember, id)
	}
	nextID := tr.nextID
	for _, ch := range changes {
		switch ch.Kind {
		case ChangeLeave:
			if err := remove(ch.Dead); err != nil {
				return nil, err
			}
		case ChangeReplace:
			if err := remove(ch.Dead); err != nil {
				return nil, err
			}
			next = append(next, Member{ID: nextID, Addr: ch.Addr})
			joined = append(joined, nextID)
			nextID++
		case ChangeJoin:
			next = append(next, Member{ID: nextID, Addr: ch.Addr})
			joined = append(joined, nextID)
			nextID++
		default:
			return nil, fmt.Errorf("membership: unknown change kind %v", ch.Kind)
		}
	}
	if len(next) == 0 {
		return nil, ErrEmptyWorld
	}
	sort.Slice(next, func(i, j int) bool { return next[i].ID < next[j].ID })
	coord, ok := Coordinator(tr.cur, down)
	if !ok {
		return nil, ErrNoCoordinator
	}
	t := &Transition{
		from:        tr.cur.clone(),
		to:          View{Epoch: tr.cur.Epoch + 1, Members: next},
		changes:     append([]Change(nil), changes...),
		coordinator: coord,
		phase:       PhaseProposed,
		acks:        make(map[RankID]bool),
		joined:      joined,
	}
	// Only members present in both views drain: joiners have nothing in
	// flight and the removed are gone (or dead) by definition.
	for _, m := range tr.cur.Members {
		if t.to.IndexOf(m.ID) >= 0 {
			t.acks[m.ID] = false
		}
	}
	tr.trans = t
	tr.nextID = nextID
	return t, nil
}

// Transition returns the in-flight transition, or nil.
func (tr *Tracker) Transition() *Transition {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.trans
}

// Commit installs the transition's proposed view as the new current epoch and
// notifies subscribers (outside the lock). The transition must be the one
// opened by Propose.
func (tr *Tracker) Commit(t *Transition) {
	tr.mu.Lock()
	if tr.trans != t {
		tr.mu.Unlock()
		return
	}
	t.setPhase(PhaseCommitted)
	tr.cur = t.to.clone()
	tr.trans = nil
	subs := append([]func(View){}, tr.subs...)
	view := tr.cur.clone()
	tr.mu.Unlock()
	for _, fn := range subs {
		fn(view)
	}
}

// Abort abandons the transition: the outgoing epoch stays in force and the
// minted joiner IDs are burned (never reused).
func (tr *Tracker) Abort(t *Transition) {
	tr.mu.Lock()
	if tr.trans == t {
		tr.trans = nil
	}
	tr.mu.Unlock()
	t.setPhase(PhaseAborted)
}
